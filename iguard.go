// Package iguard is the public API of this repository: a from-scratch
// Go implementation of "iGuard: Efficient Isolation Forest Design for
// Malicious Traffic Detection in Programmable Switches" (CoNEXT 2024).
//
// The pipeline mirrors Fig. 1 of the paper:
//
//  1. extract flow-level features from benign training traffic,
//  2. train an ensemble of autoencoders on them,
//  3. grow an isolation forest guided by that ensemble (§3.2.1),
//  4. distil the ensemble's knowledge into the forest's leaves (§3.2.2),
//  5. compile the labelled forest into whitelist rules (§3.2.3), and
//  6. deploy the rules on a (simulated) programmable-switch data plane.
//
// The minimal use is three calls:
//
//	det, err := iguard.Train(benignPackets, iguard.DefaultConfig())
//	verdict := det.ClassifyFlow(flowFeatures) // 0 benign, 1 malicious
//	sw, ctrl := det.Deploy(iguard.DefaultDeployConfig())
//
// See the examples directory for complete programs.
package iguard

import (
	"fmt"
	"io"
	"time"

	"iguard/internal/autoencoder"
	"iguard/internal/controller"
	"iguard/internal/core"
	"iguard/internal/features"
	"iguard/internal/mathx"
	"iguard/internal/metrics"
	"iguard/internal/netpkt"
	"iguard/internal/rules"
	"iguard/internal/switchsim"
)

// Packet is the parsed-packet type consumed by Train and the switch
// simulator (alias of the internal packet model so library users and
// the PCAP reader share one type).
type Packet = netpkt.Packet

// Config parameterises Train. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Seed drives all randomness (training is fully deterministic).
	Seed int64

	// FlowThreshold is n: flow features are computed over the first n
	// packets of each flow (§3.3.1). FlowTimeout is δ, the idle timeout.
	FlowThreshold int
	FlowTimeout   time.Duration

	// AEEpochs/AEBatch/AELearningRate train the autoencoder ensemble.
	AEEpochs       int
	AEBatch        int
	AELearningRate float64
	// CalibrationQuantile sets each member's RMSE threshold T_u at this
	// quantile of its benign reconstruction errors.
	CalibrationQuantile float64

	// Forest holds the guided-forest options (t, Ψ, k, τ_split, ...).
	Forest core.Options
	// AugmentGrid lists the node-augmentation counts k to try; the
	// forest whose predictions agree best with the autoencoder ensemble
	// on a benign holdout plus synthetic probes wins (a benign-only
	// stand-in for the paper's validation grid search). Empty disables
	// the search and uses Forest.Augment directly.
	AugmentGrid []int
	// ThresholdGrid lists calibration quantiles for the ensemble RMSE
	// thresholds T_u, searched jointly with AugmentGrid when labelled
	// validation data is provided. Empty keeps CalibrationQuantile.
	ThresholdGrid []float64

	// ValidationX/ValidationY, when provided, are raw labelled flow
	// vectors (0 benign, 1 malicious) used to select (k, T) by macro F1
	// — the paper's §4.1 methodology, where validation sets carry 20%
	// attack traffic. Without them the benign-only fidelity heuristic
	// selects k at a fixed threshold.
	ValidationX [][]float64
	ValidationY []int

	// QuantBits is the per-feature fixed-point width rules compile to.
	QuantBits int
	// MaxRuleCells caps hypercube enumeration during rule generation.
	MaxRuleCells int
}

// DefaultConfig returns a configuration matching the evaluation's
// operating point.
func DefaultConfig() Config {
	forest := core.DefaultOptions()
	forest.Trees = 5
	forest.SubSample = 192
	forest.Augment = 0
	forest.DistillAugment = 64
	return Config{
		Seed:                1,
		FlowThreshold:       16,
		FlowTimeout:         5 * time.Second,
		AEEpochs:            40,
		AEBatch:             32,
		AELearningRate:      0.005,
		CalibrationQuantile: 0.92,
		Forest:              forest,
		AugmentGrid:         []int{0, 4, 8},
		ThresholdGrid:       []float64{0.88, 0.92, 0.97},
		QuantBits:           20,
		MaxRuleCells:        200000,
	}
}

// ruleUniverse is the model-space feature box rules are generated over
// (training features scale into [0, 1]).
const (
	ruleUniverseLo = -0.25
	ruleUniverseHi = 1.75
)

// Detector is a trained iGuard pipeline.
type Detector struct {
	cfg      Config
	prep     *features.Preprocess
	plPrep   *features.Preprocess
	ensemble *autoencoder.Ensemble
	forest   *core.Forest
	ruleSet  *rules.RuleSet
	compiled *rules.CompiledRuleSet
}

// Train builds the full iGuard pipeline from benign training packets.
// It returns an error when the trace yields no flows.
func Train(benign []Packet, cfg Config) (*Detector, error) {
	samples := features.ExtractAll(benign, cfg.FlowThreshold, cfg.FlowTimeout)
	if len(samples) == 0 {
		return nil, fmt.Errorf("iguard: no flows extracted from %d packets", len(benign))
	}
	raw := make([][]float64, len(samples))
	for i, s := range samples {
		raw[i] = s.FL
	}
	return TrainOnFeatures(raw, cfg)
}

// TrainOnFeatures builds the pipeline directly from raw (unscaled)
// 13-dimensional flow-feature vectors, for callers with their own
// extraction.
func TrainOnFeatures(raw [][]float64, cfg Config) (*Detector, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("iguard: empty training set")
	}
	if len(raw[0]) != features.FLDim {
		return nil, fmt.Errorf("iguard: feature vectors have %d dims, want %d", len(raw[0]), features.FLDim)
	}
	d := &Detector{cfg: cfg}
	d.prep = features.NewFLPreprocess()
	trainX := d.prep.FitTransform(raw)

	r := mathx.NewRand(cfg.Seed)
	d.ensemble = autoencoder.NewEnsemble(
		autoencoder.NewMagnifier(r, features.FLDim),
		autoencoder.NewSymmetric(r, features.FLDim),
	)
	d.ensemble.Members[0].Weight = 0.6
	d.ensemble.Members[1].Weight = 0.4
	d.ensemble.Fit(trainX, autoencoder.TrainOptions{
		Epochs: cfg.AEEpochs, BatchSize: cfg.AEBatch, LR: cfg.AELearningRate,
		Rand: mathx.NewRand(cfg.Seed + 1),
	})
	forestOpts := cfg.Forest
	forestOpts.Seed = cfg.Seed + 2
	forestOpts.Bounds = rules.FullBox(features.FLDim, ruleUniverseLo, ruleUniverseHi)
	kGrid := cfg.AugmentGrid
	if len(kGrid) == 0 {
		kGrid = []int{forestOpts.Augment}
	}
	if len(cfg.ValidationX) > 0 {
		if err := d.selectByValidation(trainX, forestOpts, kGrid, cfg); err != nil {
			return nil, err
		}
	} else {
		d.ensemble.Calibrate(trainX, cfg.CalibrationQuantile)
		if err := d.selectByFidelity(trainX, forestOpts, kGrid, cfg); err != nil {
			return nil, err
		}
	}

	universe := rules.FullBox(features.FLDim, ruleUniverseLo, ruleUniverseHi)
	leaves := make([][]rules.Box, len(d.forest.Trees))
	labels := make([][]int, len(d.forest.Trees))
	for ti := range d.forest.Trees {
		leaves[ti], labels[ti] = d.forest.LabelledLeafRegionsWithin(ti, universe)
	}
	rs, err := rules.GenerateVoted(universe, leaves, labels, rules.GenOptions{MaxCells: cfg.MaxRuleCells})
	if err != nil {
		return nil, err
	}
	d.ruleSet = rs
	d.compiled = compileRaw(rs, d.prep, cfg.QuantBits)
	return d, nil
}

// selectByValidation grid-searches (k, T) by macro F1 on the labelled
// validation set — the paper's §4.1 footnote-10 methodology.
func (d *Detector) selectByValidation(trainX [][]float64, forestOpts core.Options, kGrid []int, cfg Config) error {
	if len(cfg.ValidationX) != len(cfg.ValidationY) {
		return fmt.Errorf("iguard: validation X/Y length mismatch")
	}
	valX := make([][]float64, len(cfg.ValidationX))
	for i, raw := range cfg.ValidationX {
		valX[i] = d.prep.Transform(raw)
	}
	tGrid := cfg.ThresholdGrid
	if len(tGrid) == 0 {
		tGrid = []float64{cfg.CalibrationQuantile}
	}
	bestF1 := -1.0
	bestQ := tGrid[0]
	for _, q := range tGrid {
		d.ensemble.Calibrate(trainX, q)
		for _, k := range kGrid {
			opts := forestOpts
			opts.Augment = k
			candidate, err := core.Fit(trainX, d.ensemble, opts)
			if err != nil {
				return err
			}
			var conf metrics.Confusion
			for i, x := range valX {
				conf.Add(candidate.Predict(x), cfg.ValidationY[i])
			}
			if f1 := conf.MacroF1(); f1 > bestF1 {
				bestF1 = f1
				bestQ = q
				d.forest = candidate
			}
		}
	}
	d.ensemble.Calibrate(trainX, bestQ)
	return nil
}

// selectByFidelity picks k by agreement with the ensemble on benign
// holdout plus synthetic probes (the benign-only fallback).
func (d *Detector) selectByFidelity(trainX [][]float64, forestOpts core.Options, kGrid []int, cfg Config) error {
	probes := guideProbes(trainX, cfg.Seed+3)
	bestFidelity := -1.0
	for _, k := range kGrid {
		opts := forestOpts
		opts.Augment = k
		candidate, err := core.Fit(trainX, d.ensemble, opts)
		if err != nil {
			return err
		}
		agree := 0
		for _, p := range probes {
			if candidate.Predict(p) == d.ensemble.Predict(p) {
				agree++
			}
		}
		if f := float64(agree) / float64(len(probes)); f > bestFidelity {
			bestFidelity = f
			d.forest = candidate
		}
	}
	return nil
}

// guideProbes builds the benign-only fidelity probe set for the k grid:
// the training samples themselves plus uniform draws over the slightly
// inflated data box (interior holes and near-boundary space where the
// forest must mimic the ensemble).
func guideProbes(trainX [][]float64, seed int64) [][]float64 {
	r := mathx.NewRand(seed)
	probes := make([][]float64, 0, 2*len(trainX))
	probes = append(probes, trainX...)
	dim := len(trainX[0])
	for i := 0; i < len(trainX); i++ {
		p := make([]float64, dim)
		for j := range p {
			p[j] = -0.1 + 1.2*r.Float64()
		}
		probes = append(probes, p)
	}
	return probes
}

// compileRaw mirrors the experiment harness's raw-domain compilation.
func compileRaw(rs *rules.RuleSet, prep *features.Preprocess, bits int) *rules.CompiledRuleSet {
	dim := rs.Dim
	rawMin := make([]float64, dim)
	rawMax := make([]float64, dim)
	for i := 0; i < dim; i++ {
		span := prep.RawMax[i] - prep.RawMin[i]
		if span <= 0 {
			rawMin[i] = prep.RawMin[i] - 1
			rawMax[i] = prep.RawMin[i] + 1
			continue
		}
		rawMin[i] = prep.RawMin[i] - 0.25*span
		rawMax[i] = prep.RawMax[i] + 2*span
	}
	raw := &rules.RuleSet{Dim: dim, DefaultLabel: rs.DefaultLabel}
	for _, r := range rs.Rules {
		box := make(rules.Box, dim)
		for i, iv := range r.Box {
			span := prep.RawMax[i] - prep.RawMin[i]
			if span <= 0 {
				box[i] = rules.Interval{Lo: rawMin[i], Hi: rawMax[i]}
				continue
			}
			box[i] = rules.Interval{Lo: prep.InverseEdge(i, iv.Lo), Hi: prep.InverseEdge(i, iv.Hi)}
		}
		raw.Rules = append(raw.Rules, rules.Rule{Box: box, Label: r.Label})
	}
	return rules.Compile(raw, rules.NewQuantizer(rawMin, rawMax, bits))
}

// ClassifyFlow labels one raw (unscaled) 13-dimensional flow-feature
// vector: 0 benign, 1 malicious. Trained detectors use the forest;
// loaded (rule-based) detectors use the rule set, which agrees with the
// forest up to the consistency metric C.
func (d *Detector) ClassifyFlow(raw []float64) int {
	x := d.prep.Transform(raw)
	if d.forest == nil {
		return d.ruleSet.Match(x)
	}
	return d.forest.Predict(x)
}

// Score returns the malicious vote fraction in [0, 1] for a raw flow
// vector. Rule-based (loaded) detectors return 0/1.
func (d *Detector) Score(raw []float64) float64 {
	x := d.prep.Transform(raw)
	if d.forest == nil {
		return float64(d.ruleSet.Match(x))
	}
	return d.forest.Score(x)
}

// EnsembleScore returns the guiding autoencoder ensemble's continuous
// anomaly score for a raw flow vector.
func (d *Detector) EnsembleScore(raw []float64) float64 {
	return d.ensemble.Score(d.prep.Transform(raw))
}

// Rules returns the float-domain labelled rule set (whitelist +
// malicious cells).
func (d *Detector) Rules() *rules.RuleSet { return d.ruleSet }

// CompiledRules returns the quantised whitelist ready for switch
// installation.
func (d *Detector) CompiledRules() *rules.CompiledRuleSet { return d.compiled }

// WriteRules serialises the rule set as JSON.
func (d *Detector) WriteRules(w io.Writer) error { return d.ruleSet.WriteJSON(w) }

// Consistency measures §3.2.3's rule-fidelity metric C over raw flow
// vectors.
func (d *Detector) Consistency(raw [][]float64) float64 {
	model := d.prep.TransformAll(raw)
	return rules.Consistency(d.ruleSet, d.forest.Predict, model)
}

// DeployConfig parameterises Deploy.
type DeployConfig struct {
	// Slots is the per-hash-table flow-state capacity.
	Slots int
	// BlacklistCapacity bounds the blacklist table; the controller
	// evicts beyond it using the chosen policy.
	BlacklistCapacity int
	// Eviction selects FIFO or LRU blacklist eviction.
	Eviction controller.EvictionPolicy
	// DropMalicious selects drop versus forward-to-quarantine.
	DropMalicious bool
}

// DefaultDeployConfig returns the evaluation's deployment parameters.
func DefaultDeployConfig() DeployConfig {
	return DeployConfig{Slots: 8192, BlacklistCapacity: 8192, Eviction: controller.LRU, DropMalicious: true}
}

// Deploy installs the detector's whitelist on a simulated switch wired
// to a fresh controller, both ready to process packets.
func (d *Detector) Deploy(cfg DeployConfig) (*switchsim.Switch, *controller.Controller) {
	sw := switchsim.New(switchsim.Config{
		Slots:             cfg.Slots,
		PktThreshold:      d.cfg.FlowThreshold,
		Timeout:           d.cfg.FlowTimeout,
		FLRules:           d.compiled,
		BlacklistCapacity: cfg.BlacklistCapacity,
		DropMalicious:     cfg.DropMalicious,
	})
	ctrl := controller.New(sw, cfg.BlacklistCapacity, cfg.Eviction)
	sw.SetSink(ctrl)
	return sw, ctrl
}
