// Package iguard is the public API of this repository: a from-scratch
// Go implementation of "iGuard: Efficient Isolation Forest Design for
// Malicious Traffic Detection in Programmable Switches" (CoNEXT 2024).
//
// The pipeline mirrors Fig. 1 of the paper:
//
//  1. extract flow-level features from benign training traffic,
//  2. train an ensemble of autoencoders on them,
//  3. grow an isolation forest guided by that ensemble (§3.2.1),
//  4. distil the ensemble's knowledge into the forest's leaves (§3.2.2),
//  5. compile the labelled forest into whitelist rules (§3.2.3), and
//  6. deploy the rules on a (simulated) programmable-switch data plane.
//
// The minimal use is three calls:
//
//	det, err := iguard.Train(benignPackets, iguard.DefaultConfig())
//	verdict := det.ClassifyFlow(flowFeatures) // 0 benign, 1 malicious
//	dep, err := det.NewDeployment(iguard.DefaultDeployConfig())
//
// Training is deterministic and parallel: Config.Parallelism bounds
// the worker pool fanned out across grid-search candidates, ensemble
// members, and forest trees, and the trained model is byte-identical
// for every worker count (each unit derives its own random stream from
// the seed and its index). TrainContext and TrainOnFeaturesContext
// accept a context for cooperative cancellation mid-training, and
// Config.Validate rejects misconfiguration up front with one joined
// descriptive error.
//
// See the examples directory for complete programs.
package iguard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"iguard/internal/autoencoder"
	"iguard/internal/controller"
	"iguard/internal/core"
	"iguard/internal/features"
	"iguard/internal/mathx"
	"iguard/internal/metrics"
	"iguard/internal/netpkt"
	"iguard/internal/parallel"
	"iguard/internal/rules"
	"iguard/internal/serve"
	"iguard/internal/switchsim"
)

// Packet is the parsed-packet type consumed by Train and the switch
// simulator (alias of the internal packet model so library users and
// the PCAP reader share one type).
type Packet = netpkt.Packet

// Config parameterises Train. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Seed drives all randomness (training is fully deterministic).
	Seed int64

	// FlowThreshold is n: flow features are computed over the first n
	// packets of each flow (§3.3.1). FlowTimeout is δ, the idle timeout.
	FlowThreshold int
	FlowTimeout   time.Duration

	// AEEpochs/AEBatch/AELearningRate train the autoencoder ensemble.
	AEEpochs       int
	AEBatch        int
	AELearningRate float64
	// CalibrationQuantile sets each member's RMSE threshold T_u at this
	// quantile of its benign reconstruction errors.
	CalibrationQuantile float64

	// Forest holds the guided-forest options (t, Ψ, k, τ_split, ...).
	Forest core.Options
	// AugmentGrid lists the node-augmentation counts k to try; the
	// forest whose predictions agree best with the autoencoder ensemble
	// on a benign holdout plus synthetic probes wins (a benign-only
	// stand-in for the paper's validation grid search). Empty disables
	// the search and uses Forest.Augment directly.
	AugmentGrid []int
	// ThresholdGrid lists calibration quantiles for the ensemble RMSE
	// thresholds T_u, searched jointly with AugmentGrid when labelled
	// validation data is provided. Empty keeps CalibrationQuantile.
	ThresholdGrid []float64

	// ValidationX/ValidationY, when provided, are raw labelled flow
	// vectors (0 benign, 1 malicious) used to select (k, T) by macro F1
	// — the paper's §4.1 methodology, where validation sets carry 20%
	// attack traffic. Without them the benign-only fidelity heuristic
	// selects k at a fixed threshold. Training-time only: not part of
	// the saved model (format 2).
	ValidationX [][]float64 `json:"-"`
	ValidationY []int       `json:"-"`

	// QuantBits is the per-feature fixed-point width rules compile to.
	QuantBits int
	// MaxRuleCells caps hypercube enumeration during rule generation.
	MaxRuleCells int

	// Parallelism bounds the training worker pool (0 = GOMAXPROCS).
	// It fans out across the three independent layers of training —
	// grid-search candidates, ensemble members, and forest trees — and
	// never changes the trained model: every unit derives its own
	// random stream from (Seed, unit index), and results reduce in
	// index order, so the saved model is byte-identical for every
	// value. Runtime-only: not part of the saved model.
	Parallelism int `json:"-"`
}

// Validate reports every rejectable Config field at once, joined into
// a single descriptive error (errors.Is/As see the individual
// failures). Train and TrainContext call it before touching any data,
// so misconfiguration fails fast instead of panicking deep inside the
// pipeline. A nil return means the configuration is trainable.
func (c Config) Validate() error {
	var errs []error
	add := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf("iguard: config: "+format, args...))
	}
	if c.FlowThreshold <= 0 {
		add("FlowThreshold must be positive, got %d", c.FlowThreshold)
	}
	if c.FlowTimeout <= 0 {
		add("FlowTimeout must be positive, got %v", c.FlowTimeout)
	}
	if c.AEEpochs <= 0 {
		add("AEEpochs must be positive, got %d", c.AEEpochs)
	}
	if c.AEBatch <= 0 {
		add("AEBatch must be positive, got %d", c.AEBatch)
	}
	if c.AELearningRate <= 0 {
		add("AELearningRate must be positive, got %v", c.AELearningRate)
	}
	if c.CalibrationQuantile <= 0 || c.CalibrationQuantile > 1 {
		add("CalibrationQuantile must be in (0, 1], got %v", c.CalibrationQuantile)
	}
	for i, k := range c.AugmentGrid {
		if k < 0 {
			add("AugmentGrid[%d] must be non-negative, got %d", i, k)
		}
	}
	for i, q := range c.ThresholdGrid {
		if q <= 0 || q > 1 {
			add("ThresholdGrid[%d] must be in (0, 1], got %v", i, q)
		}
	}
	if len(c.ValidationX) != len(c.ValidationY) {
		add("ValidationX/ValidationY length mismatch: %d vs %d", len(c.ValidationX), len(c.ValidationY))
	}
	for i, y := range c.ValidationY {
		if y != 0 && y != 1 {
			add("ValidationY[%d] must be 0 or 1, got %d", i, y)
			break
		}
	}
	for i, x := range c.ValidationX {
		if len(x) != features.FLDim {
			add("ValidationX[%d] has %d dims, want %d", i, len(x), features.FLDim)
			break
		}
	}
	if c.QuantBits < 1 || c.QuantBits > 32 {
		add("QuantBits must be in [1, 32], got %d", c.QuantBits)
	}
	if c.MaxRuleCells <= 0 {
		add("MaxRuleCells must be positive, got %d", c.MaxRuleCells)
	}
	if c.Parallelism < 0 {
		add("Parallelism must be non-negative (0 = GOMAXPROCS), got %d", c.Parallelism)
	}
	if err := c.Forest.Validate(); err != nil {
		errs = append(errs, fmt.Errorf("iguard: config: Forest: %w", err))
	}
	return errors.Join(errs...)
}

// DefaultConfig returns a configuration matching the evaluation's
// operating point.
func DefaultConfig() Config {
	forest := core.DefaultOptions()
	forest.Trees = 5
	forest.SubSample = 192
	forest.Augment = 0
	forest.DistillAugment = 64
	return Config{
		Seed:                1,
		FlowThreshold:       16,
		FlowTimeout:         5 * time.Second,
		AEEpochs:            40,
		AEBatch:             32,
		AELearningRate:      0.005,
		CalibrationQuantile: 0.92,
		Forest:              forest,
		AugmentGrid:         []int{0, 4, 8},
		ThresholdGrid:       []float64{0.88, 0.92, 0.97},
		QuantBits:           20,
		MaxRuleCells:        200000,
	}
}

// ruleUniverse is the model-space feature box rules are generated over
// (training features scale into [0, 1]).
const (
	ruleUniverseLo = -0.25
	ruleUniverseHi = 1.75
)

// Detector is a trained iGuard pipeline.
type Detector struct {
	cfg      Config
	prep     *features.Preprocess
	plPrep   *features.Preprocess
	ensemble *autoencoder.Ensemble
	forest   *core.Forest
	ruleSet  *rules.RuleSet
	compiled *rules.CompiledRuleSet
}

// Train builds the full iGuard pipeline from benign training packets.
// It returns an error when the configuration is invalid or the trace
// yields no flows.
func Train(benign []Packet, cfg Config) (*Detector, error) {
	return TrainContext(context.Background(), benign, cfg)
}

// TrainContext is Train with cooperative cancellation: training checks
// ctx between pipeline stages, between autoencoder epochs, and between
// parallel grid-search/tree units, returning ctx.Err() promptly when
// cancelled. cfg.Parallelism bounds the worker pool; the result is
// identical for every worker count.
func TrainContext(ctx context.Context, benign []Packet, cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	samples := features.ExtractAll(benign, cfg.FlowThreshold, cfg.FlowTimeout)
	if len(samples) == 0 {
		return nil, fmt.Errorf("iguard: no flows extracted from %d packets", len(benign))
	}
	raw := make([][]float64, len(samples))
	for i, s := range samples {
		raw[i] = s.FL
	}
	return TrainOnFeaturesContext(ctx, raw, cfg)
}

// TrainOnFeatures builds the pipeline directly from raw (unscaled)
// 13-dimensional flow-feature vectors, for callers with their own
// extraction.
func TrainOnFeatures(raw [][]float64, cfg Config) (*Detector, error) {
	return TrainOnFeaturesContext(context.Background(), raw, cfg)
}

// TrainOnFeaturesContext is TrainOnFeatures with cooperative
// cancellation and bounded parallelism; see TrainContext.
func TrainOnFeaturesContext(ctx context.Context, raw [][]float64, cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("iguard: empty training set")
	}
	if len(raw[0]) != features.FLDim {
		return nil, fmt.Errorf("iguard: feature vectors have %d dims, want %d", len(raw[0]), features.FLDim)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d := &Detector{cfg: cfg}
	d.prep = features.NewFLPreprocess()
	trainX := d.prep.FitTransform(raw)

	r := mathx.NewRand(cfg.Seed)
	d.ensemble = autoencoder.NewEnsemble(
		autoencoder.NewMagnifier(r, features.FLDim),
		autoencoder.NewSymmetric(r, features.FLDim),
	)
	d.ensemble.Members[0].Weight = 0.6
	d.ensemble.Members[1].Weight = 0.4
	if err := d.ensemble.FitContext(ctx, trainX, autoencoder.TrainOptions{
		Epochs: cfg.AEEpochs, BatchSize: cfg.AEBatch, LR: cfg.AELearningRate,
		Rand: mathx.NewRand(cfg.Seed + 1), Parallelism: cfg.Parallelism,
	}); err != nil {
		return nil, err
	}
	forestOpts := cfg.Forest
	forestOpts.Seed = cfg.Seed + 2
	forestOpts.Parallelism = cfg.Parallelism
	forestOpts.Bounds = rules.FullBox(features.FLDim, ruleUniverseLo, ruleUniverseHi)
	kGrid := cfg.AugmentGrid
	if len(kGrid) == 0 {
		kGrid = []int{forestOpts.Augment}
	}
	if len(cfg.ValidationX) > 0 {
		if err := d.selectByValidation(ctx, trainX, forestOpts, kGrid, cfg); err != nil {
			return nil, err
		}
	} else {
		d.ensemble.Calibrate(trainX, cfg.CalibrationQuantile)
		if err := d.selectByFidelity(ctx, trainX, forestOpts, kGrid, cfg); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	universe := rules.FullBox(features.FLDim, ruleUniverseLo, ruleUniverseHi)
	leaves := make([][]rules.Box, len(d.forest.Trees))
	labels := make([][]int, len(d.forest.Trees))
	for ti := range d.forest.Trees {
		leaves[ti], labels[ti] = d.forest.LabelledLeafRegionsWithin(ti, universe)
	}
	rs, err := rules.GenerateVoted(universe, leaves, labels, rules.GenOptions{MaxCells: cfg.MaxRuleCells})
	if err != nil {
		return nil, err
	}
	d.ruleSet = rs
	d.compiled = compileRaw(rs, d.prep, cfg.QuantBits)
	return d, nil
}

// selectByValidation grid-searches (k, T) by macro F1 on the labelled
// validation set — the paper's §4.1 footnote-10 methodology. All
// |tGrid| × |kGrid| candidates are independent and train concurrently:
// each takes a read-only calibrated view of the ensemble (thresholds
// precomputed from one shared sorted error slice per member) instead
// of re-calibrating the live ensemble in place. Results land in
// index-addressed slots and the argmax breaks ties by grid position,
// exactly as the serial t-outer/k-inner loop did.
func (d *Detector) selectByValidation(ctx context.Context, trainX [][]float64, forestOpts core.Options, kGrid []int, cfg Config) error {
	valX := make([][]float64, len(cfg.ValidationX))
	for i, raw := range cfg.ValidationX {
		valX[i] = d.prep.Transform(raw)
	}
	tGrid := cfg.ThresholdGrid
	if len(tGrid) == 0 {
		tGrid = []float64{cfg.CalibrationQuantile}
	}
	memberErrs := d.ensemble.MemberErrors(trainX)
	for _, errs := range memberErrs {
		sort.Float64s(errs)
	}
	thresholds := make([][]float64, len(tGrid))
	for qi, q := range tGrid {
		ths := make([]float64, len(memberErrs))
		for mi, errs := range memberErrs {
			ths[mi] = mathx.QuantileSorted(errs, q)
		}
		thresholds[qi] = ths
	}
	type candidate struct {
		forest *core.Forest
		f1     float64
	}
	cands := make([]candidate, len(tGrid)*len(kGrid))
	err := parallel.For(ctx, cfg.Parallelism, len(cands), func(i int) error {
		qi, ki := i/len(kGrid), i%len(kGrid)
		guide := d.ensemble.WithThresholds(thresholds[qi])
		opts := forestOpts
		opts.Augment = kGrid[ki]
		forest, err := core.FitContext(ctx, trainX, guide, opts)
		if err != nil {
			return err
		}
		var conf metrics.Confusion
		for vi, x := range valX {
			conf.Add(forest.Predict(x), cfg.ValidationY[vi])
		}
		cands[i] = candidate{forest: forest, f1: conf.MacroF1()}
		return nil
	})
	if err != nil {
		return err
	}
	best := 0
	for i := range cands {
		if cands[i].f1 > cands[best].f1 {
			best = i
		}
	}
	d.forest = cands[best].forest
	// Leave the ensemble calibrated at the winning quantile so guide
	// predictions stay consistent with the selected forest.
	d.ensemble.SetThresholds(thresholds[best/len(kGrid)])
	return nil
}

// selectByFidelity picks k by agreement with the ensemble on benign
// holdout plus synthetic probes (the benign-only fallback). The
// ensemble's probe labels are computed once; the k candidates train
// concurrently and the argmax breaks ties by grid position.
func (d *Detector) selectByFidelity(ctx context.Context, trainX [][]float64, forestOpts core.Options, kGrid []int, cfg Config) error {
	probes := guideProbes(trainX, cfg.Seed+3)
	want := make([]int, len(probes))
	for i, p := range probes {
		want[i] = d.ensemble.Predict(p)
	}
	forests := make([]*core.Forest, len(kGrid))
	fidelities := make([]float64, len(kGrid))
	err := parallel.For(ctx, cfg.Parallelism, len(kGrid), func(i int) error {
		opts := forestOpts
		opts.Augment = kGrid[i]
		forest, err := core.FitContext(ctx, trainX, d.ensemble, opts)
		if err != nil {
			return err
		}
		agree := 0
		for pi, p := range probes {
			if forest.Predict(p) == want[pi] {
				agree++
			}
		}
		forests[i] = forest
		fidelities[i] = float64(agree) / float64(len(probes))
		return nil
	})
	if err != nil {
		return err
	}
	best := 0
	for i := range fidelities {
		if fidelities[i] > fidelities[best] {
			best = i
		}
	}
	d.forest = forests[best]
	return nil
}

// guideProbes builds the benign-only fidelity probe set for the k grid:
// the training samples themselves plus uniform draws over the slightly
// inflated data box (interior holes and near-boundary space where the
// forest must mimic the ensemble).
func guideProbes(trainX [][]float64, seed int64) [][]float64 {
	r := mathx.NewRand(seed)
	probes := make([][]float64, 0, 2*len(trainX))
	probes = append(probes, trainX...)
	dim := len(trainX[0])
	for i := 0; i < len(trainX); i++ {
		p := make([]float64, dim)
		for j := range p {
			p[j] = -0.1 + 1.2*r.Float64()
		}
		probes = append(probes, p)
	}
	return probes
}

// compileRaw mirrors the experiment harness's raw-domain compilation.
func compileRaw(rs *rules.RuleSet, prep *features.Preprocess, bits int) *rules.CompiledRuleSet {
	dim := rs.Dim
	rawMin := make([]float64, dim)
	rawMax := make([]float64, dim)
	for i := 0; i < dim; i++ {
		span := prep.RawMax[i] - prep.RawMin[i]
		if span <= 0 {
			rawMin[i] = prep.RawMin[i] - 1
			rawMax[i] = prep.RawMin[i] + 1
			continue
		}
		rawMin[i] = prep.RawMin[i] - 0.25*span
		rawMax[i] = prep.RawMax[i] + 2*span
	}
	raw := &rules.RuleSet{Dim: dim, DefaultLabel: rs.DefaultLabel}
	for _, r := range rs.Rules {
		box := make(rules.Box, dim)
		for i, iv := range r.Box {
			span := prep.RawMax[i] - prep.RawMin[i]
			if span <= 0 {
				box[i] = rules.Interval{Lo: rawMin[i], Hi: rawMax[i]}
				continue
			}
			box[i] = rules.Interval{Lo: prep.InverseEdge(i, iv.Lo), Hi: prep.InverseEdge(i, iv.Hi)}
		}
		raw.Rules = append(raw.Rules, rules.Rule{Box: box, Label: r.Label})
	}
	return rules.Compile(raw, rules.NewQuantizer(rawMin, rawMax, bits))
}

// ClassifyFlow labels one raw (unscaled) 13-dimensional flow-feature
// vector: 0 benign, 1 malicious. Trained detectors use the forest;
// loaded (rule-based) detectors use the rule set, which agrees with the
// forest up to the consistency metric C.
func (d *Detector) ClassifyFlow(raw []float64) int {
	x := d.prep.Transform(raw)
	if d.forest == nil {
		return d.ruleSet.Match(x)
	}
	return d.forest.Predict(x)
}

// Score returns the malicious vote fraction in [0, 1] for a raw flow
// vector. Rule-based (loaded) detectors return 0/1.
func (d *Detector) Score(raw []float64) float64 {
	x := d.prep.Transform(raw)
	if d.forest == nil {
		return float64(d.ruleSet.Match(x))
	}
	return d.forest.Score(x)
}

// EnsembleScore returns the guiding autoencoder ensemble's continuous
// anomaly score for a raw flow vector.
func (d *Detector) EnsembleScore(raw []float64) float64 {
	return d.ensemble.Score(d.prep.Transform(raw))
}

// Rules returns the float-domain labelled rule set (whitelist +
// malicious cells).
func (d *Detector) Rules() *rules.RuleSet { return d.ruleSet }

// CompiledRules returns the quantised whitelist ready for switch
// installation.
func (d *Detector) CompiledRules() *rules.CompiledRuleSet { return d.compiled }

// WriteRules serialises the rule set as JSON.
func (d *Detector) WriteRules(w io.Writer) error { return d.ruleSet.WriteJSON(w) }

// Consistency measures §3.2.3's rule-fidelity metric C over raw flow
// vectors. A loaded (rule-only) detector has no forest to compare
// against — the rules ARE the model — so it returns 1.0, the rule
// set's self-consistency, instead of panicking.
func (d *Detector) Consistency(raw [][]float64) float64 {
	if d.forest == nil {
		return 1.0
	}
	model := d.prep.TransformAll(raw)
	return rules.Consistency(d.ruleSet, d.forest.Predict, model)
}

// DeployConfig parameterises NewDeployment.
type DeployConfig struct {
	// Slots is the per-hash-table flow-state capacity.
	Slots int
	// BlacklistCapacity bounds the blacklist table; the controller
	// evicts beyond it using the chosen policy.
	BlacklistCapacity int
	// Eviction selects FIFO or LRU blacklist eviction.
	Eviction controller.EvictionPolicy
	// DropMalicious selects drop versus forward-to-quarantine.
	DropMalicious bool
}

// Validate reports every configuration error at once, in the same
// joined-error style as Config.Validate. Zero values are valid (they
// select the documented defaults); negatives and unknown enum values
// are not. NewDeployment calls it.
func (c DeployConfig) Validate() error {
	var errs []error
	add := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf("iguard: deploy config: "+format, args...))
	}
	if c.Slots < 0 {
		add("Slots must be non-negative (0 means default), got %d", c.Slots)
	}
	if c.BlacklistCapacity < 0 {
		add("BlacklistCapacity must be non-negative (0 means default), got %d", c.BlacklistCapacity)
	}
	if c.Eviction != controller.FIFO && c.Eviction != controller.LRU {
		add("Eviction must be controller.FIFO or controller.LRU, got %d", c.Eviction)
	}
	return errors.Join(errs...)
}

// DefaultDeployConfig returns the evaluation's deployment parameters.
func DefaultDeployConfig() DeployConfig {
	return DeployConfig{Slots: 8192, BlacklistCapacity: 8192, Eviction: controller.LRU, DropMalicious: true}
}

// Deployment is a running data-plane/control-plane pair: the
// detector's whitelist installed on a simulated switch whose digest
// stream feeds a fresh controller. Drive traffic through
// Switch.ProcessPacket; inspect progress with Stats; detach the
// control loop with Close.
type Deployment struct {
	// Switch is the simulated programmable data plane.
	Switch *switchsim.Switch
	// Controller is the control-plane agent consuming the switch's
	// digests and managing the blacklist.
	Controller *controller.Controller
	closed     bool
}

// DeploymentStats is a point-in-time snapshot across both planes.
type DeploymentStats struct {
	// Controller aggregates the control-plane counters (digests,
	// installs, evictions).
	Controller controller.Stats
	// Usage is the data plane's hardware-resource footprint.
	Usage switchsim.Usage
	// ActiveFlows counts flow-state entries currently tracked.
	ActiveFlows int
	// BlacklistLen is the number of installed blacklist entries.
	BlacklistLen int
}

// NewDeployment validates the config and installs the detector's
// whitelist on a simulated switch wired to a fresh controller, both
// ready to process packets. The error is cfg.Validate()'s joined
// report; a validated config always deploys.
func (d *Detector) NewDeployment(cfg DeployConfig) (*Deployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return d.newDeployment(cfg), nil
}

// newDeployment builds the pair from an already-validated config.
func (d *Detector) newDeployment(cfg DeployConfig) *Deployment {
	sw := switchsim.New(switchsim.Config{
		Slots:             cfg.Slots,
		PktThreshold:      d.cfg.FlowThreshold,
		Timeout:           d.cfg.FlowTimeout,
		FLRules:           d.compiled,
		BlacklistCapacity: cfg.BlacklistCapacity,
		DropMalicious:     cfg.DropMalicious,
	})
	ctrl := controller.New(sw, cfg.BlacklistCapacity, cfg.Eviction)
	sw.SetSink(ctrl)
	return &Deployment{Switch: sw, Controller: ctrl}
}

// Sweep runs the control-plane timeout sweep at the given trace
// instant: flows idle past the configured timeout are classified and
// digested from their accumulated state, and stale flow labels are
// reclaimed so their slots free up. Without periodic sweeps, stale
// slots linger until a colliding flow evicts them as victims — a
// caller processing packets one at a time should sweep on a cadence
// of its own choosing (the serve runtime does this per shard, paced
// by capture timestamps). Sweep follows the switch's single-goroutine
// ownership contract: call it from the goroutine that drives
// ProcessPacket, with a monotonically non-decreasing now.
func (dep *Deployment) Sweep(now time.Time) {
	dep.Switch.SweepTimeouts(now)
}

// Stats snapshots counters from both planes.
func (dep *Deployment) Stats() DeploymentStats {
	return DeploymentStats{
		Controller:   dep.Controller.Stats(),
		Usage:        dep.Switch.Usage(),
		ActiveFlows:  dep.Switch.ActiveFlows(),
		BlacklistLen: dep.Switch.BlacklistLen(),
	}
}

// Close detaches the controller from the switch's digest stream; the
// switch keeps forwarding with whatever blacklist is installed, but no
// new control-plane actions occur. Idempotent, always returns nil (the
// error return anticipates deployments backed by real transports).
func (dep *Deployment) Close() error {
	if dep.closed {
		return nil
	}
	dep.closed = true
	dep.Switch.SetSink(nil)
	return nil
}

// Deploy installs the detector's whitelist on a simulated switch wired
// to a fresh controller, both ready to process packets. On an invalid
// config it returns (nil, nil); NewDeployment reports what was wrong.
//
// Deprecated: use NewDeployment, which validates the config, reports
// errors, and returns a *Deployment carrying the same pair plus Close
// and Stats. No in-tree caller uses this shim; it remains only for
// external code written against the tuple form.
func (d *Detector) Deploy(cfg DeployConfig) (*switchsim.Switch, *controller.Controller) {
	dep, err := d.NewDeployment(cfg)
	if err != nil {
		return nil, nil
	}
	return dep.Switch, dep.Controller
}

// ServeConfig parameterises NewServer. The zero value serves on one
// shard with the default deployment.
type ServeConfig struct {
	// Deploy configures each shard's private deployment. Slots and
	// BlacklistCapacity are per shard, so total capacity scales with
	// the shard count. A zero value uses DefaultDeployConfig.
	Deploy DeployConfig
	// Shards is the worker count; flows never span shards. 0 means 1.
	Shards int
	// QueueDepth bounds each shard's input queue (0 = 1024).
	QueueDepth int
	// Policy selects backpressure (serve.Block) or counted shedding
	// (serve.Drop) when a shard queue fills.
	Policy serve.DropPolicy
	// SweepEvery is the trace-time cadence of per-shard timeout
	// sweeps; zero disables them.
	SweepEvery time.Duration
	// BatchSize, when > 1, switches the ingest→decide path to batch
	// hand-off: packets accumulate into per-shard batches delivered as
	// one mailbox operation and decided by one batch pipeline pass.
	// Decisions are identical to the per-packet path; only the
	// per-packet overhead is amortised. 0 or 1 serves per packet.
	BatchSize int
	// BatchFlush bounds, in trace time, how long a partial batch may
	// wait before being handed off (0 = 1ms when batching is on). See
	// serve.Config.BatchFlush.
	BatchFlush time.Duration
	// Producers is the ingest lane count (0 = 1). Each lane is an
	// independent sequence space driven by one producer goroutine; see
	// serve.Config.Producers and the OnDecision ordering contract.
	Producers int
	// OnDecision observes every processed packet. seq is dense and
	// monotone within its lane, with no order across lanes — (lane,
	// seq) identifies a packet; with one producer lane it degenerates
	// to a single global sequence. See serve.Config.OnDecision.
	OnDecision func(shard int, lane uint32, seq uint64, p *Packet, d switchsim.Decision)
	// OnBlacklist observes blacklist transitions the shard controllers
	// decide locally (installs and capacity evictions). It runs on
	// shard goroutines and must be cheap and non-blocking; externally
	// applied operations (the server's ApplyInstall/ApplyRemove/
	// ApplyFlush — the federation apply path) do not fire it. See
	// serve.Config.OnBlacklist.
	OnBlacklist func(shard int, ev controller.Event)
	// Now supplies wall time for throughput stats; nil reports rates
	// over trace time (deterministic replays never consult the wall
	// clock).
	Now func() time.Time
}

// Validate reports every configuration error at once, in the same
// joined-error style as Config.Validate, folding in the per-shard
// DeployConfig's own report. NewServer calls it.
func (c ServeConfig) Validate() error {
	var errs []error
	add := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf("iguard: serve config: "+format, args...))
	}
	if c.Deploy != (DeployConfig{}) {
		if err := c.Deploy.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	if c.Shards < 0 {
		add("Shards must be non-negative (0 means 1), got %d", c.Shards)
	}
	if c.QueueDepth < 0 {
		add("QueueDepth must be non-negative (0 means default), got %d", c.QueueDepth)
	}
	if c.BatchSize < 0 {
		add("BatchSize must be non-negative (0 means unbatched), got %d", c.BatchSize)
	}
	if c.BatchSize > serve.MaxBatchSize {
		add("BatchSize must be at most %d, got %d", serve.MaxBatchSize, c.BatchSize)
	}
	if c.BatchFlush < 0 {
		add("BatchFlush must be non-negative (0 means default), got %v", c.BatchFlush)
	}
	if c.BatchFlush > 0 && c.BatchSize <= 1 {
		add("BatchFlush (%v) requires BatchSize > 1, got %d", c.BatchFlush, c.BatchSize)
	}
	if c.Producers < 0 {
		add("Producers must be non-negative (0 means 1), got %d", c.Producers)
	}
	if c.Producers > serve.MaxProducers {
		add("Producers must be at most %d, got %d", serve.MaxProducers, c.Producers)
	}
	return errors.Join(errs...)
}

// DefaultServeConfig returns a serving configuration matching the
// evaluation's deployment on four shards with trace-paced sweeps at
// the flow-timeout cadence and batched hand-off (64-packet batches,
// 1ms trace-time flush deadline).
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		Deploy:     DefaultDeployConfig(),
		Shards:     4,
		SweepEvery: 5 * time.Second,
		BatchSize:  64,
	}
}

// NewServer validates the config and builds the sharded streaming
// runtime for this detector: each shard owns a private deployment
// (switch + controller) carrying the detector's compiled whitelist,
// and packets are hash-partitioned by flow so the single-goroutine
// data-plane contract holds without hot-path locks. Swap a newly
// loaded model into the running server with srv.Swap(nil,
// newDet.CompiledRules()). See the serve package for the full
// concurrency contract and the batch hand-off semantics.
func (d *Detector) NewServer(cfg ServeConfig) (*serve.Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Deploy == (DeployConfig{}) {
		cfg.Deploy = DefaultDeployConfig()
	}
	return serve.New(serve.Config{
		Shards:      cfg.Shards,
		QueueDepth:  cfg.QueueDepth,
		Policy:      cfg.Policy,
		SweepEvery:  cfg.SweepEvery,
		BatchSize:   cfg.BatchSize,
		BatchFlush:  cfg.BatchFlush,
		Producers:   cfg.Producers,
		OnDecision:  cfg.OnDecision,
		OnBlacklist: cfg.OnBlacklist,
		Now:         cfg.Now,
		NewShard: func(int) serve.Shard {
			// Deploy was validated above, so the unchecked builder is
			// safe here.
			dep := d.newDeployment(cfg.Deploy)
			return serve.Shard{Switch: dep.Switch, Controller: dep.Controller}
		},
	})
}
