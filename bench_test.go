// Benchmarks regenerating every table and figure of the iGuard paper's
// evaluation (one benchmark per artefact), plus ablation benches for
// the design choices DESIGN.md calls out and micro-benches for the
// pipeline's hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches use the down-scaled QuickLabConfig and a small
// attack subset so a full -bench=. pass stays in CI territory;
// cmd/iguard-eval runs the full-size versions.
package iguard

import (
	"fmt"
	"testing"
	"time"

	"iguard/internal/analysis"
	"iguard/internal/experiments"
	"iguard/internal/features"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

// benchAttacks is the representative subset used by the per-figure
// benches (the five attacks of the paper's main body).
var benchAttacks = []traffic.AttackName{
	traffic.Mirai, traffic.OSScan, traffic.Aidra, traffic.Bashlite, traffic.UDPDDoS,
}

// newBenchLab returns a lab shared across iterations of one benchmark
// (the lab caches per-attack artefacts, so iterations beyond the first
// measure the experiment body, not model training).
func newBenchLab() *experiments.Lab {
	return experiments.NewLab(experiments.QuickLabConfig())
}

func BenchmarkFig2PathLengthOverlap(b *testing.B) {
	lab := newBenchLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunFig2(benchAttacks[:2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5CPUDetection(b *testing.B) {
	lab := newBenchLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunFig5(benchAttacks[:2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6SwitchDetection(b *testing.B) {
	lab := newBenchLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunFig6(benchAttacks[:1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Resources(b *testing.B) {
	lab := newBenchLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunTable1(benchAttacks[:1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Adversarial(b *testing.B) {
	lab := newBenchLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunTable2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Evasion(b *testing.B) {
	lab := newBenchLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunTable3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Candidates(b *testing.B) {
	lab := newBenchLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunFig10(benchAttacks[:1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConsistency(b *testing.B) {
	lab := newBenchLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunConsistency(benchAttacks[:1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppB1Throughput(b *testing.B) {
	lab := newBenchLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunAppB1(benchAttacks[:1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppB2ControlPlane(b *testing.B) {
	lab := newBenchLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunAppB2(benchAttacks[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablations: the design choices DESIGN.md calls out.
// ---------------------------------------------------------------------

// BenchmarkAblationTrainingAugmentation contrasts the node-augmentation
// counts the k grid search explores (§4.1 footnote 10): the entropy
// signal anchored on guide-labelled real samples (k=0) versus
// augmentation-heavy split search (k=32). Reported metric is macro F1
// on the Mirai test set, exposed via b.ReportMetric.
func BenchmarkAblationTrainingAugmentation(b *testing.B) {
	for _, k := range []int{0, 8, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			cfg := experiments.QuickLabConfig()
			cfg.GridK = []int{k}
			var f1 float64
			for i := 0; i < b.N; i++ {
				lab := experiments.NewLab(cfg)
				ctx, err := lab.Context(traffic.Mirai)
				if err != nil {
					b.Fatal(err)
				}
				hits, total := 0, 0
				for j, x := range ctx.Data.TestX {
					if ctx.Guard.Predict(x) == ctx.Data.TestY[j] {
						hits++
					}
					total++
				}
				f1 = float64(hits) / float64(total)
			}
			b.ReportMetric(f1, "agreement")
		})
	}
}

// BenchmarkAblationGridN contrasts fixed packet-count thresholds with
// the best-version grid search (§4.2.1 footnote 12).
func BenchmarkAblationGridN(b *testing.B) {
	for _, grid := range []struct {
		name string
		ns   []int
	}{{"fixed-n8", []int{8}}, {"grid", []int{2, 8}}} {
		b.Run(grid.name, func(b *testing.B) {
			cfg := experiments.QuickLabConfig()
			cfg.GridN = grid.ns
			var f1 float64
			for i := 0; i < b.N; i++ {
				lab := experiments.NewLab(cfg)
				res, err := lab.RunFig6([]traffic.AttackName{traffic.Mirai})
				if err != nil {
					b.Fatal(err)
				}
				f1 = res.Rows[0].IGuard.Summary.MacroF1
			}
			b.ReportMetric(f1, "macroF1")
		})
	}
}

// BenchmarkAblationRuleMerging measures the §3.2.3 adjacent-hypercube
// merge: rule-set size with and without it.
func BenchmarkAblationRuleMerging(b *testing.B) {
	lab := newBenchLab()
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = lab.RunAblationMerging(traffic.Mirai)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Rows[0].Rules), "rules_merged")
	b.ReportMetric(float64(res.Rows[1].Rules), "rules_raw")
}

// BenchmarkAblationGuidance contrasts guided splits, random splits with
// distillation, and the conventional iForest (isolating §3.2.1 from
// §3.2.2).
func BenchmarkAblationGuidance(b *testing.B) {
	lab := newBenchLab()
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = lab.RunAblationGuidance(traffic.Mirai)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.Logf("%s: macroF1=%.3f", row.Variant, row.MacroF1)
	}
	b.ReportMetric(res.Rows[0].MacroF1, "guided_f1")
	b.ReportMetric(res.Rows[1].MacroF1, "random_f1")
	b.ReportMetric(res.Rows[2].MacroF1, "iforest_f1")
}

// BenchmarkAblationBoundaryPeel contrasts the boundary peel on an
// out-of-range flood.
func BenchmarkAblationBoundaryPeel(b *testing.B) {
	lab := newBenchLab()
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = lab.RunAblationBoundaryPeel(traffic.UDPDDoS)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].MacroF1, "with_peel_f1")
	b.ReportMetric(res.Rows[1].MacroF1, "no_peel_f1")
}

// ---------------------------------------------------------------------
// Micro-benchmarks: the pipeline's hot paths.
// ---------------------------------------------------------------------

func BenchmarkSwitchProcessPacket(b *testing.B) {
	lab := newBenchLab()
	ctx, err := lab.Context(traffic.Mirai)
	if err != nil {
		b.Fatal(err)
	}
	det := switchDeployment(b, lab, ctx)
	trace := ctx.Data.TestTrace
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		det.ProcessPacket(&trace.Packets[i%len(trace.Packets)])
	}
}

func switchDeployment(b *testing.B, lab *experiments.Lab, ctx *experiments.AttackContext) *switchsim.Switch {
	b.Helper()
	return switchsim.New(switchsim.Config{
		Slots:        4096,
		PktThreshold: ctx.Data.Cfg.PktThreshold,
		Timeout:      ctx.Data.Cfg.Timeout,
		PLRules:      ctx.PLCompiled,
		FLRules:      ctx.GuardCompiled,
	})
}

func BenchmarkForestPredict(b *testing.B) {
	lab := newBenchLab()
	ctx, err := lab.Context(traffic.Mirai)
	if err != nil {
		b.Fatal(err)
	}
	x := ctx.Data.TestX[0]
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx.Guard.Predict(x)
	}
}

func BenchmarkEnsemblePredict(b *testing.B) {
	lab := newBenchLab()
	ctx, err := lab.Context(traffic.Mirai)
	if err != nil {
		b.Fatal(err)
	}
	x := ctx.Data.TestX[0]
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx.Ensemble.Predict(x)
	}
}

func BenchmarkCompiledRuleMatch(b *testing.B) {
	lab := newBenchLab()
	ctx, err := lab.Context(traffic.Mirai)
	if err != nil {
		b.Fatal(err)
	}
	raw := make([]float64, features.FLDim)
	for i := range raw {
		raw[i] = ctx.Data.Prep.InverseEdge(i, ctx.Data.TestX[0][i])
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx.GuardCompiled.Match(raw)
	}
}

func BenchmarkFlowExtraction(b *testing.B) {
	trace := traffic.GenerateBenign(1, 200)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		features.ExtractAll(trace.Packets, 8, 5e9)
	}
}

// BenchmarkVet measures one full iguard-vet suite run over the module
// (load, type-check, all analyzers): the cost of the CI lint gate.
func BenchmarkVet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		diags, err := analysis.Run(".", []string{"./..."}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("tree not clean: %d findings", len(diags))
		}
	}
}

// TestVetWallClockBudget guards the lint gate's latency: the full
// suite — including the interprocedural hotpath/shardown walks — must
// stay within 2× of the pre-interprocedural baseline (1.5 s/op on the
// reference box). The absolute ceiling is set loose (8 s) so slower CI
// hardware doesn't flake, while a superlinear regression in the call-
// graph walks (the failure mode the budget exists to catch) still
// trips it.
func TestVetWallClockBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module vet run; skipped with -short")
	}
	start := time.Now()
	diags, err := analysis.Run(".", []string{"./..."}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("tree not clean: %d findings", len(diags))
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Errorf("full vet run took %v, budget 8s (2× the 1.5s baseline plus hardware headroom)", elapsed)
	}
}

func BenchmarkTrainPipeline(b *testing.B) {
	trace := traffic.GenerateBenign(1, 150)
	cfg := DefaultConfig()
	cfg.AEEpochs = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(trace.Packets, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainParallelism measures the full training pipeline at
// increasing worker counts — the model is byte-identical at every P
// (pinned by TestTrainDeterminismAcrossParallelism); only wall-clock
// changes. Run on a multi-core box:
//
//	make bench-parallel
func BenchmarkTrainParallelism(b *testing.B) {
	trace := traffic.GenerateBenign(1, 300)
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.AEEpochs = 10
			cfg.Parallelism = p
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Train(trace.Packets, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
