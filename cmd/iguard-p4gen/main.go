// Command iguard-p4gen emits the deployable switch artefacts for a
// trained iGuard model: the P4_16 data-plane program (Fig. 4 pipeline,
// TNA structure), the whitelist rule entries, and the feature-quantiser
// configuration a runtime agent installs at boot.
//
// Usage:
//
//	iguard-p4gen -model model.json -out ./deploy
//	iguard-p4gen -train-synthetic 400 -out ./deploy -name iguard_pipe
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"iguard"
	"iguard/internal/p4gen"
	"iguard/internal/traffic"
)

func main() {
	var (
		modelPath = flag.String("model", "", "detector model JSON written by iguard.(*Detector).Save")
		trainSyn  = flag.Int("train-synthetic", 0, "train on this many synthetic benign flows instead of -model")
		outDir    = flag.String("out", ".", "output directory for the artefacts")
		name      = flag.String("name", "iguard", "P4 program name")
		slots     = flag.Int("slots", 8192, "flow-state slots per hash table")
		seed      = flag.Int64("seed", 1, "training seed when -train-synthetic is used")
	)
	flag.Parse()

	var det *iguard.Detector
	var err error
	switch {
	case *modelPath != "":
		f, ferr := os.Open(*modelPath)
		if ferr != nil {
			fatal(ferr)
		}
		det, err = iguard.Load(f)
		f.Close()
	case *trainSyn > 0:
		cfg := iguard.DefaultConfig()
		cfg.Seed = *seed
		det, err = iguard.Train(traffic.GenerateBenign(*seed, *trainSyn).Packets, cfg)
	default:
		err = fmt.Errorf("provide -model or -train-synthetic")
	}
	if err != nil {
		fatal(err)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	dep := p4gen.Deployment{
		ProgramName:  *name,
		FLRules:      det.CompiledRules(),
		Slots:        *slots,
		PktThreshold: iguard.DefaultConfig().FlowThreshold,
		Timeout:      iguard.DefaultConfig().FlowTimeout,
	}
	open := func(fname string) (io.WriteCloser, error) {
		path := filepath.Join(*outDir, fname)
		fmt.Println("writing", path)
		return os.Create(path)
	}
	if err := p4gen.Bundle(dep, open); err != nil {
		fatal(err)
	}
	fmt.Printf("emitted %d whitelist rules into %s\n", len(det.CompiledRules().Rules), *outDir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iguard-p4gen:", err)
	os.Exit(1)
}
