// Command iguard-p4gen emits the deployable switch artefacts for a
// trained iGuard model: the P4_16 data-plane program (Fig. 4 pipeline,
// TNA structure), the artefact manifest, the whitelist rule entries,
// and the feature-quantiser configuration a runtime agent installs at
// boot. With -check the emitted bundle is immediately verified by the
// iguard-p4lint analyzers (round-tripped against the in-process rule
// set) and summarised against the Tofino-1 resource budget; findings or
// an over-budget deployment exit nonzero.
//
// Usage:
//
//	iguard-p4gen -model model.json -out ./deploy
//	iguard-p4gen -train-synthetic 400 -out ./deploy -name iguard_pipe -check
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"iguard"
	"iguard/internal/p4gen"
	"iguard/internal/p4lint"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

func main() {
	var (
		modelPath = flag.String("model", "", "detector model JSON written by iguard.(*Detector).Save")
		trainSyn  = flag.Int("train-synthetic", 0, "train on this many synthetic benign flows instead of -model")
		outDir    = flag.String("out", ".", "output directory for the artefacts")
		name      = flag.String("name", "iguard", "P4 program name")
		slots     = flag.Int("slots", 8192, "flow-state slots per hash table")
		seed      = flag.Int64("seed", 1, "training seed when -train-synthetic is used")
		check     = flag.Bool("check", false, "run the p4lint analyzers over the emitted bundle and summarise the resource fit")
	)
	flag.Parse()

	var det *iguard.Detector
	var err error
	switch {
	case *modelPath != "":
		f, ferr := os.Open(*modelPath)
		if ferr != nil {
			fatal(ferr)
		}
		det, err = iguard.Load(f)
		f.Close()
	case *trainSyn > 0:
		cfg := iguard.DefaultConfig()
		cfg.Seed = *seed
		det, err = iguard.Train(traffic.GenerateBenign(*seed, *trainSyn).Packets, cfg)
	default:
		err = fmt.Errorf("provide -model or -train-synthetic")
	}
	if err != nil {
		fatal(err)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	dep := p4gen.Deployment{
		ProgramName:  *name,
		FLRules:      det.CompiledRules(),
		Slots:        *slots,
		PktThreshold: iguard.DefaultConfig().FlowThreshold,
		Timeout:      iguard.DefaultConfig().FlowTimeout,
	}
	open := func(fname string) (io.WriteCloser, error) {
		path := filepath.Join(*outDir, fname)
		fmt.Println("writing", path)
		return os.Create(path)
	}
	if err := p4gen.Bundle(dep, open); err != nil {
		fatal(err)
	}
	fmt.Printf("emitted %d whitelist rules into %s\n", len(det.CompiledRules().Rules), *outDir)

	if *check {
		os.Exit(runCheck(*outDir, *name, dep))
	}
}

// runCheck lints the just-emitted bundle, round-tripping it against the
// in-process compiled rule sets, and prints a usage-vs-budget summary.
// Returns the process exit code: 0 clean and fitting, 1 otherwise.
func runCheck(dir, name string, dep p4gen.Deployment) int {
	b, err := p4lint.LoadBundleNamed(dir, name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iguard-p4gen: -check:", err)
		return 1
	}
	b.FLRules = dep.FLRules
	b.PLRules = dep.PLRules
	diags := p4lint.Lint(b, nil)
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}

	budget := switchsim.Tofino1Budget()
	usage := b.FitUsage()
	fmt.Printf("resource fit: %s\n", usage.Fractions(budget))
	over := usage.Over(budget)
	for _, o := range over {
		fmt.Println("over budget:", o)
	}
	if len(diags) > 0 || len(over) > 0 {
		return 1
	}
	fmt.Println("p4lint: bundle clean, fits the switch budget")
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iguard-p4gen:", err)
	os.Exit(1)
}
