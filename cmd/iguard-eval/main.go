// Command iguard-eval regenerates the tables and figures of the iGuard
// paper's evaluation on synthetic workloads. Each experiment prints the
// same rows/series the paper reports.
//
// Usage:
//
//	iguard-eval -exp all                # every experiment
//	iguard-eval -exp fig5,table1        # a subset
//	iguard-eval -exp fig6 -attacks "Mirai,UDP DDoS"
//	iguard-eval -quick                  # down-scaled configuration
//
// Experiments: fig2, fig5, fig6, table1, table2, table3, fig10,
// consistency, appb1, appb2, ablation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"iguard/internal/experiments"
	"iguard/internal/traffic"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiments to run (fig2,fig5,fig6,table1,table2,table3,fig10,consistency,appb1,appb2,ablation,all)")
		attackFlag = flag.String("attacks", "", "comma-separated attack subset (default: all 15)")
		quick      = flag.Bool("quick", false, "use the down-scaled configuration")
		seed       = flag.Int64("seed", 1, "experiment seed")
		format     = flag.String("format", "text", "output format: text or json")
		workers    = flag.Int("parallelism", 0, "training worker pool size (0 = GOMAXPROCS); results are identical for every value")
	)
	flag.Parse()

	cfg := experiments.DefaultLabConfig()
	if *quick {
		cfg = experiments.QuickLabConfig()
	}
	cfg.Data.Seed = *seed
	cfg.Parallelism = *workers
	lab := experiments.NewLab(cfg)

	attacks := traffic.AllAttacks()
	if *attackFlag != "" {
		attacks = nil
		for _, name := range strings.Split(*attackFlag, ",") {
			attacks = append(attacks, traffic.AttackName(strings.TrimSpace(name)))
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]

	jsonOut := map[string]interface{}{}
	run := func(name string, fn func() (fmt.Stringer, error)) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		res, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if *format == "json" {
			jsonOut[name] = res
			fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
			return
		}
		fmt.Println(res)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("fig2", func() (fmt.Stringer, error) { return lab.RunFig2(attacks) })
	run("fig5", func() (fmt.Stringer, error) { return lab.RunFig5(attacks) })
	run("fig6", func() (fmt.Stringer, error) { return lab.RunFig6(attacks) })
	run("table1", func() (fmt.Stringer, error) { return lab.RunTable1(attacks) })
	run("table2", func() (fmt.Stringer, error) { return lab.RunTable2() })
	run("table3", func() (fmt.Stringer, error) { return lab.RunTable3() })
	run("fig10", func() (fmt.Stringer, error) { return lab.RunFig10(attacks) })
	run("consistency", func() (fmt.Stringer, error) { return lab.RunConsistency(attacks) })
	run("appb1", func() (fmt.Stringer, error) { return lab.RunAppB1(attacks) })
	run("appb2", func() (fmt.Stringer, error) { return lab.RunAppB2(attacks[0]) })
	run("ablation", func() (fmt.Stringer, error) {
		g, err := lab.RunAblationGuidance(attacks[0])
		if err != nil {
			return nil, err
		}
		m, err := lab.RunAblationMerging(attacks[0])
		if err != nil {
			return nil, err
		}
		p, err := lab.RunAblationBoundaryPeel(traffic.UDPDDoS)
		if err != nil {
			return nil, err
		}
		return multiResult{g, m, p}, nil
	})

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// multiResult concatenates several experiment renders.
type multiResult []fmt.Stringer

func (m multiResult) String() string {
	var sb strings.Builder
	for _, r := range m {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
