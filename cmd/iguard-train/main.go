// Command iguard-train runs the control-plane training pipeline of
// Fig. 1: it reads benign training traffic from a PCAP trace (or
// generates a synthetic one), trains the autoencoder ensemble and the
// guided, distilled isolation forest, and emits the whitelist rules as
// JSON ready for switch installation.
//
// Usage:
//
//	iguard-train -pcap benign.pcap -rules rules.json
//	iguard-train -synthetic 500 -rules rules.json -n 16 -timeout 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"iguard"
	"iguard/internal/netpkt"
	"iguard/internal/traffic"
)

func main() {
	var (
		pcapPath  = flag.String("pcap", "", "benign training PCAP (mutually exclusive with -synthetic)")
		synthetic = flag.Int("synthetic", 0, "generate this many synthetic benign flows instead of reading a PCAP")
		rulesOut  = flag.String("rules", "rules.json", "output path for the whitelist rules JSON")
		n         = flag.Int("n", 16, "per-flow packet-count threshold")
		timeout   = flag.Duration("timeout", 5*time.Second, "flow idle timeout δ")
		seed      = flag.Int64("seed", 1, "training seed")
		epochs    = flag.Int("epochs", 40, "autoencoder training epochs")
		workers   = flag.Int("parallelism", 0, "training worker pool size (0 = GOMAXPROCS); the trained model is identical for every value")
	)
	flag.Parse()

	var packets []iguard.Packet
	switch {
	case *pcapPath != "":
		f, err := os.Open(*pcapPath)
		if err != nil {
			fatal(err)
		}
		r, err := netpkt.NewPcapReader(f)
		if err != nil {
			fatal(err)
		}
		packets, err = r.ReadAll()
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *synthetic > 0:
		packets = traffic.GenerateBenign(*seed, *synthetic).Packets
	default:
		fatal(fmt.Errorf("provide -pcap or -synthetic"))
	}
	fmt.Printf("training on %d benign packets (n=%d, δ=%v)\n", len(packets), *n, *timeout)

	cfg := iguard.DefaultConfig()
	cfg.Seed = *seed
	cfg.FlowThreshold = *n
	cfg.FlowTimeout = *timeout
	cfg.AEEpochs = *epochs
	cfg.Parallelism = *workers

	// Ctrl-C cancels training cooperatively instead of killing the
	// process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	det, err := iguard.TrainContext(ctx, packets, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trained in %v: %d rules (%d whitelist), %d TCAM rules after quantisation\n",
		time.Since(start).Round(time.Millisecond),
		det.Rules().Len(), len(det.Rules().Whitelist()), len(det.CompiledRules().Rules))

	out, err := os.Create(*rulesOut)
	if err != nil {
		fatal(err)
	}
	defer out.Close()
	if err := det.WriteRules(out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote rules to %s\n", *rulesOut)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iguard-train:", err)
	os.Exit(1)
}
