// Command iguard-vet runs the project's custom static-analysis suite
// (internal/analysis) over the module. Syntactic analyzers: determinism
// (no global RNG, no wall clock, no unordered map iteration in library
// code), error hygiene (no discarded errors, no panic(err)), numeric
// safety (no exact float equality), and output hygiene (no printing
// from library code). CFG/dataflow analyzers: seedflow (taint-tracks
// nondeterministic values into rand constructors, reporting the
// source→sink path), lockcheck (mutex pairing on all paths, no
// blocking calls under a held lock, no lock copies), and deadstore
// (stores never read, unreachable statements). The suppress analyzer
// keeps //iguard: directives honest by flagging stale ones.
//
// Usage:
//
//	iguard-vet [-json|-sarif] [-fix] [-determinism=false] [...] [packages]
//
// -fix applies suggested fixes (dead-store deletions, stale-directive
// removals) to the tree, re-running until the findings converge; -sarif
// emits a SARIF 2.1.0 log for CI code-scanning upload. It exits 0 when
// clean, 1 on findings, 2 on load errors, so it slots directly into
// `make lint` and CI.
package main

import (
	"os"

	"iguard/internal/analysis"
)

func main() {
	os.Exit(analysis.Execute(os.Args[1:], os.Stdout, os.Stderr))
}
