// Command iguard-vet runs the project's custom static-analysis suite
// (internal/analysis) over the module: determinism (no global RNG, no
// wall clock, no unordered map iteration in library code), error
// hygiene (no discarded errors, no panic(err)), numeric safety (no
// exact float equality), and output hygiene (no printing from library
// code).
//
// Usage:
//
//	iguard-vet [-json] [-determinism=false] [...] [packages]
//
// It exits 0 when clean, 1 on findings, 2 on load errors, so it slots
// directly into `make lint` and CI.
package main

import (
	"os"

	"iguard/internal/analysis"
)

func main() {
	os.Exit(analysis.Execute(os.Args[1:], os.Stdout, os.Stderr))
}
