// Command pcapgen writes the synthetic benign and attack traces used by
// the iGuard evaluation as classic .pcap files, so the rest of the
// tooling (iguard-train, iguard-switch, or external tools) can consume
// them as it would consume the paper's datasets.
//
// Usage:
//
//	pcapgen -kind benign -flows 500 -out benign.pcap
//	pcapgen -kind "UDP DDoS" -flows 50 -out udpddos.pcap
//	pcapgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"iguard/internal/netpkt"
	"iguard/internal/traffic"
)

func main() {
	var (
		kind  = flag.String("kind", "benign", `"benign" or an attack name (see -list)`)
		flows = flag.Int("flows", 200, "number of flows to generate")
		out   = flag.String("out", "trace.pcap", "output pcap path")
		seed  = flag.Int64("seed", 1, "generator seed")
		list  = flag.Bool("list", false, "list attack names and exit")
		stats = flag.Bool("stats", false, "print trace statistics")
	)
	flag.Parse()

	if *list {
		fmt.Println("benign")
		for _, a := range traffic.AllAttacks() {
			fmt.Println(a)
		}
		return
	}

	var tr *traffic.Trace
	if *kind == "benign" {
		tr = traffic.GenerateBenign(*seed, *flows)
	} else {
		var err error
		tr, err = traffic.GenerateAttack(traffic.AttackName(*kind), *seed, *flows)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	w := netpkt.NewPcapWriter(f)
	for i := range tr.Packets {
		if err := w.WritePacket(&tr.Packets[i]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d packets (%d malicious flows) to %s\n", w.PacketCount, len(tr.Malicious), *out)
	if *stats {
		fmt.Print(traffic.Summarise(tr))
	}
}
