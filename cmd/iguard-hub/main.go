// Command iguard-hub runs the federation controller plane: N
// iguard-serve nodes connect (via -hub), announce the blacklist rules
// their local controllers install, and receive every other node's
// installs back, so an attacker flagged at one vantage point is
// blocked at all of them within one broadcast round.
//
// The hub is stateless across restarts by design: its blacklist view
// is the union of what live nodes have announced, and a restarted hub
// is repopulated as nodes reconnect and re-announce. SIGINT/SIGTERM
// disconnect all nodes and print final stats.
//
// Usage:
//
//	iguard-hub -listen 127.0.0.1:7001
//	iguard-serve -hub 127.0.0.1:7001 -node-id 1 ...
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"iguard/internal/fed"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7001", "TCP address to accept node connections on")
		nodeID    = flag.Uint64("node-id", 100, "hub identity carried in HELLO replies")
		keepalive = flag.Duration("keepalive", 15*time.Second, "send-idle keepalive cadence per connection (<0 disables)")
		readTO    = flag.Duration("read-timeout", 0, "dead-peer cutoff: drop a node silent for this long (0 disables)")
		depth     = flag.Int("outbound-depth", 256, "per-node outbound queue depth; a node that cannot drain it is kicked")
		statsEv   = flag.Duration("stats-every", 0, "print live hub stats at this interval (0 disables)")
		verbose   = flag.Bool("v", false, "log per-connection lifecycle events")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	cfg := fed.HubConfig{
		NodeID:        *nodeID,
		Keepalive:     *keepalive,
		ReadTimeout:   *readTO,
		OutboundDepth: *depth,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	hub := fed.NewHub(ln, cfg)
	fmt.Printf("iguard-hub: listening on %s (node-id %d, protocol v%d)\n", hub.Addr(), *nodeID, fed.Version)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hub.Serve() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	var ticker <-chan time.Time
	if *statsEv > 0 {
		tk := time.NewTicker(*statsEv)
		defer tk.Stop()
		ticker = tk.C
	}

supervise:
	for {
		select {
		case err := <-serveErr:
			if err != nil {
				fatal(err)
			}
			break supervise
		case <-ticker:
			fmt.Printf("-- live --\n%s\n", hub.Stats())
		case sig := <-sigc:
			fmt.Fprintf(os.Stderr, "iguard-hub: %v: shutting down\n", sig)
			if err := hub.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "iguard-hub: close:", err)
			}
			break supervise
		}
	}

	fmt.Println(hub.Stats())
	nodes := hub.NodeStats()
	ids := make([]uint64, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := nodes[id]
		fmt.Printf("node %d: packets=%d installed=%d evicted=%d resident=%d queueDrops=%d outboxDrops=%d\n",
			id, p.Packets, p.Installed, p.Evicted, p.BlacklistLen, p.QueueDrops, p.OutboxDrops)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iguard-hub:", err)
	os.Exit(1)
}
