// Command iguard-p4lint parses and verifies the P4_16 artefact bundles
// that iguard-p4gen emits, checking them against the switch resource
// model. It lexes and parses the emitted program into a positioned AST
// and runs five artefact analyzers: nameres (every referenced state,
// action, table, and field resolves), widths (declared bit-widths match
// the quantiser bits and the FlowKey/feature encoding), tables (sizes
// are covering powers of two and rule entries are valid TCAM range
// expansions), quantizer (monotone bin edges, 2^bits bins, config
// round-trips the compiled rule set), and fit (the deployment fits the
// Tofino-1 stage/TCAM/SRAM budget under greedy stage allocation).
//
// Usage:
//
//	iguard-p4lint [-json|-sarif] [-program name] [-only a,b] <bundle-dir>
//
// The bundle directory is one produced by iguard-p4gen: the .p4
// program, its _manifest.json, and the rule/quantiser config files.
// -sarif emits a SARIF 2.1.0 log for CI code-scanning upload. It exits
// 0 when clean, 1 on findings, 2 on load errors, so it slots directly
// into `make p4lint` and CI.
package main

import (
	"os"

	"iguard/internal/p4lint"
)

func main() {
	os.Exit(p4lint.Execute(os.Args[1:], os.Stdout, os.Stderr))
}
