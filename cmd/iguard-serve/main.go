// Command iguard-serve runs the sharded streaming detection runtime as
// a long-lived daemon: packets from a PCAP replay (or a synthetic
// trace) are hash-partitioned across shard workers, each owning a
// private switch+controller pair, and per-path/controller statistics
// are printed on exit.
//
// Signals drive the lifecycle: SIGINT/SIGTERM drain the shards and
// exit cleanly; SIGHUP reloads the model file given via -model and
// hot-swaps the compiled whitelist into the running shards without a
// restart.
//
// Usage:
//
//	iguard-serve -model model.json -replay mixed.pcap -shards 4
//	iguard-serve -train-synthetic 300 -attack "UDP DDoS" -stats-every 2s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"iguard"
	"iguard/internal/netpkt"
	"iguard/internal/rules"
	"iguard/internal/serve"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

func main() {
	var (
		modelPath  = flag.String("model", "", "detector model JSON written by iguard.(*Detector).Save (reloaded on SIGHUP)")
		replayPath = flag.String("replay", "", "PCAP trace to stream through the shards")
		trainSyn   = flag.Int("train-synthetic", 0, "train on this many synthetic benign flows instead of -model")
		attackName = flag.String("attack", "UDP DDoS", "synthetic attack mixed into the replay when no -replay PCAP is given")
		attackFl   = flag.Int("attack-flows", 40, "synthetic attack flow count")
		benignFl   = flag.Int("benign-flows", 200, "synthetic benign replay flow count")
		seed       = flag.Int64("seed", 7, "synthetic generation seed")
		shards     = flag.Int("shards", 4, "shard worker count (each owns a private switch+controller)")
		queue      = flag.Int("queue", 1024, "per-shard mailbox depth")
		dropPolicy = flag.String("drop-policy", "block", "backpressure policy: block or drop")
		sweepEvery = flag.Duration("sweep", 5*time.Second, "idle-flow sweep cadence in trace time (0 disables)")
		batchSize  = flag.Int("batch", 64, "per-shard hand-off batch size (0 or 1 serves per packet)")
		batchFlush = flag.Duration("batch-flush", 0, "trace-time flush deadline for partial batches (0 = 1ms when batching)")
		statsEvery = flag.Duration("stats-every", 0, "print live aggregate stats at this wall-clock interval (0 disables)")
	)
	flag.Parse()

	policy, err := serve.ParseDropPolicy(*dropPolicy)
	if err != nil {
		fatal(err)
	}
	det := loadOrTrain(*modelPath, *trainSyn, *seed)

	var decisions atomic.Uint64
	cfg := iguard.DefaultServeConfig()
	cfg.Shards = *shards
	cfg.QueueDepth = *queue
	cfg.Policy = policy
	cfg.SweepEvery = *sweepEvery
	cfg.BatchSize = *batchSize
	cfg.BatchFlush = *batchFlush
	cfg.OnDecision = func(int, uint64, *iguard.Packet, switchsim.Decision) {
		decisions.Add(1)
	}
	cfg.Now = time.Now
	srv, err := det.NewServer(cfg)
	if err != nil {
		fatal(err)
	}
	if *batchSize > 1 {
		fmt.Printf("serving %d shard(s), batch=%d; whitelist: %s\n", *shards, *batchSize, matcherInfo(det.CompiledRules()))
	} else {
		fmt.Printf("serving %d shard(s); whitelist: %s\n", *shards, matcherInfo(det.CompiledRules()))
	}

	src, closer, err := openSource(*replayPath, *seed, *benignFl, *attackName, *attackFl)
	if err != nil {
		fatal(err)
	}
	defer closer()

	// The supervisor goroutine below is the only caller of Swap, Stats
	// and Close; the replay goroutine is the single producer. That is
	// exactly the concurrency contract internal/serve documents.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type replayResult struct {
		accepted, dropped uint64
		err               error
	}
	done := make(chan replayResult, 1)
	go func() {
		// Replay streams through the batch face (native for trace
		// sources, adapted for PCAP) and flushes the pending tail at
		// end of stream.
		acc, drop, err := srv.Replay(ctx, src)
		done <- replayResult{acc, drop, err}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	var ticker <-chan time.Time
	if *statsEvery > 0 {
		tk := time.NewTicker(*statsEvery)
		defer tk.Stop()
		ticker = tk.C
	}

	var res replayResult
supervise:
	for {
		select {
		case res = <-done:
			break supervise
		case <-ticker:
			fmt.Printf("-- live --\n%s\n", srv.Stats())
		case sig := <-sigc:
			switch sig {
			case syscall.SIGHUP:
				if *modelPath == "" {
					fmt.Fprintln(os.Stderr, "iguard-serve: SIGHUP ignored: no -model file to reload")
					continue
				}
				nd, err := loadModel(*modelPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "iguard-serve: reload failed:", err)
					continue
				}
				if err := srv.Swap(nil, nd.CompiledRules()); err != nil {
					fmt.Fprintln(os.Stderr, "iguard-serve: swap failed:", err)
					continue
				}
				fmt.Fprintln(os.Stderr, "iguard-serve: model reloaded and hot-swapped; whitelist:", matcherInfo(nd.CompiledRules()))
			default:
				fmt.Fprintf(os.Stderr, "iguard-serve: %v: draining...\n", sig)
				cancel()
				res = <-done
				break supervise
			}
		}
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	// A replay cut short by our own drain signal is a clean shutdown,
	// not a failure.
	if res.err != nil && !errors.Is(res.err, context.Canceled) {
		fatal(res.err)
	}

	st := srv.Stats()
	fmt.Printf("accepted=%d dropped=%d decisions=%d\n", res.accepted, res.dropped, decisions.Load())
	fmt.Println(st)
	if st.Packets == 0 {
		fatal(fmt.Errorf("no packets processed"))
	}
}

// openSource builds the packet source: a streaming PCAP reader when
// -replay is given, otherwise a synthetic benign+attack mix.
func openSource(replayPath string, seed int64, benignFl int, attackName string, attackFl int) (serve.Source, func(), error) {
	if replayPath != "" {
		f, err := os.Open(replayPath)
		if err != nil {
			return nil, nil, err
		}
		r, err := netpkt.NewPcapReader(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return serve.PcapSource{R: r}, func() { f.Close() }, nil
	}
	benign := traffic.GenerateBenign(seed+1, benignFl)
	attack, err := traffic.GenerateAttack(traffic.AttackName(attackName), seed+2, attackFl)
	if err != nil {
		return nil, nil, err
	}
	return serve.NewTraceSource(benign.Merge(attack).Packets), func() {}, nil
}

// matcherInfo summarises the compiled whitelist's software match path:
// rule count, implementation (bit-vector vs linear fallback), and the
// memory the bit-vector index trades for its constant-time lookups.
func matcherInfo(c *rules.CompiledRuleSet) string {
	return fmt.Sprintf("%d rules via %s index (%.1f KiB)",
		len(c.Rules), c.MatcherKind(), float64(c.BVIndexBytes())/1024)
}

func loadModel(path string) (*iguard.Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return iguard.Load(f)
}

func loadOrTrain(modelPath string, trainSyn int, seed int64) *iguard.Detector {
	if modelPath != "" {
		det, err := loadModel(modelPath)
		if err != nil {
			fatal(err)
		}
		return det
	}
	if trainSyn <= 0 {
		trainSyn = 300
	}
	fmt.Printf("training on %d synthetic benign flows...\n", trainSyn)
	cfg := iguard.DefaultConfig()
	cfg.Seed = seed
	det, err := iguard.Train(traffic.GenerateBenign(seed, trainSyn).Packets, cfg)
	if err != nil {
		fatal(err)
	}
	return det
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iguard-serve:", err)
	os.Exit(1)
}
