// Command iguard-serve runs the sharded streaming detection runtime as
// a long-lived daemon: packets from a PCAP replay (or a synthetic
// trace) are hash-partitioned across shard workers, each owning a
// private switch+controller pair, and per-path/controller statistics
// are printed on exit.
//
// Signals drive the lifecycle: SIGINT/SIGTERM drain the shards and
// exit cleanly; SIGHUP reloads the model file given via -model and
// hot-swaps the compiled whitelist into the running shards without a
// restart.
//
// With -hub the node joins a federation: blacklist rules its own
// controllers install are announced to an iguard-hub controller plane,
// and rules announced by other nodes are applied locally, so the fleet
// converges on one blacklist view. A dead hub degrades the node to
// exactly its standalone behaviour.
//
// Usage:
//
//	iguard-serve -model model.json -replay mixed.pcap -shards 4
//	iguard-serve -train-synthetic 300 -attack "UDP DDoS" -stats-every 2s
//	iguard-serve -hub 127.0.0.1:7001 -node-id 1 -linger 30s
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"iguard"
	"iguard/internal/controller"
	"iguard/internal/fed"
	"iguard/internal/netpkt"
	"iguard/internal/rules"
	"iguard/internal/serve"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

func main() {
	var (
		modelPath  = flag.String("model", "", "detector model JSON written by iguard.(*Detector).Save (reloaded on SIGHUP)")
		replayPath = flag.String("replay", "", "PCAP trace to stream through the shards")
		trainSyn   = flag.Int("train-synthetic", 0, "train on this many synthetic benign flows instead of -model")
		attackName = flag.String("attack", "UDP DDoS", "synthetic attack mixed into the replay when no -replay PCAP is given")
		attackFl   = flag.Int("attack-flows", 40, "synthetic attack flow count")
		benignFl   = flag.Int("benign-flows", 200, "synthetic benign replay flow count")
		seed       = flag.Int64("seed", 7, "synthetic generation seed")
		shards     = flag.Int("shards", 4, "shard worker count (each owns a private switch+controller)")
		queue      = flag.Int("queue", 1024, "per-shard mailbox depth")
		dropPolicy = flag.String("drop-policy", "block", "backpressure policy: block or drop")
		sweepEvery = flag.Duration("sweep", 5*time.Second, "idle-flow sweep cadence in trace time (0 disables)")
		batchSize  = flag.Int("batch", 64, "per-shard hand-off batch size (0 or 1 serves per packet)")
		batchFlush = flag.Duration("batch-flush", 0, "trace-time flush deadline for partial batches (0 = 1ms when batching)")
		producers  = flag.Int("producers", 1, "ingest lane count (RSS-style; >1 replays through concurrent producer goroutines)")
		statsEvery = flag.Duration("stats-every", 0, "print live aggregate stats at this wall-clock interval (0 disables)")
		statsJSON  = flag.Bool("stats-json", false, "print the final aggregate stats as one JSON object (machine-parseable)")
		hubAddr    = flag.String("hub", "", "federation hub address; empty runs standalone")
		nodeID     = flag.Uint64("node-id", 1, "this node's federation identity (give each node a distinct ID)")
		linger     = flag.Duration("linger", 0, "keep serving this long after the replay ends (lets federated installs keep arriving)")
	)
	flag.Parse()

	policy, err := serve.ParseDropPolicy(*dropPolicy)
	if err != nil {
		fatal(err)
	}
	det := loadOrTrain(*modelPath, *trainSyn, *seed)

	var decisions atomic.Uint64
	cfg := iguard.DefaultServeConfig()
	cfg.Shards = *shards
	cfg.QueueDepth = *queue
	cfg.Policy = policy
	cfg.SweepEvery = *sweepEvery
	cfg.BatchSize = *batchSize
	cfg.BatchFlush = *batchFlush
	cfg.Producers = *producers
	cfg.OnDecision = func(int, uint32, uint64, *iguard.Packet, switchsim.Decision) {
		decisions.Add(1)
	}
	// agent is written once, before the replay producer starts; the
	// observer runs on shard goroutines whose work arrives over the
	// producer's channels, so that write happens-before every read
	// here. Only locally decided installs are announced — evictions
	// stay local, and hub-applied installs never fire this observer —
	// which is what keeps the federation loop-free.
	var agent *fed.Agent
	if *hubAddr != "" {
		cfg.OnBlacklist = func(_ int, ev controller.Event) {
			if ev.Op == controller.OpInstall {
				agent.Announce(ev.Key)
			}
		}
	}
	cfg.Now = time.Now
	srv, err := det.NewServer(cfg)
	if err != nil {
		fatal(err)
	}
	if *hubAddr != "" {
		agent, err = fed.NewAgent(fed.AgentConfig{
			Addr:   *hubAddr,
			NodeID: *nodeID,
			Apply:  srv,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		agent.Start()
		fmt.Printf("federating with hub %s as node %d\n", *hubAddr, *nodeID)
	}
	switch {
	case *producers > 1 && *batchSize > 1:
		fmt.Printf("serving %d shard(s), batch=%d, producers=%d; whitelist: %s\n", *shards, *batchSize, *producers, matcherInfo(det.CompiledRules()))
	case *batchSize > 1:
		fmt.Printf("serving %d shard(s), batch=%d; whitelist: %s\n", *shards, *batchSize, matcherInfo(det.CompiledRules()))
	default:
		fmt.Printf("serving %d shard(s); whitelist: %s\n", *shards, matcherInfo(det.CompiledRules()))
	}

	src, closer, err := openSource(*replayPath, *seed, *benignFl, *attackName, *attackFl)
	if err != nil {
		fatal(err)
	}
	defer closer()

	// The supervisor goroutine below is the only caller of Swap, Stats
	// and Close; the replay goroutine drives the ingest lanes (lane 0
	// alone via Replay, or all of them via ReplayParallel). That is
	// exactly the concurrency contract internal/serve documents.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type replayResult struct {
		accepted, dropped uint64
		err               error
	}
	done := make(chan replayResult, 1)
	go func() {
		// Replay streams through the batch face (native for trace
		// sources, adapted for PCAP) and flushes the pending tail at
		// end of stream. With more than one producer lane the replay
		// fans out RSS-style: decode workers compute keys and folds
		// off the lanes, and every lane ingests concurrently.
		var acc, drop uint64
		var err error
		if *producers > 1 {
			acc, drop, err = srv.ReplayParallel(ctx, serve.AsBatchSource(src))
		} else {
			acc, drop, err = srv.Replay(ctx, src)
		}
		done <- replayResult{acc, drop, err}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	var ticker <-chan time.Time
	if *statsEvery > 0 {
		tk := time.NewTicker(*statsEvery)
		defer tk.Stop()
		ticker = tk.C
	}

	var res replayResult
	var lingerC <-chan time.Time
supervise:
	for {
		select {
		case res = <-done:
			if *linger > 0 {
				fmt.Fprintf(os.Stderr, "iguard-serve: replay done; lingering %v\n", *linger)
				lingerC = time.After(*linger)
				done = nil
				continue
			}
			break supervise
		case <-lingerC:
			break supervise
		case <-ticker:
			fmt.Printf("-- live --\n%s\n", srv.Stats())
			reportToHub(agent, srv)
		case sig := <-sigc:
			switch sig {
			case syscall.SIGHUP:
				if *modelPath == "" {
					fmt.Fprintln(os.Stderr, "iguard-serve: SIGHUP ignored: no -model file to reload")
					continue
				}
				nd, err := loadModel(*modelPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "iguard-serve: reload failed:", err)
					continue
				}
				if err := srv.Swap(nil, nd.CompiledRules()); err != nil {
					fmt.Fprintln(os.Stderr, "iguard-serve: swap failed:", err)
					continue
				}
				fmt.Fprintln(os.Stderr, "iguard-serve: model reloaded and hot-swapped; whitelist:", matcherInfo(nd.CompiledRules()))
			default:
				fmt.Fprintf(os.Stderr, "iguard-serve: %v: draining...\n", sig)
				cancel()
				if done != nil {
					res = <-done
				}
				break supervise
			}
		}
	}
	// Shutdown order matters: the agent applies into the server, so it
	// goes first — a propagated install arriving after srv.Close would
	// only tear the hub session down with an ErrClosed apply.
	if agent != nil {
		reportToHub(agent, srv)
		agent.Close()
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	// A replay cut short by our own drain signal is a clean shutdown,
	// not a failure.
	if res.err != nil && !errors.Is(res.err, context.Canceled) {
		fatal(res.err)
	}

	st := srv.Stats()
	fmt.Printf("accepted=%d dropped=%d decisions=%d\n", res.accepted, res.dropped, decisions.Load())
	if *statsJSON {
		raw, err := json.Marshal(st)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(raw))
	} else {
		fmt.Println(st)
	}
	if agent != nil {
		fmt.Printf("federation: %s\n", agent.Stats())
	}
	if st.Packets == 0 {
		fatal(fmt.Errorf("no packets processed"))
	}
}

// reportToHub pushes the node's aggregate counters to the hub's fleet
// overview; a nil agent (standalone mode) is a no-op.
func reportToHub(agent *fed.Agent, srv *serve.Server) {
	if agent == nil {
		return
	}
	st := srv.Stats()
	agent.ReportStats(fed.StatsPayload{
		Packets:      uint64(st.Packets),
		Installed:    uint64(st.RulesInstalled),
		Evicted:      uint64(st.RulesEvicted),
		BlacklistLen: uint64(st.BlacklistLen),
		QueueDrops:   st.QueueDrops,
		OutboxDrops:  agent.Stats().OutboxDrops,
	})
}

// openSource builds the packet source: a streaming PCAP reader when
// -replay is given, otherwise a synthetic benign+attack mix.
func openSource(replayPath string, seed int64, benignFl int, attackName string, attackFl int) (serve.Source, func(), error) {
	if replayPath != "" {
		f, err := os.Open(replayPath)
		if err != nil {
			return nil, nil, err
		}
		r, err := netpkt.NewPcapReader(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return serve.PcapSource{R: r}, func() { f.Close() }, nil
	}
	benign := traffic.GenerateBenign(seed+1, benignFl)
	attack, err := traffic.GenerateAttack(traffic.AttackName(attackName), seed+2, attackFl)
	if err != nil {
		return nil, nil, err
	}
	return serve.NewTraceSource(benign.Merge(attack).Packets), func() {}, nil
}

// matcherInfo summarises the compiled whitelist's software match path:
// rule count, implementation (bit-vector vs linear fallback), and the
// memory the bit-vector index trades for its constant-time lookups.
func matcherInfo(c *rules.CompiledRuleSet) string {
	return fmt.Sprintf("%d rules via %s index (%.1f KiB)",
		len(c.Rules), c.MatcherKind(), float64(c.BVIndexBytes())/1024)
}

func loadModel(path string) (*iguard.Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return iguard.Load(f)
}

func loadOrTrain(modelPath string, trainSyn int, seed int64) *iguard.Detector {
	if modelPath != "" {
		det, err := loadModel(modelPath)
		if err != nil {
			fatal(err)
		}
		return det
	}
	if trainSyn <= 0 {
		trainSyn = 300
	}
	fmt.Printf("training on %d synthetic benign flows...\n", trainSyn)
	cfg := iguard.DefaultConfig()
	cfg.Seed = seed
	det, err := iguard.Train(traffic.GenerateBenign(seed, trainSyn).Packets, cfg)
	if err != nil {
		fatal(err)
	}
	return det
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iguard-serve:", err)
	os.Exit(1)
}
