// Command iguard-switch deploys a trained iGuard model on the simulated
// programmable-switch data plane and replays a traffic trace through
// it, printing per-path packet counts, controller statistics, resource
// usage and (when ground truth is available via synthetic generation)
// per-packet detection metrics.
//
// The replay runs on the sharded serving runtime (internal/serve):
// packets are hash-partitioned by flow key across -shards workers,
// each owning a private switch+controller pair, so per-flow decisions
// are identical at any shard count.
//
// Usage:
//
//	iguard-switch -model model.json -replay mixed.pcap
//	iguard-switch -train-synthetic 400 -attack "UDP DDoS" -attack-flows 40 -shards 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"iguard"
	"iguard/internal/features"
	"iguard/internal/metrics"
	"iguard/internal/netpkt"
	"iguard/internal/rules"
	"iguard/internal/serve"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

func main() {
	var (
		modelPath  = flag.String("model", "", "detector model JSON written by iguard.(*Detector).Save")
		replayPath = flag.String("replay", "", "PCAP trace to replay through the switch")
		trainSyn   = flag.Int("train-synthetic", 0, "train on this many synthetic benign flows instead of -model")
		attackName = flag.String("attack", "UDP DDoS", "synthetic attack mixed into the replay when no -replay PCAP is given")
		attackFl   = flag.Int("attack-flows", 40, "synthetic attack flow count")
		benignFl   = flag.Int("benign-flows", 200, "synthetic benign replay flow count")
		seed       = flag.Int64("seed", 7, "synthetic generation seed")
		shards     = flag.Int("shards", 1, "shard worker count for the replay")
		queue      = flag.Int("queue", 1024, "per-shard mailbox depth")
		dropPolicy = flag.String("drop-policy", "block", "backpressure policy: block or drop")
		batchSize  = flag.Int("batch", 64, "per-shard hand-off batch size (0 or 1 serves per packet)")
		batchFlush = flag.Duration("batch-flush", 0, "trace-time flush deadline for partial batches (0 = 1ms when batching)")
		producers  = flag.Int("producers", 1, "ingest lane count (RSS-style; >1 replays through concurrent producer goroutines)")
	)
	flag.Parse()

	policy, err := serve.ParseDropPolicy(*dropPolicy)
	if err != nil {
		fatal(err)
	}
	det := loadOrTrain(*modelPath, *trainSyn, *seed)

	var packets []iguard.Packet
	var truth *traffic.Trace
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			fatal(err)
		}
		r, err := netpkt.NewPcapReader(f)
		if err != nil {
			fatal(err)
		}
		packets, err = r.ReadAll()
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		benign := traffic.GenerateBenign(*seed+1, *benignFl)
		attack, err := traffic.GenerateAttack(traffic.AttackName(*attackName), *seed+2, *attackFl)
		if err != nil {
			fatal(err)
		}
		truth = benign.Merge(attack)
		packets = truth.Packets
	}

	// OnDecision fires on shard goroutines; (lane, seq) identifies a
	// packet, with seq dense per lane over accepted packets, so each
	// lane gets its own arrays and writes land on distinct indices,
	// visible after Close (the drain is a happens-before barrier).
	nLanes := *producers
	if nLanes < 1 {
		nLanes = 1
	}
	preds := make([][]int, nLanes)
	truths := make([][]int, nLanes)
	scores := make([][]float64, nLanes)
	for l := range preds {
		preds[l] = make([]int, len(packets))
		truths[l] = make([]int, len(packets))
		scores[l] = make([]float64, len(packets))
	}
	cfg := iguard.DefaultServeConfig()
	cfg.Shards = *shards
	cfg.QueueDepth = *queue
	cfg.Policy = policy
	cfg.BatchSize = *batchSize
	cfg.BatchFlush = *batchFlush
	cfg.Producers = *producers
	cfg.OnDecision = func(_ int, lane uint32, seq uint64, p *iguard.Packet, d switchsim.Decision) {
		preds[lane][seq] = d.Predicted
		scores[lane][seq] = float64(d.Predicted)
		if truth != nil && truth.IsMalicious(features.KeyOf(p)) {
			truths[lane][seq] = 1
		}
	}
	srv, err := det.NewServer(cfg)
	if err != nil {
		fatal(err)
	}

	var dropped uint64
	if *producers > 1 {
		_, dropped, err = srv.ReplayParallel(context.Background(), serve.NewTraceSource(packets))
	} else {
		_, dropped, err = srv.Replay(context.Background(), serve.NewTraceSource(packets))
	}
	if err != nil {
		fatal(err)
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	st := srv.Stats()

	fmt.Printf("replayed %d packets in %v across %d shard(s) (%.0f pkt/s simulated host rate)\n",
		st.Packets, st.WallElapsed.Round(time.Millisecond), len(st.Shards), st.PPS)
	if dropped > 0 {
		fmt.Printf("queue drops: %d\n", dropped)
	}
	fmt.Println("\npacket paths (Fig. 4):")
	for p := switchsim.PathRed; p <= switchsim.PathGreen; p++ {
		fmt.Printf("  %-7s %8d\n", p, st.PathCounts[p])
	}
	fmt.Printf("\ndrops=%d digests=%d (%d B) recirculated=%d hardCollisions=%d\n",
		st.Drops, st.Digests, st.DigestBytes, st.Recirculated, st.HardCollisions)
	fmt.Printf("controller: digests=%d installed=%d evicted=%d\n",
		st.Digests, st.RulesInstalled, st.RulesEvicted)
	fmt.Printf("blacklist size: %d\n", st.BlacklistLen)
	fmt.Printf("modelled per-packet latency: %v\n", st.AvgLatency)
	fmt.Printf("\nresources (per shard): %s\n", shardUsage(det).Fractions(switchsim.Tofino1Budget()))
	fmt.Printf("whitelist matcher: %s\n", matcherInfo(det.CompiledRules()))

	if truth != nil {
		// Flatten each lane's dense prefix (Stats reports per-lane
		// ingest counts); the per-packet metrics are order-invariant,
		// so lane concatenation order does not matter.
		var flatScores []float64
		var flatPreds, flatTruths []int
		for _, l := range st.Lanes {
			n := int(l.Ingested)
			flatScores = append(flatScores, scores[l.Lane][:n]...)
			flatPreds = append(flatPreds, preds[l.Lane][:n]...)
			flatTruths = append(flatTruths, truths[l.Lane][:n]...)
		}
		s := metrics.Evaluate(flatScores, flatPreds, flatTruths)
		fmt.Printf("\nper-packet detection: macroF1=%.3f PRAUC=%.3f ROCAUC=%.3f\n", s.MacroF1, s.PRAUC, s.ROCAUC)
	}
}

// matcherInfo summarises the compiled whitelist's software match path:
// rule count, implementation (bit-vector vs linear fallback), and the
// memory the bit-vector index trades for its constant-time lookups.
func matcherInfo(c *rules.CompiledRuleSet) string {
	return fmt.Sprintf("%d rules via %s index (%.1f KiB)",
		len(c.Rules), c.MatcherKind(), float64(c.BVIndexBytes())/1024)
}

// shardUsage reports the resource footprint of one shard's switch —
// every shard is configured identically, so one is representative.
func shardUsage(det *iguard.Detector) switchsim.Usage {
	dep, err := det.NewDeployment(iguard.DefaultDeployConfig())
	if err != nil {
		fatal(err)
	}
	defer dep.Close()
	return dep.Switch.Usage()
}

func loadOrTrain(modelPath string, trainSyn int, seed int64) *iguard.Detector {
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		det, err := iguard.Load(f)
		if err != nil {
			fatal(err)
		}
		return det
	}
	if trainSyn <= 0 {
		trainSyn = 300
	}
	fmt.Printf("training on %d synthetic benign flows...\n", trainSyn)
	cfg := iguard.DefaultConfig()
	cfg.Seed = seed
	det, err := iguard.Train(traffic.GenerateBenign(seed, trainSyn).Packets, cfg)
	if err != nil {
		fatal(err)
	}
	return det
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iguard-switch:", err)
	os.Exit(1)
}
