// Command iguard-switch deploys a trained iGuard model on the simulated
// programmable-switch data plane and replays a traffic trace through
// it, printing per-path packet counts, controller statistics, resource
// usage and (when ground truth is available via synthetic generation)
// per-packet detection metrics.
//
// Usage:
//
//	iguard-switch -model model.json -replay mixed.pcap
//	iguard-switch -train-synthetic 400 -attack "UDP DDoS" -attack-flows 40
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"iguard"
	"iguard/internal/features"
	"iguard/internal/metrics"
	"iguard/internal/netpkt"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

func main() {
	var (
		modelPath  = flag.String("model", "", "detector model JSON written by iguard.(*Detector).Save")
		replayPath = flag.String("replay", "", "PCAP trace to replay through the switch")
		trainSyn   = flag.Int("train-synthetic", 0, "train on this many synthetic benign flows instead of -model")
		attackName = flag.String("attack", "UDP DDoS", "synthetic attack mixed into the replay when no -replay PCAP is given")
		attackFl   = flag.Int("attack-flows", 40, "synthetic attack flow count")
		benignFl   = flag.Int("benign-flows", 200, "synthetic benign replay flow count")
		seed       = flag.Int64("seed", 7, "synthetic generation seed")
	)
	flag.Parse()

	det := loadOrTrain(*modelPath, *trainSyn, *seed)
	dep := det.NewDeployment(iguard.DefaultDeployConfig())
	defer dep.Close()
	sw := dep.Switch

	var packets []iguard.Packet
	var truth *traffic.Trace
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			fatal(err)
		}
		r, err := netpkt.NewPcapReader(f)
		if err != nil {
			fatal(err)
		}
		packets, err = r.ReadAll()
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		benign := traffic.GenerateBenign(*seed+1, *benignFl)
		attack, err := traffic.GenerateAttack(traffic.AttackName(*attackName), *seed+2, *attackFl)
		if err != nil {
			fatal(err)
		}
		truth = benign.Merge(attack)
		packets = truth.Packets
	}

	start := time.Now()
	var preds, truths []int
	var scores []float64
	for i := range packets {
		d := sw.ProcessPacket(&packets[i])
		if truth != nil {
			preds = append(preds, d.Predicted)
			scores = append(scores, float64(d.Predicted))
			label := 0
			if truth.IsMalicious(features.KeyOf(&packets[i])) {
				label = 1
			}
			truths = append(truths, label)
		}
	}
	elapsed := time.Since(start)

	c := sw.Counters
	fmt.Printf("replayed %d packets in %v (%.0f pkt/s simulated host rate)\n",
		c.Packets, elapsed.Round(time.Millisecond), float64(c.Packets)/elapsed.Seconds())
	fmt.Println("\npacket paths (Fig. 4):")
	for p := switchsim.PathRed; p <= switchsim.PathGreen; p++ {
		fmt.Printf("  %-7s %8d\n", p, c.PathCounts[p])
	}
	fmt.Printf("\ndrops=%d digests=%d (%d B) recirculated=%d mirroredCPU=%d hardCollisions=%d\n",
		c.Drops, c.Digests, c.DigestBytes, c.Recirculated, c.MirroredCPU, c.HardCollisions)
	ds := dep.Stats()
	st := ds.Controller
	fmt.Printf("controller: digests=%d installed=%d evicted=%d cleared=%d\n",
		st.DigestsReceived, st.RulesInstalled, st.RulesEvicted, st.StorageCleared)
	fmt.Printf("blacklist size: %d\n", ds.BlacklistLen)
	fmt.Printf("modelled per-packet latency: %v\n", sw.AvgLatency())
	fmt.Printf("\nresources: %s\n", sw.Usage().Fractions(switchsim.Tofino1Budget()))

	if truth != nil {
		s := metrics.Evaluate(scores, preds, truths)
		fmt.Printf("\nper-packet detection: macroF1=%.3f PRAUC=%.3f ROCAUC=%.3f\n", s.MacroF1, s.PRAUC, s.ROCAUC)
	}
}

func loadOrTrain(modelPath string, trainSyn int, seed int64) *iguard.Detector {
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		det, err := iguard.Load(f)
		if err != nil {
			fatal(err)
		}
		return det
	}
	if trainSyn <= 0 {
		trainSyn = 300
	}
	fmt.Printf("training on %d synthetic benign flows...\n", trainSyn)
	cfg := iguard.DefaultConfig()
	cfg.Seed = seed
	det, err := iguard.Train(traffic.GenerateBenign(seed, trainSyn).Packets, cfg)
	if err != nil {
		fatal(err)
	}
	return det
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iguard-switch:", err)
	os.Exit(1)
}
