# Convenience targets for the iGuard reproduction.

.PHONY: build test bench bench-parallel bench-serve bench-batch bench-mp bench-rules eval eval-quick examples fmt vet vet-hotpath lint fix sarif race race-batch race-mp race-fed fuzz-fed p4lint

build:
	go build ./...

test:
	go test ./...

# Benchmarks regenerating every table and figure (single iteration each).
bench:
	go test -bench=. -benchmem -benchtime=1x .

# Training-throughput scaling across worker counts (the model is
# byte-identical at every P; only wall-clock changes).
bench-parallel:
	go test -bench=BenchmarkTrainParallelism -benchtime=1x -run '^$$' .

# Serving-runtime throughput: single-switch hot path plus end-to-end
# sharded ingest rate at 1/2/4/8 shards (pps metric per sub-benchmark).
bench-serve:
	go test -bench 'BenchmarkProcessPacket|BenchmarkServeThroughput' -benchmem -run '^$$' ./internal/serve

# Batch-path benchmarks: the switch batch pass, the feature-major
# batch matcher vs per-code matching, and batched vs unbatched
# end-to-end serve throughput.
bench-batch:
	go test -bench 'BenchmarkProcessBatch|BenchmarkServeThroughput' -benchmem -run '^$$' ./internal/serve
	go test -bench 'BenchmarkMatchColumns' -benchmem -run '^$$' ./internal/rules

# Multi-producer fan-in scaling: P concurrent lanes (1/2/4/8) driving
# a 4-shard batched server, swept across GOMAXPROCS so the pps metric
# shows the machine's actual scaling curve (on one core, extra lanes
# measure contention overhead only).
bench-mp:
	go test -bench 'BenchmarkServeThroughputMP' -benchmem -cpu 1,4 -run '^$$' ./internal/serve

# Whitelist matcher microbenchmarks: bit-vector index vs the linear
# reference scan at 16/128/1024 rules, plus compile cost.
bench-rules:
	go test -bench 'BenchmarkMatch|BenchmarkCompile' -benchmem -run '^$$' ./internal/rules

# Full-size evaluation (several minutes).
eval:
	go run ./cmd/iguard-eval -exp all

# Down-scaled evaluation (~2 minutes).
eval-quick:
	go run ./cmd/iguard-eval -exp all -quick

examples:
	go run ./examples/quickstart
	go run ./examples/ddos-mitigation
	go run ./examples/adversarial-robustness
	go run ./examples/iot-monitor

fmt:
	gofmt -w .

vet:
	go vet ./...

# Interprocedural hot-path gate alone: allocation-freedom of every
# //iguard:hotpath call tree plus shard-ownership of //iguard:ownedby
# state. Faster than the full suite when iterating on the data plane.
vet-hotpath:
	go run ./cmd/iguard-vet -only hotpath,shardown ./...

# Full static gate: build, go vet, gofmt (fail on unformatted files),
# and the project's own iguard-vet analyzers.
lint: build vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	go run ./cmd/iguard-vet ./...

# Apply iguard-vet's suggested fixes (dead-store deletions, stale
# suppression removals) to the tree; re-runs until findings converge.
fix:
	go run ./cmd/iguard-vet -fix ./...

# Emit the findings as a SARIF 2.1.0 log for code-scanning upload.
sarif:
	go run ./cmd/iguard-vet -sarif ./... > iguard-vet.sarif || true

# Generate a P4 bundle from a small synthetic model and verify it with
# the artefact analyzers (nameres, widths, tables, quantizer, fit).
p4lint:
	go run ./cmd/iguard-p4gen -train-synthetic 60 -out /tmp/iguard-p4lint-bundle -check
	go run ./cmd/iguard-p4lint /tmp/iguard-p4lint-bundle

# Race-detector pass over the whole module (slow: experiments re-run
# the evaluation pipeline under the detector).
race:
	go test -race ./...

# Focused race pass over the batch hand-off machinery (producer-side
# batching, flush deadlines, buffer pool recycling, batch equivalence).
race-batch:
	go test -race -run 'Batch|Flush' ./internal/serve ./internal/switchsim

# Focused race pass over the multi-producer ingest machinery: lane
# contract, concurrent drop conservation, parallel decode source, and
# single-lane byte-identity under the detector.
race-mp:
	go test -race -run 'MultiProducer|ConcurrentLane|ParallelBatchSource|ReplayParallel|ProducerErrors|StatsLane' ./internal/serve

# Focused race pass over the federation subsystem: the frame codec,
# hub broadcast/dedup/join-replay, and the agent's reconnect + bounded
# outbox machinery, plus the two root-level end-to-end tests.
race-fed:
	go test -race ./internal/fed
	go test -race -run 'TestFederation' .

# Coverage-guided fuzz smoke over the federation frame codec: decode →
# re-encode identity, the error taxonomy (truncated/oversize/unknown
# type), and stream-reader agreement with the in-place decoder.
fuzz-fed:
	go test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime=10s ./internal/fed
