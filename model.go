package iguard

import (
	"encoding/json"
	"fmt"
	"io"

	"iguard/internal/core"
	"iguard/internal/features"
	"iguard/internal/rules"
)

// savedModel is the serialised deployment artefact: the feature
// pipeline, the labelled rule set, and (since the distilled forest
// serialises) the full forest — so loaded detectors keep forest-grade
// classification and vote scores. The autoencoder ensemble remains a
// training-time object.
type savedModel struct {
	Config Config               `json:"config"`
	Prep   *features.Preprocess `json:"preprocess"`
	Rules  *rules.RuleSet       `json:"rules"`
	Forest *core.Forest         `json:"forest,omitempty"`
}

// Save serialises the detector's deployable state as JSON.
func (d *Detector) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(savedModel{Config: d.cfg, Prep: d.prep, Rules: d.ruleSet, Forest: d.forest})
}

// Load restores a detector from Save's output. Models written by this
// version carry the distilled forest and classify exactly as the
// original; older rule-only models fall back to rule matching
// (equivalent up to the consistency metric C).
func Load(r io.Reader) (*Detector, error) {
	var m savedModel
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("iguard: load: %w", err)
	}
	if m.Prep == nil || m.Rules == nil {
		return nil, fmt.Errorf("iguard: load: missing preprocess or rules")
	}
	d := &Detector{cfg: m.Config, prep: m.Prep, ruleSet: m.Rules, forest: m.Forest}
	d.compiled = compileRaw(m.Rules, m.Prep, m.Config.QuantBits)
	return d, nil
}

// RuleBased reports whether the detector classifies via rules only
// (a loaded model) rather than the in-memory forest.
func (d *Detector) RuleBased() bool { return d.forest == nil }
