package iguard

import (
	"encoding/json"
	"fmt"
	"io"

	"iguard/internal/core"
	"iguard/internal/features"
	"iguard/internal/rules"
)

// modelFormat is the saved-model format this build writes. History:
//
//	1 — original layout (no format field): config, preprocess, rules,
//	    optional forest.
//	2 — adds the explicit "format" field; runtime-only config knobs
//	    (Parallelism, validation data) are no longer serialised.
//
// Load accepts formats 1 through modelFormat.
const modelFormat = 2

// savedModel is the serialised deployment artefact: the feature
// pipeline, the labelled rule set, and (since the distilled forest
// serialises) the full forest — so loaded detectors keep forest-grade
// classification and vote scores. The autoencoder ensemble remains a
// training-time object.
type savedModel struct {
	Format int                  `json:"format"`
	Config Config               `json:"config"`
	Prep   *features.Preprocess `json:"preprocess"`
	Rules  *rules.RuleSet       `json:"rules"`
	Forest *core.Forest         `json:"forest,omitempty"`
}

// Save serialises the detector's deployable state as JSON (format 2).
func (d *Detector) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(savedModel{Format: modelFormat, Config: d.cfg, Prep: d.prep, Rules: d.ruleSet, Forest: d.forest})
}

// Load restores a detector from Save's output. It reads formats 1
// through 2; a model without a "format" field is format 1. Models that
// carry the distilled forest classify exactly as the original; older
// rule-only models fall back to rule matching (equivalent up to the
// consistency metric C). Unknown (newer) formats return a descriptive
// error instead of misreading the payload.
func Load(r io.Reader) (*Detector, error) {
	var m savedModel
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("iguard: load: %w", err)
	}
	if m.Format == 0 {
		m.Format = 1
	}
	if m.Format < 1 || m.Format > modelFormat {
		return nil, fmt.Errorf("iguard: load: model format %d not supported (this build reads formats 1-%d)", m.Format, modelFormat)
	}
	if m.Prep == nil || m.Rules == nil {
		return nil, fmt.Errorf("iguard: load: missing preprocess or rules")
	}
	d := &Detector{cfg: m.Config, prep: m.Prep, ruleSet: m.Rules, forest: m.Forest}
	d.compiled = compileRaw(m.Rules, m.Prep, m.Config.QuantBits)
	return d, nil
}

// RuleBased reports whether the detector classifies via rules only
// (a loaded model) rather than the in-memory forest.
func (d *Detector) RuleBased() bool { return d.forest == nil }
