module iguard

go 1.22
