package iguard

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"iguard/internal/features"
	"iguard/internal/traffic"
)

// tinyFeatures extracts the tiny benign training matrix once per test.
func tinyFeatures(t testing.TB, cfg Config) [][]float64 {
	t.Helper()
	var raw [][]float64
	for _, s := range features.ExtractAll(traffic.GenerateBenign(1, 150).Packets, cfg.FlowThreshold, cfg.FlowTimeout) {
		raw = append(raw, s.FL)
	}
	if len(raw) == 0 {
		t.Fatal("no training flows")
	}
	return raw
}

// saveBytes trains on raw with the given config and returns the exact
// Save output.
func saveBytes(t *testing.T, raw [][]float64, cfg Config) []byte {
	t.Helper()
	det, err := TrainOnFeatures(raw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTrainDeterminismAcrossParallelism pins the tentpole guarantee:
// the saved model is byte-identical for every worker count, down both
// selection paths (benign-only fidelity and labelled validation).
func TestTrainDeterminismAcrossParallelism(t *testing.T) {
	base := tinyConfig()
	raw := tinyFeatures(t, base)

	withVal := base
	withVal.AugmentGrid = []int{0, 4}
	withVal.ThresholdGrid = []float64{0.88, 0.92}
	for _, s := range features.ExtractAll(traffic.GenerateBenign(20, 40).Packets, base.FlowThreshold, base.FlowTimeout) {
		withVal.ValidationX = append(withVal.ValidationX, s.FL)
		withVal.ValidationY = append(withVal.ValidationY, 0)
	}
	for _, s := range features.ExtractAll(traffic.MustGenerateAttack(traffic.UDPDDoS, 21, 5).Packets, base.FlowThreshold, base.FlowTimeout) {
		withVal.ValidationX = append(withVal.ValidationX, s.FL)
		withVal.ValidationY = append(withVal.ValidationY, 1)
	}

	cases := []struct {
		name string
		cfg  Config
	}{
		{"fidelity", base},
		{"validation", withVal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Parallelism = 1
			want := saveBytes(t, raw, cfg)
			for _, p := range []int{2, 8} {
				cfg.Parallelism = p
				if got := saveBytes(t, raw, cfg); !bytes.Equal(got, want) {
					t.Errorf("Parallelism=%d saved model differs from Parallelism=1", p)
				}
			}
		})
	}
}

func TestTrainContextCancelled(t *testing.T) {
	cfg := tinyConfig()
	raw := tinyFeatures(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainOnFeaturesContext(ctx, raw, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("TrainOnFeaturesContext error = %v, want context.Canceled", err)
	}
	if _, err := TrainContext(ctx, traffic.GenerateBenign(1, 80).Packets, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("TrainContext error = %v, want context.Canceled", err)
	}
}

// TestTrainContextCancelMidTraining cancels while the autoencoder fit
// is in flight and expects a prompt cooperative stop.
func TestTrainContextCancelMidTraining(t *testing.T) {
	cfg := tinyConfig()
	cfg.AEEpochs = 10000 // long enough that cancellation lands mid-fit
	raw := tinyFeatures(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := TrainOnFeaturesContext(ctx, raw, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantSub string
	}{
		{"flow threshold", func(c *Config) { c.FlowThreshold = 0 }, "FlowThreshold"},
		{"flow timeout", func(c *Config) { c.FlowTimeout = 0 }, "FlowTimeout"},
		{"epochs", func(c *Config) { c.AEEpochs = -1 }, "AEEpochs"},
		{"batch", func(c *Config) { c.AEBatch = 0 }, "AEBatch"},
		{"lr", func(c *Config) { c.AELearningRate = 0 }, "AELearningRate"},
		{"calibration quantile", func(c *Config) { c.CalibrationQuantile = 1.5 }, "CalibrationQuantile"},
		{"augment grid", func(c *Config) { c.AugmentGrid = []int{0, -3} }, "AugmentGrid[1]"},
		{"threshold grid", func(c *Config) { c.ThresholdGrid = []float64{0.9, 0} }, "ThresholdGrid[1]"},
		{"validation length", func(c *Config) {
			c.ValidationX = [][]float64{make([]float64, features.FLDim)}
			c.ValidationY = []int{0, 1}
		}, "length mismatch"},
		{"validation label", func(c *Config) {
			c.ValidationX = [][]float64{make([]float64, features.FLDim)}
			c.ValidationY = []int{2}
		}, "ValidationY[0]"},
		{"validation dims", func(c *Config) {
			c.ValidationX = [][]float64{{1, 2}}
			c.ValidationY = []int{0}
		}, "ValidationX[0]"},
		{"quant bits", func(c *Config) { c.QuantBits = 40 }, "QuantBits"},
		{"rule cells", func(c *Config) { c.MaxRuleCells = 0 }, "MaxRuleCells"},
		{"parallelism", func(c *Config) { c.Parallelism = -1 }, "Parallelism"},
		{"forest", func(c *Config) { c.Forest.Trees = 0 }, "Forest"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
			// Invalid configs must be rejected before training starts.
			if _, terr := Train(traffic.GenerateBenign(1, 20).Packets, cfg); terr == nil {
				t.Error("Train accepted an invalid config")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig should validate, got %v", err)
	}
	// Multiple broken fields surface together in one joined error.
	bad := DefaultConfig()
	bad.FlowThreshold = 0
	bad.QuantBits = 0
	err := bad.Validate()
	if err == nil || !strings.Contains(err.Error(), "FlowThreshold") || !strings.Contains(err.Error(), "QuantBits") {
		t.Errorf("joined error missing a field: %v", err)
	}
}

// TestConsistencyRuleOnlyModel pins the nil-forest fix: a loaded
// rule-only model IS its rule set, so consistency with itself is 1.0
// (this used to panic).
func TestConsistencyRuleOnlyModel(t *testing.T) {
	det := trainTiny(t)
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var m savedModel
	if err := jsonUnmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	m.Forest = nil
	b, _ := jsonMarshal(m)
	old, err := Load(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var raws [][]float64
	for _, s := range features.ExtractAll(traffic.GenerateBenign(5, 30).Packets, 4, DefaultConfig().FlowTimeout) {
		raws = append(raws, s.FL)
	}
	if c := old.Consistency(raws); c != 1.0 {
		t.Errorf("rule-only consistency = %v, want 1.0", c)
	}
}

func TestModelFormatVersioning(t *testing.T) {
	det := trainTiny(t)
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"format": 2`)) {
		t.Error("Save output missing format 2 marker")
	}

	var m map[string]interface{}
	if err := jsonUnmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}

	// A format-1 model (no "format" field) still loads.
	delete(m, "format")
	legacy, _ := jsonMarshal(m)
	if _, err := Load(bytes.NewReader(legacy)); err != nil {
		t.Errorf("format-less (v1) model failed to load: %v", err)
	}

	// A newer format is refused with a descriptive error, not misread.
	m["format"] = 99
	future, _ := jsonMarshal(m)
	_, err := Load(bytes.NewReader(future))
	if err == nil {
		t.Fatal("want error for unknown format")
	}
	if !strings.Contains(err.Error(), "format 99") {
		t.Errorf("error %q does not name the offending format", err)
	}
}
