package iguard

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"iguard/internal/features"
	"iguard/internal/serve"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

// jsonMarshal/jsonUnmarshal keep the legacy-format test readable.
func jsonMarshal(v interface{}) ([]byte, error)   { return json.Marshal(v) }
func jsonUnmarshal(b []byte, v interface{}) error { return json.Unmarshal(b, v) }

// tinyConfig keeps facade tests fast.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.AEEpochs = 15
	cfg.Forest.Trees = 3
	cfg.Forest.SubSample = 96
	cfg.FlowThreshold = 8
	return cfg
}

func trainTiny(t testing.TB) *Detector {
	t.Helper()
	benign := traffic.GenerateBenign(1, 150)
	det, err := Train(benign.Packets, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, tinyConfig()); err == nil {
		t.Error("want error on empty packets")
	}
	if _, err := TrainOnFeatures(nil, tinyConfig()); err == nil {
		t.Error("want error on empty features")
	}
	if _, err := TrainOnFeatures([][]float64{{1, 2}}, tinyConfig()); err == nil {
		t.Error("want error on wrong dimension")
	}
}

func TestTrainAndClassify(t *testing.T) {
	det := trainTiny(t)
	if det.Rules().Len() == 0 {
		t.Fatal("no rules")
	}
	if len(det.CompiledRules().Rules) == 0 {
		t.Fatal("no compiled rules")
	}

	// Benign flows mostly pass; a flood mostly gets caught.
	cfg := tinyConfig()
	check := func(tr *traffic.Trace) (flagged, total int) {
		for _, s := range features.ExtractAll(tr.Packets, cfg.FlowThreshold, cfg.FlowTimeout) {
			flagged += det.ClassifyFlow(s.FL)
			total++
		}
		return flagged, total
	}
	bf, bt := check(traffic.GenerateBenign(2, 60))
	if float64(bf)/float64(bt) > 0.3 {
		t.Errorf("benign flagged %d/%d", bf, bt)
	}
	af, at := check(traffic.MustGenerateAttack(traffic.UDPDDoS, 3, 10))
	if float64(af)/float64(at) < 0.6 {
		t.Errorf("attack flagged only %d/%d", af, at)
	}
}

func TestScoreRange(t *testing.T) {
	det := trainTiny(t)
	s := det.Score(make([]float64, features.FLDim))
	if s < 0 || s > 1 {
		t.Errorf("score = %v", s)
	}
	if e := det.EnsembleScore(make([]float64, features.FLDim)); e < 0 {
		t.Errorf("ensemble score = %v", e)
	}
}

func TestConsistencyNearOne(t *testing.T) {
	det := trainTiny(t)
	var raws [][]float64
	test := traffic.GenerateBenign(5, 40).Merge(traffic.MustGenerateAttack(traffic.Mirai, 6, 10))
	for _, s := range features.ExtractAll(test.Packets, 4, DefaultConfig().FlowTimeout) {
		raws = append(raws, s.FL)
	}
	if c := det.Consistency(raws); c < 0.99 {
		t.Errorf("consistency = %v", c)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	det := trainTiny(t)
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Models saved by this version carry the distilled forest.
	if loaded.RuleBased() {
		t.Error("loaded detector should carry the forest")
	}
	if det.RuleBased() {
		t.Error("trained detector should not be rule-based")
	}
	// Loaded classification matches the original exactly.
	test := traffic.GenerateBenign(7, 40)
	agree, total := 0, 0
	for _, s := range features.ExtractAll(test.Packets, 4, DefaultConfig().FlowTimeout) {
		if det.ClassifyFlow(s.FL) == loaded.ClassifyFlow(s.FL) {
			agree++
		}
		total++
	}
	if agree != total {
		t.Errorf("loaded agreement %d/%d, want exact", agree, total)
	}

	// A rule-only model (older format) still loads and falls back to
	// rule matching.
	var legacy savedModel
	if err := jsonUnmarshal(buf.Bytes(), &legacy); err != nil {
		t.Fatal(err)
	}
	legacy.Forest = nil
	legacyBytes, _ := jsonMarshal(legacy)
	old, err := Load(bytes.NewReader(legacyBytes))
	if err != nil {
		t.Fatal(err)
	}
	if !old.RuleBased() {
		t.Error("rule-only model should be rule-based")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("{broken")); err == nil {
		t.Error("want decode error")
	}
	if _, err := Load(strings.NewReader("{}")); err == nil {
		t.Error("want missing-fields error")
	}
}

func TestWriteRules(t *testing.T) {
	det := trainTiny(t)
	var buf bytes.Buffer
	if err := det.WriteRules(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rules") {
		t.Error("rules JSON missing content")
	}
}

func TestDeployEndToEnd(t *testing.T) {
	det := trainTiny(t)
	dep, err := det.NewDeployment(DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	sw := dep.Switch

	attack := traffic.MustGenerateAttack(traffic.UDPDDoS, 8, 8)
	trace := traffic.GenerateBenign(9, 50).Merge(attack)
	drops := 0
	for i := range trace.Packets {
		if d := sw.ProcessPacket(&trace.Packets[i]); d.Dropped {
			drops++
		}
	}
	if drops == 0 {
		t.Error("flood not mitigated at all")
	}
	st := dep.Stats()
	if st.Controller.DigestsReceived == 0 {
		t.Error("controller received no digests")
	}
	if st.BlacklistLen == 0 {
		t.Error("no blacklist entries installed")
	}
	if st.Usage.SRAMBits == 0 || st.Usage.TCAMBits == 0 {
		t.Errorf("resource usage not accounted: %+v", st.Usage)
	}
	if sw.Counters.PathCounts[switchsim.PathBlue] == 0 {
		t.Error("no flows classified")
	}
}

// TestDeployDeprecatedWrapper pins the legacy tuple signature to the
// same pair NewDeployment builds, including the nil-pair answer for a
// config NewDeployment would reject.
func TestDeployDeprecatedWrapper(t *testing.T) {
	det := trainTiny(t)
	sw, ctrl := det.Deploy(DefaultDeployConfig())
	if sw == nil || ctrl == nil {
		t.Fatal("Deploy returned nil components")
	}
	benign := traffic.GenerateBenign(9, 10)
	for i := range benign.Packets {
		sw.ProcessPacket(&benign.Packets[i])
	}
	if sw.ActiveFlows() == 0 {
		t.Error("wrapper switch is not wired up")
	}
	if sw, ctrl := det.Deploy(DeployConfig{Slots: -1}); sw != nil || ctrl != nil {
		t.Error("Deploy of an invalid config returned non-nil components")
	}
}

// TestDeployConfigValidate covers the deployment validator: every
// broken field reported at once, and NewDeployment refusing the lot.
func TestDeployConfigValidate(t *testing.T) {
	err := DeployConfig{Slots: -1, BlacklistCapacity: -2, Eviction: 99}.Validate()
	if err == nil {
		t.Fatal("nonsense deploy config validated")
	}
	for _, want := range []string{"Slots", "BlacklistCapacity", "Eviction"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %s", err, want)
		}
	}
	if err := DefaultDeployConfig().Validate(); err != nil {
		t.Errorf("default deploy config rejected: %v", err)
	}
	if err := (DeployConfig{}).Validate(); err != nil {
		t.Errorf("zero deploy config rejected: %v", err)
	}
	det := trainTiny(t)
	if dep, err := det.NewDeployment(DeployConfig{Slots: -1}); err == nil || dep != nil {
		t.Errorf("NewDeployment accepted an invalid config (dep=%v err=%v)", dep, err)
	}
}

// TestServeConfigValidate covers the serving validator, including the
// batch-size hygiene the batch redesign added and the nested deploy
// report.
func TestServeConfigValidate(t *testing.T) {
	err := ServeConfig{
		Deploy:     DeployConfig{Slots: -1},
		Shards:     -1,
		QueueDepth: -1,
		BatchSize:  -2,
		BatchFlush: -time.Second,
	}.Validate()
	if err == nil {
		t.Fatal("nonsense serve config validated")
	}
	for _, want := range []string{"Slots", "Shards", "QueueDepth", "BatchSize", "BatchFlush"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %s", err, want)
		}
	}
	if err := DefaultServeConfig().Validate(); err != nil {
		t.Errorf("default serve config rejected: %v", err)
	}
	if err := (ServeConfig{BatchSize: serve.MaxBatchSize + 1}).Validate(); err == nil {
		t.Error("oversized BatchSize validated")
	}
	if err := (ServeConfig{BatchFlush: time.Millisecond}).Validate(); err == nil {
		t.Error("BatchFlush without batching validated")
	}
	det := trainTiny(t)
	if srv, err := det.NewServer(ServeConfig{BatchSize: -1}); err == nil || srv != nil {
		t.Errorf("NewServer accepted an invalid config (srv=%v err=%v)", srv, err)
	}
}

func TestDeploymentCloseDetachesController(t *testing.T) {
	det := trainTiny(t)
	dep, err := det.NewDeployment(DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := dep.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// After Close the digest stream is detached: packets still flow but
	// the controller sees nothing new.
	attack := traffic.MustGenerateAttack(traffic.UDPDDoS, 8, 8)
	trace := traffic.GenerateBenign(9, 30).Merge(attack)
	for i := range trace.Packets {
		dep.Switch.ProcessPacket(&trace.Packets[i])
	}
	if got := dep.Stats().Controller.DigestsReceived; got != 0 {
		t.Errorf("controller received %d digests after Close", got)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.FlowThreshold <= 0 || cfg.FlowTimeout <= 0 || cfg.AEEpochs <= 0 {
		t.Errorf("config: %+v", cfg)
	}
	if cfg.Forest.Trees <= 0 {
		t.Error("forest trees")
	}
	dc := DefaultDeployConfig()
	if dc.Slots <= 0 || dc.BlacklistCapacity <= 0 {
		t.Errorf("deploy config: %+v", dc)
	}
}

func TestTrainWithValidationSelectsThreshold(t *testing.T) {
	cfg := tinyConfig()
	cfg.AEEpochs = 25
	cfg.Forest.Trees = 5
	cfg.Forest.SubSample = 192
	// Labelled validation: benign + UDP DDoS windows (the paper's
	// protocol with ~20% attack traffic).
	for _, s := range features.ExtractAll(traffic.GenerateBenign(20, 60).Packets, cfg.FlowThreshold, cfg.FlowTimeout) {
		cfg.ValidationX = append(cfg.ValidationX, s.FL)
		cfg.ValidationY = append(cfg.ValidationY, 0)
	}
	for _, s := range features.ExtractAll(traffic.MustGenerateAttack(traffic.UDPDDoS, 21, 6).Packets, cfg.FlowThreshold, cfg.FlowTimeout) {
		cfg.ValidationX = append(cfg.ValidationX, s.FL)
		cfg.ValidationY = append(cfg.ValidationY, 1)
	}
	det, err := Train(traffic.GenerateBenign(1, 150).Packets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The tuned detector must catch the flood on fresh test data.
	caught, total := 0, 0
	for _, s := range features.ExtractAll(traffic.MustGenerateAttack(traffic.UDPDDoS, 22, 8).Packets, cfg.FlowThreshold, cfg.FlowTimeout) {
		caught += det.ClassifyFlow(s.FL)
		total++
	}
	if float64(caught)/float64(total) < 0.8 {
		t.Errorf("validation-tuned detector caught %d/%d", caught, total)
	}
}

func TestTrainValidationLengthMismatch(t *testing.T) {
	cfg := tinyConfig()
	cfg.ValidationX = [][]float64{make([]float64, features.FLDim)}
	cfg.ValidationY = []int{0, 1}
	if _, err := Train(traffic.GenerateBenign(1, 80).Packets, cfg); err == nil {
		t.Error("want error on validation length mismatch")
	}
}
