package iguard

import (
	"context"
	"testing"
	"time"

	"iguard/internal/features"
	"iguard/internal/serve"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

// TestDeploymentSweep pins the satellite fix: a deployment driven one
// packet at a time can now reclaim stale flow slots explicitly instead
// of waiting for a colliding flow to evict them.
func TestDeploymentSweep(t *testing.T) {
	det := trainTiny(t)
	dep, err := det.NewDeployment(DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := dep.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	// Feed a few packets of one flow — fewer than the threshold, so
	// the flow sits unclassified in its slot.
	trace := traffic.GenerateBenign(30, 3)
	n := det.cfg.FlowThreshold - 1
	if n > len(trace.Packets) {
		n = len(trace.Packets)
	}
	var last time.Time
	for i := 0; i < n; i++ {
		dep.Switch.ProcessPacket(&trace.Packets[i])
		last = trace.Packets[i].Timestamp
	}
	if dep.Stats().ActiveFlows == 0 {
		t.Fatal("no flow state accumulated")
	}

	// Sweep past the idle timeout: the stale flows are classified,
	// digested, and their storage reclaimed.
	before := dep.Switch.Counters.Digests
	dep.Sweep(last.Add(det.cfg.FlowTimeout + time.Second))
	if dep.Switch.Counters.Sweeps != 1 {
		t.Fatalf("sweeps=%d want 1", dep.Switch.Counters.Sweeps)
	}
	if dep.Switch.Counters.Digests <= before {
		t.Fatal("sweep classified no idle flows")
	}
	// A second sweep much later also reclaims the lingering labels.
	dep.Sweep(last.Add(10 * det.cfg.FlowTimeout))
	if got := dep.Stats().ActiveFlows; got != 0 {
		t.Fatalf("activeFlows=%d after label-reclaim sweep, want 0", got)
	}
}

// TestNewServerServes drives the detector-integrated serving runtime
// end to end: replay, decisions on every packet, digests reaching the
// per-shard controllers, hot-swap back to the same model, clean drain.
func TestNewServerServes(t *testing.T) {
	det := trainTiny(t)
	cfg := DefaultServeConfig()
	cfg.Shards = 2
	cfg.SweepEvery = det.cfg.FlowTimeout
	srv, err := det.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attack := traffic.MustGenerateAttack(traffic.UDPDDoS, 31, 10)
	trace := traffic.GenerateBenign(32, 40).Merge(attack)
	accepted, dropped, err := srv.Replay(context.Background(), serve.NewTraceSource(trace.Packets))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || accepted != uint64(len(trace.Packets)) {
		t.Fatalf("accepted=%d dropped=%d of %d", accepted, dropped, len(trace.Packets))
	}
	// Hot-swap the (same) model mid-life: the running server keeps
	// serving the detector's compiled whitelist.
	if err := srv.Swap(nil, det.CompiledRules()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Packets != len(trace.Packets) {
		t.Fatalf("processed=%d want %d", st.Packets, len(trace.Packets))
	}
	if st.Digests == 0 {
		t.Fatal("no digests reached the controllers")
	}
	if st.Swaps != 1 {
		t.Fatalf("swaps=%d want 1", st.Swaps)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("shards=%d want 2", len(st.Shards))
	}
}

// TestNewServerDecisionsMatchDeployment pins serving against the
// library: a 1-shard server must reproduce exactly what a bare
// Deployment computes packet by packet (the serve layer adds routing,
// never semantics). Sweeps are off on both sides so the comparison is
// pure packet-path.
func TestNewServerDecisionsMatchDeployment(t *testing.T) {
	det := trainTiny(t)
	trace := traffic.GenerateBenign(33, 30).Merge(traffic.MustGenerateAttack(traffic.Mirai, 34, 8))

	dep, err := det.NewDeployment(DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := dep.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	want := make([]switchsim.Decision, len(trace.Packets))
	for i := range trace.Packets {
		want[i] = dep.Switch.ProcessPacket(&trace.Packets[i])
	}

	got := make([]switchsim.Decision, len(trace.Packets))
	scfg := ServeConfig{Shards: 1, OnDecision: func(_ int, _ uint32, seq uint64, _ *Packet, d switchsim.Decision) {
		got[seq] = d
	}}
	srv, err := det.NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Replay(context.Background(), serve.NewTraceSource(trace.Packets)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("packet %d (%v): deployment=%+v server=%+v",
				i, features.KeyOf(&trace.Packets[i]), want[i], got[i])
		}
	}
}
