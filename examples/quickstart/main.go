// Quickstart: train iGuard on benign IoT traffic, inspect the whitelist
// rules it compiles to, and classify a Mirai scan — the minimal
// end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"iguard"
	"iguard/internal/features"
	"iguard/internal/traffic"
)

func main() {
	// 1. Benign training traffic. In a real deployment this comes from a
	// PCAP of the protected network; here we synthesise an IoT mixture.
	benign := traffic.GenerateBenign(1, 400)
	fmt.Printf("training on %d benign packets\n", len(benign.Packets))

	cfg := iguard.DefaultConfig()
	cfg.FlowThreshold = 8 // classify flows at their 8th packet
	det, err := iguard.Train(benign.Packets, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d whitelist rules (%d TCAM rules after quantisation)\n",
		len(det.Rules().Whitelist()), len(det.CompiledRules().Rules))

	// 2. Classify flows: extract features from test traffic the same way
	// the switch does and ask the detector.
	attack := traffic.MustGenerateAttack(traffic.Mirai, 2, 30)
	test := traffic.GenerateBenign(3, 100).Merge(attack)
	samples := features.ExtractAll(test.Packets, cfg.FlowThreshold, cfg.FlowTimeout)

	var caught, missed, falseAlarm, passed int
	for _, s := range samples {
		verdict := det.ClassifyFlow(s.FL)
		malicious := test.IsMalicious(s.Key)
		switch {
		case verdict == 1 && malicious:
			caught++
		case verdict == 0 && malicious:
			missed++
		case verdict == 1 && !malicious:
			falseAlarm++
		default:
			passed++
		}
	}
	fmt.Printf("\nflow verdicts: caught %d Mirai flows, missed %d; %d benign passed, %d false alarms\n",
		caught, missed, passed, falseAlarm)

	// 3. The rules are the deployable artefact: every sample inside one
	// hypercube shares the detector's label (consistency C, §3.2.3).
	var testFeatures [][]float64
	for _, s := range samples {
		testFeatures = append(testFeatures, s.FL)
	}
	fmt.Printf("rule/forest consistency C = %.4f\n", det.Consistency(testFeatures))
}
