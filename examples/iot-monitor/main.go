// IoT fleet monitor: a long-running pipeline that trains iGuard from a
// benign PCAP, persists the deployable model, reloads it (as a switch
// controller would at boot), and then monitors mixed traffic for all
// fifteen attack families, reporting a per-attack detection scoreboard.
package main

import (
	"bytes"
	"fmt"
	"log"

	"iguard"
	"iguard/internal/features"
	"iguard/internal/netpkt"
	"iguard/internal/traffic"
)

func main() {
	const n = 8

	// 1. Train from a PCAP: we round-trip the synthetic benign trace
	// through the pcap encoder to exercise the real ingestion path.
	benign := traffic.GenerateBenign(1, 400)
	var pcap bytes.Buffer
	w := netpkt.NewPcapWriter(&pcap)
	for i := range benign.Packets {
		if err := w.WritePacket(&benign.Packets[i]); err != nil {
			log.Fatal(err)
		}
	}
	w.Flush()
	r, err := netpkt.NewPcapReader(&pcap)
	if err != nil {
		log.Fatal(err)
	}
	packets, err := r.ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d packets from pcap\n", len(packets))

	cfg := iguard.DefaultConfig()
	cfg.FlowThreshold = n
	// Tune (k, T) on a validation capture mixing several known attack
	// families with benign traffic (the paper's protocol, one attack at
	// a time; a fleet monitor mixes what it knows about).
	for _, s := range features.ExtractAll(traffic.GenerateBenign(30, 100).Packets, n, cfg.FlowTimeout) {
		cfg.ValidationX = append(cfg.ValidationX, s.FL)
		cfg.ValidationY = append(cfg.ValidationY, 0)
	}
	for i, a := range []traffic.AttackName{traffic.UDPDDoS, traffic.Mirai, traffic.Keylogging, traffic.HTTPDDoS} {
		for _, s := range features.ExtractAll(traffic.MustGenerateAttack(a, int64(31+i), 6).Packets, n, cfg.FlowTimeout) {
			cfg.ValidationX = append(cfg.ValidationX, s.FL)
			cfg.ValidationY = append(cfg.ValidationY, 1)
		}
	}
	det, err := iguard.Train(packets, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Persist and reload the deployable model (what a controller
	// ships to the switch at boot).
	var model bytes.Buffer
	if err := det.Save(&model); err != nil {
		log.Fatal(err)
	}
	modelBytes := model.Len()
	loaded, err := iguard.Load(&model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model round trip: %d bytes, rule-based=%v\n\n", modelBytes, loaded.RuleBased())

	// 3. Monitor every attack family.
	fmt.Printf("%-22s %9s %9s %9s\n", "attack", "caught", "missed", "falsePos")
	for _, name := range traffic.AllAttacks() {
		attack := traffic.MustGenerateAttack(name, 42, 20)
		test := traffic.GenerateBenign(43, 80).Merge(attack)
		samples := features.ExtractAll(test.Packets, n, cfg.FlowTimeout)
		caught, missed, falsePos := 0, 0, 0
		for _, s := range samples {
			verdict := loaded.ClassifyFlow(s.FL)
			switch {
			case test.IsMalicious(s.Key) && verdict == 1:
				caught++
			case test.IsMalicious(s.Key):
				missed++
			case verdict == 1:
				falsePos++
			}
		}
		fmt.Printf("%-22s %9d %9d %9d\n", name, caught, missed, falsePos)
	}
}
