// Adversarial robustness study: compare iGuard with a conventional
// isolation forest under the black-box evasion attack of Table 3 — the
// attacker interleaves benign-looking packets into flood flows to drag
// flow statistics toward the benign manifold. The sweep prints macro F1
// per evasion intensity for both detectors; see EXPERIMENTS.md (E6) for
// the corresponding switch-level study.
package main

import (
	"fmt"
	"log"
	"time"

	"iguard"
	"iguard/internal/features"
	"iguard/internal/iforest"
	"iguard/internal/metrics"
	"iguard/internal/traffic"
)

func main() {
	const n = 8
	const timeout = 5 * time.Second

	// Shared benign training corpus.
	benignTrain := traffic.GenerateBenign(1, 400)
	trainSamples := features.ExtractAll(benignTrain.Packets, n, timeout)
	var trainRaw [][]float64
	for _, s := range trainSamples {
		trainRaw = append(trainRaw, s.FL)
	}

	// iGuard, tuned like the paper: the validation set carries ~20%
	// attack traffic for the (k, T) grid search.
	cfg := iguard.DefaultConfig()
	cfg.FlowThreshold = n
	valBenign := traffic.GenerateBenign(10, 80)
	valAttack := traffic.MustGenerateAttack(traffic.TCPDDoS, 11, 10)
	for _, s := range features.ExtractAll(valBenign.Packets, n, timeout) {
		cfg.ValidationX = append(cfg.ValidationX, s.FL)
		cfg.ValidationY = append(cfg.ValidationY, 0)
	}
	for _, s := range features.ExtractAll(valAttack.Packets, n, timeout) {
		cfg.ValidationX = append(cfg.ValidationX, s.FL)
		cfg.ValidationY = append(cfg.ValidationY, 1)
	}
	det, err := iguard.TrainOnFeatures(trainRaw, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Conventional iForest baseline over the same (preprocessed-by-its-
	// own-scaler) features.
	prep := features.NewFLPreprocess()
	trainX := prep.FitTransform(trainRaw)
	forest := iforest.Fit(trainX, iforest.Options{Trees: 100, SubSample: 256, Seed: 2})
	forest.CalibrateThreshold(trainX, 0.05)

	fmt.Printf("%-28s %-14s %-14s\n", "scenario", "iForest F1", "iGuard F1")
	for _, scenario := range []struct {
		name string
		bpa  float64 // benign packets inserted per attack packet
	}{
		{"TCP DDoS (no evasion)", 0},
		{"TCP DDoS evasion 1:4", 0.25},
		{"TCP DDoS evasion 1:2", 0.5},
		{"TCP DDoS evasion 1:1", 1.0},
	} {
		attack := traffic.MustGenerateAttack(traffic.TCPDDoS, 3, 24)
		if scenario.bpa > 0 {
			attack = traffic.Evade(attack, scenario.bpa, 4)
		}
		test := traffic.GenerateBenign(5, 120).Merge(attack)
		samples := features.ExtractAll(test.Packets, n, timeout)

		var ifPreds, igPreds, truths []int
		for _, s := range samples {
			label := 0
			if test.IsMalicious(s.Key) {
				label = 1
			}
			truths = append(truths, label)
			ifPreds = append(ifPreds, forest.Predict(prep.Transform(s.FL)))
			igPreds = append(igPreds, det.ClassifyFlow(s.FL))
		}
		ifF1, err := metrics.MacroF1Score(ifPreds, truths)
		if err != nil {
			log.Fatal(err)
		}
		igF1, err := metrics.MacroF1Score(igPreds, truths)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %-14.3f %-14.3f\n", scenario.name, ifF1, igF1)
	}
}
