// DDoS mitigation on the switch: deploy iGuard's whitelist on the
// simulated Tofino pipeline, let the controller blacklist flood flows
// as their classifications arrive, and watch the data plane shift from
// whitelist lookups to line-rate blacklist drops — the red path taking
// over from the blue path as mitigation kicks in.
package main

import (
	"fmt"
	"log"

	"iguard"
	"iguard/internal/features"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

func main() {
	// Train on clean traffic from the protected segment; tune (k, T) on
	// a validation capture carrying known flood samples, as the paper's
	// §4.1 protocol does.
	cfg := iguard.DefaultConfig()
	cfg.FlowThreshold = 8
	for _, s := range features.ExtractAll(traffic.GenerateBenign(10, 80).Packets, cfg.FlowThreshold, cfg.FlowTimeout) {
		cfg.ValidationX = append(cfg.ValidationX, s.FL)
		cfg.ValidationY = append(cfg.ValidationY, 0)
	}
	for _, s := range features.ExtractAll(traffic.MustGenerateAttack(traffic.UDPDDoS, 11, 8).Packets, cfg.FlowThreshold, cfg.FlowTimeout) {
		cfg.ValidationX = append(cfg.ValidationX, s.FL)
		cfg.ValidationY = append(cfg.ValidationY, 1)
	}
	det, err := iguard.Train(traffic.GenerateBenign(1, 400).Packets, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Deploy: switch plus controller with LRU blacklist eviction.
	dep, err := det.NewDeployment(iguard.DefaultDeployConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	sw := dep.Switch

	// A UDP flood arrives mixed into normal traffic.
	benign := traffic.GenerateBenign(2, 150)
	flood := traffic.MustGenerateAttack(traffic.UDPDDoS, 3, 30)
	trace := benign.Merge(flood)
	fmt.Printf("replaying %d packets (%d flood flows)\n\n", len(trace.Packets), len(flood.Malicious))

	// Process in chunks and report how the mitigation progresses.
	chunk := len(trace.Packets) / 5
	var floodDropped, floodTotal int
	for part := 0; part < 5; part++ {
		lo, hi := part*chunk, (part+1)*chunk
		if part == 4 {
			hi = len(trace.Packets)
		}
		before := sw.Counters
		for i := lo; i < hi; i++ {
			p := &trace.Packets[i]
			d := sw.ProcessPacket(p)
			if trace.IsMalicious(features.KeyOf(p)) {
				floodTotal++
				if d.Dropped {
					floodDropped++
				}
			}
		}
		delta := func(a, b [6]int, p switchsim.Path) int { return b[p] - a[p] }
		fmt.Printf("chunk %d: red=%d brown=%d blue=%d purple=%d  blacklist=%d\n",
			part+1,
			delta(before.PathCounts, sw.Counters.PathCounts, switchsim.PathRed),
			delta(before.PathCounts, sw.Counters.PathCounts, switchsim.PathBrown),
			delta(before.PathCounts, sw.Counters.PathCounts, switchsim.PathBlue),
			delta(before.PathCounts, sw.Counters.PathCounts, switchsim.PathPurple),
			sw.BlacklistLen())
	}

	st := dep.Stats().Controller
	fmt.Printf("\nflood packets dropped: %d/%d (%.1f%%)\n",
		floodDropped, floodTotal, 100*float64(floodDropped)/float64(floodTotal))
	fmt.Printf("controller installed %d blacklist rules from %d digests (%d B of control traffic)\n",
		st.RulesInstalled, st.DigestsReceived, st.BytesReceived)
	fmt.Printf("mean per-packet latency (modelled): %v\n", sw.AvgLatency())
	fmt.Printf("switch resources: %s\n", sw.Usage().Fractions(switchsim.Tofino1Budget()))
}
