package iguard

import (
	"context"
	"net"
	"testing"
	"time"

	"iguard/internal/controller"
	"iguard/internal/features"
	"iguard/internal/fed"
	"iguard/internal/serve"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

func fedWaitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFederationEndToEnd is the acceptance test for the federation
// tentpole, through the public facade: an attack replayed at node A
// blacklists the attacker fleet-wide, so node B drops the same flows
// from their very first packet — something a standalone node cannot
// do, since it needs FlowThreshold packets before it can classify.
func TestFederationEndToEnd(t *testing.T) {
	det := trainTiny(t)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := fed.NewHub(ln, fed.HubConfig{NodeID: 100})
	go func() {
		if err := hub.Serve(); err != nil {
			t.Errorf("hub serve: %v", err)
		}
	}()
	defer func() {
		if err := hub.Close(); err != nil {
			t.Logf("hub close: %v", err)
		}
	}()
	addr := hub.Addr().String()

	// Node A: its controllers' installs are announced to the hub.
	var agentA *fed.Agent
	cfgA := DefaultServeConfig()
	cfgA.Shards = 2
	cfgA.OnBlacklist = func(_ int, ev controller.Event) {
		if ev.Op == controller.OpInstall {
			agentA.Announce(ev.Key)
		}
	}
	srvA, err := det.NewServer(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	agentA, err = fed.NewAgent(fed.AgentConfig{Addr: addr, NodeID: 1, Apply: srvA})
	if err != nil {
		t.Fatal(err)
	}
	agentA.Start()
	defer agentA.Close()

	// Node B: receives the fleet view; its own traffic comes later.
	cfgB := DefaultServeConfig()
	cfgB.Shards = 2
	srvB, err := det.NewServer(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	applied := make(chan features.FlowKey, 256)
	agentB, err := fed.NewAgent(fed.AgentConfig{
		Addr: addr, NodeID: 2, Apply: srvB,
		OnApply: func(ty fed.Type, key features.FlowKey) {
			if ty == fed.TInstall {
				applied <- key
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	agentB.Start()
	defer agentB.Close()
	fedWaitFor(t, "both nodes joined", func() bool { return hub.Stats().Nodes == 2 })

	// Attack at node A.
	attack := traffic.MustGenerateAttack(traffic.UDPDDoS, 8, 8)
	traceA := traffic.GenerateBenign(9, 50).Merge(attack)
	if _, _, err := srvA.Replay(context.Background(), serve.NewTraceSource(traceA.Packets)); err != nil {
		t.Fatal(err)
	}
	installedA := srvA.Stats().RulesInstalled
	if installedA == 0 {
		t.Fatal("node A installed no blacklist rules — the attack was not detected locally")
	}

	// One hub broadcast round later, node B holds node A's verdicts.
	fedWaitFor(t, "node B converged on node A's installs", func() bool {
		return agentB.Stats().AppliedInstalls >= uint64(installedA)
	})
	if got := srvB.Stats().BlacklistLen; got != installedA {
		t.Fatalf("node B resident blacklist %d, want %d (node A's installs)", got, installedA)
	}
	blacklisted := map[features.FlowKey]bool{}
drain:
	for {
		select {
		case k := <-applied:
			blacklisted[k] = true
		default:
			break drain
		}
	}

	// The same attack now hits node B: every packet of a propagated
	// flow is dropped from packet one. (A standalone node B would pass
	// the first FlowThreshold packets of each flow while its own
	// classifier accumulated state — that head-start is exactly what
	// federation removes.) Count how many attack packets belong to
	// propagated flows; exactly those must take the red path.
	wantRed := 0
	for i := range attack.Packets {
		key, _ := features.CanonicalFoldOf(&attack.Packets[i])
		if blacklisted[key] {
			wantRed++
		}
	}
	if wantRed == 0 {
		t.Fatal("no attack packet belongs to a propagated flow")
	}
	if _, _, err := srvB.Replay(context.Background(), serve.NewTraceSource(attack.Packets)); err != nil {
		t.Fatal(err)
	}
	stB := srvB.Stats()
	if stB.PathCounts[switchsim.PathRed] < wantRed {
		t.Fatalf("node B red-path packets %d, want >=%d (propagated blacklist must catch flows from packet one)",
			stB.PathCounts[switchsim.PathRed], wantRed)
	}
	if stB.Drops < wantRed {
		t.Fatalf("node B dropped %d, want >=%d", stB.Drops, wantRed)
	}

	agentA.Close()
	agentB.Close()
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srvB.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFederationDeadHubStandaloneIdentical is the degradation half of
// the acceptance criteria: a node whose hub is unreachable must make
// decisions byte-identical to a standalone server — federation rides
// alongside the data path, never in it.
func TestFederationDeadHubStandaloneIdentical(t *testing.T) {
	det := trainTiny(t)
	trace := traffic.GenerateBenign(33, 30).Merge(traffic.MustGenerateAttack(traffic.Mirai, 34, 8))

	// A listener bound and immediately closed yields an address that
	// refuses connections fast — the "hub died before we ever spoke"
	// case.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}

	run := func(federated bool) []switchsim.Decision {
		got := make([]switchsim.Decision, len(trace.Packets))
		var agent *fed.Agent
		cfg := ServeConfig{Shards: 2, OnDecision: func(_ int, _ uint32, seq uint64, _ *Packet, d switchsim.Decision) {
			got[seq] = d
		}}
		if federated {
			cfg.OnBlacklist = func(_ int, ev controller.Event) {
				if ev.Op == controller.OpInstall {
					agent.Announce(ev.Key)
				}
			}
		}
		srv, err := det.NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if federated {
			agent, err = fed.NewAgent(fed.AgentConfig{
				Addr: deadAddr, NodeID: 9, Apply: srv,
				BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			agent.Start()
		}
		if _, _, err := srv.Replay(context.Background(), serve.NewTraceSource(trace.Packets)); err != nil {
			t.Fatal(err)
		}
		if federated {
			// The replay can outrun the agent's first dial; wait for
			// the attempt so the run demonstrably served while the
			// agent was probing a dead hub.
			fedWaitFor(t, "a dial attempt at the dead hub", func() bool {
				return agent.Stats().Dials > 0
			})
			agent.Close()
			st := agent.Stats()
			if st.Connected || st.Sessions != 0 {
				t.Fatalf("agent somehow connected to a dead hub: %+v", st)
			}
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		return got
	}

	standalone := run(false)
	federated := run(true)
	for i := range standalone {
		if standalone[i] != federated[i] {
			t.Fatalf("decision %d diverged: standalone %+v vs dead-hub federated %+v", i, standalone[i], federated[i])
		}
	}
}
