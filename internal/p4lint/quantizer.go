package p4lint

import (
	"math"

	"iguard/internal/analysis"
	"iguard/internal/rules"
)

// Quantizer checks the quantiser-config artefacts: every manifest
// feature has a config line, bin edges are strictly monotone (positive
// bucket over a positive span), the bucket width equals span/2^bits,
// the offset equals the feature minimum, and encode∘decode round-trips
// every sampled bin. When the compiled rule set that produced the
// bundle is attached (the -check path), the emitted entries are also
// round-tripped against it range for range.
var QuantizerCheck = &Analyzer{
	Name: "quantizer",
	Doc:  "bin edges must be monotone, bin count 2^bits, and the config must round-trip the compiled rule set",
	Run:  runQuantizer,
}

func runQuantizer(b *Bundle, report func(analysis.Diagnostic)) {
	for _, lv := range b.levels() {
		mf := lv.manifest
		if len(mf.Quantizer.Min) != len(mf.Fields) || len(mf.Quantizer.Max) != len(mf.Fields) || len(mf.Quantizer.Bits) != len(mf.Fields) {
			report(diag(b.ManifestPath, Pos{Line: 1, Col: 1}, "quantizer", "manifest %s quantizer arrays do not all span its %d fields", lv.name, len(mf.Fields)))
			continue
		}
		q := &rules.Quantizer{Min: mf.Quantizer.Min, Max: mf.Quantizer.Max, Bits: mf.Quantizer.Bits}

		byName := map[string]QuantLine{}
		for _, ql := range lv.quant {
			if prev, dup := byName[ql.Name]; dup {
				report(diag(lv.quantPath, Pos{Line: ql.Line, Col: 1}, "quantizer", "duplicate quantize line for %s (first on line %d)", ql.Name, prev.Line))
				continue
			}
			byName[ql.Name] = ql
		}

		for i, name := range mf.Fields {
			ql, ok := byName[name]
			if !ok {
				report(diag(lv.quantPath, Pos{Line: 1, Col: 1}, "quantizer", "no quantize line for manifest field %s", name))
				continue
			}
			bits := mf.Quantizer.Bits[i]
			if bits < 1 || bits > 32 {
				report(diag(b.ManifestPath, Pos{Line: 1, Col: 1}, "quantizer", "field %s bit width %d is outside [1, 32]", name, bits))
				continue
			}
			// Monotone bin edges: edge k = offset + k·bucket must be
			// strictly increasing, i.e. the bucket is positive.
			if ql.Bucket <= 0 {
				report(diag(lv.quantPath, Pos{Line: ql.Line, Col: 1}, "quantizer", "field %s bin edges are not monotone (bucket %g)", name, ql.Bucket))
				continue
			}
			span := mf.Quantizer.Max[i] - mf.Quantizer.Min[i]
			if span <= 0 {
				report(diag(b.ManifestPath, Pos{Line: 1, Col: 1}, "quantizer", "field %s has empty span [%g, %g]", name, mf.Quantizer.Min[i], mf.Quantizer.Max[i]))
				continue
			}
			// Bin count is 2^bits by construction, so the bucket width
			// determines the edge set: it must equal span/2^bits.
			levels := uint64(1) << bits
			want := span / float64(levels)
			if !approxEq(ql.Bucket, want) {
				report(diag(lv.quantPath, Pos{Line: ql.Line, Col: 1}, "quantizer", "field %s bucket %g does not equal span/2^bits = %g", name, ql.Bucket, want))
			}
			if !approxEq(ql.Offset, mf.Quantizer.Min[i]) {
				report(diag(lv.quantPath, Pos{Line: ql.Line, Col: 1}, "quantizer", "field %s offset %g does not equal the feature minimum %g", name, ql.Offset, mf.Quantizer.Min[i]))
			}
			// Round-trip: the centre of every sampled bin must encode
			// back to its own code.
			for _, code := range sampleCodes(levels) {
				centre := q.Decode(i, code) + want/2
				if got := q.Encode(i, centre); got != code {
					report(diag(lv.quantPath, Pos{Line: ql.Line, Col: 1}, "quantizer", "field %s bin %d does not round-trip: encode(decode(%d)+bucket/2) = %d", name, code, code, got))
					break
				}
			}
		}

		// Differential round-trip against the in-process compiled set,
		// when the caller attached it (iguard-p4gen -check).
		if lv.compiled != nil {
			checkAgainstCompiled(b, lv, report)
		}
	}
}

// checkAgainstCompiled verifies the emitted artefacts reproduce the
// compiled rule set exactly: same quantiser, same rule count, same
// ranges entry for entry.
func checkAgainstCompiled(b *Bundle, lv level, report func(analysis.Diagnostic)) {
	cq := lv.compiled.Quantizer
	mf := lv.manifest
	for i := range mf.Fields {
		if i >= len(cq.Bits) {
			break
		}
		if !approxEq(mf.Quantizer.Min[i], cq.Min[i]) || !approxEq(mf.Quantizer.Max[i], cq.Max[i]) || mf.Quantizer.Bits[i] != cq.Bits[i] {
			report(diag(b.ManifestPath, Pos{Line: 1, Col: 1}, "quantizer", "manifest %s quantizer for %s diverges from the compiled rule set", lv.name, mf.Fields[i]))
		}
	}
	if len(lv.entries) != len(lv.compiled.Rules) {
		report(diag(lv.rulesPath, Pos{Line: 1, Col: 1}, "quantizer", "rule file has %d entries but the compiled set has %d rules", len(lv.entries), len(lv.compiled.Rules)))
		return
	}
	for j, e := range lv.entries {
		want := lv.compiled.Rules[j].Ranges
		if len(e.Fields) != len(want) {
			report(diag(lv.rulesPath, Pos{Line: e.Line, Col: 1}, "quantizer", "entry matches %d fields but compiled rule %d has %d ranges", len(e.Fields), j, len(want)))
			continue
		}
		for k, f := range e.Fields {
			if f.Lo != want[k].Lo || f.Hi != want[k].Hi {
				report(diag(lv.rulesPath, Pos{Line: e.Line, Col: 1}, "quantizer", "field %s range %d..%d diverges from compiled rule %d range %d..%d", f.Name, f.Lo, f.Hi, j, want[k].Lo, want[k].Hi))
			}
		}
	}
}

// sampleCodes picks representative bin codes: all bins for small
// domains, the edges and midpoint for large ones.
func sampleCodes(levels uint64) []uint64 {
	if levels <= 256 {
		out := make([]uint64, levels)
		for i := range out {
			out[i] = uint64(i)
		}
		return out
	}
	return []uint64{0, 1, levels / 2, levels - 2, levels - 1}
}

// approxEq compares floats with a relative tolerance wide enough to
// absorb %g formatting and one rounding step, far below any real
// quantiser misconfiguration.
func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}
