package p4lint

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the lexed token stream for
// the P4_16 subset p4gen emits. The first error aborts the parse; the
// caller converts it into a "parse" diagnostic.
type parser struct {
	toks []token
	i    int
}

// ParseProgram parses P4 source into a Program. file is recorded for
// diagnostics only.
func ParseProgram(file, src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{File: file}
	for p.cur().kind != tokEOF {
		if err := p.parseTopLevel(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) peekKind(ahead int) tokKind {
	j := p.i + ahead
	if j >= len(p.toks) {
		return tokEOF
	}
	return p.toks[j].kind
}

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(pos Pos, format string, args ...any) error {
	return &errSyntax{pos: pos, msg: fmt.Sprintf(format, args...)}
}

// expect consumes a token of kind k or fails.
func (p *parser) expect(k tokKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, p.errorf(t.pos, "expected %s, found %s", k, describe(t))
	}
	return p.advance(), nil
}

// expectIdent consumes the exact keyword identifier.
func (p *parser) expectIdent(name string) (token, error) {
	t := p.cur()
	if t.kind != tokIdent || t.text != name {
		return t, p.errorf(t.pos, "expected %q, found %s", name, describe(t))
	}
	return p.advance(), nil
}

func describe(t token) string {
	switch t.kind {
	case tokIdent, tokNumber:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.kind.String()
	}
}

// parseTopLevel dispatches one top-level declaration.
func (p *parser) parseTopLevel(prog *Program) error {
	t := p.cur()
	switch {
	case t.kind == tokInclude:
		p.advance()
		prog.Includes = append(prog.Includes, Include{Pos: t.pos, Text: strings.TrimSpace(t.text)})
		return nil
	case t.kind == tokIdent && (t.text == "header" || t.text == "struct"):
		d, err := p.parseStructDecl()
		if err != nil {
			return err
		}
		if d.Kind == "header" {
			prog.Headers = append(prog.Headers, d)
		} else {
			prog.Structs = append(prog.Structs, d)
		}
		return nil
	case t.kind == tokIdent && t.text == "parser":
		d, err := p.parseParserDecl()
		if err != nil {
			return err
		}
		prog.Parsers = append(prog.Parsers, d)
		return nil
	case t.kind == tokIdent && t.text == "control":
		d, err := p.parseControlDecl()
		if err != nil {
			return err
		}
		prog.Controls = append(prog.Controls, d)
		return nil
	case t.kind == tokIdent:
		// Package instantiation: Name(args) inst;
		inst, err := p.parseInstantiation()
		if err != nil {
			return err
		}
		prog.Insts = append(prog.Insts, inst)
		return nil
	}
	return p.errorf(t.pos, "unexpected %s at top level", describe(t))
}

// parseStructDecl parses header/struct NAME { fields }.
func (p *parser) parseStructDecl() (*StructDecl, error) {
	kw := p.advance() // header | struct
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	d := &StructDecl{Pos: kw.pos, Kind: kw.text, Name: name.text}
	for p.cur().kind != tokRBrace {
		typ, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		fname, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		d.Fields = append(d.Fields, Field{Pos: fname.pos, Type: typ, Name: fname.text})
	}
	p.advance() // }
	return d, nil
}

// parseTypeRef parses ident, bit<N>, or Ident<T1, T2>.
func (p *parser) parseTypeRef() (TypeRef, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return TypeRef{}, err
	}
	t := TypeRef{Pos: name.pos, Name: name.text, Width: -1}
	if p.cur().kind != tokLt {
		return t, nil
	}
	p.advance() // <
	if t.Name == "bit" || t.Name == "int" || t.Name == "varbit" {
		n, err := p.expect(tokNumber)
		if err != nil {
			return TypeRef{}, err
		}
		w, err := parseUint(n)
		if err != nil {
			return TypeRef{}, err
		}
		t.Width = int(w)
	} else {
		for {
			arg, err := p.parseTypeRef()
			if err != nil {
				return TypeRef{}, err
			}
			t.Args = append(t.Args, arg)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if _, err := p.expect(tokGt); err != nil {
		return TypeRef{}, err
	}
	return t, nil
}

func parseUint(t token) (uint64, error) {
	v, err := strconv.ParseUint(t.text, 0, 64)
	if err != nil {
		return 0, &errSyntax{pos: t.pos, msg: "invalid number " + t.text}
	}
	return v, nil
}

// parseParams parses a (possibly empty) parenthesised parameter list.
func (p *parser) parseParams() ([]Param, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var out []Param
	for p.cur().kind != tokRParen {
		start := p.cur()
		dir := ""
		if start.kind == tokIdent && (start.text == "in" || start.text == "out" || start.text == "inout") {
			// A direction keyword is only a direction if a type follows.
			if p.peekKind(1) == tokIdent {
				dir = start.text
				p.advance()
			}
		}
		typ, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		out = append(out, Param{Pos: start.pos, Dir: dir, Type: typ, Name: name.text})
		if p.cur().kind == tokComma {
			p.advance()
		}
	}
	p.advance() // )
	return out, nil
}

// parseParserDecl parses parser NAME(params) { states }.
func (p *parser) parseParserDecl() (*ParserDecl, error) {
	kw := p.advance()
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	d := &ParserDecl{Pos: kw.pos, Name: name.text, Params: params}
	for p.cur().kind != tokRBrace {
		st, err := p.parseState()
		if err != nil {
			return nil, err
		}
		d.States = append(d.States, st)
	}
	p.advance() // }
	return d, nil
}

// parseState parses state NAME { stmts transition ...; }.
func (p *parser) parseState() (*State, error) {
	kw, err := p.expectIdent("state")
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	st := &State{Pos: kw.pos, Name: name.text}
	for p.cur().kind != tokRBrace {
		if p.cur().kind == tokIdent && p.cur().text == "transition" {
			tr, err := p.parseTransition()
			if err != nil {
				return nil, err
			}
			st.Trans = tr
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Stmts = append(st.Stmts, s)
	}
	p.advance() // }
	return st, nil
}

// parseTransition parses "transition target;" or
// "transition select(expr) { v: target; default: target; }".
func (p *parser) parseTransition() (*Transition, error) {
	kw := p.advance() // transition
	tr := &Transition{Pos: kw.pos}
	if p.cur().kind == tokIdent && p.cur().text == "select" && p.peekKind(1) == tokLParen {
		p.advance() // select
		p.advance() // (
		sel, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		tr.Select = sel
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLBrace); err != nil {
			return nil, err
		}
		for p.cur().kind != tokRBrace {
			c := TransCase{Pos: p.cur().pos}
			if p.cur().kind == tokIdent && p.cur().text == "default" {
				p.advance()
			} else {
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Value = v
			}
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			tgt, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			c.Target = tgt.text
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			tr.Cases = append(tr.Cases, c)
		}
		p.advance() // }
		return tr, nil
	}
	tgt, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	tr.Target = tgt.text
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return tr, nil
}

// parseControlDecl parses control NAME(params) { decls apply {...} }.
func (p *parser) parseControlDecl() (*ControlDecl, error) {
	kw := p.advance()
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	d := &ControlDecl{Pos: kw.pos, Name: name.text, Params: params}
	for p.cur().kind != tokRBrace {
		t := p.cur()
		switch {
		case t.kind == tokIdent && t.text == "action":
			a, err := p.parseAction()
			if err != nil {
				return nil, err
			}
			d.Actions = append(d.Actions, a)
		case t.kind == tokIdent && t.text == "table":
			tb, err := p.parseTable()
			if err != nil {
				return nil, err
			}
			d.Tables = append(d.Tables, tb)
		case t.kind == tokIdent && t.text == "apply":
			p.advance()
			b, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			if d.Apply != nil {
				return nil, p.errorf(t.pos, "duplicate apply block in control %s", d.Name)
			}
			d.Apply = b
		case t.kind == tokIdent:
			inst, err := p.parseInstantiation()
			if err != nil {
				return nil, err
			}
			d.Insts = append(d.Insts, inst)
		default:
			return nil, p.errorf(t.pos, "unexpected %s in control %s", describe(t), d.Name)
		}
	}
	p.advance() // }
	if d.Apply == nil {
		return nil, p.errorf(kw.pos, "control %s has no apply block", d.Name)
	}
	return d, nil
}

// parseInstantiation parses Type<Args>(ctorArgs) name;
func (p *parser) parseInstantiation() (*Instantiation, error) {
	typ, err := p.parseTypeRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	inst := &Instantiation{Pos: typ.Pos, Type: typ}
	for p.cur().kind != tokRParen {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		inst.Args = append(inst.Args, a)
		if p.cur().kind == tokComma {
			p.advance()
		}
	}
	p.advance() // )
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	inst.Name = name.text
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return inst, nil
}

// parseAction parses action NAME(params) { body }.
func (p *parser) parseAction() (*ActionDecl, error) {
	kw := p.advance()
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ActionDecl{Pos: kw.pos, Name: name.text, Params: params, Body: body}, nil
}

// parseTable parses table NAME { key = {...} actions = {...} size = N;
// default_action = name; }. Unknown properties of the form
// "ident = expr;" are skipped.
func (p *parser) parseTable() (*TableDecl, error) {
	kw := p.advance()
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	tb := &TableDecl{Pos: kw.pos, Name: name.text}
	for p.cur().kind != tokRBrace {
		prop, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		switch prop.text {
		case "key":
			if err := p.parseTableKeys(tb); err != nil {
				return nil, err
			}
		case "actions":
			if err := p.parseTableActions(tb); err != nil {
				return nil, err
			}
		case "size":
			n, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			v, err := parseUint(n)
			if err != nil {
				return nil, err
			}
			tb.HasSize, tb.Size, tb.SizePos = true, v, n.pos
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
		case "default_action":
			a, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			tb.Default = &ActionRef{Pos: a.pos, Name: a.text}
			// Optional argument list: default_action = name();
			if p.cur().kind == tokLParen {
				for p.cur().kind != tokRParen {
					p.advance()
				}
				p.advance()
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
		default:
			// Unknown scalar property: skip its expression.
			if _, err := p.parseExpr(); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
		}
	}
	p.advance() // }
	return tb, nil
}

func (p *parser) parseTableKeys(tb *TableDecl) error {
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.cur().kind != tokRBrace {
		pos := p.cur().pos
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokColon); err != nil {
			return err
		}
		mk, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return err
		}
		tb.Keys = append(tb.Keys, TableKey{Pos: pos, Expr: e, MatchKind: mk.text})
	}
	p.advance() // }
	return nil
}

func (p *parser) parseTableActions(tb *TableDecl) error {
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.cur().kind != tokRBrace {
		a, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return err
		}
		tb.Actions = append(tb.Actions, ActionRef{Pos: a.pos, Name: a.text})
	}
	p.advance() // }
	return nil
}

// ---------------------------------------------------------- statements

func (p *parser) parseBlock() (*Block, error) {
	lb, err := p.expect(tokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.pos}
	for p.cur().kind != tokRBrace {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // }
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tokLBrace:
		return p.parseBlock()
	case t.kind == tokIdent && t.text == "if":
		return p.parseIf()
	case t.kind == tokIdent && t.text == "return":
		p.advance()
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: t.pos}, nil
	}
	// Assignment or expression statement.
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokAssign {
		p.advance()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: t.pos, LHS: lhs, RHS: rhs}, nil
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: t.pos, X: lhs}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	kw := p.advance() // if
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: kw.pos, Cond: cond, Then: then}
	if p.cur().kind == tokIdent && p.cur().text == "else" {
		p.advance()
		if p.cur().kind == tokIdent && p.cur().text == "if" {
			st.Else, err = p.parseIf()
		} else {
			st.Else, err = p.parseBlock()
		}
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// --------------------------------------------------------- expressions

// Binary precedence, loosest first: || && ==/!= relational ^/&/| +/-.
func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(0) }

var precLevels = [][]tokKind{
	{tokOrOr},
	{tokAndAnd},
	{tokEq, tokNeq},
	{tokLt, tokGt, tokLe, tokGe},
	{tokXor, tokAmp, tokOr},
	{tokPlus, tokMinus},
}

var opText = map[tokKind]string{
	tokOrOr: "||", tokAndAnd: "&&", tokEq: "==", tokNeq: "!=",
	tokLt: "<", tokGt: ">", tokLe: "<=", tokGe: ">=",
	tokXor: "^", tokAmp: "&", tokOr: "|", tokPlus: "+", tokMinus: "-",
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, k := range precLevels[level] {
			if p.cur().kind == k {
				op := p.advance()
				y, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				x = &Binary{Pos: op.pos, Op: opText[k], X: x, Y: y}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokNot || t.kind == tokMinus {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := "!"
		if t.kind == tokMinus {
			op = "-"
		}
		return &Unary{Pos: t.pos, Op: op, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tokDot:
			p.advance()
			sel, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			x = &Member{Pos: x.exprPos(), X: x, Sel: sel.text, SelPos: sel.pos}
		case tokLParen:
			lp := p.advance()
			call := &Call{Pos: lp.pos, Fun: x}
			for p.cur().kind != tokRParen {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.cur().kind == tokComma {
					p.advance()
				}
			}
			p.advance() // )
			x = call
		case tokLBracket:
			lb := p.advance()
			hi, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			lo, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{Pos: lb.pos, X: x, Hi: hi, Lo: lo}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		p.advance()
		return &Ident{Pos: t.pos, Name: t.text}, nil
	case tokNumber:
		p.advance()
		v, err := parseUint(t)
		if err != nil {
			return nil, err
		}
		return &NumberLit{Pos: t.pos, Value: v, Text: t.text}, nil
	case tokLParen:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case tokLBrace:
		lb := p.advance()
		tup := &TupleExpr{Pos: lb.pos}
		for p.cur().kind != tokRBrace {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			tup.Elems = append(tup.Elems, e)
			if p.cur().kind == tokComma {
				p.advance()
			}
		}
		p.advance() // }
		return tup, nil
	}
	return nil, p.errorf(t.pos, "unexpected %s in expression", describe(t))
}
