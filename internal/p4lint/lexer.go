// Package p4lint statically verifies the P4_16 artefact bundles that
// iguard/internal/p4gen emits: it lexes and parses the emitted P4
// subset into a positioned AST, parses the companion rule-entry and
// quantiser-config files plus the bundle manifest, and runs a suite of
// named analyzers (nameres, widths, tables, quantizer, fit) whose
// findings reuse the internal/analysis diagnostic machinery, so the
// iguard-p4lint driver shares the vet suite's text/JSON/SARIF output.
//
// The parser covers exactly the language subset the p4gen template
// produces (headers, structs, parsers with select transitions,
// controls with actions/tables/extern instantiations, apply blocks,
// top-level package instantiations); it is not a general P4 front end.
// DESIGN.md §11 documents the subset and the soundness limits of the
// resource-fit model against real Tofino compilation.
package p4lint

import "fmt"

// tokKind enumerates lexical token classes of the P4 subset.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokInclude // a whole "#include <...>" preprocessor line
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokLt
	tokGt
	tokLe
	tokGe
	tokEq
	tokNeq
	tokAssign
	tokComma
	tokSemi
	tokColon
	tokDot
	tokXor
	tokNot
	tokAndAnd
	tokOrOr
	tokPlus
	tokMinus
	tokAmp
	tokOr
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of file"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokInclude:
		return "#include"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLt:
		return "'<'"
	case tokGt:
		return "'>'"
	case tokLe:
		return "'<='"
	case tokGe:
		return "'>='"
	case tokEq:
		return "'=='"
	case tokNeq:
		return "'!='"
	case tokAssign:
		return "'='"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokColon:
		return "':'"
	case tokDot:
		return "'.'"
	case tokXor:
		return "'^'"
	case tokNot:
		return "'!'"
	case tokAndAnd:
		return "'&&'"
	case tokOrOr:
		return "'||'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokAmp:
		return "'&'"
	case tokOr:
		return "'|'"
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string
	pos  Pos
}

// lexer scans P4 source into tokens. Comments (// and /* */) are
// skipped; preprocessor lines become single tokInclude tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// errSyntax is a lexical or syntactic error with a position, turned
// into a "parse" diagnostic by the parser entry point.
type errSyntax struct {
	pos Pos
	msg string
}

func (e *errSyntax) Error() string { return fmt.Sprintf("%d:%d: %s", e.pos.Line, e.pos.Col, e.msg) }

func (l *lexer) errorf(pos Pos, format string, args ...any) error {
	return &errSyntax{pos: pos, msg: fmt.Sprintf(format, args...)}
}

// advance consumes one byte, tracking line/column.
func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

// skipSpace consumes whitespace and comments.
func (l *lexer) skipSpace() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.here()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) here() Pos { return Pos{Line: l.line, Col: l.col} }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	pos := l.here()
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := l.advance()
	switch {
	case c == '#':
		// Preprocessor line: capture the rest of the line verbatim.
		start := l.off
		for l.off < len(l.src) && l.peek() != '\n' {
			l.advance()
		}
		return token{kind: tokInclude, text: l.src[start:l.off], pos: pos}, nil
	case isIdentStart(c):
		start := l.off - 1
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.off], pos: pos}, nil
	case isDigit(c):
		start := l.off - 1
		if c == '0' && (l.peek() == 'x' || l.peek() == 'X') {
			l.advance()
			for l.off < len(l.src) && isHexDigit(l.peek()) {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.off], pos: pos}, nil
	}
	two := func(next byte, k2, k1 tokKind) token {
		if l.peek() == next {
			l.advance()
			return token{kind: k2, pos: pos}
		}
		return token{kind: k1, pos: pos}
	}
	switch c {
	case '{':
		return token{kind: tokLBrace, pos: pos}, nil
	case '}':
		return token{kind: tokRBrace, pos: pos}, nil
	case '(':
		return token{kind: tokLParen, pos: pos}, nil
	case ')':
		return token{kind: tokRParen, pos: pos}, nil
	case '[':
		return token{kind: tokLBracket, pos: pos}, nil
	case ']':
		return token{kind: tokRBracket, pos: pos}, nil
	case '<':
		return two('=', tokLe, tokLt), nil
	case '>':
		return two('=', tokGe, tokGt), nil
	case '=':
		return two('=', tokEq, tokAssign), nil
	case '!':
		return two('=', tokNeq, tokNot), nil
	case '&':
		return two('&', tokAndAnd, tokAmp), nil
	case '|':
		return two('|', tokOrOr, tokOr), nil
	case ',':
		return token{kind: tokComma, pos: pos}, nil
	case ';':
		return token{kind: tokSemi, pos: pos}, nil
	case ':':
		return token{kind: tokColon, pos: pos}, nil
	case '.':
		return token{kind: tokDot, pos: pos}, nil
	case '^':
		return token{kind: tokXor, pos: pos}, nil
	case '+':
		return token{kind: tokPlus, pos: pos}, nil
	case '-':
		return token{kind: tokMinus, pos: pos}, nil
	}
	return token{}, l.errorf(pos, "unexpected character %q", string(c))
}

// lexAll tokenises the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
