package p4lint

import (
	"fmt"
	gotoken "go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"iguard/internal/analysis"
	"iguard/internal/p4gen"
	"iguard/internal/rules"
)

// RuleEntryField is one field match of a rule-entry line: an inclusive
// integer range over a quantised feature.
type RuleEntryField struct {
	Name   string
	Lo, Hi uint64
}

// RuleEntry is one parsed "table_add" line of a rule-entry artefact.
type RuleEntry struct {
	Line     int
	Table    string
	Action   string
	Fields   []RuleEntryField
	Priority int
}

// QuantLine is one parsed "quantize" line of a quantiser-config
// artefact.
type QuantLine struct {
	Line   int
	Name   string
	Offset float64
	Bucket float64
	Bits   int
}

// Bundle is a loaded artefact set: the parsed program, the manifest,
// and the control-plane rule/quantiser files, each remembering its
// path for diagnostics.
type Bundle struct {
	Dir      string
	Manifest *p4gen.Manifest

	Program      *Program
	ProgramPath  string
	ManifestPath string

	FLEntries   []RuleEntry
	FLRulesPath string
	FLQuant     []QuantLine
	FLQuantPath string

	PLEntries   []RuleEntry
	PLRulesPath string
	PLQuant     []QuantLine
	PLQuantPath string

	// FLRules/PLRules optionally attach the in-process compiled rule
	// sets that produced the bundle (the p4gen -check path); when
	// present, the quantizer analyzer round-trips the emitted entries
	// against them.
	FLRules *rules.CompiledRuleSet
	PLRules *rules.CompiledRuleSet

	// parseDiags collects artefact syntax findings discovered at load
	// time, reported under the "parse" pseudo-analyzer.
	parseDiags []analysis.Diagnostic
}

// diag builds a positioned diagnostic for one artefact file.
func diag(path string, pos Pos, analyzer, format string, args ...any) analysis.Diagnostic {
	return analysis.Diagnostic{
		Pos:      gotoken.Position{Filename: path, Line: pos.Line, Column: pos.Col},
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// LoadBundle loads the bundle in dir, discovering the program name
// from the single *_manifest.json present.
func LoadBundle(dir string) (*Bundle, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*_manifest.json"))
	if err != nil {
		return nil, err
	}
	if len(matches) != 1 {
		return nil, fmt.Errorf("p4lint: found %d manifest files in %s, want exactly 1 (use LoadBundleNamed)", len(matches), dir)
	}
	name := strings.TrimSuffix(filepath.Base(matches[0]), "_manifest.json")
	return LoadBundleNamed(dir, name)
}

// LoadBundleNamed loads the bundle of the named program from dir. IO
// failures are errors; malformed artefact contents become "parse"
// diagnostics surfaced by Lint.
func LoadBundleNamed(dir, program string) (*Bundle, error) {
	b := &Bundle{
		Dir:          dir,
		ProgramPath:  filepath.Join(dir, p4gen.ProgramFileName(program)),
		ManifestPath: filepath.Join(dir, p4gen.ManifestFileName(program)),
	}
	mf, err := os.Open(b.ManifestPath)
	if err != nil {
		return nil, err
	}
	b.Manifest, err = p4gen.ReadManifest(mf)
	if cerr := mf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("p4lint: manifest %s: %w", b.ManifestPath, err)
	}

	src, err := os.ReadFile(b.ProgramPath)
	if err != nil {
		return nil, err
	}
	prog, perr := ParseProgram(b.ProgramPath, string(src))
	if perr != nil {
		b.parseDiags = append(b.parseDiags, syntaxDiag(b.ProgramPath, perr))
	} else {
		b.Program = prog
	}

	load := func(level string, entries *[]RuleEntry, quant *[]QuantLine, rulesPath, quantPath *string) error {
		*rulesPath = filepath.Join(dir, p4gen.RuleFileName(program, level))
		*quantPath = filepath.Join(dir, p4gen.QuantFileName(program, level))
		rdata, err := os.ReadFile(*rulesPath)
		if err != nil {
			return err
		}
		*entries = b.parseRuleFile(*rulesPath, string(rdata))
		qdata, err := os.ReadFile(*quantPath)
		if err != nil {
			return err
		}
		*quant = b.parseQuantFile(*quantPath, string(qdata))
		return nil
	}
	if b.Manifest.FL != nil {
		if err := load("fl", &b.FLEntries, &b.FLQuant, &b.FLRulesPath, &b.FLQuantPath); err != nil {
			return nil, err
		}
	}
	if b.Manifest.PL != nil {
		if err := load("pl", &b.PLEntries, &b.PLQuant, &b.PLRulesPath, &b.PLQuantPath); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// syntaxDiag converts a parse error into a positioned diagnostic.
func syntaxDiag(path string, err error) analysis.Diagnostic {
	if se, ok := err.(*errSyntax); ok {
		return diag(path, se.pos, "parse", "%s", se.msg)
	}
	return diag(path, Pos{Line: 1, Col: 1}, "parse", "%v", err)
}

// parseRuleFile parses the control-plane rule entries:
//
//	table_add <table> <action> <field>=<lo>..<hi> ... priority=<n>
//
// Malformed lines become parse diagnostics and are skipped.
func (b *Bundle) parseRuleFile(path, src string) []RuleEntry {
	var out []RuleEntry
	for ln, line := range strings.Split(src, "\n") {
		pos := Pos{Line: ln + 1, Col: 1}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || fields[0] != "table_add" {
			b.parseDiags = append(b.parseDiags, diag(path, pos, "parse", "malformed rule entry (want \"table_add <table> <action> ...\"): %q", line))
			continue
		}
		e := RuleEntry{Line: ln + 1, Table: fields[1], Action: fields[2], Priority: -1}
		bad := false
		for _, f := range fields[3:] {
			name, val, ok := strings.Cut(f, "=")
			if !ok {
				b.parseDiags = append(b.parseDiags, diag(path, pos, "parse", "malformed rule field %q", f))
				bad = true
				break
			}
			if name == "priority" {
				p, err := strconv.Atoi(val)
				if err != nil {
					b.parseDiags = append(b.parseDiags, diag(path, pos, "parse", "malformed priority %q", val))
					bad = true
					break
				}
				e.Priority = p
				continue
			}
			loS, hiS, ok := strings.Cut(val, "..")
			if !ok {
				b.parseDiags = append(b.parseDiags, diag(path, pos, "parse", "malformed range %q (want lo..hi)", f))
				bad = true
				break
			}
			lo, err1 := strconv.ParseUint(loS, 10, 64)
			hi, err2 := strconv.ParseUint(hiS, 10, 64)
			if err1 != nil || err2 != nil {
				b.parseDiags = append(b.parseDiags, diag(path, pos, "parse", "malformed range bounds in %q", f))
				bad = true
				break
			}
			e.Fields = append(e.Fields, RuleEntryField{Name: name, Lo: lo, Hi: hi})
		}
		if !bad {
			out = append(out, e)
		}
	}
	return out
}

// parseQuantFile parses the quantiser configuration:
//
//	quantize <field> offset=<float> bucket=<float> bits=<int>
func (b *Bundle) parseQuantFile(path, src string) []QuantLine {
	var out []QuantLine
	for ln, line := range strings.Split(src, "\n") {
		pos := Pos{Line: ln + 1, Col: 1}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 || fields[0] != "quantize" {
			b.parseDiags = append(b.parseDiags, diag(path, pos, "parse", "malformed quantize line: %q", line))
			continue
		}
		q := QuantLine{Line: ln + 1, Name: fields[1]}
		ok := true
		for _, f := range fields[2:] {
			key, val, found := strings.Cut(f, "=")
			if !found {
				ok = false
				break
			}
			switch key {
			case "offset":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					ok = false
				}
				q.Offset = v
			case "bucket":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					ok = false
				}
				q.Bucket = v
			case "bits":
				v, err := strconv.Atoi(val)
				if err != nil {
					ok = false
				}
				q.Bits = v
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if !ok {
			b.parseDiags = append(b.parseDiags, diag(path, pos, "parse", "malformed quantize parameters: %q", line))
			continue
		}
		out = append(out, q)
	}
	return out
}

// level bundles the per-whitelist-level views the analyzers iterate
// over (FL always, PL when present).
type level struct {
	name      string
	manifest  *p4gen.RuleSetManifest
	entries   []RuleEntry
	rulesPath string
	quant     []QuantLine
	quantPath string
	compiled  *rules.CompiledRuleSet
}

// levels returns the present whitelist levels of the bundle.
func (b *Bundle) levels() []level {
	var out []level
	if b.Manifest.FL != nil {
		out = append(out, level{
			name: "fl", manifest: b.Manifest.FL,
			entries: b.FLEntries, rulesPath: b.FLRulesPath,
			quant: b.FLQuant, quantPath: b.FLQuantPath,
			compiled: b.FLRules,
		})
	}
	if b.Manifest.PL != nil {
		out = append(out, level{
			name: "pl", manifest: b.Manifest.PL,
			entries: b.PLEntries, rulesPath: b.PLRulesPath,
			quant: b.PLQuant, quantPath: b.PLQuantPath,
			compiled: b.PLRules,
		})
	}
	return out
}

// findTable locates a table declaration by name across all controls,
// returning the owning control too.
func (b *Bundle) findTable(name string) (*ControlDecl, *TableDecl) {
	if b.Program == nil {
		return nil, nil
	}
	for _, c := range b.Program.Controls {
		if t := c.Table(name); t != nil {
			return c, t
		}
	}
	return nil, nil
}
