package p4lint

import (
	"iguard/internal/analysis"
	"iguard/internal/rules"
)

// Tables checks the match-action tables against their rule files:
// every size= is a power of two covering the installed entry count,
// entry values fit the declared key widths, each range expands into a
// valid TCAM prefix set whose union exactly reproduces the interval
// within the 2w−2 bound, and the entry count agrees with the manifest.
var Tables = &Analyzer{
	Name: "tables",
	Doc:  "table sizes must be covering powers of two and rule entries valid TCAM range expansions",
	Run:  runTables,
}

func runTables(b *Bundle, report func(analysis.Diagnostic)) {
	if b.Program == nil {
		return
	}
	prog := b.Program
	r := newResolver(prog)

	// Structural size check on every sized table.
	for _, cd := range prog.Controls {
		for _, tb := range cd.Tables {
			if tb.HasSize && !isPow2(tb.Size) {
				report(diag(prog.File, tb.SizePos, "tables", "table %s size %d is not a power of two", tb.Name, tb.Size))
			}
		}
	}

	for _, lv := range b.levels() {
		ctrl, tb := b.findTable(lv.manifest.Table)
		if tb == nil {
			continue // widths already reports the missing table
		}
		if tb.HasSize && uint64(len(lv.entries)) > tb.Size {
			report(diag(prog.File, tb.SizePos, "tables", "table %s size %d does not cover its %d rule entries", tb.Name, tb.Size, len(lv.entries)))
		}
		if len(lv.entries) != lv.manifest.Rules {
			report(diag(lv.rulesPath, Pos{Line: 1, Col: 1}, "tables", "rule file installs %d entries but the manifest compiled %d rules", len(lv.entries), lv.manifest.Rules))
		}

		// Declared widths of the key fields, for value-range checks.
		sc := r.newScope(ctrl.Params, ctrl)
		width := map[string]int{}
		for i := range tb.Keys {
			if f, ok := sc.fieldOf(tb.Keys[i].Expr); ok {
				width[f.Name] = f.Type.Width
			}
		}

		seenPriority := map[int]int{}
		for _, e := range lv.entries {
			if len(e.Fields) != len(tb.Keys) {
				report(diag(lv.rulesPath, Pos{Line: e.Line, Col: 1}, "tables", "rule entry matches %d fields but table %s has %d keys", len(e.Fields), tb.Name, len(tb.Keys)))
			}
			if prev, dup := seenPriority[e.Priority]; dup && e.Priority >= 0 {
				report(diag(lv.rulesPath, Pos{Line: e.Line, Col: 1}, "tables", "duplicate priority %d (first used on line %d)", e.Priority, prev))
			} else {
				seenPriority[e.Priority] = e.Line
			}
			for _, f := range e.Fields {
				w, ok := width[f.Name]
				if !ok {
					continue // nameres reports unknown fields
				}
				if f.Hi < f.Lo {
					report(diag(lv.rulesPath, Pos{Line: e.Line, Col: 1}, "tables", "field %s range %d..%d is empty", f.Name, f.Lo, f.Hi))
					continue
				}
				if w < 1 || w > 63 {
					continue
				}
				if limit := uint64(1) << w; f.Hi >= limit {
					report(diag(lv.rulesPath, Pos{Line: e.Line, Col: 1}, "tables", "field %s value %d does not fit its declared bit<%d> key", f.Name, f.Hi, w))
					continue
				}
				// The range must expand into a valid prefix set that
				// tiles exactly the interval within the 2w−2 bound —
				// the TCAM installability contract.
				rg := rules.IntRange{Lo: f.Lo, Hi: f.Hi}
				ps := rules.RangeToPrefixes(rg, w)
				if len(ps) > rules.MaxRangeExpansion(w) {
					report(diag(lv.rulesPath, Pos{Line: e.Line, Col: 1}, "tables", "field %s range %d..%d expands into %d prefixes, above the %d bound for bit<%d>", f.Name, f.Lo, f.Hi, len(ps), rules.MaxRangeExpansion(w), w))
				}
				if !rules.PrefixesCoverExactly(ps, w, rg) {
					report(diag(lv.rulesPath, Pos{Line: e.Line, Col: 1}, "tables", "field %s range %d..%d prefix expansion does not reproduce the interval", f.Name, f.Lo, f.Hi))
				}
			}
		}
	}
}

func isPow2(n uint64) bool { return n > 0 && n&(n-1) == 0 }
