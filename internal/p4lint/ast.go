package p4lint

// Pos is a 1-based source position inside one artefact file. The file
// name lives on the enclosing Program/artefact, not on every node.
type Pos struct {
	Line, Col int
}

// Program is the parsed P4_16 translation unit.
type Program struct {
	// File is the path the program was parsed from, as given to the
	// loader (used verbatim in diagnostics).
	File     string
	Includes []Include
	Headers  []*StructDecl // kind "header"
	Structs  []*StructDecl // kind "struct"
	Parsers  []*ParserDecl
	Controls []*ControlDecl
	// Insts are the top-level package instantiations
	// (Pipeline(...) pipe; Switch(pipe) main;).
	Insts []*Instantiation
}

// Include records one preprocessor include line.
type Include struct {
	Pos  Pos
	Text string // e.g. "include <tna.p4>"
}

// StructDecl is a header or struct declaration.
type StructDecl struct {
	Pos    Pos
	Kind   string // "header" or "struct"
	Name   string
	Fields []Field
}

// Field finds a field by name; nil when absent.
func (s *StructDecl) Field(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// Field is one member of a header or struct.
type Field struct {
	Pos  Pos
	Type TypeRef
	Name string
}

// TypeRef names a type use. For bit<N>, Name is "bit" and Width is N;
// for every other type Width is -1. Args holds type arguments of
// parameterised extern types (Register<bit<32>, bit<32>>).
type TypeRef struct {
	Pos   Pos
	Name  string
	Width int
	Args  []TypeRef
}

// IsBit reports whether the type is a bit<N> vector.
func (t TypeRef) IsBit() bool { return t.Name == "bit" && t.Width >= 0 }

// Param is one parser/control/action parameter.
type Param struct {
	Pos  Pos
	Dir  string // "", "in", "out", "inout"
	Type TypeRef
	Name string
}

// ParserDecl is a parser declaration with its states.
type ParserDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	States []*State
}

// State is one parser state.
type State struct {
	Pos   Pos
	Name  string
	Stmts []Stmt
	Trans *Transition
}

// Transition is a state's transition: either a direct target or a
// select with cases.
type Transition struct {
	Pos    Pos
	Select Expr // nil for a direct transition
	Target string
	Cases  []TransCase
}

// TransCase is one arm of a select transition; Value nil means default.
type TransCase struct {
	Pos    Pos
	Value  Expr
	Target string
}

// ControlDecl is a control block: extern instantiations, actions,
// tables, and the apply body.
type ControlDecl struct {
	Pos     Pos
	Name    string
	Params  []Param
	Insts   []*Instantiation
	Actions []*ActionDecl
	Tables  []*TableDecl
	Apply   *Block
}

// Table finds a declared table by name; nil when absent.
func (c *ControlDecl) Table(name string) *TableDecl {
	for _, t := range c.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Action finds a declared action by name; nil when absent.
func (c *ControlDecl) Action(name string) *ActionDecl {
	for _, a := range c.Actions {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Instantiation is an extern or package instantiation:
// Type<Args>(CtorArgs) Name;
type Instantiation struct {
	Pos  Pos
	Type TypeRef
	Args []Expr
	Name string
}

// ActionDecl is an action declaration.
type ActionDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	Body   *Block
}

// TableKey is one key entry: an expression with a match kind.
type TableKey struct {
	Pos       Pos
	Expr      Expr
	MatchKind string // "exact", "range", "ternary", "lpm", ...
}

// ActionRef names an action in a table's actions list or default.
type ActionRef struct {
	Pos  Pos
	Name string
}

// TableDecl is a match-action table declaration.
type TableDecl struct {
	Pos     Pos
	Name    string
	Keys    []TableKey
	Actions []ActionRef
	HasSize bool
	Size    uint64
	SizePos Pos
	Default *ActionRef
}

// KeyField returns the terminal member name of key i ("fl_pkt_count"
// for meta.fl_pkt_count), or "" when the key is not a member chain.
func (t *TableDecl) KeyField(i int) string {
	switch e := t.Keys[i].Expr.(type) {
	case *Member:
		return e.Sel
	case *Ident:
		return e.Name
	}
	return ""
}

// ---------------------------------------------------------------- stmts

// Stmt is a statement node.
type Stmt interface{ stmtPos() Pos }

// Block is a braced statement list.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// IfStmt is if (Cond) Then [else Else]; Else is a *Block or *IfStmt.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else Stmt
}

// ReturnStmt is a bare return.
type ReturnStmt struct{ Pos Pos }

// AssignStmt is LHS = RHS;
type AssignStmt struct {
	Pos      Pos
	LHS, RHS Expr
}

// ExprStmt is an expression (typically a call) used as a statement.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (s *Block) stmtPos() Pos      { return s.Pos }
func (s *IfStmt) stmtPos() Pos     { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos { return s.Pos }
func (s *AssignStmt) stmtPos() Pos { return s.Pos }
func (s *ExprStmt) stmtPos() Pos   { return s.Pos }

// ---------------------------------------------------------------- exprs

// Expr is an expression node.
type Expr interface{ exprPos() Pos }

// Ident is a bare identifier.
type Ident struct {
	Pos  Pos
	Name string
}

// Member is X.Sel; SelPos positions the selector for diagnostics.
type Member struct {
	Pos    Pos
	X      Expr
	Sel    string
	SelPos Pos
}

// Call is Fun(Args...).
type Call struct {
	Pos  Pos
	Fun  Expr
	Args []Expr
}

// NumberLit is an integer literal (decimal or 0x hex).
type NumberLit struct {
	Pos   Pos
	Value uint64
	Text  string
}

// Binary is X Op Y with Op one of ^ == != < > <= >= && || + - & |.
type Binary struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// Unary is Op X with Op one of ! -.
type Unary struct {
	Pos Pos
	Op  string
	X   Expr
}

// TupleExpr is a braced expression list { a, b, c }.
type TupleExpr struct {
	Pos   Pos
	Elems []Expr
}

// IndexExpr is a bit slice X[Hi:Lo].
type IndexExpr struct {
	Pos    Pos
	X      Expr
	Hi, Lo Expr
}

func (e *Ident) exprPos() Pos     { return e.Pos }
func (e *Member) exprPos() Pos    { return e.Pos }
func (e *Call) exprPos() Pos      { return e.Pos }
func (e *NumberLit) exprPos() Pos { return e.Pos }
func (e *Binary) exprPos() Pos    { return e.Pos }
func (e *Unary) exprPos() Pos     { return e.Pos }
func (e *TupleExpr) exprPos() Pos { return e.Pos }
func (e *IndexExpr) exprPos() Pos { return e.Pos }
