package p4lint

import "iguard/internal/analysis"

// Nameres checks that every reference in the bundle resolves: parser
// transition targets, table action lists and defaults, table key and
// apply-body member paths, top-level package arguments, and the
// table/action/field names used by the control-plane rule files.
var Nameres = &Analyzer{
	Name: "nameres",
	Doc:  "every referenced state, action, table, and field must resolve to a declaration",
	Run:  runNameres,
}

func runNameres(b *Bundle, report func(analysis.Diagnostic)) {
	if b.Program == nil {
		return
	}
	prog := b.Program
	r := newResolver(prog)
	rep := func(pos Pos, format string, args ...any) {
		report(diag(prog.File, pos, "nameres", format, args...))
	}

	// Parser states: every transition target must be a sibling state or
	// the builtin accept/reject.
	for _, pd := range prog.Parsers {
		states := map[string]bool{"accept": true, "reject": true}
		for _, st := range pd.States {
			states[st.Name] = true
		}
		sc := r.newScope(pd.Params, nil)
		for _, st := range pd.States {
			sc.resolveStmts(st.Stmts, rep)
			if st.Trans == nil {
				rep(st.Pos, "state %s of parser %s has no transition", st.Name, pd.Name)
				continue
			}
			if st.Trans.Select != nil {
				sc.resolveExpr(st.Trans.Select, false, rep)
				for _, c := range st.Trans.Cases {
					if !states[c.Target] {
						rep(c.Pos, "transition target %q is not a state of parser %s", c.Target, pd.Name)
					}
				}
			} else if !states[st.Trans.Target] {
				rep(st.Trans.Pos, "transition target %q is not a state of parser %s", st.Trans.Target, pd.Name)
			}
		}
	}

	// Controls: table action lists, defaults, keys, and the apply body.
	for _, cd := range prog.Controls {
		sc := r.newScope(cd.Params, cd)
		for _, tb := range cd.Tables {
			listed := map[string]bool{}
			for _, a := range tb.Actions {
				listed[a.Name] = true
				if a.Name != "NoAction" && cd.Action(a.Name) == nil {
					rep(a.Pos, "table %s references undeclared action %q", tb.Name, a.Name)
				}
			}
			if d := tb.Default; d != nil {
				if d.Name != "NoAction" && cd.Action(d.Name) == nil {
					rep(d.Pos, "table %s default_action %q is not a declared action", tb.Name, d.Name)
				} else if !listed[d.Name] {
					rep(d.Pos, "table %s default_action %q is not in its actions list", tb.Name, d.Name)
				}
			}
			for _, k := range tb.Keys {
				sc.resolveExpr(k.Expr, false, rep)
			}
		}
		if cd.Apply != nil {
			sc.resolveStmts(cd.Apply.Stmts, rep)
		}
		for _, a := range cd.Actions {
			asc := r.newScope(append(append([]Param{}, cd.Params...), a.Params...), cd)
			asc.resolveStmts(a.Body.Stmts, rep)
		}
	}

	// Top-level package instantiations: call arguments name declared
	// parsers/controls; bare identifiers name earlier instantiations.
	decls := map[string]bool{}
	for _, pd := range prog.Parsers {
		decls[pd.Name] = true
	}
	for _, cd := range prog.Controls {
		decls[cd.Name] = true
	}
	insts := map[string]bool{}
	for _, inst := range prog.Insts {
		for _, a := range inst.Args {
			switch a := a.(type) {
			case *Call:
				if id, ok := a.Fun.(*Ident); ok && !decls[id.Name] {
					rep(id.Pos, "%s instantiates undeclared parser/control %q", inst.Type.Name, id.Name)
				}
			case *Ident:
				if !insts[a.Name] && !decls[a.Name] {
					rep(a.Pos, "%s references undeclared instance %q", inst.Type.Name, a.Name)
				}
			}
		}
		insts[inst.Name] = true
	}

	// Rule files: table, action, and field names must resolve against
	// the program.
	for _, lv := range b.levels() {
		for _, e := range lv.entries {
			_, tb := b.findTable(e.Table)
			if tb == nil {
				report(diag(lv.rulesPath, Pos{Line: e.Line, Col: 1}, "nameres", "rule entry targets undeclared table %q", e.Table))
				continue
			}
			found := false
			for _, a := range tb.Actions {
				if a.Name == e.Action {
					found = true
					break
				}
			}
			if !found {
				report(diag(lv.rulesPath, Pos{Line: e.Line, Col: 1}, "nameres", "rule entry action %q is not in table %s's actions list", e.Action, e.Table))
			}
			keyFields := map[string]bool{}
			for i := range tb.Keys {
				keyFields[tb.KeyField(i)] = true
			}
			for _, f := range e.Fields {
				if !keyFields[f.Name] {
					report(diag(lv.rulesPath, Pos{Line: e.Line, Col: 1}, "nameres", "rule entry field %q is not a key of table %s", f.Name, e.Table))
				}
			}
		}
		// Quantiser lines must name manifest fields.
		fields := map[string]bool{}
		for _, f := range lv.manifest.Fields {
			fields[f] = true
		}
		for _, q := range lv.quant {
			if !fields[q.Name] {
				report(diag(lv.quantPath, Pos{Line: q.Line, Col: 1}, "nameres", "quantize line names unknown field %q", q.Name))
			}
		}
	}
}
