package p4lint

import "iguard/internal/analysis"

// Widths checks that declared field bit-widths agree with the rule
// set's quantisation bits and with the FlowKey/feature encoding: every
// whitelist key field is declared at exactly the quantiser's bit width,
// the blacklist exact key spans the 104-bit FlowKey, the digest layout
// is the 13-byte flow id plus 1-bit label, and the packet-count
// threshold fits its register width.
var Widths = &Analyzer{
	Name: "widths",
	Doc:  "declared bit-widths must match the quantiser bits and the FlowKey/feature encoding",
	Run:  runWidths,
}

// flowKeyBits is the canonical 5-tuple width: 32+32+16+16+8.
const flowKeyBits = 104

// digestLayout is the iGuard digest contract (App. B.2): 13-byte flow
// id then a 1-bit label.
var digestLayout = []int{32, 32, 16, 16, 8, 1}

func runWidths(b *Bundle, report func(analysis.Diagnostic)) {
	if b.Program == nil {
		return
	}
	prog := b.Program
	r := newResolver(prog)

	// Whitelist key fields: declared width must equal the quantiser
	// bits of the corresponding feature, from both the manifest and the
	// quant-config artefact.
	for _, lv := range b.levels() {
		ctrl, tb := b.findTable(lv.manifest.Table)
		if tb == nil {
			report(diag(b.ManifestPath, Pos{Line: 1, Col: 1}, "widths", "manifest names table %q which the program does not declare", lv.manifest.Table))
			continue
		}
		sc := r.newScope(ctrl.Params, ctrl)
		declared := map[string]*Field{}
		for i := range tb.Keys {
			if f, ok := sc.fieldOf(tb.Keys[i].Expr); ok {
				declared[f.Name] = f
			}
		}
		mf := lv.manifest
		if len(mf.Fields) != len(mf.Quantizer.Bits) {
			report(diag(b.ManifestPath, Pos{Line: 1, Col: 1}, "widths", "manifest %s table lists %d fields but %d bit widths", lv.name, len(mf.Fields), len(mf.Quantizer.Bits)))
			continue
		}
		for i, name := range mf.Fields {
			f, ok := declared[name]
			if !ok {
				report(diag(prog.File, tb.Pos, "widths", "table %s has no key field %q named by the manifest", tb.Name, name))
				continue
			}
			if f.Type.Width != mf.Quantizer.Bits[i] {
				report(diag(prog.File, f.Pos, "widths", "field %s declared bit<%d> but the %s quantizer uses %d bits", name, f.Type.Width, lv.name, mf.Quantizer.Bits[i]))
			}
		}
		for _, q := range lv.quant {
			for i, name := range mf.Fields {
				if name == q.Name && q.Bits != mf.Quantizer.Bits[i] {
					report(diag(lv.quantPath, Pos{Line: q.Line, Col: 1}, "widths", "quantize line declares %d bits for %s, manifest says %d", q.Bits, q.Name, mf.Quantizer.Bits[i]))
				}
			}
		}
	}

	// Blacklist: the all-exact-key table must match on the full
	// 104-bit FlowKey.
	for _, cd := range prog.Controls {
		sc := r.newScope(cd.Params, cd)
		for _, tb := range cd.Tables {
			if len(tb.Keys) == 0 || !allExact(tb) {
				continue
			}
			total, known := 0, true
			for i := range tb.Keys {
				f, ok := sc.fieldOf(tb.Keys[i].Expr)
				if !ok {
					known = false
					break
				}
				total += f.Type.Width
			}
			if known && total != flowKeyBits {
				report(diag(prog.File, tb.Pos, "widths", "exact-match table %s keys span %d bits; the FlowKey 5-tuple is %d", tb.Name, total, flowKeyBits))
			}
		}

		// Digest layout: any Digest<T> instantiation with a declared
		// struct argument must follow the 13-byte-id + 1-bit-label
		// contract.
		for _, inst := range cd.Insts {
			if inst.Type.Name != "Digest" || len(inst.Type.Args) != 1 {
				continue
			}
			sd, ok := r.types[inst.Type.Args[0].Name]
			if !ok {
				report(diag(prog.File, inst.Pos, "widths", "digest type %q is not declared in the program", inst.Type.Args[0].Name))
				continue
			}
			if !matchesLayout(sd, digestLayout) {
				report(diag(prog.File, sd.Pos, "widths", "digest struct %s does not follow the 13-byte flow id + 1-bit label layout %v", sd.Name, digestLayout))
			}
		}
	}

	// The packet-count threshold must fit the pkt_count register width.
	if f := findMetaField(b, "pkt_count"); f != nil && f.Type.IsBit() && f.Type.Width < 63 {
		if max := uint64(1)<<f.Type.Width - 1; uint64(b.Manifest.PktThreshold) > max {
			report(diag(prog.File, f.Pos, "widths", "pkt_threshold %d does not fit bit<%d> pkt_count (max %d)", b.Manifest.PktThreshold, f.Type.Width, max))
		}
	}
}

// allExact reports whether every key of the table is an exact match.
func allExact(tb *TableDecl) bool {
	for _, k := range tb.Keys {
		if k.MatchKind != "exact" {
			return false
		}
	}
	return true
}

// matchesLayout reports whether the struct's fields are exactly the
// given bit widths in order.
func matchesLayout(sd *StructDecl, layout []int) bool {
	if len(sd.Fields) != len(layout) {
		return false
	}
	for i, f := range sd.Fields {
		if !f.Type.IsBit() || f.Type.Width != layout[i] {
			return false
		}
	}
	return true
}

// findMetaField locates a field of the whitelist tables' metadata
// struct by name, via the FL table's key root.
func findMetaField(b *Bundle, name string) *Field {
	if b.Manifest.FL == nil {
		return nil
	}
	ctrl, tb := b.findTable(b.Manifest.FL.Table)
	if tb == nil || len(tb.Keys) == 0 {
		return nil
	}
	r := newResolver(b.Program)
	sc := r.newScope(ctrl.Params, ctrl)
	root := rootIdent(tb.Keys[0].Expr)
	if root == "" {
		return nil
	}
	t, ok := sc.params[root]
	if !ok {
		return nil
	}
	sd, ok := r.types[t.Name]
	if !ok {
		return nil
	}
	return sd.Field(name)
}

// rootIdent returns the base identifier of a member chain.
func rootIdent(e Expr) string {
	for {
		switch v := e.(type) {
		case *Ident:
			return v.Name
		case *Member:
			e = v.X
		case *IndexExpr:
			e = v.X
		default:
			return ""
		}
	}
}
