package p4lint

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"strings"

	"iguard/internal/analysis"
)

// Analyzer is one artefact check: a named pass over a loaded bundle
// reporting positioned diagnostics.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Bundle, func(analysis.Diagnostic))
}

// Analyzers returns the artefact analyzers in their run order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Nameres, Widths, Tables, QuantizerCheck, Fit}
}

// Lint runs every enabled analyzer over the bundle and returns the
// sorted, deduplicated findings, load-time parse diagnostics included.
// A nil enabled map runs everything.
func Lint(b *Bundle, enabled map[string]bool) []analysis.Diagnostic {
	diags := append([]analysis.Diagnostic(nil), b.parseDiags...)
	for _, a := range Analyzers() {
		if enabled != nil && !enabled[a.Name] {
			continue
		}
		a.Run(b, func(d analysis.Diagnostic) { diags = append(diags, d) })
	}
	analysis.SortDiagnostics(diags)
	return dedup(diags)
}

// dedup removes identical consecutive diagnostics from a sorted slice.
func dedup(diags []analysis.Diagnostic) []analysis.Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			p := out[len(out)-1]
			if p.Pos == d.Pos && p.Analyzer == d.Analyzer && p.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// Execute runs the iguard-p4lint driver over a bundle directory: it
// loads the emitted artefacts, applies the analyzers, and prints
// findings as "file:line:col: [analyzer] message" lines (or -json /
// -sarif). The returned code is the process exit status: 0 clean, 1
// findings, 2 load/usage error.
func Execute(args []string, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		if _, werr := io.WriteString(stderr, "iguard-p4lint: "+err.Error()+"\n"); werr != nil {
			return analysis.ExitError
		}
		return analysis.ExitError
	}
	fs := flag.NewFlagSet("iguard-p4lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	program := fs.String("program", "", "program name inside the bundle directory (default: discovered from the single manifest)")
	only := fs.String("only", "", "comma-separated list of analyzers to run, disabling the rest")
	fs.Usage = func() {
		if _, err := io.WriteString(stderr, "usage: iguard-p4lint [flags] <bundle-dir>\n\nAnalyzers run over the emitted P4 artefact bundle; findings exit 1.\n\n"); err != nil {
			return
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return analysis.ExitError
	}
	if *jsonOut && *sarifOut {
		return fail(errors.New("-json and -sarif are mutually exclusive"))
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return analysis.ExitError
	}

	enabled := map[string]bool{}
	for _, a := range Analyzers() {
		enabled[a.Name] = true
	}
	enabled["parse"] = true
	if *only != "" {
		//iguard:sorted flag reset; order cannot escape
		for name := range enabled {
			enabled[name] = false
		}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := enabled[name]; !ok {
				return fail(fmt.Errorf("-only: no analyzer named %q", name))
			}
			enabled[name] = true
		}
	}

	dir := fs.Arg(0)
	var b *Bundle
	var err error
	if *program != "" {
		b, err = LoadBundleNamed(dir, *program)
	} else {
		b, err = LoadBundle(dir)
	}
	if err != nil {
		return fail(err)
	}
	diags := Lint(b, enabled)
	if !enabled["parse"] {
		kept := diags[:0]
		for _, d := range diags {
			if d.Analyzer != "parse" {
				kept = append(kept, d)
			}
		}
		diags = kept
	}

	var out strings.Builder
	if *sarifOut {
		rules := []analysis.ToolRule{{ID: "parse", Doc: "artefact files must parse"}}
		for _, a := range Analyzers() {
			rules = append(rules, analysis.ToolRule{ID: a.Name, Doc: a.Doc})
		}
		if err := analysis.WriteSARIFTool(&out, dir, "iguard-p4lint", rules, diags); err != nil {
			return fail(err)
		}
	} else if *jsonOut {
		findings := make([]analysis.JSONFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, analysis.JSONFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(&out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(&out, "%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if _, err := io.WriteString(stdout, out.String()); err != nil {
		return fail(err)
	}
	if len(diags) > 0 {
		return analysis.ExitFindings
	}
	return analysis.ExitClean
}
