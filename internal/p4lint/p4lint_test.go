package p4lint

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"iguard/internal/analysis"
	"iguard/internal/features"
	"iguard/internal/p4gen"
	"iguard/internal/rules"
	"iguard/internal/switchsim"
)

// testRules builds a small deterministic compiled whitelist over dim
// features (mirrors the p4gen test fixture).
func testRules(dim, bits, n int) *rules.CompiledRuleSet {
	min := make([]float64, dim)
	max := make([]float64, dim)
	for i := range max {
		max[i] = 100
	}
	rs := &rules.RuleSet{Dim: dim, DefaultLabel: 1}
	for i := 0; i < n; i++ {
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for j := range hi {
			lo[j] = float64(i)
			hi[j] = float64(i + 10)
		}
		rs.Rules = append(rs.Rules, rules.Rule{Box: rules.NewBox(lo, hi), Label: 0})
	}
	return rules.Compile(rs, rules.NewQuantizer(min, max, bits))
}

func testDeployment() p4gen.Deployment {
	return p4gen.Deployment{
		ProgramName:  "iguard_test",
		FLRules:      testRules(features.FLDim, 12, 5),
		PLRules:      testRules(features.PLDim, 12, 3),
		Slots:        4096,
		PktThreshold: 8,
		Timeout:      5 * time.Second,
	}
}

// writeBundle emits the deployment's artefacts into a temp dir.
func writeBundle(t *testing.T, dep p4gen.Deployment) string {
	t.Helper()
	dir := t.TempDir()
	open := func(name string) (io.WriteCloser, error) {
		return os.Create(filepath.Join(dir, name))
	}
	if err := p4gen.Bundle(dep, open); err != nil {
		t.Fatal(err)
	}
	return dir
}

func lintDir(t *testing.T, dir string) []analysis.Diagnostic {
	t.Helper()
	b, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	return Lint(b, nil)
}

func TestCleanBundleNoFindings(t *testing.T) {
	diags := lintDir(t, writeBundle(t, testDeployment()))
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestCleanBundleNoFindingsWithoutPL(t *testing.T) {
	dep := testDeployment()
	dep.PLRules = nil
	diags := lintDir(t, writeBundle(t, dep))
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestCleanBundleRoundTripsCompiled attaches the in-process rule sets
// (the iguard-p4gen -check path), which arms the quantizer analyzer's
// entry-for-entry differential — still zero findings.
func TestCleanBundleRoundTripsCompiled(t *testing.T) {
	dep := testDeployment()
	dir := writeBundle(t, dep)
	b, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	b.FLRules = dep.FLRules
	b.PLRules = dep.PLRules
	for _, d := range Lint(b, nil) {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestFitUsageMatchesSwitchsim is the differential pin the ISSUE names:
// the fit analyzer's stage/TCAM/SRAM totals, recomputed purely from the
// emitted artefacts, must agree with the switchsim deployment model.
func TestFitUsageMatchesSwitchsim(t *testing.T) {
	dep := testDeployment()
	dir := writeBundle(t, dep)
	b, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := b.FitUsage()

	sw := switchsim.New(switchsim.Config{
		Slots:        dep.Slots,
		PktThreshold: dep.PktThreshold,
		Timeout:      dep.Timeout,
		FLRules:      dep.FLRules,
		PLRules:      dep.PLRules,
		// Bundle defaulted the unset capacity; mirror it.
		BlacklistCapacity: b.Manifest.BlacklistCapacity,
	})
	want := sw.Usage()
	if got.Stages != want.Stages {
		t.Errorf("stages = %d, switchsim %d", got.Stages, want.Stages)
	}
	if got.TCAMBits != want.TCAMBits {
		t.Errorf("tcam bits = %d, switchsim %d", got.TCAMBits, want.TCAMBits)
	}
	if got.SRAMBits != want.SRAMBits {
		t.Errorf("sram bits = %d, switchsim %d", got.SRAMBits, want.SRAMBits)
	}
}

// corrupt replaces the first occurrence of old in the named bundle file.
func corrupt(t *testing.T, dir, file, old, new string) {
	t.Helper()
	path := filepath.Join(dir, file)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), old) {
		t.Fatalf("%s does not contain %q", file, old)
	}
	out := strings.Replace(string(data), old, new, 1)
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}

// assertOnly asserts the lint run produced exactly one finding, from
// the named analyzer, whose message contains substr.
func assertOnly(t *testing.T, diags []analysis.Diagnostic, analyzer, substr string) {
	t.Helper()
	if len(diags) != 1 {
		for _, d := range diags {
			t.Logf("finding: %s", d)
		}
		t.Fatalf("findings = %d, want exactly 1", len(diags))
	}
	d := diags[0]
	if d.Analyzer != analyzer {
		t.Errorf("analyzer = %s, want %s (message %q)", d.Analyzer, analyzer, d.Message)
	}
	if !strings.Contains(d.Message, substr) {
		t.Errorf("message %q does not contain %q", d.Message, substr)
	}
}

// Planted-corruption fixtures: each breaks exactly one invariant and
// must produce exactly its analyzer's finding and no others.

func TestCorruptDanglingActionRef(t *testing.T) {
	dir := writeBundle(t, testDeployment())
	corrupt(t, dir, "iguard_test_fl_rules.txt", "whitelist_hit", "no_such_action")
	assertOnly(t, lintDir(t, dir), "nameres", `action "no_such_action" is not in table fl_whitelist's actions list`)
}

func TestCorruptFieldWidth(t *testing.T) {
	dir := writeBundle(t, testDeployment())
	corrupt(t, dir, "iguard_test.p4", "bit<12> fl_pkt_count;", "bit<10> fl_pkt_count;")
	assertOnly(t, lintDir(t, dir), "widths", "declared bit<10> but the fl quantizer uses 12 bits")
}

func TestCorruptUndersizedTable(t *testing.T) {
	dir := writeBundle(t, testDeployment())
	// The first "size = 32;" is pl_whitelist (3 entries); 2 is still a
	// power of two, so only the coverage check fires.
	corrupt(t, dir, "iguard_test.p4", "size = 32;", "size = 2;")
	assertOnly(t, lintDir(t, dir), "tables", "table pl_whitelist size 2 does not cover its 3 rule entries")
}

func TestCorruptNonMonotoneQuantizer(t *testing.T) {
	dir := writeBundle(t, testDeployment())
	corrupt(t, dir, "iguard_test_fl_quant.txt", "bucket=", "bucket=-")
	assertOnly(t, lintDir(t, dir), "quantizer", "bin edges are not monotone")
}

func TestCorruptOverBudgetRuleCount(t *testing.T) {
	dir := writeBundle(t, testDeployment())
	// Inflate the blacklist capacity consistently in both the program
	// and the manifest: the aggregate SRAM demand then exceeds the
	// switch, and the aggregate gate suppresses the per-stage findings.
	corrupt(t, dir, "iguard_test.p4", "size = 8192;", "size = 67108864;")
	corrupt(t, dir, "iguard_test_manifest.json", `"blacklist_capacity": 8192`, `"blacklist_capacity": 67108864`)
	assertOnly(t, lintDir(t, dir), "fit", "SRAM")
}

// TestMalformedRuleLineIsParseFinding pins the load-time diagnostics
// path: broken artefact syntax surfaces as a "parse" finding rather
// than a load error.
func TestMalformedRuleLineIsParseFinding(t *testing.T) {
	dir := writeBundle(t, testDeployment())
	path := filepath.Join(dir, "iguard_test_pl_rules.txt")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("table_add pl_whitelist\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var parse, other []analysis.Diagnostic
	for _, d := range lintDir(t, dir) {
		if d.Analyzer == "parse" {
			parse = append(parse, d)
		} else {
			other = append(other, d)
		}
	}
	if len(parse) != 1 {
		t.Errorf("parse findings = %d, want 1", len(parse))
	}
	// The skipped line must not cascade: the rule-count cross-checks see
	// one fewer entry than the manifest.
	for _, d := range other {
		if !strings.Contains(d.Message, "entries") && !strings.Contains(d.Message, "rules") {
			t.Errorf("unexpected cascade finding: %s", d)
		}
	}
}

// TestFitDetectsCapacityDrift pins the program-vs-manifest cross-checks
// of the fit analyzer.
func TestFitDetectsCapacityDrift(t *testing.T) {
	dir := writeBundle(t, testDeployment())
	corrupt(t, dir, "iguard_test.p4", "(4096) flow_id_lo_0", "(2048) flow_id_lo_0")
	diags := lintDir(t, dir)
	if len(diags) != 1 || diags[0].Analyzer != "fit" {
		t.Fatalf("findings = %v, want one fit finding", diags)
	}
	if !strings.Contains(diags[0].Message, "differing slot counts") {
		t.Errorf("message = %q", diags[0].Message)
	}
}

func TestLintHonoursEnabledSet(t *testing.T) {
	dir := writeBundle(t, testDeployment())
	corrupt(t, dir, "iguard_test_fl_rules.txt", "whitelist_hit", "no_such_action")
	diags := Lint(mustLoad(t, dir), map[string]bool{"fit": true})
	for _, d := range diags {
		t.Errorf("finding from disabled analyzer: %s", d)
	}
}

func mustLoad(t *testing.T, dir string) *Bundle {
	t.Helper()
	b, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestExecuteCLI drives the binary entry point over a clean and a
// corrupted bundle.
func TestExecuteCLI(t *testing.T) {
	dir := writeBundle(t, testDeployment())
	var out, errOut strings.Builder
	if code := Execute([]string{dir}, &out, &errOut); code != analysis.ExitClean {
		t.Fatalf("clean bundle exit = %d, stderr %q", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean bundle output = %q", out.String())
	}

	corrupt(t, dir, "iguard_test_fl_rules.txt", "whitelist_hit", "no_such_action")
	out.Reset()
	if code := Execute([]string{dir}, &out, &errOut); code != analysis.ExitFindings {
		t.Fatalf("corrupted bundle exit = %d", code)
	}
	if !strings.Contains(out.String(), "[nameres]") {
		t.Errorf("output = %q", out.String())
	}

	out.Reset()
	if code := Execute([]string{"-sarif", dir}, &out, &errOut); code != analysis.ExitFindings {
		t.Fatalf("sarif exit = %d", code)
	}
	if !strings.Contains(out.String(), `"iguard-p4lint"`) || !strings.Contains(out.String(), "no_such_action") {
		t.Errorf("sarif output missing tool or finding: %q", out.String())
	}

	out.Reset()
	if code := Execute([]string{"-only", "fit", dir}, &out, &errOut); code != analysis.ExitClean {
		t.Fatalf("-only fit exit = %d, output %q", code, out.String())
	}

	if code := Execute([]string{t.TempDir()}, &out, &errOut); code != analysis.ExitError {
		t.Errorf("empty dir exit = %d, want error", code)
	}
}
