package p4lint

import (
	"iguard/internal/analysis"
	"iguard/internal/switchsim"
)

// Fit checks the deployment against the switch resource model: the
// register slot counts and blacklist capacity declared in the program
// must agree with the manifest, the nibble-encoded TCAM key widths must
// recompute from the quantiser bits, the aggregate usage must fit the
// Tofino-1 budget, and a greedy dependency-ordered stage allocation
// must place every table class within the stage count.
var Fit = &Analyzer{
	Name: "fit",
	Doc:  "the deployment must fit the switch stage/TCAM/SRAM budget under greedy stage allocation",
	Run:  runFit,
}

// nibbleBits is the one-hot width of one 4-bit range-encoding nibble
// (DIRPE), mirroring rules.CompiledRuleSet.RangeKeyBits.
const nibbleBits = 16

// FitUsage computes the deployment's aggregate resource usage from the
// artefacts alone: manifest slot/blacklist capacities plus one
// nibble-encoded TCAM entry per installed rule line. On a clean bundle
// this agrees with switchsim.(*Switch).Usage() by construction — the
// differential tests pin that.
func (b *Bundle) FitUsage() switchsim.Usage {
	var specs []switchsim.TCAMTableSpec
	for _, lv := range b.levels() {
		specs = append(specs, switchsim.TCAMTableSpec{
			Entries: len(lv.entries),
			KeyBits: lv.manifest.RangeKeyBits,
		})
	}
	return switchsim.PipelineUsage(b.Manifest.Slots, b.Manifest.BlacklistCapacity, specs)
}

func runFit(b *Bundle, report func(analysis.Diagnostic)) {
	prog := b.Program

	// Program-vs-manifest capacity cross-checks.
	if prog != nil {
		slots, pos, consistent, found := registerSlots(prog)
		if !consistent {
			report(diag(prog.File, pos, "fit", "flow-state registers declare differing slot counts"))
		} else if found && slots != uint64(b.Manifest.Slots) {
			report(diag(prog.File, pos, "fit", "registers declare %d slots but the manifest deploys %d", slots, b.Manifest.Slots))
		}
		if cap, pos, found := blacklistSize(prog); found && cap != uint64(b.Manifest.BlacklistCapacity) {
			report(diag(prog.File, pos, "fit", "blacklist table size %d but the manifest deploys capacity %d", cap, b.Manifest.BlacklistCapacity))
		}
	}

	// The manifest's nibble-encoded key width must recompute from its
	// quantiser bits.
	for _, lv := range b.levels() {
		want := 0
		for _, bits := range lv.manifest.Quantizer.Bits {
			want += (bits + 3) / 4 * nibbleBits
		}
		if lv.manifest.RangeKeyBits != want {
			report(diag(b.ManifestPath, Pos{Line: 1, Col: 1}, "fit", "%s range_key_bits %d does not recompute from the quantizer bits (want %d)", lv.name, lv.manifest.RangeKeyBits, want))
		}
	}

	budget := switchsim.Tofino1Budget()
	usage := b.FitUsage()
	over := usage.Over(budget)
	for _, o := range over {
		report(diag(b.ManifestPath, Pos{Line: 1, Col: 1}, "fit", "deployment does not fit the switch: %s", o))
	}
	if len(over) > 0 {
		// Aggregate totals already exceed the budget; the per-stage
		// allocation below would only restate the same failure.
		return
	}

	// Greedy dependency-ordered stage allocation: the table classes in
	// pipeline order, each placed from the last stage its predecessor
	// touched. Memory demands split across stages; sALU register groups
	// are atomic (one sALU each).
	classes := fitClasses(b, usage)
	if need := stagesNeeded(classes, budget); need > budget.Stages {
		report(diag(b.ManifestPath, Pos{Line: 1, Col: 1}, "fit", "greedy stage allocation needs %d stages, exceeding the %d-stage budget", need, budget.Stages))
	}
}

// registerSlots scans the Register instantiations of every control and
// returns their common constructor slot count. consistent is false when
// the registers disagree; found is false when the program declares no
// literal-sized register.
func registerSlots(prog *Program) (slots uint64, pos Pos, consistent, found bool) {
	for _, cd := range prog.Controls {
		for _, inst := range cd.Insts {
			if inst.Type.Name != "Register" || len(inst.Args) != 1 {
				continue
			}
			n, ok := inst.Args[0].(*NumberLit)
			if !ok {
				continue
			}
			if !found {
				slots, pos, found = n.Value, inst.Pos, true
			} else if n.Value != slots {
				return 0, inst.Pos, false, true
			}
		}
	}
	return slots, pos, true, found
}

// blacklistSize returns the declared size of the all-exact-key table
// (the blacklist), when the program has exactly one.
func blacklistSize(prog *Program) (uint64, Pos, bool) {
	for _, cd := range prog.Controls {
		for _, tb := range cd.Tables {
			if len(tb.Keys) > 0 && allExact(tb) && tb.HasSize {
				return tb.Size, tb.SizePos, true
			}
		}
	}
	return 0, Pos{}, false
}

// fitClass is one allocatable unit of the pipeline in dependency order.
type fitClass struct {
	name  string
	tcam  int64 // splittable TCAM demand in bits
	sram  int64 // splittable SRAM demand in bits
	salus int   // atomic stateful-ALU groups, one sALU each
}

// fitClasses decomposes the aggregate usage into the dependency-ordered
// table classes: blacklist → flow-state registers → PL whitelist → FL
// whitelist.
func fitClasses(b *Bundle, usage switchsim.Usage) []fitClass {
	const blacklistEntryBits = 104 + 16 // FlowKey + action/port value
	blacklistSRAM := 2 * int64(b.Manifest.BlacklistCapacity) * blacklistEntryBits
	registerSRAM := usage.SRAMBits - blacklistSRAM
	if registerSRAM < 0 {
		registerSRAM = 0
	}
	groups := 0
	if b.Program != nil {
		n := 0
		for _, cd := range b.Program.Controls {
			for _, inst := range cd.Insts {
				if inst.Type.Name == "Register" {
					n++
				}
			}
		}
		groups = (n + 1) / 2 // paired accumulators pack dual-slot sALUs
	}
	classes := []fitClass{
		{name: "blacklist", sram: blacklistSRAM},
		{name: "registers", sram: registerSRAM, salus: groups},
	}
	for _, lv := range b.levels() {
		classes = append(classes, fitClass{
			name: lv.manifest.Table,
			tcam: int64(len(lv.entries)) * int64(lv.manifest.RangeKeyBits),
		})
	}
	return classes
}

// stagesNeeded simulates the greedy allocation and returns the number
// of stages consumed. Per-stage capacity is the budget divided evenly
// across its stages. Each class starts at the last stage its
// predecessor touched (same-stage sharing allowed); demands that cannot
// be placed within 4x the budgeted stages report that sentinel.
func stagesNeeded(classes []fitClass, budget switchsim.Budget) int {
	if budget.Stages <= 0 {
		return 0
	}
	perTCAM := budget.TCAMBits / int64(budget.Stages)
	perSRAM := budget.SRAMBits / int64(budget.Stages)
	perSALU := budget.SALUs / budget.Stages
	limit := 4 * budget.Stages

	tcam := make([]int64, limit)
	sram := make([]int64, limit)
	salu := make([]int, limit)
	for i := 0; i < limit; i++ {
		tcam[i], sram[i], salu[i] = perTCAM, perSRAM, perSALU
	}

	place := func(rem int64, pool []int64, start int) (int, bool) {
		last := start
		for i := start; rem > 0; i++ {
			if i >= limit {
				return limit, false
			}
			take := pool[i]
			if take > rem {
				take = rem
			}
			pool[i] -= take
			rem -= take
			if take > 0 {
				last = i
			}
		}
		return last, true
	}

	start, used := 0, 0
	for _, c := range classes {
		last := start
		for g, i := 0, start; g < c.salus; i++ {
			if i >= limit {
				return limit + 1
			}
			if salu[i] > 0 {
				salu[i]--
				g++
				if i > last {
					last = i
				}
			}
		}
		if l, ok := place(c.sram, sram, start); !ok {
			return limit + 1
		} else if l > last {
			last = l
		}
		if l, ok := place(c.tcam, tcam, start); !ok {
			return limit + 1
		} else if l > last {
			last = l
		}
		if last+1 > used {
			used = last + 1
		}
		start = last
	}
	return used
}
