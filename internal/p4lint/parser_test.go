package p4lint

import (
	"bytes"
	"strings"
	"testing"

	"iguard/internal/p4gen"
)

// parseEmitted parses the program the generator emits for the standard
// test deployment.
func parseEmitted(t *testing.T) *Program {
	t.Helper()
	var buf bytes.Buffer
	if err := p4gen.WriteP4(&buf, testDeployment()); err != nil {
		t.Fatal(err)
	}
	prog, err := ParseProgram("test.p4", buf.String())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestParseEmittedProgramStructure(t *testing.T) {
	prog := parseEmitted(t)
	if len(prog.Includes) != 2 {
		t.Errorf("includes = %d, want 2", len(prog.Includes))
	}
	if len(prog.Headers) != 3 {
		t.Errorf("headers = %d, want 3 (ethernet, ipv4, l4)", len(prog.Headers))
	}
	if len(prog.Structs) != 3 {
		t.Errorf("structs = %d, want 3 (headers_t, flow_meta_t, digest)", len(prog.Structs))
	}
	if len(prog.Parsers) != 2 {
		t.Errorf("parsers = %d, want 2", len(prog.Parsers))
	}
	if len(prog.Controls) != 4 {
		t.Errorf("controls = %d, want 4", len(prog.Controls))
	}
	if len(prog.Insts) != 2 {
		t.Errorf("top-level instantiations = %d, want 2 (Pipeline, Switch)", len(prog.Insts))
	}

	var ingress *ControlDecl
	for _, c := range prog.Controls {
		if c.Name == "Ingress" {
			ingress = c
		}
	}
	if ingress == nil {
		t.Fatal("no Ingress control")
	}
	if n := len(ingress.Insts); n != 17 {
		t.Errorf("Ingress instantiations = %d, want 17 (15 registers + 2 hashes)", n)
	}
	fl := ingress.Table("fl_whitelist")
	if fl == nil {
		t.Fatal("no fl_whitelist table")
	}
	if len(fl.Keys) != 13 {
		t.Errorf("fl_whitelist keys = %d, want 13", len(fl.Keys))
	}
	if fl.Keys[0].MatchKind != "range" {
		t.Errorf("fl key match kind = %q, want range", fl.Keys[0].MatchKind)
	}
	if !fl.HasSize || fl.Size != 32 {
		t.Errorf("fl_whitelist size = %d (has %v), want 32", fl.Size, fl.HasSize)
	}
	if fl.Default == nil || fl.Default.Name != "whitelist_miss" {
		t.Errorf("fl default = %+v", fl.Default)
	}
	bl := ingress.Table("blacklist")
	if bl == nil || len(bl.Keys) != 5 || bl.Keys[0].MatchKind != "exact" {
		t.Fatalf("blacklist table = %+v", bl)
	}
	if bl.Size != 8192 {
		t.Errorf("blacklist size = %d, want 8192", bl.Size)
	}

	meta := prog.Structs[1]
	if meta.Name != "flow_meta_t" {
		t.Fatalf("second struct = %s", meta.Name)
	}
	f := meta.Field("fl_pkt_count")
	if f == nil || !f.Type.IsBit() || f.Type.Width != 12 {
		t.Errorf("fl_pkt_count field = %+v", f)
	}
	if f != nil && f.Pos.Line == 0 {
		t.Error("field position not recorded")
	}
}

func TestParseRegisterGenerics(t *testing.T) {
	src := `
control C(inout bit<8> x) {
    Register<bit<32>, bit<32>>(1024) r;
    Hash<bit<32>>(HashAlgorithm_t.CRC32) h;
    apply { }
}
`
	prog, err := ParseProgram("t.p4", src)
	if err != nil {
		t.Fatal(err)
	}
	insts := prog.Controls[0].Insts
	if len(insts) != 2 {
		t.Fatalf("instantiations = %d", len(insts))
	}
	r := insts[0]
	if r.Type.Name != "Register" || len(r.Type.Args) != 2 || !r.Type.Args[0].IsBit() || r.Type.Args[0].Width != 32 {
		t.Errorf("register type = %+v", r.Type)
	}
	n, ok := r.Args[0].(*NumberLit)
	if !ok || n.Value != 1024 {
		t.Errorf("register ctor arg = %+v", r.Args[0])
	}
}

func TestParseSelectTransition(t *testing.T) {
	src := `
parser P(packet_in pkt, out H hdr) {
    state start {
        transition select(hdr.ether_type) {
            0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        transition accept;
    }
}
`
	prog, err := ParseProgram("t.p4", src)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Parsers[0].States[0]
	if st.Trans == nil || st.Trans.Select == nil {
		t.Fatal("select transition not parsed")
	}
	if len(st.Trans.Cases) != 2 {
		t.Fatalf("cases = %d", len(st.Trans.Cases))
	}
	if st.Trans.Cases[0].Target != "parse_ipv4" || st.Trans.Cases[1].Target != "accept" {
		t.Errorf("case targets = %+v", st.Trans.Cases)
	}
}

func TestParseBitSliceAndOps(t *testing.T) {
	src := `
control C(inout bit<8> x) {
    apply {
        if (x >= 3 && x != 7 || !(x == 0)) {
            x = x + 1;
        }
        x = x[3:0] ^ 2;
    }
}
`
	if _, err := ParseProgram("t.p4", src); err != nil {
		t.Fatalf("operators failed to parse: %v", err)
	}
}

func TestParseErrorsArePositioned(t *testing.T) {
	cases := []struct {
		src  string
		line int
	}{
		{"header h {\n  bit<8 x;\n}\n", 2},
		{"control C() {\n  table t {\n    size = ;\n  }\n}\n", 3},
		{"parser P() {\n  state s {\n    transition 7;\n  }\n}\n", 3},
	}
	for _, c := range cases {
		_, err := ParseProgram("t.p4", c.src)
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		se, ok := err.(*errSyntax)
		if !ok {
			t.Errorf("error type %T for %q", err, c.src)
			continue
		}
		if se.pos.Line != c.line {
			t.Errorf("error line = %d, want %d (%v)", se.pos.Line, c.line, err)
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := lexAll("a // line\n/* block\nstill */ b")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		names = append(names, tk.text)
	}
	if strings.Join(names, ",") != "a,b" {
		t.Errorf("tokens = %v", names)
	}
}

func TestLexerNoShiftTokens(t *testing.T) {
	// The lexer must emit two single '>' tokens so nested generic
	// closers parse: Register<bit<32>, bit<32>>(...).
	toks, err := lexAll(">>")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].kind != tokGt || toks[1].kind != tokGt {
		t.Errorf("tokens = %+v", toks)
	}
}
