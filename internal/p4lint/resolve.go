package p4lint

// resolver answers symbol and member-path questions about one parsed
// program. Resolution is deliberately partial: paths rooted at
// parameters whose types are not declared in the file (the TNA
// intrinsic metadata structs, packet_in/packet_out) are opaque and
// never produce findings — only the program's own headers, structs,
// tables, actions, and instances are checked strictly.
type resolver struct {
	prog *Program
	// types indexes header and struct declarations by name.
	types map[string]*StructDecl
}

func newResolver(prog *Program) *resolver {
	r := &resolver{prog: prog, types: map[string]*StructDecl{}}
	for _, h := range prog.Headers {
		r.types[h.Name] = h
	}
	for _, s := range prog.Structs {
		r.types[s.Name] = s
	}
	return r
}

// refKind classifies what an expression resolves to.
type refKind int

const (
	refOpaque   refKind = iota // rooted at an undeclared type: not checkable
	refStruct                  // a value of a declared header/struct type
	refBits                    // a bit<N> field value
	refTable                   // a declared table
	refAction                  // a declared action
	refInstance                // a declared extern instance (Register, Hash, Digest)
	refInvalid                 // resolution failed; a finding was reported
)

// ref is the result of resolving an expression in a scope.
type ref struct {
	kind  refKind
	typ   *StructDecl // for refStruct
	width int         // for refBits
	field *Field      // for refBits/refStruct when reached via a field
	inst  *Instantiation
}

// scope is the name environment of one parser or control body.
type scope struct {
	r      *resolver
	ctrl   *ControlDecl // nil inside parsers
	params map[string]TypeRef
}

// newScope builds the scope of a parser or control.
func (r *resolver) newScope(params []Param, ctrl *ControlDecl) *scope {
	s := &scope{r: r, ctrl: ctrl, params: map[string]TypeRef{}}
	for _, p := range params {
		s.params[p.Name] = p.Type
	}
	return s
}

// externMethods whitelists the methods of the extern types the emitted
// program instantiates. Instances of unknown extern types accept any
// method.
var externMethods = map[string]map[string]bool{
	"Register": {"read": true, "write": true, "execute": true},
	"Hash":     {"get": true},
	"Digest":   {"pack": true},
	"Counter":  {"count": true},
	"Meter":    {"execute": true},
}

// headerMethods are the builtin methods available on header values.
var headerMethods = map[string]bool{"isValid": true, "setValid": true, "setInvalid": true}

// resolveExpr resolves an expression, reporting findings for broken
// member paths through report. asCallee marks the expression being
// used as the function of a call, which legalises method selectors.
func (s *scope) resolveExpr(e Expr, asCallee bool, report func(Pos, string, ...any)) ref {
	switch e := e.(type) {
	case *Ident:
		if t, ok := s.params[e.Name]; ok {
			if d, ok := s.r.types[t.Name]; ok {
				return ref{kind: refStruct, typ: d}
			}
			if t.IsBit() {
				return ref{kind: refBits, width: t.Width}
			}
			return ref{kind: refOpaque}
		}
		if s.ctrl != nil {
			if t := s.ctrl.Table(e.Name); t != nil {
				return ref{kind: refTable}
			}
			if a := s.ctrl.Action(e.Name); a != nil {
				return ref{kind: refAction}
			}
			for _, inst := range s.ctrl.Insts {
				if inst.Name == e.Name {
					return ref{kind: refInstance, inst: inst}
				}
			}
		}
		// Undeclared bare identifier: an extern constant or enum from
		// an included architecture file — not checkable.
		return ref{kind: refOpaque}
	case *Member:
		base := s.resolveExpr(e.X, false, report)
		switch base.kind {
		case refInvalid, refOpaque:
			return base
		case refStruct:
			f := base.typ.Field(e.Sel)
			if f == nil {
				if asCallee && base.typ.Kind == "header" && headerMethods[e.Sel] {
					return ref{kind: refOpaque}
				}
				report(e.SelPos, "%s %s has no field %q", base.typ.Kind, base.typ.Name, e.Sel)
				return ref{kind: refInvalid}
			}
			if d, ok := s.r.types[f.Type.Name]; ok {
				return ref{kind: refStruct, typ: d, field: f}
			}
			if f.Type.IsBit() {
				return ref{kind: refBits, width: f.Type.Width, field: f}
			}
			return ref{kind: refOpaque}
		case refTable:
			if asCallee && e.Sel == "apply" {
				return ref{kind: refOpaque}
			}
			report(e.SelPos, "invalid table member %q (only apply() is valid)", e.Sel)
			return ref{kind: refInvalid}
		case refInstance:
			methods, known := externMethods[base.inst.Type.Name]
			if !known || (asCallee && methods[e.Sel]) {
				return ref{kind: refOpaque}
			}
			report(e.SelPos, "extern %s has no method %q", base.inst.Type.Name, e.Sel)
			return ref{kind: refInvalid}
		case refBits:
			report(e.SelPos, "bit value has no field %q", e.Sel)
			return ref{kind: refInvalid}
		case refAction:
			report(e.SelPos, "action has no member %q", e.Sel)
			return ref{kind: refInvalid}
		}
		return ref{kind: refOpaque}
	case *Call:
		s.resolveExpr(e.Fun, true, report)
		for _, a := range e.Args {
			s.resolveExpr(a, false, report)
		}
		return ref{kind: refOpaque}
	case *IndexExpr:
		s.resolveExpr(e.X, false, report)
		return ref{kind: refOpaque}
	case *Binary:
		s.resolveExpr(e.X, false, report)
		s.resolveExpr(e.Y, false, report)
		return ref{kind: refOpaque}
	case *Unary:
		return s.resolveExpr(e.X, false, report)
	case *TupleExpr:
		for _, el := range e.Elems {
			s.resolveExpr(el, false, report)
		}
		return ref{kind: refOpaque}
	case *NumberLit:
		return ref{kind: refOpaque}
	}
	return ref{kind: refOpaque}
}

// resolveStmts walks a statement list resolving every expression.
func (s *scope) resolveStmts(stmts []Stmt, report func(Pos, string, ...any)) {
	for _, st := range stmts {
		switch st := st.(type) {
		case *Block:
			s.resolveStmts(st.Stmts, report)
		case *IfStmt:
			s.resolveExpr(st.Cond, false, report)
			s.resolveStmts(st.Then.Stmts, report)
			if st.Else != nil {
				s.resolveStmts([]Stmt{st.Else}, report)
			}
		case *AssignStmt:
			s.resolveExpr(st.LHS, false, report)
			s.resolveExpr(st.RHS, false, report)
		case *ExprStmt:
			s.resolveExpr(st.X, false, report)
		case *ReturnStmt:
		}
	}
}

// fieldOf resolves a table-key member chain to its terminal bit field
// within the control's scope. ok is false (without reporting) when the
// path is opaque or broken — nameres reports breakage separately.
func (s *scope) fieldOf(e Expr) (*Field, bool) {
	got := s.resolveExpr(e, false, func(Pos, string, ...any) {})
	if got.kind == refBits && got.field != nil {
		return got.field, true
	}
	return nil, false
}
