package experiments

import (
	"fmt"
	"sync"

	"iguard/internal/autoencoder"
	"iguard/internal/core"
	"iguard/internal/features"
	"iguard/internal/iforest"
	"iguard/internal/mathx"
	"iguard/internal/metrics"
	"iguard/internal/rules"
	"iguard/internal/traffic"
)

// LabConfig bundles every knob of the experiment pipeline.
type LabConfig struct {
	Data DataConfig

	// Autoencoder ensemble (the guide).
	AEEpochs      int
	AEBatch       int
	AELR          float64
	CalibQuantile float64

	// iGuard forest.
	GuardOpts core.Options

	// Conventional iForest: the CPU-scale baseline (Fig. 5) and the
	// switch-scale version compiled to rules (Fig. 6 / Table 1).
	CPUIForestOpts    iforest.Options
	SwitchIForestOpts iforest.Options
	Contamination     float64

	// PL iForest for early packets (§3.3.1).
	PLIForestOpts iforest.Options

	// Rule compilation.
	QuantBits int
	MaxCells  int

	// Switch deployment.
	SwitchSlots  int
	BlacklistCap int

	// GridN lists the per-flow packet-count thresholds the best-version
	// grid search explores (§4.2.1 footnote 12 grid-searches n and δ;
	// δ stays at Data.Timeout). Empty means no search: Data.PktThreshold
	// is used as-is.
	GridN []int
	// GridK lists the node-augmentation counts k the guided-forest grid
	// search explores (§4.1 footnote 10), selected per attack by
	// validation macro F1. Empty means GuardOpts.Augment as-is.
	GridK []int
	// GridT lists the calibration quantiles for the ensemble RMSE
	// thresholds T_u (footnote 10 grid-searches T). Selected jointly
	// with k by validation macro F1. Empty means CalibQuantile as-is.
	GridT []float64

	// Parallelism bounds the worker pool for ensemble-member and
	// per-tree training (0 = GOMAXPROCS). Trained artefacts are
	// identical for every value.
	Parallelism int
}

// DefaultLabConfig returns the configuration cmd/iguard-eval runs with.
func DefaultLabConfig() LabConfig {
	guard := core.DefaultOptions()
	guard.Trees = 5
	guard.SubSample = 192
	// The k grid search (§4.1 footnote 10) lands on no node augmentation
	// during the split search — the entropy signal then follows the
	// guide's labels on real samples — with distillation augmentation
	// kept on to label data-free leaves (see the ablation bench).
	guard.Augment = 0
	guard.DistillAugment = 64

	cpuIF := iforest.DefaultOptions()
	cpuIF.Trees = 100
	cpuIF.SubSample = 256

	swIF := iforest.DefaultOptions()
	swIF.Trees = 4
	swIF.SubSample = 64

	plIF := iforest.DefaultOptions()
	plIF.Trees = 3
	plIF.SubSample = 64

	return LabConfig{
		Data:              DefaultDataConfig(),
		AEEpochs:          40,
		AEBatch:           32,
		AELR:              0.005,
		CalibQuantile:     0.97,
		GuardOpts:         guard,
		CPUIForestOpts:    cpuIF,
		SwitchIForestOpts: swIF,
		Contamination:     0.2,
		PLIForestOpts:     plIF,
		QuantBits:         20,
		MaxCells:          200000,
		SwitchSlots:       8192,
		BlacklistCap:      8192,
		GridN:             []int{2, 4, 8, 16},
		GridK:             []int{0, 4, 8},
		GridT:             []float64{0.90, 0.97},
	}
}

// QuickLabConfig returns a down-scaled configuration for tests and
// benchmarks (same structure, smaller everything).
func QuickLabConfig() LabConfig {
	cfg := DefaultLabConfig()
	cfg.Data.BenignTrainFlows = 180
	cfg.Data.BenignTestFlows = 90
	cfg.AEEpochs = 30
	cfg.GuardOpts.Trees = 3
	cfg.GuardOpts.SubSample = 96
	cfg.GuardOpts.Augment = 0
	cfg.GuardOpts.DistillAugment = 32
	cfg.CPUIForestOpts.Trees = 40
	cfg.CPUIForestOpts.SubSample = 128
	cfg.SwitchIForestOpts.Trees = 3
	cfg.SwitchIForestOpts.SubSample = 48
	cfg.PLIForestOpts.Trees = 2
	cfg.PLIForestOpts.SubSample = 48
	cfg.SwitchSlots = 2048
	cfg.GridN = []int{2, 8}
	cfg.GridK = []int{0, 8}
	cfg.GridT = []float64{0.90, 0.97}
	return cfg
}

// AttackContext caches every artefact built for one attack: the
// dataset, the trained guide ensemble, the iGuard forest, the baseline
// forests, and the compiled rule sets.
type AttackContext struct {
	Data *Dataset

	Ensemble *autoencoder.Ensemble
	Guard    *core.Forest

	CPUIForest    *iforest.Forest
	SwitchIForest *iforest.Forest
	PLIForest     *iforest.Forest

	// GuardRules / IFRules are the float-domain rule sets; the Compiled
	// variants are quantised to the raw (switch) feature domain.
	GuardRules    *rules.RuleSet
	IFRules       *rules.RuleSet
	PLRules       *rules.RuleSet
	GuardCompiled *rules.CompiledRuleSet
	IFCompiled    *rules.CompiledRuleSet
	PLCompiled    *rules.CompiledRuleSet
}

// Lab builds and caches AttackContexts.
type Lab struct {
	Cfg LabConfig

	mu    sync.Mutex
	cache map[string]*AttackContext
}

// NewLab returns an empty lab.
func NewLab(cfg LabConfig) *Lab {
	return &Lab{Cfg: cfg, cache: map[string]*AttackContext{}}
}

// Context returns the (cached) artefacts for one attack at the default
// packet-count threshold.
func (l *Lab) Context(attack traffic.AttackName) (*AttackContext, error) {
	return l.ContextN(attack, l.Cfg.Data.PktThreshold)
}

// cpuFlowCap is the effective "no truncation" threshold of the CPU
// experiments: flows emit at timeout or end of trace with their full
// statistics, matching the paper's §4.1 setting where all Magnifier
// features are available.
const cpuFlowCap = 1 << 20

// CPUContext returns the artefacts for the CPU-side experiments
// (Fig. 2/5/10): full-flow features and a larger benign corpus (flow
// counts triple because full flows yield one sample each, while the
// switch pipeline emits several truncated windows per flow).
func (l *Lab) CPUContext(attack traffic.AttackName) (*AttackContext, error) {
	key := fmt.Sprintf("%s/cpu", attack)
	l.mu.Lock()
	if ctx, ok := l.cache[key]; ok {
		l.mu.Unlock()
		return ctx, nil
	}
	l.mu.Unlock()
	cpu := l.Cfg
	cpu.Data.BenignTrainFlows *= 3
	cpu.Data.BenignTestFlows *= 2
	ctx, err := l.buildWith(cpu, attack, cpuFlowCap)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.cache[key] = ctx
	l.mu.Unlock()
	return ctx, nil
}

// ContextN returns the artefacts for one attack with the flow pipeline
// truncated at n packets — the unit the best-version grid search
// iterates over. Features, models and rules are all rebuilt for each n
// because flow features depend on the truncation point.
func (l *Lab) ContextN(attack traffic.AttackName, n int) (*AttackContext, error) {
	key := fmt.Sprintf("%s/n=%d", attack, n)
	l.mu.Lock()
	if ctx, ok := l.cache[key]; ok {
		l.mu.Unlock()
		return ctx, nil
	}
	l.mu.Unlock()
	ctx, err := l.build(attack, n)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.cache[key] = ctx
	l.mu.Unlock()
	return ctx, nil
}

// build constructs everything for one attack at threshold n.
func (l *Lab) build(attack traffic.AttackName, n int) (*AttackContext, error) {
	return l.buildWith(l.Cfg, attack, n)
}

// buildWith is build with an explicit configuration (used by the CPU
// contexts, which enlarge the benign corpus).
func (l *Lab) buildWith(cfg LabConfig, attack traffic.AttackName, n int) (*AttackContext, error) {
	cfg.Data.PktThreshold = n
	ds, err := BuildDataset(attack, cfg.Data)
	if err != nil {
		return nil, err
	}
	ctx := &AttackContext{Data: ds}

	// 1. Train the guide: the Magnifier-style ensemble (App. A selects
	// Magnifier; we pair it with a symmetric AE as the second member).
	r := mathx.NewRand(cfg.Data.Seed + 1000)
	ctx.Ensemble = autoencoder.NewEnsemble(
		autoencoder.NewMagnifier(r, features.FLDim),
		autoencoder.NewSymmetric(r, features.FLDim),
	)
	// Magnifier is the stronger member (App. A); weight it so its solo
	// vote carries the ensemble.
	ctx.Ensemble.Members[0].Weight = 0.6
	ctx.Ensemble.Members[1].Weight = 0.4
	ctx.Ensemble.Fit(ds.TrainX, autoencoder.TrainOptions{
		Epochs: cfg.AEEpochs, BatchSize: cfg.AEBatch, LR: cfg.AELR,
		Rand: mathx.NewRand(cfg.Data.Seed + 1001), Parallelism: cfg.Parallelism,
	})
	benignVal := benignOnly(ds.ValX, ds.ValY)

	// 2. iGuard: guided training + distillation. Trees grow over the
	// sub-sample's data bounds (footnote-7 augmentation stays
	// data-informed) and are boundary-peeled out to the rule universe so
	// off-range feature space gets its own distillation-labelled leaves.
	// (k, T) is grid-searched per attack on validation macro F1
	// (footnote 10): k sets the probe budget, the calibration quantile
	// sets the ensemble thresholds T_u and with them how fat the guide's
	// malicious region is.
	guardOpts := cfg.GuardOpts
	guardOpts.Seed = cfg.Data.Seed + 2000
	guardOpts.Parallelism = cfg.Parallelism
	guardOpts.Bounds = rules.FullBox(features.FLDim, universeLo, universeHi)
	kGrid := cfg.GridK
	if len(kGrid) == 0 {
		kGrid = []int{guardOpts.Augment}
	}
	tGrid := cfg.GridT
	if len(tGrid) == 0 {
		tGrid = []float64{cfg.CalibQuantile}
	}
	bestF1 := -1.0
	bestQ := tGrid[0]
	for _, q := range tGrid {
		ctx.Ensemble.Calibrate(benignVal, q)
		for _, k := range kGrid {
			opts := guardOpts
			opts.Augment = k
			candidate, err := core.Fit(ds.TrainX, ctx.Ensemble, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: guard fit (k=%d, q=%v): %w", k, q, err)
			}
			preds := make([]int, len(ds.ValX))
			for i, x := range ds.ValX {
				preds[i] = candidate.Predict(x)
			}
			f1, err := metrics.MacroF1Score(preds, ds.ValY)
			if err != nil {
				return nil, fmt.Errorf("experiments: validation F1 (k=%d, q=%v): %w", k, q, err)
			}
			if f1 > bestF1 {
				bestF1 = f1
				bestQ = q
				ctx.Guard = candidate
			}
		}
	}
	// Leave the ensemble calibrated at the winning quantile so guide
	// predictions and leaf labels stay consistent with the forest.
	ctx.Ensemble.Calibrate(benignVal, bestQ)

	// 3. Conventional iForests.
	cpuOpts := cfg.CPUIForestOpts
	cpuOpts.Seed = cfg.Data.Seed + 3000
	cpuOpts.Parallelism = cfg.Parallelism
	ctx.CPUIForest = iforest.Fit(ds.TrainX, cpuOpts)
	ctx.CPUIForest.CalibrateThreshold(ds.ValX, contaminationOf(ds.ValY, cfg.Contamination))

	swOpts := cfg.SwitchIForestOpts
	swOpts.Seed = cfg.Data.Seed + 3001
	swOpts.Parallelism = cfg.Parallelism
	ctx.SwitchIForest = iforest.Fit(ds.TrainX, swOpts)
	ctx.SwitchIForest.CalibrateThreshold(ds.ValX, contaminationOf(ds.ValY, cfg.Contamination))

	plOpts := cfg.PLIForestOpts
	plOpts.Seed = cfg.Data.Seed + 3002
	plOpts.Parallelism = cfg.Parallelism
	ctx.PLIForest = iforest.Fit(ds.PLTrainX, plOpts)
	// PL classification is deliberately conservative: flag only the most
	// extreme early packets (high threshold quantile).
	ctx.PLIForest.CalibrateThreshold(ds.PLTrainX, 0.02)

	// 4. Rule generation and compilation.
	if err := l.buildRules(ctx); err != nil {
		return nil, err
	}
	return ctx, nil
}

// benignOnly filters X down to label-0 rows.
func benignOnly(x [][]float64, y []int) [][]float64 {
	var out [][]float64
	for i, row := range x {
		if y[i] == 0 {
			out = append(out, row)
		}
	}
	return out
}

// contaminationOf returns the true malicious fraction of the validation
// labels, falling back to the configured default when degenerate — the
// paper grid searches contamination; the oracle fraction is the value
// that search converges to.
func contaminationOf(y []int, fallback float64) float64 {
	if len(y) == 0 {
		return fallback
	}
	n := 0
	for _, v := range y {
		n += v
	}
	f := float64(n) / float64(len(y))
	if f <= 0 || f >= 1 {
		return fallback
	}
	return f
}
