// Package experiments assembles datasets and runs every experiment of
// the iGuard evaluation: Fig. 2/7 (path-length overlap), Fig. 5/8 (CPU
// detection), Fig. 6/9 (switch detection), Table 1 (switch resources),
// Tables 2/3 (adversarial attacks), Fig. 10 (guidance candidates), the
// §3.2.3 consistency check, and the App. B throughput/latency and
// control-plane overhead studies. Each runner returns a typed result
// with a text renderer that prints the same rows/series the paper
// reports.
package experiments

import (
	"time"

	"iguard/internal/features"
	"iguard/internal/mathx"
	"iguard/internal/traffic"
)

// DataConfig sizes one attack's dataset, following the paper's
// protocol: benign split into train/test (HorusEye division), train
// further split 4:1 into train/validation, and 20% attack traffic added
// to validation and test one attack at a time.
type DataConfig struct {
	// Seed drives every random choice in the build.
	Seed int64
	// BenignTrainFlows and BenignTestFlows size the benign traces.
	BenignTrainFlows int
	BenignTestFlows  int
	// PktThreshold is n and Timeout is δ for flow truncation (§3.3.1).
	PktThreshold int
	Timeout      time.Duration
	// AttackFraction is the attack share added to validation and test
	// sets (0.2 in the paper).
	AttackFraction float64
}

// DefaultDataConfig returns the sizes used by cmd/iguard-eval (large
// enough for stable metrics, small enough to run everywhere).
func DefaultDataConfig() DataConfig {
	return DataConfig{
		Seed:             1,
		BenignTrainFlows: 500,
		BenignTestFlows:  250,
		PktThreshold:     16,
		Timeout:          5 * time.Second,
		AttackFraction:   0.2,
	}
}

// Dataset is the feature-level view of one attack's experiment data.
// All X matrices are min-max scaled with the scaler fitted on TrainX.
type Dataset struct {
	Attack traffic.AttackName

	// TrainX is benign-only training data (what every model fits on).
	TrainX [][]float64
	// ValX/ValY hold the benign validation split plus 20% attack.
	ValX [][]float64
	ValY []int
	// TestX/TestY hold benign test plus 20% attack.
	TestX [][]float64
	TestY []int

	// PLTrainX holds PL feature vectors of benign early packets for the
	// auxiliary PL iForest (§3.3.1); PLPrep scales them.
	PLTrainX [][]float64

	// Prep and PLPrep are the (log + min-max) feature pipelines fitted
	// on the benign training split.
	Prep   *features.Preprocess
	PLPrep *features.Preprocess

	// Traces for switch experiments: the benign validation/test traces
	// merged with attack traces, plus the raw training trace. The
	// validation trace drives the paper's best-version (n, δ) selection;
	// the test trace produces the reported numbers.
	TrainTrace *traffic.Trace
	ValTrace   *traffic.Trace
	TestTrace  *traffic.Trace

	Cfg DataConfig
}

// flSamplesOf extracts FL vectors (and PL vectors of flow-first packets)
// from a trace under the dataset's truncation parameters.
func flSamplesOf(tr *traffic.Trace, cfg DataConfig) (fl [][]float64, pl [][]float64, mal []int) {
	samples := features.ExtractAll(tr.Packets, cfg.PktThreshold, cfg.Timeout)
	for _, s := range samples {
		fl = append(fl, s.FL)
		pl = append(pl, s.FirstPL)
		label := 0
		if tr.IsMalicious(s.Key) {
			label = 1
		}
		mal = append(mal, label)
	}
	return fl, pl, mal
}

// BuildDataset assembles the full experiment dataset for one attack.
// The attack trace is sized so its samples are AttackFraction of each
// evaluation split.
func BuildDataset(attack traffic.AttackName, cfg DataConfig) (*Dataset, error) {
	r := mathx.NewRand(cfg.Seed)
	ds := &Dataset{Attack: attack, Cfg: cfg}

	benignTrain := traffic.GenerateBenign(cfg.Seed+100, cfg.BenignTrainFlows)
	benignTest := traffic.GenerateBenign(cfg.Seed+200, cfg.BenignTestFlows)

	trainFL, trainPL, _ := flSamplesOf(benignTrain, cfg)
	testFL, _, _ := flSamplesOf(benignTest, cfg)

	// 4:1 train/validation split of the benign training samples.
	idx := mathx.SampleWithoutReplacement(r, len(trainFL), len(trainFL))
	cut := len(idx) * 4 / 5
	var trX, valBenign [][]float64
	var plTr [][]float64
	for i, j := range idx {
		if i < cut {
			trX = append(trX, trainFL[j])
			plTr = append(plTr, trainPL[j])
		} else {
			valBenign = append(valBenign, trainFL[j])
		}
	}

	// Attack samples for validation and test: generate enough flows that
	// each split gets its ~20% share.
	frac := cfg.AttackFraction
	wantVal := int(frac * float64(len(valBenign)) / (1 - frac))
	wantTest := int(frac * float64(len(testFL)) / (1 - frac))
	if wantVal < 4 {
		wantVal = 4
	}
	if wantTest < 8 {
		wantTest = 8
	}
	attackVal, err := traffic.GenerateAttack(attack, cfg.Seed+300, wantVal)
	if err != nil {
		return nil, err
	}
	attackTest, err := traffic.GenerateAttack(attack, cfg.Seed+400, wantTest)
	if err != nil {
		return nil, err
	}
	valAttackFL, _, _ := flSamplesOf(attackVal, cfg)
	testAttackFL, _, _ := flSamplesOf(attackTest, cfg)
	valAttackFL = capSamples(valAttackFL, wantVal)
	testAttackFL = capSamples(testAttackFL, wantTest)

	// Scale everything with the train-fitted pipelines.
	ds.Prep = features.NewFLPreprocess()
	ds.TrainX = ds.Prep.FitTransform(trX)
	ds.PLPrep = features.NewPLPreprocess()
	ds.PLTrainX = ds.PLPrep.FitTransform(plTr)

	for _, x := range valBenign {
		ds.ValX = append(ds.ValX, ds.Prep.Transform(x))
		ds.ValY = append(ds.ValY, 0)
	}
	for _, x := range valAttackFL {
		ds.ValX = append(ds.ValX, ds.Prep.Transform(x))
		ds.ValY = append(ds.ValY, 1)
	}
	for _, x := range testFL {
		ds.TestX = append(ds.TestX, ds.Prep.Transform(x))
		ds.TestY = append(ds.TestY, 0)
	}
	for _, x := range testAttackFL {
		ds.TestX = append(ds.TestX, ds.Prep.Transform(x))
		ds.TestY = append(ds.TestY, 1)
	}

	ds.TrainTrace = benignTrain
	ds.TestTrace = benignTest.Merge(attackTest)
	benignVal := traffic.GenerateBenign(cfg.Seed+150, cfg.BenignTestFlows/2+1)
	ds.ValTrace = benignVal.Merge(attackVal)
	return ds, nil
}

// capSamples bounds a sample list (attack generators can overshoot for
// scan-type attacks that spawn many flows).
func capSamples(xs [][]float64, n int) [][]float64 {
	if len(xs) > n {
		return xs[:n]
	}
	return xs
}

// AttackShare returns the malicious fraction of the test set (should
// sit near cfg.AttackFraction).
func (ds *Dataset) AttackShare() float64 {
	if len(ds.TestY) == 0 {
		return 0
	}
	n := 0
	for _, y := range ds.TestY {
		n += y
	}
	return float64(n) / float64(len(ds.TestY))
}
