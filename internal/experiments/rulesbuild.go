package experiments

import (
	"fmt"

	"iguard/internal/features"
	"iguard/internal/rules"
)

// Model-space universe for rule generation: training data scales to
// [0, 1], so this box comfortably contains every tree's bounds while
// leaving the region beyond it default-malicious.
const (
	universeLo = -0.25
	universeHi = 1.75
)

// buildRules generates and compiles the whitelist rule sets for the
// iGuard forest, the switch-scale conventional iForest, and the
// early-packet PL iForest.
func (l *Lab) buildRules(ctx *AttackContext) error {
	cfg := l.Cfg
	genOpts := rules.GenOptions{MaxCells: cfg.MaxCells}

	// iGuard FL rules from the distilled forest, with boundary leaves
	// extended to the full universe so rules agree with forest routing
	// everywhere. The vote-aware generator short-circuits cells whose
	// majority is already decided.
	universe := rules.FullBox(features.FLDim, universeLo, universeHi)
	guardLeaves := make([][]rules.Box, len(ctx.Guard.Trees))
	guardLabels := make([][]int, len(ctx.Guard.Trees))
	for ti := range ctx.Guard.Trees {
		guardLeaves[ti], guardLabels[ti] = ctx.Guard.LabelledLeafRegionsWithin(ti, universe)
	}
	guardRules, err := rules.GenerateVoted(universe, guardLeaves, guardLabels, genOpts)
	if err != nil {
		return fmt.Errorf("experiments: iGuard rules: %w", err)
	}
	ctx.GuardRules = guardRules

	// Conventional iForest rules (the HorusEye-style baseline
	// deployment): same mechanism, labels from the score threshold.
	ifLeaves := make([][]rules.Box, len(ctx.SwitchIForest.Trees))
	for ti := range ctx.SwitchIForest.Trees {
		ifLeaves[ti] = ctx.SwitchIForest.LeafRegionsWithin(ti, universe)
	}
	ifRules, err := rules.Generate(universe, ifLeaves, ctx.SwitchIForest.Predict, genOpts)
	if err != nil {
		return fmt.Errorf("experiments: iForest rules: %w", err)
	}
	ctx.IFRules = ifRules

	// PL rules for early packets (merged into both deployments, §3.3.1).
	plUniverse := rules.FullBox(features.PLDim, universeLo, universeHi)
	plLeaves := make([][]rules.Box, len(ctx.PLIForest.Trees))
	for ti := range ctx.PLIForest.Trees {
		plLeaves[ti] = ctx.PLIForest.LeafRegionsWithin(ti, plUniverse)
	}
	plRules, err := rules.Generate(plUniverse, plLeaves, ctx.PLIForest.Predict, genOpts)
	if err != nil {
		return fmt.Errorf("experiments: PL rules: %w", err)
	}
	ctx.PLRules = plRules

	// Compile to the raw switch domain.
	ctx.GuardCompiled = CompileRaw(guardRules, ctx.Data.Prep, cfg.QuantBits)
	ctx.IFCompiled = CompileRaw(ifRules, ctx.Data.Prep, cfg.QuantBits)
	ctx.PLCompiled = CompileRaw(plRules, ctx.Data.PLPrep, cfg.QuantBits)
	return nil
}

// CompileRaw maps a model-space rule set back to raw feature units via
// the preprocessor (per-feature monotone, so boxes map to boxes) and
// quantises it for TCAM installation. The quantiser spans the raw
// training range with linear margins; rule edges beyond the quantiser
// clamp to the edge codes, matching the forest's routing semantics
// (boundary leaves extend outward). Constant features (zero training
// span) carry no information: their intervals widen to the full
// quantised range.
func CompileRaw(rs *rules.RuleSet, prep *features.Preprocess, bits int) *rules.CompiledRuleSet {
	dim := rs.Dim
	rawMin := make([]float64, dim)
	rawMax := make([]float64, dim)
	for i := 0; i < dim; i++ {
		span := prep.RawMax[i] - prep.RawMin[i]
		if span <= 0 {
			rawMin[i] = prep.RawMin[i] - 1
			rawMax[i] = prep.RawMin[i] + 1
			continue
		}
		// Quartile of margin below (many features are bounded at 0
		// anyway), a couple of spans above for attack headroom.
		rawMin[i] = prep.RawMin[i] - 0.25*span
		rawMax[i] = prep.RawMax[i] + 2*span
	}
	raw := &rules.RuleSet{Dim: dim, DefaultLabel: rs.DefaultLabel}
	for _, r := range rs.Rules {
		box := make(rules.Box, dim)
		for i, iv := range r.Box {
			span := prep.RawMax[i] - prep.RawMin[i]
			if span <= 0 {
				box[i] = rules.Interval{Lo: rawMin[i], Hi: rawMax[i]}
				continue
			}
			box[i] = rules.Interval{
				Lo: prep.InverseEdge(i, iv.Lo),
				Hi: prep.InverseEdge(i, iv.Hi),
			}
		}
		raw.Rules = append(raw.Rules, rules.Rule{Box: box, Label: r.Label})
	}
	q := rules.NewQuantizer(rawMin, rawMax, bits)
	return rules.Compile(raw, q)
}
