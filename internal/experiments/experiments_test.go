package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"iguard/internal/features"
	"iguard/internal/rules"
	"iguard/internal/traffic"
)

func quickData() DataConfig {
	cfg := DefaultDataConfig()
	cfg.BenignTrainFlows = 120
	cfg.BenignTestFlows = 60
	cfg.PktThreshold = 4
	return cfg
}

func TestBuildDatasetShapes(t *testing.T) {
	ds, err := BuildDataset(traffic.Mirai, quickData())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.TrainX) == 0 || len(ds.ValX) == 0 || len(ds.TestX) == 0 {
		t.Fatalf("empty splits: train=%d val=%d test=%d", len(ds.TrainX), len(ds.ValX), len(ds.TestX))
	}
	if len(ds.ValX) != len(ds.ValY) || len(ds.TestX) != len(ds.TestY) {
		t.Fatal("X/Y length mismatch")
	}
	for _, x := range ds.TrainX {
		if len(x) != features.FLDim {
			t.Fatalf("train vector dim = %d", len(x))
		}
	}
	// Attack share near the configured 20%.
	if share := ds.AttackShare(); share < 0.10 || share > 0.30 {
		t.Errorf("attack share = %v, want ~0.2", share)
	}
	// Validation contains both classes.
	pos := 0
	for _, y := range ds.ValY {
		pos += y
	}
	if pos == 0 || pos == len(ds.ValY) {
		t.Errorf("validation single-class: %d/%d", pos, len(ds.ValY))
	}
	if ds.TrainTrace == nil || ds.ValTrace == nil || ds.TestTrace == nil {
		t.Error("missing traces")
	}
	if len(ds.TestTrace.Malicious) == 0 {
		t.Error("test trace has no malicious flows")
	}
	if len(ds.PLTrainX) == 0 || len(ds.PLTrainX[0]) != features.PLDim {
		t.Error("PL training data missing")
	}
}

func TestBuildDatasetUnknownAttack(t *testing.T) {
	if _, err := BuildDataset("nope", quickData()); err == nil {
		t.Error("want error for unknown attack")
	}
}

func TestBuildDatasetScaling(t *testing.T) {
	ds, err := BuildDataset(traffic.UDPDDoS, quickData())
	if err != nil {
		t.Fatal(err)
	}
	// Training data scales into [0, 1] per feature.
	for _, x := range ds.TrainX {
		for j, v := range x {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("train feature %d = %v outside [0,1]", j, v)
			}
		}
	}
}

func TestCompileRawAgreesWithFloatRules(t *testing.T) {
	// A simple rule set over 2 features with a log-scaled second feature.
	prep := &features.Preprocess{LogMask: []bool{false, true}}
	raw := [][]float64{{0, 0.001}, {10, 0.01}, {20, 0.1}, {30, 1}, {40, 10}}
	prep.Fit(raw)
	model := prep.TransformAll(raw)

	// Whitelist the middle of model space.
	box := rules.NewBox([]float64{0.2, 0.2}, []float64{0.8, 0.8})
	rs := &rules.RuleSet{Rules: []rules.Rule{{Box: box, Label: 0}}, Dim: 2, DefaultLabel: 1}
	compiled := CompileRaw(rs, prep, 14)

	for i, m := range model {
		want := rs.Match(m)
		got := compiled.Match(raw[i])
		if got != want {
			t.Errorf("sample %d: compiled=%d float=%d", i, got, want)
		}
	}
}

func TestCompileRawConstantFeature(t *testing.T) {
	prep := &features.Preprocess{LogMask: []bool{false, false}}
	prep.Fit([][]float64{{5, 1}, {5, 2}})
	box := rules.NewBox([]float64{-0.25, 0}, []float64{1.75, 0.5})
	rs := &rules.RuleSet{Rules: []rules.Rule{{Box: box, Label: 0}}, Dim: 2, DefaultLabel: 1}
	compiled := CompileRaw(rs, prep, 8)
	// Constant feature is uninformative: match decided by feature 2.
	if got := compiled.Match([]float64{5, 1.2}); got != 0 {
		t.Errorf("in-range match = %d", got)
	}
	if got := compiled.Match([]float64{5, 1.9}); got != 1 {
		t.Errorf("out-of-range match = %d", got)
	}
}

// labForTests builds a lab with a tiny configuration shared by the
// heavier tests in this file.
func labForTests() *Lab {
	cfg := QuickLabConfig()
	cfg.Data.BenignTrainFlows = 140
	cfg.Data.BenignTestFlows = 70
	cfg.AEEpochs = 15
	cfg.GridK = []int{0}
	cfg.GridN = []int{4}
	return NewLab(cfg)
}

func TestLabContextCaching(t *testing.T) {
	lab := labForTests()
	a, err := lab.ContextN(traffic.Mirai, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lab.ContextN(traffic.Mirai, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("context not cached")
	}
	c, err := lab.ContextN(traffic.Mirai, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different n shares a context")
	}
}

func TestLabContextArtefacts(t *testing.T) {
	lab := labForTests()
	ctx, err := lab.ContextN(traffic.UDPDDoS, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Ensemble == nil || ctx.Guard == nil || ctx.CPUIForest == nil || ctx.SwitchIForest == nil || ctx.PLIForest == nil {
		t.Fatal("missing models")
	}
	if ctx.GuardRules.Len() == 0 || ctx.IFRules.Len() == 0 || ctx.PLRules.Len() == 0 {
		t.Fatal("missing rules")
	}
	if ctx.GuardCompiled == nil || ctx.IFCompiled == nil || ctx.PLCompiled == nil {
		t.Fatal("missing compiled rules")
	}
	// Compiled iGuard rules agree with the float rules on test samples.
	agree, total := 0, 0
	for i, x := range ctx.Data.TestX {
		raw := make([]float64, len(x))
		for j := range x {
			raw[j] = ctx.Data.Prep.InverseEdge(j, x[j])
		}
		want := ctx.GuardRules.Match(x)
		got := ctx.GuardCompiled.Match(raw)
		// Quantisation can flip points on bucket edges; require high
		// but not perfect agreement.
		if got == want {
			agree++
		}
		total++
		_ = i
	}
	if frac := float64(agree) / float64(total); frac < 0.97 {
		t.Errorf("compiled/float agreement = %v, want >= 0.97", frac)
	}
}

func TestRulesConsistencyWithForest(t *testing.T) {
	lab := labForTests()
	ctx, err := lab.ContextN(traffic.Mirai, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := rules.Consistency(ctx.GuardRules, ctx.Guard.Predict, ctx.Data.TestX)
	if c < 0.99 {
		t.Errorf("consistency C = %v, want >= 0.99 (paper: 0.992–0.996)", c)
	}
}

func TestReplayProducesCounters(t *testing.T) {
	lab := labForTests()
	ctx, err := lab.ContextN(traffic.UDPDDoS, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := lab.replay(ctx, ctx.GuardCompiled, ctx.Data.TestTrace)
	if run.Counters.Packets != len(ctx.Data.TestTrace.Packets) {
		t.Errorf("packets = %d, want %d", run.Counters.Packets, len(ctx.Data.TestTrace.Packets))
	}
	if run.Counters.Digests == 0 {
		t.Error("no digests emitted")
	}
	if run.Latency <= 0 {
		t.Error("no latency modelled")
	}
	if run.Report.SRAM <= 0 || run.Report.TCAM <= 0 {
		t.Errorf("resource report = %+v", run.Report)
	}
	if run.Reward <= 0 || run.Reward > 1 {
		t.Errorf("reward = %v", run.Reward)
	}
}

func TestRunFig2ProducesOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	lab := labForTests()
	res, err := lab.RunFig2([]traffic.AttackName{traffic.Mirai})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if len(row.BenignPaths) == 0 || len(row.AttackPaths) == 0 {
		t.Fatal("missing path samples")
	}
	if row.Overlap < 0 || row.Overlap > 1 {
		t.Errorf("overlap = %v", row.Overlap)
	}
	if !strings.Contains(res.String(), "overlap") {
		t.Error("String() missing content")
	}
}

func TestRunFig5ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	lab := labForTests()
	res, err := lab.RunFig5([]traffic.AttackName{traffic.UDPDDoS})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	// Core claim: the guided, distilled forest tracks its guide and both
	// produce usable detectors.
	if row.IGuard.MacroF1 < 0.5 {
		t.Errorf("iGuard macro F1 = %v", row.IGuard.MacroF1)
	}
	if math.Abs(row.IGuard.MacroF1-row.Magnifier.MacroF1) > 0.35 {
		t.Errorf("iGuard %v far from its guide %v", row.IGuard.MacroF1, row.Magnifier.MacroF1)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestRunTable2And3Schemas(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	lab := labForTests()
	t2, err := lab.RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Cells) != 4 {
		t.Errorf("table 2 cells = %d, want 4", len(t2.Cells))
	}
	t3, err := lab.RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Cells) != 4 {
		t.Errorf("table 3 cells = %d, want 4", len(t3.Cells))
	}
	for _, c := range append(t2.Cells, t3.Cells...) {
		if c.Scenario == "" {
			t.Error("unnamed scenario")
		}
	}
	if !strings.Contains(t2.String(), "Table 2") || !strings.Contains(t3.String(), "Table 3") {
		t.Error("renders missing titles")
	}
}

func TestRunAppB2Arithmetic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	lab := labForTests()
	res, err := lab.RunAppB2(traffic.Mirai)
	if err != nil {
		t.Fatal(err)
	}
	// 50k digests of 105 bits over 30 s ≈ 21.9 KBps — the paper reports
	// ~21 KBps.
	if math.Abs(res.IGuardKBps-21.875) > 0.01 {
		t.Errorf("iGuard KBps = %v", res.IGuardKBps)
	}
	// FL-feature digests ~5x more (paper: 5.2x).
	if res.RatioX < 4.5 || res.RatioX > 5.5 {
		t.Errorf("ratio = %v, want ~5", res.RatioX)
	}
	if res.MeasuredDigests == 0 {
		t.Error("no digests measured")
	}
}

func TestGridNSelectionUsesValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := QuickLabConfig()
	cfg.Data.BenignTrainFlows = 140
	cfg.Data.BenignTestFlows = 70
	cfg.AEEpochs = 15
	cfg.GridK = []int{0}
	cfg.GridN = []int{2, 8}
	lab := NewLab(cfg)
	run, err := lab.bestRun(traffic.Mirai, func(c *AttackContext) *rules.CompiledRuleSet { return c.GuardCompiled })
	if err != nil {
		t.Fatal(err)
	}
	if run.ChosenN != 2 && run.ChosenN != 8 {
		t.Errorf("chosen n = %d, want from grid", run.ChosenN)
	}
}

func TestDataConfigDefaults(t *testing.T) {
	cfg := DefaultDataConfig()
	if cfg.PktThreshold <= 0 || cfg.Timeout <= 0 || cfg.AttackFraction <= 0 {
		t.Errorf("defaults: %+v", cfg)
	}
	if cfg.Timeout != 5*time.Second {
		t.Errorf("timeout = %v", cfg.Timeout)
	}
}

func TestQuickConfigSmallerThanDefault(t *testing.T) {
	q, d := QuickLabConfig(), DefaultLabConfig()
	if q.Data.BenignTrainFlows >= d.Data.BenignTrainFlows {
		t.Error("quick config not smaller")
	}
	if q.AEEpochs > d.AEEpochs {
		t.Error("quick epochs exceed default")
	}
}
