package experiments

import (
	"fmt"
	"strings"
	"time"

	"iguard/internal/autoencoder"
	"iguard/internal/baseline"
	"iguard/internal/controller"
	"iguard/internal/core"
	"iguard/internal/features"
	"iguard/internal/iforest"
	"iguard/internal/mathx"
	"iguard/internal/metrics"
	"iguard/internal/rules"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

// evalWithValThreshold tunes the decision threshold on validation
// scores (the paper's grid-search on the validation set) and evaluates
// on test.
func evalWithValThreshold(valScores []float64, valY []int, testScores []float64, testY []int) metrics.Summary {
	thr, _ := metrics.BestF1Threshold(valScores, valY)
	preds := make([]int, len(testScores))
	for i, s := range testScores {
		if s >= thr {
			preds[i] = 1
		}
	}
	return metrics.Evaluate(testScores, preds, testY)
}

func scoreAll(score func([]float64) float64, x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = score(row)
	}
	return out
}

// ---------------------------------------------------------------------
// E1 — Fig. 2 / Fig. 7: expected-path-length overlap.
// ---------------------------------------------------------------------

// Fig2Row is one attack's path-length study.
type Fig2Row struct {
	Attack        traffic.AttackName
	BenignPaths   []float64
	AttackPaths   []float64
	Overlap       float64 // histogram overlap coefficient in [0, 1]
	BenignCounts  []int
	AttackCounts  []int
	HistogramEdge []float64
}

// Fig2Result aggregates the path-length study.
type Fig2Result struct{ Rows []Fig2Row }

// RunFig2 trains a conventional iForest per attack and records the
// expected path lengths of benign and malicious test samples.
func (l *Lab) RunFig2(attacks []traffic.AttackName) (*Fig2Result, error) {
	res := &Fig2Result{}
	for _, a := range attacks {
		ctx, err := l.CPUContext(a)
		if err != nil {
			return nil, err
		}
		row := Fig2Row{Attack: a}
		for i, x := range ctx.Data.TestX {
			pl := ctx.CPUIForest.ExpectedPathLength(x)
			if ctx.Data.TestY[i] == 1 {
				row.AttackPaths = append(row.AttackPaths, pl)
			} else {
				row.BenignPaths = append(row.BenignPaths, pl)
			}
		}
		row.Overlap = mathx.OverlapCoefficient(row.BenignPaths, row.AttackPaths, 24)
		lo1, hi1 := mathx.MinMax(row.BenignPaths)
		lo2, hi2 := mathx.MinMax(row.AttackPaths)
		lo, hi := minF(lo1, lo2), maxF(hi1, hi2)
		row.BenignCounts, row.HistogramEdge = mathx.Histogram(row.BenignPaths, 24, lo, hi)
		row.AttackCounts, _ = mathx.Histogram(row.AttackPaths, 24, lo, hi)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// String renders per-attack overlap plus ASCII histograms.
func (r *Fig2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 2/7 — expected path length distributions (conventional iForest)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "\n%s: overlap coefficient %.2f (benign n=%d, malicious n=%d)\n",
			row.Attack, row.Overlap, len(row.BenignPaths), len(row.AttackPaths))
		sb.WriteString(asciiHist("benign   ", row.BenignCounts))
		sb.WriteString(asciiHist("malicious", row.AttackCounts))
	}
	return sb.String()
}

func asciiHist(label string, counts []int) string {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		max = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %s |", label)
	glyphs := []rune(" .:-=+*#%@")
	for _, c := range counts {
		idx := c * (len(glyphs) - 1) / max
		sb.WriteRune(glyphs[idx])
	}
	sb.WriteString("|\n")
	return sb.String()
}

// ---------------------------------------------------------------------
// E2 — Fig. 5 / Fig. 8: CPU detection comparison.
// ---------------------------------------------------------------------

// Fig5Row holds one attack's three-model comparison.
type Fig5Row struct {
	Attack    traffic.AttackName
	IForest   metrics.Summary
	Magnifier metrics.Summary
	IGuard    metrics.Summary
}

// Fig5Result aggregates the CPU comparison.
type Fig5Result struct{ Rows []Fig5Row }

// RunFig5 compares iForest, the Magnifier ensemble, and iGuard on the
// feature-level (CPU) test sets.
func (l *Lab) RunFig5(attacks []traffic.AttackName) (*Fig5Result, error) {
	res := &Fig5Result{}
	for _, a := range attacks {
		ctx, err := l.CPUContext(a)
		if err != nil {
			return nil, err
		}
		ds := ctx.Data
		row := Fig5Row{Attack: a}

		ifScores := scoreAll(ctx.CPUIForest.Score, ds.TestX)
		ifPreds := make([]int, len(ds.TestX))
		for i, x := range ds.TestX {
			ifPreds[i] = ctx.CPUIForest.Predict(x)
		}
		row.IForest = metrics.Evaluate(ifScores, ifPreds, ds.TestY)

		magVal := scoreAll(ctx.Ensemble.Score, ds.ValX)
		magTest := scoreAll(ctx.Ensemble.Score, ds.TestX)
		row.Magnifier = evalWithValThreshold(magVal, ds.ValY, magTest, ds.TestY)

		gScores := scoreAll(ctx.Guard.Score, ds.TestX)
		gPreds := make([]int, len(ds.TestX))
		for i, x := range ds.TestX {
			gPreds[i] = ctx.Guard.Predict(x)
		}
		row.IGuard = metrics.Evaluate(gScores, gPreds, ds.TestY)

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the Fig. 5 comparison table.
func (r *Fig5Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 5/8 — CPU detection (macro F1 / PRAUC / ROCAUC)\n")
	fmt.Fprintf(&sb, "%-22s %-26s %-26s %-26s\n", "attack", "iForest", "Magnifier", "iGuard")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-22s %-26s %-26s %-26s\n", row.Attack,
			cell3(row.IForest), cell3(row.Magnifier), cell3(row.IGuard))
	}
	return sb.String()
}

func cell3(s metrics.Summary) string {
	return fmt.Sprintf("%.3f/%.3f/%.3f", s.MacroF1, s.PRAUC, s.ROCAUC)
}

// ---------------------------------------------------------------------
// E3 — Fig. 6 / Fig. 9: switch (testbed) detection comparison.
// ---------------------------------------------------------------------

// SwitchRun is the outcome of replaying a trace through one deployed
// rule set.
type SwitchRun struct {
	Summary  metrics.Summary
	Counters switchsim.Counters
	Usage    switchsim.Usage
	Report   switchsim.Report
	Latency  time.Duration
	Reward   float64
	// ChosenN is the packet-count threshold the best-version search
	// selected for this run.
	ChosenN int
	// RuleCount / TCAMEntries describe the installed FL whitelist.
	RuleCount   int
	TCAMEntries int
}

// Fig6Row compares both deployments on one attack.
type Fig6Row struct {
	Attack  traffic.AttackName
	IForest SwitchRun
	IGuard  SwitchRun
}

// Fig6Result aggregates the switch comparison.
type Fig6Result struct{ Rows []Fig6Row }

// replay installs the rule set on a fresh simulated switch with a
// controller attached, replays the given trace, and computes per-packet
// metrics against ground truth.
func (l *Lab) replay(ctx *AttackContext, fl *rules.CompiledRuleSet, trace *traffic.Trace) SwitchRun {
	cfg := l.Cfg
	sw := switchsim.New(switchsim.Config{
		Slots:             cfg.SwitchSlots,
		PktThreshold:      ctx.Data.Cfg.PktThreshold,
		Timeout:           ctx.Data.Cfg.Timeout,
		PLRules:           ctx.PLCompiled,
		FLRules:           fl,
		BlacklistCapacity: cfg.BlacklistCap,
		DropMalicious:     true,
	})
	ctrl := controller.New(sw, cfg.BlacklistCap, controller.LRU)
	sw.SetSink(ctrl)

	preds := make([]int, 0, len(trace.Packets))
	truths := make([]int, 0, len(trace.Packets))
	scores := make([]float64, 0, len(trace.Packets))
	for i := range trace.Packets {
		p := &trace.Packets[i]
		d := sw.ProcessPacket(p)
		preds = append(preds, d.Predicted)
		scores = append(scores, float64(d.Predicted))
		label := 0
		if trace.IsMalicious(features.KeyOf(p)) {
			label = 1
		}
		truths = append(truths, label)
	}
	usage := sw.Usage()
	report := usage.Fractions(switchsim.Tofino1Budget())
	summary := metrics.Evaluate(scores, preds, truths)
	return SwitchRun{
		Summary:     summary,
		Counters:    sw.Counters,
		Usage:       usage,
		Report:      report,
		Latency:     sw.AvgLatency(),
		Reward:      metrics.Reward(0.5, summary, report.Rho()),
		ChosenN:     ctx.Data.Cfg.PktThreshold,
		RuleCount:   len(fl.Rules),
		TCAMEntries: fl.TotalEntries,
	}
}

// gridNs returns the threshold grid (falling back to the default n).
func (l *Lab) gridNs() []int {
	if len(l.Cfg.GridN) > 0 {
		return l.Cfg.GridN
	}
	return []int{l.Cfg.Data.PktThreshold}
}

// bestRun performs the §4.2.1 best-version selection for one model:
// every candidate n is deployed and scored on the validation trace with
// the reward α/3(F1+PRAUC+ROCAUC)+(1−α)(1−ρ); the winner is then
// replayed on the test trace.
func (l *Lab) bestRun(attack traffic.AttackName, pick func(*AttackContext) *rules.CompiledRuleSet) (SwitchRun, error) {
	bestReward := -1.0
	var bestCtx *AttackContext
	for _, n := range l.gridNs() {
		ctx, err := l.ContextN(attack, n)
		if err != nil {
			return SwitchRun{}, err
		}
		run := l.replay(ctx, pick(ctx), ctx.Data.ValTrace)
		if run.Reward > bestReward {
			bestReward = run.Reward
			bestCtx = ctx
		}
	}
	return l.replay(bestCtx, pick(bestCtx), bestCtx.Data.TestTrace), nil
}

// RunFig6 compares the best-version iForest and iGuard deployments on
// every attack's test trace.
func (l *Lab) RunFig6(attacks []traffic.AttackName) (*Fig6Result, error) {
	res := &Fig6Result{}
	for _, a := range attacks {
		ifRun, err := l.bestRun(a, func(c *AttackContext) *rules.CompiledRuleSet { return c.IFCompiled })
		if err != nil {
			return nil, err
		}
		igRun, err := l.bestRun(a, func(c *AttackContext) *rules.CompiledRuleSet { return c.GuardCompiled })
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig6Row{Attack: a, IForest: ifRun, IGuard: igRun})
	}
	return res, nil
}

// String renders the Fig. 6 table.
func (r *Fig6Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 6/9 — switch detection, per-packet metrics (macro F1 / PRAUC / ROCAUC)\n")
	fmt.Fprintf(&sb, "%-22s %-30s %-30s %10s\n", "attack", "iForest (switch)", "iGuard (switch)", "ΔF1")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-22s %-30s %-30s %+9.1f%%\n", row.Attack,
			cell3(row.IForest.Summary)+fmt.Sprintf(" n=%d", row.IForest.ChosenN),
			cell3(row.IGuard.Summary)+fmt.Sprintf(" n=%d", row.IGuard.ChosenN),
			100*(row.IGuard.Summary.MacroF1-row.IForest.Summary.MacroF1))
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// E4 — Table 1: switch resource consumption.
// ---------------------------------------------------------------------

// Table1Result holds average resource fractions across attacks.
type Table1Result struct {
	IForest switchsim.Report
	IGuard  switchsim.Report
	// Rule-count averages explain the TCAM delta.
	IForestRules float64
	IGuardRules  float64
}

// RunTable1 averages resource reports of the best-version deployments
// over the given attacks.
func (l *Lab) RunTable1(attacks []traffic.AttackName) (*Table1Result, error) {
	res := &Table1Result{}
	n := 0
	for _, a := range attacks {
		ifRun, err := l.bestRun(a, func(c *AttackContext) *rules.CompiledRuleSet { return c.IFCompiled })
		if err != nil {
			return nil, err
		}
		igRun, err := l.bestRun(a, func(c *AttackContext) *rules.CompiledRuleSet { return c.GuardCompiled })
		if err != nil {
			return nil, err
		}
		res.IForest = addReports(res.IForest, ifRun.Report)
		res.IGuard = addReports(res.IGuard, igRun.Report)
		res.IForestRules += float64(ifRun.RuleCount)
		res.IGuardRules += float64(igRun.RuleCount)
		n++
	}
	if n > 0 {
		res.IForest = scaleReport(res.IForest, 1/float64(n))
		res.IGuard = scaleReport(res.IGuard, 1/float64(n))
		res.IForestRules /= float64(n)
		res.IGuardRules /= float64(n)
	}
	return res, nil
}

func addReports(a, b switchsim.Report) switchsim.Report {
	return switchsim.Report{
		TCAM: a.TCAM + b.TCAM, SRAM: a.SRAM + b.SRAM,
		SALU: a.SALU + b.SALU, VLIW: a.VLIW + b.VLIW,
		Stages: maxI(a.Stages, b.Stages),
	}
}

func scaleReport(a switchsim.Report, f float64) switchsim.Report {
	return switchsim.Report{TCAM: a.TCAM * f, SRAM: a.SRAM * f, SALU: a.SALU * f, VLIW: a.VLIW * f, Stages: a.Stages}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String renders the Table 1 rows.
func (r *Table1Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 1 — average switch resource consumption across attacks\n")
	fmt.Fprintf(&sb, "%-10s %9s %9s %9s %9s %7s %12s\n",
		"model", "TCAM", "SRAM", "sALUs", "VLIWs", "stages", "rules")
	fmt.Fprintf(&sb, "%-10s %8.2f%% %8.2f%% %8.2f%% %8.2f%% %7d %12.1f\n",
		"iForest", 100*r.IForest.TCAM, 100*r.IForest.SRAM, 100*r.IForest.SALU, 100*r.IForest.VLIW, r.IForest.Stages, r.IForestRules)
	fmt.Fprintf(&sb, "%-10s %8.2f%% %8.2f%% %8.2f%% %8.2f%% %7d %12.1f\n",
		"iGuard", 100*r.IGuard.TCAM, 100*r.IGuard.SRAM, 100*r.IGuard.SALU, 100*r.IGuard.VLIW, r.IGuard.Stages, r.IGuardRules)
	return sb.String()
}

// ---------------------------------------------------------------------
// E5 / E6 — Tables 2 and 3: adversarial attacks.
// ---------------------------------------------------------------------

// AdvCell is one adversarial scenario's two-model comparison.
type AdvCell struct {
	Scenario string
	IForest  metrics.Summary
	IGuard   metrics.Summary
}

// AdvResult aggregates adversarial scenarios.
type AdvResult struct {
	Title string
	Cells []AdvCell
}

// evalOnTrace replays an arbitrary labelled trace through both switch
// deployments of a context.
func (l *Lab) evalOnTrace(ctx *AttackContext, tr *traffic.Trace) (ifSum, igSum metrics.Summary) {
	return l.replay(ctx, ctx.IFCompiled, tr).Summary, l.replay(ctx, ctx.GuardCompiled, tr).Summary
}

// RunTable2 evaluates the low-rate and poisoning adversarial attacks.
func (l *Lab) RunTable2() (*AdvResult, error) {
	res := &AdvResult{Title: "Table 2 — low-rate and poisoning adversarial attacks"}

	// Low-rate: the flood is diluted 100x; models stay trained on clean
	// benign data.
	for _, a := range []traffic.AttackName{traffic.UDPDDoS, traffic.TCPDDoS} {
		ctx, err := l.Context(a)
		if err != nil {
			return nil, err
		}
		atk, err := traffic.GenerateAttack(a, l.Cfg.Data.Seed+500, 24)
		if err != nil {
			return nil, err
		}
		slow := traffic.LowRate(atk, 100)
		benign := traffic.GenerateBenign(l.Cfg.Data.Seed+501, l.Cfg.Data.BenignTestFlows)
		tr := benign.Merge(slow)
		ifSum, igSum := l.evalOnTrace(ctx, tr)
		res.Cells = append(res.Cells, AdvCell{
			Scenario: fmt.Sprintf("Low rate (%s 1/100)", a),
			IForest:  ifSum, IGuard: igSum,
		})
	}

	// Poisoning: x% attack flows contaminate the benign training trace;
	// the whole pipeline retrains on the poisoned data.
	for _, fracPct := range []int{2, 10} {
		cell, err := l.runPoison(traffic.Mirai, float64(fracPct)/100)
		if err != nil {
			return nil, err
		}
		cell.Scenario = fmt.Sprintf("Poison (Mirai %d%%)", fracPct)
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// runPoison retrains both models on a poisoned benign trace and
// evaluates on a clean Mirai test trace.
func (l *Lab) runPoison(attack traffic.AttackName, frac float64) (AdvCell, error) {
	cfg := l.Cfg
	cfg.Data.Seed += 7000 // disjoint seeds for the poisoned world
	poisonSrc, err := traffic.GenerateAttack(attack, cfg.Data.Seed+1, 200)
	if err != nil {
		return AdvCell{}, err
	}
	benignTrain := traffic.GenerateBenign(cfg.Data.Seed+2, cfg.Data.BenignTrainFlows)
	poisoned := traffic.Poison(benignTrain, poisonSrc, frac, cfg.Data.Seed+3)

	lab := NewLab(cfg)
	ctx, err := lab.Context(attack)
	if err != nil {
		return AdvCell{}, err
	}
	// Rebuild the training features from the poisoned trace and refit
	// everything the training pipeline would refit.
	fl, _, _ := flSamplesOf(poisoned, cfg.Data)
	prep := features.NewFLPreprocess()
	trainX := prep.FitTransform(fl)

	r := mathx.NewRand(cfg.Data.Seed + 4)
	ens := autoencoder.NewEnsemble(
		autoencoder.NewMagnifier(r, features.FLDim),
		autoencoder.NewSymmetric(r, features.FLDim),
	)
	ens.Fit(trainX, autoencoder.TrainOptions{Epochs: cfg.AEEpochs, BatchSize: cfg.AEBatch, LR: cfg.AELR, Rand: mathx.NewRand(cfg.Data.Seed + 5)})
	ens.Calibrate(trainX, cfg.CalibQuantile)

	guardOpts := cfg.GuardOpts
	guardOpts.Seed = cfg.Data.Seed + 6
	guard, err := core.Fit(trainX, ens, guardOpts)
	if err != nil {
		return AdvCell{}, err
	}
	swOpts := cfg.SwitchIForestOpts
	swOpts.Seed = cfg.Data.Seed + 7
	swIF := iforest.Fit(trainX, swOpts)
	swIF.CalibrateThreshold(trainX, cfg.Contamination)

	// Compile both poisoned models to rules over the poisoned pipeline.
	poisonedCtx := &AttackContext{Data: &Dataset{Prep: prep, PLPrep: ctx.Data.PLPrep, Cfg: cfg.Data}, Guard: guard, SwitchIForest: swIF, PLIForest: ctx.PLIForest}
	if err := lab.buildRules(poisonedCtx); err != nil {
		return AdvCell{}, err
	}
	poisonedCtx.PLCompiled = ctx.PLCompiled

	benignTest := traffic.GenerateBenign(cfg.Data.Seed+8, cfg.Data.BenignTestFlows)
	atkTest, err := traffic.GenerateAttack(attack, cfg.Data.Seed+9, 40)
	if err != nil {
		return AdvCell{}, err
	}
	tr := benignTest.Merge(atkTest)
	poisonedCtx.Data.TestTrace = tr

	ifRun := lab.replay(poisonedCtx, poisonedCtx.IFCompiled, tr)
	igRun := lab.replay(poisonedCtx, poisonedCtx.GuardCompiled, tr)
	return AdvCell{IForest: ifRun.Summary, IGuard: igRun.Summary}, nil
}

// RunTable3 evaluates the benign-interleaving evasion attacks.
func (l *Lab) RunTable3() (*AdvResult, error) {
	res := &AdvResult{Title: "Table 3 — black-box evasion attacks (benign packets interleaved)"}
	for _, a := range []traffic.AttackName{traffic.UDPDDoS, traffic.TCPDDoS} {
		for _, ratio := range []struct {
			name string
			bpa  float64
		}{{"1:2", 0.5}, {"1:4", 0.25}} {
			ctx, err := l.Context(a)
			if err != nil {
				return nil, err
			}
			atk, err := traffic.GenerateAttack(a, l.Cfg.Data.Seed+600, 24)
			if err != nil {
				return nil, err
			}
			evaded := traffic.Evade(atk, ratio.bpa, l.Cfg.Data.Seed+601)
			benign := traffic.GenerateBenign(l.Cfg.Data.Seed+602, l.Cfg.Data.BenignTestFlows)
			tr := benign.Merge(evaded)
			ifSum, igSum := l.evalOnTrace(ctx, tr)
			res.Cells = append(res.Cells, AdvCell{
				Scenario: fmt.Sprintf("Evasion (%s %s)", a, ratio.name),
				IForest:  ifSum, IGuard: igSum,
			})
		}
	}
	return res, nil
}

// String renders an adversarial table in the paper's
// F1/ROCAUC/PRAUC percent style.
func (r *AdvResult) String() string {
	var sb strings.Builder
	sb.WriteString(r.Title + "\n")
	fmt.Fprintf(&sb, "%-28s %-26s %-26s\n", "scenario", "iForest", "iGuard")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%-28s %-26s %-26s\n", c.Scenario, c.IForest.String(), c.IGuard.String())
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// E7 — Fig. 10: guidance-candidate comparison.
// ---------------------------------------------------------------------

// Fig10Row is one attack's candidate panel (macro F1 per model).
type Fig10Row struct {
	Attack traffic.AttackName
	Scores map[string]float64
}

// Fig10Models lists the candidate panel in presentation order.
var Fig10Models = []string{"kNN", "PCA", "iForest", "X-means", "VAE", "Magnifier"}

// Fig10Result aggregates the candidate study.
type Fig10Result struct {
	Rows    []Fig10Row
	Average map[string]float64
}

// RunFig10 trains each candidate on the benign training set and scores
// the attack test set, tuning thresholds on validation.
func (l *Lab) RunFig10(attacks []traffic.AttackName) (*Fig10Result, error) {
	res := &Fig10Result{Average: map[string]float64{}}
	for _, a := range attacks {
		ctx, err := l.CPUContext(a)
		if err != nil {
			return nil, err
		}
		ds := ctx.Data
		row := Fig10Row{Attack: a, Scores: map[string]float64{}}

		eval := func(name string, score func([]float64) float64) {
			val := scoreAll(score, ds.ValX)
			test := scoreAll(score, ds.TestX)
			s := evalWithValThreshold(val, ds.ValY, test, ds.TestY)
			row.Scores[name] = s.MacroF1
			res.Average[name] += s.MacroF1
		}

		knn := baseline.NewKNN(5)
		knn.Fit(ds.TrainX)
		eval("kNN", knn.Score)

		pca := baseline.NewPCA(4)
		pca.Fit(ds.TrainX)
		eval("PCA", pca.Score)

		eval("iForest", ctx.CPUIForest.Score)

		xm := baseline.NewXMeans(8)
		xm.Fit(ds.TrainX)
		eval("X-means", xm.Score)

		r := mathx.NewRand(l.Cfg.Data.Seed + 4000)
		vae := autoencoder.NewVAE(r, features.FLDim, 3)
		vae.Fit(ds.TrainX, autoencoder.TrainOptions{Epochs: l.Cfg.AEEpochs, BatchSize: l.Cfg.AEBatch, LR: l.Cfg.AELR, Rand: mathx.NewRand(l.Cfg.Data.Seed + 4001)})
		eval("VAE", vae.ReconstructionError)

		mag := autoencoder.NewMagnifier(mathx.NewRand(l.Cfg.Data.Seed+4002), features.FLDim)
		mag.Fit(ds.TrainX, autoencoder.TrainOptions{Epochs: l.Cfg.AEEpochs, BatchSize: l.Cfg.AEBatch, LR: l.Cfg.AELR, Rand: mathx.NewRand(l.Cfg.Data.Seed + 4003)})
		eval("Magnifier", mag.ReconstructionError)

		res.Rows = append(res.Rows, row)
	}
	for k := range res.Average { //iguard:sorted in-place scaling of every value, order-independent
		res.Average[k] /= float64(len(attacks))
	}
	return res, nil
}

// String renders the Fig. 10 panel.
func (r *Fig10Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 10 — macro F1 of guidance candidates\n")
	fmt.Fprintf(&sb, "%-22s", "attack")
	for _, m := range Fig10Models {
		fmt.Fprintf(&sb, " %9s", m)
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-22s", row.Attack)
		for _, m := range Fig10Models {
			fmt.Fprintf(&sb, " %9.3f", row.Scores[m])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-22s", "Average")
	for _, m := range Fig10Models {
		fmt.Fprintf(&sb, " %9.3f", r.Average[m])
	}
	sb.WriteByte('\n')
	return sb.String()
}

// ---------------------------------------------------------------------
// E8 — §3.2.3 consistency.
// ---------------------------------------------------------------------

// ConsistencyRow is one attack's rule-fidelity measurement.
type ConsistencyRow struct {
	Attack traffic.AttackName
	C      float64
	Rules  int
}

// ConsistencyResult aggregates rule fidelity.
type ConsistencyResult struct {
	Rows []ConsistencyRow
	Mean float64
}

// RunConsistency measures C = (1/N)Σ1{forest(x)=rules(x)} on the test
// samples, per attack.
func (l *Lab) RunConsistency(attacks []traffic.AttackName) (*ConsistencyResult, error) {
	res := &ConsistencyResult{}
	for _, a := range attacks {
		ctx, err := l.CPUContext(a)
		if err != nil {
			return nil, err
		}
		c := rules.Consistency(ctx.GuardRules, ctx.Guard.Predict, ctx.Data.TestX)
		res.Rows = append(res.Rows, ConsistencyRow{Attack: a, C: c, Rules: ctx.GuardRules.Len()})
		res.Mean += c
	}
	if len(res.Rows) > 0 {
		res.Mean /= float64(len(res.Rows))
	}
	return res, nil
}

// String renders the consistency study.
func (r *ConsistencyResult) String() string {
	var sb strings.Builder
	sb.WriteString("§3.2.3 — whitelist-rule consistency C vs distilled iForest\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-22s C = %.4f  (%d rules)\n", row.Attack, row.C, row.Rules)
	}
	fmt.Fprintf(&sb, "%-22s C = %.4f\n", "Average", r.Mean)
	return sb.String()
}

// ---------------------------------------------------------------------
// E9 — App. B.1: throughput and latency.
// ---------------------------------------------------------------------

// AppB1Result models throughput on a 40 Gbps link: iGuard pays only
// recirculation passes; a HorusEye-style design additionally detours
// every classified flow's observation window through the control plane.
type AppB1Result struct {
	LinkGbps         float64
	IGuardGbps       float64
	HorusEyeGbps     float64
	ImprovementPct   float64
	AvgLatency       time.Duration
	Packets          int
	Recirculated     int
	ControlPlanePkts int
}

// RunAppB1 replays every attack's test trace through the iGuard
// deployment and aggregates the throughput model.
func (l *Lab) RunAppB1(attacks []traffic.AttackName) (*AppB1Result, error) {
	res := &AppB1Result{LinkGbps: 40}
	var totalLatency time.Duration
	n := 0
	for _, a := range attacks {
		ctx, err := l.Context(a)
		if err != nil {
			return nil, err
		}
		run := l.replay(ctx, ctx.GuardCompiled, ctx.Data.TestTrace)
		res.Packets += run.Counters.Packets
		res.Recirculated += run.Counters.Recirculated
		// HorusEye-style control-plane detection must see the full
		// observation window (n packets) of every classified flow.
		res.ControlPlanePkts += run.Counters.Digests * ctx.Data.Cfg.PktThreshold
		totalLatency += run.Latency
		n++
	}
	if n > 0 {
		res.AvgLatency = totalLatency / time.Duration(n)
	}
	if res.Packets > 0 {
		passes := float64(res.Packets + res.Recirculated)
		res.IGuardGbps = res.LinkGbps * float64(res.Packets) / passes
		cpPasses := passes + float64(res.ControlPlanePkts)
		res.HorusEyeGbps = res.LinkGbps * float64(res.Packets) / cpPasses
		res.ImprovementPct = 100 * (res.IGuardGbps - res.HorusEyeGbps) / res.HorusEyeGbps
	}
	return res, nil
}

// String renders the App. B.1 study.
func (r *AppB1Result) String() string {
	return fmt.Sprintf(
		"App. B.1 — throughput and latency on a %.0f Gbps link\n"+
			"iGuard throughput:    %.1f Gbps (in-switch decisions; %d recirculations / %d packets)\n"+
			"HorusEye-style:       %.1f Gbps (control-plane detour of %d packets)\n"+
			"improvement:          %.1f%%\n"+
			"avg per-packet latency: %v\n",
		r.LinkGbps, r.IGuardGbps, r.Recirculated, r.Packets,
		r.HorusEyeGbps, r.ControlPlanePkts, r.ImprovementPct, r.AvgLatency)
}

// ---------------------------------------------------------------------
// E10 — App. B.2: control-plane overhead.
// ---------------------------------------------------------------------

// AppB2Result compares digest bandwidth: iGuard sends 13 B + 1 bit per
// digest; FL-feature designs add ~52 B of features.
type AppB2Result struct {
	// Scenario of the paper: 50k digests per 30 s window.
	DigestsPerWindow int
	WindowSeconds    float64
	IGuardKBps       float64
	FLDigestKBps     float64
	RatioX           float64
	// Measured from the replayed traces.
	MeasuredDigests int
	MeasuredBytes   int
}

// iGuard digest payload: 13-byte 5-tuple + 1-bit label = 105 bits.
const digestBits = 105

// flExtraBytes is the extra feature payload of control-plane detection
// designs ([4, 15]).
const flExtraBytes = 52

// RunAppB2 computes the B.2 bandwidth comparison and measures actual
// digest volume from one replay.
func (l *Lab) RunAppB2(attack traffic.AttackName) (*AppB2Result, error) {
	res := &AppB2Result{DigestsPerWindow: 50000, WindowSeconds: 30}
	perDigestBytes := float64(digestBits) / 8
	res.IGuardKBps = float64(res.DigestsPerWindow) * perDigestBytes / res.WindowSeconds / 1000
	res.FLDigestKBps = float64(res.DigestsPerWindow) * (perDigestBytes + flExtraBytes) / res.WindowSeconds / 1000
	res.RatioX = res.FLDigestKBps / res.IGuardKBps

	ctx, err := l.Context(attack)
	if err != nil {
		return nil, err
	}
	run := l.replay(ctx, ctx.GuardCompiled, ctx.Data.TestTrace)
	res.MeasuredDigests = run.Counters.Digests
	res.MeasuredBytes = run.Counters.DigestBytes
	return res, nil
}

// String renders the App. B.2 study.
func (r *AppB2Result) String() string {
	return fmt.Sprintf(
		"App. B.2 — control-plane overhead (%d digests / %.0f s window)\n"+
			"iGuard digests (13 B 5-tuple + 1-bit label): %.1f KBps\n"+
			"FL-feature digests (+%d B):                  %.1f KBps (%.1fx more)\n"+
			"measured in replay: %d digests, %d bytes\n",
		r.DigestsPerWindow, r.WindowSeconds, r.IGuardKBps,
		flExtraBytes, r.FLDigestKBps, r.RatioX,
		r.MeasuredDigests, r.MeasuredBytes)
}
