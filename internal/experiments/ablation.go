package experiments

import (
	"fmt"
	"strings"

	"iguard/internal/core"
	"iguard/internal/metrics"
	"iguard/internal/rules"
	"iguard/internal/traffic"
)

// AblationResult reports one design-choice study across its variants.
type AblationResult struct {
	Title   string
	Rows    []AblationRow
	Remarks string
}

// AblationRow is one variant's outcome.
type AblationRow struct {
	Variant string
	MacroF1 float64
	PRAUC   float64
	ROCAUC  float64
	Rules   int
	Extra   string
}

// String renders the study.
func (r *AblationResult) String() string {
	var sb strings.Builder
	sb.WriteString(r.Title + "\n")
	fmt.Fprintf(&sb, "%-34s %9s %9s %9s %8s  %s\n", "variant", "macroF1", "PRAUC", "ROCAUC", "rules", "")
	for _, row := range r.Rows {
		if row.MacroF1 == 0 && row.PRAUC == 0 && row.ROCAUC == 0 { //iguard:allow(floatcompare) exact-zero sentinel for rule-count-only rows
			// Rule-count-only study (merging is detection-invariant).
			fmt.Fprintf(&sb, "%-34s %9s %9s %9s %8d  %s\n",
				row.Variant, "-", "-", "-", row.Rules, row.Extra)
			continue
		}
		fmt.Fprintf(&sb, "%-34s %9.3f %9.3f %9.3f %8d  %s\n",
			row.Variant, row.MacroF1, row.PRAUC, row.ROCAUC, row.Rules, row.Extra)
	}
	if r.Remarks != "" {
		sb.WriteString(r.Remarks + "\n")
	}
	return sb.String()
}

// evalForest scores a distilled forest on a dataset's test split.
func evalForest(f *core.Forest, ds *Dataset) (metrics.Summary, error) {
	preds := make([]int, len(ds.TestX))
	scores := make([]float64, len(ds.TestX))
	for i, x := range ds.TestX {
		preds[i] = f.Predict(x)
		scores[i] = f.Score(x)
	}
	return metrics.Evaluate(scores, preds, ds.TestY), nil
}

// RunAblationGuidance contrasts the three training regimes on one
// attack: iGuard (guided splits + distillation), random splits +
// distillation (§3.2.2 without §3.2.1), and the conventional iForest
// (neither).
func (l *Lab) RunAblationGuidance(attack traffic.AttackName) (*AblationResult, error) {
	ctx, err := l.Context(attack)
	if err != nil {
		return nil, err
	}
	ds := ctx.Data
	res := &AblationResult{Title: fmt.Sprintf("Ablation — guidance vs distillation (%s, n=%d)", attack, ds.Cfg.PktThreshold)}

	// 1. Full iGuard (from the cached context).
	full, err := evalForest(ctx.Guard, ds)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Variant: "guided splits + distillation",
		MacroF1: full.MacroF1, PRAUC: full.PRAUC, ROCAUC: full.ROCAUC,
		Rules: ctx.GuardRules.Len(),
	})

	// 2. Random splits + distillation.
	opts := ctx.Guard.TrainedOptions()
	opts.RandomSplits = true
	randomForest, err := core.Fit(ds.TrainX, ctx.Ensemble, opts)
	if err != nil {
		return nil, err
	}
	rnd, err := evalForest(randomForest, ds)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Variant: "random splits + distillation",
		MacroF1: rnd.MacroF1, PRAUC: rnd.PRAUC, ROCAUC: rnd.ROCAUC,
		Rules: randomForest.NumLeaves(),
	})

	// 3. Conventional iForest (path-length scores, no distillation).
	ifScores := scoreAll(ctx.CPUIForest.Score, ds.TestX)
	ifPreds := make([]int, len(ds.TestX))
	for i, x := range ds.TestX {
		ifPreds[i] = ctx.CPUIForest.Predict(x)
	}
	ifSum := metrics.Evaluate(ifScores, ifPreds, ds.TestY)
	res.Rows = append(res.Rows, AblationRow{
		Variant: "conventional iForest",
		MacroF1: ifSum.MacroF1, PRAUC: ifSum.PRAUC, ROCAUC: ifSum.ROCAUC,
		Rules: ctx.CPUIForest.NumLeaves(),
	})
	res.Remarks = "guidance shapes the leaves distillation labels; without it labels land on arbitrary regions."
	return res, nil
}

// RunAblationMerging measures §3.2.3's adjacent-hypercube merge: the
// rule-set size with and without it (detection is unaffected — merging
// is exact).
func (l *Lab) RunAblationMerging(attack traffic.AttackName) (*AblationResult, error) {
	ctx, err := l.Context(attack)
	if err != nil {
		return nil, err
	}
	universe := rules.FullBox(len(ctx.Data.TrainX[0]), universeLo, universeHi)
	leaves := make([][]rules.Box, len(ctx.Guard.Trees))
	labels := make([][]int, len(ctx.Guard.Trees))
	for ti := range ctx.Guard.Trees {
		leaves[ti], labels[ti] = ctx.Guard.LabelledLeafRegionsWithin(ti, universe)
	}
	unmerged, err := rules.GenerateVoted(universe, leaves, labels, rules.GenOptions{
		MaxCells:  l.Cfg.MaxCells,
		SkipMerge: true,
	})
	if err != nil {
		return nil, err
	}
	merged := ctx.GuardRules
	res := &AblationResult{Title: fmt.Sprintf("Ablation — adjacent-hypercube merging (%s)", attack)}
	res.Rows = append(res.Rows, AblationRow{Variant: "with merge (deployed)", Rules: merged.Len()})
	res.Rows = append(res.Rows, AblationRow{Variant: "without merge", Rules: unmerged.Len()})
	res.Remarks = "merging is exact: every sample keeps its label; only the TCAM footprint changes."
	return res, nil
}

// RunAblationBoundaryPeel contrasts the boundary peel on an attack with
// out-of-range features (UDP DDoS exceeds benign size/IPD ranges).
func (l *Lab) RunAblationBoundaryPeel(attack traffic.AttackName) (*AblationResult, error) {
	ctx, err := l.Context(attack)
	if err != nil {
		return nil, err
	}
	ds := ctx.Data
	res := &AblationResult{Title: fmt.Sprintf("Ablation — boundary peel (%s, n=%d)", attack, ds.Cfg.PktThreshold)}

	withPeel, err := evalForest(ctx.Guard, ds)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Variant: "with boundary peel (deployed)",
		MacroF1: withPeel.MacroF1, PRAUC: withPeel.PRAUC, ROCAUC: withPeel.ROCAUC,
		Rules: ctx.Guard.NumLeaves(),
	})

	opts := ctx.Guard.TrainedOptions()
	opts.Bounds = nil // trees root at data bounds; no peel
	noPeel, err := core.Fit(ds.TrainX, ctx.Ensemble, opts)
	if err != nil {
		return nil, err
	}
	np, err := evalForest(noPeel, ds)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Variant: "without peel",
		MacroF1: np.MacroF1, PRAUC: np.PRAUC, ROCAUC: np.ROCAUC,
		Rules: noPeel.NumLeaves(),
	})
	res.Remarks = "without the peel, feature space beyond the training range inherits boundary-leaf labels it was never probed for."
	return res, nil
}
