package experiments

import (
	"strings"
	"testing"

	"iguard/internal/traffic"
)

func TestAblationGuidance(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	lab := labForTests()
	res, err := lab.RunAblationGuidance(traffic.UDPDDoS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MacroF1 < 0 || row.MacroF1 > 1 {
			t.Errorf("%s macro F1 = %v", row.Variant, row.MacroF1)
		}
	}
	// The deployed variant should not lose to the random-split ablation.
	if res.Rows[0].MacroF1+0.05 < res.Rows[1].MacroF1 {
		t.Errorf("guided (%v) materially below random (%v)", res.Rows[0].MacroF1, res.Rows[1].MacroF1)
	}
	if !strings.Contains(res.String(), "guided splits") {
		t.Error("render missing variants")
	}
}

func TestAblationMerging(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	lab := labForTests()
	res, err := lab.RunAblationMerging(traffic.Mirai)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	merged, raw := res.Rows[0].Rules, res.Rows[1].Rules
	if merged > raw {
		t.Errorf("merged rules (%d) exceed raw cells (%d)", merged, raw)
	}
	if merged == 0 || raw == 0 {
		t.Error("empty rule counts")
	}
}

func TestAblationBoundaryPeel(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	lab := labForTests()
	res, err := lab.RunAblationBoundaryPeel(traffic.UDPDDoS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The peel must not hurt, and typically helps on the out-of-range
	// flood.
	if res.Rows[0].MacroF1+0.05 < res.Rows[1].MacroF1 {
		t.Errorf("peel (%v) materially below no-peel (%v)", res.Rows[0].MacroF1, res.Rows[1].MacroF1)
	}
}
