package experiments

import (
	"fmt"
	"testing"
	"time"

	"iguard/internal/traffic"
)

// TestDebugAllAttacks prints the full three-experiment sweep; it is the
// development harness behind cmd/iguard-eval and skipped in -short.
func TestDebugAllAttacks(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	lab := NewLab(QuickLabConfig())
	start := time.Now()
	attacks := traffic.AllAttacks()
	r5, err := lab.RunFig5(attacks)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(r5)
	r6, err := lab.RunFig6(attacks)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(r6)
	r1, err := lab.RunTable1(attacks)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(r1)
	fmt.Printf("total %v\n", time.Since(start))
}
