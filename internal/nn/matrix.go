// Package nn is a small from-scratch neural-network substrate: row-major
// matrices, fully connected layers with backpropagation, common
// activations, mean-squared-error loss, and the Adam optimiser. It
// exists so the autoencoders that guide iGuard's isolation forest can be
// trained without any dependency outside the Go standard library.
//
// Concurrency contract: training (Forward/Backward/TrainBatch/Fit)
// mutates per-layer caches and optimiser state, so a Network may be
// trained by at most one goroutine at a time; parallel SGD replicas
// must each own their own Network. Inference (Apply/Infer/Predict) is
// stateless and safe for any number of concurrent goroutines on a
// shared network that is not being trained.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("nn: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MatMul returns a·b. Panics on shape mismatch.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 { //iguard:allow(floatcompare) exact-zero sparsity skip
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT returns a·bᵀ.
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmulT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			s := 0.0
			for k := range arow {
				s += arow[k] * brow[k]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out
}

// TMatMul returns aᵀ·b.
func TMatMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: tmatmul shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow := a.Data[r*a.Cols : (r+1)*a.Cols]
		brow := b.Data[r*b.Cols : (r+1)*b.Cols]
		for i, av := range arow {
			if av == 0 { //iguard:allow(floatcompare) exact-zero sparsity skip
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// GlorotInit fills m with Glorot/Xavier-uniform initial weights for a
// layer with the given fan-in and fan-out.
func (m *Matrix) GlorotInit(r *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (2*r.Float64() - 1) * limit
	}
}
