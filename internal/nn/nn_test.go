package nn

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"iguard/internal/mathx"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At = %v", m.At(1, 2))
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Errorf("Row = %v", row)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone shares backing array")
	}
}

func TestFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if got.At(i, j) != want[i][j] {
				t.Errorf("MatMul[%d][%d] = %v, want %v", i, j, got.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestTransposedMultiplies(t *testing.T) {
	r := mathx.NewRand(5)
	a := NewMatrix(3, 4)
	b := NewMatrix(3, 5)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	// aᵀ·b via TMatMul must equal explicit transpose.
	at := NewMatrix(4, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	got := TMatMul(a, b)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("TMatMul mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	// a·cᵀ via MatMulT.
	c := NewMatrix(6, 4)
	for i := range c.Data {
		c.Data[i] = r.NormFloat64()
	}
	ct := NewMatrix(4, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			ct.Set(j, i, c.At(i, j))
		}
	}
	want2 := MatMul(a, ct)
	got2 := MatMulT(a, c)
	for i := range want2.Data {
		if math.Abs(got2.Data[i]-want2.Data[i]) > 1e-12 {
			t.Fatalf("MatMulT mismatch at %d", i)
		}
	}
}

func TestActivations(t *testing.T) {
	cases := []struct {
		act  Activation
		in   float64
		want float64
	}{
		{ReLU, -1, 0},
		{ReLU, 2, 2},
		{Identity, -3, -3},
		{Sigmoid, 0, 0.5},
		{Tanh, 0, 0},
		{LeakyReLU, -1, -0.01},
		{LeakyReLU, 2, 2},
	}
	for _, c := range cases {
		if got := c.act.apply(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v(%v) = %v, want %v", c.act, c.in, got, c.want)
		}
	}
}

func TestActivationStrings(t *testing.T) {
	for _, a := range []Activation{Identity, ReLU, Sigmoid, Tanh, LeakyReLU} {
		if a.String() == "" {
			t.Errorf("empty string for %d", int(a))
		}
	}
}

func TestSigmoidDerivative(t *testing.T) {
	// Numerical check: σ'(z) computed from output must match finite diff.
	for _, z := range []float64{-2, -0.5, 0, 0.5, 2} {
		y := Sigmoid.apply(z)
		got := Sigmoid.derivFromOutput(y)
		h := 1e-6
		want := (Sigmoid.apply(z+h) - Sigmoid.apply(z-h)) / (2 * h)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("sigmoid'(%v) = %v, want %v", z, got, want)
		}
	}
}

func TestTanhDerivative(t *testing.T) {
	for _, z := range []float64{-1, 0, 1} {
		y := Tanh.apply(z)
		got := Tanh.derivFromOutput(y)
		h := 1e-6
		want := (Tanh.apply(z+h) - Tanh.apply(z-h)) / (2 * h)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("tanh'(%v) = %v, want %v", z, got, want)
		}
	}
}

func TestDenseGradientNumerically(t *testing.T) {
	// Verify backprop gradients of a 2-layer net against finite
	// differences of the loss with respect to each weight.
	r := mathx.NewRand(17)
	net := NewNetwork(r, []int{3, 4, 2}, []Activation{Tanh, Identity}, DefaultAdam(0))
	x := FromRows([][]float64{{0.5, -0.2, 0.1}, {-0.3, 0.8, -0.5}})
	y := FromRows([][]float64{{1, 0}, {0, 1}})

	loss := func() float64 {
		out := net.Forward(x)
		l := 0.0
		for i := range out.Data {
			d := out.Data[i] - y.Data[i]
			l += d * d
		}
		return l / float64(len(out.Data))
	}

	// Analytic gradients.
	out := net.Forward(x)
	grad := NewMatrix(out.Rows, out.Cols)
	scale := 2.0 / float64(out.Cols)
	for i := range grad.Data {
		grad.Data[i] = scale * (out.Data[i] - y.Data[i])
	}
	g := grad
	type lg struct {
		gW *Matrix
		gB []float64
	}
	grads := make([]lg, len(net.Layers))
	for i := len(net.Layers) - 1; i >= 0; i-- {
		var gW *Matrix
		var gB []float64
		g, gW, gB = net.Layers[i].Backward(g)
		grads[i] = lg{gW, gB}
	}

	const h = 1e-6
	for li, layer := range net.Layers {
		for wi := range layer.W.Data {
			orig := layer.W.Data[wi]
			layer.W.Data[wi] = orig + h
			lp := loss()
			layer.W.Data[wi] = orig - h
			lm := loss()
			layer.W.Data[wi] = orig
			want := (lp - lm) / (2 * h)
			// Analytic grads are summed over batch; loss averages over
			// rows via 1/len(Data) = 1/(rows*cols) and scale handles cols,
			// so divide by rows.
			got := grads[li].gW.Data[wi] / float64(x.Rows)
			if math.Abs(got-want) > 1e-5 {
				t.Fatalf("layer %d weight %d: grad %v, want %v", li, wi, got, want)
			}
		}
		for bi := range layer.B {
			orig := layer.B[bi]
			layer.B[bi] = orig + h
			lp := loss()
			layer.B[bi] = orig - h
			lm := loss()
			layer.B[bi] = orig
			want := (lp - lm) / (2 * h)
			got := grads[li].gB[bi] / float64(x.Rows)
			if math.Abs(got-want) > 1e-5 {
				t.Fatalf("layer %d bias %d: grad %v, want %v", li, bi, got, want)
			}
		}
	}
}

func TestNetworkLearnsIdentity(t *testing.T) {
	// A small autoencoder-shaped net must drive reconstruction loss down
	// on a simple 2D manifold.
	r := mathx.NewRand(23)
	net := NewNetwork(r, []int{4, 8, 2, 8, 4}, []Activation{Tanh, Tanh, Tanh, Identity}, DefaultAdam(0.01))
	var xs [][]float64
	for i := 0; i < 256; i++ {
		a, b := r.Float64(), r.Float64()
		xs = append(xs, []float64{a, b, a + b, a - b})
	}
	first := net.Fit(xs, xs, FitOptions{Epochs: 1, BatchSize: 32, Rand: r})
	last := net.Fit(xs, xs, FitOptions{Epochs: 60, BatchSize: 32, Rand: r})
	if last >= first {
		t.Errorf("loss did not decrease: first %v, last %v", first, last)
	}
	if last > 0.01 {
		t.Errorf("final loss too high: %v", last)
	}
}

func TestFitOnEpochCallback(t *testing.T) {
	r := mathx.NewRand(2)
	net := NewNetwork(r, []int{2, 2}, []Activation{Identity}, DefaultAdam(0.01))
	calls := 0
	net.Fit([][]float64{{1, 2}}, [][]float64{{1, 2}}, FitOptions{
		Epochs: 5, BatchSize: 1, Rand: r,
		OnEpoch: func(e int, loss float64) { calls++ },
	})
	if calls != 5 {
		t.Errorf("OnEpoch calls = %d, want 5", calls)
	}
}

func TestFitEmptyInput(t *testing.T) {
	r := mathx.NewRand(2)
	net := NewNetwork(r, []int{2, 2}, []Activation{Identity}, DefaultAdam(0.01))
	if loss := net.Fit(nil, nil, FitOptions{Rand: r}); loss != 0 {
		t.Errorf("empty fit loss = %v", loss)
	}
}

func TestPredictShape(t *testing.T) {
	r := mathx.NewRand(9)
	net := NewNetwork(r, []int{3, 5, 2}, []Activation{ReLU, Identity}, DefaultAdam(0.01))
	out := net.Predict([]float64{1, 2, 3})
	if len(out) != 2 {
		t.Errorf("Predict output length = %d, want 2", len(out))
	}
}

func TestNetworkDeterminism(t *testing.T) {
	build := func() []float64 {
		r := mathx.NewRand(77)
		net := NewNetwork(r, []int{3, 4, 3}, []Activation{Tanh, Identity}, DefaultAdam(0.01))
		xs := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
		net.Fit(xs, xs, FitOptions{Epochs: 10, BatchSize: 2, Rand: r})
		return net.Predict([]float64{1, 1, 1})
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training is not deterministic under a fixed seed")
		}
	}
}

func TestGlorotInitBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := mathx.NewRand(seed)
		m := NewMatrix(10, 10)
		m.GlorotInit(r, 10, 10)
		limit := math.Sqrt(6.0 / 20.0)
		for _, v := range m.Data {
			if v < -limit || v > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentInference pins that Predict/Infer are read-only on the
// network: many goroutines scoring a trained net concurrently (the
// grid-search fan-out sharing one ensemble) must agree with the serial
// result. Run under -race to catch any state-caching regression.
func TestConcurrentInference(t *testing.T) {
	r := mathx.NewRand(51)
	net := NewNetwork(r, []int{4, 6, 4}, []Activation{Tanh, Identity}, DefaultAdam(0.01))
	var xs [][]float64
	for i := 0; i < 64; i++ {
		a, b := r.Float64(), r.Float64()
		xs = append(xs, []float64{a, b, a + b, a - b})
	}
	net.Fit(xs, xs, FitOptions{Epochs: 5, BatchSize: 16, Rand: r})

	want := make([][]float64, len(xs))
	for i, x := range xs {
		want[i] = net.Predict(x)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, x := range xs {
				got := net.Predict(x)
				for j := range got {
					if got[j] != want[i][j] {
						t.Errorf("concurrent Predict diverged at sample %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
