package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation names the supported element-wise nonlinearities.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	ReLU
	Sigmoid
	Tanh
	LeakyReLU
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case LeakyReLU:
		return "leaky_relu"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

const leakySlope = 0.01

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	case LeakyReLU:
		if x < 0 {
			return leakySlope * x
		}
		return x
	default:
		return x
	}
}

// derivFromOutput returns dσ/dz expressed in terms of the activation
// output y = σ(z) where possible (sigmoid, tanh) and of z's sign for the
// piecewise-linear activations (passed via y as well since sign(y) ==
// sign(z) for them).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	case LeakyReLU:
		if y > 0 {
			return 1
		}
		return leakySlope
	default:
		return 1
	}
}

// Dense is one fully connected layer: out = σ(in·W + b).
type Dense struct {
	In, Out int
	Act     Activation
	W       *Matrix // In×Out
	B       []float64

	// Adam state.
	mW, vW *Matrix
	mB, vB []float64

	// Cached forward activations for backprop.
	lastIn  *Matrix
	lastOut *Matrix
}

// NewDense creates a Glorot-initialised dense layer.
func NewDense(r *rand.Rand, in, out int, act Activation) *Dense {
	d := &Dense{
		In: in, Out: out, Act: act,
		W:  NewMatrix(in, out),
		B:  make([]float64, out),
		mW: NewMatrix(in, out),
		vW: NewMatrix(in, out),
		mB: make([]float64, out),
		vB: make([]float64, out),
	}
	d.W.GlorotInit(r, in, out)
	return d
}

// Apply computes the layer output for a batch without touching the
// cached training state. Because it reads only the (frozen-during-
// inference) weights and writes only freshly allocated buffers, any
// number of goroutines may Apply the same layer concurrently.
func (d *Dense) Apply(x *Matrix) *Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense forward: input has %d features, layer expects %d", x.Cols, d.In))
	}
	z := MatMul(x, d.W)
	for i := 0; i < z.Rows; i++ {
		row := z.Row(i)
		for j := range row {
			row[j] = d.Act.apply(row[j] + d.B[j])
		}
	}
	return z
}

// Forward computes the layer output for a batch and caches the
// intermediates needed by Backward. Training-path only: the cache is
// per-layer mutable state, so a network may be trained by at most one
// goroutine at a time (concurrent SGD replicas must each own their own
// Network).
func (d *Dense) Forward(x *Matrix) *Matrix {
	z := d.Apply(x)
	d.lastIn = x
	d.lastOut = z
	return z
}

// Backward consumes dL/dOut, accumulates parameter gradients into gW/gB
// and returns dL/dIn.
func (d *Dense) Backward(gradOut *Matrix) (gradIn, gW *Matrix, gB []float64) {
	// δ = gradOut ⊙ σ'(z), using cached outputs.
	delta := NewMatrix(gradOut.Rows, gradOut.Cols)
	for i := range delta.Data {
		delta.Data[i] = gradOut.Data[i] * d.Act.derivFromOutput(d.lastOut.Data[i])
	}
	gW = TMatMul(d.lastIn, delta)
	gB = make([]float64, d.Out)
	for i := 0; i < delta.Rows; i++ {
		row := delta.Row(i)
		for j := range row {
			gB[j] += row[j]
		}
	}
	gradIn = MatMulT(delta, d.W)
	return gradIn, gW, gB
}

// AdamConfig holds the optimiser hyperparameters.
type AdamConfig struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
}

// DefaultAdam returns the standard Adam configuration with the given
// learning rate.
func DefaultAdam(lr float64) AdamConfig {
	return AdamConfig{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// adamStep applies one Adam update to (w, m, v) given gradient g at step t.
func adamStep(cfg AdamConfig, t int, w, g, m, v []float64) {
	b1t := 1 - math.Pow(cfg.Beta1, float64(t))
	b2t := 1 - math.Pow(cfg.Beta2, float64(t))
	for i := range w {
		m[i] = cfg.Beta1*m[i] + (1-cfg.Beta1)*g[i]
		v[i] = cfg.Beta2*v[i] + (1-cfg.Beta2)*g[i]*g[i]
		mHat := m[i] / b1t
		vHat := v[i] / b2t
		w[i] -= cfg.LR * mHat / (math.Sqrt(vHat) + cfg.Epsilon)
	}
}

// Update applies one Adam step to the layer parameters, with gradients
// averaged over batch rows.
func (d *Dense) Update(cfg AdamConfig, step, batch int, gW *Matrix, gB []float64) {
	inv := 1.0 / float64(batch)
	for i := range gW.Data {
		gW.Data[i] *= inv
	}
	for i := range gB {
		gB[i] *= inv
	}
	adamStep(cfg, step, d.W.Data, gW.Data, d.mW.Data, d.vW.Data)
	adamStep(cfg, step, d.B, gB, d.mB, d.vB)
}

// Network is a feed-forward stack of dense layers trained with MSE loss.
type Network struct {
	Layers []*Dense
	cfg    AdamConfig
	step   int
}

// NewNetwork builds a network from layer sizes and per-layer activations
// (len(acts) == len(sizes)-1).
func NewNetwork(r *rand.Rand, sizes []int, acts []Activation, cfg AdamConfig) *Network {
	if len(sizes) < 2 {
		panic("nn: network needs at least input and output sizes")
	}
	if len(acts) != len(sizes)-1 {
		panic(fmt.Sprintf("nn: %d activations for %d layers", len(acts), len(sizes)-1))
	}
	net := &Network{cfg: cfg}
	for i := 0; i < len(sizes)-1; i++ {
		net.Layers = append(net.Layers, NewDense(r, sizes[i], sizes[i+1], acts[i]))
	}
	return net
}

// Forward runs a batch through every layer, caching per-layer
// intermediates for Backward. Training-path only; see Dense.Forward
// for the single-trainer contract.
func (n *Network) Forward(x *Matrix) *Matrix {
	out := x
	for _, l := range n.Layers {
		out = l.Forward(out)
	}
	return out
}

// Infer runs a batch through every layer without touching the training
// caches; it is safe to call concurrently from any number of
// goroutines as long as no goroutine is training the network.
func (n *Network) Infer(x *Matrix) *Matrix {
	out := x
	for _, l := range n.Layers {
		out = l.Apply(out)
	}
	return out
}

// Predict runs a single sample through the network. It uses the
// stateless inference path, so concurrent Predict calls on a shared
// trained network are race-free.
func (n *Network) Predict(x []float64) []float64 {
	out := n.Infer(FromRows([][]float64{x}))
	res := make([]float64, out.Cols)
	copy(res, out.Row(0))
	return res
}

// TrainBatch performs one forward/backward/update pass on a batch with
// target output y and returns the batch MSE loss.
func (n *Network) TrainBatch(x, y *Matrix) float64 {
	out := n.Forward(x)
	if out.Rows != y.Rows || out.Cols != y.Cols {
		panic(fmt.Sprintf("nn: target shape %dx%d does not match output %dx%d", y.Rows, y.Cols, out.Rows, out.Cols))
	}
	// dL/dOut for L = mean((out-y)²) over all elements: 2(out-y)/N.
	grad := NewMatrix(out.Rows, out.Cols)
	loss := 0.0
	scale := 2.0 / float64(out.Cols)
	for i := range grad.Data {
		diff := out.Data[i] - y.Data[i]
		loss += diff * diff
		grad.Data[i] = scale * diff
	}
	loss /= float64(len(out.Data))

	n.step++
	type grads struct {
		gW *Matrix
		gB []float64
	}
	layerGrads := make([]grads, len(n.Layers))
	g := grad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		var gW *Matrix
		var gB []float64
		g, gW, gB = n.Layers[i].Backward(g)
		layerGrads[i] = grads{gW, gB}
	}
	for i, l := range n.Layers {
		l.Update(n.cfg, n.step, x.Rows, layerGrads[i].gW, layerGrads[i].gB)
	}
	return loss
}

// FitOptions controls Fit.
type FitOptions struct {
	Epochs    int
	BatchSize int
	// Shuffle source; required.
	Rand *rand.Rand
	// Optional per-epoch callback (epoch index, mean loss).
	OnEpoch func(epoch int, loss float64)
	// Stop, when non-nil, is probed before every epoch; a true return
	// abandons the remaining epochs (used for context cancellation —
	// the caller decides what a partially trained network means).
	Stop func() bool
}

// Fit trains the network as an autoencoder-style regressor mapping
// inputs x to targets y (pass x twice for a plain autoencoder). It
// returns the final epoch's mean loss.
func (n *Network) Fit(x, y [][]float64, opts FitOptions) float64 {
	if len(x) == 0 {
		return 0
	}
	if len(x) != len(y) {
		panic(fmt.Sprintf("nn: fit length mismatch: %d inputs vs %d targets", len(x), len(y)))
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 32
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 1
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	// Per-call scratch: batches are assembled into these two reusable
	// matrices, so steady-state training allocates nothing per batch
	// and concurrent Fit calls on different networks (parallel SGD
	// replicas) never share buffers.
	bx := NewMatrix(opts.BatchSize, len(x[0]))
	by := NewMatrix(opts.BatchSize, len(y[0]))
	finalLoss := 0.0
	for e := 0; e < opts.Epochs; e++ {
		if opts.Stop != nil && opts.Stop() {
			break
		}
		if opts.Rand != nil {
			opts.Rand.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		}
		totalLoss, batches := 0.0, 0
		for start := 0; start < len(idx); start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			rows := end - start
			bxv := &Matrix{Rows: rows, Cols: bx.Cols, Data: bx.Data[:rows*bx.Cols]}
			byv := &Matrix{Rows: rows, Cols: by.Cols, Data: by.Data[:rows*by.Cols]}
			for bi, i := range idx[start:end] {
				copy(bxv.Row(bi), x[i])
				copy(byv.Row(bi), y[i])
			}
			totalLoss += n.TrainBatch(bxv, byv)
			batches++
		}
		finalLoss = totalLoss / float64(batches)
		if opts.OnEpoch != nil {
			opts.OnEpoch(e, finalLoss)
		}
	}
	return finalLoss
}
