// Package baseline implements the unsupervised anomaly detectors the
// iGuard paper compares as guidance candidates in Appendix A (Fig. 10):
// k-nearest-neighbours distance, PCA reconstruction error, and X-means
// (k-means with BIC-driven model selection) distance. Together with
// package iforest and package autoencoder these cover the full
// candidate panel {kNN, PCA, iForest, X-means, VAE, Magnifier}.
package baseline

import (
	"math"
	"sort"

	"iguard/internal/mathx"
)

// Scorer is an unsupervised anomaly detector: Fit on benign data, then
// Score unseen samples (higher = more anomalous).
type Scorer interface {
	Name() string
	Fit(x [][]float64)
	Score(x []float64) float64
}

// KNN scores a sample by its mean distance to the K nearest training
// points. MaxRef caps the retained reference set (sampled uniformly) to
// bound query cost.
type KNN struct {
	K      int
	MaxRef int
	Seed   int64
	ref    [][]float64
}

// NewKNN returns a kNN scorer with the given neighbourhood size.
func NewKNN(k int) *KNN { return &KNN{K: k, MaxRef: 2048, Seed: 1} }

// Name implements Scorer.
func (m *KNN) Name() string { return "kNN" }

// Fit retains (a sample of) the training set.
func (m *KNN) Fit(x [][]float64) {
	if m.K <= 0 {
		m.K = 5
	}
	if m.MaxRef > 0 && len(x) > m.MaxRef {
		r := mathx.NewRand(m.Seed)
		idx := mathx.SampleWithoutReplacement(r, len(x), m.MaxRef)
		m.ref = make([][]float64, len(idx))
		for i, j := range idx {
			m.ref[i] = x[j]
		}
		return
	}
	m.ref = x
}

// Score implements Scorer: the mean of the K smallest distances.
func (m *KNN) Score(x []float64) float64 {
	if len(m.ref) == 0 {
		return 0
	}
	dists := make([]float64, len(m.ref))
	for i, rpt := range m.ref {
		dists[i] = mathx.EuclideanDistance(x, rpt)
	}
	sort.Float64s(dists)
	k := m.K
	if k > len(dists) {
		k = len(dists)
	}
	return mathx.Mean(dists[:k])
}

// PCA scores a sample by its reconstruction error after projection onto
// the top Components principal directions of the benign data.
type PCA struct {
	Components int
	mean       []float64
	comps      [][]float64 // each unit-norm, length dim
}

// NewPCA returns a PCA scorer keeping the given number of components.
func NewPCA(components int) *PCA { return &PCA{Components: components} }

// Name implements Scorer.
func (m *PCA) Name() string { return "PCA" }

// Fit computes the mean and the leading principal components by power
// iteration with deflation on the covariance matrix.
func (m *PCA) Fit(x [][]float64) {
	if len(x) == 0 {
		return
	}
	dim := len(x[0])
	if m.Components <= 0 || m.Components > dim {
		m.Components = maxInt(1, dim/2)
	}
	m.mean = make([]float64, dim)
	for _, row := range x {
		for j, v := range row {
			m.mean[j] += v
		}
	}
	for j := range m.mean {
		m.mean[j] /= float64(len(x))
	}
	// Covariance matrix (dim is small — 13 features).
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, row := range x {
		for i := 0; i < dim; i++ {
			di := row[i] - m.mean[i]
			for j := i; j < dim; j++ {
				cov[i][j] += di * (row[j] - m.mean[j])
			}
		}
	}
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			cov[i][j] /= float64(len(x))
			cov[j][i] = cov[i][j]
		}
	}
	m.comps = nil
	r := mathx.NewRand(2)
	work := cov
	for c := 0; c < m.Components; c++ {
		v := powerIteration(work, r, 200)
		if v == nil {
			break
		}
		m.comps = append(m.comps, v)
		// Deflate: work -= λ v vᵀ.
		lambda := rayleigh(work, v)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				work[i][j] -= lambda * v[i] * v[j]
			}
		}
	}
}

func powerIteration(a [][]float64, r interface{ NormFloat64() float64 }, iters int) []float64 {
	dim := len(a)
	v := make([]float64, dim)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	normalise(v)
	for it := 0; it < iters; it++ {
		next := matVec(a, v)
		n := norm(next)
		if n < 1e-12 {
			return nil
		}
		for i := range next {
			next[i] /= n
		}
		v = next
	}
	return v
}

func matVec(a [][]float64, v []float64) []float64 {
	out := make([]float64, len(a))
	for i, row := range a {
		s := 0.0
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

func rayleigh(a [][]float64, v []float64) float64 {
	av := matVec(a, v)
	s := 0.0
	for i := range v {
		s += v[i] * av[i]
	}
	return s
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalise(v []float64) {
	n := norm(v)
	if n == 0 { //iguard:allow(floatcompare) exact-zero sentinel
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// Score implements Scorer: the L2 distance between x and its projection
// onto the principal subspace.
func (m *PCA) Score(x []float64) float64 {
	if m.mean == nil {
		return 0
	}
	centred := make([]float64, len(x))
	for i := range x {
		centred[i] = x[i] - m.mean[i]
	}
	recon := make([]float64, len(x))
	for _, comp := range m.comps {
		dot := 0.0
		for i := range centred {
			dot += centred[i] * comp[i]
		}
		for i := range recon {
			recon[i] += dot * comp[i]
		}
	}
	resid := 0.0
	for i := range centred {
		d := centred[i] - recon[i]
		resid += d * d
	}
	return math.Sqrt(resid)
}

// XMeans clusters the benign data with k-means, choosing k by BIC as in
// X-means, and scores a sample by its distance to the nearest centroid.
type XMeans struct {
	MaxK int
	Seed int64
	cent [][]float64
}

// NewXMeans returns an X-means scorer with the given cluster cap.
func NewXMeans(maxK int) *XMeans { return &XMeans{MaxK: maxK, Seed: 1} }

// Name implements Scorer.
func (m *XMeans) Name() string { return "X-means" }

// Fit runs X-means: start with one cluster and greedily split clusters
// while the Bayesian information criterion improves, up to MaxK.
func (m *XMeans) Fit(x [][]float64) {
	if len(x) == 0 {
		return
	}
	if m.MaxK <= 0 {
		m.MaxK = 8
	}
	r := mathx.NewRand(m.Seed)
	cents := [][]float64{meanOf(x)}
	for len(cents) < m.MaxK {
		assign := assignAll(x, cents)
		improved := false
		var next [][]float64
		for ci := range cents {
			var members [][]float64
			for i, a := range assign {
				if a == ci {
					members = append(members, x[i])
				}
			}
			if len(members) < 4 {
				next = append(next, cents[ci])
				continue
			}
			// Try a 2-means split of this cluster.
			kids := kmeans(members, 2, r, 20)
			if len(kids) < 2 {
				next = append(next, cents[ci])
				continue
			}
			if bic(members, kids) > bic(members, [][]float64{cents[ci]}) {
				next = append(next, kids...)
				improved = true
			} else {
				next = append(next, cents[ci])
			}
		}
		cents = next
		if !improved {
			break
		}
	}
	// Final refinement pass.
	m.cent = kmeansFrom(x, cents, 20)
}

func meanOf(x [][]float64) []float64 {
	out := make([]float64, len(x[0]))
	for _, row := range x {
		for j, v := range row {
			out[j] += v
		}
	}
	for j := range out {
		out[j] /= float64(len(x))
	}
	return out
}

func assignAll(x [][]float64, cents [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		best, bestD := 0, math.Inf(1)
		for ci, c := range cents {
			if d := mathx.EuclideanDistance(row, c); d < bestD {
				best, bestD = ci, d
			}
		}
		out[i] = best
	}
	return out
}

// kmeans runs Lloyd's algorithm with random initial centroids.
func kmeans(x [][]float64, k int, r interface{ Intn(int) int }, iters int) [][]float64 {
	if len(x) < k {
		return nil
	}
	cents := make([][]float64, k)
	seen := map[int]bool{}
	for i := 0; i < k; i++ {
		j := r.Intn(len(x))
		for seen[j] {
			j = (j + 1) % len(x)
		}
		seen[j] = true
		cents[i] = append([]float64(nil), x[j]...)
	}
	return kmeansFrom(x, cents, iters)
}

// kmeansFrom refines the given centroids with Lloyd iterations.
func kmeansFrom(x [][]float64, cents [][]float64, iters int) [][]float64 {
	dim := len(x[0])
	for it := 0; it < iters; it++ {
		assign := assignAll(x, cents)
		sums := make([][]float64, len(cents))
		counts := make([]int, len(cents))
		for i := range sums {
			sums[i] = make([]float64, dim)
		}
		for i, a := range assign {
			counts[a]++
			for j, v := range x[i] {
				sums[a][j] += v
			}
		}
		moved := false
		for ci := range cents {
			if counts[ci] == 0 {
				continue
			}
			for j := range sums[ci] {
				nv := sums[ci][j] / float64(counts[ci])
				if nv != cents[ci][j] { //iguard:allow(floatcompare) k-means convergence: any movement counts
					moved = true
				}
				cents[ci][j] = nv
			}
		}
		if !moved {
			break
		}
	}
	return cents
}

// bic computes the Bayesian information criterion of a spherical
// Gaussian mixture fit (higher is better), as used by X-means to accept
// or reject cluster splits.
func bic(x [][]float64, cents [][]float64) float64 {
	n := float64(len(x))
	if n == 0 { //iguard:allow(floatcompare) exact-zero sentinel
		return math.Inf(-1)
	}
	dim := float64(len(x[0]))
	k := float64(len(cents))
	assign := assignAll(x, cents)
	// Pooled spherical variance estimate.
	ss := 0.0
	for i, a := range assign {
		d := mathx.EuclideanDistance(x[i], cents[a])
		ss += d * d
	}
	denom := dim * math.Max(n-k, 1)
	variance := ss / denom
	if variance < 1e-12 {
		variance = 1e-12
	}
	counts := make([]float64, len(cents))
	for _, a := range assign {
		counts[a]++
	}
	ll := 0.0
	for _, cn := range counts {
		if cn == 0 { //iguard:allow(floatcompare) exact-zero sentinel
			continue
		}
		ll += cn*math.Log(cn) - cn*math.Log(n) -
			cn*dim/2*math.Log(2*math.Pi*variance) -
			(cn-1)*dim/2
	}
	params := k*(dim+1) - 1
	return ll - params/2*math.Log(n)
}

// Score implements Scorer: distance to the nearest centroid.
func (m *XMeans) Score(x []float64) float64 {
	if len(m.cent) == 0 {
		return 0
	}
	best := math.Inf(1)
	for _, c := range m.cent {
		if d := mathx.EuclideanDistance(x, c); d < best {
			best = d
		}
	}
	return best
}

// Centroids returns the fitted centroids (for inspection and tests).
func (m *XMeans) Centroids() [][]float64 { return m.cent }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
