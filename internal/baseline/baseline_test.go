package baseline

import (
	"math"
	"testing"

	"iguard/internal/mathx"
)

func twoClusters(seed int64, n, dim int) (benign, attack [][]float64) {
	r := mathx.NewRand(seed)
	for i := 0; i < n; i++ {
		b := make([]float64, dim)
		a := make([]float64, dim)
		for j := range b {
			b[j] = 0.5 + 0.05*r.NormFloat64()
			a[j] = 3.0 + 0.05*r.NormFloat64()
		}
		benign = append(benign, b)
		attack = append(attack, a)
	}
	return benign, attack
}

func checkSeparation(t *testing.T, s Scorer, benign, attack [][]float64) {
	t.Helper()
	s.Fit(benign)
	bs, as := 0.0, 0.0
	for _, x := range benign {
		bs += s.Score(x)
	}
	for _, x := range attack {
		as += s.Score(x)
	}
	bs /= float64(len(benign))
	as /= float64(len(attack))
	if as <= 2*bs {
		t.Errorf("%s: attack score %v not well above benign %v", s.Name(), as, bs)
	}
}

func TestKNNSeparates(t *testing.T) {
	benign, attack := twoClusters(1, 200, 4)
	checkSeparation(t, NewKNN(5), benign, attack)
}

func TestKNNEmptyFit(t *testing.T) {
	m := NewKNN(3)
	if got := m.Score([]float64{1}); got != 0 {
		t.Errorf("unfitted score = %v", got)
	}
}

func TestKNNSubsamples(t *testing.T) {
	benign, _ := twoClusters(2, 3000, 3)
	m := NewKNN(5)
	m.MaxRef = 100
	m.Fit(benign)
	if len(m.ref) != 100 {
		t.Errorf("reference size = %d, want 100", len(m.ref))
	}
}

func TestKNNZeroKDefaults(t *testing.T) {
	m := NewKNN(0)
	benign, _ := twoClusters(3, 50, 2)
	m.Fit(benign)
	if m.K <= 0 {
		t.Error("K not defaulted")
	}
	// Score of a training point is small but defined.
	if s := m.Score(benign[0]); math.IsNaN(s) {
		t.Error("NaN score")
	}
}

func TestKNNKLargerThanRef(t *testing.T) {
	m := NewKNN(100)
	m.Fit([][]float64{{0}, {1}})
	if s := m.Score([]float64{0.5}); math.IsNaN(s) || s <= 0 {
		t.Errorf("score = %v", s)
	}
}

func TestPCASeparates(t *testing.T) {
	// Benign data on a 1-D manifold in 4-D; attacks off-manifold.
	r := mathx.NewRand(4)
	var benign, attack [][]float64
	for i := 0; i < 300; i++ {
		a := r.Float64()
		benign = append(benign, []float64{a, 2 * a, -a, 0.5 * a})
		attack = append(attack, []float64{r.Float64(), r.Float64(), r.Float64() + 1, r.Float64() - 1})
	}
	checkSeparation(t, NewPCA(1), benign, attack)
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	r := mathx.NewRand(5)
	var x [][]float64
	for i := 0; i < 200; i++ {
		x = append(x, []float64{r.NormFloat64(), 2 * r.NormFloat64(), 0.5 * r.NormFloat64()})
	}
	m := NewPCA(2)
	m.Fit(x)
	if len(m.comps) != 2 {
		t.Fatalf("components = %d", len(m.comps))
	}
	for i, c := range m.comps {
		if math.Abs(norm(c)-1) > 1e-6 {
			t.Errorf("component %d norm = %v", i, norm(c))
		}
	}
	dot := 0.0
	for i := range m.comps[0] {
		dot += m.comps[0][i] * m.comps[1][i]
	}
	if math.Abs(dot) > 1e-3 {
		t.Errorf("components not orthogonal: dot = %v", dot)
	}
}

func TestPCAFirstComponentIsMaxVariance(t *testing.T) {
	// Variance dominated by axis 1.
	r := mathx.NewRand(6)
	var x [][]float64
	for i := 0; i < 500; i++ {
		x = append(x, []float64{0.1 * r.NormFloat64(), 5 * r.NormFloat64(), 0.1 * r.NormFloat64()})
	}
	m := NewPCA(1)
	m.Fit(x)
	c := m.comps[0]
	if math.Abs(c[1]) < 0.99 {
		t.Errorf("first component = %v, want aligned with axis 1", c)
	}
}

func TestPCAEmptyAndUnfitted(t *testing.T) {
	m := NewPCA(2)
	m.Fit(nil)
	if got := m.Score([]float64{1, 2}); got != 0 {
		t.Errorf("unfitted score = %v", got)
	}
}

func TestPCAScoreZeroOnManifold(t *testing.T) {
	var x [][]float64
	for i := 0; i < 100; i++ {
		a := float64(i) / 100
		x = append(x, []float64{a, 2 * a})
	}
	m := NewPCA(1)
	m.Fit(x)
	if s := m.Score([]float64{0.5, 1.0}); s > 1e-6 {
		t.Errorf("on-manifold score = %v, want ~0", s)
	}
}

func TestXMeansSeparates(t *testing.T) {
	benign, attack := twoClusters(7, 200, 3)
	checkSeparation(t, NewXMeans(8), benign, attack)
}

func TestXMeansFindsTwoClusters(t *testing.T) {
	// Two well-separated benign modes: X-means should use >= 2 centroids
	// and score both modes low.
	r := mathx.NewRand(8)
	var x [][]float64
	for i := 0; i < 200; i++ {
		x = append(x, []float64{0 + 0.05*r.NormFloat64(), 0 + 0.05*r.NormFloat64()})
		x = append(x, []float64{5 + 0.05*r.NormFloat64(), 5 + 0.05*r.NormFloat64()})
	}
	m := NewXMeans(8)
	m.Fit(x)
	if len(m.Centroids()) < 2 {
		t.Errorf("centroids = %d, want >= 2", len(m.Centroids()))
	}
	if s := m.Score([]float64{0, 0}); s > 0.5 {
		t.Errorf("mode A score = %v", s)
	}
	if s := m.Score([]float64{5, 5}); s > 0.5 {
		t.Errorf("mode B score = %v", s)
	}
	if s := m.Score([]float64{2.5, 2.5}); s < 1 {
		t.Errorf("between-modes score = %v, want large", s)
	}
}

func TestXMeansRespectsMaxK(t *testing.T) {
	r := mathx.NewRand(9)
	var x [][]float64
	for i := 0; i < 300; i++ {
		x = append(x, []float64{r.Float64() * 100, r.Float64() * 100})
	}
	m := NewXMeans(4)
	m.Fit(x)
	if len(m.Centroids()) > 4 {
		t.Errorf("centroids = %d, want <= 4", len(m.Centroids()))
	}
}

func TestXMeansEmptyFit(t *testing.T) {
	m := NewXMeans(4)
	m.Fit(nil)
	if got := m.Score([]float64{1}); got != 0 {
		t.Errorf("unfitted score = %v", got)
	}
}

func TestXMeansTinyDataset(t *testing.T) {
	m := NewXMeans(8)
	m.Fit([][]float64{{1, 1}, {2, 2}})
	if len(m.Centroids()) == 0 {
		t.Error("no centroids on tiny dataset")
	}
}

func TestScorerNames(t *testing.T) {
	if NewKNN(3).Name() != "kNN" || NewPCA(2).Name() != "PCA" || NewXMeans(4).Name() != "X-means" {
		t.Error("unexpected scorer names")
	}
}
