package fed

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"iguard/internal/features"
)

// fakeApplier records propagated operations; it stands in for
// *serve.Server so these tests pin the federation layer in isolation.
type fakeApplier struct {
	mu        sync.Mutex
	installed map[features.FlowKey]bool
	installs  int
	removes   int
	flushes   int
}

func newFakeApplier() *fakeApplier {
	return &fakeApplier{installed: map[features.FlowKey]bool{}}
}

func (f *fakeApplier) ApplyInstall(key features.FlowKey) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key = key.Canonical()
	fresh := !f.installed[key]
	f.installed[key] = true
	f.installs++
	return fresh, nil
}

func (f *fakeApplier) ApplyRemove(key features.FlowKey) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key = key.Canonical()
	had := f.installed[key]
	delete(f.installed, key)
	f.removes++
	return had, nil
}

func (f *fakeApplier) ApplyFlush() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.installed)
	f.installed = map[features.FlowKey]bool{}
	f.flushes++
	return n, nil
}

func (f *fakeApplier) snapshot() (installs, removes, flushes, resident int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.installs, f.removes, f.flushes, len(f.installed)
}

// waitFor polls cond with a generous deadline; the tests are
// event-driven so the deadline only bounds genuine failures.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// startHub binds a loopback hub and registers its teardown.
func startHub(t *testing.T, cfg HubConfig) *Hub {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := NewHub(ln, cfg)
	go func() {
		if err := h.Serve(); err != nil {
			t.Errorf("hub serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		if err := h.Close(); err != nil {
			t.Logf("hub close: %v", err)
		}
	})
	return h
}

// testNode is one federated node: a fake applier plus its agent and an
// apply-notification channel.
type testNode struct {
	applier *fakeApplier
	agent   *Agent
	applied chan Frame
}

func startNode(t *testing.T, addr string, id uint64, mutate func(*AgentConfig)) *testNode {
	t.Helper()
	n := &testNode{applier: newFakeApplier(), applied: make(chan Frame, 64)}
	cfg := AgentConfig{
		Addr:       addr,
		NodeID:     id,
		Apply:      n.applier,
		BackoffMin: time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
		Keepalive:  -1, // cadence pinned separately with a fake clock
		OnApply: func(ty Type, key features.FlowKey) {
			n.applied <- Frame{Type: ty, Key: key}
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	a, err := NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.agent = a
	a.Start()
	t.Cleanup(a.Close)
	return n
}

func (n *testNode) waitApplied(t *testing.T, what string) Frame {
	t.Helper()
	select {
	case f := <-n.applied:
		return f
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return Frame{}
	}
}

// TestFederationPropagatesInstall pins the tentpole behaviour: an
// install announced by node A reaches every other node in one hub
// broadcast round and never echoes back to A.
func TestFederationPropagatesInstall(t *testing.T) {
	hub := startHub(t, HubConfig{NodeID: 100})
	addr := hub.Addr().String()
	a := startNode(t, addr, 1, nil)
	b := startNode(t, addr, 2, nil)
	c := startNode(t, addr, 3, nil)
	waitFor(t, "three nodes joined", func() bool { return hub.Stats().Nodes == 3 })

	key := testKey(1)
	a.agent.Announce(key)

	for _, n := range []*testNode{b, c} {
		got := n.waitApplied(t, "propagated install")
		if got.Type != TInstall || got.Key != key.Canonical() {
			t.Fatalf("applied %v %v, want install %v", got.Type, got.Key, key.Canonical())
		}
		if _, _, _, resident := n.applier.snapshot(); resident != 1 {
			t.Fatalf("resident=%d want 1", resident)
		}
	}
	// Loop-free: the origin never receives its own announcement back.
	if installs, _, _, _ := a.applier.snapshot(); installs != 0 {
		t.Fatalf("origin node applied %d installs, want 0", installs)
	}
	st := hub.Stats()
	if st.Announces != 1 || st.DupAnnounces != 0 || st.InstallsSent != 2 || st.Entries != 1 {
		t.Fatalf("hub stats %+v: want announces=1 dup=0 installsSent=2 entries=1", st)
	}
}

// TestFederationDedupsDuplicateAnnouncements pins the M-node dedup
// guarantee: when every node announces the same flow, each remaining
// node installs it exactly once and the hub counts M-1 duplicates.
func TestFederationDedupsDuplicateAnnouncements(t *testing.T) {
	const M = 4
	hub := startHub(t, HubConfig{})
	addr := hub.Addr().String()
	nodes := make([]*testNode, M)
	for i := range nodes {
		nodes[i] = startNode(t, addr, uint64(i+1), nil)
	}
	waitFor(t, "all nodes joined", func() bool { return hub.Stats().Nodes == M })

	key := testKey(5)
	nodes[0].agent.Announce(key)
	for _, n := range nodes[1:] {
		if got := n.waitApplied(t, "first propagation"); got.Type != TInstall {
			t.Fatalf("applied %v, want install", got.Type)
		}
	}
	// Every other node now announces the same key (as real controllers
	// would if the attacker hits all vantage points).
	for _, n := range nodes[1:] {
		n.agent.Announce(key)
	}
	waitFor(t, "hub dedup of duplicate announcements", func() bool {
		return hub.Stats().DupAnnounces == M-1
	})

	st := hub.Stats()
	if st.Announces != 1 || st.Entries != 1 || st.InstallsSent != M-1 {
		t.Fatalf("hub stats %+v: want announces=1 entries=1 installsSent=%d", st, M-1)
	}
	if installs, _, _, _ := nodes[0].applier.snapshot(); installs != 0 {
		t.Fatalf("origin applied %d installs, want 0", installs)
	}
	for i, n := range nodes[1:] {
		if installs, _, _, resident := n.applier.snapshot(); installs != 1 || resident != 1 {
			t.Fatalf("node %d: installs=%d resident=%d, want exactly 1 and 1", i+2, installs, resident)
		}
	}
}

// TestFederationReplaysEntriesOnJoin pins resynchronisation: a node
// that joins (or rejoins) after entries exist receives the whole view.
func TestFederationReplaysEntriesOnJoin(t *testing.T) {
	hub := startHub(t, HubConfig{})
	addr := hub.Addr().String()
	a := startNode(t, addr, 1, nil)
	waitFor(t, "node A joined", func() bool { return hub.Stats().Nodes == 1 })

	k1, k2 := testKey(11), testKey(12)
	a.agent.Announce(k1)
	a.agent.Announce(k2)
	waitFor(t, "hub holds both entries", func() bool { return hub.Stats().Entries == 2 })

	// A later joiner converges via the handshake replay alone.
	b := startNode(t, addr, 2, nil)
	got := map[features.FlowKey]bool{}
	got[b.waitApplied(t, "replayed install 1").Key] = true
	got[b.waitApplied(t, "replayed install 2").Key] = true
	if !got[k1.Canonical()] || !got[k2.Canonical()] {
		t.Fatalf("replay delivered %v, want %v and %v", got, k1.Canonical(), k2.Canonical())
	}
}

// TestFederationRemoveAndFlushPropagate pins the withdrawal paths,
// including that a removal clears the dedup entry so the key can be
// re-announced later.
func TestFederationRemoveAndFlushPropagate(t *testing.T) {
	hub := startHub(t, HubConfig{})
	addr := hub.Addr().String()
	a := startNode(t, addr, 1, nil)
	b := startNode(t, addr, 2, nil)
	waitFor(t, "both nodes joined", func() bool { return hub.Stats().Nodes == 2 })

	key := testKey(21)
	a.agent.Announce(key)
	if got := b.waitApplied(t, "install"); got.Type != TInstall {
		t.Fatalf("applied %v, want install", got.Type)
	}

	a.agent.AnnounceRemove(key)
	if got := b.waitApplied(t, "remove"); got.Type != TRemove || got.Key != key.Canonical() {
		t.Fatalf("applied %v %v, want remove of %v", got.Type, got.Key, key.Canonical())
	}
	waitFor(t, "hub entry withdrawn", func() bool { return hub.Stats().Entries == 0 })

	// The dedup slot is free again: a re-announcement propagates.
	a.agent.Announce(key)
	if got := b.waitApplied(t, "re-install"); got.Type != TInstall {
		t.Fatalf("applied %v, want install", got.Type)
	}

	a.agent.AnnounceFlush()
	if got := b.waitApplied(t, "flush"); got.Type != TFlush {
		t.Fatalf("applied %v, want flush", got.Type)
	}
	if _, _, flushes, resident := b.applier.snapshot(); flushes != 1 || resident != 0 {
		t.Fatalf("flushes=%d resident=%d, want 1 and 0", flushes, resident)
	}
	if st := hub.Stats(); st.Entries != 0 {
		t.Fatalf("hub entries=%d after flush, want 0", st.Entries)
	}
}

// TestAgentSurvivesHubDeathAndReconnects pins degradation: a dead hub
// leaves the node fully operational (announcements drop instead of
// blocking), and a revived hub is rejoined and resynchronised.
func TestAgentSurvivesHubDeathAndReconnects(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hub1 := NewHub(ln, HubConfig{})
	go func() {
		if err := hub1.Serve(); err != nil {
			t.Errorf("hub1 serve: %v", err)
		}
	}()

	n := startNode(t, addr, 1, func(c *AgentConfig) { c.OutboxDepth = 8 })
	waitFor(t, "agent connected", func() bool { return n.agent.Stats().Connected })

	if err := hub1.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "agent disconnected", func() bool { return !n.agent.Stats().Connected })

	// Standalone degradation: Announce never blocks; overflow past the
	// outbox depth is counted as drops.
	for i := 0; i < 64; i++ {
		n.agent.Announce(testKey(byte(i)))
	}
	if st := n.agent.Stats(); st.OutboxDrops == 0 {
		t.Fatalf("expected outbox drops with hub down, got %+v", st)
	}

	// Revive the hub on the same address: the agent's backoff loop
	// finds it and the session resumes.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hub2 := NewHub(ln2, HubConfig{})
	go func() {
		if err := hub2.Serve(); err != nil {
			t.Errorf("hub2 serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		if err := hub2.Close(); err != nil {
			t.Logf("hub2 close: %v", err)
		}
	})
	waitFor(t, "agent reconnected", func() bool { return n.agent.Stats().Connected })
	if st := n.agent.Stats(); st.Sessions < 2 {
		t.Fatalf("sessions=%d, want >=2 after reconnect", st.Sessions)
	}
}

// TestAgentBackoffFakeClock pins the reconnect schedule exactly: dial
// attempts happen at t=0 and then after 100ms, 200ms, 400ms, 400ms —
// doubling from BackoffMin and capping at BackoffMax — with no attempt
// before its deadline.
func TestAgentBackoffFakeClock(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	attempts := make(chan int)
	count := 0
	agent, err := NewAgent(AgentConfig{
		Addr:   "hub.invalid:1",
		NodeID: 1,
		Apply:  newFakeApplier(),
		Dial: func(string) (net.Conn, error) {
			count++
			attempts <- count
			return nil, fmt.Errorf("synthetic dial failure %d", count)
		},
		BackoffMin: 100 * time.Millisecond,
		BackoffMax: 400 * time.Millisecond,
		Clock:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	agent.Start()
	t.Cleanup(agent.Close)

	wait := func(want int) {
		t.Helper()
		select {
		case got := <-attempts:
			if got != want {
				t.Fatalf("attempt %d, want %d", got, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for dial attempt %d", want)
		}
	}
	none := func() {
		t.Helper()
		select {
		case got := <-attempts:
			t.Fatalf("unexpected dial attempt %d before its backoff elapsed", got)
		case <-time.After(20 * time.Millisecond):
		}
	}
	armed := func() {
		t.Helper()
		waitFor(t, "backoff timer armed", func() bool { return clock.Timers() > 0 })
	}

	wait(1) // immediate first attempt
	armed()
	clock.Advance(100 * time.Millisecond)
	wait(2)
	armed()
	clock.Advance(100 * time.Millisecond)
	none() // backoff doubled to 200ms; 100ms is not enough
	clock.Advance(100 * time.Millisecond)
	wait(3)
	armed()
	clock.Advance(400 * time.Millisecond)
	wait(4)
	armed()
	clock.Advance(400 * time.Millisecond) // capped at BackoffMax
	wait(5)

	if st := agent.Stats(); st.Dials != 5 || st.DialFailures < 4 {
		t.Fatalf("stats %+v: want 5 dials, >=4 failures", st)
	}
}

// TestAgentKeepaliveFakeClock pins the keepalive cadence and the
// gap-free sequence contract: send-idle periods produce KEEPALIVE
// frames whose sequence numbers continue the connection's series.
func TestAgentKeepaliveFakeClock(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := ln.Close(); err != nil {
			t.Logf("listener close: %v", err)
		}
	}()

	frames := make(chan Frame, 16)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		scratch := make([]byte, MaxFrameLen)
		var hello Frame
		if err := ReadFrame(conn, scratch, &hello); err != nil {
			t.Errorf("hub read hello: %v", err)
			return
		}
		reply := Frame{Type: THello, Seq: 1, HelloVersion: Version, Node: 99}
		if err := WriteFrame(conn, scratch, &reply); err != nil {
			t.Errorf("hub write hello: %v", err)
			return
		}
		for {
			var f Frame
			if err := ReadFrame(conn, scratch, &f); err != nil {
				close(frames)
				return
			}
			frames <- f
		}
	}()

	clock := NewFakeClock(time.Unix(0, 0))
	n := newFakeApplier()
	agent, err := NewAgent(AgentConfig{
		Addr:      ln.Addr().String(),
		NodeID:    7,
		Apply:     n,
		Keepalive: 5 * time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	agent.Start()
	t.Cleanup(agent.Close)
	waitFor(t, "agent connected", func() bool { return agent.Stats().Connected })

	read := func(what string) Frame {
		t.Helper()
		select {
		case f, ok := <-frames:
			if !ok {
				t.Fatalf("connection died waiting for %s", what)
			}
			return f
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
			return Frame{}
		}
	}

	waitFor(t, "keepalive timer armed", func() bool { return clock.Timers() > 0 })
	clock.Advance(5 * time.Second)
	if f := read("first keepalive"); f.Type != TKeepalive || f.Seq != 2 {
		t.Fatalf("got %v seq=%d, want keepalive seq=2", f.Type, f.Seq)
	}
	waitFor(t, "timer re-armed", func() bool { return clock.Timers() > 0 })
	clock.Advance(5 * time.Second)
	if f := read("second keepalive"); f.Type != TKeepalive || f.Seq != 3 {
		t.Fatalf("got %v seq=%d, want keepalive seq=3", f.Type, f.Seq)
	}
	// Outbox traffic continues the same sequence series.
	key := testKey(3)
	agent.Announce(key)
	if f := read("announce"); f.Type != TAnnounce || f.Seq != 4 || f.Key != key.Canonical() {
		t.Fatalf("got %v seq=%d key=%v, want announce seq=4 %v", f.Type, f.Seq, f.Key, key.Canonical())
	}
}

// TestHubRejectsBadHandshakes pins handshake hygiene: garbage and
// version-skewed peers are dropped and counted, never registered.
func TestHubRejectsBadHandshakes(t *testing.T) {
	hub := startHub(t, HubConfig{})
	addr := hub.Addr().String()

	// Raw garbage: not even a frame.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("hub kept a garbage connection open")
	}
	if err := conn.Close(); err != nil {
		t.Logf("close: %v", err)
	}

	// Version skew: structurally valid hello, wrong revision.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, MaxFrameLen)
	bad := Frame{Type: THello, Seq: 1, HelloVersion: Version + 1, Node: 5}
	if err := WriteFrame(conn2, scratch, &bad); err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Read(buf); err == nil {
		t.Fatal("hub kept a version-skewed connection open")
	}
	if err := conn2.Close(); err != nil {
		t.Logf("close: %v", err)
	}

	waitFor(t, "rejections counted", func() bool { return hub.Stats().Rejected >= 2 })
	if st := hub.Stats(); st.Nodes != 0 || st.Accepted != 0 {
		t.Fatalf("stats %+v: rejected peers must never register", st)
	}
}

// TestHubCollectsNodeStats pins the STATS path: the hub keeps the
// latest payload per node.
func TestHubCollectsNodeStats(t *testing.T) {
	hub := startHub(t, HubConfig{})
	n := startNode(t, hub.Addr().String(), 42, nil)
	waitFor(t, "node joined", func() bool { return hub.Stats().Nodes == 1 })

	p := StatsPayload{Packets: 1000, Installed: 5, BlacklistLen: 5, QueueDrops: 1}
	n.agent.ReportStats(p)
	waitFor(t, "stats recorded", func() bool { return hub.NodeStats()[42] == p })

	p2 := p
	p2.Packets = 2000
	n.agent.ReportStats(p2)
	waitFor(t, "stats updated", func() bool { return hub.NodeStats()[42] == p2 })
	if st := hub.Stats(); st.StatsFrames != 2 {
		t.Fatalf("StatsFrames=%d want 2", st.StatsFrames)
	}
}
