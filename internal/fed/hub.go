package fed

import (
	"fmt"
	"net"
	"sync"
	"time"

	"iguard/internal/features"
)

// HubConfig parameterises NewHub. The zero value is serviceable: a
// system clock, 15s keepalives, no read timeout, and a 256-frame
// outbound queue per node.
type HubConfig struct {
	// NodeID identifies the hub in its HELLO replies.
	NodeID uint64
	// Keepalive is the idle keepalive cadence per connection: when the
	// hub has sent nothing for this long it emits a KEEPALIVE frame so
	// half-open connections die at the peer's read timeout instead of
	// lingering. Zero defaults to 15s; negative disables.
	Keepalive time.Duration
	// ReadTimeout, when positive, bounds the silence the hub tolerates
	// from a node before declaring it dead. Nodes keepalive at their
	// own cadence, so a value of ~3× the fleet keepalive is a safe
	// dead-peer cutoff.
	ReadTimeout time.Duration
	// OutboundDepth bounds each connection's outbound frame queue.
	// A node that cannot drain rebroadcasts at fleet pace is kicked
	// (and resynchronised by replay when it reconnects) rather than
	// allowed to stall the hub or grow the queue without bound. Zero
	// defaults to 256.
	OutboundDepth int
	// Clock supplies time; nil defaults to SystemClock. Tests inject
	// FakeClock to drive keepalives deterministically.
	Clock Clock
	// Logf, when non-nil, receives one line per connection lifecycle
	// event and protocol error.
	Logf func(format string, args ...any)
}

func (c HubConfig) withDefaults() HubConfig {
	if c.Keepalive == 0 {
		c.Keepalive = 15 * time.Second
	}
	if c.OutboundDepth <= 0 {
		c.OutboundDepth = 256
	}
	if c.Clock == nil {
		c.Clock = SystemClock()
	}
	return c
}

// HubStats is a snapshot of hub activity.
type HubStats struct {
	// Nodes is the current connection count; Entries the size of the
	// deduplicated blacklist view.
	Nodes   int `json:"nodes"`
	Entries int `json:"entries"`
	// Accepted counts completed handshakes; Rejected counts
	// connections dropped during or after handshake for protocol
	// violations (bad magic, version skew, sequence gaps).
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
	// Announces counts first-seen announcements (each triggers one
	// rebroadcast round); DupAnnounces counts announcements dedup
	// suppressed.
	Announces    uint64 `json:"announces"`
	DupAnnounces uint64 `json:"dup_announces"`
	// InstallsSent / RemovesSent / FlushesSent count frames enqueued
	// to nodes, rebroadcasts and join replays alike.
	InstallsSent uint64 `json:"installs_sent"`
	RemovesSent  uint64 `json:"removes_sent"`
	FlushesSent  uint64 `json:"flushes_sent"`
	// StatsFrames counts node stats reports received. SlowKicks
	// counts nodes disconnected for not draining their outbound
	// queue.
	StatsFrames uint64 `json:"stats_frames"`
	SlowKicks   uint64 `json:"slow_kicks"`
}

// String renders a one-line operator summary.
func (s HubStats) String() string {
	return fmt.Sprintf("nodes=%d entries=%d accepted=%d rejected=%d announces=%d dup=%d sent: installs=%d removes=%d flushes=%d; statsFrames=%d slowKicks=%d",
		s.Nodes, s.Entries, s.Accepted, s.Rejected, s.Announces, s.DupAnnounces,
		s.InstallsSent, s.RemovesSent, s.FlushesSent, s.StatsFrames, s.SlowKicks)
}

// hubConn is one node connection. The reader goroutine owns the
// net.Conn's read side; the writer goroutine owns the write side and
// the outgoing sequence counter; everyone else talks to the connection
// only through out. done closes exactly once (via closeOnce) when the
// connection is torn down, which both stops the writer and marks the
// conn dead to broadcasters — out is never closed, so a racing
// enqueue lands in a buffer nobody drains instead of panicking.
type hubConn struct {
	conn      net.Conn
	node      uint64
	out       chan Frame
	done      chan struct{}
	closeOnce sync.Once
}

// close tears the connection down once: marks it dead and closes the
// socket, which unblocks both the reader and the writer.
func (c *hubConn) close(logf func(string, ...any)) {
	c.closeOnce.Do(func() {
		close(c.done)
		if err := c.conn.Close(); err != nil && logf != nil {
			logf("fed hub: close node %d: %v", c.node, err)
		}
	})
}

// Hub is the federation rendezvous: N nodes connect, announce the
// blacklist installs their local controllers decide, and receive every
// other node's installs back. The hub holds the deduplicated union of
// all announcements and replays it to each (re)joining node, so the
// fleet converges to one blacklist view regardless of join order or
// partitions — eventual consistency with the hub as the serialisation
// point.
type Hub struct {
	cfg HubConfig
	ln  net.Listener
	wg  sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	conns   map[*hubConn]struct{}
	entries map[keyOf]uint64 // canonical key -> first announcing node
	stats   HubStats
	last    map[uint64]StatsPayload // latest STATS per node
}

// keyOf is the dedup identity: the canonical flow key, whose fold both
// the shard router and the switch tables derive from. Two
// announcements for the two directions of one connection dedup to one
// entry here exactly as they index one slot there.
type keyOf = [13]byte

// NewHub wraps an accepted listener (the caller owns binding and
// address selection) in a hub runtime. Serve starts accepting.
func NewHub(ln net.Listener, cfg HubConfig) *Hub {
	return &Hub{
		cfg:     cfg.withDefaults(),
		ln:      ln,
		conns:   map[*hubConn]struct{}{},
		entries: map[keyOf]uint64{},
		last:    map[uint64]StatsPayload{},
	}
}

// Addr returns the listener's address (useful with ":0" listeners).
func (h *Hub) Addr() net.Addr { return h.ln.Addr() }

// Serve accepts node connections until Close (or a listener error).
// It blocks; run it on its own goroutine.
func (h *Hub) Serve() error {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			h.mu.Lock()
			closed := h.closed
			h.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.serveConn(conn)
		}()
	}
}

// Close stops accepting, disconnects every node, and waits for the
// per-connection goroutines to finish. Idempotent.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	conns := make([]*hubConn, 0, len(h.conns))
	for c := range h.conns { //iguard:sorted teardown order is irrelevant
		conns = append(conns, c)
	}
	h.mu.Unlock()

	err := h.ln.Close()
	for _, c := range conns {
		c.close(h.cfg.Logf)
	}
	h.wg.Wait()
	return err
}

// Stats snapshots hub activity.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stats
	st.Nodes = len(h.conns)
	st.Entries = len(h.entries)
	return st
}

// NodeStats returns the latest STATS payload each node reported,
// keyed by node ID.
func (h *Hub) NodeStats() map[uint64]StatsPayload {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[uint64]StatsPayload, len(h.last))
	for id, p := range h.last { //iguard:sorted map copy; the result is itself a map
		out[id] = p
	}
	return out
}

func (h *Hub) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

// setReadDeadline arms the dead-peer cutoff before a blocking read.
func (h *Hub) setReadDeadline(conn net.Conn) error {
	if h.cfg.ReadTimeout <= 0 {
		return nil
	}
	return conn.SetReadDeadline(h.cfg.Clock.Now().Add(h.cfg.ReadTimeout))
}

// serveConn runs one node connection: handshake, register + replay,
// then the announcement loop. Any protocol violation tears the
// connection down; the node's agent reconnects and resynchronises.
func (h *Hub) serveConn(conn net.Conn) {
	scratch := make([]byte, MaxFrameLen)
	var hello Frame
	if err := h.setReadDeadline(conn); err != nil {
		h.logf("fed hub: %v: arm deadline: %v", conn.RemoteAddr(), err)
	}
	if err := ReadFrame(conn, scratch, &hello); err != nil {
		h.reject(conn, fmt.Sprintf("handshake read: %v", err))
		return
	}
	if hello.Type != THello || hello.Seq != 1 {
		h.reject(conn, fmt.Sprintf("handshake: got %v seq=%d, want hello seq=1", hello.Type, hello.Seq))
		return
	}
	if hello.HelloVersion != Version {
		h.reject(conn, fmt.Sprintf("version skew: node %d speaks v%d, hub speaks v%d", hello.Node, hello.HelloVersion, Version))
		return
	}

	c := &hubConn{
		conn: conn,
		node: hello.Node,
		out:  make(chan Frame, h.cfg.OutboundDepth),
		done: make(chan struct{}),
	}

	// Register, then snapshot the entry set for the join replay. Both
	// under one critical section so no concurrently announced entry
	// is either lost (announced after snapshot, broadcast before
	// registration) or double-delivered.
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		c.close(h.cfg.Logf)
		return
	}
	h.conns[c] = struct{}{}
	h.stats.Accepted++
	replay := make([]keyOf, 0, len(h.entries))
	for k := range h.entries { //iguard:sorted set replay; the receiver applies a set union
		replay = append(replay, k)
	}
	h.stats.InstallsSent += uint64(len(replay))
	h.mu.Unlock()

	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.writeLoop(c)
	}()

	// HELLO reply first, then the current blacklist view: a joining
	// (or rejoining) node converges before the first live rebroadcast
	// reaches it. These block rather than drop — the queue is sized
	// for fleets far larger than the entry replay, and a peer that
	// cannot absorb its own join replay is torn down by write error.
	h.send(c, Frame{Type: THello, HelloVersion: Version, Node: h.cfg.NodeID})
	for _, k := range replay {
		h.send(c, Frame{Type: TInstall, Key: features.FlowKeyFromBytes(k)})
	}

	h.logf("fed hub: node %d joined from %v (replayed %d entries)", c.node, conn.RemoteAddr(), len(replay))
	err := h.readLoop(c, scratch)
	h.unregister(c)
	c.close(h.cfg.Logf)
	if err != nil {
		h.logf("fed hub: node %d left: %v", c.node, err)
	} else {
		h.logf("fed hub: node %d left", c.node)
	}
}

// reject drops a connection that failed the handshake.
func (h *Hub) reject(conn net.Conn, why string) {
	h.mu.Lock()
	h.stats.Rejected++
	h.mu.Unlock()
	h.logf("fed hub: %v rejected: %s", conn.RemoteAddr(), why)
	if err := conn.Close(); err != nil {
		h.logf("fed hub: %v: close: %v", conn.RemoteAddr(), err)
	}
}

// unregister removes a connection from the broadcast set.
func (h *Hub) unregister(c *hubConn) {
	h.mu.Lock()
	delete(h.conns, c)
	h.mu.Unlock()
}

// send enqueues one frame for c's writer, blocking until there is
// queue space or the connection dies. Used for the handshake replay,
// where back-pressure is acceptable; rebroadcasts use enqueue.
func (h *Hub) send(c *hubConn, f Frame) {
	select {
	case c.out <- f:
	case <-c.done:
	}
}

// enqueue hands one frame to c's writer without ever blocking the
// broadcaster: a full queue means the node is not draining at fleet
// pace, and the hub kicks it (the reconnect replay will resynchronise
// it) instead of stalling every other node behind it.
func (h *Hub) enqueue(c *hubConn, f Frame) {
	select {
	case c.out <- f:
	case <-c.done:
	default:
		h.mu.Lock()
		h.stats.SlowKicks++
		h.mu.Unlock()
		h.logf("fed hub: node %d kicked: outbound queue full", c.node)
		c.close(h.cfg.Logf)
	}
}

// writeLoop owns the connection's write side and its outgoing
// sequence numbers, and emits a KEEPALIVE whenever the connection has
// been send-idle for the keepalive interval.
func (h *Hub) writeLoop(c *hubConn) {
	scratch := make([]byte, 0, MaxFrameLen)
	var seq uint64
	write := func(f Frame) bool {
		seq++
		f.Seq = seq
		buf, err := AppendFrame(scratch[:0], &f)
		if err != nil {
			h.logf("fed hub: node %d: encode: %v", c.node, err)
			return false
		}
		if _, err := c.conn.Write(buf); err != nil {
			c.close(h.cfg.Logf)
			return false
		}
		return true
	}
	for {
		var idle <-chan time.Time
		if h.cfg.Keepalive > 0 {
			idle = h.cfg.Clock.After(h.cfg.Keepalive)
		}
		select {
		case f := <-c.out:
			if !write(f) {
				return
			}
		case <-idle:
			if !write(Frame{Type: TKeepalive}) {
				return
			}
		case <-c.done:
			return
		}
	}
}

// readLoop consumes the node's frames until error, enforcing the
// gap-free sequence contract and dispatching each frame.
func (h *Hub) readLoop(c *hubConn, scratch []byte) error {
	lastSeq := uint64(1) // the handshake HELLO
	var f Frame
	for {
		if err := h.setReadDeadline(c.conn); err != nil {
			return err
		}
		if err := ReadFrame(c.conn, scratch, &f); err != nil {
			return err
		}
		if f.Seq != lastSeq+1 {
			h.mu.Lock()
			h.stats.Rejected++
			h.mu.Unlock()
			return fmt.Errorf("sequence gap: got %d after %d", f.Seq, lastSeq)
		}
		lastSeq = f.Seq
		switch f.Type {
		case TAnnounce:
			h.onAnnounce(c, f.Key)
		case TRemove:
			h.onRemove(c, f.Key)
		case TFlush:
			h.onFlush(c)
		case TStats:
			h.mu.Lock()
			h.stats.StatsFrames++
			h.last[c.node] = f.Stats
			h.mu.Unlock()
		case TKeepalive:
			// Sequence bookkeeping above is the whole point.
		default:
			return fmt.Errorf("unexpected %v frame mid-session", f.Type)
		}
	}
}

// others snapshots every registered connection except origin.
func (h *Hub) othersLocked(origin *hubConn) []*hubConn {
	targets := make([]*hubConn, 0, len(h.conns))
	for c := range h.conns { //iguard:sorted broadcast fan-out; every target gets the same frame
		if c != origin {
			targets = append(targets, c)
		}
	}
	return targets
}

// onAnnounce dedups one node's install announcement and, first time
// the key is seen, rebroadcasts it to every other node. The dedup
// decision and the target snapshot share one critical section; the
// actual sends happen outside it.
func (h *Hub) onAnnounce(origin *hubConn, key features.FlowKey) {
	k := key.Canonical()
	h.mu.Lock()
	if _, dup := h.entries[k.Bytes()]; dup {
		h.stats.DupAnnounces++
		h.mu.Unlock()
		return
	}
	h.entries[k.Bytes()] = origin.node
	h.stats.Announces++
	targets := h.othersLocked(origin)
	h.stats.InstallsSent += uint64(len(targets))
	h.mu.Unlock()

	for _, c := range targets {
		h.enqueue(c, Frame{Type: TInstall, Key: k})
	}
	h.logf("fed hub: node %d announced %v -> %d node(s)", origin.node, k, len(targets))
}

// onRemove withdraws an entry and propagates the removal.
func (h *Hub) onRemove(origin *hubConn, key features.FlowKey) {
	k := key.Canonical()
	h.mu.Lock()
	if _, ok := h.entries[k.Bytes()]; !ok {
		h.mu.Unlock()
		return
	}
	delete(h.entries, k.Bytes())
	targets := h.othersLocked(origin)
	h.stats.RemovesSent += uint64(len(targets))
	h.mu.Unlock()

	for _, c := range targets {
		h.enqueue(c, Frame{Type: TRemove, Key: k})
	}
	h.logf("fed hub: node %d removed %v -> %d node(s)", origin.node, k, len(targets))
}

// onFlush clears the fleet view and propagates the flush.
func (h *Hub) onFlush(origin *hubConn) {
	h.mu.Lock()
	n := len(h.entries)
	h.entries = map[keyOf]uint64{}
	targets := h.othersLocked(origin)
	h.stats.FlushesSent += uint64(len(targets))
	h.mu.Unlock()

	for _, c := range targets {
		h.enqueue(c, Frame{Type: TFlush})
	}
	h.logf("fed hub: node %d flushed %d entries -> %d node(s)", origin.node, n, len(targets))
}
