package fed

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"iguard/internal/features"
)

// Applier is the slice of the local serving runtime the agent drives
// when the hub propagates another switch's blacklist decisions here.
// *serve.Server satisfies it; every method is safe from any goroutine
// and routes the key to its owning shard off the packet hot path.
type Applier interface {
	ApplyInstall(key features.FlowKey) (applied bool, err error)
	ApplyRemove(key features.FlowKey) (applied bool, err error)
	ApplyFlush() (removed int, err error)
}

// AgentConfig parameterises NewAgent.
type AgentConfig struct {
	// Addr is the hub's TCP address. NodeID identifies this node in
	// its HELLO; the hub uses it for dedup attribution and stats
	// keying, so give each node a distinct ID.
	Addr   string
	NodeID uint64
	// Apply receives propagated operations. Required.
	Apply Applier
	// Dial overrides how connections are made; nil defaults to
	// net.Dial("tcp", addr). Tests substitute net.Pipe or an
	// always-failing dialer.
	Dial func(addr string) (net.Conn, error)
	// OutboxDepth bounds the announcement queue between the local
	// controller's observer (shard goroutines — must never block) and
	// the hub session. When the hub is down or slow the outbox fills
	// and further announcements are counted as drops, not queued
	// without bound: the local switch keeps its own installs either
	// way, so a drop only delays fleet-wide convergence until the
	// entry is next announced. Zero defaults to 1024.
	OutboxDepth int
	// BackoffMin/BackoffMax bound the exponential reconnect backoff
	// (doubling from min to max, reset after a completed handshake).
	// Zero defaults to 100ms / 5s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Keepalive is the send-idle keepalive cadence; zero defaults to
	// 15s, negative disables.
	Keepalive time.Duration
	// Clock supplies time; nil defaults to SystemClock.
	Clock Clock
	// OnApply, when non-nil, observes each hub-propagated operation
	// after it has been applied locally (Key is the zero key for
	// TFlush). Tests use it to wait for propagation deterministically.
	OnApply func(t Type, key features.FlowKey)
	// Logf, when non-nil, receives connection lifecycle lines.
	Logf func(format string, args ...any)
}

func (c AgentConfig) withDefaults() AgentConfig {
	if c.Dial == nil {
		c.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if c.OutboxDepth <= 0 {
		c.OutboxDepth = 1024
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.Keepalive == 0 {
		c.Keepalive = 15 * time.Second
	}
	if c.Clock == nil {
		c.Clock = SystemClock()
	}
	return c
}

// AgentStats is a snapshot of agent activity.
type AgentStats struct {
	// Connected reports whether a hub session is currently live.
	Connected bool `json:"connected"`
	// Dials counts connection attempts; DialFailures the ones that
	// never reached a completed handshake; Sessions the ones that did.
	Dials        uint64 `json:"dials"`
	DialFailures uint64 `json:"dial_failures"`
	Sessions     uint64 `json:"sessions"`
	// Announced counts frames successfully enqueued toward the hub;
	// OutboxDrops counts announcements discarded because the outbox
	// was full (hub down or slow).
	Announced   uint64 `json:"announced"`
	OutboxDrops uint64 `json:"outbox_drops"`
	// Applied* count hub-propagated operations applied to the local
	// runtime.
	AppliedInstalls uint64 `json:"applied_installs"`
	AppliedRemoves  uint64 `json:"applied_removes"`
	AppliedFlushes  uint64 `json:"applied_flushes"`
	// ProtocolErrors counts sessions torn down for protocol
	// violations (sequence gaps, version skew, unexpected frames).
	ProtocolErrors uint64 `json:"protocol_errors"`
}

// String renders a one-line operator summary.
func (s AgentStats) String() string {
	return fmt.Sprintf("connected=%v dials=%d failures=%d sessions=%d announced=%d outboxDrops=%d applied: installs=%d removes=%d flushes=%d; protoErrs=%d",
		s.Connected, s.Dials, s.DialFailures, s.Sessions, s.Announced, s.OutboxDrops,
		s.AppliedInstalls, s.AppliedRemoves, s.AppliedFlushes, s.ProtocolErrors)
}

// Agent bridges one serving runtime to the federation hub. The local
// controller's install decisions arrive via Announce (wired from the
// serve-level OnBlacklist observer), are queued in a bounded outbox,
// and flow to the hub when a session is up; hub-propagated operations
// are applied through the Applier. The agent never touches the packet
// hot path, and a dead hub costs nothing but convergence: the node
// keeps serving on its own decisions, byte-identical to standalone.
type Agent struct {
	cfg    AgentConfig
	outbox chan Frame
	done   chan struct{}
	wg     sync.WaitGroup

	closeOnce sync.Once
	closed    atomic.Bool

	// connMu guards conn, the live session's socket, so Close can
	// sever a session blocked in a read. Only the pointer is touched
	// under the lock; Close calls happen after release.
	connMu sync.Mutex
	conn   net.Conn

	connected atomic.Bool
	dials,
	dialFailures,
	sessions,
	announced,
	outboxDrops,
	appliedInstalls,
	appliedRemoves,
	appliedFlushes,
	protocolErrors atomic.Uint64
}

// NewAgent validates cfg and returns an agent; Start begins the
// connect loop.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Apply == nil {
		return nil, fmt.Errorf("fed: AgentConfig.Apply is required")
	}
	if cfg.Addr == "" {
		return nil, fmt.Errorf("fed: AgentConfig.Addr is required")
	}
	cfg = cfg.withDefaults()
	return &Agent{
		cfg:    cfg,
		outbox: make(chan Frame, cfg.OutboxDepth),
		done:   make(chan struct{}),
	}, nil
}

// Start launches the connect/serve loop. Call once.
func (a *Agent) Start() {
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		a.run()
	}()
}

// Close stops the agent — severing any live session, even one blocked
// mid-read — and waits for its goroutines. Idempotent.
func (a *Agent) Close() {
	a.closeOnce.Do(func() {
		a.closed.Store(true)
		close(a.done)
	})
	a.connMu.Lock()
	conn := a.conn
	a.connMu.Unlock()
	if conn != nil {
		// The session's own teardown may have won the race; a second
		// socket close is a harmless error.
		if err := conn.Close(); err != nil {
			a.logf("fed agent %d: close live conn: %v", a.cfg.NodeID, err)
		}
	}
	a.wg.Wait()
}

// Stats snapshots agent activity.
func (a *Agent) Stats() AgentStats {
	return AgentStats{
		Connected:       a.connected.Load(),
		Dials:           a.dials.Load(),
		DialFailures:    a.dialFailures.Load(),
		Sessions:        a.sessions.Load(),
		Announced:       a.announced.Load(),
		OutboxDrops:     a.outboxDrops.Load(),
		AppliedInstalls: a.appliedInstalls.Load(),
		AppliedRemoves:  a.appliedRemoves.Load(),
		AppliedFlushes:  a.appliedFlushes.Load(),
		ProtocolErrors:  a.protocolErrors.Load(),
	}
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// enqueue offers one frame to the outbox without ever blocking the
// caller — announcements originate on shard goroutines, where blocking
// would stall the data path. A full outbox drops the frame and counts
// it.
func (a *Agent) enqueue(f Frame) {
	select {
	case a.outbox <- f:
		a.announced.Add(1)
	default:
		a.outboxDrops.Add(1)
	}
}

// Announce queues a locally decided install for fleet propagation.
// Safe from any goroutine; never blocks.
func (a *Agent) Announce(key features.FlowKey) {
	a.enqueue(Frame{Type: TAnnounce, Key: key.Canonical()})
}

// AnnounceRemove queues a local withdrawal for fleet propagation.
func (a *Agent) AnnounceRemove(key features.FlowKey) {
	a.enqueue(Frame{Type: TRemove, Key: key.Canonical()})
}

// AnnounceFlush queues a fleet-wide flush.
func (a *Agent) AnnounceFlush() {
	a.enqueue(Frame{Type: TFlush})
}

// ReportStats queues a stats report for the hub's fleet overview.
func (a *Agent) ReportStats(p StatsPayload) {
	a.enqueue(Frame{Type: TStats, Stats: p})
}

// run is the connect loop: dial, session, backoff, repeat. Backoff
// doubles from BackoffMin to BackoffMax on consecutive failures and
// resets after any completed handshake, so a briefly absent hub is
// rejoined quickly and a long-dead one is probed gently.
func (a *Agent) run() {
	backoff := a.cfg.BackoffMin
	for {
		select {
		case <-a.done:
			return
		default:
		}
		a.dials.Add(1)
		conn, err := a.cfg.Dial(a.cfg.Addr)
		if err != nil {
			a.dialFailures.Add(1)
			a.logf("fed agent %d: dial %s: %v (retry in %v)", a.cfg.NodeID, a.cfg.Addr, err, backoff)
			if !a.sleep(backoff) {
				return
			}
			backoff = min(backoff*2, a.cfg.BackoffMax)
			continue
		}
		// Publish the conn so Close can sever a blocked session; if
		// Close already ran, the conn is dead on arrival.
		a.connMu.Lock()
		if a.closed.Load() {
			a.connMu.Unlock()
			if err := conn.Close(); err != nil {
				a.logf("fed agent %d: close: %v", a.cfg.NodeID, err)
			}
			return
		}
		a.conn = conn
		a.connMu.Unlock()
		ok := a.session(conn)
		a.connMu.Lock()
		a.conn = nil
		a.connMu.Unlock()
		if ok {
			backoff = a.cfg.BackoffMin
		} else {
			a.dialFailures.Add(1)
			if !a.sleep(backoff) {
				return
			}
			backoff = min(backoff*2, a.cfg.BackoffMax)
		}
	}
}

// sleep waits d on the injected clock, returning false if the agent
// was closed first.
func (a *Agent) sleep(d time.Duration) bool {
	select {
	case <-a.cfg.Clock.After(d):
		return true
	case <-a.done:
		return false
	}
}

// session runs one hub connection to completion and reports whether
// the handshake succeeded (which resets the reconnect backoff).
func (a *Agent) session(conn net.Conn) (handshaken bool) {
	var once sync.Once
	closeConn := func() {
		once.Do(func() {
			if err := conn.Close(); err != nil {
				a.logf("fed agent %d: close: %v", a.cfg.NodeID, err)
			}
		})
	}
	defer a.connected.Store(false)
	defer closeConn()

	scratch := make([]byte, MaxFrameLen)
	var seq uint64
	write := func(f Frame) error {
		seq++
		f.Seq = seq
		return WriteFrame(conn, scratch, &f)
	}
	if err := write(Frame{Type: THello, HelloVersion: Version, Node: a.cfg.NodeID}); err != nil {
		a.logf("fed agent %d: send hello: %v", a.cfg.NodeID, err)
		return false
	}
	var reply Frame
	if err := ReadFrame(conn, scratch, &reply); err != nil {
		a.logf("fed agent %d: read hello: %v", a.cfg.NodeID, err)
		return false
	}
	if reply.Type != THello || reply.Seq != 1 {
		a.protocolErrors.Add(1)
		a.logf("fed agent %d: handshake: got %v seq=%d, want hello seq=1", a.cfg.NodeID, reply.Type, reply.Seq)
		return false
	}
	if reply.HelloVersion != Version {
		a.protocolErrors.Add(1)
		a.logf("fed agent %d: version skew: hub speaks v%d, node speaks v%d", a.cfg.NodeID, reply.HelloVersion, Version)
		return false
	}

	a.sessions.Add(1)
	a.connected.Store(true)
	a.logf("fed agent %d: connected to hub node %d at %s", a.cfg.NodeID, reply.Node, a.cfg.Addr)

	// The reader applies propagated operations as they arrive and
	// reports its exit; the session loop owns the write side. Either
	// side's error closes the conn, which unblocks the other.
	errc := make(chan error, 1)
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		errc <- a.readLoop(conn)
	}()

	var sessionErr error
loop:
	for {
		var idle <-chan time.Time
		if a.cfg.Keepalive > 0 {
			idle = a.cfg.Clock.After(a.cfg.Keepalive)
		}
		select {
		case f := <-a.outbox:
			if err := write(f); err != nil {
				sessionErr = err
				break loop
			}
		case <-idle:
			if err := write(Frame{Type: TKeepalive}); err != nil {
				sessionErr = err
				break loop
			}
		case err := <-errc:
			sessionErr = err
			closeConn()
			a.logf("fed agent %d: session ended: %v", a.cfg.NodeID, sessionErr)
			return true
		case <-a.done:
			closeConn()
			<-errc
			return true
		}
	}
	// Write-side failure: close the conn to stop the reader, then
	// reap it before redialling so only one session touches Apply at
	// a time.
	closeConn()
	<-errc
	a.logf("fed agent %d: session ended: %v", a.cfg.NodeID, sessionErr)
	return true
}

// readLoop consumes hub frames (sequence-checked, keepalives
// included) and applies propagated operations locally until error.
func (a *Agent) readLoop(conn net.Conn) error {
	scratch := make([]byte, MaxFrameLen)
	lastSeq := uint64(1) // the hub's HELLO reply
	var f Frame
	for {
		if err := ReadFrame(conn, scratch, &f); err != nil {
			return err
		}
		if f.Seq != lastSeq+1 {
			a.protocolErrors.Add(1)
			return fmt.Errorf("sequence gap: got %d after %d", f.Seq, lastSeq)
		}
		lastSeq = f.Seq
		switch f.Type {
		case TInstall:
			if _, err := a.cfg.Apply.ApplyInstall(f.Key); err != nil {
				return fmt.Errorf("apply install: %w", err)
			}
			a.appliedInstalls.Add(1)
			if a.cfg.OnApply != nil {
				a.cfg.OnApply(TInstall, f.Key)
			}
		case TRemove:
			if _, err := a.cfg.Apply.ApplyRemove(f.Key); err != nil {
				return fmt.Errorf("apply remove: %w", err)
			}
			a.appliedRemoves.Add(1)
			if a.cfg.OnApply != nil {
				a.cfg.OnApply(TRemove, f.Key)
			}
		case TFlush:
			if _, err := a.cfg.Apply.ApplyFlush(); err != nil {
				return fmt.Errorf("apply flush: %w", err)
			}
			a.appliedFlushes.Add(1)
			if a.cfg.OnApply != nil {
				a.cfg.OnApply(TFlush, features.FlowKey{})
			}
		case TKeepalive:
			// Sequence bookkeeping above is the whole point.
		default:
			a.protocolErrors.Add(1)
			return fmt.Errorf("unexpected %v frame mid-session", f.Type)
		}
	}
}
