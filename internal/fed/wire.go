// Package fed federates several iGuard serving runtimes under one
// controller-plane hub: a blacklist rule installed on one switch
// propagates to every other switch within a bounded delay, so an
// attacker flagged at one vantage point is blocked at all of them.
//
// The package has three parts. This file defines the wire protocol: a
// versioned, length-prefixed TCP framing with fixed-width (varint-free)
// big-endian encoding and per-connection sequence numbers. hub.go runs
// the rendezvous point — it accepts N node connections, dedups
// announcements by canonical flow key, and rebroadcasts installs to
// every other node. agent.go runs on each node, bridging the local
// serving runtime to the hub with a bounded outbox and
// reconnect-with-backoff, so a dead hub degrades the node to exactly
// its standalone behaviour instead of ever blocking the data path.
//
// Frame layout (all integers big-endian):
//
//	| length uint32 | type uint8 | seq uint64 | payload… |
//
// length counts everything after itself (type + seq + payload), so a
// reader fetches 4 bytes, then exactly length more. Payload widths are
// fixed per type:
//
//	HELLO     magic [4]byte "iGFD", version uint16, node uint64  (14 B)
//	ANNOUNCE  canonical flow key, 13-byte digest layout          (13 B)
//	INSTALL   canonical flow key                                 (13 B)
//	REMOVE    canonical flow key                                 (13 B)
//	FLUSH     —                                                  (0 B)
//	STATS     6 × uint64 counters                                (48 B)
//	KEEPALIVE —                                                  (0 B)
//
// Sequence numbers are per connection and per direction: each side
// numbers its outgoing frames 1, 2, 3, … with no gaps (keepalives
// included), and a receiver treats any discontinuity as a protocol
// error and drops the connection. A reconnect starts a new connection
// and a new sequence space; the hub resynchronises the joiner by
// replaying its current entry set as INSTALL frames, which makes
// convergence after any partition a plain rejoin.
package fed

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"iguard/internal/features"
)

// Version is the protocol revision carried in HELLO frames. Peers
// refuse to talk across versions: the encoding is fixed-width, so a
// frame from a different revision would be silently misparsed rather
// than detectably wrong.
const Version uint16 = 1

// helloMagic opens every HELLO payload; a listener that receives
// anything else on a fresh connection is being probed by something
// that is not an iGuard node.
var helloMagic = [4]byte{'i', 'G', 'F', 'D'}

// Type discriminates frames.
type Type uint8

// Frame types. The zero value is invalid so an unset Frame is never a
// valid wire object.
const (
	THello Type = iota + 1
	TAnnounce
	TInstall
	TRemove
	TFlush
	TStats
	TKeepalive
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case THello:
		return "hello"
	case TAnnounce:
		return "announce"
	case TInstall:
		return "install"
	case TRemove:
		return "remove"
	case TFlush:
		return "flush"
	case TStats:
		return "stats"
	case TKeepalive:
		return "keepalive"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Payload widths per type (bytes after the 9-byte type+seq header).
const (
	helloLen = 4 + 2 + 8
	keyLen   = 13
	statsLen = 6 * 8
)

// headerLen is the fixed type+seq prefix counted by the length field.
const headerLen = 1 + 8

// MaxFrameLen bounds a whole encoded frame (length prefix included):
// the largest payload is STATS at 48 bytes. Readers reject any length
// field that would exceed it before allocating or reading the body, so
// a corrupt or hostile peer cannot make a node buffer garbage.
const MaxFrameLen = 4 + headerLen + statsLen

// StatsPayload is the fixed-width counter block a node reports in
// STATS frames. The hub keeps the latest payload per node; the fields
// mirror the node-side serve/agent counters that matter for a fleet
// overview.
type StatsPayload struct {
	Packets      uint64 `json:"packets"`
	Installed    uint64 `json:"installed"`
	Evicted      uint64 `json:"evicted"`
	BlacklistLen uint64 `json:"blacklist_len"`
	QueueDrops   uint64 `json:"queue_drops"`
	OutboxDrops  uint64 `json:"outbox_drops"`
}

// Frame is one decoded protocol message. Which payload fields are
// meaningful depends on Type: Node and HelloVersion for THello, Key
// for TAnnounce/TInstall/TRemove, Stats for TStats; TFlush and
// TKeepalive carry nothing beyond the header.
type Frame struct {
	Type Type
	Seq  uint64

	HelloVersion uint16
	Node         uint64

	Key features.FlowKey

	Stats StatsPayload
}

// Codec errors. DecodeFrame returns exactly one of these (possibly
// wrapped with position detail) for every malformed input; it never
// panics, which the fuzz target pins.
var (
	ErrTruncated   = errors.New("fed: truncated frame")
	ErrOversize    = errors.New("fed: frame length exceeds protocol maximum")
	ErrUnknownType = errors.New("fed: unknown frame type")
	ErrBadLength   = errors.New("fed: frame length does not match type")
	ErrBadMagic    = errors.New("fed: bad hello magic")
)

// payloadLen returns the exact payload width for a frame type, or -1
// for an unknown type.
func payloadLen(t Type) int {
	switch t {
	case THello:
		return helloLen
	case TAnnounce, TInstall, TRemove:
		return keyLen
	case TFlush, TKeepalive:
		return 0
	case TStats:
		return statsLen
	}
	return -1
}

// AppendFrame encodes f onto dst and returns the extended slice. It
// errors on a frame whose Type is unknown (the zero Frame included)
// rather than emitting bytes no decoder accepts.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	plen := payloadLen(f.Type)
	if plen < 0 {
		return dst, fmt.Errorf("%w: %d", ErrUnknownType, uint8(f.Type))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(headerLen+plen))
	dst = append(dst, byte(f.Type))
	dst = binary.BigEndian.AppendUint64(dst, f.Seq)
	switch f.Type {
	case THello:
		dst = append(dst, helloMagic[:]...)
		dst = binary.BigEndian.AppendUint16(dst, f.HelloVersion)
		dst = binary.BigEndian.AppendUint64(dst, f.Node)
	case TAnnounce, TInstall, TRemove:
		kb := f.Key.Bytes()
		dst = append(dst, kb[:]...)
	case TStats:
		dst = binary.BigEndian.AppendUint64(dst, f.Stats.Packets)
		dst = binary.BigEndian.AppendUint64(dst, f.Stats.Installed)
		dst = binary.BigEndian.AppendUint64(dst, f.Stats.Evicted)
		dst = binary.BigEndian.AppendUint64(dst, f.Stats.BlacklistLen)
		dst = binary.BigEndian.AppendUint64(dst, f.Stats.QueueDrops)
		dst = binary.BigEndian.AppendUint64(dst, f.Stats.OutboxDrops)
	}
	return dst, nil
}

// DecodeFrame parses one frame from the front of b, returning the
// frame and the number of bytes consumed. A short buffer returns
// ErrTruncated (read more and retry); every other error is a permanent
// protocol violation. Trailing bytes beyond the first frame are left
// for the next call, so the decoder composes with any buffering
// strategy.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < 4 {
		return Frame{}, 0, ErrTruncated
	}
	blen := int(binary.BigEndian.Uint32(b))
	if blen > MaxFrameLen-4 {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes", ErrOversize, blen)
	}
	if blen < headerLen {
		return Frame{}, 0, fmt.Errorf("%w: body %d bytes, need at least %d", ErrBadLength, blen, headerLen)
	}
	if len(b) < 4+blen {
		return Frame{}, 0, ErrTruncated
	}
	body := b[4 : 4+blen]
	f := Frame{Type: Type(body[0]), Seq: binary.BigEndian.Uint64(body[1:9])}
	plen := payloadLen(f.Type)
	if plen < 0 {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrUnknownType, body[0])
	}
	if blen != headerLen+plen {
		return Frame{}, 0, fmt.Errorf("%w: %s wants %d payload bytes, got %d", ErrBadLength, f.Type, plen, blen-headerLen)
	}
	p := body[headerLen:]
	switch f.Type {
	case THello:
		if [4]byte(p[0:4]) != helloMagic {
			return Frame{}, 0, ErrBadMagic
		}
		f.HelloVersion = binary.BigEndian.Uint16(p[4:6])
		f.Node = binary.BigEndian.Uint64(p[6:14])
	case TAnnounce, TInstall, TRemove:
		f.Key = features.FlowKeyFromBytes([13]byte(p))
	case TStats:
		f.Stats = StatsPayload{
			Packets:      binary.BigEndian.Uint64(p[0:8]),
			Installed:    binary.BigEndian.Uint64(p[8:16]),
			Evicted:      binary.BigEndian.Uint64(p[16:24]),
			BlacklistLen: binary.BigEndian.Uint64(p[24:32]),
			QueueDrops:   binary.BigEndian.Uint64(p[32:40]),
			OutboxDrops:  binary.BigEndian.Uint64(p[40:48]),
		}
	}
	return f, 4 + blen, nil
}

// WriteFrame encodes f into scratch (reusing its backing array when
// large enough) and writes the whole frame to w in one call.
func WriteFrame(w io.Writer, scratch []byte, f *Frame) error {
	buf, err := AppendFrame(scratch[:0], f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads exactly one frame from r into f, using scratch
// (which must hold MaxFrameLen bytes) as the read buffer. io.EOF is
// returned untouched on a clean close between frames; a close mid-frame
// surfaces as io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, scratch []byte, f *Frame) error {
	if _, err := io.ReadFull(r, scratch[:4]); err != nil {
		return err
	}
	blen := int(binary.BigEndian.Uint32(scratch))
	if blen > MaxFrameLen-4 {
		return fmt.Errorf("%w: %d bytes", ErrOversize, blen)
	}
	if blen < headerLen {
		return fmt.Errorf("%w: body %d bytes, need at least %d", ErrBadLength, blen, headerLen)
	}
	if _, err := io.ReadFull(r, scratch[4:4+blen]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	got, _, err := DecodeFrame(scratch[:4+blen])
	if err != nil {
		return err
	}
	*f = got
	return nil
}
