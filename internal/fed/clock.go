package fed

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts the two time operations the federation layer needs —
// reading wall time (connection deadlines) and waking after a delay
// (keepalives, reconnect backoff) — so every timing behaviour is
// drivable from a deterministic fake in tests. Library code in this
// package never touches the time package's global clock directly;
// binaries inject SystemClock.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// SystemClock returns the process wall clock.
func SystemClock() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time { //iguard:allow(determinism) the wall clock is this type's entire purpose; deterministic code injects FakeClock instead
	return time.Now()
}

func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually advanced Clock for deterministic tests: no
// timer fires until Advance moves the clock past its deadline, so
// keepalive cadences and reconnect backoffs become exact, repeatable
// schedules instead of wall-time races.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a fake clock reading start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock: the returned channel fires once the clock
// has been advanced to or past now+d. A non-positive d fires on the
// next Advance call (including Advance(0)), never synchronously, so
// callers see uniform channel semantics.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	c.timers = append(c.timers, t)
	return t.ch
}

// Timers reports how many registered timers have not yet fired. Tests
// use it to wait until the code under test is parked on After before
// advancing.
func (c *FakeClock) Timers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// Advance moves the clock forward by d and fires every timer whose
// deadline has passed, in deadline order. Fires happen outside the
// clock's lock (the channels are buffered, so delivery never blocks).
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due []*fakeTimer
	var rest []*fakeTimer
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			due = append(due, t)
		} else {
			rest = append(rest, t)
		}
	}
	c.timers = rest
	now := c.now
	c.mu.Unlock()

	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, t := range due {
		t.ch <- now
	}
}
