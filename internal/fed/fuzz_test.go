package fed

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode hardens the wire codec: arbitrary bytes must never
// panic or over-consume, and every accepted frame must re-encode to
// the exact bytes it was decoded from (encode∘decode identity — the
// codec has no don't-care bits, so a frame the hub accepts is a frame
// the hub could itself have sent).
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range sampleFrames() {
		fr := fr
		enc, err := AppendFrame(nil, &fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		// Truncations and bit flips of valid frames steer the fuzzer
		// toward the interesting boundaries.
		f.Add(enc[:len(enc)-1])
		f.Add(mutate(enc, 4, 0xff))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, MaxFrameLen))
	f.Add([]byte{0, 0, 0, 9, 1, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("rejected input reported %d consumed bytes", n)
			}
			return
		}
		if n < 4+headerLen || n > len(data) || n > MaxFrameLen {
			t.Fatalf("consumed %d bytes of %d (max %d)", n, len(data), MaxFrameLen)
		}
		re, err := AppendFrame(nil, &fr)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("encode∘decode not identity:\n in  %x\n out %x", data[:n], re)
		}
		// The stream face must agree with the slice face.
		scratch := make([]byte, MaxFrameLen)
		var viaStream Frame
		if err := ReadFrame(bytes.NewReader(data), scratch, &viaStream); err != nil {
			t.Fatalf("ReadFrame rejected what DecodeFrame accepted: %v", err)
		}
		if viaStream != fr {
			t.Fatalf("stream decode disagrees: %+v vs %+v", viaStream, fr)
		}
	})
}
