package fed

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"iguard/internal/features"
)

func testKey(n byte) features.FlowKey {
	return features.FlowKey{
		SrcIP: [4]byte{10, 0, 0, n}, DstIP: [4]byte{192, 168, 1, 1},
		SrcPort: 4000 + uint16(n), DstPort: 443, Proto: 6,
	}
}

// sampleFrames covers every type with non-trivial payloads.
func sampleFrames() []Frame {
	return []Frame{
		{Type: THello, Seq: 1, HelloVersion: Version, Node: 0xdeadbeefcafe},
		{Type: TAnnounce, Seq: 2, Key: testKey(7)},
		{Type: TInstall, Seq: 3, Key: testKey(9).Canonical()},
		{Type: TRemove, Seq: 4, Key: testKey(11)},
		{Type: TFlush, Seq: 5},
		{Type: TStats, Seq: 6, Stats: StatsPayload{
			Packets: 1 << 40, Installed: 17, Evicted: 3,
			BlacklistLen: 14, QueueDrops: 5, OutboxDrops: 1,
		}},
		{Type: TKeepalive, Seq: 7},
	}
}

// TestFrameRoundTrip pins encode∘decode identity for every frame type,
// both via the byte-slice codec and the io stream faces.
func TestFrameRoundTrip(t *testing.T) {
	for _, want := range sampleFrames() {
		enc, err := AppendFrame(nil, &want)
		if err != nil {
			t.Fatalf("%v: encode: %v", want.Type, err)
		}
		if len(enc) > MaxFrameLen {
			t.Fatalf("%v: encoded to %d bytes, exceeds MaxFrameLen=%d", want.Type, len(enc), MaxFrameLen)
		}
		got, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Type, err)
		}
		if n != len(enc) {
			t.Fatalf("%v: consumed %d of %d bytes", want.Type, n, len(enc))
		}
		if got != want {
			t.Fatalf("%v: round trip changed frame:\n got %+v\nwant %+v", want.Type, got, want)
		}

		var buf bytes.Buffer
		scratch := make([]byte, MaxFrameLen)
		if err := WriteFrame(&buf, scratch, &want); err != nil {
			t.Fatalf("%v: WriteFrame: %v", want.Type, err)
		}
		var rt Frame
		if err := ReadFrame(&buf, scratch, &rt); err != nil {
			t.Fatalf("%v: ReadFrame: %v", want.Type, err)
		}
		if rt != want {
			t.Fatalf("%v: stream round trip changed frame", want.Type)
		}
	}
}

// TestFrameStreamConcatenation checks that back-to-back frames decode
// one at a time with correct consumption offsets.
func TestFrameStreamConcatenation(t *testing.T) {
	frames := sampleFrames()
	var stream []byte
	var err error
	for i := range frames {
		stream, err = AppendFrame(stream, &frames[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; len(stream) > 0; i++ {
		got, n, err := DecodeFrame(stream)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != frames[i] {
			t.Fatalf("frame %d mismatch: got %+v want %+v", i, got, frames[i])
		}
		stream = stream[n:]
	}
}

// TestFrameDecodeRejections pins the error classes: truncation is
// retryable, everything else is a permanent protocol violation.
func TestFrameDecodeRejections(t *testing.T) {
	valid, err := AppendFrame(nil, &Frame{Type: TInstall, Seq: 9, Key: testKey(1)})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short length prefix", valid[:3], ErrTruncated},
		{"truncated body", valid[:len(valid)-1], ErrTruncated},
		{"oversize length", []byte{0xff, 0xff, 0xff, 0xff}, ErrOversize},
		{"undersize length", []byte{0, 0, 0, 1, 1}, ErrBadLength},
		{"unknown type", mutate(valid, 4, 0x7f), ErrUnknownType},
		{"zero type", mutate(valid, 4, 0), ErrUnknownType},
		{"length/type mismatch", mutate(valid, 4, byte(TFlush)), ErrBadLength},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: err=%v want %v", tc.name, err, tc.want)
		}
	}

	// A hello with corrupt magic is rejected even though the frame is
	// structurally sound.
	hello, err := AppendFrame(nil, &Frame{Type: THello, Seq: 1, HelloVersion: Version, Node: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeFrame(mutate(hello, 13, 'X')); !errors.Is(err, ErrBadMagic) {
		t.Errorf("corrupt magic: err=%v want ErrBadMagic", err)
	}

	// Encoding an unknown (or zero) type is refused symmetrically.
	if _, err := AppendFrame(nil, &Frame{}); !errors.Is(err, ErrUnknownType) {
		t.Errorf("encode zero frame: err=%v want ErrUnknownType", err)
	}

	// A stream that dies mid-frame surfaces as ErrUnexpectedEOF.
	scratch := make([]byte, MaxFrameLen)
	var f Frame
	if err := ReadFrame(bytes.NewReader(valid[:len(valid)-2]), scratch, &f); err != io.ErrUnexpectedEOF {
		t.Errorf("mid-frame EOF: err=%v want io.ErrUnexpectedEOF", err)
	}
	if err := ReadFrame(bytes.NewReader(nil), scratch, &f); err != io.EOF {
		t.Errorf("clean EOF: err=%v want io.EOF", err)
	}
}

func mutate(b []byte, i int, v byte) []byte {
	out := append([]byte(nil), b...)
	out[i] = v
	return out
}

// TestFlowKeyBytesRoundTrip pins the key codec the frame payloads use.
func TestFlowKeyBytesRoundTrip(t *testing.T) {
	k := testKey(42)
	if got := features.FlowKeyFromBytes(k.Bytes()); got != k {
		t.Fatalf("round trip changed key: got %v want %v", got, k)
	}
}

// TestFakeClock pins the fake clock's firing rules: timers fire in
// deadline order once Advance crosses them, never before.
func TestFakeClock(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewFakeClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now=%v want %v", c.Now(), start)
	}
	late := c.After(2 * time.Second)
	early := c.After(time.Second)
	if n := c.Timers(); n != 2 {
		t.Fatalf("Timers=%d want 2", n)
	}
	select {
	case <-early:
		t.Fatal("timer fired before Advance")
	default:
	}
	c.Advance(time.Second)
	select {
	case <-early:
	default:
		t.Fatal("1s timer did not fire at +1s")
	}
	select {
	case <-late:
		t.Fatal("2s timer fired at +1s")
	default:
	}
	c.Advance(time.Second)
	select {
	case <-late:
	default:
		t.Fatal("2s timer did not fire at +2s")
	}
	if n := c.Timers(); n != 0 {
		t.Fatalf("Timers=%d want 0 after firing", n)
	}
}
