package rules

import "testing"

// TestPrefixValid pins the well-formedness predicate the p4lint tables
// analyzer relies on.
func TestPrefixValid(t *testing.T) {
	cases := []struct {
		p     Prefix
		width int
		want  bool
	}{
		{Prefix{Value: 0, MaskBits: 0}, 8, true},    // full wildcard
		{Prefix{Value: 7, MaskBits: 8}, 8, true},    // host prefix
		{Prefix{Value: 8, MaskBits: 5}, 8, true},    // aligned block
		{Prefix{Value: 9, MaskBits: 5}, 8, false},   // wildcard bit set
		{Prefix{Value: 256, MaskBits: 8}, 8, false}, // value exceeds width
		{Prefix{Value: 0, MaskBits: 9}, 8, false},   // mask exceeds width
		{Prefix{Value: 0, MaskBits: -1}, 8, false},  // negative mask
		{Prefix{Value: 0, MaskBits: 0}, 0, false},   // unrepresentable width
		{Prefix{Value: 0, MaskBits: 0}, 64, false},  // width beyond uint64 guard
		{Prefix{Value: 1, MaskBits: 63}, 63, true},  // max supported width
	}
	for _, c := range cases {
		if got := c.p.Valid(c.width); got != c.want {
			t.Errorf("Prefix%+v.Valid(%d) = %v, want %v", c.p, c.width, got, c.want)
		}
	}
}

func TestPrefixRange(t *testing.T) {
	if r := (Prefix{Value: 8, MaskBits: 5}).Range(8); r != (IntRange{8, 15}) {
		t.Errorf("block range = %+v", r)
	}
	if r := (Prefix{Value: 7, MaskBits: 8}).Range(8); r != (IntRange{7, 7}) {
		t.Errorf("host range = %+v", r)
	}
	if r := (Prefix{Value: 0, MaskBits: 0}).Range(8); r != (IntRange{0, 255}) {
		t.Errorf("wildcard range = %+v", r)
	}
}

// TestRangeExpansionBoundaries pins the boundary shapes the ISSUE names:
// the full domain (one wildcard), a single value (one host prefix), and
// worst-case ranges at the maximum quantisation width, all within the
// 2w−2 expansion bound and exactly tiling their interval.
func TestRangeExpansionBoundaries(t *testing.T) {
	// Full domain at every width up to the 63-bit representation cap.
	for _, w := range []int{1, 4, 12, 32, 63} {
		full := IntRange{0, uint64(1)<<w - 1}
		ps := RangeToPrefixes(full, w)
		if len(ps) != 1 || ps[0].MaskBits != 0 {
			t.Errorf("width %d full domain = %+v, want one wildcard", w, ps)
		}
		if !PrefixesCoverExactly(ps, w, full) {
			t.Errorf("width %d full domain does not tile", w)
		}
	}
	// Single values, including the domain edges.
	for _, w := range []int{1, 12, 32, 63} {
		top := uint64(1)<<w - 1
		for _, v := range []uint64{0, top / 2, top} {
			one := IntRange{v, v}
			ps := RangeToPrefixes(one, w)
			if len(ps) != 1 || ps[0].MaskBits != w || ps[0].Value != v {
				t.Errorf("width %d value %d = %+v, want one host prefix", w, v, ps)
			}
			if !PrefixesCoverExactly(ps, w, one) {
				t.Errorf("width %d value %d does not tile", w, v)
			}
		}
	}
	// The classic worst case [1, 2^w−2] hits the 2w−2 bound exactly,
	// including at the maximum quantisation width the compiler accepts.
	for _, w := range []int{2, 4, 12, 32} {
		worst := IntRange{1, uint64(1)<<w - 2}
		ps := RangeToPrefixes(worst, w)
		if want := MaxRangeExpansion(w); len(ps) != want {
			t.Errorf("width %d worst case = %d prefixes, want %d", w, len(ps), want)
		}
		if !PrefixesCoverExactly(ps, w, worst) {
			t.Errorf("width %d worst case does not tile", w)
		}
	}
	if MaxRangeExpansion(1) != 1 || MaxRangeExpansion(0) != 1 {
		t.Error("degenerate widths must bound to 1")
	}
}

// TestExpansionBoundExhaustive checks every range of small widths stays
// within MaxRangeExpansion and tiles exactly.
func TestExpansionBoundExhaustive(t *testing.T) {
	for w := 1; w <= 6; w++ {
		top := uint64(1)<<w - 1
		for lo := uint64(0); lo <= top; lo++ {
			for hi := lo; hi <= top; hi++ {
				r := IntRange{lo, hi}
				ps := RangeToPrefixes(r, w)
				if len(ps) > MaxRangeExpansion(w) {
					t.Fatalf("width %d range %d..%d expands to %d > bound %d", w, lo, hi, len(ps), MaxRangeExpansion(w))
				}
				if !PrefixesCoverExactly(ps, w, r) {
					t.Fatalf("width %d range %d..%d does not tile exactly", w, lo, hi)
				}
			}
		}
	}
}

// TestPrefixesCoverExactlyRejects pins the rejection cases: gaps,
// overlaps, out-of-order blocks, overshoot, and invalid prefixes.
func TestPrefixesCoverExactlyRejects(t *testing.T) {
	r := IntRange{0, 7}
	host := func(v uint64) Prefix { return Prefix{Value: v, MaskBits: 4} }
	if PrefixesCoverExactly([]Prefix{host(0), host(2)}, 4, IntRange{0, 2}) {
		t.Error("gap accepted")
	}
	if PrefixesCoverExactly([]Prefix{{Value: 0, MaskBits: 1}, {Value: 4, MaskBits: 2}}, 4, r) {
		t.Error("overlap accepted")
	}
	if PrefixesCoverExactly([]Prefix{{Value: 4, MaskBits: 2}, {Value: 0, MaskBits: 2}}, 4, r) {
		t.Error("out-of-order accepted")
	}
	if PrefixesCoverExactly([]Prefix{{Value: 0, MaskBits: 0}}, 4, r) {
		t.Error("overshoot accepted")
	}
	if PrefixesCoverExactly([]Prefix{{Value: 1, MaskBits: 2}}, 4, IntRange{0, 3}) {
		t.Error("invalid prefix accepted")
	}
	if !PrefixesCoverExactly(nil, 4, IntRange{5, 2}) {
		t.Error("empty set must cover the empty range")
	}
	if PrefixesCoverExactly(nil, 4, IntRange{0, 1}) {
		t.Error("empty set accepted for a non-empty range")
	}
	// Extra prefixes after reaching the upper bound are rejected.
	if PrefixesCoverExactly([]Prefix{{Value: 0, MaskBits: 2}, {Value: 4, MaskBits: 2}}, 4, IntRange{0, 3}) {
		t.Error("trailing prefix accepted")
	}
}
