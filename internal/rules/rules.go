package rules

import (
	"encoding/json"
	"fmt"
	"io"
)

// Rule is one hypercube with an inferred class label (0 benign,
// 1 malicious). Whitelist rules are the label-0 rules.
type Rule struct {
	Box   Box `json:"box"`
	Label int `json:"label"`
}

// RuleSet is an ordered list of non-overlapping rules plus the default
// label applied when no rule matches. For whitelist deployments the
// default is 1 (malicious): traffic must match a benign hypercube to be
// whitelisted.
type RuleSet struct {
	Rules        []Rule `json:"rules"`
	Dim          int    `json:"dim"`
	DefaultLabel int    `json:"default_label"`
}

// Match returns the label of the first rule containing x, or the
// default label when none does.
func (rs *RuleSet) Match(x []float64) int {
	for i := range rs.Rules {
		if rs.Rules[i].Box.Contains(x) {
			return rs.Rules[i].Label
		}
	}
	return rs.DefaultLabel
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.Rules) }

// Whitelist returns only the benign (label 0) rules — the set installed
// on the switch.
func (rs *RuleSet) Whitelist() []Rule {
	var out []Rule
	for _, r := range rs.Rules {
		if r.Label == 0 {
			out = append(out, r)
		}
	}
	return out
}

// WhitelistSet returns a RuleSet holding only the benign rules with a
// malicious default — the exact artefact installed in the data plane.
func (rs *RuleSet) WhitelistSet() *RuleSet {
	return &RuleSet{Rules: rs.Whitelist(), Dim: rs.Dim, DefaultLabel: 1}
}

// Merge merges the rule sets (e.g. the FL rules with the early-packet PL
// rules from §3.3.1); the receiver's rules take precedence on overlap
// because Match scans in order.
func (rs *RuleSet) Merge(other *RuleSet) *RuleSet {
	out := &RuleSet{Dim: rs.Dim, DefaultLabel: rs.DefaultLabel}
	out.Rules = append(out.Rules, rs.Rules...)
	out.Rules = append(out.Rules, other.Rules...)
	return out
}

// WriteJSON serialises the rule set.
func (rs *RuleSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// ReadJSON deserialises a rule set written by WriteJSON.
func ReadJSON(r io.Reader) (*RuleSet, error) {
	var rs RuleSet
	if err := json.NewDecoder(r).Decode(&rs); err != nil {
		return nil, fmt.Errorf("rules: decode: %w", err)
	}
	return &rs, nil
}

// MarshalJSON renders the interval as [lo, hi].
func (iv Interval) MarshalJSON() ([]byte, error) {
	return json.Marshal([2]float64{iv.Lo, iv.Hi})
}

// UnmarshalJSON parses [lo, hi].
func (iv *Interval) UnmarshalJSON(data []byte) error {
	var pair [2]float64
	if err := json.Unmarshal(data, &pair); err != nil {
		return err
	}
	iv.Lo, iv.Hi = pair[0], pair[1]
	return nil
}

// Consistency implements §3.2.3's fidelity metric
// C = (1/N)·Σ 1{forest(x_i) = rules(x_i)} over the given samples.
func Consistency(rs *RuleSet, forest func([]float64) int, samples [][]float64) float64 {
	if len(samples) == 0 {
		return 1
	}
	agree := 0
	for _, x := range samples {
		if rs.Match(x) == forest(x) {
			agree++
		}
	}
	return float64(agree) / float64(len(samples))
}
