package rules

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Quantizer maps continuous feature values into the integer domain a
// switch matches on: feature i spans [Min[i], Max[i]] and is encoded as
// a Bits[i]-bit unsigned integer.
type Quantizer struct {
	Min  []float64
	Max  []float64
	Bits []int
}

// NewQuantizer builds a quantizer with uniform bit width for every
// feature over the given per-feature ranges.
func NewQuantizer(min, max []float64, bits int) *Quantizer {
	if len(min) != len(max) {
		panic(fmt.Sprintf("rules: quantizer bounds mismatch %d vs %d", len(min), len(max)))
	}
	b := make([]int, len(min))
	for i := range b {
		b[i] = bits
	}
	return &Quantizer{Min: append([]float64(nil), min...), Max: append([]float64(nil), max...), Bits: b}
}

// Levels returns the number of quantisation levels for feature i.
func (q *Quantizer) Levels(i int) uint64 { return uint64(1) << q.Bits[i] }

// Encode maps value v of feature i into [0, 2^bits−1], clamping
// out-of-range values.
func (q *Quantizer) Encode(i int, v float64) uint64 {
	span := q.Max[i] - q.Min[i]
	if span <= 0 {
		return 0
	}
	levels := float64(q.Levels(i))
	code := math.Floor((v - q.Min[i]) / span * levels)
	if code < 0 {
		code = 0
	}
	if code > levels-1 {
		code = levels - 1
	}
	return uint64(code)
}

// Decode returns the lower edge of code's quantisation bucket for
// feature i.
func (q *Quantizer) Decode(i int, code uint64) float64 {
	span := q.Max[i] - q.Min[i]
	return q.Min[i] + float64(code)/float64(q.Levels(i))*span
}

// EncodeVector quantises a whole feature vector.
func (q *Quantizer) EncodeVector(x []float64) []uint64 {
	return q.EncodeVectorInto(make([]uint64, len(x)), x)
}

// EncodeVectorInto quantises x into dst, which must have capacity at
// least len(x), and returns dst[:len(x)]. It is the allocation-free
// form of EncodeVector for per-packet hot paths with caller-owned
// scratch.
//
//iguard:hotpath
func (q *Quantizer) EncodeVectorInto(dst []uint64, x []float64) []uint64 {
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = q.Encode(i, v)
	}
	return dst
}

// IntRange is an inclusive integer range [Lo, Hi] over a quantised
// feature.
type IntRange struct {
	Lo, Hi uint64
}

// TCAMRule is one whitelist rule quantised to integer ranges.
type TCAMRule struct {
	Ranges []IntRange
	Label  int
}

// QuantizeRule converts a hypercube rule into integer ranges under q by
// snapping each box edge to its *nearest* bucket boundary. Adjacent
// cells share edges, so snapping keeps the quantised arrangement
// watertight: no cracks between benign cells and no swallowing of
// malicious slivers wider than half a bucket — mislabels are confined
// to within half a bucket of true region edges. Returns ok=false when
// the box collapses to an empty range at this bit width (sub-bucket
// rules vanish; their space falls to the malicious default).
func QuantizeRule(r Rule, q *Quantizer) (TCAMRule, bool) {
	out := TCAMRule{Label: r.Label, Ranges: make([]IntRange, len(r.Box))}
	for i, iv := range r.Box {
		span := q.Max[i] - q.Min[i]
		levels := int64(q.Levels(i))
		if span <= 0 {
			out.Ranges[i] = IntRange{Lo: 0, Hi: uint64(levels - 1)}
			continue
		}
		bucket := span / float64(levels)
		loB := int64(math.Round((iv.Lo - q.Min[i]) / bucket))
		hiB := int64(math.Round((iv.Hi - q.Min[i]) / bucket))
		if loB < 0 {
			loB = 0
		}
		if hiB > levels {
			hiB = levels
		}
		if hiB <= loB {
			return TCAMRule{}, false
		}
		out.Ranges[i] = IntRange{Lo: uint64(loB), Hi: uint64(hiB - 1)}
	}
	return out, true
}

// Prefix is a ternary match value/mask pair of the given bit width.
type Prefix struct {
	Value uint64
	// MaskBits is the number of leading exact bits; the remaining
	// width−MaskBits bits are wildcards.
	MaskBits int
}

// RangeToPrefixes expands an inclusive integer range into the minimal
// set of prefixes covering it — the classic TCAM range-expansion
// algorithm. A w-bit range expands into at most 2w−2 prefixes.
func RangeToPrefixes(r IntRange, width int) []Prefix {
	var out []Prefix
	lo, hi := r.Lo, r.Hi
	if hi < lo {
		return nil
	}
	max := uint64(1)<<width - 1
	for lo <= hi {
		// Largest block starting at lo, aligned and within [lo, hi].
		size := uint64(1)
		for {
			next := size << 1
			if next == 0 || lo&(next-1) != 0 || lo+next-1 > hi {
				break
			}
			size = next
		}
		bits := 0
		for s := size; s > 1; s >>= 1 {
			bits++
		}
		out = append(out, Prefix{Value: lo, MaskBits: width - bits})
		if lo+size-1 == max {
			break // would overflow
		}
		lo += size
	}
	return out
}

// Valid reports whether the prefix is well-formed at the given width:
// the mask length lies in [0, width], width is representable, the value
// fits the width, and every wildcarded (low) bit of the value is zero.
func (p Prefix) Valid(width int) bool {
	if width < 1 || width > 63 || p.MaskBits < 0 || p.MaskBits > width {
		return false
	}
	if p.Value >= uint64(1)<<width {
		return false
	}
	wild := uint64(1)<<(width-p.MaskBits) - 1
	return p.Value&wild == 0
}

// Range returns the inclusive integer interval a valid prefix covers.
func (p Prefix) Range(width int) IntRange {
	size := uint64(1) << (width - p.MaskBits)
	base := p.Value &^ (size - 1)
	return IntRange{Lo: base, Hi: base + size - 1}
}

// MaxRangeExpansion returns the worst-case prefix count of expanding
// one w-bit range: the classic 2w−2 bound (1 for w ≤ 1).
func MaxRangeExpansion(width int) int {
	if width <= 1 {
		return 1
	}
	return 2*width - 2
}

// PrefixesCoverExactly reports whether ps tiles exactly [r.Lo, r.Hi]:
// every prefix valid at the width, blocks contiguous in ascending
// order with no overlap, and the union equal to the range. This is the
// introspection hook p4lint uses to verify emitted rule entries against
// the expansion that should have produced them.
func PrefixesCoverExactly(ps []Prefix, width int, r IntRange) bool {
	if r.Hi < r.Lo || len(ps) == 0 {
		return len(ps) == 0 && r.Hi < r.Lo
	}
	next := r.Lo
	for i, p := range ps {
		if !p.Valid(width) {
			return false
		}
		pr := p.Range(width)
		if pr.Lo != next {
			return false
		}
		if pr.Hi == r.Hi {
			return i == len(ps)-1
		}
		if pr.Hi > r.Hi {
			return false
		}
		next = pr.Hi + 1
	}
	return false
}

// TCAMEntries returns the number of TCAM entries rule r occupies after
// per-field prefix expansion: the product of per-field prefix counts
// (multi-field ranges cross-multiply in a prefix-encoded TCAM).
func TCAMEntries(r TCAMRule, q *Quantizer) int {
	entries := 1
	for i, rg := range r.Ranges {
		// Full-range fields cost a single wildcard entry.
		if rg.Lo == 0 && rg.Hi == q.Levels(i)-1 {
			continue
		}
		n := len(RangeToPrefixes(rg, q.Bits[i]))
		if n == 0 {
			return 0
		}
		entries *= n
	}
	return entries
}

// CompiledRuleSet is a rule set quantised for switch installation.
type CompiledRuleSet struct {
	Rules        []TCAMRule
	Quantizer    *Quantizer
	DefaultLabel int
	// TotalEntries is the TCAM entry count after prefix expansion.
	TotalEntries int
	// KeyBits is the total match-key width (Σ feature bits).
	KeyBits int
	// bv is the bit-vector match index built by Compile; nil (e.g. on a
	// hand-assembled set) falls back to the linear scan.
	bv *bvIndex
}

// BVIndexBytes reports the memory footprint of the bit-vector match
// index in bytes, or 0 when the set matches via the linear scan.
func (c *CompiledRuleSet) BVIndexBytes() int {
	if c.bv == nil {
		return 0
	}
	return c.bv.bytes()
}

// MatcherKind names the active match implementation: "bitvector" when
// Compile built the constant-time index, "linear" otherwise.
func (c *CompiledRuleSet) MatcherKind() string {
	if c.bv == nil {
		return "linear"
	}
	return "bitvector"
}

// Compile quantises the rule set under q, drops rules that vanish at
// this resolution, and accounts TCAM entries. Only whitelist (label 0)
// rules are installed; everything else defaults to the malicious label,
// matching the paper's whitelist deployment.
func Compile(rs *RuleSet, q *Quantizer) *CompiledRuleSet {
	out := &CompiledRuleSet{Quantizer: q, DefaultLabel: 1}
	for _, b := range q.Bits {
		out.KeyBits += b
	}
	// Deduplicate rules that collapse to identical integer ranges. The
	// key is the raw little-endian range encoding: cheap, and stable by
	// construction rather than by fmt formatting convention. keyBuf is
	// reused across rules; the map only copies it on insert (Go elides
	// the string conversion for lookups).
	seen := map[string]bool{}
	var keyBuf []byte
	for _, r := range rs.Rules {
		if r.Label != 0 {
			continue
		}
		tr, ok := QuantizeRule(r, q)
		if !ok {
			continue
		}
		keyBuf = keyBuf[:0]
		for _, rg := range tr.Ranges {
			keyBuf = binary.LittleEndian.AppendUint64(keyBuf, rg.Lo)
			keyBuf = binary.LittleEndian.AppendUint64(keyBuf, rg.Hi)
		}
		if seen[string(keyBuf)] {
			continue
		}
		seen[string(keyBuf)] = true
		out.Rules = append(out.Rules, tr)
		out.TotalEntries += TCAMEntries(tr, q)
	}
	out.bv = buildBVIndex(out.Rules, q)
	if out.bv != nil {
		out.bv.calibrateBatch()
	}
	return out
}

// RangeKeyBits returns the TCAM key width of one rule under
// Tofino-style 4-bit nibble range encoding (DIRPE): each b-bit range
// field occupies ceil(b/4) nibbles of 16 one-hot bits, letting every
// rule install as a single TCAM entry instead of a per-field prefix
// cross-product.
func (c *CompiledRuleSet) RangeKeyBits() int {
	const bitsPerNibble = 16
	total := 0
	for _, b := range c.Quantizer.Bits {
		total += (b + 3) / 4 * bitsPerNibble
	}
	return total
}

// Match returns 0 when the quantised x falls in any installed whitelist
// rule, else the default (malicious) label. Vectors up to bvMaxDims
// wide quantise into a stack buffer, so the call is allocation-free on
// every iGuard feature space.
//
//iguard:hotpath
func (c *CompiledRuleSet) Match(x []float64) int {
	if len(x) <= bvMaxDims {
		var buf [bvMaxDims]uint64
		return c.MatchCodes(c.Quantizer.EncodeVectorInto(buf[:], x))
	}
	return c.matchWide(x)
}

// matchWide handles vectors wider than the stack buffer. No iGuard
// feature space is this wide (FL is 13, PL is 4), so the allocation is
// off the per-packet contract.
//
//iguard:coldpath only reachable for >bvMaxDims-dimensional vectors
func (c *CompiledRuleSet) matchWide(x []float64) int {
	return c.MatchCodes(c.Quantizer.EncodeVector(x))
}

// MatchInto is Match with caller-owned quantisation scratch (capacity
// at least len(x)): the explicit zero-allocation form for hot paths
// that also want the codes afterwards — scratch holds them on return.
//
//iguard:hotpath
func (c *CompiledRuleSet) MatchInto(x []float64, scratch []uint64) int {
	return c.MatchCodes(c.Quantizer.EncodeVectorInto(scratch, x))
}

// MatchCodes is Match over already-quantised feature codes, the form the
// switch data plane actually sees. With the bit-vector index (built by
// Compile) the cost is one interval lookup per feature plus a word-wise
// AND over ceil(rules/64)-word bitmaps — no per-rule branching, the
// software analogue of the hardware's single TCAM lookup.
//
//iguard:hotpath
func (c *CompiledRuleSet) MatchCodes(codes []uint64) int {
	ix := c.bv
	if ix == nil {
		return c.matchCodesLinear(codes)
	}
	var rowBuf [bvMaxDims]uint32
	feats := ix.feats
	rows := rowBuf[:len(feats)]
	for i := range feats {
		f := &feats[i]
		if codes[i] >= f.levels {
			// Quantised rule ranges never extend past the level count,
			// so an out-of-domain code misses every rule.
			return c.DefaultLabel
		}
		rows[i] = f.locate(codes[i])
	}
	words := ix.words
	for w := 0; w < words; w++ {
		acc := ^uint64(0)
		for i := range feats {
			acc &= feats[i].bitmaps[w*feats[i].nivs+int(rows[i])]
			if acc == 0 {
				break
			}
		}
		if acc != 0 {
			// A surviving bit is a whitelist rule covering every
			// feature's interval.
			return 0
		}
	}
	return c.DefaultLabel
}

// matchCodesLinear is the reference O(rules × features) scan, kept as
// the fallback for hand-assembled sets and as the oracle the
// differential tests pin the bit-vector matcher against.
func (c *CompiledRuleSet) matchCodesLinear(codes []uint64) int {
	for _, r := range c.Rules {
		hit := true
		for i, rg := range r.Ranges {
			if codes[i] < rg.Lo || codes[i] > rg.Hi {
				hit = false
				break
			}
		}
		if hit {
			return 0
		}
	}
	return c.DefaultLabel
}
