package rules

import (
	"fmt"
	"math"
)

// Quantizer maps continuous feature values into the integer domain a
// switch matches on: feature i spans [Min[i], Max[i]] and is encoded as
// a Bits[i]-bit unsigned integer.
type Quantizer struct {
	Min  []float64
	Max  []float64
	Bits []int
}

// NewQuantizer builds a quantizer with uniform bit width for every
// feature over the given per-feature ranges.
func NewQuantizer(min, max []float64, bits int) *Quantizer {
	if len(min) != len(max) {
		panic(fmt.Sprintf("rules: quantizer bounds mismatch %d vs %d", len(min), len(max)))
	}
	b := make([]int, len(min))
	for i := range b {
		b[i] = bits
	}
	return &Quantizer{Min: append([]float64(nil), min...), Max: append([]float64(nil), max...), Bits: b}
}

// Levels returns the number of quantisation levels for feature i.
func (q *Quantizer) Levels(i int) uint64 { return uint64(1) << q.Bits[i] }

// Encode maps value v of feature i into [0, 2^bits−1], clamping
// out-of-range values.
func (q *Quantizer) Encode(i int, v float64) uint64 {
	span := q.Max[i] - q.Min[i]
	if span <= 0 {
		return 0
	}
	levels := float64(q.Levels(i))
	code := math.Floor((v - q.Min[i]) / span * levels)
	if code < 0 {
		code = 0
	}
	if code > levels-1 {
		code = levels - 1
	}
	return uint64(code)
}

// Decode returns the lower edge of code's quantisation bucket for
// feature i.
func (q *Quantizer) Decode(i int, code uint64) float64 {
	span := q.Max[i] - q.Min[i]
	return q.Min[i] + float64(code)/float64(q.Levels(i))*span
}

// EncodeVector quantises a whole feature vector.
func (q *Quantizer) EncodeVector(x []float64) []uint64 {
	out := make([]uint64, len(x))
	for i, v := range x {
		out[i] = q.Encode(i, v)
	}
	return out
}

// IntRange is an inclusive integer range [Lo, Hi] over a quantised
// feature.
type IntRange struct {
	Lo, Hi uint64
}

// TCAMRule is one whitelist rule quantised to integer ranges.
type TCAMRule struct {
	Ranges []IntRange
	Label  int
}

// QuantizeRule converts a hypercube rule into integer ranges under q by
// snapping each box edge to its *nearest* bucket boundary. Adjacent
// cells share edges, so snapping keeps the quantised arrangement
// watertight: no cracks between benign cells and no swallowing of
// malicious slivers wider than half a bucket — mislabels are confined
// to within half a bucket of true region edges. Returns ok=false when
// the box collapses to an empty range at this bit width (sub-bucket
// rules vanish; their space falls to the malicious default).
func QuantizeRule(r Rule, q *Quantizer) (TCAMRule, bool) {
	out := TCAMRule{Label: r.Label, Ranges: make([]IntRange, len(r.Box))}
	for i, iv := range r.Box {
		span := q.Max[i] - q.Min[i]
		levels := int64(q.Levels(i))
		if span <= 0 {
			out.Ranges[i] = IntRange{Lo: 0, Hi: uint64(levels - 1)}
			continue
		}
		bucket := span / float64(levels)
		loB := int64(math.Round((iv.Lo - q.Min[i]) / bucket))
		hiB := int64(math.Round((iv.Hi - q.Min[i]) / bucket))
		if loB < 0 {
			loB = 0
		}
		if hiB > levels {
			hiB = levels
		}
		if hiB <= loB {
			return TCAMRule{}, false
		}
		out.Ranges[i] = IntRange{Lo: uint64(loB), Hi: uint64(hiB - 1)}
	}
	return out, true
}

// Prefix is a ternary match value/mask pair of the given bit width.
type Prefix struct {
	Value uint64
	// MaskBits is the number of leading exact bits; the remaining
	// width−MaskBits bits are wildcards.
	MaskBits int
}

// RangeToPrefixes expands an inclusive integer range into the minimal
// set of prefixes covering it — the classic TCAM range-expansion
// algorithm. A w-bit range expands into at most 2w−2 prefixes.
func RangeToPrefixes(r IntRange, width int) []Prefix {
	var out []Prefix
	lo, hi := r.Lo, r.Hi
	if hi < lo {
		return nil
	}
	max := uint64(1)<<width - 1
	for lo <= hi {
		// Largest block starting at lo, aligned and within [lo, hi].
		size := uint64(1)
		for {
			next := size << 1
			if next == 0 || lo&(next-1) != 0 || lo+next-1 > hi {
				break
			}
			size = next
		}
		bits := 0
		for s := size; s > 1; s >>= 1 {
			bits++
		}
		out = append(out, Prefix{Value: lo, MaskBits: width - bits})
		if lo+size-1 == max {
			break // would overflow
		}
		lo += size
	}
	return out
}

// TCAMEntries returns the number of TCAM entries rule r occupies after
// per-field prefix expansion: the product of per-field prefix counts
// (multi-field ranges cross-multiply in a prefix-encoded TCAM).
func TCAMEntries(r TCAMRule, q *Quantizer) int {
	entries := 1
	for i, rg := range r.Ranges {
		// Full-range fields cost a single wildcard entry.
		if rg.Lo == 0 && rg.Hi == q.Levels(i)-1 {
			continue
		}
		n := len(RangeToPrefixes(rg, q.Bits[i]))
		if n == 0 {
			return 0
		}
		entries *= n
	}
	return entries
}

// CompiledRuleSet is a rule set quantised for switch installation.
type CompiledRuleSet struct {
	Rules        []TCAMRule
	Quantizer    *Quantizer
	DefaultLabel int
	// TotalEntries is the TCAM entry count after prefix expansion.
	TotalEntries int
	// KeyBits is the total match-key width (Σ feature bits).
	KeyBits int
}

// Compile quantises the rule set under q, drops rules that vanish at
// this resolution, and accounts TCAM entries. Only whitelist (label 0)
// rules are installed; everything else defaults to the malicious label,
// matching the paper's whitelist deployment.
func Compile(rs *RuleSet, q *Quantizer) *CompiledRuleSet {
	out := &CompiledRuleSet{Quantizer: q, DefaultLabel: 1}
	for _, b := range q.Bits {
		out.KeyBits += b
	}
	// Deduplicate rules that collapse to identical integer ranges.
	seen := map[string]bool{}
	for _, r := range rs.Rules {
		if r.Label != 0 {
			continue
		}
		tr, ok := QuantizeRule(r, q)
		if !ok {
			continue
		}
		key := fmt.Sprint(tr.Ranges)
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Rules = append(out.Rules, tr)
		out.TotalEntries += TCAMEntries(tr, q)
	}
	return out
}

// RangeKeyBits returns the TCAM key width of one rule under
// Tofino-style 4-bit nibble range encoding (DIRPE): each b-bit range
// field occupies ceil(b/4) nibbles of 16 one-hot bits, letting every
// rule install as a single TCAM entry instead of a per-field prefix
// cross-product.
func (c *CompiledRuleSet) RangeKeyBits() int {
	const bitsPerNibble = 16
	total := 0
	for _, b := range c.Quantizer.Bits {
		total += (b + 3) / 4 * bitsPerNibble
	}
	return total
}

// Match returns 0 when the quantised x falls in any installed whitelist
// rule, else the default (malicious) label.
func (c *CompiledRuleSet) Match(x []float64) int {
	codes := c.Quantizer.EncodeVector(x)
	for _, r := range c.Rules {
		hit := true
		for i, rg := range r.Ranges {
			if codes[i] < rg.Lo || codes[i] > rg.Hi {
				hit = false
				break
			}
		}
		if hit {
			return 0
		}
	}
	return c.DefaultLabel
}

// MatchCodes is Match over already-quantised feature codes, the form the
// switch data plane actually sees.
func (c *CompiledRuleSet) MatchCodes(codes []uint64) int {
	for _, r := range c.Rules {
		hit := true
		for i, rg := range r.Ranges {
			if codes[i] < rg.Lo || codes[i] > rg.Hi {
				hit = false
				break
			}
		}
		if hit {
			return 0
		}
	}
	return c.DefaultLabel
}
