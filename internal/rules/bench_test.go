package rules

import (
	"fmt"
	"testing"

	"iguard/internal/mathx"
)

// benchCompiled builds a compiled whitelist of count random 4-feature
// rules at 12-bit quantisation — the PL-table shape the serving
// benchmarks replay against — plus a deterministic batch of quantised
// probe vectors (a mix of hits and misses).
func benchCompiled(count int) (*CompiledRuleSet, [][]uint64) {
	r := mathx.NewRand(int64(count))
	c := Compile(randomRuleSet(r, 4, count), quantizerFor(4, 12))
	probes := make([][]uint64, 256)
	levels := int(c.Quantizer.Levels(0))
	for i := range probes {
		codes := make([]uint64, 4)
		for d := range codes {
			codes[d] = uint64(r.Intn(levels))
		}
		probes[i] = codes
	}
	return c, probes
}

// BenchmarkMatch contrasts the bit-vector matcher against the linear
// reference scan across rule counts. The linear numbers are the
// pre-index baseline (the scan is byte-identical to the old
// MatchCodes); the bitvector numbers are what ships.
func BenchmarkMatch(b *testing.B) {
	for _, count := range []int{16, 128, 1024} {
		c, probes := benchCompiled(count)
		if c.MatcherKind() != "bitvector" {
			b.Fatalf("rules=%d compiled without the bit-vector index", count)
		}
		b.Run(fmt.Sprintf("impl=linear/rules=%d", count), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.matchCodesLinear(probes[i%len(probes)])
			}
		})
		b.Run(fmt.Sprintf("impl=bitvector/rules=%d", count), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.MatchCodes(probes[i%len(probes)])
			}
		})
	}
}

// BenchmarkMatchFloat measures the full float→verdict path (quantise
// into a stack buffer, then the bit-vector match) — what the switch
// pipeline's classify arms pay per packet.
func BenchmarkMatchFloat(b *testing.B) {
	for _, count := range []int{16, 128, 1024} {
		c, _ := benchCompiled(count)
		r := mathx.NewRand(9)
		xs := make([][]float64, 256)
		for i := range xs {
			x := make([]float64, 4)
			for d := range x {
				x[d] = r.Float64() * 100
			}
			xs[i] = x
		}
		b.Run(fmt.Sprintf("rules=%d", count), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Match(xs[i%len(xs)])
			}
		})
	}
}

// BenchmarkMatchColumns contrasts the batch matcher against per-vector
// MatchCodes over the same probes: ns/op is per vector in both cases,
// so the gap is the cache-linearity and amortisation the feature-major
// plane walk buys.
func BenchmarkMatchColumns(b *testing.B) {
	for _, count := range []int{16, 128, 1024} {
		c, probes := benchCompiled(count)
		n := len(probes)
		cols := columnsOf(probes, 4)
		dst := make([]int, n)
		var scratch BatchScratch
		b.Run(fmt.Sprintf("impl=percode/rules=%d", count), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.MatchCodes(probes[i%n])
			}
		})
		// The two batch arms forced each way, plus the calibrated
		// per-compile choice — the spread between "columns" and
		// "hybrid" at each rule count is what calibrateBatch arbitrates.
		b.Run(fmt.Sprintf("impl=columns/rules=%d", count), func(b *testing.B) {
			c.bv.usePlanes = true
			b.ReportAllocs()
			for i := 0; i < b.N; i += n {
				c.MatchColumns(dst, cols, n, n, &scratch)
			}
		})
		b.Run(fmt.Sprintf("impl=hybrid/rules=%d", count), func(b *testing.B) {
			c.bv.usePlanes = false
			b.ReportAllocs()
			for i := 0; i < b.N; i += n {
				c.MatchColumns(dst, cols, n, n, &scratch)
			}
		})
		b.Run(fmt.Sprintf("impl=auto/rules=%d", count), func(b *testing.B) {
			c.bv.calibrateBatch()
			b.ReportAllocs()
			for i := 0; i < b.N; i += n {
				c.MatchColumns(dst, cols, n, n, &scratch)
			}
		})
	}
}

// BenchmarkCompile tracks rule-compilation cost (quantise, dedup,
// index build) — the control-plane price paid per whitelist hot-swap.
func BenchmarkCompile(b *testing.B) {
	for _, count := range []int{128, 1024} {
		r := mathx.NewRand(int64(count))
		rs := randomRuleSet(r, 4, count)
		q := quantizerFor(4, 12)
		b.Run(fmt.Sprintf("rules=%d", count), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Compile(rs, q)
			}
		})
	}
}
