package rules

import "iguard/internal/mathx"

// This file is the batch face of the bit-vector matcher: where
// MatchCodes answers one quantised vector at a time, MatchColumns
// answers a whole batch laid out feature-major ("columns"), the shape
// the serving runtime's per-shard batches arrive in. The batch pass is
// word-parallel and cache-linear: each feature's quantiser parameters
// are loaded once for the whole batch, interval location runs down one
// contiguous code column at a time, and the verdict AND walks one
// bitmap plane (see bvFeature.bitmaps) per feature per word — a small
// cache-resident block — instead of striding through per-packet state.
// Verdicts are identical to calling Match on each column by
// construction; the differential tests pin it.

// batchProbeColumns is the probe-batch size calibrateBatch replays
// through both batch arms' cost models when Compile picks the
// MatchColumns implementation for a rule set.
const batchProbeColumns = 256

// batchHybridFoldWeight scales the early-exit arm's fold count when
// calibrateBatch compares the two arms: each of its folds carries a
// dead-accumulator branch and a per-column gather where the plane
// walk's fold is branch-free and cache-linear, so an early-exit fold
// costs more than a plane fold. Fitted from the forced-arm
// BenchmarkMatchColumns crossover, which lands between 4 words
// (plane/hybrid fold ratio 1.39, plane walk faster) and 8 words
// (ratio 2.03, early-exit faster) on miss-heavy uniform batches.
const batchHybridFoldWeight = 1.7

// BatchScratch is caller-owned scratch for MatchColumns. The zero
// value is ready to use; it grows to the largest dims × batch shape it
// has seen and is then reused allocation-free. A BatchScratch must not
// be shared between goroutines (the serving runtime keeps one per
// shard switch).
type BatchScratch struct {
	// rows holds the located elementary-interval index of every
	// (feature, column) pair, feature-major with the batch length as
	// stride.
	rows []uint32
	// alive is the per-column in-domain mask: ^0 while every feature
	// code seen so far lies inside the quantised domain, 0 once any
	// feature is out of domain (such a column misses every rule, the
	// same answer MatchCodes gives).
	alive []uint64
	// acc is the per-column word accumulator of the AND pass.
	acc []uint64
}

// ensure grows the scratch to hold dims × n entries.
//
//iguard:coldpath amortised scratch growth on batch-shape changes, not per packet
func (s *BatchScratch) ensure(dims, n int) {
	if len(s.rows) < dims*n {
		s.rows = make([]uint32, dims*n)
	}
	if len(s.alive) < n {
		s.alive = make([]uint64, n)
		s.acc = make([]uint64, n)
	}
}

// EncodeColumnInto quantises one feature's values for a whole batch:
// dst[j] = Encode(feature, vals[j]). dst must have capacity at least
// len(vals). It is the feature-major companion of EncodeVectorInto —
// the quantiser's per-feature parameters are read once for the whole
// column, which is what makes batch quantisation cache-linear.
//
//iguard:hotpath
func (q *Quantizer) EncodeColumnInto(dst []uint64, feature int, vals []float64) []uint64 {
	dst = dst[:len(vals)]
	for j, v := range vals {
		dst[j] = q.Encode(feature, v)
	}
	return dst
}

// MatchColumns matches n quantised vectors at once, writing each
// column's verdict (0 whitelisted, else the default label) into
// dst[:n]. codes is feature-major: feature f's code for column i is
// codes[f*stride+i], so a batch quantised with EncodeColumnInto at
// stride n plugs in directly. scratch is caller-owned and reused
// across calls; after its first growth the call is allocation-free.
// Verdicts are exactly those of MatchCodes on each column.
//
//iguard:hotpath
func (c *CompiledRuleSet) MatchColumns(dst []int, codes []uint64, stride, n int, scratch *BatchScratch) {
	if n == 0 {
		return
	}
	ix := c.bv
	dims := len(c.Quantizer.Bits)
	if ix == nil || dims > bvMaxDims {
		c.matchColumnsLinear(dst, codes, stride, n)
		return
	}
	if !ix.usePlanes {
		// Wide sets (per Compile's calibration, not a hardcoded word
		// cut): the plane walk below must fold every plane of every
		// word for the whole batch, while MatchCodes carries two early
		// exits (dead accumulator, first hit) — on miss-heavy batches
		// those cuts dominate once the rule set spans many words, so
		// gather each column and take them.
		var buf [bvMaxDims]uint64
		for i := 0; i < n; i++ {
			for f := 0; f < dims; f++ {
				buf[f] = codes[f*stride+i]
			}
			dst[i] = c.MatchCodes(buf[:dims])
		}
		return
	}
	scratch.ensure(dims, n)
	rows, alive, acc := scratch.rows, scratch.alive, scratch.acc
	for i := 0; i < n; i++ {
		alive[i] = ^uint64(0)
	}
	// Interval location, one contiguous column at a time.
	for f := 0; f < dims; f++ {
		ft := &ix.feats[f]
		col := codes[f*stride : f*stride+n]
		rcol := rows[f*n : f*n+n]
		if ft.direct != nil {
			for i, code := range col {
				if code >= ft.levels {
					alive[i] = 0
					rcol[i] = 0
					continue
				}
				rcol[i] = ft.direct[code]
			}
		} else {
			for i, code := range col {
				if code >= ft.levels {
					alive[i] = 0
					rcol[i] = 0
					continue
				}
				rcol[i] = ft.locate(code)
			}
		}
	}
	// Word-parallel AND: for each bitmap word, fold every feature's
	// plane into the per-column accumulator; a surviving bit in any
	// word is a whitelist rule containing the column.
	for i := 0; i < n; i++ {
		dst[i] = c.DefaultLabel
	}
	words := ix.words
	for w := 0; w < words; w++ {
		copy(acc[:n], alive[:n])
		for f := 0; f < dims; f++ {
			plane := ix.feats[f].bitmaps[w*ix.feats[f].nivs:]
			rcol := rows[f*n : f*n+n]
			for i := 0; i < n; i++ {
				acc[i] &= plane[rcol[i]]
			}
		}
		for i := 0; i < n; i++ {
			if acc[i] != 0 {
				dst[i] = 0
			}
		}
	}
}

// BatchMatcherKind names the MatchColumns arm Compile's calibration
// picked for this set: "columns" (word-parallel plane walk), "hybrid"
// (shared location pass + per-column early-exit AND), or "linear" when
// there is no bit-vector index.
func (c *CompiledRuleSet) BatchMatcherKind() string {
	if c.bv == nil {
		return "linear"
	}
	if c.bv.usePlanes {
		return "columns"
	}
	return "hybrid"
}

// calibrateBatch picks the MatchColumns arm for this index by replaying
// a deterministic uniform probe batch through both arms' cost models —
// a measured per-compile decision instead of a hardcoded word-count
// cutover. The plane walk folds exactly words × dims planes per column;
// the early-exit walk's fold count depends on how quickly accumulators
// die on this rule geometry, which the probe batch measures directly.
// Runs once per Compile, off the packet path.
func (ix *bvIndex) calibrateBatch() {
	dims := len(ix.feats)
	r := mathx.NewRand(int64(ix.words)*64 + int64(dims))
	planeFolds := batchProbeColumns * ix.words * dims
	hybridFolds := 0
	var rowBuf [bvMaxDims]uint32
	for c := 0; c < batchProbeColumns; c++ {
		for f := 0; f < dims; f++ {
			ft := &ix.feats[f]
			rowBuf[f] = ft.locate(uint64(r.Int63n(int64(ft.levels))))
		}
		for w := 0; w < ix.words; w++ {
			word := ^uint64(0)
			for f := 0; f < dims; f++ {
				ft := &ix.feats[f]
				hybridFolds++
				word &= ft.bitmaps[w*ft.nivs+int(rowBuf[f])]
				if word == 0 {
					break
				}
			}
			if word != 0 {
				break
			}
		}
	}
	ix.usePlanes = float64(planeFolds) <= float64(hybridFolds)*batchHybridFoldWeight
}

// matchColumnsLinear is the column-gathering fallback for sets without
// a bit-vector index: each column is extracted into a stack buffer and
// answered by MatchCodes (which itself falls back to the linear scan).
//
//iguard:hotpath
func (c *CompiledRuleSet) matchColumnsLinear(dst []int, codes []uint64, stride, n int) {
	dims := len(c.Quantizer.Bits)
	if dims > bvMaxDims {
		c.matchColumnsWide(dst, codes, stride, n)
		return
	}
	var buf [bvMaxDims]uint64
	for i := 0; i < n; i++ {
		for f := 0; f < dims; f++ {
			buf[f] = codes[f*stride+i]
		}
		dst[i] = c.MatchCodes(buf[:dims])
	}
}

// matchColumnsWide handles vectors wider than the stack buffer. No
// iGuard feature space is this wide (FL is 13, PL is 4), so the
// allocation is off the per-packet contract.
//
//iguard:coldpath only reachable for >bvMaxDims-dimensional vectors
func (c *CompiledRuleSet) matchColumnsWide(dst []int, codes []uint64, stride, n int) {
	dims := len(c.Quantizer.Bits)
	buf := make([]uint64, dims)
	for i := 0; i < n; i++ {
		for f := 0; f < dims; f++ {
			buf[f] = codes[f*stride+i]
		}
		dst[i] = c.MatchCodes(buf)
	}
}
