package rules

import (
	"fmt"
	"testing"

	"iguard/internal/mathx"
)

// columnsOf transposes row-major code vectors into the feature-major
// layout MatchColumns consumes.
func columnsOf(rows [][]uint64, dims int) []uint64 {
	n := len(rows)
	cols := make([]uint64, dims*n)
	for i, r := range rows {
		for f := 0; f < dims; f++ {
			cols[f*n+i] = r[f]
		}
	}
	return cols
}

// TestMatchColumnsMatchesMatchCodes is the batch matcher's differential
// property test: at every bit width (direct-table and binary-search
// interval location), dimensionality, and rule count — including >64
// rules, where the verdict spans several bitmap words — MatchColumns
// over a batch of random and boundary code vectors must agree column
// for column with MatchCodes.
func TestMatchColumnsMatchesMatchCodes(t *testing.T) {
	for _, bits := range []int{1, 4, 12, 17} {
		for _, dim := range []int{1, 4, 13} {
			// 600 rules spans >bvBatchWordCut bitmap words, covering
			// the per-column AND arm of MatchColumns.
			for _, count := range []int{3, 60, 150, 600} {
				t.Run(fmt.Sprintf("bits=%d/dim=%d/rules=%d", bits, dim, count), func(t *testing.T) {
					r := mathx.NewRand(int64(bits*101 + dim*13 + count))
					c := Compile(randomRuleSet(r, dim, count), quantizerFor(dim, bits))
					levels := c.Quantizer.Levels(0)
					rows := make([][]uint64, 0, 400)
					for trial := 0; trial < 300; trial++ {
						codes := make([]uint64, dim)
						for i := range codes {
							codes[i] = uint64(r.Intn(int(levels)))
						}
						rows = append(rows, codes)
					}
					// Boundary columns: rule edges and out-of-domain
					// codes, the same surface the single-vector
					// differential test probes.
					for _, rule := range c.Rules {
						codes := make([]uint64, dim)
						for i, rg := range rule.Ranges {
							codes[i] = rg.Lo
						}
						rows = append(rows, codes)
						codes2 := make([]uint64, dim)
						for i, rg := range rule.Ranges {
							codes2[i] = rg.Hi
						}
						rows = append(rows, codes2)
					}
					oob := make([]uint64, dim)
					for i := range oob {
						oob[i] = levels + 7
					}
					rows = append(rows, oob)

					var scratch BatchScratch
					got := make([]int, len(rows))
					c.MatchColumns(got, columnsOf(rows, dim), len(rows), len(rows), &scratch)
					for i, codes := range rows {
						if want := c.MatchCodes(codes); got[i] != want {
							t.Fatalf("column %d (%v): MatchColumns = %d, MatchCodes = %d", i, codes, got[i], want)
						}
					}
				})
			}
		}
	}
}

// TestMatchColumnsLinearFallback pins the gather fallback: a
// hand-assembled set (no bit-vector index) must answer batches through
// the linear scan with the same verdicts as per-vector MatchCodes.
func TestMatchColumnsLinearFallback(t *testing.T) {
	q := quantizerFor(2, 8)
	c := &CompiledRuleSet{
		Quantizer:    q,
		DefaultLabel: 1,
		Rules: []TCAMRule{
			{Ranges: []IntRange{{Lo: 10, Hi: 20}, {Lo: 0, Hi: 255}}},
			{Ranges: []IntRange{{Lo: 100, Hi: 140}, {Lo: 30, Hi: 40}}},
		},
	}
	if c.MatcherKind() != "linear" {
		t.Fatalf("matcher kind = %q, want linear", c.MatcherKind())
	}
	rows := [][]uint64{{15, 7}, {9, 7}, {120, 35}, {120, 50}, {255, 255}}
	got := make([]int, len(rows))
	var scratch BatchScratch
	c.MatchColumns(got, columnsOf(rows, 2), len(rows), len(rows), &scratch)
	for i, codes := range rows {
		if want := c.MatchCodes(codes); got[i] != want {
			t.Fatalf("column %d (%v): MatchColumns = %d, MatchCodes = %d", i, codes, got[i], want)
		}
	}
}

// TestMatchColumnsAllocationFree pins the steady-state batch match at
// zero allocations once the scratch has grown.
func TestMatchColumnsAllocationFree(t *testing.T) {
	r := mathx.NewRand(5)
	c := Compile(randomRuleSet(r, 4, 120), quantizerFor(4, 12))
	const n = 64
	codes := make([]uint64, 4*n)
	for i := range codes {
		codes[i] = uint64(r.Intn(1 << 12))
	}
	dst := make([]int, n)
	var scratch BatchScratch
	c.MatchColumns(dst, codes, n, n, &scratch) // warm the scratch
	if allocs := testing.AllocsPerRun(100, func() {
		c.MatchColumns(dst, codes, n, n, &scratch)
	}); allocs != 0 {
		t.Errorf("MatchColumns allocs/op = %v, want 0", allocs)
	}
}

// TestEncodeColumnInto pins the feature-major quantiser against the
// per-vector encoder.
func TestEncodeColumnInto(t *testing.T) {
	q := quantizerFor(3, 10)
	vals := []float64{-5, 0, 12.5, 99.9, 100, 250}
	dst := make([]uint64, len(vals))
	for f := 0; f < 3; f++ {
		q.EncodeColumnInto(dst, f, vals)
		for j, v := range vals {
			if want := q.Encode(f, v); dst[j] != want {
				t.Fatalf("feature %d value %v: column encode %d, Encode %d", f, v, dst[j], want)
			}
		}
	}
}
