package rules

import (
	"fmt"
	"testing"

	"iguard/internal/mathx"
)

// columnsOf transposes row-major code vectors into the feature-major
// layout MatchColumns consumes.
func columnsOf(rows [][]uint64, dims int) []uint64 {
	n := len(rows)
	cols := make([]uint64, dims*n)
	for i, r := range rows {
		for f := 0; f < dims; f++ {
			cols[f*n+i] = r[f]
		}
	}
	return cols
}

// TestMatchColumnsMatchesMatchCodes is the batch matcher's differential
// property test: at every bit width (direct-table and binary-search
// interval location), dimensionality, and rule count — including >64
// rules, where the verdict spans several bitmap words — MatchColumns
// over a batch of random and boundary code vectors must agree column
// for column with MatchCodes, on both batch arms (the calibrated
// per-compile choice is forced each way, so the plane walk and the
// early-exit walk are always both differentialled).
func TestMatchColumnsMatchesMatchCodes(t *testing.T) {
	for _, bits := range []int{1, 4, 12, 17} {
		for _, dim := range []int{1, 4, 13} {
			// 600 rules spans many bitmap words, the regime where
			// Compile's calibration picks the early-exit arm.
			for _, count := range []int{3, 60, 150, 600} {
				t.Run(fmt.Sprintf("bits=%d/dim=%d/rules=%d", bits, dim, count), func(t *testing.T) {
					r := mathx.NewRand(int64(bits*101 + dim*13 + count))
					c := Compile(randomRuleSet(r, dim, count), quantizerFor(dim, bits))
					levels := c.Quantizer.Levels(0)
					rows := make([][]uint64, 0, 400)
					for trial := 0; trial < 300; trial++ {
						codes := make([]uint64, dim)
						for i := range codes {
							codes[i] = uint64(r.Intn(int(levels)))
						}
						rows = append(rows, codes)
					}
					// Boundary columns: rule edges and out-of-domain
					// codes, the same surface the single-vector
					// differential test probes.
					for _, rule := range c.Rules {
						codes := make([]uint64, dim)
						for i, rg := range rule.Ranges {
							codes[i] = rg.Lo
						}
						rows = append(rows, codes)
						codes2 := make([]uint64, dim)
						for i, rg := range rule.Ranges {
							codes2[i] = rg.Hi
						}
						rows = append(rows, codes2)
					}
					oob := make([]uint64, dim)
					for i := range oob {
						oob[i] = levels + 7
					}
					rows = append(rows, oob)

					arms := []bool{true}
					if c.bv != nil {
						arms = []bool{true, false}
					}
					for _, usePlanes := range arms {
						if c.bv != nil {
							c.bv.usePlanes = usePlanes
						}
						var scratch BatchScratch
						got := make([]int, len(rows))
						c.MatchColumns(got, columnsOf(rows, dim), len(rows), len(rows), &scratch)
						for i, codes := range rows {
							if want := c.MatchCodes(codes); got[i] != want {
								t.Fatalf("usePlanes=%v column %d (%v): MatchColumns = %d, MatchCodes = %d", usePlanes, i, codes, got[i], want)
							}
						}
					}
				})
			}
		}
	}
}

// TestBatchMatcherCalibration pins the measured per-compile cutover at
// its two ends: a narrow set (1 bitmap word) must keep the word-parallel
// plane walk, and a wide miss-heavy set (1024 rules, 16 words — the
// BENCH_8 regression shape) must pick the early-exit arm instead of
// folding all 16 words for every column.
func TestBatchMatcherCalibration(t *testing.T) {
	narrow := Compile(randomRuleSet(mathx.NewRand(3), 4, 16), quantizerFor(4, 12))
	if kind := narrow.BatchMatcherKind(); kind != "columns" {
		t.Errorf("16-rule set: BatchMatcherKind = %q, want columns", kind)
	}
	wide := Compile(randomRuleSet(mathx.NewRand(7), 4, 1400), quantizerFor(4, 12))
	if len(wide.Rules) <= 1024 {
		t.Fatalf("wide fixture compiled to %d rules, want > 1024", len(wide.Rules))
	}
	if kind := wide.BatchMatcherKind(); kind != "hybrid" {
		t.Errorf("%d-rule set: BatchMatcherKind = %q, want hybrid", len(wide.Rules), kind)
	}
	linear := &CompiledRuleSet{Quantizer: quantizerFor(2, 8), DefaultLabel: 1}
	if kind := linear.BatchMatcherKind(); kind != "linear" {
		t.Errorf("index-less set: BatchMatcherKind = %q, want linear", kind)
	}
}

// TestMatchColumnsLinearFallback pins the gather fallback: a
// hand-assembled set (no bit-vector index) must answer batches through
// the linear scan with the same verdicts as per-vector MatchCodes.
func TestMatchColumnsLinearFallback(t *testing.T) {
	q := quantizerFor(2, 8)
	c := &CompiledRuleSet{
		Quantizer:    q,
		DefaultLabel: 1,
		Rules: []TCAMRule{
			{Ranges: []IntRange{{Lo: 10, Hi: 20}, {Lo: 0, Hi: 255}}},
			{Ranges: []IntRange{{Lo: 100, Hi: 140}, {Lo: 30, Hi: 40}}},
		},
	}
	if c.MatcherKind() != "linear" {
		t.Fatalf("matcher kind = %q, want linear", c.MatcherKind())
	}
	rows := [][]uint64{{15, 7}, {9, 7}, {120, 35}, {120, 50}, {255, 255}}
	got := make([]int, len(rows))
	var scratch BatchScratch
	c.MatchColumns(got, columnsOf(rows, 2), len(rows), len(rows), &scratch)
	for i, codes := range rows {
		if want := c.MatchCodes(codes); got[i] != want {
			t.Fatalf("column %d (%v): MatchColumns = %d, MatchCodes = %d", i, codes, got[i], want)
		}
	}
}

// TestMatchColumnsAllocationFree pins the steady-state batch match at
// zero allocations once the scratch has grown.
func TestMatchColumnsAllocationFree(t *testing.T) {
	r := mathx.NewRand(5)
	c := Compile(randomRuleSet(r, 4, 120), quantizerFor(4, 12))
	const n = 64
	codes := make([]uint64, 4*n)
	for i := range codes {
		codes[i] = uint64(r.Intn(1 << 12))
	}
	dst := make([]int, n)
	var scratch BatchScratch
	c.MatchColumns(dst, codes, n, n, &scratch) // warm the scratch
	if allocs := testing.AllocsPerRun(100, func() {
		c.MatchColumns(dst, codes, n, n, &scratch)
	}); allocs != 0 {
		t.Errorf("MatchColumns allocs/op = %v, want 0", allocs)
	}
}

// TestEncodeColumnInto pins the feature-major quantiser against the
// per-vector encoder.
func TestEncodeColumnInto(t *testing.T) {
	q := quantizerFor(3, 10)
	vals := []float64{-5, 0, 12.5, 99.9, 100, 250}
	dst := make([]uint64, len(vals))
	for f := 0; f < 3; f++ {
		q.EncodeColumnInto(dst, f, vals)
		for j, v := range vals {
			if want := q.Encode(f, v); dst[j] != want {
				t.Fatalf("feature %d value %v: column encode %d, Encode %d", f, v, dst[j], want)
			}
		}
	}
}
