package rules

import "sort"

// This file implements the bit-vector packet-classification index
// (Lakshman–Stiliadis) that makes CompiledRuleSet matching constant
// time in the rule count modulo a word-wise AND: the software analogue
// of the single TCAM lookup the paper's whitelist costs on hardware.
//
// Layout. For each feature the rule ranges are projected onto the
// quantised axis, cutting it into at most 2R+1 elementary intervals
// (every rule edge is an interval boundary, so rule membership is
// uniform within an interval). Each interval owns a bitmap of
// ceil(R/64) words with bit r set when rule r's range covers the whole
// interval. A lookup resolves each feature's code to its interval —
// one direct table load for switch-realistic bit widths, a binary
// search over the ≤2R+1 boundaries for wider fields — and ANDs the
// per-feature bitmaps word by word. Any surviving bit is a whitelist
// rule containing the code vector, which is exactly the linear scan's
// acceptance condition, so verdicts are identical by construction at
// every bit width.

// bvMaxDims bounds the stack-allocated per-feature interval buffer in
// MatchCodes. Rule sets wider than this (none exist in iGuard: FL is
// 13-dimensional, PL is 4) match via the linear fallback.
const bvMaxDims = 32

// bvDirectLevelCap is the largest per-feature level count that gets a
// direct code→interval table (4 B per level; 256 KiB per feature at 16
// bits). Wider fields — e.g. the library default of 20 bits — locate
// intervals by binary search instead, keeping the index O(R) per
// feature instead of O(2^bits).
const bvDirectLevelCap = 1 << 16

// bvFeature is one feature's slice of the index.
type bvFeature struct {
	// levels is the feature's quantisation level count; codes at or
	// beyond it lie outside every rule range.
	levels uint64
	// nivs is the elementary-interval count (== len(bounds)).
	nivs int
	// bitmaps holds the elementary-interval rule bitmaps flattened
	// word-major ("plane" layout): word w of interval j lives at
	// bitmaps[w*nivs+j]. Each plane is a contiguous nivs-word region,
	// so the batch matcher's per-word pass over many packets stays
	// inside one small cache-resident block per feature, while the
	// single-packet matcher pays only a stride change.
	bitmaps []uint64
	// direct maps code → elementary-interval index; nil when levels
	// exceeds bvDirectLevelCap.
	direct []uint32
	// bounds holds the sorted interval start codes (bounds[0] == 0),
	// searched when direct is nil.
	bounds []uint64
}

// locate resolves a code (< levels) to its elementary-interval index.
func (f *bvFeature) locate(code uint64) uint32 {
	if f.direct != nil {
		return f.direct[code]
	}
	// Greatest j with bounds[j] <= code; bounds[0] == 0 anchors it.
	lo, hi := 0, len(f.bounds)-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if f.bounds[mid] <= code {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return uint32(lo)
}

// bvIndex is the whole-ruleset bit-vector index.
type bvIndex struct {
	// words is the bitmap width: ceil(len(rules)/64).
	words int
	feats []bvFeature
	// usePlanes selects MatchColumns' word-parallel plane walk over the
	// per-column early-exit walk; set by calibrateBatch at Compile.
	usePlanes bool
}

// bytes reports the index's memory footprint.
func (ix *bvIndex) bytes() int {
	total := 0
	for i := range ix.feats {
		f := &ix.feats[i]
		total += 8*len(f.bitmaps) + 4*len(f.direct) + 8*len(f.bounds)
	}
	return total
}

// buildBVIndex constructs the index for the compiled rules, or returns
// nil when the shape is outside what the matcher handles (no rules,
// degenerate dimensionality, or a rule whose range count disagrees
// with the quantizer) — MatchCodes then uses the linear scan.
func buildBVIndex(rs []TCAMRule, q *Quantizer) *bvIndex {
	dims := len(q.Bits)
	if len(rs) == 0 || dims == 0 || dims > bvMaxDims {
		return nil
	}
	for _, r := range rs {
		if len(r.Ranges) != dims {
			return nil
		}
	}
	words := (len(rs) + 63) / 64
	ix := &bvIndex{words: words, feats: make([]bvFeature, dims)}
	starts := make([]uint64, 0, 2*len(rs)+1)
	for i := 0; i < dims; i++ {
		levels := q.Levels(i)
		// Every rule edge starts an elementary interval; so does 0.
		starts = starts[:0]
		starts = append(starts, 0)
		for _, r := range rs {
			rg := r.Ranges[i]
			if rg.Lo > 0 && rg.Lo < levels {
				starts = append(starts, rg.Lo)
			}
			if rg.Hi+1 < levels {
				starts = append(starts, rg.Hi+1)
			}
		}
		sort.Slice(starts, func(a, b int) bool { return starts[a] < starts[b] })
		uniq := starts[:1]
		for _, s := range starts[1:] {
			if s != uniq[len(uniq)-1] {
				uniq = append(uniq, s)
			}
		}
		f := &ix.feats[i]
		f.levels = levels
		f.nivs = len(uniq)
		f.bounds = append([]uint64(nil), uniq...)
		f.bitmaps = make([]uint64, len(uniq)*words)
		for ri, r := range rs {
			rg := r.Ranges[i]
			// Intervals whose start lies in [Lo, Hi] are fully covered:
			// Hi+1 is itself a boundary, so no interval straddles it.
			for j := range f.bounds {
				if f.bounds[j] >= rg.Lo && f.bounds[j] <= rg.Hi {
					f.bitmaps[(ri/64)*f.nivs+j] |= 1 << (ri % 64)
				}
			}
		}
		if levels <= bvDirectLevelCap {
			f.direct = make([]uint32, levels)
			j := 0
			for code := uint64(0); code < levels; code++ {
				for j+1 < len(f.bounds) && f.bounds[j+1] <= code {
					j++
				}
				f.direct[code] = uint32(j)
			}
		}
	}
	return ix
}
