// Package rules implements iGuard's whitelist-rule generation (§3.2.3):
// axis-aligned hypercubes carved out of feature space by the labelled
// isolation forest, labelled by forest inference, merged when adjacent
// cells share a label, and finally expanded into ternary (TCAM) entries
// for installation in a programmable-switch data plane. The Box geometry
// here is also shared by the forest implementations, which export their
// leaf regions as boxes.
package rules

import (
	"fmt"
	"math"
	"strings"
)

// Interval is a half-open feature range [Lo, Hi). The paper's rules use
// half-open ranges so adjacent hypercubes tile feature space exactly.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies in [Lo, Hi).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v < iv.Hi }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{Lo: math.Max(iv.Lo, o.Lo), Hi: math.Min(iv.Hi, o.Hi)}
}

// Width returns Hi - Lo (negative widths clamp to 0).
func (iv Interval) Width() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Mid returns the interval midpoint.
func (iv Interval) Mid() float64 { return (iv.Lo + iv.Hi) / 2 }

// Box is an axis-aligned hypercube: one Interval per feature.
type Box []Interval

// NewBox returns a box spanning [lo[i], hi[i]) per feature.
func NewBox(lo, hi []float64) Box {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("rules: box bounds length mismatch %d vs %d", len(lo), len(hi)))
	}
	b := make(Box, len(lo))
	for i := range lo {
		b[i] = Interval{Lo: lo[i], Hi: hi[i]}
	}
	return b
}

// FullBox returns a box covering [min, max) in every one of dim features.
func FullBox(dim int, min, max float64) Box {
	b := make(Box, dim)
	for i := range b {
		b[i] = Interval{Lo: min, Hi: max}
	}
	return b
}

// Clone returns a deep copy of b.
func (b Box) Clone() Box {
	c := make(Box, len(b))
	copy(c, b)
	return c
}

// Contains reports whether x lies inside the box.
func (b Box) Contains(x []float64) bool {
	if len(x) != len(b) {
		return false
	}
	for i, iv := range b {
		if !iv.Contains(x[i]) {
			return false
		}
	}
	return true
}

// Empty reports whether any dimension is empty.
func (b Box) Empty() bool {
	for _, iv := range b {
		if iv.Empty() {
			return true
		}
	}
	return false
}

// Intersect returns b ∩ o, which may be empty.
func (b Box) Intersect(o Box) Box {
	if len(b) != len(o) {
		panic(fmt.Sprintf("rules: box dimension mismatch %d vs %d", len(b), len(o)))
	}
	out := make(Box, len(b))
	for i := range b {
		out[i] = b[i].Intersect(o[i])
	}
	return out
}

// Center returns the midpoint of every dimension — the sample point used
// to label a hypercube by forest inference (§3.2.3 picks a random point
// inside the cube; the centre is a deterministic choice of one).
func (b Box) Center() []float64 {
	c := make([]float64, len(b))
	for i, iv := range b {
		c[i] = iv.Mid()
	}
	return c
}

// Volume returns the product of widths.
func (b Box) Volume() float64 {
	v := 1.0
	for _, iv := range b {
		v *= iv.Width()
	}
	return v
}

// String renders the box compactly for diagnostics.
func (b Box) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, iv := range b {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "[%.3g,%.3g)", iv.Lo, iv.Hi)
	}
	sb.WriteByte('}')
	return sb.String()
}

// adjacentAlong reports whether boxes a and c can merge along dimension
// d: identical in every other dimension and touching in d.
func adjacentAlong(a, c Box, d int) bool {
	for i := range a {
		if i == d {
			continue
		}
		if a[i] != c[i] {
			return false
		}
	}
	return a[d].Hi == c[d].Lo || c[d].Hi == a[d].Lo //iguard:allow(floatcompare) bounds share identical split values by construction
}

// mergeAlong returns the union box of two boxes adjacent along d.
func mergeAlong(a, c Box, d int) Box {
	out := a.Clone()
	out[d] = Interval{Lo: math.Min(a[d].Lo, c[d].Lo), Hi: math.Max(a[d].Hi, c[d].Hi)}
	return out
}
