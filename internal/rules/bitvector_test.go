package rules

import (
	"fmt"
	"math/rand"
	"testing"

	"iguard/internal/mathx"
)

// randomRuleSet builds a whitelist of count random boxes over dim
// features spanning [0, 100) each, with a few exact duplicates and
// full-range fields mixed in to exercise dedup and wildcard handling.
func randomRuleSet(r *rand.Rand, dim, count int) *RuleSet {
	rs := &RuleSet{Dim: dim, DefaultLabel: 1}
	for i := 0; i < count; i++ {
		box := make(Box, dim)
		for d := range box {
			if r.Float64() < 0.1 {
				box[d] = Interval{Lo: 0, Hi: 100}
				continue
			}
			lo := r.Float64() * 95
			box[d] = Interval{Lo: lo, Hi: lo + 0.5 + r.Float64()*30}
		}
		rs.Rules = append(rs.Rules, Rule{Box: box, Label: 0})
		if i%7 == 0 {
			rs.Rules = append(rs.Rules, Rule{Box: box.Clone(), Label: 0})
		}
	}
	return rs
}

// quantizerFor returns the [0,100)^dim quantizer at the given width.
func quantizerFor(dim, bits int) *Quantizer {
	lo, hi := make([]float64, dim), make([]float64, dim)
	for i := range hi {
		hi[i] = 100
	}
	return NewQuantizer(lo, hi, bits)
}

// TestMatchCodesBitvectorMatchesLinear is the differential property
// test of the bit-vector matcher: at every quantizer bit width —
// including widths past the direct-table cap, which take the
// binary-search interval location path — random and boundary code
// vectors must produce verdicts byte-identical to the linear scan.
func TestMatchCodesBitvectorMatchesLinear(t *testing.T) {
	for _, bits := range []int{1, 2, 4, 8, 12, 17, 20} {
		for _, dim := range []int{1, 4, 13} {
			t.Run(fmt.Sprintf("bits=%d/dim=%d", bits, dim), func(t *testing.T) {
				r := mathx.NewRand(int64(bits*31 + dim))
				c := Compile(randomRuleSet(r, dim, 60), quantizerFor(dim, bits))
				if c.bv == nil && len(c.Rules) > 0 {
					t.Fatal("Compile did not build the bit-vector index")
				}
				check := func(codes []uint64) {
					t.Helper()
					got, want := c.MatchCodes(codes), c.matchCodesLinear(codes)
					if got != want {
						t.Fatalf("MatchCodes(%v) = %d, linear scan says %d", codes, got, want)
					}
				}
				levels := c.Quantizer.Levels(0)
				// Random interior codes.
				codes := make([]uint64, dim)
				for trial := 0; trial < 300; trial++ {
					for i := range codes {
						codes[i] = uint64(r.Intn(int(levels)))
					}
					check(codes)
				}
				// Boundary codes: every rule edge, its neighbours, and
				// the domain extremes — the off-by-one surface where a
				// crack between the two matchers would hide.
				edges := []uint64{0, levels - 1, levels, levels + 3}
				for _, rule := range c.Rules {
					for _, rg := range rule.Ranges {
						edges = append(edges, rg.Lo, rg.Hi, rg.Hi+1)
						if rg.Lo > 0 {
							edges = append(edges, rg.Lo-1)
						}
					}
				}
				for trial := 0; trial < 600; trial++ {
					for i := range codes {
						codes[i] = edges[r.Intn(len(edges))]
					}
					check(codes)
				}
			})
		}
	}
}

// TestMatchVariantsAgree pins Match, MatchInto and MatchCodes to one
// verdict on float inputs straddling rule edges.
func TestMatchVariantsAgree(t *testing.T) {
	r := mathx.NewRand(5)
	c := Compile(randomRuleSet(r, 4, 40), quantizerFor(4, 10))
	scratch := make([]uint64, 4)
	codes := make([]uint64, 4)
	for trial := 0; trial < 500; trial++ {
		x := make([]float64, 4)
		for i := range x {
			x[i] = r.Float64()*110 - 5 // includes out-of-range values
		}
		want := c.Match(x)
		if got := c.MatchInto(x, scratch); got != want {
			t.Fatalf("MatchInto(%v) = %d, Match says %d", x, got, want)
		}
		if got := c.MatchCodes(c.Quantizer.EncodeVectorInto(codes, x)); got != want {
			t.Fatalf("MatchCodes(%v) = %d, Match says %d", x, got, want)
		}
	}
}

// TestMatchLinearFallback covers hand-assembled sets with no index.
func TestMatchLinearFallback(t *testing.T) {
	c := &CompiledRuleSet{
		Rules:        []TCAMRule{{Ranges: []IntRange{{Lo: 2, Hi: 5}}}},
		Quantizer:    quantizerFor(1, 4),
		DefaultLabel: 1,
	}
	if c.MatcherKind() != "linear" {
		t.Errorf("MatcherKind = %q, want linear", c.MatcherKind())
	}
	if got := c.MatchCodes([]uint64{3}); got != 0 {
		t.Errorf("fallback hit = %d, want 0", got)
	}
	if got := c.MatchCodes([]uint64{9}); got != 1 {
		t.Errorf("fallback miss = %d, want 1", got)
	}
}

// TestCompileEmptyWhitelist pins the degenerate no-rule set: both
// matchers answer the default label and no index is built.
func TestCompileEmptyWhitelist(t *testing.T) {
	rs := &RuleSet{Dim: 2, DefaultLabel: 1}
	c := Compile(rs, quantizerFor(2, 8))
	if c.bv != nil {
		t.Error("index built for empty whitelist")
	}
	if got := c.MatchCodes([]uint64{0, 0}); got != 1 {
		t.Errorf("empty whitelist MatchCodes = %d, want 1", got)
	}
	if c.BVIndexBytes() != 0 {
		t.Errorf("BVIndexBytes = %d, want 0", c.BVIndexBytes())
	}
}

// TestCompileIndexAccounting sanity-checks the reported footprint: a
// direct-table index must account its bitmaps, bounds and code tables.
func TestCompileIndexAccounting(t *testing.T) {
	r := mathx.NewRand(11)
	c := Compile(randomRuleSet(r, 4, 100), quantizerFor(4, 12))
	if c.MatcherKind() != "bitvector" {
		t.Fatalf("MatcherKind = %q, want bitvector", c.MatcherKind())
	}
	words := (len(c.Rules) + 63) / 64
	// 4 features × 4096 levels × 4 B of direct table is the floor.
	if min := 4 * 4096 * 4; c.BVIndexBytes() < min {
		t.Errorf("BVIndexBytes = %d, want >= %d", c.BVIndexBytes(), min)
	}
	for i := range c.bv.feats {
		f := &c.bv.feats[i]
		if len(f.bitmaps) != len(f.bounds)*words {
			t.Errorf("feature %d: bitmaps len %d, want %d", i, len(f.bitmaps), len(f.bounds)*words)
		}
		if f.direct == nil {
			t.Errorf("feature %d: no direct table at 12 bits", i)
		}
	}
}

// TestMatchAllocationFree asserts the whole match surface stays off the
// heap: the data-plane promise the serving runtime's throughput rests
// on.
func TestMatchAllocationFree(t *testing.T) {
	r := mathx.NewRand(3)
	c := Compile(randomRuleSet(r, 13, 128), quantizerFor(13, 20))
	x := make([]float64, 13)
	for i := range x {
		x[i] = r.Float64() * 100
	}
	codes := c.Quantizer.EncodeVector(x)
	scratch := make([]uint64, 13)
	if n := testing.AllocsPerRun(200, func() { c.MatchCodes(codes) }); n != 0 {
		t.Errorf("MatchCodes allocs = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { c.Match(x) }); n != 0 {
		t.Errorf("Match allocs = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { c.MatchInto(x, scratch) }); n != 0 {
		t.Errorf("MatchInto allocs = %v, want 0", n)
	}
}

// TestCompileDedupKeyCollisionFree pins the binary dedup key: rules
// whose ranges differ only in which field holds which bound must not
// collapse together (a formatting-based key could; a truncated or
// order-insensitive one would).
func TestCompileDedupKeyCollisionFree(t *testing.T) {
	rs := &RuleSet{
		Rules: []Rule{
			{Box: NewBox([]float64{10, 20}, []float64{30, 40}), Label: 0},
			{Box: NewBox([]float64{20, 10}, []float64{40, 30}), Label: 0},
			{Box: NewBox([]float64{10, 20}, []float64{30, 40}), Label: 0}, // true duplicate
		},
		Dim: 2, DefaultLabel: 1,
	}
	c := Compile(rs, quantizerFor(2, 10))
	if len(c.Rules) != 2 {
		t.Errorf("compiled rules = %d, want 2 (distinct pair kept, duplicate dropped)", len(c.Rules))
	}
}
