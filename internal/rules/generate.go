package rules

import (
	"fmt"
	"sort"
)

// GenOptions controls hypercube enumeration.
type GenOptions struct {
	// MaxCells caps the number of hypercubes enumerated; Generate
	// returns an error beyond it so callers can shrink the forest or
	// coarsen features rather than silently truncating coverage.
	MaxCells int
	// MergePasses bounds the adjacent-cell merge iterations; 0 means
	// merge to a fixed point.
	MergePasses int
	// SkipMerge disables the adjacent-cell merge entirely (for the
	// merging ablation; deployments always merge).
	SkipMerge bool
}

// DefaultGenOptions returns generous defaults (64k cells, merge to
// fixed point).
func DefaultGenOptions() GenOptions {
	return GenOptions{MaxCells: 65536}
}

// Generate implements §3.2.3. It forms iForest hypercubes as the
// non-empty intersections of leaf regions across all trees (equivalent
// to the paper's cartesian product of feature boundaries restricted to
// reachable combinations, which is what makes the construction
// tractable), labels each hypercube by forest inference at its centre,
// merges adjacent same-label hypercubes, and returns the labelled set
// with a malicious default. Feature-space regions outside some tree's
// training bounds are not covered by any hypercube and therefore fall
// to the default label — precisely the whitelist semantics the paper
// deploys (unseen regions are never whitelisted).
//
// universe is the outer feature box (typically a margin around the
// scaled training range). perTreeLeaves holds every tree's leaf boxes.
// classify is the distilled forest's Predict.
func Generate(universe Box, perTreeLeaves [][]Box, classify func([]float64) int, opts GenOptions) (*RuleSet, error) {
	if opts.MaxCells <= 0 {
		opts.MaxCells = DefaultGenOptions().MaxCells
	}
	if universe.Empty() {
		return nil, fmt.Errorf("rules: empty universe box")
	}
	var cells []Box
	var overflow error
	var descend func(box Box, ti int)
	descend = func(box Box, ti int) {
		if overflow != nil {
			return
		}
		if ti == len(perTreeLeaves) {
			cells = append(cells, box)
			if len(cells) > opts.MaxCells {
				overflow = fmt.Errorf("rules: hypercube count exceeded MaxCells=%d; reduce trees or coarsen features", opts.MaxCells)
			}
			return
		}
		for _, leaf := range perTreeLeaves[ti] {
			inter := box.Intersect(leaf)
			if !inter.Empty() {
				descend(inter, ti+1)
			}
		}
	}
	descend(universe.Clone(), 0)
	if overflow != nil {
		return nil, overflow
	}

	// Label every cell by forest inference at its centre: every sample
	// inside one hypercube shares the same label by construction.
	ruleList := make([]Rule, 0, len(cells))
	for _, cell := range cells {
		ruleList = append(ruleList, Rule{Box: cell, Label: classify(cell.Center())})
	}

	if !opts.SkipMerge {
		ruleList = MergeAdjacent(ruleList, opts.MergePasses)
	}
	return &RuleSet{Rules: ruleList, Dim: len(universe), DefaultLabel: 1}, nil
}

// GenerateVoted is Generate specialised to majority-vote forests: it
// descends the per-tree labelled leaf regions accumulating the vote and
// short-circuits as soon as a partial cell's verdict is decided — once
// more than half the trees voted malicious (or can no longer reach a
// majority), the remaining trees cannot change the label, so the cell
// need not be refined further. This keeps the hypercube count
// proportional to the decision boundary's complexity instead of the
// full leaf-region arrangement. Ties label benign, matching the
// forest's Predict.
func GenerateVoted(universe Box, perTreeLeaves [][]Box, perTreeLabels [][]int, opts GenOptions) (*RuleSet, error) {
	if opts.MaxCells <= 0 {
		opts.MaxCells = DefaultGenOptions().MaxCells
	}
	if universe.Empty() {
		return nil, fmt.Errorf("rules: empty universe box")
	}
	if len(perTreeLeaves) != len(perTreeLabels) {
		return nil, fmt.Errorf("rules: %d leaf sets vs %d label sets", len(perTreeLeaves), len(perTreeLabels))
	}
	t := len(perTreeLeaves)
	var ruleList []Rule
	var overflow error
	emit := func(box Box, label int) {
		ruleList = append(ruleList, Rule{Box: box, Label: label})
		if len(ruleList) > opts.MaxCells {
			overflow = fmt.Errorf("rules: hypercube count exceeded MaxCells=%d; reduce trees or coarsen features", opts.MaxCells)
		}
	}
	var descend func(box Box, ti, votes int)
	descend = func(box Box, ti, votes int) {
		if overflow != nil {
			return
		}
		if 2*votes > t {
			emit(box, 1)
			return
		}
		remaining := t - ti
		if 2*(votes+remaining) <= t {
			emit(box, 0)
			return
		}
		if ti == t {
			// votes <= t/2 here: benign (ties benign).
			emit(box, 0)
			return
		}
		for li, leaf := range perTreeLeaves[ti] {
			inter := box.Intersect(leaf)
			if !inter.Empty() {
				descend(inter, ti+1, votes+perTreeLabels[ti][li])
			}
		}
	}
	descend(universe.Clone(), 0, 0)
	if overflow != nil {
		return nil, overflow
	}
	if !opts.SkipMerge {
		ruleList = MergeAdjacent(ruleList, opts.MergePasses)
	}
	return &RuleSet{Rules: ruleList, Dim: len(universe), DefaultLabel: 1}, nil
}

// MergeAdjacent greedily merges rules whose boxes are adjacent along one
// dimension and share a label, repeating until a fixed point (or
// maxPasses when positive). This is the purple-box step of Fig. 3c.
func MergeAdjacent(ruleList []Rule, maxPasses int) []Rule {
	pass := 0
	for {
		pass++
		merged := false
		for d := 0; d < dimOf(ruleList); d++ {
			// Bucket rules by their box signature excluding dimension d
			// so adjacency checks are near-linear. Buckets are visited in
			// sorted order to keep the merge (and thus the exact box
			// decomposition) deterministic.
			buckets := map[string][]int{}
			for i, r := range ruleList {
				sig := signatureExcluding(r.Box, d, r.Label)
				buckets[sig] = append(buckets[sig], i)
			}
			sigs := make([]string, 0, len(buckets))
			for sig := range buckets { //iguard:sorted signatures are collected then sorted below
				sigs = append(sigs, sig)
			}
			sort.Strings(sigs)
			dead := make([]bool, len(ruleList))
			for _, sig := range sigs {
				idxs := buckets[sig]
				for a := 0; a < len(idxs); a++ {
					i := idxs[a]
					if dead[i] {
						continue
					}
					for b := a + 1; b < len(idxs); b++ {
						j := idxs[b]
						if dead[j] {
							continue
						}
						if adjacentAlong(ruleList[i].Box, ruleList[j].Box, d) {
							ruleList[i].Box = mergeAlong(ruleList[i].Box, ruleList[j].Box, d)
							dead[j] = true
							merged = true
						}
					}
				}
			}
			compact := ruleList[:0]
			for i, r := range ruleList {
				if !dead[i] {
					compact = append(compact, r)
				}
			}
			ruleList = compact
		}
		if !merged || (maxPasses > 0 && pass >= maxPasses) {
			return ruleList
		}
	}
}

func dimOf(ruleList []Rule) int {
	if len(ruleList) == 0 {
		return 0
	}
	return len(ruleList[0].Box)
}

// signatureExcluding builds a bucketing key from every dimension except
// d, plus the label, so only merge-compatible rules collide.
func signatureExcluding(b Box, d, label int) string {
	// A compact binary-ish key; fmt is fine at rule-set scales.
	key := fmt.Sprintf("L%d|", label)
	for i, iv := range b {
		if i == d {
			continue
		}
		key += fmt.Sprintf("%d:%g,%g|", i, iv.Lo, iv.Hi)
	}
	return key
}
