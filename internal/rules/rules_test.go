package rules

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"iguard/internal/mathx"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 3}
	if !iv.Contains(1) || !iv.Contains(2.9) {
		t.Error("Contains lower edge / interior failed")
	}
	if iv.Contains(3) {
		t.Error("upper edge must be exclusive")
	}
	if iv.Empty() {
		t.Error("non-empty interval reported empty")
	}
	if (Interval{Lo: 2, Hi: 2}).Empty() != true {
		t.Error("zero-width interval should be empty")
	}
	if got := iv.Width(); got != 2 {
		t.Errorf("Width = %v", got)
	}
	if got := iv.Mid(); got != 2 {
		t.Errorf("Mid = %v", got)
	}
	inter := iv.Intersect(Interval{Lo: 2, Hi: 5})
	if inter.Lo != 2 || inter.Hi != 3 {
		t.Errorf("Intersect = %+v", inter)
	}
	if w := (Interval{Lo: 3, Hi: 1}).Width(); w != 0 {
		t.Errorf("negative-width interval Width = %v, want 0", w)
	}
}

func TestBoxBasics(t *testing.T) {
	b := NewBox([]float64{0, 10}, []float64{1, 20})
	if !b.Contains([]float64{0.5, 15}) {
		t.Error("Contains interior failed")
	}
	if b.Contains([]float64{1.5, 15}) {
		t.Error("Contains out-of-range failed")
	}
	if b.Contains([]float64{0.5}) {
		t.Error("dimension mismatch should not match")
	}
	if b.Empty() {
		t.Error("non-empty box reported empty")
	}
	if got := b.Volume(); got != 10 {
		t.Errorf("Volume = %v", got)
	}
	c := b.Center()
	if c[0] != 0.5 || c[1] != 15 {
		t.Errorf("Center = %v", c)
	}
	clone := b.Clone()
	clone[0] = Interval{Lo: 99, Hi: 100}
	if b[0].Lo == 99 {
		t.Error("Clone aliases the original")
	}
	if b.String() == "" {
		t.Error("String is empty")
	}
}

func TestBoxIntersect(t *testing.T) {
	a := NewBox([]float64{0, 0}, []float64{2, 2})
	b := NewBox([]float64{1, 1}, []float64{3, 3})
	inter := a.Intersect(b)
	if inter.Empty() {
		t.Fatal("overlap reported empty")
	}
	if inter[0].Lo != 1 || inter[0].Hi != 2 {
		t.Errorf("intersect dim0 = %+v", inter[0])
	}
	disjoint := NewBox([]float64{5, 5}, []float64{6, 6})
	if !a.Intersect(disjoint).Empty() {
		t.Error("disjoint intersect not empty")
	}
}

func TestFullBox(t *testing.T) {
	b := FullBox(3, 0, 256)
	if len(b) != 3 {
		t.Fatalf("dims = %d", len(b))
	}
	for _, iv := range b {
		if iv.Lo != 0 || iv.Hi != 256 {
			t.Errorf("interval = %+v", iv)
		}
	}
}

// gridLeaves builds a tree's leaf tiling by splitting the universe at
// the given per-dimension cut points.
func gridLeaves(universe Box, cuts [][]float64) []Box {
	boxes := []Box{universe.Clone()}
	for d, ps := range cuts {
		var next []Box
		for _, b := range boxes {
			edges := append([]float64{b[d].Lo}, ps...)
			edges = append(edges, b[d].Hi)
			for i := 0; i+1 < len(edges); i++ {
				if edges[i+1] <= edges[i] {
					continue
				}
				nb := b.Clone()
				nb[d] = Interval{Lo: edges[i], Hi: edges[i+1]}
				next = append(next, nb)
			}
		}
		boxes = next
	}
	return boxes
}

func TestGenerateLabelsAndTiles(t *testing.T) {
	universe := FullBox(2, 0, 10)
	tree1 := gridLeaves(universe, [][]float64{{5}, nil}) // split x at 5
	tree2 := gridLeaves(universe, [][]float64{nil, {3}}) // split y at 3
	classify := func(x []float64) int {
		if x[0] >= 5 && x[1] >= 3 {
			return 1
		}
		return 0
	}
	rs, err := Generate(universe, [][]Box{tree1, tree2}, classify, DefaultGenOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("no rules generated")
	}
	// The rule set must agree with the classifier everywhere.
	r := mathx.NewRand(2)
	for trial := 0; trial < 500; trial++ {
		x := []float64{r.Float64() * 10, r.Float64() * 10}
		if got, want := rs.Match(x), classify(x); got != want {
			t.Fatalf("Match(%v) = %d, want %d", x, got, want)
		}
	}
	// Merging should reduce the 4-cell partition: three benign cells
	// merge into at most 2 rules plus 1 malicious.
	if rs.Len() > 3 {
		t.Errorf("rules after merge = %d, want <= 3", rs.Len())
	}
	// Exactly one malicious rule.
	mal := 0
	for _, rr := range rs.Rules {
		if rr.Label == 1 {
			mal++
		}
	}
	if mal != 1 {
		t.Errorf("malicious rules = %d, want 1", mal)
	}
}

func TestGenerateMaxCellsError(t *testing.T) {
	universe := FullBox(1, 0, 100)
	var cuts []float64
	for i := 1; i < 100; i++ {
		cuts = append(cuts, float64(i))
	}
	tree := gridLeaves(universe, [][]float64{cuts})
	_, err := Generate(universe, [][]Box{tree}, func([]float64) int { return 0 }, GenOptions{MaxCells: 10})
	if err == nil {
		t.Error("want error when cells exceed MaxCells")
	}
}

func TestGenerateEmptyUniverse(t *testing.T) {
	if _, err := Generate(Box{{Lo: 1, Hi: 1}}, nil, func([]float64) int { return 0 }, DefaultGenOptions()); err == nil {
		t.Error("want error on empty universe")
	}
}

func TestGenerateOutsideTreeBoundsDefaultsMalicious(t *testing.T) {
	// A tree whose leaves only tile part of the universe: the covered
	// region follows the classifier; everything outside defaults to the
	// malicious label (never whitelisted).
	universe := FullBox(1, 0, 10)
	treeBounds := NewBox([]float64{2}, []float64{8})
	leaves := gridLeaves(treeBounds, [][]float64{{5}})
	rs, err := Generate(universe, [][]Box{leaves}, func(x []float64) int { return 0 }, DefaultGenOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{2.5, 7.5} {
		if got := rs.Match([]float64{v}); got != 0 {
			t.Errorf("inside Match(%v) = %d, want 0", v, got)
		}
	}
	for _, v := range []float64{0.5, 9.5} {
		if got := rs.Match([]float64{v}); got != 1 {
			t.Errorf("outside Match(%v) = %d, want 1 (default)", v, got)
		}
	}
}

func TestWhitelistAndMerge(t *testing.T) {
	rs := &RuleSet{
		Rules: []Rule{
			{Box: NewBox([]float64{0}, []float64{1}), Label: 0},
			{Box: NewBox([]float64{1}, []float64{2}), Label: 1},
		},
		Dim: 1, DefaultLabel: 1,
	}
	wl := rs.Whitelist()
	if len(wl) != 1 || wl[0].Label != 0 {
		t.Errorf("Whitelist = %+v", wl)
	}
	ws := rs.WhitelistSet()
	if ws.Len() != 1 || ws.DefaultLabel != 1 {
		t.Errorf("WhitelistSet = %+v", ws)
	}
	other := &RuleSet{Rules: []Rule{{Box: NewBox([]float64{5}, []float64{6}), Label: 0}}, Dim: 1, DefaultLabel: 1}
	merged := rs.Merge(other)
	if merged.Len() != 3 {
		t.Errorf("merged Len = %d, want 3", merged.Len())
	}
}

func TestRuleSetJSONRoundTrip(t *testing.T) {
	rs := &RuleSet{
		Rules:        []Rule{{Box: NewBox([]float64{0, 5}, []float64{1, 6}), Label: 0}},
		Dim:          2,
		DefaultLabel: 1,
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Dim != 2 || got.DefaultLabel != 1 {
		t.Errorf("round trip = %+v", got)
	}
	if got.Rules[0].Box[1].Lo != 5 {
		t.Errorf("box lost values: %+v", got.Rules[0].Box)
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Error("want decode error")
	}
}

func TestConsistency(t *testing.T) {
	rs := &RuleSet{
		Rules:        []Rule{{Box: NewBox([]float64{0}, []float64{5}), Label: 0}},
		Dim:          1,
		DefaultLabel: 1,
	}
	forest := func(x []float64) int {
		if x[0] < 5 {
			return 0
		}
		return 1
	}
	samples := [][]float64{{1}, {2}, {6}, {7}}
	if got := Consistency(rs, forest, samples); got != 1 {
		t.Errorf("Consistency = %v, want 1", got)
	}
	disagree := func(x []float64) int { return 1 - forest(x) }
	if got := Consistency(rs, disagree, samples); got != 0 {
		t.Errorf("Consistency = %v, want 0", got)
	}
	if got := Consistency(rs, forest, nil); got != 1 {
		t.Errorf("empty Consistency = %v, want 1", got)
	}
}

func TestMergeAdjacentChain(t *testing.T) {
	// Three benign cells in a row merge to one.
	ruleList := []Rule{
		{Box: NewBox([]float64{0}, []float64{1}), Label: 0},
		{Box: NewBox([]float64{1}, []float64{2}), Label: 0},
		{Box: NewBox([]float64{2}, []float64{3}), Label: 0},
	}
	out := MergeAdjacent(ruleList, 0)
	if len(out) != 1 {
		t.Fatalf("merged = %d rules, want 1", len(out))
	}
	if out[0].Box[0].Lo != 0 || out[0].Box[0].Hi != 3 {
		t.Errorf("merged box = %+v", out[0].Box)
	}
}

func TestMergeAdjacentRespectsLabels(t *testing.T) {
	ruleList := []Rule{
		{Box: NewBox([]float64{0}, []float64{1}), Label: 0},
		{Box: NewBox([]float64{1}, []float64{2}), Label: 1},
	}
	out := MergeAdjacent(ruleList, 0)
	if len(out) != 2 {
		t.Errorf("different labels merged: %d rules", len(out))
	}
}

func TestMergeAdjacentNonAdjacent(t *testing.T) {
	ruleList := []Rule{
		{Box: NewBox([]float64{0}, []float64{1}), Label: 0},
		{Box: NewBox([]float64{5}, []float64{6}), Label: 0},
	}
	out := MergeAdjacent(ruleList, 0)
	if len(out) != 2 {
		t.Errorf("non-adjacent rules merged: %d rules", len(out))
	}
}

func TestMergeAdjacent2D(t *testing.T) {
	// 2x2 grid all benign merges to a single rule.
	var ruleList []Rule
	for _, x := range []float64{0, 1} {
		for _, y := range []float64{0, 1} {
			ruleList = append(ruleList, Rule{Box: NewBox([]float64{x, y}, []float64{x + 1, y + 1}), Label: 0})
		}
	}
	out := MergeAdjacent(ruleList, 0)
	if len(out) != 1 {
		t.Errorf("2x2 merge = %d rules, want 1", len(out))
	}
}

func TestQuantizerEncodeDecode(t *testing.T) {
	q := NewQuantizer([]float64{0}, []float64{100}, 8)
	if got := q.Encode(0, 0); got != 0 {
		t.Errorf("Encode(0) = %d", got)
	}
	if got := q.Encode(0, 100); got != 255 {
		t.Errorf("Encode(max) = %d, want 255 (clamped)", got)
	}
	if got := q.Encode(0, -5); got != 0 {
		t.Errorf("Encode(below) = %d, want 0", got)
	}
	if got := q.Encode(0, 200); got != 255 {
		t.Errorf("Encode(above) = %d, want 255", got)
	}
	// Decode returns the bucket's lower edge.
	if got := q.Decode(0, 0); got != 0 {
		t.Errorf("Decode(0) = %v", got)
	}
	if got := q.Decode(0, 128); math.Abs(got-50) > 0.5 {
		t.Errorf("Decode(128) = %v, want ~50", got)
	}
}

func TestQuantizerMonotone(t *testing.T) {
	q := NewQuantizer([]float64{0}, []float64{1}, 6)
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return q.Encode(0, a) <= q.Encode(0, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeToPrefixes(t *testing.T) {
	// [0, 255] over 8 bits is a single wildcard prefix.
	ps := RangeToPrefixes(IntRange{0, 255}, 8)
	if len(ps) != 1 || ps[0].MaskBits != 0 {
		t.Errorf("full range prefixes = %+v", ps)
	}
	// [1, 14] over 4 bits is the classic worst case: 1, 2-3, 4-7, 8-11,
	// 12-13, 14 → 6 = 2w−2 prefixes.
	ps = RangeToPrefixes(IntRange{1, 14}, 4)
	if len(ps) != 6 {
		t.Errorf("worst case prefixes = %d, want 6", len(ps))
	}
	// A single value is one host prefix.
	ps = RangeToPrefixes(IntRange{7, 7}, 4)
	if len(ps) != 1 || ps[0].MaskBits != 4 {
		t.Errorf("single value prefixes = %+v", ps)
	}
	// Inverted range is empty.
	if ps := RangeToPrefixes(IntRange{5, 2}, 4); ps != nil {
		t.Errorf("inverted range = %+v", ps)
	}
}

func TestRangeToPrefixesCoverExactly(t *testing.T) {
	f := func(a, b uint8) bool {
		lo, hi := uint64(a%64), uint64(b%64)
		if lo > hi {
			lo, hi = hi, lo
		}
		ps := RangeToPrefixes(IntRange{lo, hi}, 6)
		covered := map[uint64]int{}
		for _, p := range ps {
			span := uint64(1) << (6 - p.MaskBits)
			for v := p.Value; v < p.Value+span; v++ {
				covered[v]++
			}
		}
		for v := uint64(0); v < 64; v++ {
			want := 0
			if v >= lo && v <= hi {
				want = 1
			}
			if covered[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompileAndMatch(t *testing.T) {
	rs := &RuleSet{
		Rules: []Rule{
			{Box: NewBox([]float64{0, 0}, []float64{50, 100}), Label: 0},
			{Box: NewBox([]float64{50, 0}, []float64{100, 100}), Label: 1},
		},
		Dim: 2, DefaultLabel: 1,
	}
	q := NewQuantizer([]float64{0, 0}, []float64{100, 100}, 8)
	c := Compile(rs, q)
	if len(c.Rules) != 1 {
		t.Fatalf("compiled rules = %d, want 1 (whitelist only)", len(c.Rules))
	}
	if c.TotalEntries == 0 {
		t.Error("TotalEntries = 0")
	}
	if c.KeyBits != 16 {
		t.Errorf("KeyBits = %d, want 16", c.KeyBits)
	}
	if got := c.Match([]float64{25, 50}); got != 0 {
		t.Errorf("benign Match = %d", got)
	}
	if got := c.Match([]float64{75, 50}); got != 1 {
		t.Errorf("malicious Match = %d", got)
	}
	codes := q.EncodeVector([]float64{25, 50})
	if got := c.MatchCodes(codes); got != 0 {
		t.Errorf("MatchCodes = %d", got)
	}
}

func TestCompileDeduplicates(t *testing.T) {
	// Two float rules that quantise identically must compile once.
	rs := &RuleSet{
		Rules: []Rule{
			{Box: NewBox([]float64{0}, []float64{310}), Label: 0},
			{Box: NewBox([]float64{0}, []float64{320}), Label: 0},
		},
		Dim: 1, DefaultLabel: 1,
	}
	q := NewQuantizer([]float64{0}, []float64{1000}, 4)
	c := Compile(rs, q)
	if len(c.Rules) != 1 {
		t.Errorf("compiled rules = %d, want 1 after dedup", len(c.Rules))
	}
}

func TestTCAMEntriesFullRangeFree(t *testing.T) {
	q := NewQuantizer([]float64{0, 0}, []float64{100, 100}, 8)
	r := TCAMRule{Ranges: []IntRange{{0, 255}, {10, 20}}, Label: 0}
	entries := TCAMEntries(r, q)
	want := len(RangeToPrefixes(IntRange{10, 20}, 8))
	if entries != want {
		t.Errorf("entries = %d, want %d (wildcard field free)", entries, want)
	}
}

func TestGenerateVotedMatchesMajority(t *testing.T) {
	universe := FullBox(2, 0, 10)
	// Three trees, each splitting one way; majority label must match a
	// brute-force vote.
	tree1 := gridLeaves(universe, [][]float64{{5}, nil})
	tree2 := gridLeaves(universe, [][]float64{nil, {5}})
	tree3 := gridLeaves(universe, [][]float64{{3}, nil})
	labelFor := func(leaves []Box, fn func(c []float64) int) []int {
		out := make([]int, len(leaves))
		for i, b := range leaves {
			out[i] = fn(b.Center())
		}
		return out
	}
	l1 := labelFor(tree1, func(c []float64) int {
		if c[0] >= 5 {
			return 1
		}
		return 0
	})
	l2 := labelFor(tree2, func(c []float64) int {
		if c[1] >= 5 {
			return 1
		}
		return 0
	})
	l3 := labelFor(tree3, func(c []float64) int {
		if c[0] >= 3 {
			return 1
		}
		return 0
	})

	rs, err := GenerateVoted(universe, [][]Box{tree1, tree2, tree3}, [][]int{l1, l2, l3}, DefaultGenOptions())
	if err != nil {
		t.Fatal(err)
	}
	vote := func(x []float64) int {
		v := 0
		if x[0] >= 5 {
			v++
		}
		if x[1] >= 5 {
			v++
		}
		if x[0] >= 3 {
			v++
		}
		if 2*v > 3 {
			return 1
		}
		return 0
	}
	r := mathx.NewRand(9)
	for i := 0; i < 500; i++ {
		x := []float64{r.Float64() * 10, r.Float64() * 10}
		if got, want := rs.Match(x), vote(x); got != want {
			t.Fatalf("Match(%v) = %d, want %d", x, got, want)
		}
	}
}

func TestGenerateVotedShortCircuits(t *testing.T) {
	// A forest whose first two (of three) trees label everything
	// malicious: the verdict is decided at depth 2, so the third tree's
	// heavy fragmentation must not blow up the cell count.
	universe := FullBox(1, 0, 100)
	allMal := []Box{universe.Clone()}
	var cuts []float64
	for i := 1; i < 100; i++ {
		cuts = append(cuts, float64(i))
	}
	fineTree := gridLeaves(universe, [][]float64{cuts})
	fineLabels := make([]int, len(fineTree))
	rs, err := GenerateVoted(universe,
		[][]Box{allMal, allMal, fineTree},
		[][]int{{1}, {1}, fineLabels},
		GenOptions{MaxCells: 4})
	if err != nil {
		t.Fatalf("short-circuit failed to bound cells: %v", err)
	}
	if rs.Len() != 1 {
		t.Errorf("rules = %d, want 1 merged malicious region", rs.Len())
	}
}

func TestGenerateVotedValidation(t *testing.T) {
	universe := FullBox(1, 0, 1)
	if _, err := GenerateVoted(Box{{Lo: 1, Hi: 1}}, nil, nil, DefaultGenOptions()); err == nil {
		t.Error("want error on empty universe")
	}
	if _, err := GenerateVoted(universe, [][]Box{{universe}}, nil, DefaultGenOptions()); err == nil {
		t.Error("want error on leaf/label mismatch")
	}
}

func TestGenerateVotedTieIsBenign(t *testing.T) {
	universe := FullBox(1, 0, 10)
	tree1 := gridLeaves(universe, [][]float64{{5}})
	tree2 := gridLeaves(universe, [][]float64{{5}})
	// Tree1 says malicious below 5, tree2 says malicious at/above 5:
	// every point gets exactly 1 of 2 votes — a tie, so benign.
	rs, err := GenerateVoted(universe, [][]Box{tree1, tree2}, [][]int{{1, 0}, {0, 1}}, DefaultGenOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 6, 9} {
		if got := rs.Match([]float64{v}); got != 0 {
			t.Errorf("tie Match(%v) = %d, want 0", v, got)
		}
	}
}

func TestQuantizeRuleSnapsToNearestBoundary(t *testing.T) {
	q := NewQuantizer([]float64{0}, []float64{160}, 4) // bucket = 10
	// Box [12, 57): edges snap to 10 and 60 -> codes [1, 5].
	tr, ok := QuantizeRule(Rule{Box: NewBox([]float64{12}, []float64{57}), Label: 0}, q)
	if !ok {
		t.Fatal("rule vanished")
	}
	if tr.Ranges[0].Lo != 1 || tr.Ranges[0].Hi != 5 {
		t.Errorf("range = %+v, want [1,5]", tr.Ranges[0])
	}
	// Adjacent boxes sharing an edge stay watertight: [0,57) and
	// [57,160) cover codes [0,5] and [6,15].
	a, _ := QuantizeRule(Rule{Box: NewBox([]float64{0}, []float64{57})}, q)
	b, _ := QuantizeRule(Rule{Box: NewBox([]float64{57}, []float64{160})}, q)
	if a.Ranges[0].Hi+1 != b.Ranges[0].Lo {
		t.Errorf("crack or overlap at the seam: %+v vs %+v", a.Ranges[0], b.Ranges[0])
	}
	// A sub-bucket box vanishes.
	if _, ok := QuantizeRule(Rule{Box: NewBox([]float64{12}, []float64{14})}, q); ok {
		t.Error("sub-bucket rule survived")
	}
}
