package serve

// This file is the per-lane ingest face of the runtime. A Producer is
// one RSS-style sequence lane: it owns a dense monotone sequence
// counter, its own per-shard pending batch buffers, and its own view
// of the trace clock — nothing hot is shared with other lanes, so N
// producers feed the shard workers concurrently the way N NIC queues
// feed cores. Canonical flow keys and key folds are computed here, on
// the producer side (or accepted precomputed via IngestDecoded, the
// hand-off ParallelBatchSource uses), so parsing and hashing overlap
// the shard workers' matching.

import (
	"context"
	"errors"
	"io"
	"sync/atomic"
	"time"

	"iguard/internal/features"
	"iguard/internal/netpkt"
)

// ErrDecodedLenMismatch is returned by IngestDecoded when the packet,
// key, and fold slices disagree in length. (A static error: the
// decoded ingest path is a hot path and must not allocate to fail.)
var ErrDecodedLenMismatch = errors.New("serve: IngestDecoded: pkts, keys, and folds must have equal lengths")

// Producer is one ingest lane. Obtain lanes from Server.Producer;
// every method must be called from one goroutine at a time per lane,
// while distinct lanes run concurrently. Each lane numbers its packets
// with its own dense monotone sequence (delivered to OnDecision as
// (lane, seq)); the lane owns its pending batch buffers and flush
// deadline, so one slow lane never stalls another's hand-off.
type Producer struct {
	s    *Server
	lane uint32

	// nextSeq is the lane-owned sequence counter; ingested mirrors it
	// (one atomic store per packet instead of a load + RMW pair) so
	// Stats can read each lane's count from outside its goroutine.
	nextSeq  uint64
	ingested atomic.Uint64

	// Lane-owned trace-clock anchors, unix-nano. lastSeen is the
	// newest capture timestamp this lane has observed (zero until the
	// lane's first packet); lastFlush anchors the lane's BatchFlush
	// deadline. Both are plain fields: only the lane's goroutine
	// touches them.
	lastSeen  int64
	lastFlush int64

	// pending is the lane's private fill buffer for each shard
	// (pending[i] feeds shard i); nil when batching is off. Buffers
	// recycle through the shards' shared free pools, whose capacity
	// covers one pending per lane (see New).
	pending []*pktBatch
}

// Lane returns the lane's index — the lane value OnDecision sees for
// every packet this producer ingests.
func (p *Producer) Lane() uint32 { return p.lane }

// Ingest routes one packet to its flow's shard. It returns (true, nil)
// when the packet was queued (or, in batch mode, copied into its
// shard's pending batch — the caller's packet is then immediately
// reusable), (false, nil) when the Drop policy shed it, and (false,
// ErrClosed) after Close. In unbatched mode the packet must not be
// mutated by the caller afterwards. In batch mode under the Drop
// policy, sheds happen per batch at hand-off and are reported via
// Stats.QueueDrops, not this return. Lane goroutine only.
//
//iguard:hotpath
func (p *Producer) Ingest(pkt *netpkt.Packet) (bool, error) {
	s := p.s
	if s.closed.Load() {
		return false, ErrClosed
	}
	p.observe(pkt.Timestamp)
	key, fold := features.CanonicalFoldOf(pkt)
	shard := s.shardOf(fold)
	if s.batching() {
		p.enqueue(shard, pkt, key, fold)
		return true, nil
	}
	return p.sendPacket(shard, pkt)
}

// sendPacket queues one packet on the unbatched per-packet path,
// stamping it with the lane's next sequence number.
//
//iguard:hotpath
func (p *Producer) sendPacket(shard int, pkt *netpkt.Packet) (bool, error) {
	s := p.s
	w := s.shards[shard]
	m := shardMsg{kind: msgPacket, pkt: pkt, lane: p.lane, seq: p.nextSeq}
	if s.cfg.Policy == Drop {
		select {
		case w.in <- m:
		default:
			w.queueDrops.Add(1)
			s.queueDrops.Add(1)
			return false, nil
		}
	} else {
		w.in <- m
	}
	p.nextSeq++
	p.ingested.Store(p.nextSeq)
	return true, nil
}

// enqueue copies one packet into the lane's pending batch for its
// shard, handing the batch off when it fills. Lane goroutine only.
//
//iguard:hotpath
func (p *Producer) enqueue(shard int, pkt *netpkt.Packet, key features.FlowKey, fold uint32) {
	b := p.pending[shard]
	b.pkts[b.n] = *pkt
	b.keys[b.n] = key
	b.folds[b.n] = fold
	b.seqs[b.n] = p.nextSeq
	b.n++
	p.nextSeq++
	p.ingested.Store(p.nextSeq)
	if b.n >= p.s.cfg.BatchSize {
		p.flushShard(shard)
	}
}

// flushShard hands the lane's pending batch for one shard to the
// worker as one mailbox operation, stamping it with the lane, and
// takes a recycled buffer as the new pending one. Under the Drop
// policy a full mailbox sheds the whole batch — the batch analogue of
// shedding single packets — leaving its sequence numbers as gaps in
// the lane's sequence space. Lane goroutine only.
//
//iguard:hotpath
func (p *Producer) flushShard(shard int) {
	b := p.pending[shard]
	if b.n == 0 {
		return
	}
	s := p.s
	w := s.shards[shard]
	b.lane = p.lane
	m := shardMsg{kind: msgBatch, batch: b}
	if s.cfg.Policy == Drop {
		select {
		case w.in <- m:
		default:
			w.queueDrops.Add(uint64(b.n))
			s.queueDrops.Add(uint64(b.n))
			b.n = 0 // shed in place; the buffer stays pending
			return
		}
	} else {
		w.in <- m
	}
	// Never blocks after a successful hand-off: the pool holds one
	// buffer per lane beyond what the mailbox plus the worker can hold.
	p.pending[shard] = <-w.free
}

// flushPending hands the lane's pending batch for every shard off.
// Lane goroutine only (Close calls it for every lane after all
// producers have quiesced).
//
//iguard:hotpath
func (p *Producer) flushPending() {
	for i := range p.s.shards {
		p.flushShard(i)
	}
}

// Flush hands the lane's still-pending batched packets to their
// shards. It is the explicit companion to the BatchFlush deadline:
// call it when the stream pauses and the pending tail should be
// decided now (Replay and ReplayBatch call it at end of stream).
// No-op when batching is off. Lane goroutine only.
func (p *Producer) Flush() error {
	if p.s.closed.Load() {
		return ErrClosed
	}
	if p.s.batching() {
		p.flushPending()
	}
	return nil
}

// observe advances the trace clock, flushes the lane's aged partial
// batches once the lane's clock moves BatchFlush past its last flush
// point, and broadcasts sweep ticks when the shared tick election
// says this lane crossed the SweepEvery cadence first. Lane goroutine
// only.
//
//iguard:hotpath
func (p *Producer) observe(ts time.Time) {
	s := p.s
	ns := ts.UnixNano()
	if p.lastSeen == 0 {
		// Lane's first packet: seed the shared clocks (first lane's
		// CAS wins; later lanes just advance the running clock) and
		// the lane-local anchors.
		if s.traceStart.CompareAndSwap(0, ns) {
			s.traceNow.CompareAndSwap(0, ns)
			s.lastTickNS.CompareAndSwap(0, ns)
		} else {
			s.advanceTrace(ns)
		}
		p.lastSeen = ns
		p.lastFlush = ns
		return
	}
	if ns <= p.lastSeen {
		return
	}
	p.lastSeen = ns
	s.advanceTrace(ns)
	if s.batching() && time.Duration(ns-p.lastFlush) >= s.cfg.BatchFlush {
		// Flush deadline: no packet waits in this lane's partial
		// batches for more than BatchFlush of trace time once the
		// lane's clock moves on.
		p.lastFlush = ns
		p.flushPending()
	}
	if s.cfg.SweepEvery <= 0 {
		return
	}
	last := s.lastTickNS.Load()
	if time.Duration(ns-last) < s.cfg.SweepEvery {
		return
	}
	if !s.lastTickNS.CompareAndSwap(last, ns) {
		// Another lane won this tick's election and will broadcast it;
		// tick times strictly increase because only a winning CAS
		// moves the slot.
		return
	}
	s.ticks.Add(1)
	now := time.Unix(0, ns).UTC()
	// This lane's pending batches go first so every shard sees the
	// lane's packets in lane order relative to the tick. Other lanes'
	// pendings are theirs to flush; workers drop the rare stale tick
	// that overtakes a slower lane's earlier one (see runShard).
	if s.batching() {
		p.flushPending()
	}
	for _, w := range s.shards {
		// Ticks are never shed: they carry timeout semantics, and a
		// full queue only delays (bounded) rather than loses them.
		w.in <- shardMsg{kind: msgTick, now: now}
	}
}

// IngestBatch routes a slice of packets to their shards in one call:
// the batch analogue of Ingest, and what Replay/ReplayBatch drive. In
// batch mode every packet is copied into the lane's pending batches,
// so pkts is immediately reusable on return; on an unbatched server
// each packet is individually copied and queued, preserving Ingest's
// semantics (including per-packet Drop-policy sheds, reported in the
// dropped count). Lane goroutine only.
//
//iguard:hotpath
func (p *Producer) IngestBatch(pkts []netpkt.Packet) (accepted, dropped uint64, err error) {
	s := p.s
	if s.closed.Load() {
		return 0, 0, ErrClosed
	}
	if s.batching() {
		for i := range pkts {
			pk := &pkts[i]
			p.observe(pk.Timestamp)
			key, fold := features.CanonicalFoldOf(pk)
			p.enqueue(s.shardOf(fold), pk, key, fold)
		}
		return uint64(len(pkts)), 0, nil
	}
	for i := range pkts {
		// The per-packet path sends the pointer itself through the
		// mailbox, so the packet must outlive the caller's buffer.
		pk := pkts[i]
		ok, err := p.Ingest(&pk)
		if err != nil {
			return accepted, dropped, err
		}
		if ok {
			accepted++
		} else {
			dropped++
		}
	}
	return accepted, dropped, nil
}

// IngestDecoded is IngestBatch for packets whose canonical flow keys
// and key folds were already computed on the producer side — the
// ParallelBatchSource hand-off, where decode workers fold while the
// lane ingests. The three slices must be equal-length and parallel
// (keys[i], folds[i] for pkts[i], canonical); folds are trusted, not
// recomputed, so a wrong fold misroutes its flow. Lane goroutine only.
//
//iguard:hotpath
func (p *Producer) IngestDecoded(pkts []netpkt.Packet, keys []features.FlowKey, folds []uint32) (accepted, dropped uint64, err error) {
	s := p.s
	if s.closed.Load() {
		return 0, 0, ErrClosed
	}
	if len(keys) != len(pkts) || len(folds) != len(pkts) {
		return 0, 0, ErrDecodedLenMismatch
	}
	if s.batching() {
		for i := range pkts {
			pk := &pkts[i]
			p.observe(pk.Timestamp)
			p.enqueue(s.shardOf(folds[i]), pk, keys[i], folds[i])
		}
		return uint64(len(pkts)), 0, nil
	}
	for i := range pkts {
		pk := pkts[i] // the pointer outlives the caller's buffer
		p.observe(pk.Timestamp)
		ok, err := p.sendPacket(s.shardOf(folds[i]), &pk)
		if err != nil {
			return accepted, dropped, err
		}
		if ok {
			accepted++
		} else {
			dropped++
		}
	}
	return accepted, dropped, nil
}

// Replay pumps a source into the lane until io.EOF, a source error,
// or context cancellation, returning the accepted and shed counts. It
// is ReplayBatch over the source's batch face (native when the source
// implements BatchSource, adapted otherwise). Lane goroutine only.
func (p *Producer) Replay(ctx context.Context, src Source) (accepted, dropped uint64, err error) {
	return p.ReplayBatch(ctx, AsBatchSource(src))
}

// replayReadLen is the read-buffer size Replay/ReplayBatch use when
// the server itself is unbatched (batched servers read BatchSize
// packets at a time).
const replayReadLen = 64

// ReplayBatch pumps a batch source into the lane until io.EOF, a
// source or ingest error, or context cancellation, returning the
// accepted and shed counts. Packets are read up to a batch at a time
// into one reused buffer — IngestBatch copies them out, so the replay
// loop allocates nothing per packet on a batched server. At end of
// stream the lane's pending tail is flushed before returning. Lane
// goroutine only.
func (p *Producer) ReplayBatch(ctx context.Context, src BatchSource) (accepted, dropped uint64, err error) {
	size := p.s.cfg.BatchSize
	if size <= 1 {
		size = replayReadLen
	}
	buf := make([]netpkt.Packet, size)
	for {
		if err := ctx.Err(); err != nil {
			return accepted, dropped, err
		}
		n, rerr := src.NextBatch(buf)
		if n > 0 {
			a, d, ierr := p.IngestBatch(buf[:n])
			accepted += a
			dropped += d
			if ierr != nil {
				return accepted, dropped, ierr
			}
		}
		if rerr == io.EOF {
			return accepted, dropped, p.Flush()
		}
		if rerr != nil {
			return accepted, dropped, rerr
		}
	}
}

// ReplayDecoded pumps a ParallelBatchSource into the lane until the
// source is exhausted, an ingest error, or context cancellation. It
// is the decoded-batch analogue of ReplayBatch: each batch arrives
// with keys and folds already computed by the source's decode workers
// and goes straight to IngestDecoded, and the consumed buffer is
// recycled back to the source. Several lanes may run ReplayDecoded
// against one source concurrently — that is the multi-producer replay
// (see Server.ReplayParallel). Lane goroutine only.
func (p *Producer) ReplayDecoded(ctx context.Context, src *ParallelBatchSource) (accepted, dropped uint64, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return accepted, dropped, err
		}
		db, rerr := src.NextDecoded()
		if db != nil {
			a, d, ierr := p.IngestDecoded(db.Pkts, db.Keys, db.Folds)
			src.Recycle(db)
			accepted += a
			dropped += d
			if ierr != nil {
				return accepted, dropped, ierr
			}
		}
		if rerr == io.EOF {
			return accepted, dropped, p.Flush()
		}
		if rerr != nil {
			return accepted, dropped, rerr
		}
	}
}
