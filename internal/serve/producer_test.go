package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"iguard/internal/features"
	"iguard/internal/netpkt"
	"iguard/internal/switchsim"
)

// runParallel replays the trace through a server with the given lane
// count via ReplayParallel and returns the per-seq decisions (valid
// only when lanes == 1 — multi-lane seqs collide across lanes) plus
// the final stats.
func runParallel(t *testing.T, shards, batch, lanes int, pkts []netpkt.Packet) ([]decisionRecord, coreCounters, Stats) {
	t.Helper()
	rec := newSeqRecorder(len(pkts))
	srv, err := New(Config{
		Shards:     shards,
		QueueDepth: 256,
		Policy:     Block,
		SweepEvery: 50 * time.Millisecond,
		BatchSize:  batch,
		Producers:  lanes,
		NewShard:   testShardFactory(smallFlowsFL(700), 8, time.Hour),
		OnDecision: func(shard int, lane uint32, seq uint64, p *netpkt.Packet, d switchsim.Decision) {
			if lane != 0 {
				t.Errorf("single-lane replay produced lane %d", lane)
			}
			rec.onDecision(shard, lane, seq, p, d)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	accepted, dropped, err := srv.ReplayParallel(context.Background(), NewTraceSource(pkts))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || accepted != uint64(len(pkts)) {
		t.Fatalf("accepted=%d dropped=%d want accepted=%d dropped=0", accepted, dropped, len(pkts))
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	for seq, ok := range rec.seen {
		if !ok {
			t.Fatalf("seq %d never decided", seq)
		}
	}
	return rec.recs, coreOf(st), st
}

// TestReplayParallelSingleLaneByteIdentical is the degenerate-case pin
// of the multi-producer redesign: with one lane, ReplayParallel (one
// reader, one decode worker, one consumer — a pipeline in source
// order) must produce exactly the decision stream and counters of the
// plain single-producer ReplayBatch, at several shard × batch shapes.
func TestReplayParallelSingleLaneByteIdentical(t *testing.T) {
	trace := mixedTrace(t)
	for _, shards := range []int{1, 4} {
		for _, batch := range []int{0, 64} {
			t.Run(fmt.Sprintf("shards=%d/batch=%d", shards, batch), func(t *testing.T) {
				base, baseCore, _ := runBatched(t, shards, batch, trace.Packets)
				got, gotCore, st := runParallel(t, shards, batch, 1, trace.Packets)
				for seq := range base {
					if got[seq] != base[seq] {
						t.Fatalf("seq %d: parallel %+v, sequential %+v", seq, got[seq], base[seq])
					}
				}
				if gotCore != baseCore {
					t.Errorf("core counters diverge: parallel %+v, sequential %+v", gotCore, baseCore)
				}
				if len(st.Lanes) != 1 || st.Lanes[0].Ingested != uint64(len(trace.Packets)) {
					t.Errorf("lane stats = %+v, want one lane with %d ingested", st.Lanes, len(trace.Packets))
				}
			})
		}
	}
}

// laneOrderRecorder pins the per-lane ordering contract: per (shard,
// lane) it records the seq stream in arrival order. Shard goroutines
// write disjoint rows, so no lock is needed.
type laneOrderRecorder struct {
	seqs [][]map[int]bool // [shard][lane] -> set of seqs seen (monotonicity checked inline)
	last [][]int64        // [shard][lane] -> last seq seen, -1 initially
	bad  []string
	mu   sync.Mutex // guards bad only (error reporting is cold)
}

func newLaneOrderRecorder(shards, lanes int) *laneOrderRecorder {
	r := &laneOrderRecorder{
		seqs: make([][]map[int]bool, shards),
		last: make([][]int64, shards),
	}
	for s := 0; s < shards; s++ {
		r.seqs[s] = make([]map[int]bool, lanes)
		r.last[s] = make([]int64, lanes)
		for l := 0; l < lanes; l++ {
			r.seqs[s][l] = map[int]bool{}
			r.last[s][l] = -1
		}
	}
	return r
}

func (r *laneOrderRecorder) onDecision(shard int, lane uint32, seq uint64, _ *netpkt.Packet, _ switchsim.Decision) {
	if r.last[shard][lane] >= int64(seq) {
		r.mu.Lock()
		r.bad = append(r.bad, fmt.Sprintf("shard %d lane %d: seq %d after %d", shard, lane, seq, r.last[shard][lane]))
		r.mu.Unlock()
	}
	r.last[shard][lane] = int64(seq)
	r.seqs[shard][lane][int(seq)] = true
}

// TestMultiProducerLaneContract drives several concurrent producer
// lanes and pins the documented ordering contract: within each (lane,
// shard) pair decisions arrive in strictly increasing seq order, each
// lane's seqs are dense across shards (0..ingested-1, Block policy
// sheds nothing), every flow stays on one shard, and the aggregate
// ingest count balances against processed packets.
func TestMultiProducerLaneContract(t *testing.T) {
	const shards, lanes = 4, 3
	trace := mixedTrace(t)
	flowRec := newPerFlowRecorder(shards)
	laneRec := newLaneOrderRecorder(shards, lanes)
	srv, err := New(Config{
		Shards:     shards,
		QueueDepth: 64,
		Policy:     Block,
		BatchSize:  16,
		Producers:  lanes,
		NewShard:   testShardFactory(smallFlowsFL(700), 8, time.Hour),
		OnDecision: func(shard int, lane uint32, seq uint64, p *netpkt.Packet, d switchsim.Decision) {
			laneRec.onDecision(shard, lane, seq, p, d)
			flowRec.onDecision(shard, lane, seq, p, d)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Split the trace into one contiguous slab per lane and drive the
	// lanes from concurrent goroutines — the RSS shape.
	var wg sync.WaitGroup
	per := (len(trace.Packets) + lanes - 1) / lanes
	total := uint64(0)
	for l := 0; l < lanes; l++ {
		lo := l * per
		hi := lo + per
		if hi > len(trace.Packets) {
			hi = len(trace.Packets)
		}
		total += uint64(hi - lo)
		wg.Add(1)
		go func(p *Producer, pkts []netpkt.Packet) {
			defer wg.Done()
			if a, d, err := p.IngestBatch(pkts); err != nil || d != 0 || a != uint64(len(pkts)) {
				t.Errorf("lane %d: IngestBatch = (%d, %d, %v)", p.Lane(), a, d, err)
			}
			if err := p.Flush(); err != nil {
				t.Errorf("lane %d: Flush: %v", p.Lane(), err)
			}
		}(srv.Producer(l), trace.Packets[lo:hi])
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if len(laneRec.bad) > 0 {
		t.Fatalf("per-lane order violated:\n%s", strings.Join(laneRec.bad, "\n"))
	}
	st := srv.Stats()
	if st.Ingested != total || st.Packets != int(total) || st.QueueDrops != 0 {
		t.Fatalf("ingested=%d packets=%d queueDrops=%d, want %d/%d/0", st.Ingested, st.Packets, st.QueueDrops, total, total)
	}
	// Dense per-lane sequence spaces: lane l's seqs across all shards
	// are exactly 0..Ingested-1.
	for l := 0; l < lanes; l++ {
		seen := map[int]bool{}
		for s := 0; s < shards; s++ {
			for seq := range laneRec.seqs[s][l] {
				if seen[seq] {
					t.Fatalf("lane %d seq %d decided twice", l, seq)
				}
				seen[seq] = true
			}
		}
		if want := st.Lanes[l].Ingested; uint64(len(seen)) != want {
			t.Fatalf("lane %d: %d distinct seqs, stats say %d ingested", l, len(seen), want)
		}
		for seq := 0; seq < len(seen); seq++ {
			if !seen[seq] {
				t.Fatalf("lane %d: seq space has a gap at %d under Block policy", l, seq)
			}
		}
	}
	// No flow observed on two shards (perFlowRecorder.merge fails on
	// misroutes) — lanes share the shard partition.
	flowRec.merge(t)
}

// TestProducerErrorsAfterClose pins the closed-server behaviour of the
// whole per-lane ingest face.
func TestProducerErrorsAfterClose(t *testing.T) {
	srv, err := New(Config{
		Shards:    2,
		BatchSize: 8,
		Producers: 2,
		NewShard:  testShardFactory(acceptAllFL(), 8, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	trace := mixedTrace(t)
	p := srv.Producer(1)
	if _, err := p.Ingest(&trace.Packets[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Ingest after Close: err = %v, want ErrClosed", err)
	}
	if _, _, err := p.IngestBatch(trace.Packets[:4]); !errors.Is(err, ErrClosed) {
		t.Errorf("IngestBatch after Close: err = %v, want ErrClosed", err)
	}
	keys := make([]features.FlowKey, 4)
	folds := make([]uint32, 4)
	if _, _, err := p.IngestDecoded(trace.Packets[:4], keys, folds); !errors.Is(err, ErrClosed) {
		t.Errorf("IngestDecoded after Close: err = %v, want ErrClosed", err)
	}
	if err := p.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after Close: err = %v, want ErrClosed", err)
	}
	if _, _, err := srv.ReplayParallel(context.Background(), NewTraceSource(trace.Packets)); !errors.Is(err, ErrClosed) {
		t.Errorf("ReplayParallel after Close: err = %v, want ErrClosed", err)
	}
}

// TestIngestDecodedLengthMismatch pins the parallel-slice contract:
// disagreeing lengths are rejected with the static error, before any
// packet is ingested.
func TestIngestDecodedLengthMismatch(t *testing.T) {
	srv, err := New(Config{
		Shards:    1,
		BatchSize: 8,
		NewShard:  testShardFactory(acceptAllFL(), 8, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	trace := mixedTrace(t)
	pkts := trace.Packets[:4]
	keys := make([]features.FlowKey, 3)
	folds := make([]uint32, 4)
	if _, _, err := srv.Producer(0).IngestDecoded(pkts, keys, folds); !errors.Is(err, ErrDecodedLenMismatch) {
		t.Fatalf("short keys: err = %v, want ErrDecodedLenMismatch", err)
	}
	if _, _, err := srv.Producer(0).IngestDecoded(pkts, make([]features.FlowKey, 4), folds[:2]); !errors.Is(err, ErrDecodedLenMismatch) {
		t.Fatalf("short folds: err = %v, want ErrDecodedLenMismatch", err)
	}
	if st := srv.Stats(); st.Ingested != 0 {
		t.Fatalf("rejected IngestDecoded still ingested %d packets", st.Ingested)
	}
}

// TestIngestBatchOversized feeds batches far larger than BatchSize and
// the queue depth in one call: the producer must chunk them through
// its pending buffers without loss (Block policy) and the counters
// must balance exactly.
func TestIngestBatchOversized(t *testing.T) {
	trace := mixedTrace(t)
	srv, err := New(Config{
		Shards:     2,
		QueueDepth: 32, // far smaller than the trace
		BatchSize:  8,
		Policy:     Block,
		NewShard:   testShardFactory(acceptAllFL(), 8, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, d, err := srv.IngestBatch(trace.Packets) // one call, whole trace
	if err != nil || d != 0 || a != uint64(len(trace.Packets)) {
		t.Fatalf("IngestBatch = (%d, %d, %v), want (%d, 0, nil)", a, d, err, len(trace.Packets))
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Packets != len(trace.Packets) || st.Ingested != uint64(len(trace.Packets)) || st.QueueDrops != 0 {
		t.Fatalf("packets=%d ingested=%d drops=%d, want %d/%d/0", st.Packets, st.Ingested, st.QueueDrops, len(trace.Packets), len(trace.Packets))
	}
}

// TestConcurrentLaneDropConservation hammers a tiny Drop-policy server
// from several concurrent lanes and checks the conservation law the
// counters promise: every sequence number a lane assigned is either
// processed by a shard or counted in QueueDrops — nothing double
// counted, nothing lost. Run under -race this is also the data-race
// probe for the multi-producer hand-off.
func TestConcurrentLaneDropConservation(t *testing.T) {
	const lanes = 4
	trace := mixedTrace(t)
	srv, err := New(Config{
		Shards:     2,
		QueueDepth: 8, // tiny: force sheds
		BatchSize:  4,
		Policy:     Drop,
		Producers:  lanes,
		NewShard:   testShardFactory(smallFlowsFL(700), 8, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func(p *Producer) {
			defer wg.Done()
			// Every lane replays the whole trace — maximal cross-lane
			// contention on the shard mailboxes.
			if _, _, err := p.ReplayBatch(context.Background(), NewTraceSource(trace.Packets)); err != nil {
				t.Errorf("lane %d: %v", p.Lane(), err)
			}
		}(srv.Producer(l))
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if want := uint64(lanes * len(trace.Packets)); st.Ingested != want {
		t.Fatalf("ingested=%d, want %d (Drop sheds after seq assignment in batch mode)", st.Ingested, want)
	}
	if got := uint64(st.Packets) + st.QueueDrops; got != st.Ingested {
		t.Fatalf("conservation violated: processed %d + dropped %d = %d, ingested %d",
			st.Packets, st.QueueDrops, got, st.Ingested)
	}
	if st.QueueDrops == 0 {
		t.Log("no sheds occurred; conservation check was trivial this run")
	}
	var perShard uint64
	for _, sh := range st.Shards {
		perShard += sh.QueueDrops
	}
	if perShard != st.QueueDrops {
		t.Fatalf("per-shard drops sum %d != aggregate %d", perShard, st.QueueDrops)
	}
}

// TestStatsLaneAggregation pins satellite semantics of the lane stats:
// the aggregate Ingested is the sum over lanes (not any single lane's
// counter), Lanes reports each lane's own count, and the operator
// summary renders the per-lane line only when it is informative.
func TestStatsLaneAggregation(t *testing.T) {
	trace := mixedTrace(t)
	srv, err := New(Config{
		Shards:    2,
		BatchSize: 8,
		Producers: 3,
		NewShard:  testShardFactory(acceptAllFL(), 8, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lane methods are one-goroutine-at-a-time per lane; one test
	// goroutine driving the lanes in turn satisfies that trivially.
	counts := []int{40, 25, 10}
	off := 0
	for l, n := range counts {
		p := srv.Producer(l)
		if a, _, err := p.IngestBatch(trace.Packets[off : off+n]); err != nil || a != uint64(n) {
			t.Fatalf("lane %d: IngestBatch = (%d, _, %v)", l, a, err)
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	st := srv.Stats()
	if st.Ingested != 75 {
		t.Fatalf("aggregate Ingested = %d, want 75 (sum over lanes)", st.Ingested)
	}
	for l, n := range counts {
		if st.Lanes[l].Lane != uint32(l) || st.Lanes[l].Ingested != uint64(n) {
			t.Fatalf("Lanes[%d] = %+v, want lane %d ingested %d", l, st.Lanes[l], l, n)
		}
	}
	if !strings.Contains(st.String(), "lanes: 0=40 1=25 2=10") {
		t.Fatalf("operator summary lacks the per-lane line:\n%s", st.String())
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelBatchSourceDecodesAll checks the decode pipeline across
// several workers and consumers: every packet of the trace comes out
// exactly once, its key and fold are exactly CanonicalFoldOf's, and
// every consumer sees io.EOF at the end.
func TestParallelBatchSourceDecodesAll(t *testing.T) {
	trace := mixedTrace(t)
	ps := NewParallelBatchSource(NewTraceSource(trace.Packets), ParallelSourceConfig{
		Workers:   3,
		BatchSize: 7,
	})
	defer ps.Close()
	var mu sync.Mutex
	got := map[uint64]int{} // packet timestamp+len fingerprint -> count
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				db, err := ps.NextDecoded()
				if db != nil {
					for i := range db.Pkts {
						key, fold := features.CanonicalFoldOf(&db.Pkts[i])
						if db.Keys[i] != key || db.Folds[i] != fold {
							t.Errorf("decoded key/fold (%v, %d) != CanonicalFoldOf (%v, %d)", db.Keys[i], db.Folds[i], key, fold)
						}
						fp := uint64(db.Pkts[i].Timestamp.UnixNano())<<16 | uint64(db.Pkts[i].Length&0xffff)
						mu.Lock()
						got[fp]++
						mu.Unlock()
					}
					ps.Recycle(db)
				}
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Errorf("NextDecoded: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	want := map[uint64]int{}
	for i := range trace.Packets {
		fp := uint64(trace.Packets[i].Timestamp.UnixNano())<<16 | uint64(trace.Packets[i].Length&0xffff)
		want[fp]++
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d distinct fingerprints, want %d", len(got), len(want))
	}
	for fp, n := range want {
		if got[fp] != n {
			t.Fatalf("fingerprint %x decoded %d times, want %d", fp, got[fp], n)
		}
	}
}

// blockingSource blocks NextBatch until released, then reports EOF —
// the shape of a live capture with no traffic.
type blockingSource struct{ release chan struct{} }

func (b *blockingSource) NextBatch([]netpkt.Packet) (int, error) {
	<-b.release
	return 0, io.EOF
}

// TestParallelBatchSourceClose pins early teardown: consumers blocked
// on a silent source unblock with ErrSourceClosed as soon as Close
// runs, without waiting for the source.
func TestParallelBatchSourceClose(t *testing.T) {
	src := &blockingSource{release: make(chan struct{})}
	defer close(src.release) // let the reader goroutine exit at test end
	ps := NewParallelBatchSource(src, ParallelSourceConfig{Workers: 2})
	errc := make(chan error, 1)
	go func() {
		_, err := ps.NextDecoded()
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("NextDecoded returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	ps.Close()
	ps.Close() // idempotent
	select {
	case err := <-errc:
		if !errors.Is(err, ErrSourceClosed) {
			t.Fatalf("NextDecoded after Close: err = %v, want ErrSourceClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("NextDecoded still blocked after Close")
	}
	// Recycle after Close must not block either.
	ps.Recycle(&DecodedBatch{})
}
