package serve

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"iguard/internal/controller"
	"iguard/internal/switchsim"
)

// TestStatsJSONStable pins the exact bytes of the machine-parseable
// stats encoding. A failure here means a JSON key changed — which
// breaks every consumer of `-stats-json` output — so the fix is almost
// never to update the expectation casually: it is an interface.
func TestStatsJSONStable(t *testing.T) {
	st := Stats{
		Shards: []ShardStats{{
			Shard: 1,
			Switch: switchsim.Counters{
				Packets:        100,
				PathCounts:     [6]int{1, 2, 3, 4, 5, 6},
				Drops:          7,
				Digests:        8,
				DigestBytes:    88,
				Recirculated:   9,
				HardCollisions: 2,
				Sweeps:         3,
			},
			Controller: controller.Stats{
				RulesInstalled: 11,
				RulesEvicted:   4,
				RulesRemoved:   2,
				StorageCleared: 12,
			},
			ActiveFlows:  21,
			BlacklistLen: 9,
			AvgLatency:   1500 * time.Nanosecond,
			QueueDrops:   5,
			Swaps:        1,
			Batches:      50,
		}},
		Lanes:          []LaneStats{{Lane: 0, Ingested: 60}, {Lane: 1, Ingested: 45}},
		Ingested:       105,
		QueueDrops:     5,
		Packets:        100,
		Batches:        50,
		PathCounts:     [6]int{1, 2, 3, 4, 5, 6},
		Drops:          7,
		Digests:        8,
		DigestBytes:    88,
		Recirculated:   9,
		HardCollisions: 2,
		RulesInstalled: 11,
		RulesEvicted:   4,
		BlacklistLen:   9,
		ActiveFlows:    21,
		Sweeps:         3,
		Ticks:          6,
		Swaps:          1,
		TraceElapsed:   2 * time.Second,
		WallElapsed:    time.Second,
		PPS:            100,
		AvgLatency:     1500 * time.Nanosecond,
	}
	got, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"ingested":105,"queue_drops":5,"packets":100,"batches":50,` +
		`"path_counts":[1,2,3,4,5,6],"drops":7,"digests":8,"digest_bytes":88,` +
		`"recirculated":9,"hard_collisions":2,"rules_installed":11,"rules_evicted":4,` +
		`"blacklist_len":9,"active_flows":21,"sweeps":3,"ticks":6,"swaps":1,` +
		`"trace_elapsed_ns":2000000000,"wall_elapsed_ns":1000000000,"pps":100,` +
		`"avg_latency_ns":1500,` +
		`"lanes":[{"lane":0,"ingested":60},{"lane":1,"ingested":45}],"shards":[` +
		`{"shard":1,"packets":100,"path_counts":[1,2,3,4,5,6],"drops":7,"digests":8,` +
		`"digest_bytes":88,"recirculated":9,"hard_collisions":2,"sweeps":3,` +
		`"rules_installed":11,"rules_evicted":4,"rules_removed":2,"storage_cleared":12,` +
		`"active_flows":21,"blacklist_len":9,"avg_latency_ns":1500,"queue_drops":5,` +
		`"swaps":1,"batches":50}]}`
	if string(got) != want {
		t.Fatalf("stats JSON changed:\n got %s\nwant %s", got, want)
	}
}

// TestStatsJSONFromLiveServer checks the encoding round-trips through
// a real server's snapshot (no marshal errors, parseable, and the
// headline counters agree with the struct).
func TestStatsJSONFromLiveServer(t *testing.T) {
	srv, err := New(Config{
		Shards:   2,
		NewShard: testShardFactory(acceptAllFL(), 8, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	trace := mixedTrace(t)
	if _, _, err := srv.Replay(context.Background(), NewTraceSource(trace.Packets)); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unparseable stats JSON: %v\n%s", err, raw)
	}
	if got := int(back["packets"].(float64)); got != st.Packets {
		t.Fatalf("packets=%d in JSON, %d in struct", got, st.Packets)
	}
	shards, ok := back["shards"].([]any)
	if !ok || len(shards) != 2 {
		t.Fatalf("shards in JSON = %v, want 2 entries", back["shards"])
	}
}
