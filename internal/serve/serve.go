// Package serve is iGuard's streaming detection runtime: the layer
// between a packet source and the deployed data plane that the library
// itself does not provide. A Server hash-partitions packets by
// canonical flow key onto N shard workers, each owning a private
// switchsim.Switch + controller.Controller pair — the switch's
// single-goroutine ownership contract is preserved by construction, so
// the hot path takes no locks. Shards are fed through bounded channels
// with a configurable backpressure policy (block the producer, or
// count-and-drop), swept for flow timeouts on a trace-time cadence so
// pcap replays stay deterministic, and support atomic whitelist
// hot-swap: a new model's rules replace the running ones between
// packets, no restart, with flow state and blacklist surviving.
//
// The ingest→decide path is batch-oriented end to end when
// Config.BatchSize > 1: the producer accumulates each shard's packets
// into a per-shard batch buffer (packets are copied by value, so the
// caller's read buffer is immediately reusable) and hands the whole
// batch to the worker as one mailbox operation; the worker answers it
// with one switchsim.ProcessBatch pass. A trace-time flush deadline
// (Config.BatchFlush) bounds how long a partial batch may sit while
// the clock advances, so low-rate flows still see bounded decision
// latency. Batch buffers recycle through a fixed per-shard pool — the
// steady-state batch path touches the heap exactly never, on both
// sides of the channel.
//
// Ingest is multi-producer, RSS-style: Config.Producers opens N
// sequence lanes, each owned by one producer goroutine (Producer).
// Every lane numbers its packets with its own dense monotone sequence,
// computes canonical keys and folds producer-side, and fills private
// per-shard batch buffers — producers share nothing hot, so ingest
// scales with cores the way receive-side scaling distributes NIC
// queues. Decisions carry (lane, seq): totally ordered within a lane,
// deliberately unordered across lanes (see OnDecision).
//
// Concurrency contract: each Producer's face
// (Ingest/IngestBatch/IngestDecoded/Replay*/Flush — the Server-level
// methods are lane 0's) must be called from one goroutine at a time,
// but distinct lanes run concurrently. Swap, FlushBlacklists, and
// Stats are control-plane operations for one supervising goroutine;
// they may run concurrently with producers (they are barriers relative
// to batches already handed off, not to packets still pending in
// producer-owned buffers — a lane's pending batch flushes on its own
// BatchSize/BatchFlush cadence or via its Flush). Close requires every
// producer goroutine to have quiesced first (join them before calling
// it); it then drains every lane's pending batches and every shard
// queue. Decision callbacks run on shard goroutines — serially within
// a shard, concurrently across shards; the packet pointer an observer
// receives is only valid for the duration of the callback.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iguard/internal/controller"
	"iguard/internal/features"
	"iguard/internal/netpkt"
	"iguard/internal/rules"
	"iguard/internal/switchsim"
)

// shardSeed salts the flow-key hash used for shard selection. It is
// deliberately distinct from the switch's two table seeds so that the
// shard partition is independent of slot indexing: two flows that
// collide in a switch table do not systematically land on one shard.
const shardSeed uint32 = 0x5eed51ab

// DropPolicy selects what Ingest does when a shard's queue is full.
type DropPolicy int

const (
	// Block applies backpressure: Ingest waits for queue space. No
	// packet is ever lost; the producer runs at the shards' pace.
	Block DropPolicy = iota
	// Drop counts the packet as a queue drop and moves on — the
	// line-rate answer when the source cannot be stalled.
	Drop
)

// String implements fmt.Stringer.
func (p DropPolicy) String() string {
	if p == Drop {
		return "drop"
	}
	return "block"
}

// ParseDropPolicy converts a flag value ("block" or "drop").
func ParseDropPolicy(s string) (DropPolicy, error) {
	switch strings.ToLower(s) {
	case "block":
		return Block, nil
	case "drop":
		return Drop, nil
	}
	return Block, fmt.Errorf("serve: unknown drop policy %q (want block or drop)", s)
}

// Shard is one worker's private data-plane/control-plane pair. The
// server takes ownership: after New, only the shard's worker goroutine
// touches the Switch. That exclusivity is also what makes the packet
// hot path allocation-free here: the Switch's reusable feature-vector
// scratch buffers are per-shard by construction, never shared.
type Shard struct {
	Switch     *switchsim.Switch
	Controller *controller.Controller
}

// Config parameterises New.
type Config struct {
	// Shards is the worker count; packets of one flow always land on
	// the same shard. Defaults to 1.
	Shards int
	// QueueDepth bounds each shard's input channel. Defaults to 1024.
	QueueDepth int
	// Policy is the backpressure policy when a queue is full.
	Policy DropPolicy
	// SweepEvery, when positive, broadcasts a timeout sweep to every
	// shard each time the trace clock (the maximum capture timestamp
	// observed by Ingest) advances by this much. Sweeps ride the same
	// queues as packets, so a replayed trace produces the same sweep
	// points on every run. Zero disables periodic sweeps.
	SweepEvery time.Duration
	// BatchSize, when > 1, turns on batch hand-off: the producer
	// accumulates up to BatchSize packets per shard and delivers them
	// as one mailbox message, answered by one switchsim.ProcessBatch
	// pass. 0 or 1 keeps the per-packet path. Decisions are identical
	// either way (the batch pipeline is the per-packet pipeline with
	// the setup amortised); under the Drop policy a full queue sheds
	// whole batches at hand-off, so sequence numbers then have
	// batch-sized gaps where the unbatched path would shed singly.
	BatchSize int
	// BatchFlush bounds, in trace time, how long a partial batch may
	// wait for more packets: whenever the trace clock advances at
	// least BatchFlush past the last flush point, all pending batches
	// are handed off. Defaults to 1ms when batching is on. Like every
	// timeout in the runtime it is driven by capture timestamps, not
	// the wall clock, so replays stay deterministic; Flush gives the
	// producer an explicit hand-off point (Replay/ReplayBatch call it
	// at end of stream).
	BatchFlush time.Duration
	// Producers is the ingest lane count: New builds one Producer per
	// lane (Server.Producer(i) hands them out; the Server's own
	// Ingest/IngestBatch/Replay face is lane 0). Each lane is driven by
	// one goroutine; distinct lanes run concurrently. Defaults to 1,
	// which is byte-identical to the single-producer runtime.
	Producers int
	// NewShard builds worker i's private pair. Required. It is called
	// Shards times from New, before any worker starts.
	NewShard func(shard int) Shard
	// OnDecision, when non-nil, observes every processed packet.
	//
	// Ordering contract: seq is dense and monotone within its lane
	// (lane l's packets are numbered 0,1,2,… in that lane's ingest
	// order, with gaps only where the Drop policy shed), and decisions
	// of one lane's packets on one shard arrive in lane order. Across
	// lanes there is NO order: two producers race to their shards
	// exactly like two RSS queues race to cores, so (lane, seq) — not
	// seq alone — identifies a packet. With Producers == 1 this
	// degenerates to the old global contract (lane is always 0, seq is
	// globally dense). Called on shard goroutines — serially within a
	// shard, concurrently across shards.
	OnDecision func(shard int, lane uint32, seq uint64, p *netpkt.Packet, d switchsim.Decision)
	// OnBlacklist, when non-nil, observes blacklist transitions the
	// shard controllers decide locally (installs and capacity
	// evictions; see controller.SetObserver for exactly which
	// operations fire). It runs on shard goroutines and must be cheap
	// and non-blocking — the federation agent's Announce, a counter
	// bump — because it sits behind the digest path. Externally
	// applied operations (ApplyInstall/ApplyRemove/ApplyFlush) do not
	// fire it, which keeps a federated fleet loop-free.
	OnBlacklist func(shard int, ev controller.Event)
	// Now supplies wall time for Stats' elapsed/pps figures. The
	// runtime itself never consults the wall clock (all timeout logic
	// runs on capture timestamps), so this is nil-safe: without it,
	// rates are reported over trace time instead.
	Now func() time.Time
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Producers <= 0 {
		c.Producers = 1
	}
	if c.BatchSize > 1 && c.BatchFlush <= 0 {
		c.BatchFlush = time.Millisecond
	}
	return c
}

// MaxProducers bounds Config.Producers: lanes cost per-shard batch
// buffers and per-lane bookkeeping, and no machine feeds thousands of
// concurrent ingest goroutines usefully, so beyond this it is a
// configuration error.
const MaxProducers = 1 << 10

// MaxBatchSize bounds Config.BatchSize: beyond this, batch buffers
// stop fitting in cache and the flush deadline dominates latency, so
// larger values are a configuration error, not a tuning knob.
const MaxBatchSize = 1 << 16

// Validate reports every configuration error at once (errors.Join),
// mirroring the library facade's validators. New calls it; callers
// constructing configs programmatically can call it early for the
// full list.
func (c Config) Validate() error {
	var errs []error
	add := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf("serve: config: "+format, args...))
	}
	if c.NewShard == nil {
		add("NewShard is required")
	}
	if c.Shards < 0 {
		add("Shards is %d, want >= 0 (0 means default)", c.Shards)
	}
	if c.QueueDepth < 0 {
		add("QueueDepth is %d, want >= 0 (0 means default)", c.QueueDepth)
	}
	if c.BatchSize < 0 {
		add("BatchSize is %d, want >= 0 (0 means unbatched)", c.BatchSize)
	}
	if c.BatchSize > MaxBatchSize {
		add("BatchSize is %d, want <= %d", c.BatchSize, MaxBatchSize)
	}
	if c.BatchFlush < 0 {
		add("BatchFlush is %v, want >= 0 (0 means default)", c.BatchFlush)
	}
	if c.BatchFlush > 0 && c.BatchSize <= 1 {
		add("BatchFlush is %v but BatchSize is %d; the flush deadline needs batching on", c.BatchFlush, c.BatchSize)
	}
	if c.Producers < 0 {
		add("Producers is %d, want >= 0 (0 means default)", c.Producers)
	}
	if c.Producers > MaxProducers {
		add("Producers is %d, want <= %d", c.Producers, MaxProducers)
	}
	return errors.Join(errs...)
}

// message kinds delivered to shard workers.
const (
	msgPacket = iota
	msgBatch
	msgTick
	msgSwap
	msgStats
	msgFlush
	msgInstall
	msgRemove
)

// shardMsg is one mailbox entry: a packet, a packet batch, a sweep
// tick, a rule swap, or a stats request. Control messages share the
// packet queue so they serialise naturally between packets.
type shardMsg struct {
	kind  int
	pkt   *netpkt.Packet
	batch *pktBatch
	lane  uint32
	seq   uint64
	now   time.Time // tick
	pl    *rules.CompiledRuleSet
	fl    *rules.CompiledRuleSet
	key   features.FlowKey  // install/remove target
	ack   chan<- ShardStats // swap + stats replies
	ackN  chan<- int        // flush + install/remove replies
}

// shardWorker is the per-shard state. The worker goroutine (runShard,
// the //iguard:owner(shard) root) owns sw, ctrl, swaps, and final;
// iguard-vet's shardown analyzer enforces that statically. id and in
// are immutable after construction and shared by design; queueDrops is
// written by the producer and read by the worker, hence atomic.
type shardWorker struct {
	id int
	//iguard:ownedby(shard)
	sw *switchsim.Switch
	//iguard:ownedby(shard)
	ctrl       *controller.Controller
	in         chan shardMsg
	queueDrops atomic.Uint64
	//iguard:ownedby(shard)
	swaps int
	//iguard:ownedby(shard)
	final ShardStats

	// Batch-mode state (nil/unused when Config.BatchSize <= 1). Each
	// producer lane keeps its own pending fill buffer per shard (see
	// Producer.pending); free recycles drained batch buffers from the
	// worker back to whichever lane hands off next. Together with the
	// lanes' pendings and whatever sits in the mailbox the buffers form
	// a fixed pool — its capacity covers every buffer in existence, so
	// neither the worker's recycle nor a producer's post-hand-off take
	// ever blocks, and the steady-state batch path never allocates. out
	// is the worker's decision scratch for ProcessBatch. batches counts
	// delivered batches (worker-owned, snapshotted like swaps).
	free chan *pktBatch
	//iguard:ownedby(shard)
	out []switchsim.Decision
	//iguard:ownedby(shard)
	batches uint64
	// lastSweep drops stale sweep ticks: with concurrent lanes, the
	// producer that won a tick's CAS may deliver it after a later
	// lane's tick already reached this shard, and SweepTimeouts
	// requires non-decreasing time. Single-lane ticks arrive in order,
	// so the guard never fires there.
	//iguard:ownedby(shard)
	lastSweep time.Time
}

// pktBatch is one per-shard hand-off unit: up to BatchSize packets
// stored by value (enqueueing copies, decoupling the batch from the
// producer's read buffer) with their canonical flow keys and key
// folds — computed once for routing, reused by ProcessBatch — and
// ingest sequence numbers. A batch belongs to exactly one lane (lane
// is stamped at hand-off; buffers recycle freely across lanes through
// the shared pool). n is the fill level; the backing slices are
// allocated once at pool construction and never grow.
type pktBatch struct {
	pkts  []netpkt.Packet
	keys  []features.FlowKey
	folds []uint32
	seqs  []uint64
	lane  uint32
	n     int
}

func newBatch(size int) *pktBatch {
	return &pktBatch{
		pkts:  make([]netpkt.Packet, size),
		keys:  make([]features.FlowKey, size),
		folds: make([]uint32, size),
		seqs:  make([]uint64, size),
	}
}

// ErrClosed is returned by operations on a closed server.
var ErrClosed = errors.New("serve: server closed")

// Server is the sharded streaming runtime. Build with New; drive with
// Ingest or Replay; swap models with Swap; observe with Stats; drain
// and stop with Close.
type Server struct {
	cfg    Config
	shards []*shardWorker
	wg     sync.WaitGroup

	closed  atomic.Bool
	drained atomic.Bool

	// ctlMu fences the federation apply surface (ApplyInstall,
	// ApplyRemove, ApplyFlush — the only operations callable from
	// arbitrary goroutines) against Close: appliers hold the read
	// side across their closed-check and mailbox sends, and Close
	// holds the write side while closing the mailboxes, so an applier
	// can never send on a closed channel. The packet path never
	// touches it.
	ctlMu sync.RWMutex

	// producers holds the ingest lanes, built in New (lane i at index
	// i); the Server-level ingest face is producers[0]'s. The slice is
	// immutable after New.
	producers  []*Producer
	queueDrops atomic.Uint64

	// Trace clock, unix-nano encoded and CAS-advanced so concurrent
	// lanes and Stats can all touch it. Zero means "no packet seen
	// yet"; traceNow only moves forward (advanceTrace). lastTickNS is
	// the sweep-tick election slot: the lane whose CAS moves it wins
	// the tick and broadcasts alone, so tick times strictly increase
	// even with racing lanes.
	traceStart atomic.Int64
	traceNow   atomic.Int64
	lastTickNS atomic.Int64
	ticks      atomic.Uint64

	wallStart time.Time // set in New when cfg.Now != nil
}

// New validates the config, builds the shards, and starts the workers.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg}
	if cfg.Now != nil {
		s.wallStart = cfg.Now()
	}
	// In batch mode the mailbox is measured in batches, preserving the
	// configured packet-count buffering; the buffer pool holds one more
	// batch than the mailbox plus the worker can hold, plus one pending
	// buffer per producer lane, so recycling never blocks the worker
	// and a successful hand-off always finds a fresh pending buffer
	// waiting no matter which lane took the last one.
	queue, qBatches := cfg.QueueDepth, 0
	if cfg.BatchSize > 1 {
		qBatches = (cfg.QueueDepth + cfg.BatchSize - 1) / cfg.BatchSize
		queue = qBatches
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := cfg.NewShard(i)
		if sh.Switch == nil {
			return nil, fmt.Errorf("serve: NewShard(%d) returned a nil Switch", i)
		}
		var out []switchsim.Decision
		if cfg.BatchSize > 1 {
			out = make([]switchsim.Decision, cfg.BatchSize)
		}
		w := &shardWorker{id: i, sw: sh.Switch, ctrl: sh.Controller, in: make(chan shardMsg, queue), out: out}
		if cfg.OnBlacklist != nil && sh.Controller != nil {
			// Wired before any worker starts, so the observer is
			// visible to every digest the shard ever delivers.
			shard := i
			sh.Controller.SetObserver(func(ev controller.Event) { cfg.OnBlacklist(shard, ev) })
		}
		if cfg.BatchSize > 1 {
			w.free = make(chan *pktBatch, qBatches+1+cfg.Producers)
			for j := 0; j < qBatches+1; j++ {
				w.free <- newBatch(cfg.BatchSize)
			}
		}
		s.shards = append(s.shards, w)
	}
	for lane := 0; lane < cfg.Producers; lane++ {
		p := &Producer{s: s, lane: uint32(lane)}
		if cfg.BatchSize > 1 {
			p.pending = make([]*pktBatch, len(s.shards))
			for i := range p.pending {
				p.pending[i] = newBatch(cfg.BatchSize)
			}
		}
		s.producers = append(s.producers, p)
	}
	s.wg.Add(len(s.shards))
	for _, w := range s.shards {
		go s.runShard(w)
	}
	return s, nil
}

// Producer returns ingest lane i. Each lane must be driven by one
// goroutine at a time; distinct lanes may run concurrently. Lane 0 is
// the one the Server-level Ingest/IngestBatch/Replay face delegates
// to.
func (s *Server) Producer(i int) *Producer { return s.producers[i] }

// Producers returns the configured lane count.
func (s *Server) Producers() int { return len(s.producers) }

// Shards returns the configured shard count.
func (s *Server) Shards() int { return len(s.shards) }

// runShard is the worker loop: it owns the shard's switch, so every
// interaction with it — packets, sweeps, swaps, stats snapshots — is
// a mailbox message. Exits when the mailbox closes (Close), after
// draining everything already queued. The loop is the serving hot
// path: the packet and tick arms are statically allocation-free, with
// the decision observer and the control-plane arms factored out as the
// //iguard:coldpath boundaries.
//
//iguard:hotpath
//iguard:owner(shard)
func (s *Server) runShard(w *shardWorker) {
	defer s.wg.Done()
	for m := range w.in {
		switch m.kind {
		case msgPacket:
			d := w.sw.ProcessPacket(m.pkt)
			s.notifyDecision(w, m.lane, m.seq, m.pkt, d)
		case msgBatch:
			b := m.batch
			w.sw.ProcessBatch(b.pkts[:b.n], b.keys[:b.n], b.folds[:b.n], w.out[:b.n])
			for i := 0; i < b.n; i++ {
				s.notifyDecision(w, b.lane, b.seqs[i], &b.pkts[i], w.out[i])
			}
			w.batches++
			b.n = 0
			// Recycling never blocks: free's capacity covers the pool.
			w.free <- b
		case msgTick:
			// Racing lanes can deliver an older tick after a newer one
			// (the election orders tick *times*, not mailbox arrivals);
			// SweepTimeouts wants a non-decreasing clock, so drop stale
			// ones.
			if m.now.After(w.lastSweep) {
				w.lastSweep = m.now
				w.sw.SweepTimeouts(m.now)
			}
		default:
			s.handleControl(w, m)
		}
	}
	w.final = w.snapshot()
}

// notifyDecision hands one decision to the configured observer. Like
// switchsim's digest sink, this is an observer boundary: it fires per
// packet, but what the callback allocates is the observer's contract,
// not the shard loop's — exactly the seam the runtime alloc test pins
// with a no-op observer.
//
//iguard:coldpath observer boundary; the callback's cost belongs to the observer
func (s *Server) notifyDecision(w *shardWorker, lane uint32, seq uint64, p *netpkt.Packet, d switchsim.Decision) {
	if s.cfg.OnDecision != nil {
		s.cfg.OnDecision(w.id, lane, seq, p, d)
	}
}

// handleControl executes one control-plane mailbox message on the
// worker goroutine, preserving the switch's ownership contract.
//
//iguard:coldpath control messages are per operator action, not per packet
func (s *Server) handleControl(w *shardWorker, m shardMsg) {
	switch m.kind {
	case msgSwap:
		w.sw.SetRules(m.pl, m.fl)
		w.swaps++
		if m.ack != nil {
			m.ack <- w.snapshot()
		}
	case msgStats:
		m.ack <- w.snapshot()
	case msgFlush:
		n := 0
		if w.ctrl != nil {
			// Flush's data-plane removals land on this goroutine,
			// honouring the switch's ownership contract.
			n = w.ctrl.Flush()
		}
		m.ackN <- n
	case msgInstall:
		// Externally decided install (the federation apply path):
		// through the controller when the shard has one, so capacity
		// accounting and eviction policy see the entry; straight to
		// the switch otherwise.
		n := 0
		if w.ctrl != nil {
			if w.ctrl.Install(m.key) {
				n = 1
			}
		} else if w.sw.InstallBlacklist(m.key) {
			n = 1
		}
		m.ackN <- n
	case msgRemove:
		n := 0
		if w.ctrl != nil {
			if w.ctrl.Remove(m.key) {
				n = 1
			}
		} else {
			w.sw.RemoveBlacklist(m.key)
		}
		m.ackN <- n
	}
}

// snapshot captures the shard's counters. Worker goroutine only.
//
//iguard:coldpath runs on stats/swap requests and at drain, not per packet
func (w *shardWorker) snapshot() ShardStats {
	st := ShardStats{
		Shard:        w.id,
		Switch:       w.sw.Counters,
		ActiveFlows:  w.sw.ActiveFlows(),
		BlacklistLen: w.sw.BlacklistLen(),
		AvgLatency:   w.sw.AvgLatency(),
		QueueDrops:   w.queueDrops.Load(),
		Swaps:        w.swaps,
		Batches:      w.batches,
	}
	if w.ctrl != nil {
		st.Controller = w.ctrl.Stats()
	}
	return st
}

// shardOf maps a canonical flow key's fold to its owning shard.
//
//iguard:hotpath
func (s *Server) shardOf(fold uint32) int {
	return int(features.BiHashFold(fold, shardSeed) % uint32(len(s.shards)))
}

// batching reports whether batch hand-off is on.
func (s *Server) batching() bool { return s.cfg.BatchSize > 1 }

// advanceTrace moves the shared trace clock forward to ns. A
// monotone-max CAS loop: concurrent lanes race freely, the clock never
// goes backwards, and a lone lane pays one load plus (at most) one
// uncontended CAS — the same cost profile as the old single-producer
// store.
//
//iguard:hotpath
func (s *Server) advanceTrace(ns int64) {
	for {
		cur := s.traceNow.Load()
		if ns <= cur {
			return
		}
		if s.traceNow.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Ingest routes one packet to its flow's shard on lane 0 — see
// Producer.Ingest for the contract. Lane 0's goroutine only.
//
//iguard:hotpath
func (s *Server) Ingest(p *netpkt.Packet) (bool, error) {
	return s.producers[0].Ingest(p)
}

// Flush hands lane 0's still-pending batched packets to their shards —
// see Producer.Flush. Lane 0's goroutine only.
func (s *Server) Flush() error {
	return s.producers[0].Flush()
}

// Swap atomically replaces the whitelist on every shard: each worker
// applies the new rule sets between two packets, so no packet ever
// sees a half-swapped table, and nothing is dropped or misrouted by
// the swap itself. Flow state and blacklists survive. Swap returns
// once every shard has applied the new rules (the acks double as a
// barrier), making "the fleet now serves model X" a simple
// happens-after. It is a barrier relative to batches already handed
// off, not to packets still pending in producer-owned batch buffers
// (it cannot touch another goroutine's lane) — those flush on their
// lanes' own BatchSize/BatchFlush cadence and are decided under the
// new rules. Supervisor goroutine only; safe concurrently with
// producers.
func (s *Server) Swap(pl, fl *rules.CompiledRuleSet) error {
	if s.closed.Load() {
		return ErrClosed
	}
	ack := make(chan ShardStats, len(s.shards))
	for _, w := range s.shards {
		w.in <- shardMsg{kind: msgSwap, pl: pl, fl: fl, ack: ack}
	}
	for range s.shards {
		<-ack
	}
	return nil
}

// FlushBlacklists withdraws every installed blacklist entry on every
// shard — the companion to Swap when the replacement model redefines
// "malicious" and verdicts issued under the old rules should not keep
// blocking traffic. Returns the total number of entries removed once
// every shard has flushed. Like Swap it is a barrier only relative to
// batches already handed off; packets pending in producer-owned
// buffers may re-install entries after it returns. Supervisor
// goroutine only; safe concurrently with producers.
func (s *Server) FlushBlacklists() (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	ack := make(chan int, len(s.shards))
	for _, w := range s.shards {
		w.in <- shardMsg{kind: msgFlush, ackN: ack}
	}
	total := 0
	for range s.shards {
		total += <-ack
	}
	return total, nil
}

// ApplyInstall installs an externally decided blacklist entry — one
// propagated from another switch by the federation hub — on the key's
// owning shard, through that shard's controller so capacity accounting
// and eviction policy apply. It returns once the entry is live (the
// mailbox ack is a barrier), with applied reporting whether it was
// newly installed. Unlike the supervisor-only control plane, the
// Apply* surface is safe from any goroutine (the federation agent's
// reader calls it concurrently with the producer); it does not touch
// producer-owned state, so pending batched packets ingested before the
// call may still be decided under the pre-install table — the
// federation's eventual-consistency model, not an ordering bug.
func (s *Server) ApplyInstall(key features.FlowKey) (applied bool, err error) {
	return s.applyKey(msgInstall, key)
}

// ApplyRemove withdraws an externally decided blacklist entry from the
// key's owning shard; the counterpart of ApplyInstall with the same
// any-goroutine contract. applied reports whether the entry was
// present on a controller-backed shard.
func (s *Server) ApplyRemove(key features.FlowKey) (applied bool, err error) {
	return s.applyKey(msgRemove, key)
}

// applyKey routes one install/remove to the owning shard and waits for
// its ack.
func (s *Server) applyKey(kind int, key features.FlowKey) (bool, error) {
	key = key.Canonical()
	w := s.shards[s.shardOf(key.FoldCanonical())]
	ack := make(chan int, 1)
	s.ctlMu.RLock()
	if s.closed.Load() {
		s.ctlMu.RUnlock()
		return false, ErrClosed
	}
	// The send stays inside the read lock on purpose: Close takes the
	// write lock before stopping the workers, so holding ctlMu across
	// the send is exactly what guarantees the mailbox is still drained.
	// The block is bounded by the shard's queue depth, not indefinite.
	w.in <- shardMsg{kind: kind, key: key, ackN: ack} //iguard:allow(lockcheck) send-under-RLock is the Close fence; bounded by queue depth
	s.ctlMu.RUnlock()
	// The ack arrives even if Close runs now: workers drain their
	// mailboxes to completion before exiting.
	return <-ack == 1, nil
}

// ApplyFlush withdraws every blacklist entry on every shard — the
// apply path for a fleet-wide FLUSH. It is FlushBlacklists minus the
// supervisor-only pending-batch hand-off, making it safe from any
// goroutine; packets still waiting in producer-side batches may
// re-install entries after it returns, which is the same eventual
// consistency the rest of the federation surface accepts.
func (s *Server) ApplyFlush() (int, error) {
	ack := make(chan int, len(s.shards))
	s.ctlMu.RLock()
	if s.closed.Load() {
		s.ctlMu.RUnlock()
		return 0, ErrClosed
	}
	for _, w := range s.shards {
		// Same Close fence as applyKey: the read lock must span the
		// sends so the workers are still draining when they land.
		w.in <- shardMsg{kind: msgFlush, ackN: ack} //iguard:allow(lockcheck) send-under-RLock is the Close fence; bounded by queue depth
	}
	s.ctlMu.RUnlock()
	total := 0
	for range s.shards {
		total += <-ack
	}
	return total, nil
}

// Close stops the intake, drains every shard queue to completion, and
// stops the workers. Idempotent. Supervisor goroutine only, and every
// producer goroutine must have quiesced first (join them before
// calling); Close then hands off every lane's pending batches — no
// buffered packet is ever stranded undecided — and after it returns,
// Ingest/Swap return ErrClosed and Stats serves the final snapshot.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.batching() {
		// Producers are quiesced (the caller's contract), so their
		// lane-owned pendings are safe to drain from here.
		for _, p := range s.producers {
			p.flushPending()
		}
	}
	// The write lock waits out any applier that saw closed==false and
	// is still sending; new appliers observe closed==true. Only then
	// is closing the mailboxes safe.
	s.ctlMu.Lock()
	for _, w := range s.shards {
		close(w.in)
	}
	s.ctlMu.Unlock()
	s.wg.Wait()
	s.drained.Store(true)
	return nil
}

// Stats aggregates a consistent-enough view across shards: on a live
// server each shard answers a stats request through its mailbox (so
// the snapshot reflects that shard's state at its current queue
// position); on a closed server the final drained snapshots are
// served. Packets still pending in producer-owned batch buffers are
// counted as ingested but not yet as processed — they flush on their
// lanes' own cadence, not here (Stats cannot touch another
// goroutine's lane). Supervisor goroutine only; safe concurrently
// with producers.
func (s *Server) Stats() Stats {
	per := make([]ShardStats, len(s.shards))
	if s.drained.Load() {
		for i, w := range s.shards {
			// Safe despite the shard ownership rule: drained is only set
			// after wg.Wait() returns in Close, so every worker's final
			// write happens-before this read.
			per[i] = w.final //iguard:allow(shardown) drained.Load() after wg.Wait() orders the final write before this read
		}
	} else {
		ack := make(chan ShardStats, len(s.shards))
		for _, w := range s.shards {
			w.in <- shardMsg{kind: msgStats, ack: ack}
		}
		for range s.shards {
			st := <-ack
			per[st.Shard] = st
		}
	}
	return s.aggregate(per)
}

// IngestBatch routes a slice of packets to their shards on lane 0 —
// see Producer.IngestBatch for the contract. Lane 0's goroutine only.
//
//iguard:hotpath
func (s *Server) IngestBatch(pkts []netpkt.Packet) (accepted, dropped uint64, err error) {
	return s.producers[0].IngestBatch(pkts)
}

// Replay pumps a source into the server on lane 0 — see
// Producer.Replay. Lane 0's goroutine only.
func (s *Server) Replay(ctx context.Context, src Source) (accepted, dropped uint64, err error) {
	return s.producers[0].Replay(ctx, src)
}

// ReplayBatch pumps a batch source into the server on lane 0 — see
// Producer.ReplayBatch. Lane 0's goroutine only.
func (s *Server) ReplayBatch(ctx context.Context, src BatchSource) (accepted, dropped uint64, err error) {
	return s.producers[0].ReplayBatch(ctx, src)
}
