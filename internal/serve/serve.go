// Package serve is iGuard's streaming detection runtime: the layer
// between a packet source and the deployed data plane that the library
// itself does not provide. A Server hash-partitions packets by
// canonical flow key onto N shard workers, each owning a private
// switchsim.Switch + controller.Controller pair — the switch's
// single-goroutine ownership contract is preserved by construction, so
// the hot path takes no locks. Shards are fed through bounded channels
// with a configurable backpressure policy (block the producer, or
// count-and-drop), swept for flow timeouts on a trace-time cadence so
// pcap replays stay deterministic, and support atomic whitelist
// hot-swap: a new model's rules replace the running ones between
// packets, no restart, with flow state and blacklist surviving.
//
// The ingest→decide path is batch-oriented end to end when
// Config.BatchSize > 1: the producer accumulates each shard's packets
// into a per-shard batch buffer (packets are copied by value, so the
// caller's read buffer is immediately reusable) and hands the whole
// batch to the worker as one mailbox operation; the worker answers it
// with one switchsim.ProcessBatch pass. A trace-time flush deadline
// (Config.BatchFlush) bounds how long a partial batch may sit while
// the clock advances, so low-rate flows still see bounded decision
// latency. Batch buffers recycle through a fixed per-shard pool — the
// steady-state batch path touches the heap exactly never, on both
// sides of the channel.
//
// Concurrency contract: Ingest/IngestBatch/Replay/ReplayBatch/Flush
// form the producer side and must be called from one goroutine at a
// time; Swap, Stats, and Close are control-plane operations for the
// same supervising goroutine (or one that otherwise serialises against
// the producer and each other). Decision callbacks run on shard
// goroutines — serially within a shard, concurrently across shards;
// the packet pointer an observer receives is only valid for the
// duration of the callback. This single-supervisor shape is what lets
// the packet path stay lock-free.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iguard/internal/controller"
	"iguard/internal/features"
	"iguard/internal/netpkt"
	"iguard/internal/rules"
	"iguard/internal/switchsim"
)

// shardSeed salts the flow-key hash used for shard selection. It is
// deliberately distinct from the switch's two table seeds so that the
// shard partition is independent of slot indexing: two flows that
// collide in a switch table do not systematically land on one shard.
const shardSeed uint32 = 0x5eed51ab

// DropPolicy selects what Ingest does when a shard's queue is full.
type DropPolicy int

const (
	// Block applies backpressure: Ingest waits for queue space. No
	// packet is ever lost; the producer runs at the shards' pace.
	Block DropPolicy = iota
	// Drop counts the packet as a queue drop and moves on — the
	// line-rate answer when the source cannot be stalled.
	Drop
)

// String implements fmt.Stringer.
func (p DropPolicy) String() string {
	if p == Drop {
		return "drop"
	}
	return "block"
}

// ParseDropPolicy converts a flag value ("block" or "drop").
func ParseDropPolicy(s string) (DropPolicy, error) {
	switch strings.ToLower(s) {
	case "block":
		return Block, nil
	case "drop":
		return Drop, nil
	}
	return Block, fmt.Errorf("serve: unknown drop policy %q (want block or drop)", s)
}

// Shard is one worker's private data-plane/control-plane pair. The
// server takes ownership: after New, only the shard's worker goroutine
// touches the Switch. That exclusivity is also what makes the packet
// hot path allocation-free here: the Switch's reusable feature-vector
// scratch buffers are per-shard by construction, never shared.
type Shard struct {
	Switch     *switchsim.Switch
	Controller *controller.Controller
}

// Config parameterises New.
type Config struct {
	// Shards is the worker count; packets of one flow always land on
	// the same shard. Defaults to 1.
	Shards int
	// QueueDepth bounds each shard's input channel. Defaults to 1024.
	QueueDepth int
	// Policy is the backpressure policy when a queue is full.
	Policy DropPolicy
	// SweepEvery, when positive, broadcasts a timeout sweep to every
	// shard each time the trace clock (the maximum capture timestamp
	// observed by Ingest) advances by this much. Sweeps ride the same
	// queues as packets, so a replayed trace produces the same sweep
	// points on every run. Zero disables periodic sweeps.
	SweepEvery time.Duration
	// BatchSize, when > 1, turns on batch hand-off: the producer
	// accumulates up to BatchSize packets per shard and delivers them
	// as one mailbox message, answered by one switchsim.ProcessBatch
	// pass. 0 or 1 keeps the per-packet path. Decisions are identical
	// either way (the batch pipeline is the per-packet pipeline with
	// the setup amortised); under the Drop policy a full queue sheds
	// whole batches at hand-off, so sequence numbers then have
	// batch-sized gaps where the unbatched path would shed singly.
	BatchSize int
	// BatchFlush bounds, in trace time, how long a partial batch may
	// wait for more packets: whenever the trace clock advances at
	// least BatchFlush past the last flush point, all pending batches
	// are handed off. Defaults to 1ms when batching is on. Like every
	// timeout in the runtime it is driven by capture timestamps, not
	// the wall clock, so replays stay deterministic; Flush gives the
	// producer an explicit hand-off point (Replay/ReplayBatch call it
	// at end of stream).
	BatchFlush time.Duration
	// NewShard builds worker i's private pair. Required. It is called
	// Shards times from New, before any worker starts.
	NewShard func(shard int) Shard
	// OnDecision, when non-nil, observes every processed packet: seq
	// is the packet's ingest sequence number (dense over accepted
	// packets, in producer order). Called on shard goroutines —
	// serially within a shard, concurrently across shards.
	OnDecision func(shard int, seq uint64, p *netpkt.Packet, d switchsim.Decision)
	// OnBlacklist, when non-nil, observes blacklist transitions the
	// shard controllers decide locally (installs and capacity
	// evictions; see controller.SetObserver for exactly which
	// operations fire). It runs on shard goroutines and must be cheap
	// and non-blocking — the federation agent's Announce, a counter
	// bump — because it sits behind the digest path. Externally
	// applied operations (ApplyInstall/ApplyRemove/ApplyFlush) do not
	// fire it, which keeps a federated fleet loop-free.
	OnBlacklist func(shard int, ev controller.Event)
	// Now supplies wall time for Stats' elapsed/pps figures. The
	// runtime itself never consults the wall clock (all timeout logic
	// runs on capture timestamps), so this is nil-safe: without it,
	// rates are reported over trace time instead.
	Now func() time.Time
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchSize > 1 && c.BatchFlush <= 0 {
		c.BatchFlush = time.Millisecond
	}
	return c
}

// MaxBatchSize bounds Config.BatchSize: beyond this, batch buffers
// stop fitting in cache and the flush deadline dominates latency, so
// larger values are a configuration error, not a tuning knob.
const MaxBatchSize = 1 << 16

// Validate reports every configuration error at once (errors.Join),
// mirroring the library facade's validators. New calls it; callers
// constructing configs programmatically can call it early for the
// full list.
func (c Config) Validate() error {
	var errs []error
	add := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf("serve: config: "+format, args...))
	}
	if c.NewShard == nil {
		add("NewShard is required")
	}
	if c.Shards < 0 {
		add("Shards is %d, want >= 0 (0 means default)", c.Shards)
	}
	if c.QueueDepth < 0 {
		add("QueueDepth is %d, want >= 0 (0 means default)", c.QueueDepth)
	}
	if c.BatchSize < 0 {
		add("BatchSize is %d, want >= 0 (0 means unbatched)", c.BatchSize)
	}
	if c.BatchSize > MaxBatchSize {
		add("BatchSize is %d, want <= %d", c.BatchSize, MaxBatchSize)
	}
	if c.BatchFlush < 0 {
		add("BatchFlush is %v, want >= 0 (0 means default)", c.BatchFlush)
	}
	if c.BatchFlush > 0 && c.BatchSize <= 1 {
		add("BatchFlush is %v but BatchSize is %d; the flush deadline needs batching on", c.BatchFlush, c.BatchSize)
	}
	return errors.Join(errs...)
}

// message kinds delivered to shard workers.
const (
	msgPacket = iota
	msgBatch
	msgTick
	msgSwap
	msgStats
	msgFlush
	msgInstall
	msgRemove
)

// shardMsg is one mailbox entry: a packet, a packet batch, a sweep
// tick, a rule swap, or a stats request. Control messages share the
// packet queue so they serialise naturally between packets.
type shardMsg struct {
	kind  int
	pkt   *netpkt.Packet
	batch *pktBatch
	seq   uint64
	now   time.Time // tick
	pl    *rules.CompiledRuleSet
	fl    *rules.CompiledRuleSet
	key   features.FlowKey  // install/remove target
	ack   chan<- ShardStats // swap + stats replies
	ackN  chan<- int        // flush + install/remove replies
}

// shardWorker is the per-shard state. The worker goroutine (runShard,
// the //iguard:owner(shard) root) owns sw, ctrl, swaps, and final;
// iguard-vet's shardown analyzer enforces that statically. id and in
// are immutable after construction and shared by design; queueDrops is
// written by the producer and read by the worker, hence atomic.
type shardWorker struct {
	id int
	//iguard:ownedby(shard)
	sw *switchsim.Switch
	//iguard:ownedby(shard)
	ctrl       *controller.Controller
	in         chan shardMsg
	queueDrops atomic.Uint64
	//iguard:ownedby(shard)
	swaps int
	//iguard:ownedby(shard)
	final ShardStats

	// Batch-mode state (nil/unused when Config.BatchSize <= 1).
	// pending is the producer-side fill buffer — producer goroutine
	// only, like Server.lastTick. free recycles drained batch buffers
	// from the worker back to the producer; together with pending and
	// whatever sits in the mailbox it forms a fixed pool, so the
	// steady-state batch path never allocates. out is the worker's
	// decision scratch for ProcessBatch. batches counts delivered
	// batches (worker-owned, snapshotted like swaps).
	pending *pktBatch // producer-owned
	free    chan *pktBatch
	//iguard:ownedby(shard)
	out []switchsim.Decision
	//iguard:ownedby(shard)
	batches uint64
}

// pktBatch is one per-shard hand-off unit: up to BatchSize packets
// stored by value (enqueueing copies, decoupling the batch from the
// producer's read buffer) with their canonical flow keys and key
// folds — computed once for routing, reused by ProcessBatch — and
// ingest sequence numbers. n is the fill level; the backing slices
// are allocated once at pool construction and never grow.
type pktBatch struct {
	pkts  []netpkt.Packet
	keys  []features.FlowKey
	folds []uint32
	seqs  []uint64
	n     int
}

func newBatch(size int) *pktBatch {
	return &pktBatch{
		pkts:  make([]netpkt.Packet, size),
		keys:  make([]features.FlowKey, size),
		folds: make([]uint32, size),
		seqs:  make([]uint64, size),
	}
}

// ErrClosed is returned by operations on a closed server.
var ErrClosed = errors.New("serve: server closed")

// Server is the sharded streaming runtime. Build with New; drive with
// Ingest or Replay; swap models with Swap; observe with Stats; drain
// and stop with Close.
type Server struct {
	cfg    Config
	shards []*shardWorker
	wg     sync.WaitGroup

	closed  atomic.Bool
	drained atomic.Bool

	// ctlMu fences the federation apply surface (ApplyInstall,
	// ApplyRemove, ApplyFlush — the only operations callable from
	// arbitrary goroutines) against Close: appliers hold the read
	// side across their closed-check and mailbox sends, and Close
	// holds the write side while closing the mailboxes, so an applier
	// can never send on a closed channel. The packet path never
	// touches it.
	ctlMu sync.RWMutex

	// nextSeq is the producer-owned sequence counter; ingested mirrors
	// it (one atomic store per packet instead of a load + RMW pair) so
	// Stats can read it from outside the producer goroutine.
	nextSeq    uint64 // producer-owned
	ingested   atomic.Uint64
	queueDrops atomic.Uint64

	// Trace clock, unix-nano encoded so Stats can read it from outside
	// the producer goroutine. Zero means "no packet seen yet".
	traceStart atomic.Int64
	traceNow   atomic.Int64
	lastTick   int64 // producer-owned
	lastFlush  int64 // producer-owned; batch flush deadline anchor
	ticks      atomic.Uint64

	wallStart time.Time // set in New when cfg.Now != nil
}

// New validates the config, builds the shards, and starts the workers.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg}
	if cfg.Now != nil {
		s.wallStart = cfg.Now()
	}
	// In batch mode the mailbox is measured in batches, preserving the
	// configured packet-count buffering; the buffer pool holds one more
	// batch than can be in flight (mailbox + one at the worker + the
	// producer's pending), so recycling never blocks the worker and a
	// successful hand-off always finds a fresh pending buffer waiting.
	queue, qBatches := cfg.QueueDepth, 0
	if cfg.BatchSize > 1 {
		qBatches = (cfg.QueueDepth + cfg.BatchSize - 1) / cfg.BatchSize
		queue = qBatches
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := cfg.NewShard(i)
		if sh.Switch == nil {
			return nil, fmt.Errorf("serve: NewShard(%d) returned a nil Switch", i)
		}
		var out []switchsim.Decision
		if cfg.BatchSize > 1 {
			out = make([]switchsim.Decision, cfg.BatchSize)
		}
		w := &shardWorker{id: i, sw: sh.Switch, ctrl: sh.Controller, in: make(chan shardMsg, queue), out: out}
		if cfg.OnBlacklist != nil && sh.Controller != nil {
			// Wired before any worker starts, so the observer is
			// visible to every digest the shard ever delivers.
			shard := i
			sh.Controller.SetObserver(func(ev controller.Event) { cfg.OnBlacklist(shard, ev) })
		}
		if cfg.BatchSize > 1 {
			w.free = make(chan *pktBatch, qBatches+1)
			for j := 0; j < qBatches+1; j++ {
				w.free <- newBatch(cfg.BatchSize)
			}
			w.pending = newBatch(cfg.BatchSize)
		}
		s.shards = append(s.shards, w)
	}
	s.wg.Add(len(s.shards))
	for _, w := range s.shards {
		go s.runShard(w)
	}
	return s, nil
}

// Shards returns the configured shard count.
func (s *Server) Shards() int { return len(s.shards) }

// runShard is the worker loop: it owns the shard's switch, so every
// interaction with it — packets, sweeps, swaps, stats snapshots — is
// a mailbox message. Exits when the mailbox closes (Close), after
// draining everything already queued. The loop is the serving hot
// path: the packet and tick arms are statically allocation-free, with
// the decision observer and the control-plane arms factored out as the
// //iguard:coldpath boundaries.
//
//iguard:hotpath
//iguard:owner(shard)
func (s *Server) runShard(w *shardWorker) {
	defer s.wg.Done()
	for m := range w.in {
		switch m.kind {
		case msgPacket:
			d := w.sw.ProcessPacket(m.pkt)
			s.notifyDecision(w, m.seq, m.pkt, d)
		case msgBatch:
			b := m.batch
			w.sw.ProcessBatch(b.pkts[:b.n], b.keys[:b.n], b.folds[:b.n], w.out[:b.n])
			for i := 0; i < b.n; i++ {
				s.notifyDecision(w, b.seqs[i], &b.pkts[i], w.out[i])
			}
			w.batches++
			b.n = 0
			// Recycling never blocks: free's capacity covers the pool.
			w.free <- b
		case msgTick:
			w.sw.SweepTimeouts(m.now)
		default:
			s.handleControl(w, m)
		}
	}
	w.final = w.snapshot()
}

// notifyDecision hands one decision to the configured observer. Like
// switchsim's digest sink, this is an observer boundary: it fires per
// packet, but what the callback allocates is the observer's contract,
// not the shard loop's — exactly the seam the runtime alloc test pins
// with a no-op observer.
//
//iguard:coldpath observer boundary; the callback's cost belongs to the observer
func (s *Server) notifyDecision(w *shardWorker, seq uint64, p *netpkt.Packet, d switchsim.Decision) {
	if s.cfg.OnDecision != nil {
		s.cfg.OnDecision(w.id, seq, p, d)
	}
}

// handleControl executes one control-plane mailbox message on the
// worker goroutine, preserving the switch's ownership contract.
//
//iguard:coldpath control messages are per operator action, not per packet
func (s *Server) handleControl(w *shardWorker, m shardMsg) {
	switch m.kind {
	case msgSwap:
		w.sw.SetRules(m.pl, m.fl)
		w.swaps++
		if m.ack != nil {
			m.ack <- w.snapshot()
		}
	case msgStats:
		m.ack <- w.snapshot()
	case msgFlush:
		n := 0
		if w.ctrl != nil {
			// Flush's data-plane removals land on this goroutine,
			// honouring the switch's ownership contract.
			n = w.ctrl.Flush()
		}
		m.ackN <- n
	case msgInstall:
		// Externally decided install (the federation apply path):
		// through the controller when the shard has one, so capacity
		// accounting and eviction policy see the entry; straight to
		// the switch otherwise.
		n := 0
		if w.ctrl != nil {
			if w.ctrl.Install(m.key) {
				n = 1
			}
		} else if w.sw.InstallBlacklist(m.key) {
			n = 1
		}
		m.ackN <- n
	case msgRemove:
		n := 0
		if w.ctrl != nil {
			if w.ctrl.Remove(m.key) {
				n = 1
			}
		} else {
			w.sw.RemoveBlacklist(m.key)
		}
		m.ackN <- n
	}
}

// snapshot captures the shard's counters. Worker goroutine only.
//
//iguard:coldpath runs on stats/swap requests and at drain, not per packet
func (w *shardWorker) snapshot() ShardStats {
	st := ShardStats{
		Shard:        w.id,
		Switch:       w.sw.Counters,
		ActiveFlows:  w.sw.ActiveFlows(),
		BlacklistLen: w.sw.BlacklistLen(),
		AvgLatency:   w.sw.AvgLatency(),
		QueueDrops:   w.queueDrops.Load(),
		Swaps:        w.swaps,
		Batches:      w.batches,
	}
	if w.ctrl != nil {
		st.Controller = w.ctrl.Stats()
	}
	return st
}

// shardOf maps a canonical flow key's fold to its owning shard.
//
//iguard:hotpath
func (s *Server) shardOf(fold uint32) int {
	return int(features.BiHashFold(fold, shardSeed) % uint32(len(s.shards)))
}

// batching reports whether batch hand-off is on.
func (s *Server) batching() bool { return s.cfg.BatchSize > 1 }

// Ingest routes one packet to its flow's shard. It returns (true, nil)
// when the packet was queued (or, in batch mode, copied into its
// shard's pending batch — the caller's packet is then immediately
// reusable), (false, nil) when the Drop policy shed it, and (false,
// ErrClosed) after Close. In unbatched mode the packet must not be
// mutated by the caller afterwards. In batch mode under the Drop
// policy, sheds happen per batch at hand-off and are reported via
// Stats.QueueDrops, not this return. Producer goroutine only.
//
//iguard:hotpath
func (s *Server) Ingest(p *netpkt.Packet) (bool, error) {
	if s.closed.Load() {
		return false, ErrClosed
	}
	s.observe(p.Timestamp)
	key, fold := features.CanonicalFoldOf(p)
	w := s.shards[s.shardOf(fold)]
	if s.batching() {
		s.enqueue(w, p, key, fold)
		return true, nil
	}
	m := shardMsg{kind: msgPacket, pkt: p, seq: s.nextSeq}
	if s.cfg.Policy == Drop {
		select {
		case w.in <- m:
		default:
			w.queueDrops.Add(1)
			s.queueDrops.Add(1)
			return false, nil
		}
	} else {
		w.in <- m
	}
	s.nextSeq++
	s.ingested.Store(s.nextSeq)
	return true, nil
}

// enqueue copies one packet into its shard's pending batch, handing
// the batch off when it fills. Producer goroutine only.
//
//iguard:hotpath
func (s *Server) enqueue(w *shardWorker, p *netpkt.Packet, key features.FlowKey, fold uint32) {
	b := w.pending
	b.pkts[b.n] = *p
	b.keys[b.n] = key
	b.folds[b.n] = fold
	b.seqs[b.n] = s.nextSeq
	b.n++
	s.nextSeq++
	s.ingested.Store(s.nextSeq)
	if b.n >= s.cfg.BatchSize {
		s.flushShard(w)
	}
}

// flushShard hands the shard's pending batch to the worker as one
// mailbox operation and takes a recycled buffer as the new pending
// one. Under the Drop policy a full mailbox sheds the whole batch —
// the batch analogue of shedding single packets — leaving its
// sequence numbers as gaps. Producer goroutine only.
//
//iguard:hotpath
func (s *Server) flushShard(w *shardWorker) {
	b := w.pending
	if b.n == 0 {
		return
	}
	m := shardMsg{kind: msgBatch, batch: b}
	if s.cfg.Policy == Drop {
		select {
		case w.in <- m:
		default:
			w.queueDrops.Add(uint64(b.n))
			s.queueDrops.Add(uint64(b.n))
			b.n = 0 // shed in place; the buffer stays pending
			return
		}
	} else {
		w.in <- m
	}
	// Never blocks after a successful hand-off: the pool holds one
	// more buffer than the mailbox plus the worker can hold.
	w.pending = <-w.free
}

// flushPending hands every shard's pending batch off. Producer
// goroutine only (Swap/Stats/Close call it under the supervisor
// serialisation contract).
//
//iguard:hotpath
func (s *Server) flushPending() {
	for _, w := range s.shards {
		s.flushShard(w)
	}
}

// Flush hands any still-pending batched packets to their shards. It
// is the explicit companion to the BatchFlush deadline: call it when
// the stream pauses and the pending tail should be decided now
// (Replay and ReplayBatch call it at end of stream). No-op when
// batching is off. Producer goroutine only.
func (s *Server) Flush() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.batching() {
		s.flushPending()
	}
	return nil
}

// observe advances the trace clock, flushes aged partial batches once
// it moves BatchFlush past the last flush point, and broadcasts sweep
// ticks when it crosses the SweepEvery cadence. Producer goroutine
// only.
//
//iguard:hotpath
func (s *Server) observe(ts time.Time) {
	ns := ts.UnixNano()
	if s.traceStart.Load() == 0 {
		s.traceStart.Store(ns)
		s.traceNow.Store(ns)
		s.lastTick = ns
		s.lastFlush = ns
		return
	}
	if ns <= s.traceNow.Load() {
		return
	}
	s.traceNow.Store(ns)
	if s.batching() && time.Duration(ns-s.lastFlush) >= s.cfg.BatchFlush {
		// Flush deadline: no packet waits in a partial batch for more
		// than BatchFlush of trace time once the clock moves on.
		s.lastFlush = ns
		s.flushPending()
	}
	if s.cfg.SweepEvery <= 0 {
		return
	}
	if time.Duration(ns-s.lastTick) < s.cfg.SweepEvery {
		return
	}
	s.lastTick = ns
	s.ticks.Add(1)
	now := time.Unix(0, ns).UTC()
	// Pending batches go first so every shard sees its packets in the
	// same order, relative to the tick, as the unbatched path would
	// deliver them.
	if s.batching() {
		s.flushPending()
	}
	for _, w := range s.shards {
		// Ticks are never shed: they carry timeout semantics, and a
		// full queue only delays (bounded) rather than loses them.
		w.in <- shardMsg{kind: msgTick, now: now}
	}
}

// Swap atomically replaces the whitelist on every shard: each worker
// applies the new rule sets between two packets, so no packet ever
// sees a half-swapped table, and nothing is dropped or misrouted by
// the swap itself. Flow state and blacklists survive. Swap returns
// once every shard has applied the new rules (the acks double as a
// barrier), making "the fleet now serves model X" a simple
// happens-after. Supervisor goroutine only.
func (s *Server) Swap(pl, fl *rules.CompiledRuleSet) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.batching() {
		// Pending packets were ingested before the swap; hand them off
		// first so they are decided under the rules they arrived under.
		s.flushPending()
	}
	ack := make(chan ShardStats, len(s.shards))
	for _, w := range s.shards {
		w.in <- shardMsg{kind: msgSwap, pl: pl, fl: fl, ack: ack}
	}
	for range s.shards {
		<-ack
	}
	return nil
}

// FlushBlacklists withdraws every installed blacklist entry on every
// shard — the companion to Swap when the replacement model redefines
// "malicious" and verdicts issued under the old rules should not keep
// blocking traffic. Returns the total number of entries removed once
// every shard has flushed. Supervisor goroutine only.
func (s *Server) FlushBlacklists() (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if s.batching() {
		s.flushPending()
	}
	ack := make(chan int, len(s.shards))
	for _, w := range s.shards {
		w.in <- shardMsg{kind: msgFlush, ackN: ack}
	}
	total := 0
	for range s.shards {
		total += <-ack
	}
	return total, nil
}

// ApplyInstall installs an externally decided blacklist entry — one
// propagated from another switch by the federation hub — on the key's
// owning shard, through that shard's controller so capacity accounting
// and eviction policy apply. It returns once the entry is live (the
// mailbox ack is a barrier), with applied reporting whether it was
// newly installed. Unlike the supervisor-only control plane, the
// Apply* surface is safe from any goroutine (the federation agent's
// reader calls it concurrently with the producer); it does not touch
// producer-owned state, so pending batched packets ingested before the
// call may still be decided under the pre-install table — the
// federation's eventual-consistency model, not an ordering bug.
func (s *Server) ApplyInstall(key features.FlowKey) (applied bool, err error) {
	return s.applyKey(msgInstall, key)
}

// ApplyRemove withdraws an externally decided blacklist entry from the
// key's owning shard; the counterpart of ApplyInstall with the same
// any-goroutine contract. applied reports whether the entry was
// present on a controller-backed shard.
func (s *Server) ApplyRemove(key features.FlowKey) (applied bool, err error) {
	return s.applyKey(msgRemove, key)
}

// applyKey routes one install/remove to the owning shard and waits for
// its ack.
func (s *Server) applyKey(kind int, key features.FlowKey) (bool, error) {
	key = key.Canonical()
	w := s.shards[s.shardOf(key.FoldCanonical())]
	ack := make(chan int, 1)
	s.ctlMu.RLock()
	if s.closed.Load() {
		s.ctlMu.RUnlock()
		return false, ErrClosed
	}
	// The send stays inside the read lock on purpose: Close takes the
	// write lock before stopping the workers, so holding ctlMu across
	// the send is exactly what guarantees the mailbox is still drained.
	// The block is bounded by the shard's queue depth, not indefinite.
	w.in <- shardMsg{kind: kind, key: key, ackN: ack} //iguard:allow(lockcheck) send-under-RLock is the Close fence; bounded by queue depth
	s.ctlMu.RUnlock()
	// The ack arrives even if Close runs now: workers drain their
	// mailboxes to completion before exiting.
	return <-ack == 1, nil
}

// ApplyFlush withdraws every blacklist entry on every shard — the
// apply path for a fleet-wide FLUSH. It is FlushBlacklists minus the
// supervisor-only pending-batch hand-off, making it safe from any
// goroutine; packets still waiting in producer-side batches may
// re-install entries after it returns, which is the same eventual
// consistency the rest of the federation surface accepts.
func (s *Server) ApplyFlush() (int, error) {
	ack := make(chan int, len(s.shards))
	s.ctlMu.RLock()
	if s.closed.Load() {
		s.ctlMu.RUnlock()
		return 0, ErrClosed
	}
	for _, w := range s.shards {
		// Same Close fence as applyKey: the read lock must span the
		// sends so the workers are still draining when they land.
		w.in <- shardMsg{kind: msgFlush, ackN: ack} //iguard:allow(lockcheck) send-under-RLock is the Close fence; bounded by queue depth
	}
	s.ctlMu.RUnlock()
	total := 0
	for range s.shards {
		total += <-ack
	}
	return total, nil
}

// Close stops the intake, drains every shard queue to completion, and
// stops the workers. Idempotent. Supervisor goroutine only; after
// Close, Ingest/Swap return ErrClosed and Stats serves the final
// snapshot.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.batching() {
		// Pending batches drain with everything else: Close never
		// strands a buffered packet undecided.
		s.flushPending()
	}
	// The write lock waits out any applier that saw closed==false and
	// is still sending; new appliers observe closed==true. Only then
	// is closing the mailboxes safe.
	s.ctlMu.Lock()
	for _, w := range s.shards {
		close(w.in)
	}
	s.ctlMu.Unlock()
	s.wg.Wait()
	s.drained.Store(true)
	return nil
}

// Stats aggregates a consistent-enough view across shards: on a live
// server each shard answers a stats request through its mailbox (so
// the snapshot reflects that shard's state at its current queue
// position); on a closed server the final drained snapshots are
// served. Supervisor goroutine only.
func (s *Server) Stats() Stats {
	if s.batching() && !s.closed.Load() {
		// A stats request is a barrier on each shard's mailbox; hand
		// pending batches off first so the snapshot covers them.
		s.flushPending()
	}
	per := make([]ShardStats, len(s.shards))
	if s.drained.Load() {
		for i, w := range s.shards {
			// Safe despite the shard ownership rule: drained is only set
			// after wg.Wait() returns in Close, so every worker's final
			// write happens-before this read.
			per[i] = w.final //iguard:allow(shardown) drained.Load() after wg.Wait() orders the final write before this read
		}
	} else {
		ack := make(chan ShardStats, len(s.shards))
		for _, w := range s.shards {
			w.in <- shardMsg{kind: msgStats, ack: ack}
		}
		for range s.shards {
			st := <-ack
			per[st.Shard] = st
		}
	}
	return s.aggregate(per)
}

// IngestBatch routes a slice of packets to their shards in one call:
// the batch analogue of Ingest, and what Replay/ReplayBatch drive. In
// batch mode every packet is copied into its shard's pending batch, so
// pkts is immediately reusable on return; on an unbatched server each
// packet is individually copied and queued, preserving Ingest's
// semantics (including per-packet Drop-policy sheds, reported in the
// dropped count). Producer goroutine only.
//
//iguard:hotpath
func (s *Server) IngestBatch(pkts []netpkt.Packet) (accepted, dropped uint64, err error) {
	if s.closed.Load() {
		return 0, 0, ErrClosed
	}
	if s.batching() {
		for i := range pkts {
			p := &pkts[i]
			s.observe(p.Timestamp)
			key, fold := features.CanonicalFoldOf(p)
			s.enqueue(s.shards[s.shardOf(fold)], p, key, fold)
		}
		return uint64(len(pkts)), 0, nil
	}
	for i := range pkts {
		// The per-packet path sends the pointer itself through the
		// mailbox, so the packet must outlive the caller's buffer.
		p := pkts[i]
		ok, err := s.Ingest(&p)
		if err != nil {
			return accepted, dropped, err
		}
		if ok {
			accepted++
		} else {
			dropped++
		}
	}
	return accepted, dropped, nil
}

// Replay pumps a source into the server until io.EOF, a source error,
// or context cancellation, returning the accepted and shed counts. It
// is ReplayBatch over the source's batch face (native when the source
// implements BatchSource, adapted otherwise). Producer goroutine only.
func (s *Server) Replay(ctx context.Context, src Source) (accepted, dropped uint64, err error) {
	return s.ReplayBatch(ctx, AsBatchSource(src))
}

// replayReadLen is the read-buffer size Replay/ReplayBatch use when
// the server itself is unbatched (batched servers read BatchSize
// packets at a time).
const replayReadLen = 64

// ReplayBatch pumps a batch source into the server until io.EOF, a
// source or ingest error, or context cancellation, returning the
// accepted and shed counts. Packets are read up to a batch at a time
// into one reused buffer — IngestBatch copies them out, so the replay
// loop allocates nothing per packet on a batched server. At end of
// stream the pending tail is flushed before returning. Producer
// goroutine only.
func (s *Server) ReplayBatch(ctx context.Context, src BatchSource) (accepted, dropped uint64, err error) {
	size := s.cfg.BatchSize
	if size <= 1 {
		size = replayReadLen
	}
	buf := make([]netpkt.Packet, size)
	for {
		if err := ctx.Err(); err != nil {
			return accepted, dropped, err
		}
		n, rerr := src.NextBatch(buf)
		if n > 0 {
			a, d, ierr := s.IngestBatch(buf[:n])
			accepted += a
			dropped += d
			if ierr != nil {
				return accepted, dropped, ierr
			}
		}
		if rerr == io.EOF {
			return accepted, dropped, s.Flush()
		}
		if rerr != nil {
			return accepted, dropped, rerr
		}
	}
}
