// Package serve is iGuard's streaming detection runtime: the layer
// between a packet source and the deployed data plane that the library
// itself does not provide. A Server hash-partitions packets by
// canonical flow key onto N shard workers, each owning a private
// switchsim.Switch + controller.Controller pair — the switch's
// single-goroutine ownership contract is preserved by construction, so
// the hot path takes no locks. Shards are fed through bounded channels
// with a configurable backpressure policy (block the producer, or
// count-and-drop), swept for flow timeouts on a trace-time cadence so
// pcap replays stay deterministic, and support atomic whitelist
// hot-swap: a new model's rules replace the running ones between
// packets, no restart, with flow state and blacklist surviving.
//
// Concurrency contract: Ingest/Replay form the producer side and must
// be called from one goroutine at a time; Swap, Stats, and Close are
// control-plane operations for the same supervising goroutine (or one
// that otherwise serialises against the producer and each other).
// Decision callbacks run on shard goroutines — serially within a
// shard, concurrently across shards. This single-supervisor shape is
// what lets the packet path stay lock-free.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iguard/internal/controller"
	"iguard/internal/features"
	"iguard/internal/netpkt"
	"iguard/internal/rules"
	"iguard/internal/switchsim"
)

// shardSeed salts the flow-key hash used for shard selection. It is
// deliberately distinct from the switch's two table seeds so that the
// shard partition is independent of slot indexing: two flows that
// collide in a switch table do not systematically land on one shard.
const shardSeed uint32 = 0x5eed51ab

// DropPolicy selects what Ingest does when a shard's queue is full.
type DropPolicy int

const (
	// Block applies backpressure: Ingest waits for queue space. No
	// packet is ever lost; the producer runs at the shards' pace.
	Block DropPolicy = iota
	// Drop counts the packet as a queue drop and moves on — the
	// line-rate answer when the source cannot be stalled.
	Drop
)

// String implements fmt.Stringer.
func (p DropPolicy) String() string {
	if p == Drop {
		return "drop"
	}
	return "block"
}

// ParseDropPolicy converts a flag value ("block" or "drop").
func ParseDropPolicy(s string) (DropPolicy, error) {
	switch strings.ToLower(s) {
	case "block":
		return Block, nil
	case "drop":
		return Drop, nil
	}
	return Block, fmt.Errorf("serve: unknown drop policy %q (want block or drop)", s)
}

// Shard is one worker's private data-plane/control-plane pair. The
// server takes ownership: after New, only the shard's worker goroutine
// touches the Switch. That exclusivity is also what makes the packet
// hot path allocation-free here: the Switch's reusable feature-vector
// scratch buffers are per-shard by construction, never shared.
type Shard struct {
	Switch     *switchsim.Switch
	Controller *controller.Controller
}

// Config parameterises New.
type Config struct {
	// Shards is the worker count; packets of one flow always land on
	// the same shard. Defaults to 1.
	Shards int
	// QueueDepth bounds each shard's input channel. Defaults to 1024.
	QueueDepth int
	// Policy is the backpressure policy when a queue is full.
	Policy DropPolicy
	// SweepEvery, when positive, broadcasts a timeout sweep to every
	// shard each time the trace clock (the maximum capture timestamp
	// observed by Ingest) advances by this much. Sweeps ride the same
	// queues as packets, so a replayed trace produces the same sweep
	// points on every run. Zero disables periodic sweeps.
	SweepEvery time.Duration
	// NewShard builds worker i's private pair. Required. It is called
	// Shards times from New, before any worker starts.
	NewShard func(shard int) Shard
	// OnDecision, when non-nil, observes every processed packet: seq
	// is the packet's ingest sequence number (dense over accepted
	// packets, in producer order). Called on shard goroutines —
	// serially within a shard, concurrently across shards.
	OnDecision func(shard int, seq uint64, p *netpkt.Packet, d switchsim.Decision)
	// Now supplies wall time for Stats' elapsed/pps figures. The
	// runtime itself never consults the wall clock (all timeout logic
	// runs on capture timestamps), so this is nil-safe: without it,
	// rates are reported over trace time instead.
	Now func() time.Time
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	return c
}

// message kinds delivered to shard workers.
const (
	msgPacket = iota
	msgTick
	msgSwap
	msgStats
	msgFlush
)

// shardMsg is one mailbox entry: a packet, a sweep tick, a rule swap,
// or a stats request. Control messages share the packet queue so they
// serialise naturally between packets.
type shardMsg struct {
	kind int
	pkt  *netpkt.Packet
	seq  uint64
	now  time.Time // tick
	pl   *rules.CompiledRuleSet
	fl   *rules.CompiledRuleSet
	ack  chan<- ShardStats // swap + stats replies
	ackN chan<- int        // flush replies
}

// shardWorker is the per-shard state. The worker goroutine (runShard,
// the //iguard:owner(shard) root) owns sw, ctrl, swaps, and final;
// iguard-vet's shardown analyzer enforces that statically. id and in
// are immutable after construction and shared by design; queueDrops is
// written by the producer and read by the worker, hence atomic.
type shardWorker struct {
	id int
	//iguard:ownedby(shard)
	sw *switchsim.Switch
	//iguard:ownedby(shard)
	ctrl       *controller.Controller
	in         chan shardMsg
	queueDrops atomic.Uint64
	//iguard:ownedby(shard)
	swaps int
	//iguard:ownedby(shard)
	final ShardStats
}

// ErrClosed is returned by operations on a closed server.
var ErrClosed = errors.New("serve: server closed")

// Server is the sharded streaming runtime. Build with New; drive with
// Ingest or Replay; swap models with Swap; observe with Stats; drain
// and stop with Close.
type Server struct {
	cfg    Config
	shards []*shardWorker
	wg     sync.WaitGroup

	closed  atomic.Bool
	drained atomic.Bool

	// ingested doubles as the next sequence number (producer-owned
	// increment, atomically readable by Stats).
	ingested   atomic.Uint64
	queueDrops atomic.Uint64

	// Trace clock, unix-nano encoded so Stats can read it from outside
	// the producer goroutine. Zero means "no packet seen yet".
	traceStart atomic.Int64
	traceNow   atomic.Int64
	lastTick   int64 // producer-owned
	ticks      atomic.Uint64

	wallStart time.Time // set in New when cfg.Now != nil
}

// New validates the config, builds the shards, and starts the workers.
func New(cfg Config) (*Server, error) {
	if cfg.NewShard == nil {
		return nil, errors.New("serve: Config.NewShard is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg}
	if cfg.Now != nil {
		s.wallStart = cfg.Now()
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := cfg.NewShard(i)
		if sh.Switch == nil {
			return nil, fmt.Errorf("serve: NewShard(%d) returned a nil Switch", i)
		}
		w := &shardWorker{id: i, sw: sh.Switch, ctrl: sh.Controller, in: make(chan shardMsg, cfg.QueueDepth)}
		s.shards = append(s.shards, w)
	}
	s.wg.Add(len(s.shards))
	for _, w := range s.shards {
		go s.runShard(w)
	}
	return s, nil
}

// Shards returns the configured shard count.
func (s *Server) Shards() int { return len(s.shards) }

// runShard is the worker loop: it owns the shard's switch, so every
// interaction with it — packets, sweeps, swaps, stats snapshots — is
// a mailbox message. Exits when the mailbox closes (Close), after
// draining everything already queued. The loop is the serving hot
// path: the packet and tick arms are statically allocation-free, with
// the decision observer and the control-plane arms factored out as the
// //iguard:coldpath boundaries.
//
//iguard:hotpath
//iguard:owner(shard)
func (s *Server) runShard(w *shardWorker) {
	defer s.wg.Done()
	for m := range w.in {
		switch m.kind {
		case msgPacket:
			d := w.sw.ProcessPacket(m.pkt)
			s.notifyDecision(w, m.seq, m.pkt, d)
		case msgTick:
			w.sw.SweepTimeouts(m.now)
		default:
			s.handleControl(w, m)
		}
	}
	w.final = w.snapshot()
}

// notifyDecision hands one decision to the configured observer. Like
// switchsim's digest sink, this is an observer boundary: it fires per
// packet, but what the callback allocates is the observer's contract,
// not the shard loop's — exactly the seam the runtime alloc test pins
// with a no-op observer.
//
//iguard:coldpath observer boundary; the callback's cost belongs to the observer
func (s *Server) notifyDecision(w *shardWorker, seq uint64, p *netpkt.Packet, d switchsim.Decision) {
	if s.cfg.OnDecision != nil {
		s.cfg.OnDecision(w.id, seq, p, d)
	}
}

// handleControl executes one control-plane mailbox message on the
// worker goroutine, preserving the switch's ownership contract.
//
//iguard:coldpath control messages are per operator action, not per packet
func (s *Server) handleControl(w *shardWorker, m shardMsg) {
	switch m.kind {
	case msgSwap:
		w.sw.SetRules(m.pl, m.fl)
		w.swaps++
		if m.ack != nil {
			m.ack <- w.snapshot()
		}
	case msgStats:
		m.ack <- w.snapshot()
	case msgFlush:
		n := 0
		if w.ctrl != nil {
			// Flush's data-plane removals land on this goroutine,
			// honouring the switch's ownership contract.
			n = w.ctrl.Flush()
		}
		m.ackN <- n
	}
}

// snapshot captures the shard's counters. Worker goroutine only.
//
//iguard:coldpath runs on stats/swap requests and at drain, not per packet
func (w *shardWorker) snapshot() ShardStats {
	st := ShardStats{
		Shard:        w.id,
		Switch:       w.sw.Counters,
		ActiveFlows:  w.sw.ActiveFlows(),
		BlacklistLen: w.sw.BlacklistLen(),
		AvgLatency:   w.sw.AvgLatency(),
		QueueDrops:   w.queueDrops.Load(),
		Swaps:        w.swaps,
	}
	if w.ctrl != nil {
		st.Controller = w.ctrl.Stats()
	}
	return st
}

// shardOf maps a canonical flow key to its owning shard.
func (s *Server) shardOf(key features.FlowKey) int {
	return int(key.BiHash(shardSeed) % uint32(len(s.shards)))
}

// Ingest routes one packet to its flow's shard. It returns (true, nil)
// when the packet was queued, (false, nil) when the Drop policy shed
// it, and (false, ErrClosed) after Close. The packet must not be
// mutated by the caller afterwards. Producer goroutine only.
//
//iguard:hotpath
func (s *Server) Ingest(p *netpkt.Packet) (bool, error) {
	if s.closed.Load() {
		return false, ErrClosed
	}
	s.observe(p.Timestamp)
	w := s.shards[s.shardOf(features.KeyOf(p).Canonical())]
	m := shardMsg{kind: msgPacket, pkt: p, seq: s.ingested.Load()}
	if s.cfg.Policy == Drop {
		select {
		case w.in <- m:
		default:
			w.queueDrops.Add(1)
			s.queueDrops.Add(1)
			return false, nil
		}
	} else {
		w.in <- m
	}
	s.ingested.Add(1)
	return true, nil
}

// observe advances the trace clock and broadcasts sweep ticks when it
// crosses the SweepEvery cadence. Producer goroutine only.
func (s *Server) observe(ts time.Time) {
	ns := ts.UnixNano()
	if s.traceStart.Load() == 0 {
		s.traceStart.Store(ns)
		s.traceNow.Store(ns)
		s.lastTick = ns
		return
	}
	if ns <= s.traceNow.Load() {
		return
	}
	s.traceNow.Store(ns)
	if s.cfg.SweepEvery <= 0 {
		return
	}
	if time.Duration(ns-s.lastTick) < s.cfg.SweepEvery {
		return
	}
	s.lastTick = ns
	s.ticks.Add(1)
	now := time.Unix(0, ns).UTC()
	for _, w := range s.shards {
		// Ticks are never shed: they carry timeout semantics, and a
		// full queue only delays (bounded) rather than loses them.
		w.in <- shardMsg{kind: msgTick, now: now}
	}
}

// Swap atomically replaces the whitelist on every shard: each worker
// applies the new rule sets between two packets, so no packet ever
// sees a half-swapped table, and nothing is dropped or misrouted by
// the swap itself. Flow state and blacklists survive. Swap returns
// once every shard has applied the new rules (the acks double as a
// barrier), making "the fleet now serves model X" a simple
// happens-after. Supervisor goroutine only.
func (s *Server) Swap(pl, fl *rules.CompiledRuleSet) error {
	if s.closed.Load() {
		return ErrClosed
	}
	ack := make(chan ShardStats, len(s.shards))
	for _, w := range s.shards {
		w.in <- shardMsg{kind: msgSwap, pl: pl, fl: fl, ack: ack}
	}
	for range s.shards {
		<-ack
	}
	return nil
}

// FlushBlacklists withdraws every installed blacklist entry on every
// shard — the companion to Swap when the replacement model redefines
// "malicious" and verdicts issued under the old rules should not keep
// blocking traffic. Returns the total number of entries removed once
// every shard has flushed. Supervisor goroutine only.
func (s *Server) FlushBlacklists() (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	ack := make(chan int, len(s.shards))
	for _, w := range s.shards {
		w.in <- shardMsg{kind: msgFlush, ackN: ack}
	}
	total := 0
	for range s.shards {
		total += <-ack
	}
	return total, nil
}

// Close stops the intake, drains every shard queue to completion, and
// stops the workers. Idempotent. Supervisor goroutine only; after
// Close, Ingest/Swap return ErrClosed and Stats serves the final
// snapshot.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, w := range s.shards {
		close(w.in)
	}
	s.wg.Wait()
	s.drained.Store(true)
	return nil
}

// Stats aggregates a consistent-enough view across shards: on a live
// server each shard answers a stats request through its mailbox (so
// the snapshot reflects that shard's state at its current queue
// position); on a closed server the final drained snapshots are
// served. Supervisor goroutine only.
func (s *Server) Stats() Stats {
	per := make([]ShardStats, len(s.shards))
	if s.drained.Load() {
		for i, w := range s.shards {
			// Safe despite the shard ownership rule: drained is only set
			// after wg.Wait() returns in Close, so every worker's final
			// write happens-before this read.
			per[i] = w.final //iguard:allow(shardown) drained.Load() after wg.Wait() orders the final write before this read
		}
	} else {
		ack := make(chan ShardStats, len(s.shards))
		for _, w := range s.shards {
			w.in <- shardMsg{kind: msgStats, ack: ack}
		}
		for range s.shards {
			st := <-ack
			per[st.Shard] = st
		}
	}
	return s.aggregate(per)
}

// Replay pumps a source into the server until io.EOF, a source error,
// or context cancellation, returning the accepted and shed counts.
// Producer goroutine only.
func (s *Server) Replay(ctx context.Context, src Source) (accepted, dropped uint64, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return accepted, dropped, err
		}
		p, err := src.Next()
		if err == io.EOF {
			return accepted, dropped, nil
		}
		if err != nil {
			return accepted, dropped, err
		}
		ok, err := s.Ingest(&p)
		if err != nil {
			return accepted, dropped, err
		}
		if ok {
			accepted++
		} else {
			dropped++
		}
	}
}
