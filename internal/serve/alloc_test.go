package serve

import (
	"testing"
	"time"

	"iguard/internal/netpkt"
	"iguard/internal/switchsim"
)

// TestShardLoopAllocationFree extends switchsim's ProcessPacket pin to
// the full serving surface: one iteration ingests a batch on the
// producer side, the shard worker decides each packet, and a stats
// snapshot drains the mailbox as a barrier — ingest→decide→stats, the
// same surface `iguard-vet -only hotpath,shardown` guards statically.
// AllocsPerRun counts mallocs process-wide, so the worker goroutine's
// allocations are in scope, not just the producer's.
func TestShardLoopAllocationFree(t *testing.T) {
	srv, err := New(Config{
		Shards:     1,
		QueueDepth: 256,
		Policy:     Block,
		NewShard: func(int) Shard {
			// High threshold keeps every flow accumulating (brown path,
			// no digests), and no controller keeps the measurement on
			// the shard loop itself rather than blacklist bookkeeping.
			return Shard{Switch: switchsim.New(switchsim.Config{
				Slots:        1 << 12,
				PktThreshold: 1 << 30,
				Timeout:      time.Hour,
			})}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	base := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	pkts := make([]netpkt.Packet, 64)
	for i := range pkts {
		pkts[i] = netpkt.Packet{
			Timestamp: base.Add(time.Duration(i) * time.Microsecond),
			SrcIP:     [4]byte{10, 0, 0, byte(1 + i%4)},
			DstIP:     [4]byte{23, 1, 0, 1},
			SrcPort:   uint16(1000 + i%4),
			DstPort:   80,
			Proto:     netpkt.ProtoUDP,
			TTL:       64,
			Length:    120,
		}
	}
	w := srv.shards[0]
	ack := make(chan ShardStats, 1)
	drain := func() {
		w.in <- shardMsg{kind: msgStats, ack: ack}
		<-ack
	}

	// Warm up: flow-table slots settle, the mailbox round-trips once.
	for i := range pkts {
		if _, err := srv.Ingest(&pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	drain()

	if n := testing.AllocsPerRun(200, func() {
		for i := range pkts {
			if _, err := srv.Ingest(&pkts[i]); err != nil {
				t.Fatal(err)
			}
		}
		drain()
	}); n != 0 {
		t.Errorf("shard loop allocs per ingest→decide→stats cycle = %v, want 0", n)
	}
}
