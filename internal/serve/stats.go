package serve

import (
	"fmt"
	"strings"
	"time"

	"iguard/internal/controller"
	"iguard/internal/switchsim"
)

// ShardStats is one worker's snapshot: the switch's data-plane
// counters, the controller's control-plane counters, and the serve
// layer's own bookkeeping.
type ShardStats struct {
	Shard        int
	Switch       switchsim.Counters
	Controller   controller.Stats
	ActiveFlows  int
	BlacklistLen int
	AvgLatency   time.Duration
	QueueDrops   uint64
	Swaps        int
	// Batches counts batch hand-offs delivered to this shard (0 when
	// batching is off).
	Batches uint64
}

// LaneStats is one producer lane's ingest count.
type LaneStats struct {
	Lane     uint32
	Ingested uint64
}

// Stats is the aggregated server view.
type Stats struct {
	// Shards holds the per-worker snapshots, indexed by shard id.
	Shards []ShardStats

	// Lanes holds each producer lane's accepted-packet count, indexed
	// by lane.
	Lanes []LaneStats

	// Ingested counts packets accepted by Ingest, summed across every
	// producer lane; QueueDrops counts packets shed by the Drop
	// policy. Packets counts what the shards have actually processed
	// (≤ Ingested while queues or producer-side pending batches hold
	// backlog). Batches counts batch hand-offs across shards;
	// Packets/Batches is the realised mean batch size.
	Ingested   uint64
	QueueDrops uint64
	Packets    int
	Batches    uint64

	// PathCounts, Drops, Digests, DigestBytes, Recirculated, and
	// HardCollisions sum the switchsim counters across shards.
	PathCounts     [6]int
	Drops          int
	Digests        int
	DigestBytes    int
	Recirculated   int
	HardCollisions int

	// RulesInstalled/RulesEvicted sum the controllers' blacklist
	// activity; BlacklistLen and ActiveFlows sum current table state.
	RulesInstalled int
	RulesEvicted   int
	BlacklistLen   int
	ActiveFlows    int

	// Sweeps sums per-shard timeout sweeps; Ticks counts the sweep
	// broadcasts that triggered them. Swaps counts rule hot-swaps
	// applied per shard (every shard swaps, so this is per-shard, not
	// a sum).
	Sweeps int
	Ticks  uint64
	Swaps  int

	// TraceElapsed spans the capture timestamps observed so far.
	// WallElapsed spans real time since New when Config.Now was
	// provided, else zero.
	TraceElapsed time.Duration
	WallElapsed  time.Duration

	// PPS is Packets over WallElapsed (preferred) or TraceElapsed.
	PPS float64
	// AvgLatency is the packet-weighted modelled data-plane latency.
	AvgLatency time.Duration
}

// aggregate folds per-shard snapshots into the global view.
func (s *Server) aggregate(per []ShardStats) Stats {
	st := Stats{
		Shards:     per,
		Lanes:      make([]LaneStats, len(s.producers)),
		QueueDrops: s.queueDrops.Load(),
		Ticks:      s.ticks.Load(),
	}
	// Ingested sums the lanes: with multiple producers no single
	// counter sees every accepted packet, so the aggregate (and the
	// pps derived from it by callers) must fold all of them.
	for i, p := range s.producers {
		n := p.ingested.Load()
		st.Lanes[i] = LaneStats{Lane: p.lane, Ingested: n}
		st.Ingested += n
	}
	var latWeighted int64
	for _, p := range per {
		st.Packets += p.Switch.Packets
		for i, n := range p.Switch.PathCounts {
			st.PathCounts[i] += n
		}
		st.Drops += p.Switch.Drops
		st.Digests += p.Switch.Digests
		st.DigestBytes += p.Switch.DigestBytes
		st.Recirculated += p.Switch.Recirculated
		st.HardCollisions += p.Switch.HardCollisions
		st.Sweeps += p.Switch.Sweeps
		st.RulesInstalled += p.Controller.RulesInstalled
		st.RulesEvicted += p.Controller.RulesEvicted
		st.BlacklistLen += p.BlacklistLen
		st.ActiveFlows += p.ActiveFlows
		st.Batches += p.Batches
		if p.Swaps > st.Swaps {
			st.Swaps = p.Swaps
		}
		latWeighted += int64(p.AvgLatency) * int64(p.Switch.Packets)
	}
	if st.Packets > 0 {
		st.AvgLatency = time.Duration(latWeighted / int64(st.Packets))
	}
	if start, now := s.traceStart.Load(), s.traceNow.Load(); start != 0 && now > start {
		st.TraceElapsed = time.Duration(now - start)
	}
	if s.cfg.Now != nil {
		st.WallElapsed = s.cfg.Now().Sub(s.wallStart)
	}
	switch {
	case st.WallElapsed > 0:
		st.PPS = float64(st.Packets) / st.WallElapsed.Seconds()
	case st.TraceElapsed > 0:
		st.PPS = float64(st.Packets) / st.TraceElapsed.Seconds()
	}
	return st
}

// String renders a multi-line operator summary.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ingested=%d processed=%d queueDrops=%d shards=%d\n",
		st.Ingested, st.Packets, st.QueueDrops, len(st.Shards))
	if len(st.Lanes) > 1 {
		fmt.Fprintf(&b, "lanes:")
		for _, l := range st.Lanes {
			fmt.Fprintf(&b, " %d=%d", l.Lane, l.Ingested)
		}
		fmt.Fprintf(&b, "\n")
	}
	if st.Batches > 0 {
		fmt.Fprintf(&b, "batches=%d (mean size %.1f)\n", st.Batches, float64(st.Packets)/float64(st.Batches))
	}
	fmt.Fprintf(&b, "paths:")
	for p := switchsim.PathRed; p <= switchsim.PathGreen; p++ {
		fmt.Fprintf(&b, " %s=%d", p, st.PathCounts[p])
	}
	fmt.Fprintf(&b, "\ndrops=%d digests=%d (%d B) recirculated=%d hardCollisions=%d\n",
		st.Drops, st.Digests, st.DigestBytes, st.Recirculated, st.HardCollisions)
	fmt.Fprintf(&b, "blacklist: installed=%d evicted=%d resident=%d; activeFlows=%d\n",
		st.RulesInstalled, st.RulesEvicted, st.BlacklistLen, st.ActiveFlows)
	fmt.Fprintf(&b, "sweeps=%d (ticks=%d) swaps=%d\n", st.Sweeps, st.Ticks, st.Swaps)
	fmt.Fprintf(&b, "elapsed: trace=%v wall=%v; pps=%.0f; modelled latency=%v",
		st.TraceElapsed.Round(time.Millisecond), st.WallElapsed.Round(time.Millisecond), st.PPS, st.AvgLatency)
	return b.String()
}
