package serve

import "encoding/json"

// The JSON shapes below are an explicit, versioned-by-review surface:
// operators parse `iguard-serve -stats-json` output (and fleet
// dashboards parse the hub's per-node payloads), so field names are
// spelled out here instead of being derived from Go identifiers. A Go
// rename must not silently rename a JSON key — that is what the
// exact-bytes test pins. Durations encode as nanosecond integers, the
// form that parses losslessly everywhere.

type shardStatsJSON struct {
	Shard          int    `json:"shard"`
	Packets        int    `json:"packets"`
	PathCounts     [6]int `json:"path_counts"`
	Drops          int    `json:"drops"`
	Digests        int    `json:"digests"`
	DigestBytes    int    `json:"digest_bytes"`
	Recirculated   int    `json:"recirculated"`
	HardCollisions int    `json:"hard_collisions"`
	Sweeps         int    `json:"sweeps"`
	RulesInstalled int    `json:"rules_installed"`
	RulesEvicted   int    `json:"rules_evicted"`
	RulesRemoved   int    `json:"rules_removed"`
	StorageCleared int    `json:"storage_cleared"`
	ActiveFlows    int    `json:"active_flows"`
	BlacklistLen   int    `json:"blacklist_len"`
	AvgLatencyNS   int64  `json:"avg_latency_ns"`
	QueueDrops     uint64 `json:"queue_drops"`
	Swaps          int    `json:"swaps"`
	Batches        uint64 `json:"batches"`
}

// MarshalJSON implements json.Marshaler with a stable, flat,
// snake_case encoding.
func (p ShardStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(shardStatsJSON{
		Shard:          p.Shard,
		Packets:        p.Switch.Packets,
		PathCounts:     p.Switch.PathCounts,
		Drops:          p.Switch.Drops,
		Digests:        p.Switch.Digests,
		DigestBytes:    p.Switch.DigestBytes,
		Recirculated:   p.Switch.Recirculated,
		HardCollisions: p.Switch.HardCollisions,
		Sweeps:         p.Switch.Sweeps,
		RulesInstalled: p.Controller.RulesInstalled,
		RulesEvicted:   p.Controller.RulesEvicted,
		RulesRemoved:   p.Controller.RulesRemoved,
		StorageCleared: p.Controller.StorageCleared,
		ActiveFlows:    p.ActiveFlows,
		BlacklistLen:   p.BlacklistLen,
		AvgLatencyNS:   int64(p.AvgLatency),
		QueueDrops:     p.QueueDrops,
		Swaps:          p.Swaps,
		Batches:        p.Batches,
	})
}

type laneStatsJSON struct {
	Lane     uint32 `json:"lane"`
	Ingested uint64 `json:"ingested"`
}

// MarshalJSON implements json.Marshaler with a stable snake_case
// encoding.
func (l LaneStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(laneStatsJSON{Lane: l.Lane, Ingested: l.Ingested})
}

type statsJSON struct {
	Ingested       uint64       `json:"ingested"`
	QueueDrops     uint64       `json:"queue_drops"`
	Packets        int          `json:"packets"`
	Batches        uint64       `json:"batches"`
	PathCounts     [6]int       `json:"path_counts"`
	Drops          int          `json:"drops"`
	Digests        int          `json:"digests"`
	DigestBytes    int          `json:"digest_bytes"`
	Recirculated   int          `json:"recirculated"`
	HardCollisions int          `json:"hard_collisions"`
	RulesInstalled int          `json:"rules_installed"`
	RulesEvicted   int          `json:"rules_evicted"`
	BlacklistLen   int          `json:"blacklist_len"`
	ActiveFlows    int          `json:"active_flows"`
	Sweeps         int          `json:"sweeps"`
	Ticks          uint64       `json:"ticks"`
	Swaps          int          `json:"swaps"`
	TraceElapsedNS int64        `json:"trace_elapsed_ns"`
	WallElapsedNS  int64        `json:"wall_elapsed_ns"`
	PPS            float64      `json:"pps"`
	AvgLatencyNS   int64        `json:"avg_latency_ns"`
	Lanes          []LaneStats  `json:"lanes"`
	Shards         []ShardStats `json:"shards"`
}

// MarshalJSON implements json.Marshaler with a stable snake_case
// encoding; the per-shard snapshots nest under "shards".
func (st Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(statsJSON{
		Ingested:       st.Ingested,
		QueueDrops:     st.QueueDrops,
		Packets:        st.Packets,
		Batches:        st.Batches,
		PathCounts:     st.PathCounts,
		Drops:          st.Drops,
		Digests:        st.Digests,
		DigestBytes:    st.DigestBytes,
		Recirculated:   st.Recirculated,
		HardCollisions: st.HardCollisions,
		RulesInstalled: st.RulesInstalled,
		RulesEvicted:   st.RulesEvicted,
		BlacklistLen:   st.BlacklistLen,
		ActiveFlows:    st.ActiveFlows,
		Sweeps:         st.Sweeps,
		Ticks:          st.Ticks,
		Swaps:          st.Swaps,
		TraceElapsedNS: int64(st.TraceElapsed),
		WallElapsedNS:  int64(st.WallElapsed),
		PPS:            st.PPS,
		AvgLatencyNS:   int64(st.AvgLatency),
		Lanes:          st.Lanes,
		Shards:         st.Shards,
	})
}
