package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"reflect"
	"testing"
	"time"

	"iguard/internal/controller"
	"iguard/internal/features"
	"iguard/internal/netpkt"
	"iguard/internal/rules"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

// flBounds is a generous quantisation range per FL feature for
// handcrafted test rule sets.
func flBounds() (min, max []float64) {
	min = make([]float64, features.FLDim)
	max = []float64{
		64,     // pkt_count
		200000, // total_size
		4000,   // avg_size
		4000,   // std_size
		1.6e7,  // var_size
		4000,   // min_size
		4000,   // max_size
		30,     // avg_ipd
		30,     // min_ipd
		900,    // var_ipd
		30,     // std_ipd
		30,     // max_ipd
		600,    // duration
	}
	return min, max
}

// acceptAllFL compiles a whitelist containing one box over the whole
// feature space: every classified flow is benign.
func acceptAllFL() *rules.CompiledRuleSet {
	min, max := flBounds()
	box := make(rules.Box, features.FLDim)
	for i := range box {
		box[i] = rules.Interval{Lo: min[i], Hi: max[i]}
	}
	rs := &rules.RuleSet{Dim: features.FLDim, DefaultLabel: 1, Rules: []rules.Rule{{Box: box, Label: 0}}}
	return rules.Compile(rs, rules.NewQuantizer(min, max, 12))
}

// rejectAllFL compiles an empty whitelist: every classified flow is
// malicious (the default label).
func rejectAllFL() *rules.CompiledRuleSet {
	min, max := flBounds()
	rs := &rules.RuleSet{Dim: features.FLDim, DefaultLabel: 1}
	return rules.Compile(rs, rules.NewQuantizer(min, max, 12))
}

// smallFlowsFL whitelists only flows whose average packet size stays
// under the cutoff — a selective rule set so decisions differ by flow.
func smallFlowsFL(cutoff float64) *rules.CompiledRuleSet {
	min, max := flBounds()
	box := make(rules.Box, features.FLDim)
	for i := range box {
		box[i] = rules.Interval{Lo: min[i], Hi: max[i]}
	}
	box[features.FLAvgSize] = rules.Interval{Lo: 0, Hi: cutoff}
	rs := &rules.RuleSet{Dim: features.FLDim, DefaultLabel: 1, Rules: []rules.Rule{{Box: box, Label: 0}}}
	return rules.Compile(rs, rules.NewQuantizer(min, max, 12))
}

// testShardFactory builds identical per-shard deployments: ample slots
// and blacklist capacity so cross-flow coupling (slot collisions,
// evictions) cannot make per-flow decisions depend on the shard count.
func testShardFactory(fl *rules.CompiledRuleSet, threshold int, timeout time.Duration) func(int) Shard {
	return func(int) Shard {
		sw := switchsim.New(switchsim.Config{
			Slots:             8192,
			PktThreshold:      threshold,
			Timeout:           timeout,
			FLRules:           fl,
			BlacklistCapacity: 8192,
			DropMalicious:     true,
		})
		ctrl := controller.New(sw, 8192, controller.FIFO)
		sw.SetSink(ctrl)
		return Shard{Switch: sw, Controller: ctrl}
	}
}

// decisionRecord encodes the per-packet outcome fields that must be
// reproducible.
type decisionRecord struct {
	Path      switchsim.Path
	Predicted int
	Dropped   bool
}

// perFlowRecorder accumulates decision streams per canonical flow key
// without locks: each shard writes only its own map, and flows never
// span shards, so the maps merge disjointly after Close.
type perFlowRecorder struct {
	byShard []map[features.FlowKey][]decisionRecord
}

func newPerFlowRecorder(shards int) *perFlowRecorder {
	r := &perFlowRecorder{byShard: make([]map[features.FlowKey][]decisionRecord, shards)}
	for i := range r.byShard {
		r.byShard[i] = map[features.FlowKey][]decisionRecord{}
	}
	return r
}

func (r *perFlowRecorder) onDecision(shard int, _ uint32, _ uint64, p *netpkt.Packet, d switchsim.Decision) {
	key := features.KeyOf(p).Canonical()
	r.byShard[shard][key] = append(r.byShard[shard][key],
		decisionRecord{Path: d.Path, Predicted: d.Predicted, Dropped: d.Dropped})
}

// merge flattens the per-shard maps, failing the test if any flow was
// observed on more than one shard (a misroute).
func (r *perFlowRecorder) merge(t *testing.T) map[features.FlowKey][]decisionRecord {
	t.Helper()
	out := map[features.FlowKey][]decisionRecord{}
	owner := map[features.FlowKey]int{}
	for shard, m := range r.byShard {
		for key, recs := range m {
			if prev, dup := owner[key]; dup {
				t.Fatalf("flow %v observed on shards %d and %d", key, prev, shard)
			}
			owner[key] = shard
			out[key] = recs
		}
	}
	return out
}

// mixedTrace returns a deterministic benign+attack packet sequence.
func mixedTrace(t testing.TB) *traffic.Trace {
	t.Helper()
	attack, err := traffic.GenerateAttack(traffic.UDPDDoS, 11, 20)
	if err != nil {
		t.Fatal(err)
	}
	return traffic.GenerateBenign(10, 100).Merge(attack)
}

// runTrace replays the trace through a fresh server with the given
// shard count and returns the merged per-flow decision streams.
func runTrace(t *testing.T, trace *traffic.Trace, shards int, fl *rules.CompiledRuleSet) map[features.FlowKey][]decisionRecord {
	t.Helper()
	rec := newPerFlowRecorder(shards)
	srv, err := New(Config{
		Shards:     shards,
		QueueDepth: 256,
		Policy:     Block,
		NewShard:   testShardFactory(fl, 8, time.Hour),
		OnDecision: rec.onDecision,
	})
	if err != nil {
		t.Fatal(err)
	}
	accepted, dropped, err := srv.Replay(context.Background(), NewTraceSource(trace.Packets))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || accepted != uint64(len(trace.Packets)) {
		t.Fatalf("accepted=%d dropped=%d want accepted=%d dropped=0", accepted, dropped, len(trace.Packets))
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Packets != len(trace.Packets) {
		t.Fatalf("processed %d packets, want %d", st.Packets, len(trace.Packets))
	}
	return rec.merge(t)
}

// TestShardRoutingDeterminism pins the core serving invariant: the
// per-flow decision stream is byte-identical at shard counts 1, 2, and
// 8 — sharding changes who computes, never what is computed.
func TestShardRoutingDeterminism(t *testing.T) {
	trace := mixedTrace(t)
	fl := smallFlowsFL(700)
	base := runTrace(t, trace, 1, fl)
	if len(base) == 0 {
		t.Fatal("no flows recorded")
	}
	// The single-shard run must exercise both verdicts for the
	// comparison to mean anything.
	var benign, malicious int
	for _, recs := range base {
		for _, r := range recs {
			if r.Predicted == 1 {
				malicious++
			} else {
				benign++
			}
		}
	}
	if benign == 0 || malicious == 0 {
		t.Fatalf("degenerate workload: benign=%d malicious=%d", benign, malicious)
	}
	for _, shards := range []int{2, 8} {
		got := runTrace(t, trace, shards, fl)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("per-flow decisions at %d shards differ from 1 shard", shards)
		}
	}
}

// TestHotSwapUnderLoad swaps the whitelist while a producer is mid-
// replay: no packet may be lost or misrouted, every shard must apply
// the swap exactly once, and post-swap classifications must follow the
// new rules.
func TestHotSwapUnderLoad(t *testing.T) {
	trace := mixedTrace(t)
	shards := 4
	rec := newPerFlowRecorder(shards)
	srv, err := New(Config{
		Shards:     shards,
		QueueDepth: 64,
		Policy:     Block,
		NewShard:   testShardFactory(acceptAllFL(), 8, time.Hour),
		OnDecision: rec.onDecision,
	})
	if err != nil {
		t.Fatal(err)
	}

	half := len(trace.Packets) / 2
	halfway := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		for i := range trace.Packets {
			if i == half {
				close(halfway)
			}
			if _, err := srv.Ingest(&trace.Packets[i]); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	<-halfway
	if err := srv.Swap(nil, rejectAllFL()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.Packets != len(trace.Packets) || st.QueueDrops != 0 {
		t.Fatalf("processed=%d queueDrops=%d want processed=%d queueDrops=0",
			st.Packets, st.QueueDrops, len(trace.Packets))
	}
	for _, sh := range st.Shards {
		if sh.Swaps != 1 || sh.Switch.RuleSwaps != 1 {
			t.Fatalf("shard %d applied %d swaps (switch counted %d), want 1", sh.Shard, sh.Swaps, sh.Switch.RuleSwaps)
		}
	}
	rec.merge(t) // no misroutes
	// Before the swap every classification is benign (accept-all);
	// after it every classification is malicious (reject-all), so the
	// run must have produced both digest outcomes and some installs.
	if st.Digests == 0 || st.RulesInstalled == 0 || st.Drops == 0 {
		t.Fatalf("digests=%d installs=%d drops=%d: swap to reject-all left no malicious trace",
			st.Digests, st.RulesInstalled, st.Drops)
	}
	if st.RulesInstalled >= st.Digests {
		t.Fatalf("installs=%d digests=%d: expected some benign digests from before the swap",
			st.RulesInstalled, st.Digests)
	}
	if st.BlacklistLen == 0 {
		t.Fatal("no blacklist entries resident after reject-all swap")
	}
}

// TestFlushBlacklists pins the swap companion: withdrawing all
// verdicts issued under the old rules, across every shard.
func TestFlushBlacklists(t *testing.T) {
	trace := mixedTrace(t)
	srv, err := New(Config{
		Shards:   2,
		NewShard: testShardFactory(rejectAllFL(), 8, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Replay(context.Background(), NewTraceSource(trace.Packets)); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.BlacklistLen == 0 {
		t.Fatal("reject-all produced no blacklist entries")
	}
	removed, err := srv.FlushBlacklists()
	if err != nil {
		t.Fatal(err)
	}
	if removed != st.BlacklistLen {
		t.Fatalf("flushed %d entries, want %d", removed, st.BlacklistLen)
	}
	if after := srv.Stats(); after.BlacklistLen != 0 {
		t.Fatalf("blacklistLen=%d after flush, want 0", after.BlacklistLen)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.FlushBlacklists(); err != ErrClosed {
		t.Fatalf("FlushBlacklists after Close: err=%v want ErrClosed", err)
	}
}

// TestCloseDrains pins the drain semantics: Close processes everything
// already accepted, then Ingest/Swap report ErrClosed and Stats serves
// the final snapshot.
func TestCloseDrains(t *testing.T) {
	trace := traffic.GenerateBenign(3, 40)
	srv, err := New(Config{
		Shards:     2,
		QueueDepth: 8, // small on purpose: Close must still drain fully
		Policy:     Block,
		NewShard:   testShardFactory(acceptAllFL(), 8, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace.Packets {
		if _, err := srv.Ingest(&trace.Packets[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Packets != len(trace.Packets) {
		t.Fatalf("drained %d packets, want %d", st.Packets, len(trace.Packets))
	}
	if _, err := srv.Ingest(&trace.Packets[0]); err != ErrClosed {
		t.Fatalf("Ingest after Close: err=%v want ErrClosed", err)
	}
	if err := srv.Swap(nil, nil); err != ErrClosed {
		t.Fatalf("Swap after Close: err=%v want ErrClosed", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if again := srv.Stats(); again.Packets != st.Packets {
		t.Fatalf("Stats after Close unstable: %d then %d", st.Packets, again.Packets)
	}
}

// TestDropPolicySheds pins the counted-drop backpressure: with a full
// queue and a wedged shard, Ingest sheds instead of blocking, and the
// shed count is conserved (accepted + dropped = offered).
func TestDropPolicySheds(t *testing.T) {
	trace := traffic.GenerateBenign(4, 30)
	const depth = 4
	gate := make(chan struct{})
	first := make(chan struct{})
	var opened bool
	srv, err := New(Config{
		Shards:     1,
		QueueDepth: depth,
		Policy:     Drop,
		NewShard:   testShardFactory(acceptAllFL(), 8, time.Hour),
		OnDecision: func(int, uint32, uint64, *netpkt.Packet, switchsim.Decision) {
			if !opened {
				opened = true
				close(first)
				<-gate // wedge the shard with the first packet in hand
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := srv.Ingest(&trace.Packets[0]); err != nil || !ok {
		t.Fatalf("first Ingest: ok=%v err=%v", ok, err)
	}
	<-first // the worker now owns packet 0 and is wedged

	offered := 1
	var acc, shed int
	acc = 1
	for i := 1; i < 1+depth+10; i++ {
		ok, err := srv.Ingest(&trace.Packets[i])
		if err != nil {
			t.Fatal(err)
		}
		offered++
		if ok {
			acc++
		} else {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("no packets shed despite wedged shard and full queue")
	}
	if acc > 1+depth {
		t.Fatalf("accepted %d packets with queue depth %d", acc, depth)
	}
	close(gate)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.QueueDrops != uint64(shed) || st.Ingested != uint64(acc) {
		t.Fatalf("stats: ingested=%d queueDrops=%d; producer saw acc=%d shed=%d",
			st.Ingested, st.QueueDrops, acc, shed)
	}
	if int(st.Ingested)+int(st.QueueDrops) != offered {
		t.Fatalf("conservation: %d + %d != %d", st.Ingested, st.QueueDrops, offered)
	}
}

// TestTracePacedSweeps pins the deterministic sweep cadence: when the
// trace clock jumps past SweepEvery, every shard sweeps, classifying
// flows that went idle — without any packet of theirs arriving.
func TestTracePacedSweeps(t *testing.T) {
	base := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	mk := func(srcPort uint16, ts time.Time) netpkt.Packet {
		return netpkt.Packet{
			Timestamp: ts,
			SrcIP:     [4]byte{10, 0, 0, 1},
			DstIP:     [4]byte{23, 1, 0, 1},
			SrcPort:   srcPort,
			DstPort:   80,
			Proto:     netpkt.ProtoTCP,
			TTL:       64,
			Length:    120,
		}
	}
	// Flow A: two packets, then silence. Flow B arrives 10s later and
	// advances the trace clock past the sweep cadence.
	packets := []netpkt.Packet{
		mk(1000, base),
		mk(1000, base.Add(time.Millisecond)),
		mk(2000, base.Add(10*time.Second)),
	}
	const shards = 2
	srv, err := New(Config{
		Shards:     shards,
		QueueDepth: 16,
		Policy:     Block,
		SweepEvery: time.Second,
		NewShard:   testShardFactory(acceptAllFL(), 8, 5*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range packets {
		if _, err := srv.Ingest(&packets[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Ticks != 1 {
		t.Fatalf("ticks=%d want 1", st.Ticks)
	}
	if st.Sweeps != shards {
		t.Fatalf("sweeps=%d want %d (one per shard per tick)", st.Sweeps, shards)
	}
	// Flow A was swept: digested from its 2-packet state despite never
	// reaching the packet threshold.
	if st.Digests != 1 {
		t.Fatalf("digests=%d want 1 (flow A swept)", st.Digests)
	}
	if st.ActiveFlows != 1 {
		t.Fatalf("activeFlows=%d want 1 (only flow B remains)", st.ActiveFlows)
	}
}

// TestLiveStats exercises the mailbox stats path on a running server.
func TestLiveStats(t *testing.T) {
	trace := traffic.GenerateBenign(5, 20)
	srv, err := New(Config{
		Shards:   2,
		NewShard: testShardFactory(acceptAllFL(), 8, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace.Packets {
		if _, err := srv.Ingest(&trace.Packets[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats() // live: answered through the mailboxes
	if st.Ingested != uint64(len(trace.Packets)) {
		t.Fatalf("live stats ingested=%d want %d", st.Ingested, len(trace.Packets))
	}
	if st.TraceElapsed <= 0 {
		t.Fatal("live stats: trace clock did not advance")
	}
	if len(st.String()) == 0 {
		t.Fatal("empty stats rendering")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayContextCancel pins Replay's cooperative cancellation.
func TestReplayContextCancel(t *testing.T) {
	srv, err := New(Config{NewShard: testShardFactory(acceptAllFL(), 8, time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := srv.Replay(ctx, NewTraceSource(traffic.GenerateBenign(6, 5).Packets)); err != context.Canceled {
		t.Fatalf("err=%v want context.Canceled", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPcapSourceStreams round-trips a trace through the pcap writer and
// streams it back via PcapSource.
func TestPcapSourceStreams(t *testing.T) {
	trace := traffic.GenerateBenign(7, 10)
	var buf bytes.Buffer
	w := netpkt.NewPcapWriter(&buf)
	for i := range trace.Packets {
		if err := w.WritePacket(&trace.Packets[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := netpkt.NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := PcapSource{R: r}
	n := 0
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(trace.Packets) {
		t.Fatalf("streamed %d packets, want %d", n, len(trace.Packets))
	}
}

// TestParseDropPolicy covers the flag parser.
func TestParseDropPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want DropPolicy
		ok   bool
	}{{"block", Block, true}, {"Drop", Drop, true}, {"shed", Block, false}} {
		got, err := ParseDropPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseDropPolicy(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if Block.String() != "block" || Drop.String() != "drop" {
		t.Error("DropPolicy.String mismatch")
	}
	if fmt.Sprint(Block) != "block" {
		t.Error("Stringer not wired")
	}
}

// TestNewValidation covers constructor errors.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without NewShard succeeded")
	}
	if _, err := New(Config{NewShard: func(int) Shard { return Shard{} }}); err == nil {
		t.Fatal("New with nil Switch succeeded")
	}
}
