package serve

// This file overlaps trace decoding with ingest: a ParallelBatchSource
// wraps a BatchSource with a pool of decode workers that compute each
// packet's canonical flow key and key fold before any producer lane
// sees the batch, so parsing and CanonicalFoldOf hashing run
// concurrently with the lanes' routing and the shards' matching.
// Server.ReplayParallel is the assembled multi-producer replay: one
// reader, N decode workers, one consuming goroutine per lane, each
// lane feeding the shards through Producer.IngestDecoded.

import (
	"context"
	"errors"
	"io"
	"sync"

	"iguard/internal/features"
	"iguard/internal/netpkt"
)

// ErrSourceClosed is returned by NextDecoded after Close (directly or
// via the context wired in ReplayParallel) interrupts the stream.
var ErrSourceClosed = errors.New("serve: parallel batch source closed")

// DecodedBatch is one ParallelBatchSource hand-off unit: up to
// BatchSize packets with their canonical flow keys and key folds
// already computed, parallel slice-for-slice — exactly the shape
// Producer.IngestDecoded consumes. Buffers are pooled; return them
// with Recycle when consumed.
type DecodedBatch struct {
	Pkts  []netpkt.Packet
	Keys  []features.FlowKey
	Folds []uint32
}

// reset restores the batch's slices to full capacity for the next
// read.
func (db *DecodedBatch) reset() {
	db.Pkts = db.Pkts[:cap(db.Pkts)]
	db.Keys = db.Keys[:cap(db.Keys)]
	db.Folds = db.Folds[:cap(db.Folds)]
}

// ParallelSourceConfig parameterises NewParallelBatchSource.
type ParallelSourceConfig struct {
	// Workers is the decode worker count. Defaults to 1 — which, with
	// a single consumer, preserves the source's batch order exactly
	// (one reader feeding one worker feeding one consumer is a
	// pipeline, not a race).
	Workers int
	// BatchSize is the packet capacity of each pooled buffer.
	// Defaults to replayReadLen.
	BatchSize int
	// Depth is the pooled buffer count. It bounds how far the reader
	// may run ahead of the consumers; the reader blocks on an empty
	// pool, which is the backpressure. Defaults to 2*Workers + 2.
	Depth int
}

func (c ParallelSourceConfig) withDefaults() ParallelSourceConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = replayReadLen
	}
	if c.Depth <= 0 {
		c.Depth = 2*c.Workers + 2
	}
	return c
}

// ParallelBatchSource fans one BatchSource (not required to be safe
// for concurrent use — a single reader goroutine owns it) across
// decode workers and serves the decoded batches to any number of
// consumers. Lifecycle: NewParallelBatchSource starts the pipeline;
// consumers loop NextDecoded/Recycle until it returns io.EOF (every
// consumer gets one); Close tears the pipeline down early. Errors are
// sticky: a source read error surfaces, once, after all batches read
// before it have been served.
type ParallelBatchSource struct {
	cfg  ParallelSourceConfig
	free chan *DecodedBatch // pooled buffers
	fill chan *DecodedBatch // read, not yet decoded
	out  chan *DecodedBatch // decoded, ready for a consumer

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup // decode workers

	// err is the sticky source error, io.EOF for a clean end. Written
	// by the reader goroutine before it closes fill; every consumer
	// read happens after out closes, which happens after the workers
	// drain fill, which happens after that write — a pure
	// happens-before chain, no lock needed.
	err error
}

// NewParallelBatchSource starts the reader and decode workers over
// src. The source is owned by the pipeline from here on: nothing else
// may read it, and it is NOT closed by Close (the caller opened it,
// the caller closes it — after Close or EOF, when the reader is done
// with it).
func NewParallelBatchSource(src BatchSource, cfg ParallelSourceConfig) *ParallelBatchSource {
	cfg = cfg.withDefaults()
	ps := &ParallelBatchSource{
		cfg:  cfg,
		free: make(chan *DecodedBatch, cfg.Depth),
		fill: make(chan *DecodedBatch, cfg.Depth),
		out:  make(chan *DecodedBatch, cfg.Depth),
		done: make(chan struct{}),
	}
	for i := 0; i < cfg.Depth; i++ {
		ps.free <- &DecodedBatch{
			Pkts:  make([]netpkt.Packet, cfg.BatchSize),
			Keys:  make([]features.FlowKey, cfg.BatchSize),
			Folds: make([]uint32, cfg.BatchSize),
		}
	}
	ps.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go ps.decodeWorker()
	}
	go ps.reader(src)
	// Workers exit when the reader closes fill (or done closes); out
	// closes only after every in-flight batch has been delivered.
	go func() {
		ps.wg.Wait()
		close(ps.out)
	}()
	return ps
}

// reader is the single goroutine that touches src: it pulls pooled
// buffers, fills them from the source, and hands them to the decode
// workers. On EOF or error it records the sticky error and closes
// fill, which winds the pipeline down in order.
func (ps *ParallelBatchSource) reader(src BatchSource) {
	defer close(ps.fill)
	for {
		var db *DecodedBatch
		select {
		case db = <-ps.free:
		case <-ps.done:
			ps.err = ErrSourceClosed
			return
		}
		db.reset()
		n, err := src.NextBatch(db.Pkts)
		if n > 0 {
			db.Pkts = db.Pkts[:n]
			select {
			case ps.fill <- db:
			case <-ps.done:
				ps.err = ErrSourceClosed
				return
			}
		}
		if err != nil {
			ps.err = err // io.EOF for a clean end; every consumer sees it
			return
		}
	}
}

// decodeWorker computes canonical keys and folds for read batches —
// the producer-side share of the packet pipeline, moved off the
// ingest lanes so it overlaps them.
func (ps *ParallelBatchSource) decodeWorker() {
	defer ps.wg.Done()
	for db := range ps.fill {
		n := len(db.Pkts)
		db.Keys = db.Keys[:n]
		db.Folds = db.Folds[:n]
		for i := range db.Pkts {
			db.Keys[i], db.Folds[i] = features.CanonicalFoldOf(&db.Pkts[i])
		}
		select {
		case ps.out <- db:
		case <-ps.done:
			return
		}
	}
}

// NextDecoded returns the next decoded batch. With one worker and one
// consumer, batches arrive in source order; with several of either,
// order across batches is unspecified (that is the concurrency).
// After the stream ends it returns (nil, io.EOF) to every consumer —
// or the source's error, or ErrSourceClosed after Close. The returned
// batch is owned by the caller until it passes it to Recycle.
func (ps *ParallelBatchSource) NextDecoded() (*DecodedBatch, error) {
	select {
	case db, ok := <-ps.out:
		if !ok {
			if ps.err == nil {
				return nil, io.EOF
			}
			return nil, ps.err
		}
		return db, nil
	case <-ps.done:
		return nil, ErrSourceClosed
	}
}

// Recycle returns a consumed batch to the pool. Every batch obtained
// from NextDecoded should be recycled exactly once; after Close,
// recycling is a no-op (the pool is abandoned).
func (ps *ParallelBatchSource) Recycle(db *DecodedBatch) {
	select {
	case ps.free <- db:
	case <-ps.done:
	}
}

// Close tears the pipeline down: the reader and workers unblock and
// exit, and NextDecoded returns ErrSourceClosed (batches already
// decoded may still be served first). Idempotent, safe from any
// goroutine; ReplayParallel wires it to context cancellation.
func (ps *ParallelBatchSource) Close() {
	ps.closeOnce.Do(func() { close(ps.done) })
}

// ReplayParallel pumps one batch source through every ingest lane at
// once: a ParallelBatchSource reads and decodes (canonical keys and
// folds) off the lanes' goroutines, and each of the server's
// Producers runs a ReplayDecoded consumer loop until the stream ends,
// an ingest error, or ctx cancellation. Counts are summed across
// lanes; the error is the first failure (errors.Join of every lane's,
// in practice one). With Producers == 1 the replay is byte-identical
// to ReplayBatch — one reader, one decode worker, one consumer is a
// pipeline in source order. With more lanes, packets interleave
// across lanes batch-by-batch and decisions follow the per-lane
// ordering contract (see Config.OnDecision). The caller must not
// drive any Producer concurrently with ReplayParallel — it occupies
// every lane. Supervisor goroutine only.
func (s *Server) ReplayParallel(ctx context.Context, src BatchSource) (accepted, dropped uint64, err error) {
	size := s.cfg.BatchSize
	if size <= 1 {
		size = replayReadLen
	}
	ps := NewParallelBatchSource(src, ParallelSourceConfig{
		Workers:   len(s.producers),
		BatchSize: size,
		// One in-flight buffer per pipeline stage per lane keeps every
		// stage busy without unbounded read-ahead.
		Depth: 3*len(s.producers) + 1,
	})
	stop := context.AfterFunc(ctx, ps.Close)
	defer stop()
	defer ps.Close()

	var (
		mu   sync.Mutex
		errs []error
	)
	var wg sync.WaitGroup
	wg.Add(len(s.producers))
	for _, p := range s.producers {
		go func(p *Producer) {
			defer wg.Done()
			a, d, lerr := p.ReplayDecoded(ctx, ps)
			mu.Lock()
			accepted += a
			dropped += d
			if lerr != nil {
				errs = append(errs, lerr)
			}
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return accepted, dropped, errors.Join(errs...)
}
