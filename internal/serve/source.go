package serve

import (
	"io"

	"iguard/internal/netpkt"
)

// Source is a streaming packet supply: Next returns packets in capture
// order and io.EOF at end of stream. netpkt.PcapReader satisfies it
// directly (strict variant); see PcapSource for the skip-on-parse-error
// variant serving normally wants.
type Source interface {
	Next() (netpkt.Packet, error)
}

// BatchSource is the batch face of a packet supply: NextBatch fills
// buf with up to len(buf) packets in capture order and returns how
// many it wrote. buf[:n] is valid even when err is non-nil, so a
// partial read at end of stream is delivered alongside io.EOF's
// arrival on the following call — or, equally validly, together with
// it (n > 0 with err == io.EOF means "these packets, then the end").
// Sources with natural batch access implement it directly; everything
// else goes through AsBatchSource.
type BatchSource interface {
	NextBatch(buf []netpkt.Packet) (n int, err error)
}

// AsBatchSource returns the batch face of src: src itself when it
// already implements BatchSource, else an adapter that fills each
// batch with repeated Next calls.
func AsBatchSource(src Source) BatchSource {
	if b, ok := src.(BatchSource); ok {
		return b
	}
	return &sourceBatcher{src: src}
}

// sourceBatcher adapts a per-packet Source to BatchSource.
type sourceBatcher struct{ src Source }

// NextBatch implements BatchSource.
func (sb *sourceBatcher) NextBatch(buf []netpkt.Packet) (int, error) {
	for i := range buf {
		p, err := sb.src.Next()
		if err != nil {
			return i, err
		}
		buf[i] = p
	}
	return len(buf), nil
}

// PcapSource streams a capture file, skipping unparseable frames the
// way netpkt.(*PcapReader).ReadAll does — without buffering the trace.
type PcapSource struct {
	R *netpkt.PcapReader
}

// Next implements Source.
func (s PcapSource) Next() (netpkt.Packet, error) { return s.R.NextValid() }

// NextBatch implements BatchSource natively via the reader's batch
// face, so a batched replay reads a batch per call instead of a packet
// per call.
func (s PcapSource) NextBatch(buf []netpkt.Packet) (int, error) { return s.R.NextValidBatch(buf) }

// TraceSource replays an in-memory packet slice (e.g. a synthetic
// traffic.Trace) as a Source.
type TraceSource struct {
	packets []netpkt.Packet
	i       int
}

// NewTraceSource wraps packets; the slice is read, never copied, so
// the caller must not mutate it while the replay runs.
func NewTraceSource(packets []netpkt.Packet) *TraceSource {
	return &TraceSource{packets: packets}
}

// Next implements Source.
func (s *TraceSource) Next() (netpkt.Packet, error) {
	if s.i >= len(s.packets) {
		return netpkt.Packet{}, io.EOF
	}
	p := s.packets[s.i]
	s.i++
	return p, nil
}

// NextBatch implements BatchSource natively: one copy from the backing
// slice per batch instead of a call per packet.
func (s *TraceSource) NextBatch(buf []netpkt.Packet) (int, error) {
	if s.i >= len(s.packets) {
		return 0, io.EOF
	}
	n := copy(buf, s.packets[s.i:])
	s.i += n
	return n, nil
}
