package serve

import (
	"io"

	"iguard/internal/netpkt"
)

// Source is a streaming packet supply: Next returns packets in capture
// order and io.EOF at end of stream. netpkt.PcapReader satisfies it
// directly (strict variant); see PcapSource for the skip-on-parse-error
// variant serving normally wants.
type Source interface {
	Next() (netpkt.Packet, error)
}

// PcapSource streams a capture file, skipping unparseable frames the
// way netpkt.(*PcapReader).ReadAll does — without buffering the trace.
type PcapSource struct {
	R *netpkt.PcapReader
}

// Next implements Source.
func (s PcapSource) Next() (netpkt.Packet, error) { return s.R.NextValid() }

// TraceSource replays an in-memory packet slice (e.g. a synthetic
// traffic.Trace) as a Source.
type TraceSource struct {
	packets []netpkt.Packet
	i       int
}

// NewTraceSource wraps packets; the slice is read, never copied, so
// the caller must not mutate it while the replay runs.
func NewTraceSource(packets []netpkt.Packet) *TraceSource {
	return &TraceSource{packets: packets}
}

// Next implements Source.
func (s *TraceSource) Next() (netpkt.Packet, error) {
	if s.i >= len(s.packets) {
		return netpkt.Packet{}, io.EOF
	}
	p := s.packets[s.i]
	s.i++
	return p, nil
}
