package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"iguard/internal/controller"
	"iguard/internal/features"
	"iguard/internal/mathx"
	"iguard/internal/netpkt"
	"iguard/internal/rules"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

// benchPLRules builds a deep PL whitelist (many narrow boxes) so each
// brown-path packet pays a realistic multi-rule TCAM scan — the per-
// packet work that sharding parallelises.
func benchPLRules(count int) *rules.CompiledRuleSet {
	min := []float64{0, 0, 0, 0}
	max := []float64{65535, 255, 2000, 255}
	r := mathx.NewRand(42)
	rs := &rules.RuleSet{Dim: features.PLDim, DefaultLabel: 1}
	for i := 0; i < count; i++ {
		box := make(rules.Box, features.PLDim)
		for d := range box {
			lo := r.Float64() * max[d] * 0.9
			box[d] = rules.Interval{Lo: lo, Hi: lo + 0.02*max[d]}
		}
		rs.Rules = append(rs.Rules, rules.Rule{Box: box, Label: 0})
	}
	return rules.Compile(rs, rules.NewQuantizer(min, max, 12))
}

// benchShardFactory keeps flows below the packet threshold so every
// packet takes the brown path: a steady-state filtering workload.
func benchShardFactory(pl *rules.CompiledRuleSet) func(int) Shard {
	return func(int) Shard {
		sw := switchsim.New(switchsim.Config{
			Slots:        1 << 14,
			PktThreshold: 1 << 30,
			Timeout:      time.Hour,
			PLRules:      pl,
		})
		ctrl := controller.New(sw, 8192, controller.FIFO)
		sw.SetSink(ctrl)
		return Shard{Switch: sw, Controller: ctrl}
	}
}

// benchPackets returns a reusable synthetic workload.
func benchPackets(b *testing.B) []netpkt.Packet {
	b.Helper()
	attack, err := traffic.GenerateAttack(traffic.UDPDDoS, 2, 64)
	if err != nil {
		b.Fatal(err)
	}
	return traffic.GenerateBenign(1, 256).Merge(attack).Packets
}

// BenchmarkProcessPacket measures the single-switch hot path in
// isolation — the per-shard cost that BenchmarkServeThroughput divides
// across workers. Tracked separately so a hot-path regression is not
// masked by shard scaling (and vice versa).
func BenchmarkProcessPacket(b *testing.B) {
	pkts := benchPackets(b)
	sh := benchShardFactory(benchPLRules(256))(0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sh.Switch.ProcessPacket(&pkts[i%len(pkts)])
	}
}

// BenchmarkProcessBatch measures the switch batch pass on the same
// workload as BenchmarkProcessPacket: ns/op is per packet, so the
// delta against BenchmarkProcessPacket is what the shared quantise
// pass and feature-major rule walk save before any shard fan-out.
func BenchmarkProcessBatch(b *testing.B) {
	pkts := benchPackets(b)
	sh := benchShardFactory(benchPLRules(256))(0)
	const batch = 64
	out := make([]switchsim.Decision, batch)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i += batch {
		off := i % (len(pkts) - batch)
		sh.Switch.ProcessBatch(pkts[off:off+batch], nil, nil, out)
	}
}

// BenchmarkServeThroughput measures end-to-end ingest→decision packet
// rate across shard counts on the same synthetic workload (ns/op is
// per packet, drain included), driving the batched face the daemons
// use: IngestBatch in 64-packet slices over a BatchSize-64 server. On
// a multi-core host the 4-shard run should sustain at least twice the
// 1-shard pps; on a single core the shard counts only measure the
// runtime's overhead.
func BenchmarkServeThroughput(b *testing.B) {
	pkts := benchPackets(b)
	pl := benchPLRules(256)
	const batch = 64
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv, err := New(Config{
				Shards:     shards,
				QueueDepth: 1024,
				Policy:     Block,
				BatchSize:  batch,
				NewShard:   benchShardFactory(pl),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for n := 0; n < b.N; {
				off := n % (len(pkts) - batch)
				chunk := batch
				if rem := b.N - n; rem < chunk {
					chunk = rem
				}
				if _, _, err := srv.IngestBatch(pkts[off : off+chunk]); err != nil {
					b.Fatal(err)
				}
				n += chunk
			}
			if err := srv.Flush(); err != nil {
				b.Fatal(err)
			}
			if err := srv.Close(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			st := srv.Stats()
			if st.Packets != b.N {
				b.Fatalf("processed %d packets, want %d", st.Packets, b.N)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
		})
	}
}

// BenchmarkServeThroughputMP measures the multi-producer ingest fan-in:
// P concurrent lanes split the packet budget and drive their own
// IngestBatch loops against a 4-shard batched server, so ns/op is per
// packet wall-clock across the whole fan-in (drain included) and the
// reported pps is the end-to-end rate. producers=1 is the lane
// machinery at single-producer cost (the regression guard against
// BenchmarkServeThroughput/shards=4); higher lane counts only scale on
// multi-core hosts — sweep with -cpu 1,4,8 to see the machine's
// scaling curve, since on one core extra lanes measure pure contention
// overhead.
func BenchmarkServeThroughputMP(b *testing.B) {
	pkts := benchPackets(b)
	pl := benchPLRules(256)
	const batch = 64
	const shards = 4
	for _, producers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("producers=%d", producers), func(b *testing.B) {
			srv, err := New(Config{
				Shards:     shards,
				QueueDepth: 1024,
				Policy:     Block,
				BatchSize:  batch,
				Producers:  producers,
				NewShard:   benchShardFactory(pl),
			})
			if err != nil {
				b.Fatal(err)
			}
			// Pre-split the budget so the timed region is pure ingest:
			// lane l sends share[l] packets in batch-sized slices.
			share := make([]int, producers)
			for i := 0; i < producers; i++ {
				share[i] = b.N / producers
			}
			share[0] += b.N % producers
			b.ResetTimer()
			b.ReportAllocs()
			var wg sync.WaitGroup
			for l := 0; l < producers; l++ {
				wg.Add(1)
				go func(p *Producer, budget int) {
					defer wg.Done()
					for n := 0; n < budget; {
						off := n % (len(pkts) - batch)
						chunk := batch
						if rem := budget - n; rem < chunk {
							chunk = rem
						}
						if _, _, err := p.IngestBatch(pkts[off : off+chunk]); err != nil {
							b.Error(err)
							return
						}
						n += chunk
					}
					if err := p.Flush(); err != nil {
						b.Error(err)
					}
				}(srv.Producer(l), share[l])
			}
			wg.Wait()
			if err := srv.Close(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			st := srv.Stats()
			if st.Packets != b.N {
				b.Fatalf("processed %d packets, want %d", st.Packets, b.N)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
		})
	}
}

// BenchmarkServeThroughputUnbatched keeps the pre-batching per-packet
// Ingest series alive so the batched numbers above have an in-tree
// baseline to be compared against.
func BenchmarkServeThroughputUnbatched(b *testing.B) {
	pkts := benchPackets(b)
	pl := benchPLRules(256)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv, err := New(Config{
				Shards:     shards,
				QueueDepth: 1024,
				Policy:     Block,
				NewShard:   benchShardFactory(pl),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := srv.Ingest(&pkts[i%len(pkts)]); err != nil {
					b.Fatal(err)
				}
			}
			if err := srv.Close(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			st := srv.Stats()
			if st.Packets != b.N {
				b.Fatalf("processed %d packets, want %d", st.Packets, b.N)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
		})
	}
}
