package serve

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"iguard/internal/netpkt"
	"iguard/internal/switchsim"
)

// seqRecorder captures every decision indexed by ingest sequence
// number. Shards write disjoint seqs (a seq belongs to exactly one
// packet, a packet to exactly one shard), so the slice needs no lock.
type seqRecorder struct {
	recs []decisionRecord
	seen []bool
}

func newSeqRecorder(n int) *seqRecorder {
	return &seqRecorder{recs: make([]decisionRecord, n), seen: make([]bool, n)}
}

func (r *seqRecorder) onDecision(_ int, _ uint32, seq uint64, _ *netpkt.Packet, d switchsim.Decision) {
	r.recs[seq] = decisionRecord{Path: d.Path, Predicted: d.Predicted, Dropped: d.Dropped}
	r.seen[seq] = true
}

// coreCounters projects the Stats fields that must be invariant under
// batching (queue mechanics aside, the pipeline must do identical
// work).
type coreCounters struct {
	Packets    int
	PathCounts [6]int
	Drops      int
	Digests    int
	Sweeps     int
	Ticks      uint64
}

func coreOf(st Stats) coreCounters {
	return coreCounters{
		Packets:    st.Packets,
		PathCounts: st.PathCounts,
		Drops:      st.Drops,
		Digests:    st.Digests,
		Sweeps:     st.Sweeps,
		Ticks:      st.Ticks,
	}
}

// runBatched replays the shared trace through a server with the given
// batch size (0 = unbatched) and returns the per-seq decisions plus
// the core counters.
func runBatched(t *testing.T, shards, batch int, pkts []netpkt.Packet) ([]decisionRecord, coreCounters, Stats) {
	t.Helper()
	rec := newSeqRecorder(len(pkts))
	srv, err := New(Config{
		Shards:     shards,
		QueueDepth: 256,
		Policy:     Block,
		SweepEvery: 50 * time.Millisecond,
		BatchSize:  batch,
		NewShard:   testShardFactory(smallFlowsFL(700), 8, time.Hour),
		OnDecision: rec.onDecision,
	})
	if err != nil {
		t.Fatal(err)
	}
	accepted, dropped, err := srv.ReplayBatch(context.Background(), NewTraceSource(pkts))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || accepted != uint64(len(pkts)) {
		t.Fatalf("accepted=%d dropped=%d want accepted=%d dropped=0", accepted, dropped, len(pkts))
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	for seq, ok := range rec.seen {
		if !ok {
			t.Fatalf("seq %d never decided", seq)
		}
	}
	return rec.recs, coreOf(st), st
}

// TestBatchDecisionsMatchUnbatched is the serving-layer equivalence
// pin of the batch redesign: at every batch size × shard count, the
// per-sequence decision stream and the pipeline counters must be
// byte-identical to the unbatched path over the same trace — batching
// changes how packets travel to the shards, never what is decided.
func TestBatchDecisionsMatchUnbatched(t *testing.T) {
	trace := mixedTrace(t)
	for _, shards := range []int{1, 2, 8} {
		base, baseCore, baseStats := runBatched(t, shards, 0, trace.Packets)
		if baseStats.Ticks == 0 {
			t.Fatal("trace never crossed a sweep tick; the ordering check is vacuous")
		}
		if baseStats.Batches != 0 {
			t.Fatalf("unbatched run reported %d batches", baseStats.Batches)
		}
		for _, batch := range []int{1, 7, 64, 1024} {
			t.Run(fmt.Sprintf("shards=%d/batch=%d", shards, batch), func(t *testing.T) {
				got, gotCore, st := runBatched(t, shards, batch, trace.Packets)
				for seq := range base {
					if got[seq] != base[seq] {
						t.Fatalf("seq %d: batched %+v, unbatched %+v", seq, got[seq], base[seq])
					}
				}
				if gotCore != baseCore {
					t.Errorf("core counters diverge: batched %+v, unbatched %+v", gotCore, baseCore)
				}
				if batch > 1 && st.Batches == 0 {
					t.Error("batched run reported zero batch hand-offs")
				}
			})
		}
	}
}

// TestBatchFlushDeadline pins the latency bound: a packet parked in a
// partial batch is handed off as soon as the trace clock advances
// BatchFlush past the last flush point, without waiting for the batch
// to fill or for an explicit Flush.
func TestBatchFlushDeadline(t *testing.T) {
	var decided atomic.Uint64
	srv, err := New(Config{
		Shards:     1,
		BatchSize:  64,
		BatchFlush: time.Millisecond,
		Policy:     Block,
		NewShard:   testShardFactory(acceptAllFL(), 8, time.Hour),
		OnDecision: func(int, uint32, uint64, *netpkt.Packet, switchsim.Decision) { decided.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	base := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	mk := func(at time.Duration) netpkt.Packet {
		return netpkt.Packet{
			Timestamp: base.Add(at),
			SrcIP:     [4]byte{10, 0, 0, 1}, DstIP: [4]byte{23, 1, 0, 1},
			SrcPort: 1000, DstPort: 80, Proto: netpkt.ProtoUDP, TTL: 64, Length: 120,
		}
	}
	p1 := mk(0)
	if _, err := srv.Ingest(&p1); err != nil {
		t.Fatal(err)
	}
	// The batch is far from full and no deadline has passed: the packet
	// must still be pending. (Deliberately not Stats: a stats request
	// is itself a flush point.)
	time.Sleep(10 * time.Millisecond)
	if n := decided.Load(); n != 0 {
		t.Fatalf("packet decided before any flush point (decided=%d)", n)
	}
	// A second packet 2ms of trace time later crosses the 1ms deadline:
	// the pending batch (p1) must be handed off even though p2 opens a
	// new one.
	p2 := mk(2 * time.Millisecond)
	if _, err := srv.Ingest(&p2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for decided.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("deadline flush never delivered the parked packet")
		}
		time.Sleep(time.Millisecond)
	}
	// Explicit Flush delivers the rest.
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	for decided.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("Flush never delivered the second packet")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchDropPolicySheds exercises whole-batch shedding: with a tiny
// queue and a blocked-up worker the Drop policy must shed at batch
// granularity, account every shed packet, and never deadlock the
// producer; packets processed plus packets shed must equal packets
// ingested.
func TestBatchDropPolicySheds(t *testing.T) {
	trace := mixedTrace(t)
	srv, err := New(Config{
		Shards:     2,
		QueueDepth: 8,
		BatchSize:  4,
		Policy:     Drop,
		NewShard:   testShardFactory(smallFlowsFL(700), 8, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.ReplayBatch(context.Background(), NewTraceSource(trace.Packets)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Ingested != uint64(len(trace.Packets)) {
		t.Fatalf("ingested=%d want %d", st.Ingested, len(trace.Packets))
	}
	if uint64(st.Packets)+st.QueueDrops != st.Ingested {
		t.Fatalf("processed=%d + shed=%d != ingested=%d", st.Packets, st.QueueDrops, st.Ingested)
	}
}

// TestIngestBatchUnbatched pins the fallback: IngestBatch on an
// unbatched server must behave exactly like per-packet Ingest, with
// the read buffer safely reusable (each packet is copied before its
// pointer crosses the mailbox).
func TestIngestBatchUnbatched(t *testing.T) {
	trace := mixedTrace(t)
	rec := newSeqRecorder(len(trace.Packets))
	srv, err := New(Config{
		Shards:     2,
		Policy:     Block,
		NewShard:   testShardFactory(smallFlowsFL(700), 8, time.Hour),
		OnDecision: rec.onDecision,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]netpkt.Packet, 16)
	var accepted uint64
	for off := 0; off < len(trace.Packets); off += len(buf) {
		n := copy(buf, trace.Packets[off:])
		a, d, err := srv.IngestBatch(buf[:n])
		if err != nil || d != 0 {
			t.Fatalf("IngestBatch: accepted=%d dropped=%d err=%v", a, d, err)
		}
		accepted += a
		// Scribble over the buffer: the server must have copied.
		for i := range buf[:n] {
			buf[i] = netpkt.Packet{}
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if accepted != uint64(len(trace.Packets)) {
		t.Fatalf("accepted=%d want %d", accepted, len(trace.Packets))
	}
	if st := srv.Stats(); st.Packets != len(trace.Packets) {
		t.Fatalf("processed=%d want %d", st.Packets, len(trace.Packets))
	}
	for seq, ok := range rec.seen {
		if !ok {
			t.Fatalf("seq %d never decided", seq)
		}
	}
}

// TestAsBatchSource covers the Source→BatchSource adapter and
// TraceSource's native batch face: full batches, the partial tail, and
// EOF termination.
func TestAsBatchSource(t *testing.T) {
	trace := mixedTrace(t)
	want := trace.Packets[:10]

	// Adapter over a plain Source (hide TraceSource's native method).
	plain := struct{ Source }{NewTraceSource(want)}
	b := AsBatchSource(plain)
	if _, native := b.(*TraceSource); native {
		t.Fatal("adapter expected, got the source itself")
	}
	buf := make([]netpkt.Packet, 4)
	var got []netpkt.Packet
	for {
		n, err := b.NextBatch(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("adapter read %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Timestamp != want[i].Timestamp || got[i].SrcPort != want[i].SrcPort {
			t.Fatalf("packet %d differs through adapter", i)
		}
	}

	// Native TraceSource batch face; AsBatchSource must pass it through.
	ts := NewTraceSource(want)
	if _, native := AsBatchSource(ts).(*TraceSource); !native {
		t.Fatal("TraceSource should be its own BatchSource")
	}
	got = got[:0]
	for {
		n, err := ts.NextBatch(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("native read %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Timestamp != want[i].Timestamp || got[i].SrcPort != want[i].SrcPort {
			t.Fatalf("packet %d differs natively", i)
		}
	}
}

// TestConfigValidateBatch covers the joined-error validator.
func TestConfigValidateBatch(t *testing.T) {
	err := Config{
		Shards:     -1,
		QueueDepth: -1,
		BatchSize:  -3,
		BatchFlush: -time.Second,
	}.Validate()
	if err == nil {
		t.Fatal("nonsense config validated")
	}
	for _, want := range []string{"NewShard", "Shards", "QueueDepth", "BatchSize", "BatchFlush"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %s", err, want)
		}
	}
	if err := (Config{NewShard: func(int) Shard { return Shard{} }, BatchSize: MaxBatchSize + 1}).Validate(); err == nil {
		t.Error("oversized BatchSize validated")
	}
	if err := (Config{NewShard: func(int) Shard { return Shard{} }, BatchFlush: time.Millisecond}).Validate(); err == nil {
		t.Error("BatchFlush without batching validated")
	}
	if _, err := New(Config{NewShard: func(int) Shard { return Shard{} }, BatchSize: -1}); err == nil {
		t.Error("New accepted a negative BatchSize")
	}
}

// TestBatchedLoopAllocationFree is the batched twin of
// TestShardLoopAllocationFree: one iteration ingests a full batch
// (producer copy, hand-off, worker ProcessBatch, buffer recycle) and
// drains via a stats message; the whole cycle must not touch the heap.
func TestBatchedLoopAllocationFree(t *testing.T) {
	srv, err := New(Config{
		Shards:     1,
		QueueDepth: 256,
		BatchSize:  64,
		Policy:     Block,
		NewShard: func(int) Shard {
			return Shard{Switch: switchsim.New(switchsim.Config{
				Slots:        1 << 12,
				PktThreshold: 1 << 30,
				Timeout:      time.Hour,
			})}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	base := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	pkts := make([]netpkt.Packet, 64)
	for i := range pkts {
		pkts[i] = netpkt.Packet{
			Timestamp: base.Add(time.Duration(i) * time.Microsecond),
			SrcIP:     [4]byte{10, 0, 0, byte(1 + i%4)},
			DstIP:     [4]byte{23, 1, 0, 1},
			SrcPort:   uint16(1000 + i%4),
			DstPort:   80,
			Proto:     netpkt.ProtoUDP,
			TTL:       64,
			Length:    120,
		}
	}
	w := srv.shards[0]
	ack := make(chan ShardStats, 1)
	drain := func() {
		w.in <- shardMsg{kind: msgStats, ack: ack}
		<-ack
	}

	if _, _, err := srv.IngestBatch(pkts); err != nil {
		t.Fatal(err)
	}
	drain()

	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := srv.IngestBatch(pkts); err != nil {
			t.Fatal(err)
		}
		drain()
	}); n != 0 {
		t.Errorf("batched loop allocs per ingest→decide→stats cycle = %v, want 0", n)
	}
}
