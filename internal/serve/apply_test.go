package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"iguard/internal/controller"
	"iguard/internal/features"
	"iguard/internal/switchsim"
	"iguard/internal/traffic"
)

// TestApplyInstallBlocksFlow pins the federation apply path end to
// end: an externally applied install lands on the key's owning shard,
// and every subsequent packet of that flow takes the red path and is
// dropped — exactly as if this switch's own controller had flagged it.
func TestApplyInstallBlocksFlow(t *testing.T) {
	trace := traffic.GenerateBenign(21, 30)
	target, _ := features.CanonicalFoldOf(&trace.Packets[0])

	rec := newPerFlowRecorder(4)
	srv, err := New(Config{
		Shards:     4,
		NewShard:   testShardFactory(acceptAllFL(), 8, time.Hour),
		OnDecision: rec.onDecision,
	})
	if err != nil {
		t.Fatal(err)
	}
	applied, err := srv.ApplyInstall(target)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("first ApplyInstall reported applied=false")
	}
	// Idempotent: re-applying the same propagated entry is a no-op.
	if again, err := srv.ApplyInstall(target); err != nil || again {
		t.Fatalf("duplicate ApplyInstall: applied=%v err=%v, want false <nil>", again, err)
	}
	if _, _, err := srv.Replay(context.Background(), NewTraceSource(trace.Packets)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	flows := rec.merge(t)
	recs, ok := flows[target]
	if !ok {
		t.Fatalf("target flow %v not observed", target)
	}
	for i, r := range recs {
		if r.Path != switchsim.PathRed || !r.Dropped {
			t.Fatalf("packet %d of blacklisted flow: path=%v dropped=%v, want red+dropped", i, r.Path, r.Dropped)
		}
	}
	// Other flows are untouched by the foreign install.
	for key, recs := range flows {
		if key == target {
			continue
		}
		for _, r := range recs {
			if r.Path == switchsim.PathRed {
				t.Fatalf("flow %v hit the red path without an install", key)
			}
		}
	}
}

// TestApplyRemoveAndFlush pins removal and fleet-flush: a propagated
// REMOVE withdraws exactly its entry, ApplyFlush withdraws everything,
// and both report what they touched.
func TestApplyRemoveAndFlush(t *testing.T) {
	srv, err := New(Config{
		Shards:   2,
		NewShard: testShardFactory(acceptAllFL(), 8, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := []features.FlowKey{
		{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, SrcPort: 1, DstPort: 2, Proto: 6},
		{SrcIP: [4]byte{10, 0, 0, 3}, DstIP: [4]byte{10, 0, 0, 4}, SrcPort: 3, DstPort: 4, Proto: 17},
		{SrcIP: [4]byte{10, 0, 0, 5}, DstIP: [4]byte{10, 0, 0, 6}, SrcPort: 5, DstPort: 6, Proto: 6},
	}
	for _, k := range keys {
		if ok, err := srv.ApplyInstall(k); err != nil || !ok {
			t.Fatalf("ApplyInstall(%v): ok=%v err=%v", k, ok, err)
		}
	}
	if got := srv.Stats().BlacklistLen; got != len(keys) {
		t.Fatalf("BlacklistLen=%d want %d", got, len(keys))
	}
	if ok, err := srv.ApplyRemove(keys[0]); err != nil || !ok {
		t.Fatalf("ApplyRemove: ok=%v err=%v, want true <nil>", ok, err)
	}
	if ok, err := srv.ApplyRemove(keys[0]); err != nil || ok {
		t.Fatalf("double ApplyRemove: ok=%v err=%v, want false <nil>", ok, err)
	}
	if got := srv.Stats().BlacklistLen; got != len(keys)-1 {
		t.Fatalf("BlacklistLen=%d after remove, want %d", got, len(keys)-1)
	}
	removed, err := srv.ApplyFlush()
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(keys)-1 {
		t.Fatalf("ApplyFlush removed %d, want %d", removed, len(keys)-1)
	}
	if got := srv.Stats().BlacklistLen; got != 0 {
		t.Fatalf("BlacklistLen=%d after flush, want 0", got)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ApplyInstall(keys[0]); err != ErrClosed {
		t.Fatalf("ApplyInstall after Close: err=%v want ErrClosed", err)
	}
	if _, err := srv.ApplyRemove(keys[0]); err != ErrClosed {
		t.Fatalf("ApplyRemove after Close: err=%v want ErrClosed", err)
	}
	if _, err := srv.ApplyFlush(); err != ErrClosed {
		t.Fatalf("ApplyFlush after Close: err=%v want ErrClosed", err)
	}
}

// TestOnBlacklistObserver pins which transitions the serve-level
// observer sees: digest-driven installs fire OpInstall with the shard
// that decided them; externally applied installs stay silent (the
// loop-free property federation depends on).
func TestOnBlacklistObserver(t *testing.T) {
	var mu sync.Mutex
	events := map[features.FlowKey][]controller.Op{}
	srv, err := New(Config{
		Shards:   2,
		NewShard: testShardFactory(rejectAllFL(), 8, time.Hour),
		OnBlacklist: func(shard int, ev controller.Event) {
			mu.Lock()
			defer mu.Unlock()
			events[ev.Key] = append(events[ev.Key], ev.Op)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// A foreign install is applied silently.
	foreign := features.FlowKey{SrcIP: [4]byte{99, 0, 0, 1}, DstIP: [4]byte{99, 0, 0, 2}, SrcPort: 9, DstPort: 9, Proto: 6}
	if ok, err := srv.ApplyInstall(foreign); err != nil || !ok {
		t.Fatalf("ApplyInstall: ok=%v err=%v", ok, err)
	}

	// Reject-all rules make every flow malicious at the threshold, so
	// the replay produces local installs that must all be observed.
	trace := mixedTrace(t)
	if _, _, err := srv.Replay(context.Background(), NewTraceSource(trace.Packets)); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if ops := events[foreign.Canonical()]; len(ops) != 0 {
		t.Fatalf("foreign install fired observer events %v, want none", ops)
	}
	installs := 0
	for _, ops := range events {
		for _, op := range ops {
			if op == controller.OpInstall {
				installs++
			}
		}
	}
	if installs != st.RulesInstalled-1 {
		// -1: the foreign ApplyInstall counts in RulesInstalled but
		// deliberately never reaches the observer.
		t.Fatalf("observed %d OpInstall events, want %d (RulesInstalled-1)", installs, st.RulesInstalled-1)
	}
	if installs == 0 {
		t.Fatal("replay produced no observed installs")
	}
}

// TestApplyConcurrentWithTraffic exercises the any-goroutine contract
// under the race detector: appliers hammer the control surface while
// the producer replays and the supervisor closes.
func TestApplyConcurrentWithTraffic(t *testing.T) {
	srv, err := New(Config{
		Shards:      4,
		BatchSize:   16,
		NewShard:    testShardFactory(acceptAllFL(), 8, time.Hour),
		OnBlacklist: func(int, controller.Event) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := traffic.GenerateBenign(31, 60)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := features.FlowKey{SrcIP: [4]byte{172, 16, byte(g), 1}, DstIP: [4]byte{172, 16, byte(g), 2}, SrcPort: uint16(g), DstPort: 80, Proto: 6}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := srv.ApplyInstall(k); err == ErrClosed {
					return
				}
				if _, err := srv.ApplyRemove(k); err == ErrClosed {
					return
				}
				if i%8 == 0 {
					if _, err := srv.ApplyFlush(); err == ErrClosed {
						return
					}
				}
			}
		}(g)
	}
	for round := 0; round < 5; round++ {
		if _, _, err := srv.Replay(context.Background(), NewTraceSource(trace.Packets)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if _, err := srv.ApplyInstall(features.FlowKey{}); err != ErrClosed {
		t.Fatalf("ApplyInstall after Close: err=%v want ErrClosed", err)
	}
}
