// Package metrics implements the detection-quality metrics used in the
// iGuard evaluation: macro F1 score, area under the precision-recall
// curve (PRAUC), area under the ROC curve (ROCAUC), and the supporting
// confusion-matrix machinery. Labels follow the paper's convention:
// 1 = malicious (positive class), 0 = benign.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Confusion is a binary confusion matrix with malicious (label 1) as the
// positive class.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add accumulates one (prediction, truth) observation.
func (c *Confusion) Add(pred, truth int) {
	switch {
	case pred == 1 && truth == 1:
		c.TP++
	case pred == 1 && truth == 0:
		c.FP++
	case pred == 0 && truth == 0:
		c.TN++
	default:
		c.FN++
	}
}

// Total returns the number of accumulated observations.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR returns FP/(FP+TN), or 0 when undefined.
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Accuracy returns (TP+TN)/Total, or 0 for no observations.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// F1 returns the F1 score of the positive (malicious) class.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 { //iguard:allow(floatcompare) exact-zero sentinel: both terms are 0 or positive
		return 0
	}
	return 2 * p * r / (p + r)
}

// f1Negative returns the F1 score of the negative (benign) class, i.e.
// F1 computed with the classes swapped.
func (c Confusion) f1Negative() float64 {
	swapped := Confusion{TP: c.TN, TN: c.TP, FP: c.FN, FN: c.FP}
	return swapped.F1()
}

// MacroF1 returns the unweighted mean of the per-class F1 scores — the
// headline metric in the iGuard evaluation.
func (c Confusion) MacroF1() float64 {
	return (c.F1() + c.f1Negative()) / 2
}

// String renders the matrix for diagnostics.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d (macroF1=%.4f)", c.TP, c.FP, c.TN, c.FN, c.MacroF1())
}

// FromPredictions builds a Confusion from parallel prediction and truth
// slices, which must be equal length with entries in {0, 1}.
func FromPredictions(preds, truths []int) (Confusion, error) {
	var c Confusion
	if len(preds) != len(truths) {
		return c, fmt.Errorf("metrics: length mismatch: %d predictions vs %d truths", len(preds), len(truths))
	}
	for i := range preds {
		c.Add(preds[i], truths[i])
	}
	return c, nil
}

// MacroF1Score is a convenience wrapper around FromPredictions returning
// only the macro F1 score. Length mismatch between the two slices is
// reported as an error.
func MacroF1Score(preds, truths []int) (float64, error) {
	c, err := FromPredictions(preds, truths)
	if err != nil {
		return 0, err
	}
	return c.MacroF1(), nil
}

// scored pairs an anomaly score with its ground-truth label for curve
// construction.
type scored struct {
	score float64
	truth int
}

// sortByScoreDesc sorts observations by descending score, so that a
// threshold sweep visits the most anomalous samples first.
func sortByScoreDesc(scores []float64, truths []int) []scored {
	obs := make([]scored, len(scores))
	for i := range scores {
		obs[i] = scored{scores[i], truths[i]}
	}
	sort.SliceStable(obs, func(i, j int) bool { return obs[i].score > obs[j].score })
	return obs
}

// ROCAUC returns the area under the ROC curve for anomaly scores where
// higher means more anomalous. Ties are handled by the standard
// rank-based (Mann-Whitney) correction. It returns 0.5 when either class
// is absent.
func ROCAUC(scores []float64, truths []int) float64 {
	if len(scores) != len(truths) {
		panic(fmt.Sprintf("metrics: length mismatch: %d vs %d", len(scores), len(truths)))
	}
	nPos, nNeg := 0, 0
	for _, t := range truths {
		if t == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	// Rank-sum with midranks for ties.
	obs := make([]scored, len(scores))
	for i := range scores {
		obs[i] = scored{scores[i], truths[i]}
	}
	sort.SliceStable(obs, func(i, j int) bool { return obs[i].score < obs[j].score })
	ranks := make([]float64, len(obs))
	for i := 0; i < len(obs); {
		j := i
		for j < len(obs) && obs[j].score == obs[i].score { //iguard:allow(floatcompare) tie grouping wants exact identity
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		i = j
	}
	sumPos := 0.0
	for i, o := range obs {
		if o.truth == 1 {
			sumPos += ranks[i]
		}
	}
	u := sumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// PRAUC returns the area under the precision-recall curve for anomaly
// scores where higher means more anomalous, computed by the
// average-precision method (step-wise integration at each positive).
// It returns 0 when there are no positives.
func PRAUC(scores []float64, truths []int) float64 {
	if len(scores) != len(truths) {
		panic(fmt.Sprintf("metrics: length mismatch: %d vs %d", len(scores), len(truths)))
	}
	obs := sortByScoreDesc(scores, truths)
	nPos := 0
	for _, t := range truths {
		if t == 1 {
			nPos++
		}
	}
	if nPos == 0 {
		return 0
	}
	// Average precision with tie groups: process equal-score blocks
	// atomically so the curve does not depend on within-tie order.
	tp, fp := 0, 0
	ap := 0.0
	for i := 0; i < len(obs); {
		j := i
		blockTP, blockFP := 0, 0
		for j < len(obs) && obs[j].score == obs[i].score { //iguard:allow(floatcompare) tie grouping wants exact identity
			if obs[j].truth == 1 {
				blockTP++
			} else {
				blockFP++
			}
			j++
		}
		tp += blockTP
		fp += blockFP
		if blockTP > 0 {
			precision := float64(tp) / float64(tp+fp)
			ap += precision * float64(blockTP) / float64(nPos)
		}
		i = j
	}
	return ap
}

// BestF1Threshold sweeps thresholds over the observed scores and returns
// the threshold maximising macro F1 together with that score. Samples
// with score >= threshold are predicted malicious. For empty input it
// returns (0, 0).
func BestF1Threshold(scores []float64, truths []int) (threshold, macroF1 float64) {
	if len(scores) == 0 {
		return 0, 0
	}
	uniq := append([]float64(nil), scores...)
	sort.Float64s(uniq)
	uniq = dedupFloats(uniq)
	best := -1.0
	bestThr := uniq[0]
	// Also consider a threshold above the max (predict all benign).
	candidates := append(uniq, uniq[len(uniq)-1]+1)
	for _, thr := range candidates {
		var c Confusion
		for i, s := range scores {
			pred := 0
			if s >= thr {
				pred = 1
			}
			c.Add(pred, truths[i])
		}
		if f := c.MacroF1(); f > best {
			best, bestThr = f, thr
		}
	}
	return bestThr, best
}

func dedupFloats(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] { //iguard:allow(floatcompare) dedup of identical values wants exact identity
			out = append(out, v)
		}
	}
	return out
}

// Summary bundles the three headline metrics for one experiment cell.
type Summary struct {
	MacroF1 float64
	PRAUC   float64
	ROCAUC  float64
}

// Mean3 returns the mean of the three metrics, used by the paper's
// reward function when selecting best versions.
func (s Summary) Mean3() float64 { return (s.MacroF1 + s.PRAUC + s.ROCAUC) / 3 }

// String renders the summary in the percent style the paper's tables use.
func (s Summary) String() string {
	return fmt.Sprintf("%.2f%%/%.2f%%/%.2f%%", 100*s.MacroF1, 100*s.ROCAUC, 100*s.PRAUC)
}

// Evaluate computes a Summary from anomaly scores, hard predictions and
// ground truth. scores drive the AUCs while preds drives macro F1. Like
// ROCAUC and PRAUC it panics (with a descriptive message) on length
// mismatch, which is always a programming error in the caller; use
// MacroF1Score/FromPredictions for the error-returning path.
func Evaluate(scores []float64, preds, truths []int) Summary {
	f1, err := MacroF1Score(preds, truths)
	if err != nil {
		panic(fmt.Sprintf("metrics: Evaluate: %v", err))
	}
	return Summary{
		MacroF1: f1,
		PRAUC:   PRAUC(scores, truths),
		ROCAUC:  ROCAUC(scores, truths),
	}
}

// EvaluateScores computes a Summary from scores alone by picking the
// macro-F1-optimal threshold (the paper's grid-searched "best version"
// behaviour for score-producing models).
func EvaluateScores(scores []float64, truths []int) Summary {
	_, f1 := BestF1Threshold(scores, truths)
	return Summary{MacroF1: f1, PRAUC: PRAUC(scores, truths), ROCAUC: ROCAUC(scores, truths)}
}

// Reward implements the paper's §4.2.1 best-version criterion:
// α/3·(F1+PRAUC+ROCAUC) + (1−α)·(1−ρ) where ρ is the memory footprint
// fraction of the switch.
func Reward(alpha float64, s Summary, rho float64) float64 {
	rho = math.Min(math.Max(rho, 0), 1)
	return alpha*s.Mean3() + (1-alpha)*(1-rho)
}
