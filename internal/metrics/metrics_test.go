package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"iguard/internal/mathx"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Add(1, 1) // TP
	c.Add(1, 0) // FP
	c.Add(0, 0) // TN
	c.Add(0, 1) // FN
	if c.TP != 1 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 4 {
		t.Errorf("Total = %d", c.Total())
	}
	if !almostEqual(c.Precision(), 0.5, 1e-12) {
		t.Errorf("Precision = %v", c.Precision())
	}
	if !almostEqual(c.Recall(), 0.5, 1e-12) {
		t.Errorf("Recall = %v", c.Recall())
	}
	if !almostEqual(c.Accuracy(), 0.5, 1e-12) {
		t.Errorf("Accuracy = %v", c.Accuracy())
	}
	if !almostEqual(c.FPR(), 0.5, 1e-12) {
		t.Errorf("FPR = %v", c.FPR())
	}
}

func TestConfusionEmptyIsSafe(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 || c.FPR() != 0 {
		t.Error("empty confusion should return zeros everywhere")
	}
	if c.MacroF1() != 0 {
		t.Errorf("empty MacroF1 = %v", c.MacroF1())
	}
}

func TestPerfectClassifier(t *testing.T) {
	preds := []int{1, 1, 0, 0}
	truths := []int{1, 1, 0, 0}
	c, err := FromPredictions(preds, truths)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c.MacroF1(), 1, 1e-12) {
		t.Errorf("perfect MacroF1 = %v", c.MacroF1())
	}
}

func TestInvertedClassifier(t *testing.T) {
	preds := []int{0, 0, 1, 1}
	truths := []int{1, 1, 0, 0}
	c, _ := FromPredictions(preds, truths)
	if c.MacroF1() != 0 {
		t.Errorf("inverted MacroF1 = %v, want 0", c.MacroF1())
	}
}

func TestFromPredictionsLengthMismatch(t *testing.T) {
	if _, err := FromPredictions([]int{1}, []int{1, 0}); err == nil {
		t.Error("want error on length mismatch")
	}
}

func TestMacroF1IsSymmetricUnderClassSwap(t *testing.T) {
	preds := []int{1, 0, 1, 0, 1, 1, 0}
	truths := []int{1, 0, 0, 0, 1, 0, 1}
	swapBits := func(xs []int) []int {
		out := make([]int, len(xs))
		for i, x := range xs {
			out[i] = 1 - x
		}
		return out
	}
	a, err := MacroF1Score(preds, truths)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MacroF1Score(swapBits(preds), swapBits(truths))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, b, 1e-12) {
		t.Errorf("macro F1 not class-symmetric: %v vs %v", a, b)
	}
}

func TestMacroF1ScoreLengthMismatch(t *testing.T) {
	if _, err := MacroF1Score([]int{1, 0}, []int{1}); err == nil {
		t.Fatal("length mismatch not reported")
	}
}

func TestROCAUCPerfectAndInverted(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	truths := []int{1, 1, 0, 0}
	if got := ROCAUC(scores, truths); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect ROCAUC = %v", got)
	}
	inverted := []int{0, 0, 1, 1}
	if got := ROCAUC(scores, inverted); !almostEqual(got, 0, 1e-12) {
		t.Errorf("inverted ROCAUC = %v", got)
	}
}

func TestROCAUCRandomIsHalf(t *testing.T) {
	r := mathx.NewRand(11)
	n := 5000
	scores := make([]float64, n)
	truths := make([]int, n)
	for i := range scores {
		scores[i] = r.Float64()
		truths[i] = r.Intn(2)
	}
	if got := ROCAUC(scores, truths); math.Abs(got-0.5) > 0.03 {
		t.Errorf("random ROCAUC = %v, want ~0.5", got)
	}
}

func TestROCAUCSingleClass(t *testing.T) {
	if got := ROCAUC([]float64{1, 2}, []int{1, 1}); got != 0.5 {
		t.Errorf("single-class ROCAUC = %v, want 0.5", got)
	}
}

func TestROCAUCTies(t *testing.T) {
	// All scores identical: AUC must be exactly 0.5 via midranks.
	scores := []float64{1, 1, 1, 1}
	truths := []int{1, 0, 1, 0}
	if got := ROCAUC(scores, truths); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("tied ROCAUC = %v, want 0.5", got)
	}
}

func TestPRAUCPerfect(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	truths := []int{1, 1, 0, 0}
	if got := PRAUC(scores, truths); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect PRAUC = %v", got)
	}
}

func TestPRAUCNoPositives(t *testing.T) {
	if got := PRAUC([]float64{1, 2}, []int{0, 0}); got != 0 {
		t.Errorf("no-positive PRAUC = %v, want 0", got)
	}
}

func TestPRAUCBaseline(t *testing.T) {
	// For uninformative scores PRAUC approaches the positive prevalence.
	r := mathx.NewRand(13)
	n := 4000
	scores := make([]float64, n)
	truths := make([]int, n)
	pos := 0
	for i := range scores {
		scores[i] = r.Float64()
		if r.Float64() < 0.2 {
			truths[i] = 1
			pos++
		}
	}
	prev := float64(pos) / float64(n)
	if got := PRAUC(scores, truths); math.Abs(got-prev) > 0.05 {
		t.Errorf("random PRAUC = %v, want ~%v", got, prev)
	}
}

func TestPRAUCTieOrderInvariance(t *testing.T) {
	// Equal scores must give the same PRAUC regardless of input order.
	scoresA := []float64{0.5, 0.5, 0.5, 0.1}
	truthsA := []int{1, 0, 1, 0}
	scoresB := []float64{0.5, 0.5, 0.5, 0.1}
	truthsB := []int{0, 1, 1, 0}
	if a, b := PRAUC(scoresA, truthsA), PRAUC(scoresB, truthsB); !almostEqual(a, b, 1e-12) {
		t.Errorf("PRAUC tie order dependence: %v vs %v", a, b)
	}
}

func TestBestF1Threshold(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.2}
	truths := []int{1, 1, 0, 0}
	thr, f1 := BestF1Threshold(scores, truths)
	if !almostEqual(f1, 1, 1e-12) {
		t.Errorf("best F1 = %v, want 1", f1)
	}
	if thr <= 0.3 || thr > 0.8 {
		t.Errorf("threshold = %v, want in (0.3, 0.8]", thr)
	}
	if _, f := BestF1Threshold(nil, nil); f != 0 {
		t.Errorf("empty best F1 = %v", f)
	}
}

func TestBestF1ThresholdAllBenign(t *testing.T) {
	// With no positives the best policy is predict-all-benign; macro F1 is 0.5
	// (benign F1 = 1, malicious F1 = 0).
	scores := []float64{0.1, 0.9}
	truths := []int{0, 0}
	_, f1 := BestF1Threshold(scores, truths)
	if !almostEqual(f1, 0.5, 1e-12) {
		t.Errorf("all-benign best macro F1 = %v, want 0.5", f1)
	}
}

func TestEvaluateScoresConsistent(t *testing.T) {
	scores := []float64{0.9, 0.7, 0.3, 0.1}
	truths := []int{1, 1, 0, 0}
	s := EvaluateScores(scores, truths)
	if !almostEqual(s.MacroF1, 1, 1e-12) || !almostEqual(s.PRAUC, 1, 1e-12) || !almostEqual(s.ROCAUC, 1, 1e-12) {
		t.Errorf("summary = %+v, want all 1", s)
	}
	if !almostEqual(s.Mean3(), 1, 1e-12) {
		t.Errorf("Mean3 = %v", s.Mean3())
	}
}

func TestReward(t *testing.T) {
	s := Summary{MacroF1: 0.9, PRAUC: 0.9, ROCAUC: 0.9}
	got := Reward(0.5, s, 0.1)
	want := 0.5*0.9 + 0.5*0.9
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("Reward = %v, want %v", got, want)
	}
	// rho clamps to [0,1].
	if got := Reward(0.5, s, 2); !almostEqual(got, 0.45, 1e-12) {
		t.Errorf("Reward rho>1 = %v, want 0.45", got)
	}
}

func TestROCAUCProbabilisticInterpretation(t *testing.T) {
	// AUC equals the probability a random positive outranks a random
	// negative; verify by brute force on small random instances.
	f := func(seed int64) bool {
		r := mathx.NewRand(seed)
		n := 30
		scores := make([]float64, n)
		truths := make([]int, n)
		for i := range scores {
			scores[i] = float64(r.Intn(10)) // coarse grid to force ties
			truths[i] = r.Intn(2)
		}
		nPos, nNeg := 0, 0
		for _, tr := range truths {
			if tr == 1 {
				nPos++
			} else {
				nNeg++
			}
		}
		if nPos == 0 || nNeg == 0 {
			return true
		}
		wins := 0.0
		for i := range scores {
			if truths[i] != 1 {
				continue
			}
			for j := range scores {
				if truths[j] != 0 {
					continue
				}
				switch {
				case scores[i] > scores[j]:
					wins++
				case scores[i] == scores[j]:
					wins += 0.5
				}
			}
		}
		want := wins / float64(nPos*nNeg)
		return almostEqual(ROCAUC(scores, truths), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
