package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if w := Workers(0); w < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", w)
	}
	if w := Workers(-3); w < 1 {
		t.Errorf("Workers(-3) = %d, want >= 1", w)
	}
	if w := Workers(7); w != 7 {
		t.Errorf("Workers(7) = %d", w)
	}
}

func TestForCoversEveryIndexAtEveryWorkerCount(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 8, 200} {
		got := make([]int, n)
		err := For(context.Background(), workers, n, func(i int) error {
			got[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		err := For(context.Background(), workers, 10, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 7:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
}

func TestForCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for _, workers := range []int{1, 4} {
		err := For(ctx, workers, 1000, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	// A pre-cancelled context must skip (almost) all units: at most one
	// unit per worker may have raced the cancellation check.
	if ran.Load() > 8 {
		t.Errorf("%d units ran under a cancelled context", ran.Load())
	}
}

func TestForCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := For(ctx, 2, 1000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() == 1000 {
		t.Error("cancellation did not skip any units")
	}
}

func TestForZeroUnits(t *testing.T) {
	if err := For(context.Background(), 4, 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Errorf("n=0: err = %v", err)
	}
}

func TestDoCoversEveryIndex(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 3, 64} {
		got := make([]int32, n)
		Do(workers, n, func(i int) { got[i] = 1 })
		for i, v := range got {
			if v != 1 {
				t.Fatalf("workers=%d: slot %d not written", workers, i)
			}
		}
	}
	Do(4, 0, func(int) { t.Error("unit ran for n=0") })
}
