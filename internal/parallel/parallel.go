// Package parallel provides the bounded, deterministic fan-out
// primitive behind every training-time parallelism knob in the
// repository: grid-search candidates, autoencoder ensemble members,
// and per-tree forest growth all dispatch through For or Do.
//
// Determinism contract: a unit function receives only its index and
// must write its result into an index-addressed slot (a pre-sized
// slice element) without reading other units' slots. Any randomness a
// unit needs must come from its own generator seeded by index (see
// mathx.DeriveSeed). Under that contract the combined result is
// byte-identical for every worker count — the budget only changes
// wall-clock time, never output.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a parallelism knob: values <= 0 select
// runtime.GOMAXPROCS(0), i.e. one worker per available CPU.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns once every started
// unit has finished. ctx must be non-nil; when it is cancelled,
// not-yet-started units are skipped, already-running units complete,
// and For returns ctx.Err(). Otherwise For returns the error of the
// lowest-indexed failed unit — the same error a serial loop over the
// units would have surfaced first — or nil.
func For(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			errs[i] = fn(i)
		}
	} else {
		var (
			wg   sync.WaitGroup
			next atomic.Int64
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= n || ctx.Err() != nil {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Do is For without cancellation or unit errors: it runs fn(i) for
// every i in [0, n) on at most workers goroutines and returns when all
// are done. The same index-addressed determinism contract applies.
func Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
