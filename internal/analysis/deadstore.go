package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Deadstore finds computation whose result can never be observed:
// assignments to local variables that no path reads again (backward
// liveness over the CFG) and statements no path reaches (code after
// return/panic, after an infinite loop, or in a skipped region). Both
// usually indicate a refactoring leftover — in pipeline code, often a
// metric that silently stopped being aggregated.
//
// Reported stores whose right-hand side is free of side effects carry
// a suggested fix that deletes the statement (applied by -fix).
// Variables whose address is taken, that are captured by a closure, or
// that are referenced from defer/go statements are never reported.
var Deadstore = &Analyzer{
	Name: "deadstore",
	Doc: "flag assignments whose value is never read and unreachable " +
		"statements, with -fix deletions for side-effect-free stores",
	LibraryOnly: false,
	Run:         runDeadstore,
}

// liveSet is the backward dataflow fact: variables whose current value
// may still be read.
type liveSet map[*types.Var]bool

func (s liveSet) clone() liveSet {
	out := make(liveSet, len(s))
	for k := range s { //iguard:sorted set copy is key-order independent
		out[k] = true
	}
	return out
}

func runDeadstore(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, body := range functionBodies(f) {
			p.deadstoreFunc(body)
		}
	}
}

func (p *Pass) deadstoreFunc(body *ast.BlockStmt) {
	cfg := BuildCFG(p, body)
	for _, n := range cfg.UnreachableRegions() {
		p.Reportf(n.Pos(), "unreachable code")
	}

	locals, escaped := p.collectLocals(body)
	if len(locals) == 0 {
		return
	}
	problem := FlowProblem{
		Dir:      Backward,
		Boundary: func() any { return liveSet{} },
		Merge: func(a, b any) any {
			x, y := a.(liveSet), b.(liveSet)
			out := x.clone()
			for k := range y { //iguard:sorted set union is order-independent
				out[k] = true
			}
			return out
		},
		Equal: func(a, b any) bool {
			x, y := a.(liveSet), b.(liveSet)
			if len(x) != len(y) {
				return false
			}
			for k := range x { //iguard:sorted set comparison is order-independent
				if !y[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in any) any {
			return p.livenessTransfer(b, in.(liveSet), locals, nil)
		},
	}
	outFacts := Solve(cfg, problem)
	for _, b := range cfg.Blocks {
		out, ok := outFacts[b].(liveSet)
		if !ok {
			continue // block does not reach a normal exit; stay silent
		}
		p.livenessTransfer(b, out, locals, func(pos token.Pos, v *types.Var, node ast.Node) {
			if escaped[v] {
				return
			}
			var fixes []SuggestedFix
			// Deleting the store must not leave v's declaration unused —
			// "declared and not used" would break the build — so the fix
			// requires a surviving use of v outside the deleted node.
			if fixable(node) && p.usedOutside(body, v, node) {
				if fix := p.deleteLinesFix("delete dead store to "+v.Name(), node.Pos(), node.End()); fix != nil {
					fixes = append(fixes, *fix)
				}
			}
			p.ReportFix(pos, fixes, "value assigned to %s is never read", v.Name())
		})
	}
}

// livenessTransfer walks the block's nodes backward, maintaining the
// live set. report, when set, is invoked for each dead store.
func (p *Pass) livenessTransfer(b *Block, out liveSet, locals map[*types.Var]bool, report func(token.Pos, *types.Var, ast.Node)) any {
	live := out.clone()
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		p.livenessNode(b.Nodes[i], live, locals, report)
	}
	return live
}

// livenessNode applies one node's kills (definitions) and gens (uses).
func (p *Pass) livenessNode(n ast.Node, live liveSet, locals map[*types.Var]bool, report func(token.Pos, *types.Var, ast.Node)) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		compound := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
		for _, lhs := range n.Lhs {
			if v := p.assignTarget(lhs, locals); v != nil {
				if !live[v] && !compound && report != nil {
					report(lhs.Pos(), v, deadStoreNode(n))
				}
				delete(live, v)
			} else {
				p.addUses(lhs, live, locals)
			}
		}
		if compound {
			// x += e reads x as well.
			for _, lhs := range n.Lhs {
				p.addUses(lhs, live, locals)
			}
		}
		for _, rhs := range n.Rhs {
			p.addUses(rhs, live, locals)
		}
	case *ast.IncDecStmt:
		if v := p.assignTarget(n.X, locals); v != nil {
			if !live[v] && report != nil {
				report(n.X.Pos(), v, n)
			}
			// x++ reads and writes x: no kill.
			live[v] = true
			return
		}
		p.addUses(n.X, live, locals)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			p.addUses(n, live, locals)
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if v := p.assignTarget(name, locals); v != nil {
					// `var x T` with no initializer is idiomatic; only
					// initialized declarations count as stores.
					if len(vs.Values) > 0 && !live[v] && report != nil {
						report(name.Pos(), v, nil)
					}
					delete(live, v)
				}
			}
			for _, val := range vs.Values {
				p.addUses(val, live, locals)
			}
		}
	case *ast.RangeStmt:
		// Only the range expression belongs to this block; key/value
		// are fresh each iteration and unused ones are compile errors.
		if v := p.assignTarget(n.Key, locals); v != nil {
			delete(live, v)
		}
		if v := p.assignTarget(n.Value, locals); v != nil {
			delete(live, v)
		}
		p.addUses(n.X, live, locals)
	default:
		p.addUses(n, live, locals)
	}
}

// usedOutside reports whether v is used, in the compiler's
// declared-and-not-used sense, somewhere in body other than inside
// node: any mention except a bare left-hand-side identifier of a plain
// assignment (x++ and compound assignments do count as uses).
func (p *Pass) usedOutside(body *ast.BlockStmt, v *types.Var, node ast.Node) bool {
	writeOnly := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if assign, ok := n.(*ast.AssignStmt); ok && assign.Tok == token.ASSIGN {
			for _, lhs := range assign.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					writeOnly[id] = true
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == node {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && !writeOnly[id] {
			if w, ok := p.Pkg.Info.Uses[id].(*types.Var); ok && w == v {
				found = true
			}
		}
		return true
	})
	return found
}

// deadStoreNode returns the assignment node a deletion fix may remove:
// only simple single-target plain assignments qualify.
func deadStoreNode(assign *ast.AssignStmt) ast.Node {
	if assign.Tok == token.ASSIGN && len(assign.Lhs) == 1 && len(assign.Rhs) == 1 {
		return assign
	}
	return nil
}

// fixable reports whether deleting the node cannot change behaviour:
// the node exists and its right-hand side performs no calls, channel
// operations, or indexing (which may panic).
func fixable(n ast.Node) bool {
	assign, ok := n.(*ast.AssignStmt)
	if !ok {
		if _, isInc := n.(*ast.IncDecStmt); isInc {
			return true
		}
		return false
	}
	pure := true
	ast.Inspect(assign.Rhs[0], func(node ast.Node) bool {
		switch node.(type) {
		case *ast.CallExpr, *ast.IndexExpr, *ast.TypeAssertExpr, *ast.FuncLit:
			pure = false
			return false
		case *ast.UnaryExpr:
			if node.(*ast.UnaryExpr).Op == token.ARROW {
				pure = false
				return false
			}
		}
		return true
	})
	return pure
}

// assignTarget resolves an assignment target to a tracked local, or
// nil when the target is blank, a field, an index, or not local.
func (p *Pass) assignTarget(e ast.Expr, locals map[*types.Var]bool) *types.Var {
	if e == nil {
		return nil
	}
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	var obj types.Object
	if d, ok := p.Pkg.Info.Defs[id]; ok {
		obj = d
	} else {
		obj = p.Pkg.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || !locals[v] {
		return nil
	}
	return v
}

// addUses marks every tracked local read inside n as live. Reads from
// inside function literals count: the closure may run later.
func (p *Pass) addUses(n ast.Node, live liveSet, locals map[*types.Var]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok {
			if v, ok := p.Pkg.Info.Uses[id].(*types.Var); ok && locals[v] {
				live[v] = true
			}
		}
		return true
	})
}

// collectLocals gathers the variables declared inside the body and the
// subset that escape flow analysis: address taken, captured by a
// closure, or referenced from defer/go statements (which run later).
func (p *Pass) collectLocals(body *ast.BlockStmt) (locals, escaped map[*types.Var]bool) {
	locals = map[*types.Var]bool{}
	escaped = map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := p.Pkg.Info.Defs[id].(*types.Var); ok && !v.IsField() &&
				v.Pos() >= body.Pos() && v.Pos() < body.End() {
				locals[v] = true
			}
		}
		return true
	})
	markUses := func(n ast.Node) {
		ast.Inspect(n, func(node ast.Node) bool {
			if id, ok := node.(*ast.Ident); ok {
				if v, ok := p.Pkg.Info.Uses[id].(*types.Var); ok && locals[v] {
					escaped[v] = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markUses(n.X)
			}
		case *ast.FuncLit:
			markUses(n.Body)
			return false
		case *ast.DeferStmt:
			markUses(n.Call)
		case *ast.GoStmt:
			markUses(n.Call)
		}
		return true
	})
	return locals, escaped
}
