package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyFixture clones a fixture package into a temp dir so -fix tests
// can rewrite files without touching the repository tree.
func copyFixture(t *testing.T, name string) string {
	t.Helper()
	src := filepath.Join("testdata", "src", name)
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// runSuite applies every analyzer to the package at dir, re-reading
// sources from disk (the shared loader memoizes by directory).
func runSuite(t *testing.T, dir string) []Diagnostic {
	t.Helper()
	ld := fixtureLoaderFor(t)
	ld.Invalidate(dir)
	pkg, err := ld.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	var diags []Diagnostic
	for _, a := range All() {
		diags = append(diags, RunAnalyzer(a, pkg)...)
	}
	SortDiagnostics(diags)
	return diags
}

// TestApplyFixesDeadstore applies the deadstore deletions to a copy of
// the deadbad fixture until convergence and checks idempotency: a final
// apply on the fixed tree changes nothing.
func TestApplyFixesDeadstore(t *testing.T) {
	dir := copyFixture(t, "deadbad")
	diags := runSuite(t, dir)
	if FixableCount(diags) == 0 {
		t.Fatal("deadbad fixture carries no fixable findings")
	}
	for round := 0; round < 8 && FixableCount(diags) > 0; round++ {
		res, err := ApplyFixes(diags, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Applied == 0 {
			break
		}
		diags = runSuite(t, dir)
	}
	if n := FixableCount(diags); n != 0 {
		t.Fatalf("%d fixable findings remain after convergence:\n%v", n, diags)
	}
	// The pure dead store must be gone; impure ones must survive.
	data, err := os.ReadFile(filepath.Join(dir, "deadbad.go"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if strings.Contains(text, "x = a + b") {
		t.Error("pure dead store x = a + b not deleted")
	}
	if n := strings.Count(text, "total++"); n != 1 {
		t.Errorf("dead increments remaining = %d, want 1 (DeadIncrement's deleted, DeadLastValue's kept)", n)
	}
	if !strings.Contains(text, "x := f()") {
		t.Error("impure dead store deleted; the call's side effects were observable")
	}
	// Idempotency: a second apply has nothing left to do.
	res, err := ApplyFixes(diags, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 {
		t.Errorf("apply on fixed tree applied %d fixes, want 0", res.Applied)
	}
}

// TestApplyFixesSuppress removes and rewrites stale directives.
func TestApplyFixesSuppress(t *testing.T) {
	dir := copyFixture(t, "suppressbad")
	diags := runSuite(t, dir)
	staleBefore := 0
	for _, d := range diags {
		if d.Analyzer == "suppress" {
			staleBefore++
			if len(d.Fixes) == 0 {
				t.Errorf("stale directive without a fix: %s", d)
			}
		}
	}
	if staleBefore == 0 {
		t.Fatal("no stale-suppression findings in suppressbad")
	}
	if _, err := ApplyFixes(diags, nil); err != nil {
		t.Fatal(err)
	}
	diags = runSuite(t, dir)
	for _, d := range diags {
		if d.Analyzer == "suppress" {
			t.Errorf("stale directive survived -fix: %s", d)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "suppressbad.go"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if strings.Contains(text, "floatcmp)") || strings.Contains(text, "nosuchcheck") || strings.Contains(text, "srted") {
		t.Errorf("stale names remain after fix:\n%s", text)
	}
	// The partially stale list keeps its valid half, so the comparison
	// it guards stays suppressed.
	if !strings.Contains(text, "//iguard:allow(floatcompare)") {
		t.Error("partially stale allow list not rewritten to its valid names")
	}
}

// TestApplyFixesOverlap drops the later of two overlapping fixes and
// reports it as skipped.
func TestApplyFixesOverlap(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "o.go")
	if err := os.WriteFile(file, []byte("package o\n\nvar V = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{Fixes: []SuggestedFix{{Message: "a", Edits: []TextEdit{{Filename: file, Start: 19, End: 20, NewText: "2"}}}}},
		{Fixes: []SuggestedFix{{Message: "b", Edits: []TextEdit{{Filename: file, Start: 19, End: 20, NewText: "3"}}}}},
	}
	res, err := ApplyFixes(diags, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Skipped != 1 {
		t.Fatalf("applied=%d skipped=%d, want 1/1", res.Applied, res.Skipped)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "var V = 2") {
		t.Errorf("first fix not applied: %s", data)
	}
}

// TestApplyFixesParseGuard refuses to write a fix that breaks the file.
func TestApplyFixesParseGuard(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.go")
	orig := []byte("package g\n\nvar W = 1\n")
	if err := os.WriteFile(file, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{Fixes: []SuggestedFix{{Message: "break it", Edits: []TextEdit{{Filename: file, Start: 0, End: 9, NewText: "packag g{"}}}}},
	}
	if _, err := ApplyFixes(diags, nil); err == nil {
		t.Fatal("fix producing invalid Go was applied")
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(orig) {
		t.Error("file modified despite failed validation")
	}
}
