package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the reproducibility contract of library code:
// every random draw comes from an explicitly seeded *rand.Rand, no code
// path consults the wall clock, and map iteration order never escapes.
// A stray rand.Intn or time.Now seed silently breaks bit-for-bit
// reproduction of the paper's tables, which every experiment in
// internal/experiments depends on.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid global math/rand functions, time.Now/time.Since, time-seeded " +
		"rand sources, and unordered map iteration in internal/ packages",
	LibraryOnly: true,
	Run:         runDeterminism,
}

// randConstructors are the math/rand names that do not touch the global
// RNG: constructing an explicitly seeded generator is the sanctioned
// pattern (mathx.NewRand wraps it).
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				p.checkDeterminismCall(n)
			case *ast.RangeStmt:
				p.checkMapRange(n)
			}
			return true
		})
	}
}

func (p *Pass) checkDeterminismCall(call *ast.CallExpr) {
	pkgPath, fn, ok := p.PkgFunc(call)
	if !ok {
		return
	}
	switch pkgPath {
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn] {
			p.Reportf(call.Pos(),
				"rand.%s draws from the shared global RNG; use an explicitly seeded *rand.Rand (mathx.NewRand) so results are reproducible", fn)
			return
		}
		// Only NewSource carries the seed; checking rand.New too would
		// double-report rand.New(rand.NewSource(time.Now().UnixNano())).
		if fn == "NewSource" && callsWallClock(p, call.Args) {
			p.Reportf(call.Pos(),
				"rand.NewSource seeded from the wall clock; derive the seed from configuration so runs are reproducible")
		}
	case "time":
		if fn == "Now" || fn == "Since" {
			p.Reportf(call.Pos(),
				"time.%s in library code breaks deterministic replay; thread timestamps through explicitly (packet timestamps, config)", fn)
		}
	}
}

// callsWallClock reports whether any of the expressions contains a
// time.Now or time.Since call (e.g. rand.NewSource(time.Now().UnixNano())).
func callsWallClock(p *Pass, exprs []ast.Expr) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if pkgPath, fn, ok := p.PkgFunc(call); ok && pkgPath == "time" && (fn == "Now" || fn == "Since") {
					found = true
					return false
				}
			}
			return !found
		})
	}
	return found
}

func (p *Pass) checkMapRange(rng *ast.RangeStmt) {
	t := p.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if p.Suppressed(rng.Pos(), "sorted") {
		return
	}
	p.Reportf(rng.Pos(),
		"map iteration order is nondeterministic; sort the keys first, or annotate with //iguard:sorted if the order cannot affect results")
}
