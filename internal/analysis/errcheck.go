package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck enforces error hygiene in library code: error returns are
// neither silently dropped (call used as a statement, or assigned to
// the blank identifier) nor re-raised as panics. Library errors flow to
// the caller; only cmd/ and examples/ may decide to abort the process.
//
// Deliberately out of scope: `defer f.Close()` (a DeferStmt, not an
// ExprStmt) — the idiomatic read-path cleanup — test files, which are
// never loaded, and writes to infallible writers (strings.Builder,
// bytes.Buffer, the hash.Hash family), whose Write methods are
// documented never to return an error.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc: "flag discarded error returns (statement calls, _ assignments) " +
		"and panic(err) in internal/ packages",
	LibraryOnly: true,
	Run:         runErrCheck,
}

func runErrCheck(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && p.returnsError(call) && !p.infallibleWrite(call) {
					p.Reportf(n.Pos(), "result of %s contains an error that is discarded; handle or return it", callName(call))
				}
			case *ast.AssignStmt:
				p.checkBlankErrorAssign(n)
			case *ast.CallExpr:
				p.checkPanicErr(n)
			}
			return true
		})
	}
}

// returnsError reports whether the call yields an error (alone or as a
// tuple component).
func (p *Pass) returnsError(call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// checkBlankErrorAssign flags `_ = f()` and `v, _ := g()` where the
// blank slot holds an error produced by a call. Non-call sources
// (comma-ok type assertions, map indexing, channel receives) are not
// discarded results and stay legal.
func (p *Pass) checkBlankErrorAssign(assign *ast.AssignStmt) {
	// Single multi-value call on the right: align LHS with the tuple.
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		call, isCall := assign.Rhs[0].(*ast.CallExpr)
		if !isCall {
			return
		}
		tuple, ok := p.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(assign.Lhs) {
			return
		}
		for i, lhs := range assign.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				p.Reportf(lhs.Pos(), "error result of %s assigned to _; handle or return it", exprName(call))
			}
		}
		return
	}
	for i, lhs := range assign.Lhs {
		if i >= len(assign.Rhs) {
			break
		}
		if _, isCall := assign.Rhs[i].(*ast.CallExpr); !isCall {
			continue
		}
		if isBlank(lhs) && isErrorType(p.TypeOf(assign.Rhs[i])) {
			p.Reportf(lhs.Pos(), "error value of %s assigned to _; handle or return it", exprName(assign.Rhs[i]))
		}
	}
}

// infallibleWrite reports whether the call is a write that is documented
// never to fail: a method on strings.Builder / bytes.Buffer / a hash
// implementation, or an fmt.Fprint* into a Builder or Buffer.
func (p *Pass) infallibleWrite(call *ast.CallExpr) bool {
	if pkgPath, fn, ok := p.PkgFunc(call); ok {
		if pkgPath == "fmt" && (fn == "Fprint" || fn == "Fprintf" || fn == "Fprintln") && len(call.Args) > 0 {
			return isInfallibleWriterType(p.TypeOf(call.Args[0]))
		}
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isInfallibleWriterType(p.TypeOf(sel.X))
}

// isInfallibleWriterType recognises strings.Builder, bytes.Buffer, and
// any named type from the hash package tree (hash.Hash32 etc. document
// "Write never returns an error").
func isInfallibleWriterType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg := named.Obj().Pkg().Path()
	name := named.Obj().Name()
	switch {
	case pkg == "strings" && name == "Builder":
		return true
	case pkg == "bytes" && name == "Buffer":
		return true
	case pkg == "hash" || strings.HasPrefix(pkg, "hash/"):
		return true
	}
	return false
}

// checkPanicErr flags panic(err): library code converts failures into
// returned errors, not process aborts.
func (p *Pass) checkPanicErr(call *ast.CallExpr) {
	if !p.IsBuiltin(call, "panic") || len(call.Args) != 1 {
		return
	}
	if isErrorType(p.TypeOf(call.Args[0])) {
		p.Reportf(call.Pos(), "panic(err) in library code; return the error to the caller instead")
	}
}

// isErrorType reports whether t is the error interface or a type that
// implements it (a concrete error implementation is still an error).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if types.Identical(t, errType) {
		return true
	}
	iface, _ := errType.Underlying().(*types.Interface)
	return iface != nil && types.Implements(t, iface)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callName renders a short name for the called function.
func callName(call *ast.CallExpr) string { return exprName(call) }

func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.CallExpr:
		return exprName(e.Fun) + "(…)"
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return exprName(e.X)
	default:
		return "call"
	}
}
