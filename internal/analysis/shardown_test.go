package analysis

import (
	"strings"
	"testing"
)

func shardownDiags(t *testing.T, src string) []Diagnostic {
	t.Helper()
	p := loadSnippet(t, src)
	return RunAnalyzer(Shardown, p.Pkg)
}

// TestShardownRelaxedModeEscapes: with no //iguard:owner root for the
// named owner, plain accesses are accepted everywhere, but the escape
// checks — sends of owned state, the package-level declaration, and
// stores into it — stay armed.
func TestShardownRelaxedModeEscapes(t *testing.T) {
	diags := shardownDiags(t, `package snippet

type worker struct {
	//iguard:ownedby(loop)
	buf []int
}

var parked *worker

func Use(w *worker) int {
	w.buf[0] = 1 // relaxed: no owner root, access accepted
	return w.buf[0]
}

func Leak(w *worker, ch chan *worker) {
	ch <- w    // send of owned state: armed even in relaxed mode
	parked = w // package-level store: armed even in relaxed mode
}
`)
	if len(diags) != 3 {
		t.Fatalf("findings = %d, want 3 escapes: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "loop") {
			t.Errorf("finding does not name the owner: %s", d.Message)
		}
	}
}

// TestShardownAllowDirective checks the standard escape hatch, which
// the serve runtime uses for its happens-before-justified final read.
func TestShardownAllowDirective(t *testing.T) {
	diags := shardownDiags(t, `package snippet

type worker struct {
	//iguard:ownedby(shard)
	total int
	in    chan int
}

//iguard:owner(shard)
func run(w *worker) {
	for v := range w.in {
		w.total += v
	}
}

func Drain(w *worker) int {
	close(w.in)
	return w.total //iguard:allow(shardown) read after close; channel drain orders the final write
}
`)
	if len(diags) != 0 {
		t.Fatalf("allow directive ignored: %v", diags)
	}
}

// TestShardownFindingNamesBothSides checks the message carries the
// field, its owner, and the offending function so the report is
// actionable without opening the source.
func TestShardownFindingNamesBothSides(t *testing.T) {
	diags := shardownDiags(t, `package snippet

type worker struct {
	//iguard:ownedby(shard)
	n  int
	in chan int
}

//iguard:owner(shard)
func run(w *worker) {
	for range w.in {
		w.n++
	}
}

func Poke(w *worker) {
	w.n = 0
}
`)
	if len(diags) != 1 {
		t.Fatalf("findings = %d, want 1: %v", len(diags), diags)
	}
	msg := diags[0].Message
	for _, part := range []string{"n", "ownedby(shard)", "Poke", "owner(shard)"} {
		if !strings.Contains(msg, part) {
			t.Errorf("message missing %q: %s", part, msg)
		}
	}
}
