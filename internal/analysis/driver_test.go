package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestDriverFindingsExit checks the text output path: findings print as
// file:line:col: [analyzer] message and the driver exits 1.
func TestDriverFindingsExit(t *testing.T) {
	var out, errb bytes.Buffer
	code := Execute([]string{"./testdata/src/errbad"}, &out, &errb)
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("findings = %d, want 4:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, "errbad.go:") || !strings.Contains(line, ": [errcheck] ") {
			t.Errorf("malformed finding line %q", line)
		}
		// file:line:col prefix with numeric positions.
		parts := strings.SplitN(line, ": [", 2)
		pos := strings.Split(parts[0], ":")
		if len(pos) < 3 {
			t.Errorf("finding %q lacks file:line:col", line)
		}
	}
}

// TestDriverJSON checks the -json output shape and that positions map
// to the real fixture lines.
func TestDriverJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := Execute([]string{"-json", "./testdata/src/printbad"}, &out, &errb)
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errb.String())
	}
	var findings []JSONFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings in JSON output")
	}
	seenPrint := false
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding %+v", f)
		}
		if f.Analyzer == "printcheck" {
			seenPrint = true
		}
	}
	if !seenPrint {
		t.Error("printcheck findings missing from JSON output")
	}
}

// TestDriverCleanExit checks the zero-findings path.
func TestDriverCleanExit(t *testing.T) {
	var out, errb bytes.Buffer
	code := Execute([]string{"./testdata/src/clean"}, &out, &errb)
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, ExitClean, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %s", out.String())
	}
}

// TestDriverDisableFlag checks per-analyzer disable flags.
func TestDriverDisableFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := Execute([]string{"-errcheck=false", "./testdata/src/errbad"}, &out, &errb)
	if code != ExitClean {
		t.Fatalf("exit = %d with errcheck disabled, want %d\n%s", code, ExitClean, out.String())
	}
	out.Reset()
	code = Execute([]string{"-printcheck=false", "-errcheck=false", "./testdata/src/printbad"}, &out, &errb)
	if code != ExitClean {
		t.Fatalf("exit = %d with printcheck+errcheck disabled, want %d\n%s", code, ExitClean, out.String())
	}
}

// TestDriverBadUsage checks flag errors exit 2.
func TestDriverBadUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Execute([]string{"-no-such-flag"}, &out, &errb); code != ExitError {
		t.Fatalf("exit = %d for unknown flag, want %d", code, ExitError)
	}
	if code := Execute([]string{"./no/such/dir"}, &out, &errb); code != ExitError {
		t.Fatalf("exit = %d for missing package, want %d", code, ExitError)
	}
}
