package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDriverFindingsExit checks the text output path: findings print as
// file:line:col: [analyzer] message and the driver exits 1.
func TestDriverFindingsExit(t *testing.T) {
	var out, errb bytes.Buffer
	code := Execute([]string{"./testdata/src/errbad"}, &out, &errb)
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("findings = %d, want 4:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, "errbad.go:") || !strings.Contains(line, ": [errcheck] ") {
			t.Errorf("malformed finding line %q", line)
		}
		// file:line:col prefix with numeric positions.
		parts := strings.SplitN(line, ": [", 2)
		pos := strings.Split(parts[0], ":")
		if len(pos) < 3 {
			t.Errorf("finding %q lacks file:line:col", line)
		}
	}
}

// TestDriverJSON checks the -json output shape and that positions map
// to the real fixture lines.
func TestDriverJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := Execute([]string{"-json", "./testdata/src/printbad"}, &out, &errb)
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errb.String())
	}
	var findings []JSONFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings in JSON output")
	}
	seenPrint := false
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding %+v", f)
		}
		if f.Analyzer == "printcheck" {
			seenPrint = true
		}
	}
	if !seenPrint {
		t.Error("printcheck findings missing from JSON output")
	}
}

// TestDriverCleanExit checks the zero-findings path.
func TestDriverCleanExit(t *testing.T) {
	var out, errb bytes.Buffer
	code := Execute([]string{"./testdata/src/clean"}, &out, &errb)
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, ExitClean, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %s", out.String())
	}
}

// TestDriverDisableFlag checks per-analyzer disable flags.
func TestDriverDisableFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := Execute([]string{"-errcheck=false", "./testdata/src/errbad"}, &out, &errb)
	if code != ExitClean {
		t.Fatalf("exit = %d with errcheck disabled, want %d\n%s", code, ExitClean, out.String())
	}
	out.Reset()
	code = Execute([]string{"-printcheck=false", "-errcheck=false", "./testdata/src/printbad"}, &out, &errb)
	if code != ExitClean {
		t.Fatalf("exit = %d with printcheck+errcheck disabled, want %d\n%s", code, ExitClean, out.String())
	}
}

// TestDriverSARIF checks the -sarif output: valid SARIF 2.1.0 with one
// rule per analyzer and one result per finding, relative forward-slash
// URIs.
func TestDriverSARIF(t *testing.T) {
	var out, errb bytes.Buffer
	code := Execute([]string{"-sarif", "./testdata/src/printbad"}, &out, &errb)
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errb.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output does not parse: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version = %q, schema = %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "iguard-vet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(All()) {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), len(All()))
	}
	if len(run.Results) == 0 {
		t.Fatal("no results in SARIF output")
	}
	for _, r := range run.Results {
		if r.Level != "error" || r.RuleID == "" {
			t.Errorf("result %+v lacks level/ruleId", r)
		}
		for _, loc := range r.Locations {
			uri := loc.PhysicalLocation.ArtifactLocation.URI
			if strings.Contains(uri, "\\") || filepath.IsAbs(uri) {
				t.Errorf("URI %q not a relative forward-slash path", uri)
			}
			if loc.PhysicalLocation.Region.StartLine <= 0 {
				t.Errorf("result %+v lacks a line", r)
			}
		}
	}
}

// TestDriverJSONSarifExclusive checks the two machine formats cannot be
// combined.
func TestDriverJSONSarifExclusive(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Execute([]string{"-json", "-sarif", "./testdata/src/clean"}, &out, &errb); code != ExitError {
		t.Fatalf("exit = %d for -json -sarif, want %d", code, ExitError)
	}
}

// TestDriverStableOutput pins byte-stable output across pattern order
// and overlap: duplicated or reordered patterns yield identical bytes.
func TestDriverStableOutput(t *testing.T) {
	runOnce := func(args ...string) string {
		var out, errb bytes.Buffer
		if code := Execute(args, &out, &errb); code != ExitFindings {
			t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errb.String())
		}
		return out.String()
	}
	forward := runOnce("./testdata/src/errbad", "./testdata/src/printbad")
	reversed := runOnce("./testdata/src/printbad", "./testdata/src/errbad")
	doubled := runOnce("./testdata/src/errbad", "./testdata/src/errbad", "./testdata/src/printbad")
	if forward != reversed {
		t.Errorf("output depends on pattern order:\n--- forward\n%s--- reversed\n%s", forward, reversed)
	}
	if forward != doubled {
		t.Errorf("duplicated pattern changes output:\n--- single\n%s--- doubled\n%s", forward, doubled)
	}
	jsonForward := runOnce("-json", "./testdata/src/errbad", "./testdata/src/printbad")
	jsonReversed := runOnce("-json", "./testdata/src/printbad", "./testdata/src/errbad")
	if jsonForward != jsonReversed {
		t.Error("-json output depends on pattern order")
	}
}

// TestDriverFix runs the -fix loop end to end in a throwaway module:
// the first run rewrites the tree and converges, the second finds a
// clean tree and changes nothing — the CI idempotency gate.
func TestDriverFix(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpfixmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package tmpfixmod

// Dead computes a value every path overwrites.
func Dead(a, b int) int {
	x := a
	y := x + 1
	x = a + b
	x = y
	//iguard:allow(nosuchanalyzer) stale waiver
	return x
}
`
	file := filepath.Join(dir, "m.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatal(err)
		}
	}()

	var out, errb bytes.Buffer
	if code := Execute([]string{"-fix", "./..."}, &out, &errb); code != ExitClean {
		t.Fatalf("first -fix run exit = %d, want %d\nstdout: %s\nstderr: %s", code, ExitClean, out.String(), errb.String())
	}
	fixed, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(fixed), "x = a + b") || strings.Contains(string(fixed), "nosuchanalyzer") {
		t.Fatalf("-fix left fixable findings in place:\n%s", fixed)
	}
	// Second run: tree already clean, no edits.
	out.Reset()
	errb.Reset()
	if code := Execute([]string{"-fix", "./..."}, &out, &errb); code != ExitClean {
		t.Fatalf("second -fix run exit = %d, want %d\nstderr: %s", code, ExitClean, errb.String())
	}
	again, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(fixed) {
		t.Error("-fix is not idempotent: second run changed the tree")
	}
}

// TestDriverBadUsage checks flag errors exit 2.
func TestDriverBadUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Execute([]string{"-no-such-flag"}, &out, &errb); code != ExitError {
		t.Fatalf("exit = %d for unknown flag, want %d", code, ExitError)
	}
	if code := Execute([]string{"./no/such/dir"}, &out, &errb); code != ExitError {
		t.Fatalf("exit = %d for missing package, want %d", code, ExitError)
	}
}
