// Suggested fixes and the -fix applier. Analyzers attach machine-
// applicable text edits to diagnostics; ApplyFixes stages every edit,
// validates that each rewritten file still parses, and only then
// writes anything — an all-or-nothing apply. The driver re-runs the
// analysis afterwards and fails if a second pass would change the tree
// again (idempotency), so `-fix` can gate CI.
package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
	"unicode"
)

// TextEdit replaces the byte range [Start, End) of Filename with
// NewText. Edits carry resolved offsets rather than token.Pos so they
// stay valid after the loader (and its FileSet) is gone.
type TextEdit struct {
	Filename string
	Start    int
	End      int
	NewText  string
}

// SuggestedFix is one machine-applicable resolution of a diagnostic.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// FixResult summarises one ApplyFixes run.
type FixResult struct {
	Applied int      // fixes applied
	Skipped int      // fixes dropped because their edits overlapped an earlier fix
	Files   []string // files rewritten, sorted
}

// ApplyFixes applies every suggested fix in diags to the files on
// disk. Edits are staged per file; a fix whose edits overlap an
// already-accepted fix is skipped (the next round picks it up). If any
// rewritten file fails to parse, nothing is written and an error is
// returned. sources may pre-supply file contents (nil means read from
// disk).
func ApplyFixes(diags []Diagnostic, sources map[string][]byte) (*FixResult, error) {
	perFile := map[string][]TextEdit{}
	res := &FixResult{}

	for _, d := range diags {
		for _, fix := range d.Fixes {
			if len(fix.Edits) == 0 {
				continue
			}
			ok := true
			for _, e := range fix.Edits {
				for _, prev := range perFile[e.Filename] {
					if e.Start < prev.End && prev.Start < e.End {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
			if !ok {
				res.Skipped++
				continue
			}
			for _, e := range fix.Edits {
				perFile[e.Filename] = append(perFile[e.Filename], e)
			}
			res.Applied++
		}
	}
	if len(perFile) == 0 {
		return res, nil
	}

	// Stage: rewrite each file in memory, highest-offset edits first so
	// earlier offsets stay valid.
	staged := map[string][]byte{}
	for file, edits := range perFile { //iguard:sorted staging order does not affect the result
		src, ok := sources[file]
		if !ok {
			var err error
			src, err = os.ReadFile(file)
			if err != nil {
				return nil, fmt.Errorf("analysis: reading %s for -fix: %w", file, err)
			}
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		out := append([]byte(nil), src...)
		for _, e := range edits {
			if e.Start < 0 || e.End > len(out) || e.Start > e.End {
				return nil, fmt.Errorf("analysis: edit out of range in %s", file)
			}
			out = append(out[:e.Start], append([]byte(e.NewText), out[e.End:]...)...)
		}
		staged[file] = out
		res.Files = append(res.Files, file)
	}
	sort.Strings(res.Files)

	// Validate every staged file before writing any.
	checkFset := token.NewFileSet()
	for _, file := range res.Files {
		if _, err := parser.ParseFile(checkFset, file, staged[file], parser.ParseComments); err != nil {
			return nil, fmt.Errorf("analysis: fix would break %s: %w", file, err)
		}
	}
	for _, file := range res.Files {
		info, err := os.Stat(file)
		mode := os.FileMode(0o644)
		if err == nil {
			mode = info.Mode().Perm()
		}
		if err := os.WriteFile(file, staged[file], mode); err != nil {
			return nil, fmt.Errorf("analysis: writing %s: %w", file, err)
		}
	}
	return res, nil
}

// FixableCount returns how many diagnostics carry at least one fix.
func FixableCount(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if len(d.Fixes) > 0 {
			n++
		}
	}
	return n
}

// deleteLinesFix builds a fix that removes the whole source lines
// spanned by [pos, end), provided the node is alone on them (only
// whitespace before it, only whitespace or a trailing line comment
// after it). Returns nil when the surrounding line content makes a
// clean deletion impossible.
func (p *Pass) deleteLinesFix(message string, pos, end token.Pos) *SuggestedFix {
	tf := p.Pkg.Fset.File(pos)
	if tf == nil {
		return nil
	}
	src, ok := p.Pkg.Sources[tf.Name()]
	if !ok {
		return nil
	}
	startLine := tf.Line(pos)
	endLine := tf.Line(end)
	lineStart := tf.Offset(tf.LineStart(startLine))
	var lineEnd int
	if endLine < tf.LineCount() {
		lineEnd = tf.Offset(tf.LineStart(endLine + 1))
	} else {
		lineEnd = tf.Size()
	}
	nodeStart, nodeEnd := tf.Offset(pos), tf.Offset(end)
	if !isBlankText(string(src[lineStart:nodeStart])) {
		return nil
	}
	tail := strings.TrimSpace(string(src[nodeEnd:lineEnd]))
	if tail != "" && !strings.HasPrefix(tail, "//") {
		return nil
	}
	return &SuggestedFix{
		Message: message,
		Edits:   []TextEdit{{Filename: tf.Name(), Start: lineStart, End: lineEnd, NewText: ""}},
	}
}

func isBlankText(s string) bool {
	for _, r := range s {
		if !unicode.IsSpace(r) {
			return false
		}
	}
	return true
}
