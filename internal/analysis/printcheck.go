package analysis

import (
	"go/ast"
)

// PrintCheck keeps library code silent: internal/ packages never write
// to stdout. Experiment tables and progress logging belong to cmd/ and
// examples/, where output is the point; a library that prints corrupts
// machine-readable output (JSON mode, CSV exports) and cannot be
// embedded.
var PrintCheck = &Analyzer{
	Name:        "printcheck",
	Doc:         "forbid fmt.Print/Printf/Println and the println/print builtins in internal/ packages",
	LibraryOnly: true,
	Run:         runPrintCheck,
}

var fmtPrinters = map[string]bool{
	"Print":   true,
	"Printf":  true,
	"Println": true,
}

func runPrintCheck(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, fn, ok := p.PkgFunc(call); ok && pkgPath == "fmt" && fmtPrinters[fn] {
				p.Reportf(call.Pos(), "fmt.%s writes to stdout from library code; return the string or take an io.Writer", fn)
				return true
			}
			for _, builtin := range []string{"println", "print"} {
				if p.IsBuiltin(call, builtin) {
					p.Reportf(call.Pos(), "builtin %s writes to stderr from library code; return the string or take an io.Writer", builtin)
				}
			}
			return true
		})
	}
}
