// Package-level call graph over the loader's packages. The graph is
// the substrate of the interprocedural analyzers (hotpath, shardown):
// it indexes every function declaration of a root package and its
// transitive module-local dependencies — all sharing one
// token.FileSet, so a chain that crosses package boundaries still
// renders positions — and classifies call sites into static edges
// (named functions, methods, method expressions), dynamic edges
// (interface dispatch, function values), builtins, conversions, and
// function literals.
//
// Soundness limits, by construction: dynamic dispatch resolves to the
// interface method, not to implementations; calls made through
// reflect, assembly, or linkname are invisible; a method value that
// escapes may run on any goroutine even though SyncReachable treats
// its body as same-goroutine. DESIGN.md §7.2 discusses the
// consequences for each analyzer.

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FuncNode is one function whose declaration (and body) the graph
// knows: a FuncDecl of the root package or of a module-local
// dependency.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// HasDirective reports whether the function's doc comment carries the
// named //iguard: directive (e.g. "hotpath", "coldpath").
func (n *FuncNode) HasDirective(name string) bool {
	return hasFuncDirective(n.Decl, name)
}

// hasFuncDirective scans a declaration's doc comment for a directive.
func hasFuncDirective(decl *ast.FuncDecl, name string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if d, ok := directiveOf(c); ok && d == name {
			return true
		}
	}
	return false
}

// funcDirectiveArg returns the argument of a parenthesised directive
// ("owner(shard)" → "shard") on the declaration's doc comment.
func funcDirectiveArg(decl *ast.FuncDecl, name string) (string, bool) {
	if decl == nil || decl.Doc == nil {
		return "", false
	}
	for _, c := range decl.Doc.List {
		if d, ok := directiveOf(c); ok {
			if arg, ok := directiveArg(d, name); ok {
				return arg, true
			}
		}
	}
	return "", false
}

// directiveArg parses "name(arg)" into arg. ok is false for a missing
// or empty argument.
func directiveArg(d, name string) (string, bool) {
	rest, ok := strings.CutPrefix(d, name+"(")
	if !ok || !strings.HasSuffix(rest, ")") {
		return "", false
	}
	arg := strings.TrimSpace(strings.TrimSuffix(rest, ")"))
	return arg, arg != ""
}

// CallGraph indexes the function declarations reachable from a root
// package through module-local imports.
type CallGraph struct {
	root  *Package
	nodes map[*types.Func]*FuncNode
	// Pkgs lists the root and its transitive module-local dependencies
	// in a deterministic (preorder, import-path sorted) order.
	Pkgs []*Package
}

// BuildCallGraph indexes root and every module-local package it
// transitively imports.
func BuildCallGraph(root *Package) *CallGraph {
	g := &CallGraph{root: root, nodes: map[*types.Func]*FuncNode{}}
	seen := map[string]bool{}
	var visit func(p *Package)
	visit = func(p *Package) {
		if p == nil || seen[p.ImportPath] {
			return
		}
		seen[p.ImportPath] = true
		g.Pkgs = append(g.Pkgs, p)
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					g.nodes[obj] = &FuncNode{Obj: obj, Decl: fd, Pkg: p}
				}
			}
		}
		for _, path := range sortedKeys(p.Deps) {
			visit(p.Deps[path])
		}
	}
	visit(root)
	return g
}

// NodeOf returns the graph node for fn, or nil when fn's body is not
// in a loaded module package (standard library, interface methods).
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn]
}

// TargetKind classifies what a call expression invokes.
type TargetKind int

// The call-site classifications.
const (
	// TargetUnknown is a callee the resolver cannot classify.
	TargetUnknown TargetKind = iota
	// TargetStatic is a direct call of a named function, method, or
	// method expression; Callee is set (its body may still be outside
	// the module — consult NodeOf).
	TargetStatic
	// TargetInterface is dynamic dispatch through an interface method;
	// Callee is the interface method, not an implementation.
	TargetInterface
	// TargetFuncValue is a call through a function-typed variable,
	// field, or parameter.
	TargetFuncValue
	// TargetBuiltin is a predeclared builtin; Builtin is its name.
	TargetBuiltin
	// TargetConversion is a type conversion, not a call.
	TargetConversion
	// TargetFuncLit is an immediately invoked function literal; Lit is
	// the literal.
	TargetFuncLit
)

// Target is one resolved call site.
type Target struct {
	Kind    TargetKind
	Callee  *types.Func
	Builtin string
	Lit     *ast.FuncLit
}

// ResolveCall classifies one call expression of pkg. pkg must be the
// package whose Info covers the expression (the graph root or one of
// its dependencies).
func (g *CallGraph) ResolveCall(pkg *Package, call *ast.CallExpr) Target {
	fun := ast.Unparen(call.Fun)
	// Unwrap generic instantiations f[T](…); a map/slice index of a
	// function-typed element lands on the container variable, which
	// classifies as a function value just the same.
	for {
		if ix, ok := fun.(*ast.IndexExpr); ok {
			fun = ast.Unparen(ix.X)
			continue
		}
		if ix, ok := fun.(*ast.IndexListExpr); ok {
			fun = ast.Unparen(ix.X)
			continue
		}
		break
	}
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return Target{Kind: TargetConversion}
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fn].(type) {
		case *types.Builtin:
			return Target{Kind: TargetBuiltin, Builtin: obj.Name()}
		case *types.Func:
			return Target{Kind: TargetStatic, Callee: obj}
		case *types.Var:
			return Target{Kind: TargetFuncValue}
		}
		return Target{Kind: TargetUnknown}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fn]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				callee, _ := sel.Obj().(*types.Func)
				if sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
					return Target{Kind: TargetInterface, Callee: callee}
				}
				return Target{Kind: TargetStatic, Callee: callee}
			case types.FieldVal:
				return Target{Kind: TargetFuncValue}
			}
			return Target{Kind: TargetUnknown}
		}
		// No selection: a package-qualified name (pkg.Fn or pkg.Var).
		switch obj := pkg.Info.Uses[fn.Sel].(type) {
		case *types.Func:
			return Target{Kind: TargetStatic, Callee: obj}
		case *types.Var:
			return Target{Kind: TargetFuncValue}
		}
		return Target{Kind: TargetUnknown}
	case *ast.FuncLit:
		return Target{Kind: TargetFuncLit, Lit: fn}
	}
	return Target{Kind: TargetUnknown}
}

// ReachSet is the result of a reachability query: the functions whose
// declarations are reachable, plus the function literals whose bodies
// were traversed on the same goroutine.
type ReachSet struct {
	Funcs map[*types.Func]bool
	Lits  map[*ast.FuncLit]bool
}

// Contains reports whether fn is in the set.
func (r *ReachSet) Contains(fn *types.Func) bool { return r.Funcs[fn] }

// SyncReachable computes the functions reachable from the roots
// through same-goroutine edges: direct calls, deferred calls, method
// expressions, method values (conservatively assumed to be invoked on
// the same goroutine), and function literals — except bodies spawned
// by a go statement, which start a new goroutine and are therefore
// excluded. Interface dispatch and function values contribute no
// edges (their implementations are unknown); recursion and mutual
// recursion terminate through the visited set.
func (g *CallGraph) SyncReachable(roots []*FuncNode) *ReachSet {
	out := &ReachSet{Funcs: map[*types.Func]bool{}, Lits: map[*ast.FuncLit]bool{}}
	var queue []*FuncNode
	for _, r := range roots {
		if r != nil && !out.Funcs[r.Obj] {
			out.Funcs[r.Obj] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.Decl.Body == nil {
			continue
		}
		g.syncWalk(n.Pkg, n.Decl.Body, out, &queue)
	}
	return out
}

// syncWalk adds the same-goroutine edges found in one body to the
// reach set, queueing newly reached module functions.
func (g *CallGraph) syncWalk(pkg *Package, body ast.Node, out *ReachSet, queue *[]*FuncNode) {
	// Function literals launched by a go statement run on a fresh
	// goroutine: their bodies are excluded (the spawn's arguments are
	// still evaluated here and remain included).
	spawnedLits := map[*ast.FuncLit]bool{}
	spawnedCalls := map[*ast.CallExpr]bool{}
	spawnedFuns := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			spawnedCalls[gs.Call] = true
			fun := ast.Unparen(gs.Call.Fun)
			spawnedFuns[fun] = true
			if lit, ok := fun.(*ast.FuncLit); ok {
				spawnedLits[lit] = true
			}
		}
		return true
	})
	enqueue := func(fn *types.Func) {
		if fn == nil || out.Funcs[fn] {
			return
		}
		node := g.NodeOf(fn)
		if node == nil {
			return
		}
		out.Funcs[fn] = true
		*queue = append(*queue, node)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if spawnedLits[n] {
				return false
			}
			out.Lits[n] = true
			return true
		case *ast.CallExpr:
			if spawnedCalls[n] {
				// A spawned call contributes no same-goroutine edge; its
				// arguments (visited below) still do.
				return true
			}
			if t := g.ResolveCall(pkg, n); t.Kind == TargetStatic {
				enqueue(t.Callee)
			}
		case *ast.SelectorExpr:
			// Method values and method expressions may be invoked later;
			// treat them as same-goroutine edges (conservative — see the
			// package comment for the escape caveat) unless a go statement
			// is what invokes them.
			if spawnedFuns[n] {
				return true
			}
			if sel, ok := pkg.Info.Selections[n]; ok && sel.Kind() != types.FieldVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					enqueue(fn)
				}
			}
		}
		return true
	})
}
