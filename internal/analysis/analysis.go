// Package analysis implements iguard-vet: a stdlib-only static-analysis
// framework (go/ast, go/parser, go/types, go/token — no golang.org/x/tools)
// that enforces the project invariants the iGuard reproduction depends on
// but which ordinary `go vet` cannot see:
//
//   - determinism: library code (internal/…) must not consult the shared
//     global RNG, wall-clock time, or unordered map iteration — every
//     stage of the pipeline (autoencoder training, forest growth, leaf
//     distillation, rule compilation) must be bit-for-bit reproducible
//     from its explicit seed.
//   - errcheck: library code must not discard error returns or panic
//     with an error value; errors flow to the caller.
//   - floatcompare: exact ==/!= between floating-point operands is
//     almost always a latent bug in threshold/score code.
//   - printcheck: library code never writes to stdout; output belongs
//     to cmd/ and examples/.
//
// Findings can be suppressed per line with a directive comment, either
// on the offending line or on the line directly above it:
//
//	//iguard:sorted         — map iteration whose order cannot escape
//	//iguard:allow(name)    — generic per-analyzer escape hatch
//
// The driver lives in cmd/iguard-vet.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string

	// Fixes holds machine-applicable resolutions, applied by -fix.
	Fixes []SuggestedFix
}

// String renders the canonical "file:line:col: [analyzer] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// LibraryOnly restricts the analyzer to internal/… packages; cmd/,
	// examples/ and the root package are exempt.
	LibraryOnly bool
	Run         func(*Pass)
}

// All returns the full suite in reporting order: the syntactic
// analyzers of PR 1 first, then the CFG/dataflow analyzers, then the
// directive hygiene check.
func All() []*Analyzer {
	return []*Analyzer{Determinism, ErrCheck, FloatCompare, PrintCheck,
		Deadstore, Lockcheck, Seedflow, Hotpath, Shardown, Suppress}
}

// Pass hands one package to one analyzer and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// RunAnalyzer applies one analyzer to one package, honouring suppression
// directives, and returns the surviving diagnostics.
func RunAnalyzer(a *Analyzer, pkg *Package) []Diagnostic {
	var out []Diagnostic
	pass := &Pass{Analyzer: a, Pkg: pkg, report: func(d Diagnostic) { out = append(out, d) }}
	a.Run(pass)
	return out
}

// Reportf records a finding unless an //iguard:allow(<analyzer>) directive
// covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportFix(pos, nil, format, args...)
}

// ReportFix is Reportf with attached suggested fixes.
func (p *Pass) ReportFix(pos token.Pos, fixes []SuggestedFix, format string, args ...any) {
	if p.Suppressed(pos, "allow("+p.Analyzer.Name+")") {
		return
	}
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    fixes,
	})
}

// Suppressed reports whether the named directive appears on the line of
// pos or on the line directly above it. An allow directive may name
// several analyzers — //iguard:allow(errcheck,printcheck) — and
// matches when the queried analyzer is among them.
func (p *Pass) Suppressed(pos token.Pos, directive string) bool {
	position := p.Pkg.Fset.Position(pos)
	lines := p.directiveLines(position.Filename)
	for _, d := range lines[position.Line] {
		if directiveMatches(d, directive) {
			return true
		}
	}
	for _, d := range lines[position.Line-1] {
		if directiveMatches(d, directive) {
			return true
		}
	}
	return false
}

// directiveLines finds the directive table for a file, searching the
// analyzed package first and then its module-local dependency closure —
// interprocedural analyzers (hotpath) report findings positioned in
// dependency files, and an //iguard:allow there must still be honoured.
func (p *Pass) directiveLines(filename string) map[int][]string {
	if lines, ok := p.Pkg.directives[filename]; ok {
		return lines
	}
	seen := map[*Package]bool{p.Pkg: true}
	queue := []*Package{p.Pkg}
	for len(queue) > 0 {
		pkg := queue[0]
		queue = queue[1:]
		for _, path := range sortedKeys(pkg.Deps) {
			dep := pkg.Deps[path]
			if dep == nil || seen[dep] {
				continue
			}
			seen[dep] = true
			if lines, ok := dep.directives[filename]; ok {
				return lines
			}
			queue = append(queue, dep)
		}
	}
	return nil
}

// directiveMatches reports whether the directive d satisfies the query
// ("sorted", or "allow(<name>)" for a single analyzer name).
func directiveMatches(d, query string) bool {
	if d == query {
		return true
	}
	dNames, dOK := allowNames(d)
	qNames, qOK := allowNames(query)
	if !dOK || !qOK || len(qNames) != 1 {
		return false
	}
	for _, n := range dNames {
		if n == qNames[0] {
			return true
		}
	}
	return false
}

// allowNames parses "allow(a,b,…)" into its analyzer names.
func allowNames(d string) ([]string, bool) {
	rest, ok := strings.CutPrefix(d, "allow(")
	if !ok || !strings.HasSuffix(rest, ")") {
		return nil, false
	}
	rest = strings.TrimSuffix(rest, ")")
	var names []string
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// TypeOf returns the type of an expression, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// PkgFunc resolves a call of the form pkg.Fn where pkg is an imported
// package identifier, returning the package import path and function
// name. ok is false for method calls, locals, and non-selector calls.
func (p *Pass) PkgFunc(call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// IsBuiltin reports whether the call invokes the named predeclared
// builtin (panic, println, …) rather than a shadowing local.
func (p *Pass) IsBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := p.Pkg.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// scanDirectives extracts //iguard: directive comments from a file,
// keyed by the line the comment sits on. The first field after the
// "iguard:" prefix is the directive; everything after it is free-form
// reason text.
func scanDirectives(fset *token.FileSet, f *ast.File) map[int][]string {
	out := map[int][]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := directiveOf(c); ok {
				line := fset.Position(c.Pos()).Line
				out[line] = append(out[line], d)
			}
		}
	}
	return out
}

// directiveOf returns the directive carried by a comment, if any.
func directiveOf(c *ast.Comment) (string, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	if !strings.HasPrefix(text, "iguard:") {
		return "", false
	}
	fields := strings.Fields(strings.TrimPrefix(text, "iguard:"))
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// SortDiagnostics orders findings by file, line, column, then analyzer,
// so driver output is stable across runs.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
