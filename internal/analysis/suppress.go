package analysis

import (
	"go/ast"
	"strings"
)

// Suppress keeps the escape hatches honest: an //iguard: directive
// whose name matches no analyzer in the suite suppresses nothing and
// silently rots — typically a typo, or a waiver for an analyzer that
// was since renamed. Stale directives are reported with a suggested
// fix that removes them (or, for a partially stale
// //iguard:allow(a,b) list, rewrites the list to its valid names).
var Suppress = &Analyzer{
	Name: "suppress",
	Doc: "report //iguard: directives that name no known analyzer, " +
		"with -fix removals",
	LibraryOnly: false,
}

// Run is attached in an init function: runSuppress consults All(),
// which lists Suppress itself, and Go rejects that initialization
// cycle in a composite literal.
func init() { Suppress.Run = runSuppress }

func runSuppress(p *Pass) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, f := range p.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				p.checkDirective(c, known)
			}
		}
	}
}

func (p *Pass) checkDirective(c *ast.Comment, known map[string]bool) {
	d, ok := directiveOf(c)
	if !ok {
		return
	}
	if d == "sorted" || d == "hotpath" || d == "coldpath" {
		return
	}
	// Ownership annotations carry a mandatory owner argument; an empty
	// one (owner(), ownedby()) falls through and is reported stale.
	if _, ok := directiveArg(d, "owner"); ok {
		return
	}
	if _, ok := directiveArg(d, "ownedby"); ok {
		return
	}
	names, isAllow := allowNames(d)
	if !isAllow {
		p.ReportFix(c.Pos(), p.removeDirectiveFixes(c, nil),
			"stale suppression: %q is not an iguard-vet directive (use sorted or allow(<analyzer>))", d)
		return
	}
	var valid, stale []string
	for _, n := range names {
		if known[n] {
			valid = append(valid, n)
		} else {
			stale = append(stale, n)
		}
	}
	if len(stale) == 0 {
		return
	}
	p.ReportFix(c.Pos(), p.removeDirectiveFixes(c, valid),
		"stale suppression: no analyzer named %s", strings.Join(stale, ", "))
}

// removeDirectiveFixes builds the fix for a stale directive comment:
// rewrite the allow list to its valid names, or — when nothing valid
// remains — delete the comment (the whole line when it stands alone).
func (p *Pass) removeDirectiveFixes(c *ast.Comment, validNames []string) []SuggestedFix {
	tf := p.Pkg.Fset.File(c.Pos())
	if tf == nil {
		return nil
	}
	if len(validNames) > 0 {
		fields := strings.Fields(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "iguard:"))
		reason := ""
		if len(fields) > 1 {
			reason = " " + strings.Join(fields[1:], " ")
		}
		return []SuggestedFix{{
			Message: "rewrite directive to its valid analyzer names",
			Edits: []TextEdit{{
				Filename: tf.Name(),
				Start:    tf.Offset(c.Pos()),
				End:      tf.Offset(c.End()),
				NewText:  "//iguard:allow(" + strings.Join(validNames, ",") + ")" + reason,
			}},
		}}
	}
	if fix := p.deleteLinesFix("delete stale suppression directive", c.Pos(), c.End()); fix != nil {
		return []SuggestedFix{*fix}
	}
	// Trailing comment: delete it together with the spaces before it.
	src, ok := p.Pkg.Sources[tf.Name()]
	if !ok {
		return nil
	}
	start := tf.Offset(c.Pos())
	for start > 0 && (src[start-1] == ' ' || src[start-1] == '\t') {
		start--
	}
	return []SuggestedFix{{
		Message: "delete stale suppression directive",
		Edits:   []TextEdit{{Filename: tf.Name(), Start: start, End: tf.Offset(c.End()), NewText: ""}},
	}}
}
