// SARIF 2.1.0 output (-sarif): the interchange format CI code-scanning
// services ingest. One run, one rule per analyzer, one result per
// diagnostic; file URIs are emitted relative to the working directory
// so reports are stable across checkouts.
package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

const sarifSchema = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// ToolRule is SARIF rule metadata for one analyzer of a tool, used by
// drivers outside this package (iguard-p4lint) that reuse the SARIF
// writer with their own analyzer suite.
type ToolRule struct {
	ID  string
	Doc string
}

// WriteSARIF renders the iguard-vet diagnostics as a SARIF 2.1.0 log.
// Paths are made relative to base and use forward slashes.
func WriteSARIF(w io.Writer, base string, diags []Diagnostic) error {
	rules := make([]ToolRule, 0, len(All()))
	for _, a := range All() {
		rules = append(rules, ToolRule{ID: a.Name, Doc: a.Doc})
	}
	return WriteSARIFTool(w, base, "iguard-vet", rules, diags)
}

// WriteSARIFTool renders diagnostics as a SARIF 2.1.0 log under an
// arbitrary tool name and rule set.
func WriteSARIFTool(w io.Writer, base, tool string, toolRules []ToolRule, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(toolRules))
	for _, r := range toolRules {
		rules = append(rules, sarifRule{ID: r.ID, ShortDescription: sarifMessage{Text: r.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI: filepath.ToSlash(relPath(base, d.Pos.Filename)),
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: tool, Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
