package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hotpathDiags runs only the hotpath analyzer over a snippet.
func hotpathDiags(t *testing.T, src string) []Diagnostic {
	t.Helper()
	p := loadSnippet(t, src)
	return RunAnalyzer(Hotpath, p.Pkg)
}

// TestHotpathChainMessage checks that a finding deep in the call tree
// renders the full root→sink chain with positions.
func TestHotpathChainMessage(t *testing.T) {
	diags := hotpathDiags(t, `package snippet

//iguard:hotpath
func Root(n int) int { return mid(n) }

func mid(n int) int { return leaf(n) }

func leaf(n int) int {
	xs := make([]int, n)
	return len(xs)
}
`)
	if len(diags) != 1 {
		t.Fatalf("findings = %d, want 1: %v", len(diags), diags)
	}
	msg := diags[0].Message
	for _, part := range []string{"Root (snippet.go:", "mid (snippet.go:", "leaf (snippet.go:", " → "} {
		if !strings.Contains(msg, part) {
			t.Errorf("chain message missing %q: %s", part, msg)
		}
	}
}

// TestHotpathDepthLimit checks the bounded-inlining cutoff: a chain
// deeper than maxHotpathDepth reports at the call that crosses the
// bound instead of descending forever.
func TestHotpathDepthLimit(t *testing.T) {
	var b strings.Builder
	b.WriteString("package snippet\n\n//iguard:hotpath\nfunc Root(n int) int { return f0(n) }\n")
	for i := 0; i <= maxHotpathDepth; i++ {
		fmt.Fprintf(&b, "func f%d(n int) int { return f%d(n) }\n", i, i+1)
	}
	fmt.Fprintf(&b, "func f%d(n int) int { return n }\n", maxHotpathDepth+1)
	diags := RunAnalyzer(Hotpath, loadSnippet(t, b.String()).Pkg)
	if len(diags) != 1 {
		t.Fatalf("findings = %d, want 1 depth report: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "exceeds the hot-path inlining depth") {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}
}

// TestHotpathColdpathArgsStillChecked: a coldpath call is a cut point
// for the callee's body, but the allocation the *call site* performs
// (boxing an argument) still belongs to the hot function.
func TestHotpathColdpathArgsStillChecked(t *testing.T) {
	diags := hotpathDiags(t, `package snippet

//iguard:coldpath diagnostics
func record(v any) { _ = v }

//iguard:hotpath
func Root(n int) {
	record(n)
}
`)
	if len(diags) != 1 {
		t.Fatalf("findings = %d, want 1 boxing report: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "boxes into interface") {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}
}

// TestHotpathAllowDirective checks the per-line escape hatch works for
// hotpath findings like for every other analyzer.
func TestHotpathAllowDirective(t *testing.T) {
	diags := hotpathDiags(t, `package snippet

//iguard:hotpath
func Root(n int) []int {
	return make([]int, n) //iguard:allow(hotpath) one-time setup, measured
}
`)
	if len(diags) != 0 {
		t.Fatalf("allow directive ignored: %v", diags)
	}
}

// TestHotpathPlantedAllocation is the acceptance check for the
// interprocedural walk over the real tree: a leaked allocation planted
// inside ProcessPacket's call tree (in a scratch copy of the module)
// must be caught, attributed to the ProcessPacket root, and reported
// with the full call chain.
func TestHotpathPlantedAllocation(t *testing.T) {
	dir := t.TempDir()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	copyFile := func(rel string) {
		data, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			t.Fatal(err)
		}
		dst := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	copyFile("go.mod")
	for _, pkg := range []string{"internal/mathx", "internal/netpkt", "internal/features", "internal/rules", "internal/switchsim"} {
		entries, err := os.ReadDir(filepath.Join(root, pkg))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			copyFile(filepath.Join(pkg, name))
		}
	}

	// Plant the leak at the top of classifyPL, two hops below the
	// ProcessPacket root via the brown path.
	pipeline := filepath.Join(dir, "internal/switchsim/pipeline.go")
	src, err := os.ReadFile(pipeline)
	if err != nil {
		t.Fatal(err)
	}
	marker := "func (sw *Switch) classifyPL(p *netpkt.Packet) int {"
	if !strings.Contains(string(src), marker) {
		t.Fatalf("classifyPL marker not found in %s", pipeline)
	}
	planted := strings.Replace(string(src), marker,
		marker+"\n\tleak := make([]float64, 1)\n\t_ = leak", 1)
	if err := os.WriteFile(pipeline, []byte(planted), 0o644); err != nil {
		t.Fatal(err)
	}

	enabled := map[string]*bool{}
	for _, a := range All() {
		on := a.Name == "hotpath"
		enabled[a.Name] = &on
	}
	diags, err := Run(dir, []string{"./internal/switchsim"}, enabled)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("planted allocation not caught")
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "make allocates") &&
			strings.Contains(d.Message, "ProcessPacket (pipeline.go:") &&
			strings.Contains(d.Message, "classifyPL (pipeline.go:") {
			found = true
		}
	}
	if !found {
		t.Errorf("no finding carries the ProcessPacket→classifyPL chain: %v", diags)
	}
}

// TestHotpathHoistFix checks the one machine-applicable fix: a
// loop-invariant make is hoisted above the loop, and the post-fix tree
// converges (the finding remains — the make still allocates once — but
// no longer carries a fix).
func TestHotpathHoistFix(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "snippet.go")
	src := `package snippet

//iguard:hotpath
func Smooth(rows [][]float64, dim int) float64 {
	total := 0.0
	for _, r := range rows {
		scratch := make([]float64, dim)
		copy(scratch, r)
		total += scratch[0]
	}
	return total
}
`
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	ld := fixtureLoaderFor(t)
	pkg, err := ld.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzer(Hotpath, pkg)
	if len(diags) != 1 || len(diags[0].Fixes) == 0 {
		t.Fatalf("want 1 fixable finding, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "hoistable") {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}
	res, err := ApplyFixes(diags, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("applied = %d, want 1", res.Applied)
	}
	fixed, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	makeIdx := strings.Index(string(fixed), "scratch := make([]float64, dim)")
	forIdx := strings.Index(string(fixed), "for _, r := range rows {")
	if makeIdx < 0 || forIdx < 0 || makeIdx > forIdx {
		t.Fatalf("make not hoisted above the loop:\n%s", fixed)
	}
	ld.Invalidate(dir)
	pkg, err = ld.LoadDir(dir)
	if err != nil {
		t.Fatalf("post-fix tree does not type-check: %v", err)
	}
	diags = RunAnalyzer(Hotpath, pkg)
	if len(diags) != 1 {
		t.Fatalf("post-fix findings = %d, want the remaining (unfixable) make: %v", len(diags), diags)
	}
	if FixableCount(diags) != 0 {
		t.Fatalf("post-fix finding still fixable; -fix would not converge: %v", diags)
	}
}
