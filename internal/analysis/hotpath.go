// The hotpath analyzer: interprocedural enforcement of the
// allocation-free contract on the packet hot path. PR 5 pinned
// ProcessPacket at 0 allocs/op with runtime testing.AllocsPerRun
// tests; those catch regressions only on the paths the tests happen to
// exercise, and only after the fact. This analyzer proves the property
// over every path at vet time: a function annotated //iguard:hotpath
// must be allocation-free, and so must everything it reaches through
// the call graph, up to a bounded inlining depth and explicit
// //iguard:coldpath cut points.
//
// Trust model. An annotated //iguard:hotpath callee is a verified
// boundary: it is checked as its own root (in its own package), so the
// caller's traversal stops there. An //iguard:coldpath callee is an
// audited exemption: the function is declared outside the hot-path
// allocation contract — either it runs rarely (per flow, per control
// action, not per packet) or it is an intentional observer boundary —
// and the directive's reason text says which. Everything else with a
// body in the module is inlined and checked; calls whose body the
// analyzer cannot see (standard library outside a small allowlist,
// interface dispatch, function values) are findings.

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotpath is the interprocedural allocation-freedom analyzer.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "functions marked //iguard:hotpath, and their call trees up to " +
		"//iguard:coldpath cut points, must be allocation-free",
	LibraryOnly: false,
	Run:         runHotpath,
}

// maxHotpathDepth bounds the inlining depth from an annotated root.
// The real packet path is ~5 deep (ProcessPacket → bluePath →
// classifyFL → VectorInto → math.Sqrt); a chain this long is a design
// smell, and the bound keeps traversal linear in practice.
const maxHotpathDepth = 12

func runHotpath(p *Pass) {
	var g *CallGraph
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasFuncDirective(fd, "hotpath") {
				continue
			}
			obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if g == nil {
				g = BuildCallGraph(p.Pkg)
			}
			h := &hotChecker{p: p, g: g, visited: map[*types.Func]bool{obj: true}}
			h.chain = []hotStep{{name: fd.Name.Name, pos: fd.Pos()}}
			h.checkBody(g.NodeOf(obj))
		}
	}
}

// hotStep is one link of the root→sink call chain.
type hotStep struct {
	name string
	pos  token.Pos
}

// hotChecker carries the traversal state for one annotated root.
type hotChecker struct {
	p       *Pass
	g       *CallGraph
	visited map[*types.Func]bool
	chain   []hotStep
}

// chainString renders the call chain from the annotated root, seedflow
// style: "ProcessPacket (pipeline.go:327) → classifyPL (pipeline.go:299)".
func (h *hotChecker) chainString() string {
	var b strings.Builder
	for i, s := range h.chain {
		if i > 0 {
			b.WriteString(" → ")
		}
		fmt.Fprintf(&b, "%s (%s)", s.name, h.p.shortPos(s.pos))
	}
	return b.String()
}

func (h *hotChecker) report(pos token.Pos, format string, args ...any) {
	h.reportFix(pos, nil, format, args...)
}

func (h *hotChecker) reportFix(pos token.Pos, fixes []SuggestedFix, format string, args ...any) {
	h.p.ReportFix(pos, fixes, "%s; hot chain: %s", fmt.Sprintf(format, args...), h.chainString())
}

// checkBody walks one function body in hot context.
func (h *hotChecker) checkBody(n *FuncNode) {
	if n == nil || n.Decl.Body == nil {
		return
	}
	hoists := h.hoistFixes(n)
	sig, _ := n.Obj.Type().(*types.Signature)
	// Selector nodes consumed as a call's callee: the method-value check
	// below must not fire on them.
	calleeSels := map[ast.Node]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			h.report(node.Pos(), "function literal allocates a closure")
			return false
		case *ast.GoStmt:
			h.report(node.Pos(), "go statement spawns a goroutine (stack allocation)")
			return false
		case *ast.CallExpr:
			return h.checkCall(n, node, calleeSels, hoists)
		case *ast.SelectorExpr:
			if calleeSels[node] {
				return true
			}
			if sel, ok := n.Pkg.Info.Selections[node]; ok && sel.Kind() == types.MethodVal {
				h.report(node.Pos(), "method value %s allocates a closure binding its receiver", node.Sel.Name)
			}
		case *ast.CompositeLit:
			switch n.Pkg.Info.TypeOf(node).Underlying().(type) {
			case *types.Slice:
				h.report(node.Pos(), "slice literal allocates")
			case *types.Map:
				h.report(node.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					h.report(node.Pos(), "address of composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringType(n.Pkg.Info.TypeOf(node)) {
				h.report(node.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			h.checkAssign(n, node)
		case *ast.ReturnStmt:
			// FuncLit bodies are never descended into (the literal itself
			// is the finding), so returns here always belong to n.
			if sig != nil && sig.Results().Len() == len(node.Results) {
				for i, r := range node.Results {
					h.checkBox(n, r, sig.Results().At(i).Type(), "return value")
				}
			}
		case *ast.IncDecStmt:
			if isMapIndex(n.Pkg, node.X) {
				h.report(node.Pos(), "map write may allocate (bucket growth)")
			}
		case *ast.DeclStmt:
			h.checkDeclStmt(n, node)
		}
		return true
	})
}

// checkCall classifies one call site; the returned bool tells the
// walker whether to descend into the call's children.
func (h *hotChecker) checkCall(n *FuncNode, call *ast.CallExpr, calleeSels map[ast.Node]bool, hoists map[*ast.CallExpr]*SuggestedFix) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		calleeSels[sel] = true
	}
	t := h.g.ResolveCall(n.Pkg, call)
	switch t.Kind {
	case TargetConversion:
		h.checkConversion(n.Pkg, call)
	case TargetBuiltin:
		return h.checkBuiltin(n, call, t.Builtin, hoists)
	case TargetFuncLit:
		// The literal itself is reported by the FuncLit case.
	case TargetInterface:
		h.report(call.Pos(), "dynamic dispatch through interface method %s is not proven allocation-free", calleeName(t.Callee))
	case TargetFuncValue:
		h.report(call.Pos(), "call through a function value is not proven allocation-free")
	case TargetUnknown:
		h.report(call.Pos(), "cannot resolve the callee; not proven allocation-free")
	case TargetStatic:
		h.checkStatic(n, call, t.Callee)
	}
	return true
}

// checkStatic handles a resolved direct call: trust annotated
// boundaries, inline module callees, allowlist the few standard
// functions known not to allocate, and flag the rest.
func (h *hotChecker) checkStatic(n *FuncNode, call *ast.CallExpr, callee *types.Func) {
	h.checkCallSiteArgs(n, call, callee)
	if node := h.g.NodeOf(callee); node != nil {
		if node.HasDirective("coldpath") || node.HasDirective("hotpath") {
			// coldpath: audited exemption; hotpath: verified at its own root.
			return
		}
		if h.visited[callee] {
			return
		}
		if len(h.chain) >= maxHotpathDepth {
			h.report(call.Pos(), "call chain exceeds the hot-path inlining depth (%d); annotate %s with //iguard:hotpath or //iguard:coldpath", maxHotpathDepth, callee.Name())
			return
		}
		h.visited[callee] = true
		h.chain = append(h.chain, hotStep{name: callee.Name(), pos: call.Pos()})
		h.checkBody(node)
		h.chain = h.chain[:len(h.chain)-1]
		return
	}
	if hotpathAllowedStd(callee) {
		return
	}
	h.report(call.Pos(), "call into %s is not proven allocation-free", calleeName(callee))
}

// checkCallSiteArgs flags implicit interface boxing of arguments and
// the slice a variadic call materialises — allocations that happen at
// the call site, in the hot function, whatever the callee does.
func (h *hotChecker) checkCallSiteArgs(n *FuncNode, call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the existing slice as-is
			}
			if s, ok := params.At(np - 1).Type().(*types.Slice); ok {
				paramT = s.Elem()
			}
		case i < np:
			paramT = params.At(i).Type()
		}
		h.checkBox(n, arg, paramT, "argument")
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) > np-1 {
		h.report(call.Pos(), "variadic call to %s allocates its argument slice", calleeName(callee))
	}
}

// checkBox reports a concrete non-pointer-shaped value converted to an
// interface — the implicit boxing allocation.
func (h *hotChecker) checkBox(n *FuncNode, e ast.Expr, dst types.Type, what string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	src := n.Pkg.Info.TypeOf(e)
	if src == nil || types.IsInterface(src) || !boxAllocates(src) {
		return
	}
	h.report(e.Pos(), "%s of type %s boxes into interface %s (heap allocation)", what, src, dst)
}

// boxAllocates reports whether storing a value of this concrete type
// in an interface heap-allocates. Pointer-shaped values (pointers,
// channels, maps, functions, unsafe pointers) fit in the interface
// data word directly.
func boxAllocates(src types.Type) bool {
	switch u := src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.UnsafePointer
	}
	return true
}

// checkBuiltin handles predeclared builtins; the returned bool tells
// the walker whether to descend into the arguments.
func (h *hotChecker) checkBuiltin(n *FuncNode, call *ast.CallExpr, name string, hoists map[*ast.CallExpr]*SuggestedFix) bool {
	switch name {
	case "make":
		if fix, ok := hoists[call]; ok {
			h.reportFix(call.Pos(), []SuggestedFix{*fix}, "make inside a loop allocates every iteration (arguments are loop-invariant: hoistable)")
		} else {
			h.report(call.Pos(), "make allocates")
		}
	case "new":
		h.report(call.Pos(), "new allocates")
	case "append":
		h.report(call.Pos(), "append may allocate when it grows past the caller-provided capacity; size the scratch up front")
	case "print", "println":
		h.report(call.Pos(), "%s is not allocation-free", name)
	case "panic":
		// The argument only materialises on the failure path; normal
		// hot-path execution never evaluates it.
		return false
	}
	return true
}

// checkConversion flags conversions that allocate: to an interface
// (boxing) and between strings and byte/rune slices (copies).
func (h *hotChecker) checkConversion(pkg *Package, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	dst := pkg.Info.TypeOf(call)
	src := pkg.Info.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	if types.IsInterface(dst) && !types.IsInterface(src) && boxAllocates(src) {
		h.report(call.Pos(), "conversion of %s to interface %s boxes (heap allocation)", src, dst)
		return
	}
	if (isStringType(dst) && isByteOrRuneSlice(src)) || (isStringType(src) && isByteOrRuneSlice(dst)) {
		h.report(call.Pos(), "string ↔ byte/rune slice conversion copies and allocates")
	}
}

// checkAssign flags map writes and interface boxing through plain
// assignment (a := definition infers the RHS type, so it never boxes).
func (h *hotChecker) checkAssign(n *FuncNode, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		if isMapIndex(n.Pkg, lhs) {
			h.report(lhs.Pos(), "map write may allocate (bucket growth)")
		}
	}
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		h.checkBox(n, as.Rhs[i], n.Pkg.Info.TypeOf(as.Lhs[i]), "assignment")
	}
}

// checkDeclStmt flags `var x Iface = concrete` boxing.
func (h *hotChecker) checkDeclStmt(n *FuncNode, ds *ast.DeclStmt) {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || vs.Type == nil {
			continue
		}
		dst := n.Pkg.Info.TypeOf(vs.Type)
		for _, v := range vs.Values {
			h.checkBox(n, v, dst, "initializer")
		}
	}
}

// isMapIndex reports whether e indexes a map.
func isMapIndex(pkg *Package, e ast.Expr) bool {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pkg.Info.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// isStringType reports whether t's underlying type is a string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports []byte / []rune (the conversion partners
// of string).
func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// calleeName renders a function for messages: "fmt.Sprintf",
// "(time.Time).Sub".
func calleeName(fn *types.Func) string {
	if fn == nil {
		return "unknown function"
	}
	return fn.FullName()
}

// hotpathStdAllowPkg lists standard-library packages whose exported
// functions are allocation-free wholesale.
var hotpathStdAllowPkg = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// hotpathStdAllowFunc lists individually allowlisted standard
// functions and methods as "pkgpath:Name". The granularity is
// receiver-insensitive on purpose: within one of these packages the
// same name never mixes an allocating and a non-allocating form.
var hotpathStdAllowFunc = map[string]bool{
	// encoding/binary byte-order accessors (not the Append* family).
	"encoding/binary:Uint16":    true,
	"encoding/binary:Uint32":    true,
	"encoding/binary:Uint64":    true,
	"encoding/binary:PutUint16": true,
	"encoding/binary:PutUint32": true,
	"encoding/binary:PutUint64": true,
	// time.Time / time.Duration arithmetic (values, no heap).
	"time:Sub":         true,
	"time:Add":         true,
	"time:Seconds":     true,
	"time:Nanoseconds": true,
	"time:UnixNano":    true,
	"time:Unix":        true,
	"time:UTC":         true,
	"time:Before":      true,
	"time:After":       true,
	"time:Equal":       true,
	"time:Compare":     true,
	"time:IsZero":      true,
	// sync primitives used for ownership handoff, not allocation.
	"sync:Lock":    true,
	"sync:Unlock":  true,
	"sync:RLock":   true,
	"sync:RUnlock": true,
	"sync:TryLock": true,
	"sync:Done":    true,
	"sync:Add":     true,
	"sync:Wait":    true,
}

// hotpathAllowedStd reports whether a standard-library callee is on
// the allocation-free allowlist.
func hotpathAllowedStd(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if hotpathStdAllowPkg[pkg.Path()] {
		return true
	}
	return hotpathStdAllowFunc[pkg.Path()+":"+fn.Name()]
}

// hoistFixes finds trivially hoistable allocations in a body: a
// `x := make(…)` directly inside a for/range body whose arguments are
// loop-invariant, where x is never reassigned or appended to in the
// loop (a scratch buffer), and where hoisting introduces no name
// conflict. The fix moves the definition just above the loop, turning
// a per-iteration allocation into a single reusable scratch — the
// remaining (unfixable) allocation is still reported, one step closer
// to a struct-field scratch.
func (h *hotChecker) hoistFixes(n *FuncNode) map[*ast.CallExpr]*SuggestedFix {
	tf := n.Pkg.Fset.File(n.Decl.Pos())
	if tf == nil {
		return nil
	}
	src, ok := n.Pkg.Sources[tf.Name()]
	if !ok {
		return nil
	}
	out := map[*ast.CallExpr]*SuggestedFix{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		var loopPos token.Pos
		var body *ast.BlockStmt
		switch l := node.(type) {
		case *ast.ForStmt:
			loopPos, body = l.Pos(), l.Body
		case *ast.RangeStmt:
			loopPos, body = l.Pos(), l.Body
		default:
			return true
		}
		for _, st := range body.List {
			as, ok := st.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			lhs, ok := as.Lhs[0].(*ast.Ident)
			if !ok || lhs.Name == "_" {
				continue
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				continue
			}
			if t := h.g.ResolveCall(n.Pkg, call); t.Kind != TargetBuiltin || t.Builtin != "make" {
				continue
			}
			if !h.loopInvariantArgs(n.Pkg, call, loopPos, body.End()) {
				continue
			}
			obj := n.Pkg.Info.Defs[lhs]
			if obj == nil || !scratchOnlyUses(n.Pkg, body, obj, as) {
				continue
			}
			// Hoisting must not collide with a name already visible at
			// the loop.
			if sc := n.Pkg.Types.Scope().Innermost(loopPos); sc != nil {
				if _, found := sc.LookupParent(lhs.Name, loopPos); found != nil {
					continue
				}
			}
			fix := hoistFix(tf, src, as, loopPos)
			if fix != nil {
				out[call] = fix
			}
		}
		return true
	})
	return out
}

// loopInvariantArgs reports whether every identifier in the call's
// arguments is declared outside the loop span.
func (h *hotChecker) loopInvariantArgs(pkg *Package, call *ast.CallExpr, loopPos, loopEnd token.Pos) bool {
	invariant := true
	for _, arg := range call.Args {
		ast.Inspect(arg, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pkg.Info.Uses[id]; obj != nil && obj.Pos() >= loopPos && obj.Pos() < loopEnd {
				invariant = false
				return false
			}
			return true
		})
	}
	return invariant
}

// scratchOnlyUses reports whether the defined variable is used as a
// scratch buffer in the loop: indexed, sliced, read, passed — but
// never reassigned and never the base of an append (either would make
// the per-iteration allocation semantically load-bearing).
func scratchOnlyUses(pkg *Package, body *ast.BlockStmt, obj types.Object, def *ast.AssignStmt) bool {
	safe := true
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			if x == def {
				return true
			}
			for _, lhs := range x.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
					safe = false
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
				if base, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok && pkg.Info.Uses[base] == obj {
					safe = false
				}
			}
		}
		return true
	})
	return safe
}

// hoistFix builds the two-edit fix: insert the definition above the
// loop (at the loop's indentation) and delete its original line. The
// statement must sit alone on its line.
func hoistFix(tf *token.File, src []byte, as *ast.AssignStmt, loopPos token.Pos) *SuggestedFix {
	lineStartOff := func(pos token.Pos) int { return tf.Offset(tf.LineStart(tf.Line(pos))) }
	nextLineOff := func(pos token.Pos) int {
		line := tf.Line(pos)
		if line < tf.LineCount() {
			return tf.Offset(tf.LineStart(line + 1))
		}
		return tf.Size()
	}
	stmtStart, stmtEnd := tf.Offset(as.Pos()), tf.Offset(as.End())
	delStart, delEnd := lineStartOff(as.Pos()), nextLineOff(as.End())
	if !isBlankText(string(src[delStart:stmtStart])) {
		return nil
	}
	if tail := strings.TrimSpace(string(src[stmtEnd:delEnd])); tail != "" && !strings.HasPrefix(tail, "//") {
		return nil
	}
	insertAt := lineStartOff(loopPos)
	indent := string(src[insertAt:tf.Offset(loopPos)])
	if !isBlankText(indent) {
		return nil
	}
	return &SuggestedFix{
		Message: "hoist the loop-invariant make above the loop as a reusable scratch",
		Edits: []TextEdit{
			{Filename: tf.Name(), Start: insertAt, End: insertAt, NewText: indent + string(src[stmtStart:stmtEnd]) + "\n"},
			{Filename: tf.Name(), Start: delStart, End: delEnd, NewText: ""},
		},
	}
}
