package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Seedflow is the flow-sensitive completion of the determinism check:
// it proves every random source constructed in library code derives
// from an explicit seed. A taint analysis over the function's CFG
// tracks nondeterministic values (wall-clock reads, pids, crypto/rand
// output, global math/rand draws) through local assignments and
// arithmetic; a tainted value reaching a rand constructor
// (rand.New/NewSource/NewZipf, mathx.NewRand) is reported together
// with the source→sink taint path. Package-level *rand.Rand variables
// are reported unconditionally: shared generator state across calls
// breaks reproduction even when the seed is explicit.
var Seedflow = &Analyzer{
	Name: "seedflow",
	Doc: "taint-track nondeterministic seed values into rand constructors and " +
		"forbid package-level *rand.Rand state in internal/ packages",
	LibraryOnly: true,
	Run:         runSeedflow,
}

// maxTaintSteps bounds the recorded propagation path so cyclic
// assignment chains converge; the source and sink are always kept.
const maxTaintSteps = 8

// taintInfo describes how a value became nondeterministic.
type taintInfo struct {
	src     token.Pos // position of the originating call
	srcDesc string    // e.g. "time.Now"
	steps   []taintStep
}

type taintStep struct {
	pos  token.Pos
	desc string // variable name the taint flowed through
}

// taintState maps tainted local variables to their provenance.
// Variables absent from the map are clean.
type taintState map[*types.Var]*taintInfo

func (s taintState) clone() taintState {
	out := make(taintState, len(s))
	for k, v := range s { //iguard:sorted state copy is key-order independent
		out[k] = v
	}
	return out
}

func runSeedflow(p *Pass) {
	for _, f := range p.Pkg.Files {
		p.checkPackageLevelRand(f)
		for _, body := range functionBodies(f) {
			p.seedflowFunc(body)
		}
	}
}

// functionBodies collects every function body in the file: declarations
// and literals, each analyzed as an independent CFG.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	return bodies
}

// checkPackageLevelRand flags package-level variables of type
// *rand.Rand or rand.Source.
func (p *Pass) checkPackageLevelRand(f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj, ok := p.Pkg.Info.Defs[name].(*types.Var)
				if !ok || !isRandType(obj.Type()) {
					continue
				}
				p.Reportf(name.Pos(),
					"package-level %s %s shares generator state across calls; thread a seeded *rand.Rand through parameters or struct fields instead",
					obj.Type().String(), name.Name)
			}
		}
	}
}

// isRandType recognises *rand.Rand, rand.Rand, and rand.Source from
// math/rand or math/rand/v2.
func isRandType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg := named.Obj().Pkg().Path()
	name := named.Obj().Name()
	return (pkg == "math/rand" || pkg == "math/rand/v2") && (name == "Rand" || name == "Source" || name == "Source64")
}

// seedflowFunc runs the taint analysis over one function body.
func (p *Pass) seedflowFunc(body *ast.BlockStmt) {
	cfg := BuildCFG(p, body)
	problem := FlowProblem{
		Dir:      Forward,
		Boundary: func() any { return taintState{} },
		Merge:    p.mergeTaint,
		Equal:    taintEqual,
		Transfer: func(b *Block, in any) any {
			return p.taintTransfer(b, in.(taintState), nil)
		},
	}
	inFacts := Solve(cfg, problem)
	// Deterministic reporting pass over stabilised entry facts.
	for _, b := range cfg.Blocks {
		in, ok := inFacts[b].(taintState)
		if !ok {
			continue
		}
		p.taintTransfer(b, in, p.reportTaintSink)
	}
}

func (p *Pass) mergeTaint(a, b any) any {
	x, y := a.(taintState), b.(taintState)
	out := x.clone()
	for k, v := range y { //iguard:sorted merge keeps the earliest source per var, order-independent
		if cur, ok := out[k]; !ok || v.src < cur.src {
			out[k] = v
		}
	}
	return out
}

func taintEqual(a, b any) bool {
	x, y := a.(taintState), b.(taintState)
	if len(x) != len(y) {
		return false
	}
	for k, v := range x { //iguard:sorted set comparison is order-independent
		w, ok := y[k]
		if !ok || w.src != v.src {
			return false
		}
	}
	return true
}

// taintTransfer interprets one block. When report is non-nil, sink
// calls found with tainted arguments are reported through it.
func (p *Pass) taintTransfer(b *Block, in taintState, report func(call *ast.CallExpr, arg ast.Expr, info *taintInfo)) any {
	state := in.clone()
	for _, n := range b.Nodes {
		if report != nil {
			// A RangeStmt node carries its body statements too, but those
			// live in their own blocks; only the range expression belongs
			// to this block.
			if rng, ok := n.(*ast.RangeStmt); ok {
				p.findTaintSinks(rng.X, state, report)
			} else {
				p.findTaintSinks(n, state, report)
			}
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			p.taintAssign(n, state)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						p.taintValueSpec(vs, state)
					}
				}
			}
		case *ast.RangeStmt:
			if info := p.taintOf(n.X, state); info != nil {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if v := p.localVar(e); v != nil {
						state[v] = flowThrough(info, e.Pos(), v.Name())
					}
				}
			}
		}
	}
	return state
}

// taintAssign applies one assignment's strong updates.
func (p *Pass) taintAssign(assign *ast.AssignStmt, state taintState) {
	// Single multi-value RHS: the call's taint covers every LHS.
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		info := p.taintOf(assign.Rhs[0], state)
		for _, lhs := range assign.Lhs {
			p.setTaint(lhs, info, state)
		}
		return
	}
	for i, lhs := range assign.Lhs {
		if i >= len(assign.Rhs) {
			break
		}
		p.setTaint(lhs, p.taintOf(assign.Rhs[i], state), state)
	}
}

func (p *Pass) taintValueSpec(vs *ast.ValueSpec, state taintState) {
	for i, name := range vs.Names {
		var info *taintInfo
		if i < len(vs.Values) {
			info = p.taintOf(vs.Values[i], state)
		} else if len(vs.Values) == 1 {
			info = p.taintOf(vs.Values[0], state)
		}
		p.setTaint(name, info, state)
	}
}

// setTaint records (or clears, for a clean RHS) the taint of an
// assignment target. Only simple local variables are tracked.
func (p *Pass) setTaint(lhs ast.Expr, info *taintInfo, state taintState) {
	v := p.localVar(lhs)
	if v == nil {
		return
	}
	if info == nil {
		delete(state, v)
		return
	}
	state[v] = flowThrough(info, lhs.Pos(), v.Name())
}

// flowThrough extends a taint path by one assignment step, bounded so
// cyclic flows converge.
func flowThrough(info *taintInfo, pos token.Pos, name string) *taintInfo {
	out := &taintInfo{src: info.src, srcDesc: info.srcDesc}
	out.steps = append(out.steps, info.steps...)
	if len(out.steps) < maxTaintSteps {
		out.steps = append(out.steps, taintStep{pos: pos, desc: name})
	}
	return out
}

// localVar resolves an expression to the local variable it names, or
// nil for blank, fields, indexing, and package-level names.
func (p *Pass) localVar(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	var obj types.Object
	if d, ok := p.Pkg.Info.Defs[id]; ok {
		obj = d
	} else {
		obj = p.Pkg.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() == p.Pkg.Types.Scope() || v.Parent() == types.Universe {
		return nil // package-level state is handled separately
	}
	return v
}

// taintOf computes the taint of an expression: a direct
// nondeterministic source call, or any tainted variable it reads.
// Function literals are opaque (their bodies are analyzed separately).
func (p *Pass) taintOf(e ast.Expr, state taintState) *taintInfo {
	if e == nil {
		return nil
	}
	var found *taintInfo
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if desc, ok := p.nondetSource(n); ok {
				found = &taintInfo{src: n.Pos(), srcDesc: desc}
				return false
			}
		case *ast.Ident:
			if v := p.localVar(n); v != nil {
				if info, ok := state[v]; ok {
					found = info
					return false
				}
			}
		}
		return true
	})
	return found
}

// nondetSource reports whether the call produces a value that differs
// across runs: wall-clock reads, process ids, crypto randomness, and
// draws from the global math/rand generator.
func (p *Pass) nondetSource(call *ast.CallExpr) (string, bool) {
	pkgPath, fn, ok := p.PkgFunc(call)
	if !ok {
		return "", false
	}
	switch pkgPath {
	case "time":
		if fn == "Now" || fn == "Since" {
			return "time." + fn, true
		}
	case "os":
		if fn == "Getpid" || fn == "Getppid" {
			return "os." + fn, true
		}
	case "crypto/rand":
		return "crypto/rand." + fn, true
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn] {
			return "rand." + fn, true
		}
	}
	return "", false
}

// findTaintSinks reports rand-constructor calls fed a tainted seed.
func (p *Pass) findTaintSinks(n ast.Node, state taintState, report func(call *ast.CallExpr, arg ast.Expr, info *taintInfo)) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok || !p.isRandConstructor(call) {
			return true
		}
		for _, arg := range call.Args {
			// A nested constructor argument — rand.New(rand.NewSource(s))
			// — is reported at the inner call only.
			if inner, isCall := arg.(*ast.CallExpr); isCall && p.isRandConstructor(inner) {
				continue
			}
			// Direct nested source calls (rand.NewSource(time.Now()…))
			// are the syntactic determinism check's finding; seedflow
			// owns the flow-through-variables case.
			if info := p.taintOf(arg, state); info != nil && containsTaintedVar(p, arg, state) {
				report(call, arg, info)
				break
			}
		}
		return true
	})
}

// containsTaintedVar reports whether the expression reads a variable
// that is tainted in the current state (as opposed to containing a
// nondeterministic call directly).
func containsTaintedVar(p *Pass, e ast.Expr, state taintState) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v := p.localVar(id); v != nil {
				if _, ok := state[v]; ok {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isRandConstructor recognises the seed sinks: math/rand constructors
// and the module's mathx.NewRand wrapper.
func (p *Pass) isRandConstructor(call *ast.CallExpr) bool {
	pkgPath, fn, ok := p.PkgFunc(call)
	if !ok {
		return false
	}
	if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && randConstructors[fn] {
		return true
	}
	return strings.HasSuffix(pkgPath, "/mathx") && fn == "NewRand"
}

// reportTaintSink renders the source→sink taint path into the message.
func (p *Pass) reportTaintSink(call *ast.CallExpr, arg ast.Expr, info *taintInfo) {
	var path strings.Builder
	fmt.Fprintf(&path, "%s (%s)", info.srcDesc, p.shortPos(info.src))
	for _, s := range info.steps {
		fmt.Fprintf(&path, " → %s (%s)", s.desc, p.shortPos(s.pos))
	}
	fmt.Fprintf(&path, " → %s (%s)", exprName(call), p.shortPos(call.Pos()))
	p.Reportf(call.Pos(),
		"random source seeded from a nondeterministic value; taint path: %s — derive the seed from configuration instead", path.String())
}

// shortPos renders "file.go:line" for taint-path steps.
func (p *Pass) shortPos(pos token.Pos) string {
	position := p.Pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(position.Filename), position.Line)
}
