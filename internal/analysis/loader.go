// Package loading: a module-aware, stdlib-only loader. Imports within
// the module are parsed and type-checked recursively from source; the
// standard library is resolved through go/importer's source importer.
// Test files (_test.go) are never loaded — every analyzer in the suite
// exempts test code, and skipping them keeps external test packages
// (foo_test) out of the dependency graph.

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package plus the side tables the
// analyzers need.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// Sources holds each file's bytes, keyed by absolute filename —
	// suggested fixes are computed against them.
	Sources map[string][]byte

	// Deps holds the module-local packages this package imports
	// directly, keyed by import path. Because every Package of a loader
	// shares one token.FileSet, interprocedural analyzers (the call
	// graph, hotpath, shardown) can follow a call into a dependency and
	// still render positions and read directives there.
	Deps map[string]*Package

	// directives maps filename -> line -> //iguard: directives.
	directives map[string]map[int][]string
}

// IsLibrary reports whether the package is library code under the
// module's internal/ tree — the scope most analyzers apply to.
func (p *Package) IsLibrary(modPath string) bool {
	return strings.HasPrefix(p.ImportPath, modPath+"/internal/")
}

// Loader loads and type-checks packages of a single module.
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModRoot string

	pkgs    map[string]*Package // keyed by directory
	loading map[string]bool
	std     types.Importer
}

// NewLoader builds a loader for the module rooted at modRoot, reading
// the module path from go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModRoot: modRoot,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
		std:     importer.ForCompiler(fset, "source", nil),
	}, nil
}

var moduleLine = regexp.MustCompile(`(?m)^module\s+(\S+)`)

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	m := moduleLine.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("analysis: no module line in %s", gomod)
	}
	return string(m[1]), nil
}

// FindModuleRoot walks up from dir to the enclosing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load expands the patterns (a directory, or dir/... for a recursive
// walk) relative to cwd and returns the loaded packages in a stable
// (import path) order.
func (l *Loader) Load(cwd string, patterns ...string) ([]*Package, error) {
	var dirs []string
	for _, pat := range patterns {
		expanded, err := l.expand(cwd, pat)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, expanded...)
	}
	var pkgs []*Package
	seen := map[string]bool{}
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if !seen[pkg.ImportPath] {
			seen[pkg.ImportPath] = true
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// expand resolves one pattern to package directories. Walks skip
// testdata, vendor, hidden and underscore-prefixed directories, matching
// the go tool's convention, so analyzer fixtures never leak into ./...
func (l *Loader) expand(cwd, pattern string) ([]string, error) {
	recursive := false
	if pattern == "..." || strings.HasSuffix(pattern, "/...") {
		recursive = true
		pattern = strings.TrimSuffix(strings.TrimSuffix(pattern, "..."), "/")
		if pattern == "" {
			pattern = "."
		}
	}
	base := pattern
	if !filepath.IsAbs(base) {
		base = filepath.Join(cwd, base)
	}
	if !recursive {
		if !hasGoFiles(base) {
			return nil, fmt.Errorf("analysis: no Go files in %s", base)
		}
		return []string{base}, nil
	}
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in one directory,
// memoizing so shared dependencies are checked once.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[dir]; ok {
		return pkg, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("analysis: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	importPath := l.importPathFor(dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	sources := map[string][]byte{}
	directives := map[string]map[int][]string{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if isIgnored(f) {
			continue
		}
		files = append(files, f)
		sources[full] = src
		directives[full] = scanDirectives(l.Fset, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}

	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Sources:    sources,
		Deps:       map[string]*Package{},
		directives: directives,
	}
	// Map module-local imports back to their loaded Packages. importPkg
	// already recursed into them, so each is memoized under its
	// directory by the time Check returns.
	for _, imp := range tpkg.Imports() {
		path := imp.Path()
		if path != l.ModPath && !strings.HasPrefix(path, l.ModPath+"/") {
			continue
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		depDir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
		if dep, ok := l.pkgs[depDir]; ok {
			pkg.Deps[path] = dep
		}
	}
	l.pkgs[dir] = pkg
	return pkg, nil
}

// Invalidate drops the memoized package for dir, so the next LoadDir
// re-reads its sources from disk. Callers that rewrite files (the -fix
// loop, tests) must invalidate before re-analyzing; dependent packages
// memoized earlier keep their old view and need their own invalidation.
func (l *Loader) Invalidate(dir string) {
	if abs, err := filepath.Abs(dir); err == nil {
		delete(l.pkgs, abs)
	}
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// importPkg resolves an import path: module-local packages recurse into
// LoadDir, everything else is the standard library via the source
// importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// isIgnored reports whether the file carries a "//go:build ignore"
// constraint (helper scripts are not part of the package).
func isIgnored(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "go:build ignore" || strings.HasPrefix(text, "+build ignore") {
				return true
			}
		}
	}
	return false
}
