// Package ownbad exercises the shardown analyzer's violation classes:
// accesses outside the owner's call tree, goroutines spawned inside
// it, channel sends of owned state, and package-level stores.
package ownbad

type engine struct{ n int }

type worker struct {
	//iguard:ownedby(shard)
	sw *engine
	//iguard:ownedby(shard)
	buf []int
	in  chan int
}

var leaked *worker // want:shardown

//iguard:owner(shard)
func run(w *worker) {
	w.buf[0] = 1 // in the owner tree: fine
	touch(w)
	f := w.steps // method-value edge: steps joins the owner tree
	f()
	go func() {
		w.buf[1] = 2 // want:shardown
	}()
}

// touch is reachable from run, so its accesses are owned.
func touch(w *worker) {
	w.sw.n++
}

func (w *worker) steps() {
	w.buf[2] = 3
}

func Outside(w *worker) {
	w.buf[0] = 9 // want:shardown
}

func Sends(w *worker, ch chan *worker, eh chan *engine) {
	ch <- w    // want:shardown
	eh <- w.sw // want:shardown want:shardown
}

func Stores(w *worker) {
	leaked = w // want:shardown
}
