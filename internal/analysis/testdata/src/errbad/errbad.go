// Package errbad is an iguard-vet fixture: every construction the
// errcheck analyzer must flag, plus the idioms it must leave alone.
package errbad

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func valueAndErr() (int, error) { return 0, errors.New("boom") }

// Discarded drops errors in both flagged forms.
func Discarded() int {
	mayFail()             // want:errcheck
	_ = mayFail()         // want:errcheck
	v, _ := valueAndErr() // want:errcheck
	return v
}

// PanicsWithError re-raises an error as a panic.
func PanicsWithError() {
	if err := mayFail(); err != nil {
		panic(err) // want:errcheck
	}
}

// Handled is the sanctioned pattern: no finding.
func Handled() error {
	if err := mayFail(); err != nil {
		return fmt.Errorf("errbad: %w", err)
	}
	v, err := valueAndErr()
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// PanicsWithMessage panics with a string: programmer errors may abort.
func PanicsWithMessage(n int) {
	if n < 0 {
		panic(fmt.Sprintf("errbad: negative %d", n))
	}
}

// InfallibleWriters exercises the documented exemptions.
func InfallibleWriters() string {
	var sb strings.Builder
	sb.WriteString("a")
	fmt.Fprintf(&sb, "%d", 1)
	return sb.String()
}

// TypeAssertOK: a comma-ok type assertion on an error is not a discard.
func TypeAssertOK(err error) bool {
	_, ok := err.(*customErr)
	return ok
}

type customErr struct{}

func (*customErr) Error() string { return "custom" }
