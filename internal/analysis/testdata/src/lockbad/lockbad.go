// Package lockbad is an iguard-vet fixture: every violation of the
// locking discipline the lockcheck analyzer enforces — unbalanced
// acquire/release across CFG paths, blocking operations inside
// critical sections, and locks copied by value. Expected findings are
// marked with analyzer-name markers on the offending lines (see
// analysis_test.go).
package lockbad

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

// device stands in for the controller's data-plane Switch: an
// interface whose implementation may block for unbounded time.
type device interface {
	Install(n int) bool
}

// MissingUnlock leaves mu held on the early-return path.
func (g *guarded) MissingUnlock(flag bool) int {
	g.mu.Lock() // want:lockcheck
	if flag {
		return g.n
	}
	g.mu.Unlock()
	return 0
}

// NeverUnlocked acquires and forgets on every path.
func (g *guarded) NeverUnlocked() {
	g.mu.Lock() // want:lockcheck
	g.n++
}

// DoubleLock re-acquires a lock it already holds: self-deadlock.
func (g *guarded) DoubleLock() {
	g.mu.Lock()
	g.mu.Lock() // want:lockcheck
	g.mu.Unlock()
}

// UnmatchedUnlock releases a lock no path acquired.
func (g *guarded) UnmatchedUnlock() {
	g.mu.Unlock() // want:lockcheck
}

// InstallUnder dispatches through an interface while holding the lock;
// the implementation may block or take its own locks.
func (g *guarded) InstallUnder(d device) {
	g.mu.Lock()
	defer g.mu.Unlock()
	d.Install(g.n) // want:lockcheck
}

// SendUnder performs a channel send inside the critical section.
func (g *guarded) SendUnder(ch chan int) {
	g.mu.Lock()
	ch <- g.n // want:lockcheck
	g.mu.Unlock()
}

// RecvUnder performs a channel receive inside the critical section.
func (g *guarded) RecvUnder(ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-ch // want:lockcheck
}

// SleepUnder sleeps while holding the lock.
func (g *guarded) SleepUnder() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want:lockcheck
	g.mu.Unlock()
}

// ByValueReceiver copies the lock with every call.
func (g guarded) ByValueReceiver() int { // want:lockcheck
	return g.n
}

// CopyParam copies the lock into the parameter.
func CopyParam(g guarded) int { // want:lockcheck
	return g.n
}

// CopyAssign snapshots a guarded struct, lock included.
func CopyAssign(g *guarded) int {
	snapshot := *g // want:lockcheck
	return snapshot.n
}

// CopyRange copies the lock into the range value each iteration.
func CopyRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want:lockcheck
		total += g.n
	}
	return total
}

// MaybeLocked acquires on one branch and returns with the lock
// possibly held.
func (g *guarded) MaybeLocked(flag bool) {
	if flag {
		g.mu.Lock() // want:lockcheck
	}
	g.n++
}
