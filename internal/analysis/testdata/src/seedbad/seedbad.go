// Package seedbad is an iguard-vet fixture: seed values that flow from
// nondeterministic sources into random generators through local
// variables — the cases the flow-sensitive seedflow analyzer exists to
// catch (the syntactic determinism check only sees direct nesting).
// Expected findings are marked with analyzer-name markers on the
// offending lines (see analysis_test.go).
package seedbad

import (
	"math/rand"
	"os"
	"time"
)

// pkgRNG shares generator state across every caller, so results depend
// on call order even though the seed is explicit.
var pkgRNG = rand.New(rand.NewSource(1)) // want:seedflow

// Draw makes the package-level generator look used.
func Draw() float64 { return pkgRNG.Float64() }

// ClockSeeded launders a wall-clock read through two locals before it
// reaches the generator; only flow tracking connects source to sink.
func ClockSeeded() float64 {
	now := time.Now() // want:determinism
	seed := now.UnixNano()
	src := rand.NewSource(seed) // want:seedflow
	r := rand.New(src)          // want:seedflow
	return r.Float64()
}

// PidSeeded derives the seed from the process id.
func PidSeeded() float64 {
	seed := int64(os.Getpid())
	r := rand.New(rand.NewSource(seed)) // want:seedflow
	return r.Float64()
}

// GlobalDraw seeds one generator from the shared global generator.
func GlobalDraw() float64 {
	seed := rand.Int63()                // want:determinism
	r := rand.New(rand.NewSource(seed)) // want:seedflow
	return r.Float64()
}

// MaybeClock is tainted on one branch only; the path merge keeps the
// taint, because some executions are nondeterministic.
func MaybeClock(flag bool, base int64) float64 {
	seed := base
	if flag {
		seed = time.Now().UnixNano() // want:determinism
	}
	r := rand.New(rand.NewSource(seed)) // want:seedflow
	return r.Float64()
}

// Sanitized overwrites the tainted value before it reaches the
// generator; the strong update clears the taint (and leaves the first
// store dead).
func Sanitized(base int64) float64 {
	seed := time.Now().UnixNano() // want:determinism want:deadstore
	seed = base
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
