// Package floatbad is an iguard-vet fixture for the floatcompare
// analyzer.
package floatbad

import "math"

// Exact compares floats exactly in both flagged forms.
func Exact(a, b float64) bool {
	if a == b { // want:floatcompare
		return true
	}
	return a != b+1 // want:floatcompare
}

// Mixed flags comparisons where only one side is a non-constant float.
func Mixed(a float64) bool {
	return a == 0 // want:floatcompare
}

// Epsilon is the sanctioned pattern: no finding.
func Epsilon(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// Suppressed carries the explicit escape hatch.
func Suppressed(a, b float64) bool {
	return a == b //iguard:allow(floatcompare) exact identity intended
}

// ConstFold compares two compile-time constants: exempt.
func ConstFold() bool {
	const x = 0.1
	const y = 0.2
	return x+y == 0.3
}

// Ints stay out of scope entirely.
func Ints(a, b int) bool { return a == b }
