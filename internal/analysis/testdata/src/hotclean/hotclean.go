// Package hotclean holds allocation-free hot paths the hotpath
// analyzer must accept: scratch-buffer reuse, allowlisted standard
// calls, annotated-hotpath trust boundaries, //iguard:coldpath cut
// points, and (mutually) recursive descent.
package hotclean

import (
	"math"
	"sync/atomic"
	"time"
)

type filter struct {
	counters [8]uint64
	scratch  [16]float64
	hits     atomic.Uint64
}

//iguard:hotpath
func (f *filter) Process(v float64, ts, last time.Time) float64 {
	f.counters[0]++
	f.hits.Add(1)
	d := ts.Sub(last).Seconds()
	x := math.Sqrt(v) + d
	for i := range f.scratch {
		f.scratch[i] = x
	}
	return f.sum(f.scratch[:])
}

// sum is unannotated: the analyzer inlines it and finds it clean.
func (f *filter) sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// report allocates, deliberately: it is the audited cold boundary.
//
//iguard:coldpath flow-level reporting, not per packet
func (f *filter) report() []float64 {
	out := make([]float64, len(f.scratch))
	copy(out, f.scratch[:])
	return out
}

//iguard:hotpath
func (f *filter) ProcessAndMaybeReport(v float64, ts, last time.Time) float64 {
	// Process is itself //iguard:hotpath: a trusted boundary, verified
	// at its own root rather than re-inlined here.
	r := f.Process(v, ts, last)
	if r > 1e9 {
		_ = f.report()
	}
	return r
}

// Direct and mutual recursion must terminate the walker.
//
//iguard:hotpath
func fib(n int) int {
	if n < 2 {
		return n
	}
	return fib(n-1) + fib(n-2)
}

//iguard:hotpath
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// Failure paths may build their panic values: the argument never
// evaluates on the hot path.
//
//iguard:hotpath
func mustIndex(xs []float64, i int) float64 {
	if i < 0 || i >= len(xs) {
		panic(&boundsErr{i: i})
	}
	return xs[i]
}

type boundsErr struct{ i int }
