// Package ownclean holds ownership patterns the shardown analyzer must
// accept: construction before handoff, helpers reached through direct
// calls, method values, and (mutual) recursion inside the owner tree —
// plus the relaxed mode, where ownedby documents intent without any
// //iguard:owner root.
package ownclean

type engine struct{ n int }

type worker struct {
	//iguard:ownedby(ring)
	sw *engine
	//iguard:ownedby(ring)
	depth int
	in    chan int
}

// NewWorker initialises owned fields through composite-literal keys:
// construction happens before the owner goroutine exists, and is
// exempt by form.
func NewWorker() *worker {
	return &worker{sw: &engine{}, in: make(chan int, 1)}
}

//iguard:owner(ring)
func run(w *worker) {
	for range w.in {
		w.sw.n++
		stepA(w, 4)
		f := w.flush // method value: flush joins the owner tree
		f()
		func() {
			// Synchronous literal: still the owner goroutine.
			w.depth++
		}()
	}
}

// Mutual recursion inside the owner tree.
func stepA(w *worker, d int) {
	if d == 0 {
		return
	}
	w.depth = d
	stepB(w, d-1)
}

func stepB(w *worker, d int) {
	stepA(w, d-1)
}

func (w *worker) flush() {
	w.sw.n = 0
}

// scratch demonstrates the relaxed mode: ownedby names an owner with
// no //iguard:owner root anywhere, so only the escape checks arm —
// plain accesses are accepted wherever they occur.
type scratch struct {
	//iguard:ownedby(caller)
	buf [8]float64
}

func Sum(s *scratch) float64 {
	t := 0.0
	for _, v := range s.buf {
		t += v
	}
	return t
}
