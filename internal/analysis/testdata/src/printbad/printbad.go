// Package printbad is an iguard-vet fixture for the printcheck
// analyzer. fmt.Print* also discards an (n, error) result, so those
// lines carry an errcheck marker too.
package printbad

import "fmt"

// Noisy writes to stdout from library code.
func Noisy(x int) {
	fmt.Println("x =", x) // want:printcheck want:errcheck
	fmt.Printf("%d\n", x) // want:printcheck want:errcheck
	fmt.Print(x)          // want:printcheck want:errcheck
	println("debug", x)   // want:printcheck
}

// Quiet is the sanctioned pattern: build the string, let the caller
// decide where it goes.
func Quiet(x int) string {
	return fmt.Sprintf("x = %d", x)
}
