// Package determbad is an iguard-vet fixture: every construction the
// determinism analyzer must flag. Expected findings are marked with
// analyzer-name markers on the offending lines (see analysis_test.go).
package determbad

import (
	"math/rand"
	"sort"
	"time"
)

// GlobalRNG draws from the shared global generator.
func GlobalRNG() int {
	rand.Seed(42)                                     // want:determinism
	a := rand.Intn(10)                                // want:determinism
	b := rand.Float64()                               // want:determinism
	rand.Shuffle(len([]int{1, 2}), func(i, j int) {}) // want:determinism
	return a + int(b)
}

// WallClock consults the wall clock.
func WallClock(t0 time.Time) time.Duration {
	now := time.Now()   // want:determinism
	d := time.Since(t0) // want:determinism
	_ = now
	return d
}

// TimeSeeded constructs a generator whose seed depends on the clock.
func TimeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want:determinism want:determinism
}

// MapOrder iterates a map without sorting or suppression.
func MapOrder(m map[string]int) []int {
	var out []int
	for _, v := range m { // want:determinism
		out = append(out, v)
	}
	return out
}

// SeededOK is the sanctioned pattern: explicit seed, no finding.
func SeededOK(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// SortedOK iterates a map under the suppression directive.
func SortedOK(m map[string]int) []string {
	var keys []string
	for k := range m { //iguard:sorted keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
