// Package clean is an iguard-vet fixture with zero findings: the
// sanctioned patterns for randomness, time, errors, floats, output,
// seed flow, locking, and liveness.
package clean

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Deterministic seeds its generator explicitly.
func Deterministic(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Elapsed threads timestamps through instead of consulting the clock.
func Elapsed(start, end time.Time) time.Duration {
	return end.Sub(start)
}

// SortedSum iterates a map in sorted key order.
func SortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m { //iguard:sorted keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// Describe propagates errors and keeps output in the caller's hands.
func Describe(m map[string]float64) (string, error) {
	if len(m) == 0 {
		return "", fmt.Errorf("clean: empty input")
	}
	return fmt.Sprintf("sum=%.3f", SortedSum(m)), nil
}

// Near compares floats with an epsilon.
func Near(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// SeededFlow threads an explicit seed through locals into the
// constructor; seedflow's taint analysis proves the chain clean.
func SeededFlow(seed int64) float64 {
	offset := seed*2 + 1
	src := rand.NewSource(offset)
	r := rand.New(src)
	return r.Float64()
}

// applier mirrors the controller's data-plane surface: an interface
// whose implementation may block.
type applier interface {
	Apply(n int) bool
}

// registry pairs its lock on every path and keeps interface calls
// outside the critical section.
type registry struct {
	mu    sync.Mutex
	count int
}

// Record decides under the lock and acts after releasing it — the
// pattern lockcheck enforces for blocking work.
func (r *registry) Record(a applier, n int) bool {
	r.mu.Lock()
	r.count += n
	total := r.count
	r.mu.Unlock()
	return a.Apply(total)
}

// Snapshot releases via defer, which covers every exit path.
func (r *registry) Snapshot(flag bool) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if flag {
		return 0
	}
	return r.count
}

// Accumulate's closure capture exempts sum from dead-store analysis,
// and every store is read anyway.
func Accumulate(xs []float64) float64 {
	sum := 0.0
	add := func(v float64) { sum += v }
	for _, x := range xs {
		add(x)
	}
	return sum
}

// Escapes returns the address of a local: stores through it are
// observable, so liveness never flags them.
func Escapes(xs []int) *int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return &n
}
