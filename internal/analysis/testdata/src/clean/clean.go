// Package clean is an iguard-vet fixture with zero findings: the
// sanctioned patterns for randomness, time, errors, floats, and output.
package clean

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Deterministic seeds its generator explicitly.
func Deterministic(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Elapsed threads timestamps through instead of consulting the clock.
func Elapsed(start, end time.Time) time.Duration {
	return end.Sub(start)
}

// SortedSum iterates a map in sorted key order.
func SortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m { //iguard:sorted keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// Describe propagates errors and keeps output in the caller's hands.
func Describe(m map[string]float64) (string, error) {
	if len(m) == 0 {
		return "", fmt.Errorf("clean: empty input")
	}
	return fmt.Sprintf("sum=%.3f", SortedSum(m)), nil
}

// Near compares floats with an epsilon.
func Near(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}
