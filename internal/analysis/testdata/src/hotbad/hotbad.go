// Package hotbad exercises the hotpath analyzer's finding taxonomy:
// every allocation class the //iguard:hotpath contract forbids.
package hotbad

import "fmt"

//iguard:hotpath
func Root(buf []int, n int) int {
	s := make([]int, n) // want:hotpath
	_ = s
	p := new(int) // want:hotpath
	_ = p
	m := map[int]int{} // want:hotpath
	m[1] = 2           // want:hotpath
	lit := []int{1, 2} // want:hotpath
	_ = lit
	buf = append(buf, n) // want:hotpath
	_ = buf
	return helper(n)
}

// helper has no annotation: it is inlined into Root's check.
func helper(n int) int {
	b := []byte("xy") // want:hotpath
	_ = b
	return n
}

//iguard:hotpath
func Concat(a, b string) string {
	return a + b // want:hotpath
}

type ifc interface{ M() }

type impl struct{ x [4]int }

func (impl) M() {}

//iguard:hotpath
func Boxes(i impl) ifc {
	var v ifc = i // want:hotpath
	return v
}

//iguard:hotpath
func RetBox(n int) any {
	return n // want:hotpath
}

//iguard:hotpath
func Dyn(i ifc, f func() int) {
	i.M() // want:hotpath
	f()   // want:hotpath
}

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

//iguard:hotpath
func MethodVal(c *counter) func() {
	return c.inc // want:hotpath
}

//iguard:hotpath
func Spawns(n int) func() int {
	go spin(n)                   // want:hotpath
	f := func() int { return n } // want:hotpath
	return f
}

func spin(int) {}

//iguard:hotpath
func Unknown() string {
	return fmt.Sprintf("x") // want:hotpath
}

func sink(vs ...any) {
	for range vs {
	}
}

//iguard:hotpath
func Variadic(n int) {
	sink(n) // want:hotpath want:hotpath
}

// Chained proves findings carry the interprocedural chain: the
// allocation two hops down is attributed to this root.
//
//iguard:hotpath
func Chained(n int) int { return mid(n) }

func mid(n int) int { return leaf(n) }

func leaf(n int) int {
	xs := make([]int, n) // want:hotpath
	return len(xs)
}

// Hoistable carries the one machine-fixable finding: a loop-invariant
// make that -fix moves above the loop as a reusable scratch.
//
//iguard:hotpath
func Hoistable(rows [][]float64, dim int) float64 {
	total := 0.0
	for _, r := range rows {
		scratch := make([]float64, dim) // want:hotpath
		copy(scratch, r)
		total += scratch[0]
	}
	return total
}
