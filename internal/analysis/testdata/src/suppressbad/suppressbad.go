// Package suppressbad is an iguard-vet fixture: //iguard: directives
// that suppress nothing — typos, renamed analyzers, unknown directive
// names. Each is reported by the suppress analyzer with a fix that
// removes it (or trims an allow list to its valid names). Expected
// findings are marked with analyzer-name markers on the offending
// lines (see analysis_test.go).
package suppressbad

// Typo names no analyzer, so the comparison below is still reported.
func Typo(a, b float64) bool {
	//iguard:allow(floatcmp) misspelled analyzer name // want:suppress
	return a == b // want:floatcompare
}

// PartiallyStale mixes one valid name with one unknown name: the valid
// half suppresses, the stale half is reported and trimmed by -fix.
func PartiallyStale(a, b float64) bool {
	//iguard:allow(floatcompare,nosuchcheck) exact identity intended // want:suppress
	return a == b
}

// UnknownDirective uses a directive word the tool never defined.
func UnknownDirective(m map[string]int) int {
	n := 0
	//iguard:srted misspelled directive // want:suppress
	for _, v := range m { // want:determinism
		n += v
	}
	return n
}

// Trailing is a stale directive sitting after code on the same line.
func Trailing(a, b float64) bool {
	return a == b //iguard:allow(floatcmp2) stale trailing directive // want:suppress want:floatcompare
}
