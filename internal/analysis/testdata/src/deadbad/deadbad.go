// Package deadbad is an iguard-vet fixture: stores no path reads again
// and statements no path reaches — the refactoring leftovers the
// deadstore analyzer flags (and, for side-effect-free stores, deletes
// under -fix). Expected findings are marked with analyzer-name markers
// on the offending lines (see analysis_test.go).
package deadbad

// DeadAssign overwrites x before any read; the store is pure, so -fix
// deletes the line.
func DeadAssign(a, b int) int {
	x := a
	y := x + 1
	x = a + b // want:deadstore
	x = y
	return x
}

// DeadIncrement bumps a counter after its last read.
func DeadIncrement(n int) int {
	total := n
	final := total
	total++ // want:deadstore
	return final
}

// DeadLastValue's final store has no surviving read, so deleting it
// would leave the declaration unused: reported, but not fixable.
func DeadLastValue(n int) int {
	total := n
	total++ // want:deadstore
	return 0
}

// DeadDecl initializes a variable every path overwrites.
func DeadDecl() int {
	var x = 5 // want:deadstore
	x = 7
	return x
}

// DeadOnBranch stores a value only one branch reads.
func DeadOnBranch(flag bool, a int) int {
	x := a * 2 // want:deadstore
	if flag {
		x = 1
		return x
	}
	x = 2
	return x
}

// AfterReturn contains a statement no path reaches.
func AfterReturn(a int) int {
	if a > 0 {
		return a
		a = 1 // want:deadstore
	}
	return -a
}

// AfterLoop never leaves the loop, so the tail is unreachable.
func AfterLoop(a int) int {
	for {
		a++
		if a > 10 {
			return a
		}
	}
	a = 0 // want:deadstore
	return a
}

// Impure stores are reported but carry no fix: deleting the call could
// change behaviour.
func Impure(f func() int) int {
	x := f() // want:deadstore
	x = 3
	return x
}
