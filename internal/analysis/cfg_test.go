package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"
)

// loadSnippet type-checks one source file in a temp directory and
// returns a pass over it (analyzer choice is irrelevant for CFG tests).
func loadSnippet(t *testing.T, src string) *Pass {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	ld := fixtureLoaderFor(t)
	pkg, err := ld.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading snippet: %v", err)
	}
	return &Pass{Analyzer: Deadstore, Pkg: pkg, report: func(Diagnostic) {}}
}

// funcBody returns the body of the named function in the pass's only file.
func funcBody(t *testing.T, p *Pass, name string) *ast.BlockStmt {
	t.Helper()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd.Body
			}
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

func TestCFGIfElseJoins(t *testing.T) {
	p := loadSnippet(t, `package snippet

func Branch(a int) int {
	x := 0
	if a > 0 {
		x = 1
	} else {
		x = 2
	}
	return x
}
`)
	cfg := BuildCFG(p, funcBody(t, p, "Branch"))
	if regions := cfg.UnreachableRegions(); len(regions) != 0 {
		t.Errorf("unexpected unreachable regions: %d", len(regions))
	}
	reach := cfg.Reachable()
	for _, b := range cfg.Blocks {
		if len(b.Nodes) > 0 && !reach[b] {
			t.Errorf("non-empty block %d unreachable", b.Index)
		}
	}
	// The join block (return x) must have two predecessors.
	joined := false
	for _, b := range cfg.Blocks {
		if len(b.Preds) >= 2 && reach[b] {
			joined = true
		}
	}
	if !joined {
		t.Error("if/else branches do not join")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	p := loadSnippet(t, `package snippet

func Loop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`)
	cfg := BuildCFG(p, funcBody(t, p, "Loop"))
	backEdge := false
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index {
				backEdge = true
			}
		}
	}
	if !backEdge {
		t.Error("for loop produced no back edge")
	}
	if regions := cfg.UnreachableRegions(); len(regions) != 0 {
		t.Errorf("loop body reported unreachable: %d regions", len(regions))
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	p := loadSnippet(t, `package snippet

func Tail(a int) int {
	if a > 0 {
		return a
		a = 1
	}
	return -a
}
`)
	cfg := BuildCFG(p, funcBody(t, p, "Tail"))
	regions := cfg.UnreachableRegions()
	if len(regions) != 1 {
		t.Fatalf("unreachable regions = %d, want 1", len(regions))
	}
	line := p.Pkg.Fset.Position(regions[0].Pos()).Line
	if line != 6 {
		t.Errorf("unreachable region at line %d, want 6", line)
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	p := loadSnippet(t, `package snippet

func Boom(a int) int {
	if a < 0 {
		panic("negative")
	}
	return a
}
`)
	cfg := BuildCFG(p, funcBody(t, p, "Boom"))
	if regions := cfg.UnreachableRegions(); len(regions) != 0 {
		t.Errorf("panic branch made code unreachable: %d regions", len(regions))
	}
	// The block containing panic must not flow to Exit.
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || !p.IsBuiltin(call, "panic") {
				continue
			}
			for _, s := range b.Succs {
				if s == cfg.Exit {
					t.Error("panic block has an edge to Exit")
				}
			}
		}
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	p := loadSnippet(t, `package snippet

func Classify(a int) int {
	out := 0
	switch a {
	case 0:
		out = 1
		fallthrough
	case 1:
		out += 2
	default:
		out = 3
	}
	return out
}
`)
	cfg := BuildCFG(p, funcBody(t, p, "Classify"))
	if regions := cfg.UnreachableRegions(); len(regions) != 0 {
		t.Errorf("switch body reported unreachable: %d regions", len(regions))
	}
	// fallthrough: the case-0 body must have a successor other than the
	// post-switch join — the case-1 body.
	found := false
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if len(b.Nodes) > 0 && len(s.Nodes) > 0 && s.Index == b.Index+1 && len(s.Preds) >= 2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("fallthrough edge between case bodies not found")
	}
}

func TestCFGGotoAndLabels(t *testing.T) {
	p := loadSnippet(t, `package snippet

func Jump(n int) int {
	s := 0
loop:
	for i := 0; i < n; i++ {
		if i == 3 {
			continue loop
		}
		if i == 7 {
			break loop
		}
		s += i
	}
	if s == 0 {
		goto done
	}
	s *= 2
done:
	return s
}
`)
	cfg := BuildCFG(p, funcBody(t, p, "Jump"))
	if regions := cfg.UnreachableRegions(); len(regions) != 0 {
		t.Errorf("labeled control flow broke reachability: %d regions", len(regions))
	}
	reach := cfg.Reachable()
	if !reach[cfg.Exit] {
		t.Error("exit not reachable through labeled edges")
	}
}
