package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fixtureLoader is shared across tests: the source importer re-checks
// the standard library per loader, so one loader per test binary keeps
// the suite fast.
var (
	fixtureOnce   sync.Once
	fixtureLd     *Loader
	fixtureLdErr  error
	fixtureModDir string
)

func fixtureLoaderFor(t *testing.T) *Loader {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureModDir, fixtureLdErr = FindModuleRoot(".")
		if fixtureLdErr != nil {
			return
		}
		fixtureLd, fixtureLdErr = NewLoader(fixtureModDir)
	})
	if fixtureLdErr != nil {
		t.Fatalf("loader: %v", fixtureLdErr)
	}
	return fixtureLd
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	ld := fixtureLoaderFor(t)
	pkg, err := ld.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// wantMarkers parses `// want:<analyzer>` comments out of a fixture,
// returning the expected (file:line -> analyzer -> count) multiset.
func wantMarkers(t *testing.T, pkg *Package) map[string]map[string]int {
	t.Helper()
	want := map[string]map[string]int{}
	entries, err := os.ReadDir(pkg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(pkg.Dir, e.Name())
		data, err := os.ReadFile(full)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, field := range strings.Fields(line) {
				name, ok := strings.CutPrefix(field, "want:")
				if !ok {
					continue
				}
				key := fmt.Sprintf("%s:%d", full, i+1)
				if want[key] == nil {
					want[key] = map[string]int{}
				}
				want[key][name]++
			}
		}
	}
	return want
}

// TestFixtures runs the full suite over each fixture package and
// compares findings against the want: markers, both directions.
func TestFixtures(t *testing.T) {
	for _, name := range []string{"determbad", "errbad", "floatbad", "printbad",
		"seedbad", "lockbad", "deadbad", "suppressbad", "hotbad", "hotclean",
		"ownbad", "ownclean", "clean"} {
		t.Run(name, func(t *testing.T) {
			pkg := loadFixture(t, name)
			want := wantMarkers(t, pkg)
			got := map[string]map[string]int{}
			for _, a := range All() {
				for _, d := range RunAnalyzer(a, pkg) {
					key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
					if got[key] == nil {
						got[key] = map[string]int{}
					}
					got[key][d.Analyzer]++
					if d.Pos.Column <= 0 {
						t.Errorf("%s: missing column in position", d)
					}
				}
			}
			for key, analyzers := range want {
				for an, n := range analyzers {
					if got[key][an] != n {
						t.Errorf("%s: want %d %s finding(s), got %d", key, n, an, got[key][an])
					}
				}
			}
			for key, analyzers := range got {
				for an, n := range analyzers {
					if want[key][an] != n {
						t.Errorf("%s: unexpected %s finding (got %d, want %d)", key, an, n, want[key][an])
					}
				}
			}
		})
	}
}

// TestLibraryScope checks that LibraryOnly analyzers skip cmd-style
// packages: the same forbidden constructs are legal outside internal/.
func TestLibraryScope(t *testing.T) {
	pkg := loadFixture(t, "determbad")
	if !pkg.IsLibrary("iguard") {
		t.Fatalf("fixture %s not classified as library code", pkg.ImportPath)
	}
	cmdPkg := &Package{ImportPath: "iguard/cmd/iguard-train"}
	if cmdPkg.IsLibrary("iguard") {
		t.Fatal("cmd/ package classified as library code")
	}
	rootPkg := &Package{ImportPath: "iguard"}
	if rootPkg.IsLibrary("iguard") {
		t.Fatal("module root classified as library code")
	}
}

// TestSuppressionOnPrecedingLine checks that a directive on the line
// above the statement suppresses the finding too.
func TestSuppressionOnPrecedingLine(t *testing.T) {
	dir := t.TempDir()
	src := `package tmpfix

func Exact(a, b float64) bool {
	//iguard:allow(floatcompare) exact identity intended
	return a == b
}
`
	if err := os.WriteFile(filepath.Join(dir, "tmpfix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// A package outside the module tree still loads; its synthetic
	// import path is derived relative to the module root.
	ld := fixtureLoaderFor(t)
	pkg, err := ld.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzer(FloatCompare, pkg); len(diags) != 0 {
		t.Fatalf("preceding-line directive ignored: %v", diags)
	}
}

// TestSuppressionMultiName checks that one allow directive may name
// several analyzers — //iguard:allow(a,b) — and suppresses each, while
// the suppress analyzer accepts it as fully valid.
func TestSuppressionMultiName(t *testing.T) {
	p := loadSnippet(t, `package tmpmulti

import "fmt"

func Exact(a, b float64) bool {
	//iguard:allow(floatcompare,errcheck) both findings intended
	fmt.Errorf("dropped: %v", a == b)
	return false
}
`)
	for _, a := range []*Analyzer{FloatCompare, ErrCheck, Suppress} {
		if diags := RunAnalyzer(a, p.Pkg); len(diags) != 0 {
			t.Errorf("%s findings with multi-name directive: %v", a.Name, diags)
		}
	}
}

// TestSuppressionMultiLineStatement checks a directive on the line
// above a statement that spans several lines.
func TestSuppressionMultiLineStatement(t *testing.T) {
	p := loadSnippet(t, `package tmpspan

func Span(a, b, c float64) bool {
	//iguard:allow(floatcompare) exact identity intended
	return a ==
		b+
			c
}
`)
	if diags := RunAnalyzer(FloatCompare, p.Pkg); len(diags) != 0 {
		t.Errorf("directive above multi-line statement ignored: %v", diags)
	}
}

// TestSuppressionStaleDirective checks that a directive naming no
// analyzer suppresses nothing and is itself reported, with a fix.
func TestSuppressionStaleDirective(t *testing.T) {
	p := loadSnippet(t, `package tmpstale

func Exact(a, b float64) bool {
	//iguard:allow(floatcmp) typo
	return a == b
}
`)
	if diags := RunAnalyzer(FloatCompare, p.Pkg); len(diags) != 1 {
		t.Errorf("stale directive suppressed the finding: %v", diags)
	}
	diags := RunAnalyzer(Suppress, p.Pkg)
	if len(diags) != 1 {
		t.Fatalf("suppress findings = %d, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "floatcmp") {
		t.Errorf("stale report does not name the unknown analyzer: %s", diags[0].Message)
	}
	if len(diags[0].Fixes) == 0 {
		t.Error("stale directive carries no removal fix")
	}
}

// TestDiagnosticString checks the canonical rendering format.
func TestDiagnosticString(t *testing.T) {
	pkg := loadFixture(t, "floatbad")
	diags := RunAnalyzer(FloatCompare, pkg)
	if len(diags) == 0 {
		t.Fatal("no findings on floatbad")
	}
	s := diags[0].String()
	if !strings.Contains(s, "[floatcompare]") || !strings.Contains(s, "floatbad.go:") {
		t.Errorf("diagnostic format = %q", s)
	}
}
