// Worklist dataflow over CFGs. A FlowProblem supplies the lattice
// (Merge/Equal), the boundary fact, and a per-block transfer function;
// Solve iterates to a fixpoint and returns the fact at each block's
// entry (forward) or exit (backward). Analyzers then make one final
// deterministic reporting pass per block, re-applying the transfer
// with reporting enabled, so diagnostics are emitted exactly once and
// in block order regardless of how the worklist converged.
package analysis

// Direction selects forward (facts flow entry→exit) or backward
// (liveness-style) propagation.
type Direction int

// Supported propagation directions.
const (
	Forward Direction = iota
	Backward
)

// FlowProblem defines one dataflow analysis over a CFG. Facts are
// opaque to the solver; nil is the bottom element and Merge must treat
// it as the identity.
type FlowProblem struct {
	Dir Direction
	// Boundary is the fact at the entry block (forward) or exit block
	// (backward).
	Boundary func() any
	// Merge joins two non-nil facts; it must be commutative and
	// monotone, and must not mutate its arguments.
	Merge func(a, b any) any
	// Equal reports whether iteration has stabilised for a block.
	Equal func(a, b any) bool
	// Transfer computes the block's outgoing fact from its incoming
	// one; it must not mutate in.
	Transfer func(b *Block, in any) any
}

// Solve iterates the problem to a fixpoint. For forward problems the
// returned map holds each block's entry fact; for backward problems,
// its exit fact. Blocks unreachable along the propagation direction
// keep a nil (bottom) fact.
func Solve(c *CFG, p FlowProblem) map[*Block]any {
	in := make(map[*Block]any, len(c.Blocks))
	out := make(map[*Block]any, len(c.Blocks))

	next := func(b *Block) []*Block { return b.Succs }
	prev := func(b *Block) []*Block { return b.Preds }
	start := c.Entry
	if p.Dir == Backward {
		next, prev = prev, next
		start = c.Exit
	}

	in[start] = p.Boundary()
	// Deterministic worklist: blocks are processed in index order per
	// round; the fixpoint is unique either way, this just bounds churn.
	work := make([]*Block, 0, len(c.Blocks))
	inWork := make([]bool, len(c.Blocks))
	push := func(b *Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	push(start)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		merged := in[b]
		if b != start {
			merged = nil
			for _, pr := range prev(b) {
				if o := out[pr]; o != nil {
					if merged == nil {
						merged = o
					} else {
						merged = p.Merge(merged, o)
					}
				}
			}
			if merged == nil {
				continue // not yet reached
			}
			in[b] = merged
		}
		o := p.Transfer(b, merged)
		if old, ok := out[b]; ok && p.Equal(old, o) {
			continue
		}
		out[b] = o
		for _, s := range next(b) {
			push(s)
		}
	}
	return in
}
