// Control-flow graphs. BuildCFG lowers one function body into basic
// blocks connected by possible-execution edges — the substrate the
// flow-sensitive analyzers (seedflow, lockcheck, deadstore) iterate
// over. The builder is syntactic: conditions are never evaluated, so
// both arms of every branch are considered reachable, which keeps the
// analyzers sound for the invariants they check (a lock released only
// on the `if` arm is still a bug even when the condition is always
// true in practice).
package analysis

import (
	"go/ast"
	"go/token"
)

// CFG is the control-flow graph of a single function literal or
// declaration. Entry is the first executable block; Exit is a
// synthetic, empty block that every normal return edge targets. Panic
// and process-terminating calls end their block without an Exit edge:
// deferred cleanup still runs on panic, so path-pairing analyzers must
// not demand explicit releases there.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// Block is one straight-line run of AST nodes. Nodes holds statements
// in execution order; branch conditions and range expressions appear
// as their owning statement's expression node so dataflow transfer
// functions see their reads.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block

	// sealed marks a block whose control flow never falls through to a
	// lexically following block (it ended in return/branch/panic).
	sealed bool
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// breaks / continues are the innermost targets; labels maps a label
	// name to its loop/switch targets and to the block a goto jumps to.
	breaks    []*Block
	continues []*Block
	labels    map[string]*labelTargets

	// pendingLabel is the label naming the next loop/switch statement,
	// so `break L` / `continue L` resolve to that construct's targets.
	pendingLabel string

	// gotos records forward gotos resolved once all labels are known.
	gotos []pendingGoto

	pass *Pass
}

type labelTargets struct {
	entry *Block // block the labeled statement starts in (goto target)
	brk   *Block // break L target, nil outside loops/switches
	cont  *Block // continue L target, nil outside loops
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG lowers body into a CFG. The pass is used only to resolve
// whether calls terminate control flow (panic, os.Exit); it may be nil
// in tests, in which case only the panic builtin is recognised by name.
func BuildCFG(pass *Pass, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*labelTargets{},
		pass:   pass,
	}
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	b.cfg.Exit = b.newBlock()
	b.stmtList(body.List)
	// Falling off the end of the body is a normal exit.
	b.edge(b.cur, b.cfg.Exit)
	for _, g := range b.gotos {
		if lt, ok := b.labels[g.label]; ok {
			b.edge(g.from, lt.entry)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge connects from → to unless from ended in a jump already.
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || from.sealed {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock seals nothing: it begins a new block reached from cur.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	b.edge(b.cur, blk)
	b.cur = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		cond := b.cur
		after := b.newBlock()

		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)

		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		contTarget := head
		if s.Post != nil {
			post := b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			contTarget = post
		}
		b.registerLabel(label, head, after, contTarget)

		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.pushLoop(after, contTarget)
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, contTarget)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		b.edge(head, after)
		b.registerLabel(label, head, after, head)

		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.pushLoop(after, head)
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchClauses(label, s.Body.List, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			var exprs []ast.Node
			for _, e := range cc.List {
				exprs = append(exprs, e)
			}
			return exprs, cc.Body, cc.List == nil
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchClauses(label, s.Body.List, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			var exprs []ast.Node
			for _, e := range cc.List {
				exprs = append(exprs, e)
			}
			return exprs, cc.Body, cc.List == nil
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.cur
		after := b.newBlock()
		b.registerLabel(label, sel, after, nil)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(sel, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.cur = blk
			b.pushBreak(after)
			b.stmtList(cc.Body)
			b.popBreak()
			b.edge(b.cur, after)
		}
		// A select with no default blocks, but some case always fires
		// eventually; control cannot skip to after directly.
		b.cur = after

	case *ast.LabeledStmt:
		// Begin a fresh block so gotos have a well-defined target.
		entry := b.startBlock()
		b.labels[s.Label.Name] = &labelTargets{entry: entry}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur.sealed = true
		b.cur = b.newBlock()

	case *ast.BranchStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if lt, ok := b.labels[s.Label.Name]; ok && lt.brk != nil {
					b.edge(b.cur, lt.brk)
				}
			} else if n := len(b.breaks); n > 0 {
				b.edge(b.cur, b.breaks[n-1])
			}
		case token.CONTINUE:
			if s.Label != nil {
				if lt, ok := b.labels[s.Label.Name]; ok && lt.cont != nil {
					b.edge(b.cur, lt.cont)
				}
			} else if n := len(b.continues); n > 0 {
				b.edge(b.cur, b.continues[n-1])
			}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		case token.FALLTHROUGH:
			// Edge added by switchClauses, which knows the next case.
		}
		b.cur.sealed = s.Tok != token.FALLTHROUGH
		b.cur = b.newBlock()

	case *ast.DeferStmt, *ast.GoStmt, *ast.SendStmt, *ast.IncDecStmt,
		*ast.AssignStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.terminates(call) {
			// panic/os.Exit: control never reaches the next statement,
			// and does not flow to Exit either (defers still run).
			b.cur.sealed = true
			b.cur = b.newBlock()
		}

	default:
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchClauses wires the shared case-dispatch shape of switch and
// type switch: every case block is entered from the dispatch block, a
// missing default adds a dispatch→after edge, and fallthrough chains
// into the next case body.
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt, split func(ast.Stmt) ([]ast.Node, []ast.Stmt, bool)) {
	dispatch := b.cur
	after := b.newBlock()
	b.registerLabel(label, dispatch, after, nil)

	hasDefault := false
	caseBlocks := make([]*Block, len(clauses))
	for i := range clauses {
		caseBlocks[i] = b.newBlock()
		b.edge(dispatch, caseBlocks[i])
	}
	for i, c := range clauses {
		exprs, body, isDefault := split(c)
		if isDefault {
			hasDefault = true
		}
		blk := caseBlocks[i]
		blk.Nodes = append(blk.Nodes, exprs...)
		b.cur = blk
		b.pushBreak(after)
		fallsThrough := b.buildCaseBody(body)
		b.popBreak()
		if fallsThrough && i+1 < len(clauses) {
			b.edge(b.cur, caseBlocks[i+1])
			b.cur.sealed = true
		}
		b.edge(b.cur, after)
	}
	if !hasDefault {
		b.edge(dispatch, after)
	}
	b.cur = after
}

// buildCaseBody builds one case body and reports whether it ends in a
// fallthrough statement.
func (b *cfgBuilder) buildCaseBody(body []ast.Stmt) bool {
	fallsThrough := false
	for i, s := range body {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i == len(body)-1 {
			b.cur.Nodes = append(b.cur.Nodes, s)
			fallsThrough = true
			break
		}
		b.stmt(s)
	}
	return fallsThrough
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) pushBreak(brk *Block) { b.breaks = append(b.breaks, brk) }
func (b *cfgBuilder) popBreak()            { b.breaks = b.breaks[:len(b.breaks)-1] }

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) registerLabel(label string, entry, brk, cont *Block) {
	if label == "" {
		return
	}
	lt := b.labels[label]
	if lt == nil {
		lt = &labelTargets{entry: entry}
		b.labels[label] = lt
	}
	lt.brk = brk
	lt.cont = cont
}

// terminates reports whether the call never returns: the panic builtin,
// os.Exit, or log.Fatal*.
func (b *cfgBuilder) terminates(call *ast.CallExpr) bool {
	if b.pass != nil {
		if b.pass.IsBuiltin(call, "panic") {
			return true
		}
		if pkgPath, fn, ok := b.pass.PkgFunc(call); ok {
			if pkgPath == "os" && fn == "Exit" {
				return true
			}
			if pkgPath == "log" && (fn == "Fatal" || fn == "Fatalf" || fn == "Fatalln" || fn == "Panic" || fn == "Panicf" || fn == "Panicln") {
				return true
			}
		}
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Reachable returns the set of blocks reachable from Entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{c.Entry: true}
	stack := []*Block{c.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// UnreachableRegions returns the first node of every maximal
// unreachable region: a non-empty block no reachable block leads into
// and that is not merely the continuation of another unreachable block.
func (c *CFG) UnreachableRegions() []ast.Node {
	reach := c.Reachable()
	var heads []ast.Node
	for _, blk := range c.Blocks {
		if reach[blk] || len(blk.Nodes) == 0 {
			continue
		}
		if len(blk.Preds) == 0 {
			heads = append(heads, blk.Nodes[0])
		}
	}
	return heads
}
