package analysis

import (
	"go/ast"
	"go/types"
	"testing"
)

// findCall returns the first call expression inside the named function
// whose rendered callee text contains want.
func findCall(t *testing.T, p *Pass, fn, want string) *ast.CallExpr {
	t.Helper()
	var out *ast.CallExpr
	ast.Inspect(funcBody(t, p, fn), func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || out != nil {
			return true
		}
		fun := ast.Unparen(call.Fun)
		if ix, ok := fun.(*ast.IndexExpr); ok {
			fun = ast.Unparen(ix.X)
		}
		var name string
		switch f := fun.(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			name = f.Sel.Name
		}
		if name == want {
			out = call
		}
		return true
	})
	if out == nil {
		t.Fatalf("no call of %q in %s", want, fn)
	}
	return out
}

func TestResolveCallKinds(t *testing.T) {
	p := loadSnippet(t, `package snippet

type doer interface{ Do() }

type impl struct{ n int }

func (i *impl) Do() { i.n++ }

func named() {}

func Driver(d doer, i *impl, fv func()) {
	named()
	i.Do()
	d.Do()
	fv()
	_ = make([]int, 1)
	_ = int64(3)
	func() {}()
	g := generic[int]
	g(1)
	generic[int](2)
}

func generic[T any](v T) {}
`)
	g := BuildCallGraph(p.Pkg)
	cases := []struct {
		callee string
		kind   TargetKind
	}{
		{"named", TargetStatic},
		{"Do", TargetStatic}, // resolved via i.Do() first in source order
		{"make", TargetBuiltin},
		{"int64", TargetConversion},
		{"generic", TargetStatic}, // instantiated generic unwraps to its origin
	}
	for _, c := range cases {
		call := findCall(t, p, "Driver", c.callee)
		got := g.ResolveCall(p.Pkg, call)
		if got.Kind != c.kind {
			t.Errorf("ResolveCall(%s) kind = %v, want %v", c.callee, got.Kind, c.kind)
		}
	}
	// The interface dispatch resolves to the interface method, with the
	// callee recorded.
	var dCalls []*ast.CallExpr
	ast.Inspect(funcBody(t, p, "Driver"), func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Do" {
				dCalls = append(dCalls, call)
			}
		}
		return true
	})
	if len(dCalls) != 2 {
		t.Fatalf("found %d Do() calls, want 2", len(dCalls))
	}
	if got := g.ResolveCall(p.Pkg, dCalls[0]); got.Kind != TargetStatic {
		t.Errorf("concrete method call kind = %v, want static", got.Kind)
	}
	ifaceTarget := g.ResolveCall(p.Pkg, dCalls[1])
	if ifaceTarget.Kind != TargetInterface {
		t.Errorf("interface dispatch kind = %v, want interface", ifaceTarget.Kind)
	}
	if ifaceTarget.Callee == nil || ifaceTarget.Callee.Name() != "Do" {
		t.Errorf("interface dispatch callee = %v, want the interface method Do", ifaceTarget.Callee)
	}
	fvCall := findCall(t, p, "Driver", "fv")
	if got := g.ResolveCall(p.Pkg, fvCall); got.Kind != TargetFuncValue {
		t.Errorf("func-value call kind = %v, want funcvalue", got.Kind)
	}
}

// reachNames runs SyncReachable from one root and returns the reached
// function names.
func reachNames(t *testing.T, p *Pass, root string) map[string]bool {
	t.Helper()
	g := BuildCallGraph(p.Pkg)
	var rootNode *FuncNode
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == root {
				obj, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
				rootNode = g.NodeOf(obj)
			}
		}
	}
	if rootNode == nil {
		t.Fatalf("root %s not found", root)
	}
	reach := g.SyncReachable([]*FuncNode{rootNode})
	names := map[string]bool{}
	for fn := range reach.Funcs {
		names[fn.Name()] = true
	}
	return names
}

func TestSyncReachableRecursionAndSpawn(t *testing.T) {
	p := loadSnippet(t, `package snippet

type w struct{ n int }

func (x *w) hop() { x.n++ }

func Root(x *w) {
	direct()
	stepA(3)
	go spawned()
	go func() { hidden() }()
	f := x.hop
	f()
	func() { inLit() }()
}

func direct()  { direct() } // self-recursion must terminate
func stepA(d int) {
	if d > 0 {
		stepB(d - 1)
	}
}
func stepB(d int) { stepA(d) } // mutual recursion must terminate
func spawned()    {}
func hidden()     {}
func inLit()      {}
`)
	names := reachNames(t, p, "Root")
	for _, want := range []string{"Root", "direct", "stepA", "stepB", "hop", "inLit"} {
		if !names[want] {
			t.Errorf("%s not reached; got %v", want, names)
		}
	}
	for _, skip := range []string{"spawned", "hidden"} {
		if names[skip] {
			t.Errorf("%s reached despite go-spawn; got %v", skip, names)
		}
	}
}
