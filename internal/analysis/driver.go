package analysis

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Exit codes of the driver.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitError    = 2 // usage, load, or type-check failure
)

// JSONFinding is the -json output shape, one element per diagnostic.
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Execute runs the iguard-vet driver: it loads and type-checks every
// package named by the patterns (default ./...), applies the enabled
// analyzers, and prints findings as "file:line:col: [analyzer] message"
// lines (or a JSON array with -json). The returned code is the process
// exit status: 0 clean, 1 findings, 2 load/usage error.
func Execute(args []string, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		// A failed write to stderr has nowhere left to be reported; both
		// paths exit with the same status.
		if _, werr := io.WriteString(stderr, "iguard-vet: "+err.Error()+"\n"); werr != nil {
			return ExitError
		}
		return ExitError
	}
	fs := flag.NewFlagSet("iguard-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	fixMode := fs.Bool("fix", false, "apply suggested fixes to the source tree, verifying idempotency")
	enabled := map[string]*bool{}
	for _, a := range All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	only := fs.String("only", "", "comma-separated list of analyzers to run, disabling the rest")
	fs.Usage = func() {
		if _, err := io.WriteString(stderr, "usage: iguard-vet [flags] [packages]\n\nAnalyzers run over the packages (default ./...); findings exit 1.\n\n"); err != nil {
			return
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	if *jsonOut && *sarifOut {
		return fail(errors.New("-json and -sarif are mutually exclusive"))
	}
	if *only != "" {
		listed := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := enabled[name]; !ok {
				return fail(fmt.Errorf("-only: no analyzer named %q", name))
			}
			listed[name] = true
		}
		//iguard:sorted flag assignment; order cannot escape
		for name, on := range enabled {
			*on = listed[name]
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	diags, err := Run(cwd, patterns, enabled)
	if err != nil {
		return fail(err)
	}
	if *fixMode {
		diags, err = fixToConvergence(cwd, patterns, enabled, diags, stderr)
		if err != nil {
			return fail(err)
		}
	}

	var out strings.Builder
	if *sarifOut {
		if err := WriteSARIF(&out, cwd, diags); err != nil {
			return fail(err)
		}
	} else if *jsonOut {
		findings := make([]JSONFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, JSONFinding{
				File:     relPath(cwd, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(&out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(&out, "%s:%d:%d: [%s] %s\n", relPath(cwd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if _, err := io.WriteString(stdout, out.String()); err != nil {
		return fail(err)
	}
	if len(diags) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// fixToConvergence applies suggested fixes, re-running the analysis
// after each round until no fixable diagnostics remain (deleting one
// dead store can expose the store feeding it). A round that applies
// fixes but leaves the diagnostic set unchanged means a fix failed to
// resolve its own finding — that breaks the -fix CI gate, so it is an
// error rather than a loop. Returns the post-fix diagnostics.
func fixToConvergence(cwd string, patterns []string, enabled map[string]*bool, diags []Diagnostic, stderr io.Writer) ([]Diagnostic, error) {
	const maxRounds = 8
	for round := 0; round < maxRounds && FixableCount(diags) > 0; round++ {
		res, err := ApplyFixes(diags, nil)
		if err != nil {
			return nil, err
		}
		if res.Applied == 0 {
			// Only overlap-skipped fixes remain; nothing will change.
			break
		}
		if _, err := fmt.Fprintf(stderr, "iguard-vet: applied %d fix(es) to %d file(s)\n", res.Applied, len(res.Files)); err != nil {
			return nil, err
		}
		before := diagKeys(diags)
		diags, err = Run(cwd, patterns, enabled)
		if err != nil {
			return nil, fmt.Errorf("re-analysis after -fix failed: %w", err)
		}
		if FixableCount(diags) > 0 && diagKeys(diags) == before {
			return nil, errors.New("-fix applied changes but the findings did not change; fix is not idempotent")
		}
	}
	if FixableCount(diags) > 0 {
		return nil, fmt.Errorf("-fix did not converge after %d rounds (%d fixable findings remain)", maxRounds, FixableCount(diags))
	}
	return diags, nil
}

// diagKeys renders a canonical signature of a diagnostic list.
func diagKeys(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Run loads the patterns relative to cwd and applies every analyzer
// whose entry in enabled is true (a missing entry means enabled),
// returning diagnostics sorted by position and deduplicated, so output
// is byte-stable regardless of pattern order or overlap.
func Run(cwd string, patterns []string, enabled map[string]*bool) ([]Diagnostic, error) {
	modRoot, err := FindModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range All() {
			if on, ok := enabled[a.Name]; ok && on != nil && !*on {
				continue
			}
			if a.LibraryOnly && !pkg.IsLibrary(loader.ModPath) {
				continue
			}
			diags = append(diags, RunAnalyzer(a, pkg)...)
		}
	}
	SortDiagnostics(diags)
	return dedupDiagnostics(diags), nil
}

// dedupDiagnostics collapses identical findings (same position,
// analyzer, and message) that overlapping patterns can produce; input
// must be sorted.
func dedupDiagnostics(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			prev := diags[i-1]
			if d.Pos == prev.Pos && d.Analyzer == prev.Analyzer && d.Message == prev.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// relPath shortens filename relative to base for readable output,
// falling back to the absolute path.
func relPath(base, filename string) string {
	if rel, err := filepath.Rel(base, filename); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return filename
}
