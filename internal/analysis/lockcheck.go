package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Lockcheck verifies the locking discipline internal/controller's
// contract documents, on every CFG path:
//
//   - every mu.Lock() is released on all paths (explicitly or by a
//     deferred Unlock), and never re-acquired while already held;
//   - no Unlock without a matching Lock on some path;
//   - no blocking operation happens inside a critical section: channel
//     sends/receives, time.Sleep, WaitGroup.Wait, and — the
//     Predict/Install class — method calls dispatched through an
//     interface, whose implementation (a data-plane driver, a model)
//     may block or take its own locks;
//   - locks are never copied by value (receivers, parameters, results,
//     assignments, range values).
//
// Read locks (RLock/RUnlock) are paired like write locks but may be
// held multiple times. Panic paths are exempt from release pairing:
// deferred unlocks run during unwinding.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc: "verify mutex acquire/release pairing on all CFG paths, forbid blocking " +
		"calls under a held lock and lock copies in internal/ packages",
	LibraryOnly: true,
	Run:         runLockcheck,
}

// lockState is the per-path possibility of a lock being held.
type lockHeld int

const (
	lockHeldYes   lockHeld = iota // held on every path into this point
	lockHeldMaybe                 // held on some path only
)

type lockFact struct {
	held     lockHeld
	since    token.Pos // earliest Lock() position, for messages
	deferred bool      // a deferred Unlock covers function exit
	read     bool      // read lock (RLock)
}

// lockFacts maps a lock's canonical expression ("c.mu") to its state;
// absent keys are definitely not held.
type lockFacts map[string]*lockFact

func (s lockFacts) clone() lockFacts {
	out := make(lockFacts, len(s))
	for k, v := range s { //iguard:sorted map copy is key-order independent
		c := *v
		out[k] = &c
	}
	return out
}

func runLockcheck(p *Pass) {
	for _, f := range p.Pkg.Files {
		p.checkLockCopies(f)
		for _, body := range functionBodies(f) {
			p.lockcheckFunc(body)
		}
	}
}

func (p *Pass) lockcheckFunc(body *ast.BlockStmt) {
	cfg := BuildCFG(p, body)
	problem := FlowProblem{
		Dir:      Forward,
		Boundary: func() any { return lockFacts{} },
		Merge:    mergeLockFacts,
		Equal:    lockFactsEqual,
		Transfer: func(b *Block, in any) any {
			return p.lockTransfer(b, in.(lockFacts), false)
		},
	}
	inFacts := Solve(cfg, problem)
	for _, b := range cfg.Blocks {
		in, ok := inFacts[b].(lockFacts)
		if !ok {
			continue
		}
		p.lockTransfer(b, in, true)
	}
	// Exit pairing: locks still (possibly) held at a normal return with
	// no deferred release were forgotten on some path.
	if exit, ok := inFacts[cfg.Exit].(lockFacts); ok {
		for _, name := range sortedKeys(exit) {
			f := exit[name]
			if f.deferred {
				continue
			}
			verb := "is"
			if f.held == lockHeldMaybe {
				verb = "may be"
			}
			p.Reportf(f.since,
				"%s %s still locked when the function returns; unlock on every path or defer the unlock", name, verb)
		}
	}
}

func mergeLockFacts(a, b any) any {
	x, y := a.(lockFacts), b.(lockFacts)
	out := lockFacts{}
	for k, v := range x { //iguard:sorted merge computes a per-key join, order-independent
		c := *v
		w, ok := y[k]
		if !ok {
			c.held = lockHeldMaybe
		} else {
			if w.held == lockHeldMaybe {
				c.held = lockHeldMaybe
			}
			if w.since < c.since {
				c.since = w.since
			}
			c.deferred = c.deferred || w.deferred
		}
		out[k] = &c
	}
	for k, v := range y { //iguard:sorted merge computes a per-key join, order-independent
		if _, ok := x[k]; !ok {
			c := *v
			c.held = lockHeldMaybe
			out[k] = &c
		}
	}
	return out
}

func lockFactsEqual(a, b any) bool {
	x, y := a.(lockFacts), b.(lockFacts)
	if len(x) != len(y) {
		return false
	}
	for k, v := range x { //iguard:sorted set comparison is order-independent
		w, ok := y[k]
		if !ok || w.held != v.held || w.deferred != v.deferred || w.since != v.since {
			return false
		}
	}
	return true
}

// lockTransfer interprets one block's nodes in order, mutating a copy
// of the incoming fact. With report set it also emits diagnostics —
// the solver calls it silently until the fixpoint stabilises.
func (p *Pass) lockTransfer(b *Block, in lockFacts, report bool) any {
	state := in.clone()
	for _, n := range b.Nodes {
		if rng, ok := n.(*ast.RangeStmt); ok {
			n = rng.X // body statements live in their own blocks
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			if name, op, ok := p.lockOp(d.Call); ok && (op == "Unlock" || op == "RUnlock") {
				if f, held := state[name]; held {
					f.deferred = true
				}
			}
			continue
		}
		ast.Inspect(n, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.FuncLit:
				return false // analyzed as its own function
			case *ast.SendStmt:
				p.reportBlockedOp(state, node.Pos(), "channel send", report)
			case *ast.UnaryExpr:
				if node.Op == token.ARROW {
					p.reportBlockedOp(state, node.Pos(), "channel receive", report)
				}
			case *ast.CallExpr:
				p.lockCall(state, node, report)
			}
			return true
		})
	}
	return state
}

// lockCall applies one call's effect on the lock state.
func (p *Pass) lockCall(state lockFacts, call *ast.CallExpr, report bool) {
	if name, op, ok := p.lockOp(call); ok {
		switch op {
		case "Lock", "RLock":
			read := op == "RLock"
			if f, held := state[name]; held && report && f.held == lockHeldYes && !read && !f.read {
				p.Reportf(call.Pos(),
					"%s.Lock() while %s is already held (locked at %s); this deadlocks", name, name, p.shortPos(f.since))
			}
			if _, held := state[name]; !held {
				state[name] = &lockFact{held: lockHeldYes, since: call.Pos(), read: read}
			}
		case "Unlock", "RUnlock":
			if _, held := state[name]; !held {
				if report {
					p.Reportf(call.Pos(),
						"%s.%s() without a matching %s on this path", name, op, matchingLock(op))
				}
				return
			}
			delete(state, name)
		}
		return
	}
	if kind, ok := p.blockingCall(call); ok {
		p.reportBlockedOp(state, call.Pos(), kind, report)
	}
}

func matchingLock(unlockOp string) string {
	if unlockOp == "RUnlock" {
		return "RLock"
	}
	return "Lock"
}

// reportBlockedOp flags a blocking operation while any lock is held.
func (p *Pass) reportBlockedOp(state lockFacts, pos token.Pos, kind string, report bool) {
	if !report {
		return
	}
	for _, name := range sortedKeys(state) {
		f := state[name]
		if f.held != lockHeldYes {
			continue
		}
		p.Reportf(pos,
			"%s while %s is held (locked at %s); move blocking work outside the critical section", kind, name, p.shortPos(f.since))
		return // one report per operation is enough
	}
}

// lockOp recognises X.Lock / X.Unlock / X.RLock / X.RUnlock /
// X.TryLock where X is a sync.Mutex or sync.RWMutex (possibly behind a
// pointer), returning X's canonical rendering and the operation.
func (p *Pass) lockOp(call *ast.CallExpr) (name, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if !isMutexType(p.TypeOf(sel.X)) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// isMutexType recognises sync.Mutex and sync.RWMutex, optionally
// behind a pointer.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// blockingCall classifies calls that can block for unbounded time:
// interface-dispatched methods (the data-plane Switch, model Predict
// interfaces — the implementation is unknown and may block or lock),
// time.Sleep, and WaitGroup.Wait. Interface methods named Error or
// String are exempt: render-only by convention.
func (p *Pass) blockingCall(call *ast.CallExpr) (string, bool) {
	if pkgPath, fn, ok := p.PkgFunc(call); ok {
		if pkgPath == "time" && fn == "Sleep" {
			return "time.Sleep", true
		}
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name == "Wait" {
		if t := p.TypeOf(sel.X); t != nil {
			base := t
			if ptr, isPtr := base.(*types.Pointer); isPtr {
				base = ptr.Elem()
			}
			if named, isNamed := base.(*types.Named); isNamed && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "sync" {
				return "sync." + named.Obj().Name() + ".Wait", true
			}
		}
	}
	selection := p.Pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", false
	}
	if !types.IsInterface(selection.Recv()) {
		return "", false
	}
	if sel.Sel.Name == "Error" || sel.Sel.Name == "String" {
		return "", false
	}
	return "interface call " + types.ExprString(sel.X) + "." + sel.Sel.Name, true
}

// checkLockCopies flags locks passed, returned, or assigned by value.
func (p *Pass) checkLockCopies(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil {
				for _, field := range n.Recv.List {
					p.checkLockField(field, "receiver")
				}
			}
			if n.Type.Params != nil {
				for _, field := range n.Type.Params.List {
					p.checkLockField(field, "parameter")
				}
			}
			if n.Type.Results != nil {
				for _, field := range n.Type.Results.List {
					p.checkLockField(field, "result")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if !copiesValue(rhs) {
					continue
				}
				if t := p.TypeOf(rhs); containsLockType(t, nil) {
					p.Reportf(rhs.Pos(), "assignment copies %s which contains a lock; use a pointer", t.String())
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := p.TypeOf(n.Value); containsLockType(t, nil) {
					p.Reportf(n.Value.Pos(), "range value copies %s which contains a lock; iterate by index or use pointers", t.String())
				}
			}
		}
		return true
	})
}

func (p *Pass) checkLockField(field *ast.Field, kind string) {
	if _, isPtr := field.Type.(*ast.StarExpr); isPtr {
		return
	}
	t := p.TypeOf(field.Type)
	if !containsLockType(t, nil) {
		return
	}
	p.Reportf(field.Type.Pos(), "%s passes %s by value, copying its lock; use a pointer", kind, t.String())
}

// copiesValue reports whether the expression yields a copy of an
// existing value (as opposed to a freshly constructed one).
func copiesValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesValue(e.X)
	}
	return false
}

// containsLockType reports whether t transitively contains a sync
// mutex by value.
func containsLockType(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if isMutexType(t) {
		if _, isPtr := t.(*types.Pointer); isPtr {
			return false
		}
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockType(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockType(u.Elem(), seen)
	}
	return false
}

// sortedKeys returns the map's keys in sorted order for deterministic
// reporting.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //iguard:sorted keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
