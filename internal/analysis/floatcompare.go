package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCompare flags exact ==/!= between floating-point operands.
// Threshold and score arithmetic (anomaly scores, RMSE thresholds,
// quantile boundaries) accumulates rounding error, so exact equality is
// almost always a latent bug. Where exact comparison is the point —
// deduplicating identical split values, grouping tied scores — annotate
// the line with //iguard:allow(floatcompare).
//
// Constant-vs-constant comparisons are exempt (they fold at compile
// time), as are comparisons in _test.go files (never loaded).
var FloatCompare = &Analyzer{
	Name:        "floatcompare",
	Doc:         "flag exact ==/!= comparisons between floating-point operands outside tests",
	LibraryOnly: false,
	Run:         runFloatCompare,
}

func runFloatCompare(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(bin.X)) && !isFloat(p.TypeOf(bin.Y)) {
				return true
			}
			if p.isConst(bin.X) && p.isConst(bin.Y) {
				return true
			}
			p.Reportf(bin.Pos(),
				"%s compares floating-point values exactly; use an epsilon or annotate with //iguard:allow(floatcompare) if exact identity is intended", bin.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func (p *Pass) isConst(e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
