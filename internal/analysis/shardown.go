// The shardown analyzer: static shard-ownership discipline. The serve
// runtime is a shared-nothing design — each shard worker goroutine
// exclusively owns its Switch replica and controller, and the rest of
// the process talks to it only through the mailbox channel. That
// discipline is what makes the shard loop lock-free; it is also
// invisible to the compiler and the race detector until the exact
// interleaving fires. This analyzer makes it declarative:
//
//	//iguard:ownedby(shard)  on a struct field  — the field belongs to
//	    the goroutine of the owner named "shard"
//	//iguard:owner(shard)    on a function       — that function is the
//	    owning goroutine's entry point
//
// An owned field may only be accessed from the owner's synchronous
// call tree (SyncReachable: direct calls and function literals, but
// not bodies spawned with go). Three violation classes are reported:
// accesses outside the owner's tree (including goroutines spawned
// inside it), sends of owned state across channels (ownership
// transfer), and stores of owned state into package-level variables
// (ownership escape).
//
// When an owner name has no //iguard:owner root anywhere in the
// package's dependency closure, access checks for its fields are
// relaxed — the annotation then documents intent (e.g. switchsim's
// scratch buffers, owned by whichever single goroutine drives the
// Switch) and still arms the send and package-level-store checks.

package analysis

import (
	"go/ast"
	"go/types"
)

// Shardown is the shard-ownership analyzer.
var Shardown = &Analyzer{
	Name: "shardown",
	Doc: "fields marked //iguard:ownedby(o) may only be touched from the " +
		"synchronous call tree of an //iguard:owner(o) function, never " +
		"sent on channels or stored in package-level variables",
	LibraryOnly: false,
	Run:         runShardown,
}

func runShardown(p *Pass) {
	g := BuildCallGraph(p.Pkg)
	s := &shardownPass{p: p, g: g, owned: map[*types.Var]string{}, reach: map[string]*ReachSet{}}
	s.collectOwned()
	if len(s.owned) == 0 {
		return
	}
	s.collectOwners()
	s.checkAccesses()
	s.checkEscapes()
}

type shardownPass struct {
	p *Pass
	g *CallGraph
	// owned maps a struct field object to its owner name.
	owned map[*types.Var]string
	// roots maps an owner name to its //iguard:owner entry points, from
	// the whole dependency closure.
	roots map[string][]*FuncNode
	// reach caches each owner's synchronous reach set.
	reach map[string]*ReachSet
}

// collectOwned gathers //iguard:ownedby(o) fields from the analyzed
// package and its dependency closure — the closure matters because a
// send or global store in this package can leak state owned elsewhere
// (e.g. a *switchsim.Switch).
func (s *shardownPass) collectOwned() {
	for _, pkg := range s.g.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					owner, ok := fieldOwner(field)
					if !ok {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							s.owned[v] = owner
						}
					}
				}
				return true
			})
		}
	}
}

// fieldOwner extracts the ownedby argument from a field's doc or line
// comment.
func fieldOwner(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if d, ok := directiveOf(c); ok {
				if owner, ok := directiveArg(d, "ownedby"); ok {
					return owner, true
				}
			}
		}
	}
	return "", false
}

// collectOwners gathers //iguard:owner(o) entry points across the
// dependency closure.
func (s *shardownPass) collectOwners() {
	s.roots = map[string][]*FuncNode{}
	for _, pkg := range s.g.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				owner, ok := funcDirectiveArg(fd, "owner")
				if !ok {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					s.roots[owner] = append(s.roots[owner], s.g.NodeOf(obj))
				}
			}
		}
	}
}

// reachFor returns (and caches) the synchronous reach set of an
// owner's roots.
func (s *shardownPass) reachFor(owner string) *ReachSet {
	if r, ok := s.reach[owner]; ok {
		return r
	}
	r := s.g.SyncReachable(s.roots[owner])
	s.reach[owner] = r
	return r
}

// checkAccesses walks every function of the analyzed package and flags
// owned-field accesses outside the owning goroutine's call tree.
// Owners without any //iguard:owner root are skipped here (relaxed
// mode). Composite-literal construction (worker := &shardWorker{sw: …})
// uses field keys, not selectors, so pre-handoff initialization is
// exempt by construction.
func (s *shardownPass) checkAccesses() {
	for _, f := range s.p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s.checkFuncAccesses(fd)
		}
	}
}

// checkFuncAccesses scans one declaration, tracking which goroutine
// context each nested function literal runs in.
func (s *shardownPass) checkFuncAccesses(fd *ast.FuncDecl) {
	info := s.p.Pkg.Info
	baseOwners := func() map[string]bool {
		obj, _ := info.Defs[fd.Name].(*types.Func)
		out := map[string]bool{}
		//iguard:sorted set construction; membership is order-independent
		for owner := range s.roots {
			if obj != nil && s.reachFor(owner).Contains(obj) {
				out[owner] = true
			}
		}
		return out
	}()
	// A function literal runs in the owner's context only when the
	// owner's walk reached it synchronously; a literal spawned with go —
	// even inside the owner's own body — is a fresh goroutine.
	litOwners := func(lit *ast.FuncLit) map[string]bool {
		out := map[string]bool{}
		//iguard:sorted set construction; membership is order-independent
		for owner := range s.roots {
			if s.reachFor(owner).Lits[lit] {
				out[owner] = true
			}
		}
		return out
	}
	// Walk with an explicit frame stack: ast.Inspect signals subtree
	// exit by a nil callback, which pops frames pushed by FuncLits.
	type frame struct {
		depth  int
		owners map[string]bool
	}
	stack := []frame{{0, baseOwners}}
	depth := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			depth--
			for len(stack) > 1 && stack[len(stack)-1].depth > depth {
				stack = stack[:len(stack)-1]
			}
			return true
		}
		depth++
		if lit, ok := n.(*ast.FuncLit); ok {
			stack = append(stack, frame{depth, litOwners(lit)})
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fldSel, ok := info.Selections[sel]
		if !ok || fldSel.Kind() != types.FieldVal {
			return true
		}
		v, ok := fldSel.Obj().(*types.Var)
		if !ok {
			return true
		}
		owner, isOwned := s.owned[v]
		if !isOwned || len(s.roots[owner]) == 0 {
			return true
		}
		if !stack[len(stack)-1].owners[owner] {
			s.p.Reportf(sel.Sel.Pos(),
				"%s is //iguard:ownedby(%s) but %s is outside the synchronous call tree of the //iguard:owner(%s) roots",
				v.Name(), owner, fd.Name.Name, owner)
		}
		return true
	})
}

// checkEscapes flags the structural leaks: owned state sent over a
// channel or stored in a package-level variable.
func (s *shardownPass) checkEscapes() {
	info := s.p.Pkg.Info
	pkgScope := s.p.Pkg.Types.Scope()
	for _, f := range s.p.Pkg.Files {
		// Package-level declarations of owned-carrying types.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := info.Defs[name].(*types.Var)
					if !ok || obj.Parent() != pkgScope {
						continue
					}
					if owner, leaks := s.carriesOwned(obj.Type()); leaks {
						s.p.Reportf(name.Pos(),
							"package-level variable %s holds state //iguard:ownedby(%s); owned state must stay inside its goroutine",
							name.Name, owner)
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if owner, leaks := s.carriesOwned(info.TypeOf(n.Value)); leaks {
					s.p.Reportf(n.Value.Pos(),
						"send transfers state //iguard:ownedby(%s) across a channel; hand over a message, not the owned object", owner)
				} else if v, owner := s.ownedSelector(n.Value); v != nil && refShaped(v.Type()) {
					s.p.Reportf(n.Value.Pos(),
						"send shares %s, which is //iguard:ownedby(%s), with another goroutine", v.Name(), owner)
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					base := baseIdent(lhs)
					if base == nil {
						continue
					}
					v, ok := info.Uses[base].(*types.Var)
					if !ok || v.Parent() != pkgScope {
						continue
					}
					if owner, leaks := s.carriesOwned(info.TypeOf(lhs)); leaks {
						s.p.Reportf(lhs.Pos(),
							"store into package-level %s leaks state //iguard:ownedby(%s) out of its goroutine", v.Name(), owner)
					}
				}
			}
			return true
		})
	}
}

// ownedSelector returns the owned field a selector expression reads,
// if any.
func (s *shardownPass) ownedSelector(e ast.Expr) (*types.Var, string) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fldSel, ok := s.p.Pkg.Info.Selections[sel]
	if !ok || fldSel.Kind() != types.FieldVal {
		return nil, ""
	}
	v, ok := fldSel.Obj().(*types.Var)
	if !ok {
		return nil, ""
	}
	owner, isOwned := s.owned[v]
	if !isOwned {
		return nil, ""
	}
	return v, owner
}

// carriesOwned reports whether a value of type t gives its holder a
// path to owned state: t (unwrapped through pointers, slices, and
// arrays) is a struct that directly declares an //iguard:ownedby
// field. Deliberately shallow — one level of struct — so annotating
// shardWorker does not transitively poison every type that references
// a Server.
func (s *shardownPass) carriesOwned(t types.Type) (string, bool) {
	for t != nil {
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			st, ok := u.(*types.Struct)
			if !ok {
				return "", false
			}
			for i := 0; i < st.NumFields(); i++ {
				if owner, ok := s.owned[st.Field(i)]; ok {
					return owner, true
				}
			}
			return "", false
		}
	}
	return "", false
}

// refShaped reports whether values of t alias underlying memory when
// copied (so sending one shares owned state rather than snapshotting
// it).
func refShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// baseIdent unwraps an assignable expression (selectors, indexes,
// derefs, parens) to its leftmost identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
