// Package iforest implements the conventional Isolation Forest of
// Liu, Ting and Zhou (ICDM 2008), the baseline that iGuard improves on.
// Trees are grown on random sub-samples with uniformly random
// feature/split choices; anomaly scores follow the standard
// 2^(−E[h(x)]/c(ψ)) formulation.
//
// Note on the score convention: §3.1 of the iGuard paper writes
// label = 1{score(x) < τ}, but with score(x) = 2^(−E(h(x))/c(n))
// anomalies — which have short expected paths — receive *high* scores.
// This package follows the original Liu et al. convention: higher score
// means more anomalous, and Predict returns 1 when score(x) >= τ.
package iforest

import (
	"fmt"
	"math"
	"math/rand"

	"iguard/internal/mathx"
	"iguard/internal/parallel"
	"iguard/internal/rules"
)

// Options configures training. The zero value is not usable; call
// DefaultOptions or fill every field.
type Options struct {
	// Trees is t, the ensemble size.
	Trees int
	// SubSample is Ψ, the per-tree sample size.
	SubSample int
	// Contamination is the assumed anomaly fraction used by
	// CalibrateThreshold to derive τ.
	Contamination float64
	// Seed drives all randomness in training.
	Seed int64
	// Parallelism bounds the worker count for per-tree growth
	// (0 selects GOMAXPROCS). Every tree derives its own random stream
	// from (Seed, tree index), so the forest is identical for every
	// value; the knob only changes wall-clock time.
	Parallelism int `json:"-"`
}

// DefaultOptions returns the classic iForest configuration
// (t = 100, Ψ = 256, contamination 0.1).
func DefaultOptions() Options {
	return Options{Trees: 100, SubSample: 256, Contamination: 0.1, Seed: 1}
}

// node is one iTree node. Leaves have Left == Right == nil.
type node struct {
	Feature int
	Split   float64
	Left    *node
	Right   *node
	// Size is the number of training samples that reached this node;
	// used for the c(Size) path-length adjustment at external nodes.
	Size int
}

func (n *node) isLeaf() bool { return n.Left == nil }

// Tree is a single isolation tree.
type Tree struct {
	root *node
	// bounds is the bounding box of this tree's training sub-sample,
	// used to derive leaf regions.
	bounds rules.Box
}

// Forest is a trained isolation forest.
type Forest struct {
	Trees     []*Tree
	SubSample int
	Dim       int
	// Threshold is τ: Predict returns 1 when Score >= Threshold.
	Threshold float64
}

// harmonic approximates the harmonic number H(i) = ln(i) + γ.
func harmonic(i float64) float64 {
	const eulerGamma = 0.5772156649015329
	return math.Log(i) + eulerGamma
}

// C returns the average path length of an unsuccessful BST search over n
// samples — the normalisation factor c(n) from the paper.
func C(n int) float64 {
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	default:
		fn := float64(n)
		return 2*harmonic(fn-1) - 2*(fn-1)/fn
	}
}

// Fit trains a conventional isolation forest on x. Trees grow
// concurrently under opts.Parallelism workers, each from its own
// (Seed, tree index)-derived stream, so the forest is identical for
// every worker count.
func Fit(x [][]float64, opts Options) *Forest {
	if len(x) == 0 {
		panic("iforest: empty training set")
	}
	if opts.Trees <= 0 || opts.SubSample <= 0 || opts.Parallelism < 0 {
		panic(fmt.Sprintf("iforest: invalid options %+v", opts))
	}
	dim := len(x[0])
	f := &Forest{SubSample: minInt(opts.SubSample, len(x)), Dim: dim, Threshold: 0.5}
	maxHeight := int(math.Ceil(math.Log2(float64(f.SubSample))))
	if maxHeight < 1 {
		maxHeight = 1
	}
	f.Trees = make([]*Tree, opts.Trees)
	// Per-tree seeds are drawn serially in tree order before the
	// parallel fan-out, so every tree owns an independent stream
	// regardless of worker count.
	seedr := mathx.NewRand(mathx.DeriveSeed(opts.Seed, 0))
	seeds := make([]int64, opts.Trees)
	for t := range seeds {
		seeds[t] = seedr.Int63()
	}
	parallel.Do(opts.Parallelism, opts.Trees, func(t int) {
		r := mathx.NewRand(seeds[t])
		idx := mathx.SampleWithoutReplacement(r, len(x), f.SubSample)
		sample := make([][]float64, len(idx))
		for i, j := range idx {
			sample[i] = x[j]
		}
		f.Trees[t] = growTree(r, sample, dim, maxHeight)
	})
	return f
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func growTree(r *rand.Rand, sample [][]float64, dim, maxHeight int) *Tree {
	bounds := boundsOf(sample, dim)
	return &Tree{root: buildNode(r, sample, 0, maxHeight), bounds: bounds}
}

func boundsOf(sample [][]float64, dim int) rules.Box {
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for j := 0; j < dim; j++ {
		lo[j], hi[j] = math.Inf(1), math.Inf(-1)
	}
	for _, s := range sample {
		for j, v := range s {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	for j := 0; j < dim; j++ {
		if math.IsInf(lo[j], 1) {
			lo[j], hi[j] = 0, 0
		}
		// Open the upper edge slightly so max-valued samples fall inside
		// the half-open leaf regions.
		hi[j] = math.Nextafter(hi[j], math.Inf(1))
	}
	return rules.NewBox(lo, hi)
}

func buildNode(r *rand.Rand, sample [][]float64, height, maxHeight int) *node {
	n := &node{Size: len(sample)}
	if len(sample) <= 1 || height >= maxHeight {
		return n
	}
	// Pick a random feature with spread, then a random split inside it.
	dim := len(sample[0])
	perm := r.Perm(dim)
	for _, q := range perm {
		lo, hi := sample[0][q], sample[0][q]
		for _, s := range sample[1:] {
			if s[q] < lo {
				lo = s[q]
			}
			if s[q] > hi {
				hi = s[q]
			}
		}
		if hi <= lo {
			continue
		}
		p := lo + r.Float64()*(hi-lo)
		var left, right [][]float64
		for _, s := range sample {
			if s[q] < p {
				left = append(left, s)
			} else {
				right = append(right, s)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			continue
		}
		n.Feature = q
		n.Split = p
		n.Left = buildNode(r, left, height+1, maxHeight)
		n.Right = buildNode(r, right, height+1, maxHeight)
		return n
	}
	// All features constant: this is an external node.
	return n
}

// pathLength returns h(x) in one tree: traversal depth plus the c(Size)
// adjustment at the external node.
func (t *Tree) pathLength(x []float64) float64 {
	n := t.root
	depth := 0
	for !n.isLeaf() {
		if x[n.Feature] < n.Split {
			n = n.Left
		} else {
			n = n.Right
		}
		depth++
	}
	return float64(depth) + C(n.Size)
}

// ExpectedPathLength returns E[h(x)] over all trees — the quantity whose
// benign/malicious overlap Fig. 2 demonstrates.
func (f *Forest) ExpectedPathLength(x []float64) float64 {
	if len(f.Trees) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range f.Trees {
		s += t.pathLength(x)
	}
	return s / float64(len(f.Trees))
}

// Score returns the anomaly score 2^(−E[h(x)]/c(ψ)) ∈ (0, 1); higher is
// more anomalous.
func (f *Forest) Score(x []float64) float64 {
	c := C(f.SubSample)
	if c == 0 { //iguard:allow(floatcompare) exact-zero sentinel
		return 0.5
	}
	return math.Pow(2, -f.ExpectedPathLength(x)/c)
}

// Predict returns 1 (malicious) when Score(x) >= Threshold.
func (f *Forest) Predict(x []float64) int {
	if f.Score(x) >= f.Threshold {
		return 1
	}
	return 0
}

// CalibrateThreshold sets τ so that the given contamination fraction of
// the calibration set scores at or above it.
func (f *Forest) CalibrateThreshold(calib [][]float64, contamination float64) {
	if len(calib) == 0 {
		return
	}
	contamination = mathx.Clamp(contamination, 0, 1)
	scores := make([]float64, len(calib))
	for i, x := range calib {
		scores[i] = f.Score(x)
	}
	f.Threshold = mathx.Quantile(scores, 1-contamination)
}

// LeafRegions returns every leaf's feature box for tree ti, rooted at
// the tree's training bounding box. The boxes tile the bounding box.
func (f *Forest) LeafRegions(ti int) []rules.Box {
	return f.LeafRegionsWithin(ti, f.Trees[ti].bounds)
}

// LeafRegionsWithin returns tree ti's leaf boxes rooted at an explicit
// outer box (e.g. the full quantised feature domain for rule
// generation): boundary leaves extend to the box edges exactly as the
// routing comparison against split values does.
func (f *Forest) LeafRegionsWithin(ti int, root rules.Box) []rules.Box {
	t := f.Trees[ti]
	var out []rules.Box
	var walk func(n *node, box rules.Box)
	walk = func(n *node, box rules.Box) {
		if n.isLeaf() {
			out = append(out, box)
			return
		}
		left := box.Clone()
		left[n.Feature] = rules.Interval{Lo: box[n.Feature].Lo, Hi: n.Split}
		right := box.Clone()
		right[n.Feature] = rules.Interval{Lo: n.Split, Hi: box[n.Feature].Hi}
		walk(n.Left, left)
		walk(n.Right, right)
	}
	walk(t.root, root.Clone())
	return out
}

// SplitValues returns, per feature, the sorted distinct split points
// used anywhere in the forest — the feature boundaries from which
// §3.2.3 forms hypercubes.
func (f *Forest) SplitValues() [][]float64 {
	seen := make([]map[float64]bool, f.Dim)
	for i := range seen {
		seen[i] = map[float64]bool{}
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			return
		}
		seen[n.Feature][n.Split] = true
		walk(n.Left)
		walk(n.Right)
	}
	for _, t := range f.Trees {
		walk(t.root)
	}
	out := make([][]float64, f.Dim)
	for i, m := range seen {
		for v := range m { //iguard:sorted values are collected then sorted below
			out[i] = append(out[i], v)
		}
		sortFloats(out[i])
	}
	return out
}

func sortFloats(xs []float64) {
	// Insertion sort: split lists per feature are short and this avoids
	// importing sort in the hot path. Falls back gracefully for longer
	// lists too.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// NumLeaves returns the total leaf count across all trees — a proxy for
// the rule-set size the forest compiles into.
func (f *Forest) NumLeaves() int {
	count := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			count++
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	for _, t := range f.Trees {
		walk(t.root)
	}
	return count
}

// MaxDepth returns the deepest leaf depth in the forest.
func (f *Forest) MaxDepth() int {
	max := 0
	var walk func(n *node, d int)
	walk = func(n *node, d int) {
		if n.isLeaf() {
			if d > max {
				max = d
			}
			return
		}
		walk(n.Left, d+1)
		walk(n.Right, d+1)
	}
	for _, t := range f.Trees {
		walk(t.root, 0)
	}
	return max
}
