package iforest

import (
	"math"
	"testing"
	"testing/quick"

	"iguard/internal/mathx"
)

// cluster draws n points around center with the given spread.
func cluster(seed int64, n, dim int, center, spread float64) [][]float64 {
	r := mathx.NewRand(seed)
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = center + spread*r.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func TestCFactor(t *testing.T) {
	if C(0) != 0 || C(1) != 0 {
		t.Error("C(<=1) should be 0")
	}
	if C(2) != 1 {
		t.Errorf("C(2) = %v, want 1", C(2))
	}
	// c(n) grows like 2·ln(n); sanity check a known value:
	// c(256) ≈ 2(ln(255)+0.5772) − 2·255/256 ≈ 10.24.
	if got := C(256); math.Abs(got-10.24) > 0.05 {
		t.Errorf("C(256) = %v, want ~10.24", got)
	}
	// Monotone increasing.
	prev := 0.0
	for n := 2; n < 1000; n *= 2 {
		if c := C(n); c <= prev {
			t.Errorf("C not monotone at n=%d", n)
		} else {
			prev = c
		}
	}
}

func TestFitPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on empty training set")
		}
	}()
	Fit(nil, DefaultOptions())
}

func TestAnomalyScoresSeparate(t *testing.T) {
	benign := cluster(1, 500, 4, 0.5, 0.05)
	opts := DefaultOptions()
	opts.Trees = 50
	opts.SubSample = 128
	f := Fit(benign, opts)

	benignScores, attackScores := 0.0, 0.0
	benignTest := cluster(2, 50, 4, 0.5, 0.05)
	attackTest := cluster(3, 50, 4, 3.0, 0.05)
	for _, x := range benignTest {
		benignScores += f.Score(x)
	}
	for _, x := range attackTest {
		attackScores += f.Score(x)
	}
	benignScores /= 50
	attackScores /= 50
	if attackScores <= benignScores {
		t.Errorf("attack mean score %v <= benign %v", attackScores, benignScores)
	}
	if attackScores < 0.6 {
		t.Errorf("far outliers should score >= 0.6, got %v", attackScores)
	}
}

func TestScoreBounds(t *testing.T) {
	benign := cluster(5, 200, 3, 0, 1)
	f := Fit(benign, Options{Trees: 20, SubSample: 64, Seed: 5})
	fn := func(a, b, c float64) bool {
		s := f.Score([]float64{a, b, c})
		return s > 0 && s < 1
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExpectedPathLengthShorterForOutliers(t *testing.T) {
	benign := cluster(7, 500, 2, 0, 0.1)
	f := Fit(benign, Options{Trees: 50, SubSample: 128, Seed: 7})
	inlier := f.ExpectedPathLength([]float64{0, 0})
	outlier := f.ExpectedPathLength([]float64{5, 5})
	if outlier >= inlier {
		t.Errorf("outlier path %v >= inlier path %v", outlier, inlier)
	}
}

func TestCalibrateThreshold(t *testing.T) {
	benign := cluster(9, 400, 3, 0.5, 0.05)
	f := Fit(benign, Options{Trees: 30, SubSample: 128, Seed: 9})
	// Calibration set: 90% benign, 10% anomalies.
	calib := append(cluster(10, 90, 3, 0.5, 0.05), cluster(11, 10, 3, 3, 0.05)...)
	f.CalibrateThreshold(calib, 0.1)
	// Roughly 10% of the calibration set should be flagged.
	flagged := 0
	for _, x := range calib {
		flagged += f.Predict(x)
	}
	if flagged < 5 || flagged > 20 {
		t.Errorf("flagged = %d/100, want ~10", flagged)
	}
	// Empty calibration is a no-op.
	before := f.Threshold
	f.CalibrateThreshold(nil, 0.1)
	if f.Threshold != before {
		t.Error("empty calibration changed threshold")
	}
}

func TestPredictUsesThreshold(t *testing.T) {
	benign := cluster(13, 200, 2, 0, 0.1)
	f := Fit(benign, Options{Trees: 20, SubSample: 64, Seed: 13})
	f.Threshold = 0.0
	if f.Predict([]float64{0, 0}) != 1 {
		t.Error("threshold 0 should flag everything")
	}
	f.Threshold = 1.1
	if f.Predict([]float64{100, 100}) != 0 {
		t.Error("threshold > 1 should flag nothing")
	}
}

func TestDeterminism(t *testing.T) {
	benign := cluster(15, 200, 3, 0, 1)
	a := Fit(benign, Options{Trees: 10, SubSample: 64, Seed: 42})
	b := Fit(benign, Options{Trees: 10, SubSample: 64, Seed: 42})
	probe := []float64{0.3, -0.2, 0.9}
	if a.Score(probe) != b.Score(probe) {
		t.Error("same seed produced different forests")
	}
	c := Fit(benign, Options{Trees: 10, SubSample: 64, Seed: 43})
	if a.Score(probe) == c.Score(probe) {
		t.Log("different seeds produced identical scores (possible but unlikely)")
	}
}

func TestLeafRegionsTileBounds(t *testing.T) {
	benign := cluster(17, 300, 2, 0, 1)
	f := Fit(benign, Options{Trees: 5, SubSample: 64, Seed: 17})
	r := mathx.NewRand(18)
	for ti := range f.Trees {
		regions := f.LeafRegions(ti)
		if len(regions) == 0 {
			t.Fatalf("tree %d has no leaf regions", ti)
		}
		bounds := f.Trees[ti].bounds
		// Random points inside the tree bounds must fall in exactly one
		// leaf region.
		for trial := 0; trial < 50; trial++ {
			p := make([]float64, 2)
			for j := range p {
				p[j] = bounds[j].Lo + r.Float64()*(bounds[j].Hi-bounds[j].Lo)
			}
			hits := 0
			for _, reg := range regions {
				if reg.Contains(p) {
					hits++
				}
			}
			if hits != 1 {
				t.Fatalf("tree %d: point %v in %d regions, want 1", ti, p, hits)
			}
		}
	}
}

func TestLeafRegionVolumesSumToBounds(t *testing.T) {
	benign := cluster(19, 200, 2, 0, 1)
	f := Fit(benign, Options{Trees: 3, SubSample: 32, Seed: 19})
	for ti := range f.Trees {
		total := 0.0
		for _, reg := range f.LeafRegions(ti) {
			total += reg.Volume()
		}
		want := f.Trees[ti].bounds.Volume()
		if math.Abs(total-want)/want > 1e-9 {
			t.Errorf("tree %d: leaf volumes %v != bounds volume %v", ti, total, want)
		}
	}
}

func TestSplitValuesSortedAndDistinct(t *testing.T) {
	benign := cluster(21, 300, 3, 0, 1)
	f := Fit(benign, Options{Trees: 10, SubSample: 64, Seed: 21})
	splits := f.SplitValues()
	if len(splits) != 3 {
		t.Fatalf("split features = %d, want 3", len(splits))
	}
	for q, vals := range splits {
		for i := 1; i < len(vals); i++ {
			if vals[i] <= vals[i-1] {
				t.Errorf("feature %d splits not strictly increasing at %d", q, i)
			}
		}
	}
}

func TestMaxDepthBounded(t *testing.T) {
	benign := cluster(23, 500, 3, 0, 1)
	psi := 128
	f := Fit(benign, Options{Trees: 20, SubSample: psi, Seed: 23})
	limit := int(math.Ceil(math.Log2(float64(psi))))
	if d := f.MaxDepth(); d > limit {
		t.Errorf("max depth %d exceeds ceil(log2(ψ)) = %d", d, limit)
	}
}

func TestNumLeavesPositive(t *testing.T) {
	benign := cluster(25, 100, 2, 0, 1)
	f := Fit(benign, Options{Trees: 5, SubSample: 32, Seed: 25})
	if f.NumLeaves() < 5 {
		t.Errorf("NumLeaves = %d, want >= 5", f.NumLeaves())
	}
}

func TestConstantFeatureData(t *testing.T) {
	// All samples identical: trees must degenerate to single leaves and
	// scoring must not panic.
	x := make([][]float64, 50)
	for i := range x {
		x[i] = []float64{1, 2, 3}
	}
	f := Fit(x, Options{Trees: 5, SubSample: 32, Seed: 27})
	s := f.Score([]float64{1, 2, 3})
	if math.IsNaN(s) || s <= 0 || s >= 1 {
		t.Errorf("degenerate score = %v", s)
	}
}

func TestSubSampleLargerThanData(t *testing.T) {
	x := cluster(29, 20, 2, 0, 1)
	f := Fit(x, Options{Trees: 5, SubSample: 256, Seed: 29})
	if f.SubSample != 20 {
		t.Errorf("SubSample = %d, want clamped to 20", f.SubSample)
	}
}

// TestFitParallelismInvariance pins that the forest is identical for
// every worker count: per-tree seeds are drawn serially in tree order
// before the parallel fan-out.
func TestFitParallelismInvariance(t *testing.T) {
	x := cluster(61, 400, 4, 0.5, 0.1)
	probes := cluster(62, 20, 4, 0.5, 0.4)
	opts := DefaultOptions()
	opts.Trees = 20
	opts.SubSample = 128
	opts.Seed = 61
	score := func(workers int) []float64 {
		o := opts
		o.Parallelism = workers
		f := Fit(x, o)
		out := make([]float64, len(probes))
		for i, p := range probes {
			out[i] = f.Score(p)
		}
		return out
	}
	want := score(1)
	for _, p := range []int{2, 4, 8} {
		got := score(p)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Parallelism=%d: score[%d] = %v, want %v", p, i, got[i], want[i])
			}
		}
	}
}
