package traffic

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"iguard/internal/features"
	"iguard/internal/netpkt"
)

// Stats summarises a trace: volume, flow structure and rates — the
// numbers one sanity-checks a generated corpus (or an ingested PCAP)
// with before training on it.
type Stats struct {
	Packets        int
	Bytes          int64
	Flows          int
	MaliciousFlows int
	Duration       time.Duration
	PacketsPerSec  float64
	BitsPerSec     float64
	// ByProto counts packets per IP protocol.
	ByProto map[uint8]int
	// FlowLen distribution summary.
	MinFlowLen, MaxFlowLen int
	MeanFlowLen            float64
	// MeanPktSize in bytes.
	MeanPktSize float64
}

// Summarise computes Stats for a trace.
func Summarise(tr *Trace) Stats {
	s := Stats{ByProto: map[uint8]int{}}
	if len(tr.Packets) == 0 {
		return s
	}
	flowLens := map[features.FlowKey]int{}
	for i := range tr.Packets {
		p := &tr.Packets[i]
		s.Packets++
		s.Bytes += int64(p.Length)
		s.ByProto[p.Proto]++
		flowLens[features.KeyOf(p).Canonical()]++
	}
	s.Flows = len(flowLens)
	s.MaliciousFlows = len(tr.Malicious)
	first := tr.Packets[0].Timestamp
	last := tr.Packets[len(tr.Packets)-1].Timestamp
	s.Duration = last.Sub(first)
	if secs := s.Duration.Seconds(); secs > 0 {
		s.PacketsPerSec = float64(s.Packets) / secs
		s.BitsPerSec = float64(s.Bytes*8) / secs
	}
	s.MinFlowLen = s.Packets
	total := 0
	for _, n := range flowLens { //iguard:sorted commutative min/max/total accumulation
		total += n
		if n < s.MinFlowLen {
			s.MinFlowLen = n
		}
		if n > s.MaxFlowLen {
			s.MaxFlowLen = n
		}
	}
	s.MeanFlowLen = float64(total) / float64(s.Flows)
	s.MeanPktSize = float64(s.Bytes) / float64(s.Packets)
	return s
}

// String renders the summary for CLI output.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "packets=%d bytes=%d flows=%d (malicious %d) duration=%v\n",
		s.Packets, s.Bytes, s.Flows, s.MaliciousFlows, s.Duration.Round(time.Millisecond))
	fmt.Fprintf(&sb, "rate=%.0f pkt/s %.2f Mbit/s  flowlen min/mean/max=%d/%.1f/%d  mean pkt=%.0f B\n",
		s.PacketsPerSec, s.BitsPerSec/1e6, s.MinFlowLen, s.MeanFlowLen, s.MaxFlowLen, s.MeanPktSize)
	protos := make([]int, 0, len(s.ByProto))
	for p := range s.ByProto { //iguard:sorted keys are collected then sorted below
		protos = append(protos, int(p))
	}
	sort.Ints(protos)
	sb.WriteString("protocols:")
	for _, p := range protos {
		name := fmt.Sprintf("%d", p)
		switch uint8(p) {
		case netpkt.ProtoTCP:
			name = "tcp"
		case netpkt.ProtoUDP:
			name = "udp"
		case netpkt.ProtoICMP:
			name = "icmp"
		}
		fmt.Fprintf(&sb, " %s=%d", name, s.ByProto[uint8(p)])
	}
	sb.WriteByte('\n')
	return sb.String()
}
