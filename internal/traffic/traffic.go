// Package traffic synthesises the datasets of the iGuard evaluation.
// The paper uses public IoT traces (benign: HorusEye/Sivanathan;
// attacks: Bezerra, Ding, Bot-IoT, Kitsune, HorusEye) that are not
// redistributable here, so this package generates seeded synthetic
// equivalents: a benign IoT mixture (telemetry, DNS, web, streaming)
// and fifteen attack generators whose flow-level statistics overlap the
// benign marginals the way the real traces do — the property §3.1's
// motivation (and every experiment) rests on. It also implements the
// black-box adversarial transforms of HorusEye used in Tables 2 and 3:
// low-rate dilution, training poisoning, and benign-packet evasion.
package traffic

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"iguard/internal/features"
	"iguard/internal/mathx"
	"iguard/internal/netpkt"
)

// AttackName enumerates the 15 attacks of the evaluation.
type AttackName string

// The attack set, named as in the paper's figures.
const (
	Mirai          AttackName = "Mirai"
	OSScan         AttackName = "OS scan"
	Aidra          AttackName = "Aidra"
	Bashlite       AttackName = "Bashlite"
	UDPDDoS        AttackName = "UDP DDoS"
	HTTPDDoS       AttackName = "HTTP DDoS"
	DataTheft      AttackName = "Data theft"
	Keylogging     AttackName = "Keylogging"
	ServiceScan    AttackName = "Service scan"
	TCPDDoS        AttackName = "TCP DDoS"
	MiraiRouter    AttackName = "Mirai router filter"
	OSScanRouter   AttackName = "OS scan router"
	PortScanRouter AttackName = "Port scan router"
	TCPDDoSRouter  AttackName = "TCP DDoS router"
	UDPDDoSRouter  AttackName = "UDP DDoS router"
)

// AllAttacks returns the 15 attacks in the paper's presentation order
// (the 5 of the main body first, then the 10 of the appendix).
func AllAttacks() []AttackName {
	return []AttackName{
		Mirai, OSScan, Aidra, Bashlite, UDPDDoS,
		HTTPDDoS, DataTheft, Keylogging, ServiceScan, TCPDDoS,
		MiraiRouter, OSScanRouter, PortScanRouter, TCPDDoSRouter, UDPDDoSRouter,
	}
}

// Trace is a timestamp-ordered packet sequence with ground truth: the
// set of canonical flow keys that belong to malicious flows.
type Trace struct {
	Packets   []netpkt.Packet
	Malicious map[features.FlowKey]bool
}

// baseTime anchors all generated traffic (a fixed instant keeps traces
// deterministic).
var baseTime = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

// Merge combines two traces, re-sorting packets by timestamp and
// unioning the malicious key sets.
func (t *Trace) Merge(other *Trace) *Trace {
	out := &Trace{Malicious: map[features.FlowKey]bool{}}
	out.Packets = append(out.Packets, t.Packets...)
	out.Packets = append(out.Packets, other.Packets...)
	sort.SliceStable(out.Packets, func(i, j int) bool {
		return out.Packets[i].Timestamp.Before(out.Packets[j].Timestamp)
	})
	for k := range t.Malicious { //iguard:sorted map-to-map union, order-independent
		out.Malicious[k] = true
	}
	for k := range other.Malicious { //iguard:sorted map-to-map union, order-independent
		out.Malicious[k] = true
	}
	return out
}

// IsMalicious reports the ground-truth label of a canonical flow key.
func (t *Trace) IsMalicious(key features.FlowKey) bool {
	return t.Malicious[key.Canonical()]
}

// flowSpec parameterises one flow archetype.
type flowSpec struct {
	proto    uint8
	pktCount func(r *rand.Rand) int
	size     func(r *rand.Rand) int
	ipd      func(r *rand.Rand) time.Duration
	dstPort  func(r *rand.Rand) uint16
	ttl      func(r *rand.Rand) uint8
	// bidirProb is the probability each packet is a reply (reverse
	// direction); 0 for unidirectional floods.
	bidirProb float64
	// tcpFlags returns flags for TCP packets (index = packet position).
	tcpFlags func(r *rand.Rand, i int) uint8
}

// host addressing: benign devices live in 10.0/16, benign servers in
// 23.1/16, attackers in 66.66/16, victims in 10.0/16 (attacks target
// the same IoT devices benign traffic comes from).
func benignHost(r *rand.Rand) [4]byte {
	return [4]byte{10, 0, byte(r.Intn(8)), byte(1 + r.Intn(250))}
}

func benignServer(r *rand.Rand) [4]byte {
	return [4]byte{23, 1, byte(r.Intn(4)), byte(1 + r.Intn(250))}
}

func attackerHost(r *rand.Rand) [4]byte {
	return [4]byte{66, 66, byte(r.Intn(16)), byte(1 + r.Intn(250))}
}

// genFlow materialises one flow from a spec, appending packets to the
// trace and recording the key when malicious.
func genFlow(r *rand.Rand, tr *Trace, spec flowSpec, src, dst [4]byte, srcPort uint16, start time.Time, malicious bool) {
	n := spec.pktCount(r)
	if n < 1 {
		n = 1
	}
	dstPort := spec.dstPort(r)
	ttl := spec.ttl(r)
	ts := start
	key := features.FlowKey{SrcIP: src, DstIP: dst, SrcPort: srcPort, DstPort: dstPort, Proto: spec.proto}
	if malicious {
		tr.Malicious[key.Canonical()] = true
	}
	for i := 0; i < n; i++ {
		p := netpkt.Packet{
			Timestamp: ts,
			SrcIP:     src,
			DstIP:     dst,
			SrcPort:   srcPort,
			DstPort:   dstPort,
			Proto:     spec.proto,
			TTL:       ttl,
			Length:    spec.size(r),
		}
		if spec.tcpFlags != nil && spec.proto == netpkt.ProtoTCP {
			p.TCPFlags = spec.tcpFlags(r, i)
		}
		if spec.bidirProb > 0 && r.Float64() < spec.bidirProb && i > 0 {
			p.SrcIP, p.DstIP = p.DstIP, p.SrcIP
			p.SrcPort, p.DstPort = p.DstPort, p.SrcPort
		}
		tr.Packets = append(tr.Packets, p)
		ts = ts.Add(spec.ipd(r))
	}
}

// sortTrace finalises packet ordering.
func sortTrace(tr *Trace) {
	sort.SliceStable(tr.Packets, func(i, j int) bool {
		return tr.Packets[i].Timestamp.Before(tr.Packets[j].Timestamp)
	})
}

// expDur draws an exponential duration with the given mean.
func expDur(r *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(r.ExpFloat64() * float64(mean))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

// jitterDur draws mean ± spread uniformly, floored at 1µs.
func jitterDur(r *rand.Rand, mean, spread time.Duration) time.Duration {
	d := mean + time.Duration((2*r.Float64()-1)*float64(spread))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

func uniformInt(r *rand.Rand, lo, hi int) int { return lo + r.Intn(hi-lo+1) }

// GenerateBenign produces the benign IoT mixture: periodic telemetry,
// slow sensor reports, DNS lookups, web bursts, media streams and bulk
// transfers, in the proportions typical of smart-environment traces.
//
// The archetypes are designed so their union covers wide per-feature
// marginals (packet sizes 54–1480 B, inter-packet delays from
// milliseconds to seconds, flow lengths 1–400 packets). The attack
// generators then place each attack *inside* those marginals, differing
// from benign traffic mainly in joint feature combinations — the regime
// where Fig. 2's path-length overlap arises and autoencoder guidance
// pays off.
func GenerateBenign(seed int64, flows int) *Trace {
	r := mathx.NewRand(seed)
	tr := &Trace{Malicious: map[features.FlowKey]bool{}}
	window := 120 * time.Second
	for i := 0; i < flows; i++ {
		start := baseTime.Add(time.Duration(r.Float64() * float64(window)))
		src := benignHost(r)
		dst := benignServer(r)
		srcPort := uint16(uniformInt(r, 1024, 65000))
		archetype := r.Float64()
		var spec flowSpec
		switch {
		case archetype < 0.25: // periodic telemetry / keep-alive
			spec = flowSpec{
				proto:     netpkt.ProtoTCP,
				pktCount:  func(r *rand.Rand) int { return uniformInt(r, 8, 40) },
				size:      func(r *rand.Rand) int { return uniformInt(r, 60, 130) },
				ipd:       func(r *rand.Rand) time.Duration { return jitterDur(r, 900*time.Millisecond, 350*time.Millisecond) },
				dstPort:   func(r *rand.Rand) uint16 { return 8883 },
				ttl:       func(r *rand.Rand) uint8 { return 64 },
				bidirProb: 0.4,
				tcpFlags:  func(r *rand.Rand, i int) uint8 { return netpkt.FlagACK | netpkt.FlagPSH },
			}
		case archetype < 0.40: // slow sensor reports: near-constant size
			base := uniformInt(r, 70, 96)
			spec = flowSpec{
				proto:    netpkt.ProtoTCP,
				pktCount: func(r *rand.Rand) int { return uniformInt(r, 10, 90) },
				size:     func(r *rand.Rand) int { return base + r.Intn(4) },
				ipd:      func(r *rand.Rand) time.Duration { return jitterDur(r, 2500*time.Millisecond, 1200*time.Millisecond) },
				dstPort:  func(r *rand.Rand) uint16 { return 8883 },
				ttl:      func(r *rand.Rand) uint8 { return 64 },
				tcpFlags: func(r *rand.Rand, i int) uint8 { return netpkt.FlagACK | netpkt.FlagPSH },
			}
		case archetype < 0.55: // DNS-like short exchanges
			spec = flowSpec{
				proto:     netpkt.ProtoUDP,
				pktCount:  func(r *rand.Rand) int { return uniformInt(r, 1, 4) },
				size:      func(r *rand.Rand) int { return uniformInt(r, 54, 300) },
				ipd:       func(r *rand.Rand) time.Duration { return expDur(r, 40*time.Millisecond) },
				dstPort:   func(r *rand.Rand) uint16 { return 53 },
				ttl:       func(r *rand.Rand) uint8 { return 64 },
				bidirProb: 0.5,
			}
		case archetype < 0.80: // bursty web / API traffic
			spec = flowSpec{
				proto:    netpkt.ProtoTCP,
				pktCount: func(r *rand.Rand) int { return uniformInt(r, 6, 80) },
				size: func(r *rand.Rand) int {
					if r.Float64() < 0.5 {
						return uniformInt(r, 54, 120)
					}
					return uniformInt(r, 800, 1480)
				},
				ipd:       func(r *rand.Rand) time.Duration { return expDur(r, 60*time.Millisecond) },
				dstPort:   func(r *rand.Rand) uint16 { return []uint16{80, 443, 8080}[r.Intn(3)] },
				ttl:       func(r *rand.Rand) uint8 { return 64 },
				bidirProb: 0.45,
				tcpFlags:  func(r *rand.Rand, i int) uint8 { return netpkt.FlagACK },
			}
		case archetype < 0.92: // media stream
			spec = flowSpec{
				proto:     netpkt.ProtoUDP,
				pktCount:  func(r *rand.Rand) int { return uniformInt(r, 50, 250) },
				size:      func(r *rand.Rand) int { return uniformInt(r, 1100, 1450) },
				ipd:       func(r *rand.Rand) time.Duration { return jitterDur(r, 25*time.Millisecond, 20*time.Millisecond) },
				dstPort:   func(r *rand.Rand) uint16 { return uint16(uniformInt(r, 30000, 40000)) },
				ttl:       func(r *rand.Rand) uint8 { return 64 },
				bidirProb: 0.05,
			}
		default: // bulk transfer (firmware updates, cloud sync)
			spec = flowSpec{
				proto:    netpkt.ProtoTCP,
				pktCount: func(r *rand.Rand) int { return uniformInt(r, 100, 400) },
				size:     func(r *rand.Rand) int { return uniformInt(r, 1000, 1480) },
				ipd:      func(r *rand.Rand) time.Duration { return jitterDur(r, 4*time.Millisecond, 3*time.Millisecond) },
				dstPort:  func(r *rand.Rand) uint16 { return 443 },
				ttl:      func(r *rand.Rand) uint8 { return 64 },
				tcpFlags: func(r *rand.Rand, i int) uint8 { return netpkt.FlagACK },
			}
		}
		genFlow(r, tr, spec, src, dst, srcPort, start, false)
	}
	sortTrace(tr)
	return tr
}

// attackSpec returns the flow archetype of an attack together with how
// many flows the attack spawns per requested unit (scans spawn many tiny
// flows; floods spawn few huge ones).
func attackSpec(name AttackName) (flowSpec, float64, error) {
	// routerize adds aggregation jitter: wider IPD spread and slightly
	// shifted sizes, modelling the same attack observed behind a router.
	// Design rule: each attack's per-feature marginals sit inside the
	// union of benign archetype marginals (sizes 54–1480, IPDs 1 ms–4 s,
	// counts 1–400); what makes the attack anomalous is the *joint*
	// combination no benign archetype produces. This mirrors the real
	// traces, where conventional iForests fail (§3.1) because marginal
	// path lengths overlap while autoencoders still see the joint
	// structure.
	switch name {
	case Mirai, MiraiRouter:
		// Telnet scan: DNS-like flow lengths, web-ACK-like sizes, but
		// near-constant size at a fast, steady cadence.
		spec := flowSpec{
			proto:    netpkt.ProtoTCP,
			pktCount: func(r *rand.Rand) int { return uniformInt(r, 2, 6) },
			size:     func(r *rand.Rand) int { return uniformInt(r, 54, 66) },
			ipd:      func(r *rand.Rand) time.Duration { return jitterDur(r, 8*time.Millisecond, 4*time.Millisecond) },
			dstPort:  func(r *rand.Rand) uint16 { return []uint16{23, 2323}[r.Intn(2)] },
			ttl:      func(r *rand.Rand) uint8 { return uint8(uniformInt(r, 32, 64)) },
			tcpFlags: func(r *rand.Rand, i int) uint8 { return netpkt.FlagSYN },
		}
		if name == MiraiRouter {
			spec.ipd = func(r *rand.Rand) time.Duration { return jitterDur(r, 16*time.Millisecond, 9*time.Millisecond) }
			spec.ttl = func(r *rand.Rand) uint8 { return uint8(uniformInt(r, 30, 62)) }
		}
		return spec, 3, nil
	case Aidra:
		// IRC-bot telnet scan: slightly longer probes than Mirai, still
		// constant-small sizes at web-burst pace.
		return flowSpec{
			proto:    netpkt.ProtoTCP,
			pktCount: func(r *rand.Rand) int { return uniformInt(r, 2, 8) },
			size:     func(r *rand.Rand) int { return uniformInt(r, 58, 80) },
			ipd:      func(r *rand.Rand) time.Duration { return jitterDur(r, 5*time.Millisecond, 3*time.Millisecond) },
			dstPort:  func(r *rand.Rand) uint16 { return 23 },
			ttl:      func(r *rand.Rand) uint8 { return uint8(uniformInt(r, 40, 70)) },
			tcpFlags: func(r *rand.Rand, i int) uint8 { return netpkt.FlagSYN },
		}, 3, nil
	case Bashlite:
		// UDP flood of web-large payloads at bulk-transfer pace — but
		// sustained for stream-length flows with web-like size spread.
		return flowSpec{
			proto:    netpkt.ProtoUDP,
			pktCount: func(r *rand.Rand) int { return uniformInt(r, 80, 250) },
			size:     func(r *rand.Rand) int { return uniformInt(r, 800, 1200) },
			ipd:      func(r *rand.Rand) time.Duration { return jitterDur(r, 3*time.Millisecond, 2*time.Millisecond) },
			dstPort:  func(r *rand.Rand) uint16 { return uint16(uniformInt(r, 1, 65000)) },
			ttl:      func(r *rand.Rand) uint8 { return 64 },
		}, 1, nil
	case UDPDDoS, UDPDDoSRouter:
		// Volumetric flood: stream-sized packets with near-zero size
		// spread at bulk pace, far longer than any benign bulk flow's
		// combination of the two.
		spec := flowSpec{
			proto:    netpkt.ProtoUDP,
			pktCount: func(r *rand.Rand) int { return uniformInt(r, 150, 400) },
			size:     func(r *rand.Rand) int { return uniformInt(r, 1380, 1430) },
			ipd:      func(r *rand.Rand) time.Duration { return jitterDur(r, 2*time.Millisecond, 1500*time.Microsecond) },
			dstPort:  func(r *rand.Rand) uint16 { return 80 },
			ttl:      func(r *rand.Rand) uint8 { return uint8(uniformInt(r, 50, 64)) },
		}
		if name == UDPDDoSRouter {
			spec.ipd = func(r *rand.Rand) time.Duration { return jitterDur(r, 3*time.Millisecond, 2500*time.Microsecond) }
			spec.size = func(r *rand.Rand) int { return uniformInt(r, 1330, 1430) }
		}
		return spec, 0.5, nil
	case TCPDDoS, TCPDDoSRouter:
		// SYN flood: web-ACK sizes at bulk pace sustained over hundreds
		// of packets — benign small packets never arrive this fast for
		// this long.
		spec := flowSpec{
			proto:    netpkt.ProtoTCP,
			pktCount: func(r *rand.Rand) int { return uniformInt(r, 150, 400) },
			size:     func(r *rand.Rand) int { return uniformInt(r, 54, 60) },
			ipd:      func(r *rand.Rand) time.Duration { return jitterDur(r, 2*time.Millisecond, 1500*time.Microsecond) },
			dstPort:  func(r *rand.Rand) uint16 { return []uint16{80, 443}[r.Intn(2)] },
			ttl:      func(r *rand.Rand) uint8 { return uint8(uniformInt(r, 48, 64)) },
			tcpFlags: func(r *rand.Rand, i int) uint8 { return netpkt.FlagSYN },
		}
		if name == TCPDDoSRouter {
			spec.ipd = func(r *rand.Rand) time.Duration { return jitterDur(r, 3500*time.Microsecond, 2500*time.Microsecond) }
		}
		return spec, 0.5, nil
	case HTTPDDoS:
		// Application-layer flood: web-shaped packet sizes but at a
		// metronome request cadence instead of bursty think-time gaps.
		return flowSpec{
			proto:    netpkt.ProtoTCP,
			pktCount: func(r *rand.Rand) int { return uniformInt(r, 40, 160) },
			size: func(r *rand.Rand) int {
				if r.Float64() < 0.5 {
					return uniformInt(r, 54, 120)
				}
				return uniformInt(r, 800, 1400)
			},
			ipd:       func(r *rand.Rand) time.Duration { return jitterDur(r, 8*time.Millisecond, 2*time.Millisecond) },
			dstPort:   func(r *rand.Rand) uint16 { return 80 },
			ttl:       func(r *rand.Rand) uint8 { return 64 },
			bidirProb: 0.1,
			tcpFlags:  func(r *rand.Rand, i int) uint8 { return netpkt.FlagACK | netpkt.FlagPSH },
		}, 1, nil
	case DataTheft:
		// Exfiltration: looks like a benign bulk transfer but with the
		// unnatural regularity of an automated pump (tiny size and IPD
		// spread).
		return flowSpec{
			proto:     netpkt.ProtoTCP,
			pktCount:  func(r *rand.Rand) int { return uniformInt(r, 100, 400) },
			size:      func(r *rand.Rand) int { return uniformInt(r, 1430, 1470) },
			ipd:       func(r *rand.Rand) time.Duration { return jitterDur(r, 4*time.Millisecond, 400*time.Microsecond) },
			dstPort:   func(r *rand.Rand) uint16 { return uint16(uniformInt(r, 40000, 50000)) },
			ttl:       func(r *rand.Rand) uint8 { return 64 },
			bidirProb: 0.02,
			tcpFlags:  func(r *rand.Rand, i int) uint8 { return netpkt.FlagACK },
		}, 0.7, nil
	case Keylogging:
		// Keystroke exfiltration on a short polling timer: sensor-like
		// constant packet sizes at a sub-second, low-jitter cadence. The
		// (avgIPD, stdIPD) pair sits well off the benign joint surface
		// (every benign archetype keeps an IPD coefficient of variation
		// above ~0.2) even though both marginals are covered.
		return flowSpec{
			proto:    netpkt.ProtoTCP,
			pktCount: func(r *rand.Rand) int { return uniformInt(r, 30, 90) },
			size:     func(r *rand.Rand) int { return uniformInt(r, 82, 88) },
			ipd:      func(r *rand.Rand) time.Duration { return jitterDur(r, 650*time.Millisecond, 5*time.Millisecond) },
			dstPort:  func(r *rand.Rand) uint16 { return 4444 },
			ttl:      func(r *rand.Rand) uint8 { return 64 },
			tcpFlags: func(r *rand.Rand, i int) uint8 { return netpkt.FlagACK | netpkt.FlagPSH },
		}, 1, nil
	case OSScan, OSScanRouter:
		// Fingerprinting probes: DNS-like counts and sizes; the oddity
		// is the probe mix (TTL/flags are PL features) plus short
		// constant-ish sizes at a slightly-too-steady pace.
		spec := flowSpec{
			proto:    netpkt.ProtoTCP,
			pktCount: func(r *rand.Rand) int { return uniformInt(r, 1, 3) },
			size:     func(r *rand.Rand) int { return uniformInt(r, 54, 80) },
			ipd:      func(r *rand.Rand) time.Duration { return jitterDur(r, 30*time.Millisecond, 8*time.Millisecond) },
			dstPort:  func(r *rand.Rand) uint16 { return uint16(uniformInt(r, 1, 1024)) },
			ttl:      func(r *rand.Rand) uint8 { return []uint8{37, 49, 128, 255}[r.Intn(4)] },
			tcpFlags: func(r *rand.Rand, i int) uint8 { return []uint8{netpkt.FlagSYN, netpkt.FlagFIN, 0}[r.Intn(3)] },
		}
		if name == OSScanRouter {
			spec.ipd = func(r *rand.Rand) time.Duration { return jitterDur(r, 55*time.Millisecond, 20*time.Millisecond) }
		}
		return spec, 4, nil
	case ServiceScan, PortScanRouter:
		// Port sweep: one or two constant-size SYNs per port at a steady
		// clip; individually DNS-like, jointly machine-regular.
		spec := flowSpec{
			proto:    netpkt.ProtoTCP,
			pktCount: func(r *rand.Rand) int { return uniformInt(r, 1, 2) },
			size:     func(r *rand.Rand) int { return 60 },
			ipd:      func(r *rand.Rand) time.Duration { return jitterDur(r, 10*time.Millisecond, 2*time.Millisecond) },
			dstPort:  func(r *rand.Rand) uint16 { return uint16(uniformInt(r, 1, 10000)) },
			ttl:      func(r *rand.Rand) uint8 { return 64 },
			tcpFlags: func(r *rand.Rand, i int) uint8 { return netpkt.FlagSYN },
		}
		if name == PortScanRouter {
			spec.ipd = func(r *rand.Rand) time.Duration { return jitterDur(r, 25*time.Millisecond, 15*time.Millisecond) }
			spec.size = func(r *rand.Rand) int { return uniformInt(r, 54, 66) }
		}
		return spec, 4, nil
	default:
		return flowSpec{}, 0, fmt.Errorf("traffic: unknown attack %q", name)
	}
}

// GenerateAttack produces ~flows malicious flows of the named attack.
// Scans internally multiply the flow count (they spawn many tiny flows)
// while floods divide it, mirroring the packet-count balance of the real
// traces.
func GenerateAttack(name AttackName, seed int64, flows int) (*Trace, error) {
	spec, mult, err := attackSpec(name)
	if err != nil {
		return nil, err
	}
	r := mathx.NewRand(seed)
	tr := &Trace{Malicious: map[features.FlowKey]bool{}}
	n := int(float64(flows) * mult)
	if n < 1 {
		n = 1
	}
	window := 120 * time.Second
	for i := 0; i < n; i++ {
		start := baseTime.Add(time.Duration(r.Float64() * float64(window)))
		src := attackerHost(r)
		dst := benignHost(r)
		srcPort := uint16(uniformInt(r, 1024, 65000))
		genFlow(r, tr, spec, src, dst, srcPort, start, true)
	}
	sortTrace(tr)
	return tr, nil
}

// MustGenerateAttack is GenerateAttack for known-good names; it panics
// with a descriptive message on unknown attacks, in the manner of
// regexp.MustCompile. It exists for tests and examples; library code
// (internal/experiments) calls GenerateAttack and propagates the error.
func MustGenerateAttack(name AttackName, seed int64, flows int) *Trace {
	tr, err := GenerateAttack(name, seed, flows)
	if err != nil {
		panic("traffic: MustGenerateAttack: " + err.Error())
	}
	return tr
}
