package traffic

import (
	"sort"
	"time"

	"iguard/internal/features"
	"iguard/internal/mathx"
	"iguard/internal/netpkt"
)

// LowRate implements the black-box low-rate adversarial attack of
// HorusEye used in Table 2: the attacker dilutes the flood by stretching
// inter-packet gaps by the given factor (the paper evaluates 1/100 rate,
// i.e. factor 100). Flow membership is unchanged.
func LowRate(tr *Trace, factor float64) *Trace {
	if factor <= 0 {
		factor = 1
	}
	out := &Trace{Malicious: map[features.FlowKey]bool{}}
	for k, v := range tr.Malicious { //iguard:sorted map-to-map copy, order-independent
		out.Malicious[k] = v
	}
	// Stretch per flow: scaling every packet's offset from its flow
	// start by factor multiplies every inter-packet gap by factor.
	firstSeen := map[features.FlowKey]time.Time{}
	for _, p := range tr.Packets {
		key := features.KeyOf(&p).Canonical()
		if _, ok := firstSeen[key]; !ok {
			firstSeen[key] = p.Timestamp
		}
		q := p
		q.Timestamp = stretchTimestamp(firstSeen[key], p.Timestamp, factor)
		out.Packets = append(out.Packets, q)
	}
	sort.SliceStable(out.Packets, func(i, j int) bool {
		return out.Packets[i].Timestamp.Before(out.Packets[j].Timestamp)
	})
	return out
}

// stretchTimestamp moves ts so its offset from the flow start grows by
// factor.
func stretchTimestamp(start, ts time.Time, factor float64) time.Time {
	offset := ts.Sub(start)
	return start.Add(time.Duration(float64(offset) * factor))
}

// Poison implements the Table 2 poisoning attack: the attacker slips a
// fraction of attack flows into the benign training capture. It returns
// a new trace containing all of benign plus approximately frac·|benign
// flows| attack flows drawn from attack (ground truth still marks them
// malicious so experiments can measure the damage, but training
// pipelines treat the whole trace as "benign").
func Poison(benign, attack *Trace, frac float64, seed int64) *Trace {
	r := mathx.NewRand(seed)
	// Group attack packets by flow.
	flows := map[features.FlowKey][]netpkt.Packet{}
	var keys []features.FlowKey
	for _, p := range attack.Packets {
		k := features.KeyOf(&p).Canonical()
		if _, ok := flows[k]; !ok {
			keys = append(keys, k)
		}
		flows[k] = append(flows[k], p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })

	benignFlows := map[features.FlowKey]bool{}
	for _, p := range benign.Packets {
		benignFlows[features.KeyOf(&p).Canonical()] = true
	}
	want := int(frac * float64(len(benignFlows)))
	if want > len(keys) {
		want = len(keys)
	}
	pick := mathx.SampleWithoutReplacement(r, len(keys), want)

	out := &Trace{Malicious: map[features.FlowKey]bool{}}
	out.Packets = append(out.Packets, benign.Packets...)
	for _, ki := range pick {
		k := keys[ki]
		out.Packets = append(out.Packets, flows[k]...)
		out.Malicious[k] = true
	}
	sort.SliceStable(out.Packets, func(i, j int) bool {
		return out.Packets[i].Timestamp.Before(out.Packets[j].Timestamp)
	})
	return out
}

// Evade implements the Table 3 evasion attack: the attacker interleaves
// benign-looking packets into each attack flow at the given
// benign:attack ratio (1:2 inserts one benign-style packet per two
// attack packets), dragging the flow's statistics toward the benign
// manifold. Inserted packets share the flow 5-tuple so the switch
// aggregates them with the attack flow.
func Evade(tr *Trace, benignPerAttack float64, seed int64) *Trace {
	r := mathx.NewRand(seed)
	out := &Trace{Malicious: map[features.FlowKey]bool{}}
	for k, v := range tr.Malicious { //iguard:sorted map-to-map copy, order-independent
		out.Malicious[k] = v
	}
	carry := map[features.FlowKey]float64{}
	for _, p := range tr.Packets {
		key := features.KeyOf(&p).Canonical()
		out.Packets = append(out.Packets, p)
		if !tr.Malicious[key] {
			continue
		}
		carry[key] += benignPerAttack
		for carry[key] >= 1 {
			carry[key]--
			// A benign-styled packet inside the attack flow: typical IoT
			// size at a telemetry-like gap AFTER the attack packet, so the
			// flow's inter-packet-delay statistics (mean, max, spread) are
			// dragged toward the benign profile — the point of the
			// black-box evasion.
			ins := p
			ins.Length = uniformInt(r, 60, 130)
			ins.Timestamp = p.Timestamp.Add(jitterDur(r, 400*time.Millisecond, 350*time.Millisecond))
			ins.TCPFlags = netpkt.FlagACK
			out.Packets = append(out.Packets, ins)
		}
	}
	sort.SliceStable(out.Packets, func(i, j int) bool {
		return out.Packets[i].Timestamp.Before(out.Packets[j].Timestamp)
	})
	return out
}
