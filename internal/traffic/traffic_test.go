package traffic

import (
	"testing"
	"time"

	"iguard/internal/features"
)

func TestGenerateBenignBasics(t *testing.T) {
	tr := GenerateBenign(1, 100)
	if len(tr.Packets) == 0 {
		t.Fatal("no packets")
	}
	if len(tr.Malicious) != 0 {
		t.Errorf("benign trace has %d malicious keys", len(tr.Malicious))
	}
	// Timestamps must be non-decreasing.
	for i := 1; i < len(tr.Packets); i++ {
		if tr.Packets[i].Timestamp.Before(tr.Packets[i-1].Timestamp) {
			t.Fatalf("packets not sorted at %d", i)
		}
	}
	// All benign sources in 10.0/16, destinations in 23.1/16 or replies.
	for _, p := range tr.Packets {
		src, dst := p.SrcIP, p.DstIP
		ok := (src[0] == 10 && dst[0] == 23) || (src[0] == 23 && dst[0] == 10)
		if !ok {
			t.Fatalf("unexpected endpoints %v > %v", src, dst)
		}
	}
}

func TestGenerateBenignDeterministic(t *testing.T) {
	a := GenerateBenign(7, 50)
	b := GenerateBenign(7, 50)
	if len(a.Packets) != len(b.Packets) {
		t.Fatal("same seed, different packet counts")
	}
	for i := range a.Packets {
		if !a.Packets[i].Timestamp.Equal(b.Packets[i].Timestamp) || a.Packets[i].Length != b.Packets[i].Length {
			t.Fatal("same seed, different packets")
		}
	}
	c := GenerateBenign(8, 50)
	if len(a.Packets) == len(c.Packets) && a.Packets[0].Length == c.Packets[0].Length && a.Packets[0].SrcIP == c.Packets[0].SrcIP {
		t.Log("different seeds produced similar first packet (possible)")
	}
}

func TestGenerateAllAttacks(t *testing.T) {
	for _, name := range AllAttacks() {
		tr, err := GenerateAttack(name, 3, 20)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tr.Packets) == 0 {
			t.Errorf("%s: no packets", name)
		}
		if len(tr.Malicious) == 0 {
			t.Errorf("%s: no malicious keys", name)
		}
		// Every packet belongs to a malicious flow.
		for _, p := range tr.Packets {
			if !tr.IsMalicious(features.KeyOf(&p)) {
				t.Errorf("%s: packet not marked malicious", name)
				break
			}
		}
	}
}

func TestGenerateAttackUnknown(t *testing.T) {
	if _, err := GenerateAttack("nope", 1, 5); err == nil {
		t.Error("want error on unknown attack")
	}
}

func TestMustGenerateAttackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	MustGenerateAttack("nope", 1, 5)
}

func TestAllAttacksCount(t *testing.T) {
	if got := len(AllAttacks()); got != 15 {
		t.Errorf("attacks = %d, want 15", got)
	}
	seen := map[AttackName]bool{}
	for _, a := range AllAttacks() {
		if seen[a] {
			t.Errorf("duplicate attack %s", a)
		}
		seen[a] = true
	}
}

func TestMergeTraces(t *testing.T) {
	benign := GenerateBenign(1, 30)
	attack := MustGenerateAttack(Mirai, 2, 10)
	merged := benign.Merge(attack)
	if len(merged.Packets) != len(benign.Packets)+len(attack.Packets) {
		t.Errorf("merged packets = %d, want %d", len(merged.Packets), len(benign.Packets)+len(attack.Packets))
	}
	for i := 1; i < len(merged.Packets); i++ {
		if merged.Packets[i].Timestamp.Before(merged.Packets[i-1].Timestamp) {
			t.Fatal("merged trace not sorted")
		}
	}
	if len(merged.Malicious) != len(attack.Malicious) {
		t.Errorf("malicious keys = %d, want %d", len(merged.Malicious), len(attack.Malicious))
	}
}

func TestAttackCharacteristics(t *testing.T) {
	// UDP DDoS: large packets at a furious rate.
	ddos := MustGenerateAttack(UDPDDoS, 5, 10)
	sum := 0
	for _, p := range ddos.Packets {
		sum += p.Length
	}
	if avg := float64(sum) / float64(len(ddos.Packets)); avg < 1300 {
		t.Errorf("UDP DDoS mean size = %v, want >= 1300", avg)
	}
	// Mirai: tiny SYNs to telnet ports.
	mirai := MustGenerateAttack(Mirai, 5, 20)
	for _, p := range mirai.Packets {
		if p.DstPort != 23 && p.DstPort != 2323 && p.SrcPort != 23 && p.SrcPort != 2323 {
			t.Errorf("Mirai port = %d", p.DstPort)
			break
		}
		if p.Length > 70 {
			t.Errorf("Mirai size = %d", p.Length)
			break
		}
	}
	// Keylogging: low-rate tiny packets — flows last far longer than
	// UDP DDoS flows of the same packet count.
	key := MustGenerateAttack(Keylogging, 5, 5)
	if len(key.Packets) < 10 {
		t.Fatalf("keylogging packets = %d", len(key.Packets))
	}
}

func TestLowRateStretchesGaps(t *testing.T) {
	tr := MustGenerateAttack(TCPDDoS, 9, 4)
	slow := LowRate(tr, 100)
	if len(slow.Packets) != len(tr.Packets) {
		t.Fatalf("packet count changed: %d vs %d", len(slow.Packets), len(tr.Packets))
	}
	// Per-flow span must grow ~100x.
	span := func(t *Trace) time.Duration {
		key := features.KeyOf(&t.Packets[0]).Canonical()
		var first, last time.Time
		found := false
		for _, p := range t.Packets {
			if features.KeyOf(&p).Canonical() != key {
				continue
			}
			if !found {
				first = p.Timestamp
				found = true
			}
			last = p.Timestamp
		}
		return last.Sub(first)
	}
	orig, stretched := span(tr), span(slow)
	if orig == 0 {
		t.Skip("degenerate single-packet flow")
	}
	ratio := float64(stretched) / float64(orig)
	if ratio < 90 || ratio > 110 {
		t.Errorf("stretch ratio = %v, want ~100", ratio)
	}
	// Malicious ground truth preserved.
	if len(slow.Malicious) != len(tr.Malicious) {
		t.Error("malicious set changed")
	}
}

func TestLowRateBadFactor(t *testing.T) {
	tr := MustGenerateAttack(TCPDDoS, 9, 2)
	out := LowRate(tr, 0)
	if len(out.Packets) != len(tr.Packets) {
		t.Error("factor<=0 should be identity-ish")
	}
}

func TestPoisonInjectsFlows(t *testing.T) {
	benign := GenerateBenign(11, 100)
	attack := MustGenerateAttack(Mirai, 12, 50)
	poisoned := Poison(benign, attack, 0.1, 13)
	if len(poisoned.Malicious) == 0 {
		t.Fatal("no attack flows injected")
	}
	if len(poisoned.Packets) <= len(benign.Packets) {
		t.Error("poisoned trace no larger than benign")
	}
	// Injection fraction roughly respected (10% of benign flows).
	benignFlows := map[features.FlowKey]bool{}
	for _, p := range benign.Packets {
		benignFlows[features.KeyOf(&p).Canonical()] = true
	}
	want := int(0.1 * float64(len(benignFlows)))
	got := len(poisoned.Malicious)
	if got < want/2 || got > want*2 {
		t.Errorf("injected flows = %d, want ~%d", got, want)
	}
	for i := 1; i < len(poisoned.Packets); i++ {
		if poisoned.Packets[i].Timestamp.Before(poisoned.Packets[i-1].Timestamp) {
			t.Fatal("poisoned trace not sorted")
		}
	}
}

func TestPoisonCapsAtAvailableFlows(t *testing.T) {
	benign := GenerateBenign(14, 200)
	attack := MustGenerateAttack(UDPDDoS, 15, 2)
	poisoned := Poison(benign, attack, 0.9, 16)
	if len(poisoned.Malicious) > len(attack.Malicious) {
		t.Errorf("injected %d flows but only %d exist", len(poisoned.Malicious), len(attack.Malicious))
	}
}

func TestEvadeInsertsBenignPackets(t *testing.T) {
	tr := MustGenerateAttack(UDPDDoS, 17, 3)
	evaded := Evade(tr, 0.5, 18) // 1 benign per 2 attack
	if len(evaded.Packets) <= len(tr.Packets) {
		t.Fatal("no packets inserted")
	}
	growth := float64(len(evaded.Packets)) / float64(len(tr.Packets))
	if growth < 1.3 || growth > 1.7 {
		t.Errorf("growth = %v, want ~1.5", growth)
	}
	// Inserted packets stay within the malicious flows.
	for _, p := range evaded.Packets {
		if !evaded.IsMalicious(features.KeyOf(&p)) {
			t.Fatal("inserted packet escaped the attack flow")
		}
	}
	// Mean packet size must drop (benign-sized insertions).
	mean := func(t *Trace) float64 {
		s := 0
		for _, p := range t.Packets {
			s += p.Length
		}
		return float64(s) / float64(len(t.Packets))
	}
	if mean(evaded) >= mean(tr) {
		t.Errorf("evasion did not drag size down: %v vs %v", mean(evaded), mean(tr))
	}
	for i := 1; i < len(evaded.Packets); i++ {
		if evaded.Packets[i].Timestamp.Before(evaded.Packets[i-1].Timestamp) {
			t.Fatal("evaded trace not sorted")
		}
	}
}

func TestEvadeOnBenignTraceIsNoOp(t *testing.T) {
	benign := GenerateBenign(19, 20)
	evaded := Evade(benign, 0.5, 20)
	if len(evaded.Packets) != len(benign.Packets) {
		t.Error("evasion modified benign flows")
	}
}

func TestRouterVariantsDiffer(t *testing.T) {
	base := MustGenerateAttack(UDPDDoS, 21, 5)
	router := MustGenerateAttack(UDPDDoSRouter, 21, 5)
	// Same seed, different spec: traces must differ.
	if len(base.Packets) == len(router.Packets) {
		same := true
		for i := range base.Packets {
			if base.Packets[i].Length != router.Packets[i].Length ||
				!base.Packets[i].Timestamp.Equal(router.Packets[i].Timestamp) {
				same = false
				break
			}
		}
		if same {
			t.Error("router variant identical to base attack")
		}
	}
}

func TestSummarise(t *testing.T) {
	tr := GenerateBenign(1, 50).Merge(MustGenerateAttack(Mirai, 2, 10))
	s := Summarise(tr)
	if s.Packets != len(tr.Packets) {
		t.Errorf("packets = %d, want %d", s.Packets, len(tr.Packets))
	}
	if s.Flows <= 0 || s.MaliciousFlows != len(tr.Malicious) {
		t.Errorf("flows = %d malicious = %d", s.Flows, s.MaliciousFlows)
	}
	if s.Bytes <= 0 || s.MeanPktSize <= 0 {
		t.Errorf("bytes = %d meanPkt = %v", s.Bytes, s.MeanPktSize)
	}
	if s.Duration <= 0 || s.PacketsPerSec <= 0 || s.BitsPerSec <= 0 {
		t.Errorf("rates: %+v", s)
	}
	if s.MinFlowLen <= 0 || s.MaxFlowLen < s.MinFlowLen {
		t.Errorf("flow lens: min=%d max=%d", s.MinFlowLen, s.MaxFlowLen)
	}
	if s.ByProto[6]+s.ByProto[17] != s.Packets {
		t.Errorf("proto counts %v don't sum to packets", s.ByProto)
	}
	if s.String() == "" {
		t.Error("empty render")
	}
}

func TestSummariseEmpty(t *testing.T) {
	s := Summarise(&Trace{Malicious: map[features.FlowKey]bool{}})
	if s.Packets != 0 || s.Flows != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}
