package netpkt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Classic libpcap file constants (microsecond timestamps, little-endian
// as written by this package; the reader accepts both endiannesses).
const (
	pcapMagicLE     = 0xa1b2c3d4
	pcapMagicBE     = 0xd4c3b2a1
	pcapVersionMaj  = 2
	pcapVersionMin  = 4
	pcapLinkTypeEth = 1
	pcapSnapLen     = 65535
)

// PcapWriter writes packets to a classic pcap stream.
type PcapWriter struct {
	w           *bufio.Writer
	headerDone  bool
	PacketCount int
}

// NewPcapWriter wraps w. The file header is written lazily on the first
// packet so creating a writer is side-effect free.
func NewPcapWriter(w io.Writer) *PcapWriter {
	return &PcapWriter{w: bufio.NewWriter(w)}
}

func (pw *PcapWriter) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicLE)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMaj)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMin)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], pcapLinkTypeEth)
	_, err := pw.w.Write(hdr[:])
	return err
}

// WritePacket serialises p and appends it as one pcap record.
func (pw *PcapWriter) WritePacket(p *Packet) error {
	if !pw.headerDone {
		if err := pw.writeHeader(); err != nil {
			return err
		}
		pw.headerDone = true
	}
	frame := p.Marshal()
	origLen := p.Length
	if origLen < len(frame) {
		origLen = len(frame)
	}
	var rec [16]byte
	ts := p.Timestamp
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(origLen))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return err
	}
	if _, err := pw.w.Write(frame); err != nil {
		return err
	}
	pw.PacketCount++
	return nil
}

// Flush drains buffered bytes to the underlying writer.
func (pw *PcapWriter) Flush() error { return pw.w.Flush() }

// PcapReader reads packets from a classic pcap stream.
type PcapReader struct {
	r     *bufio.Reader
	order binary.ByteOrder
	// Nanosecond reports whether the file uses nanosecond timestamps
	// (magic 0xa1b23c4d).
	Nanosecond bool
}

// NewPcapReader parses the file header and returns a reader. It rejects
// non-Ethernet link types.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("netpkt: pcap header: %w", err)
	}
	pr := &PcapReader{r: br}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	switch magic {
	case pcapMagicLE:
		pr.order = binary.LittleEndian
	case 0xa1b23c4d:
		pr.order = binary.LittleEndian
		pr.Nanosecond = true
	case pcapMagicBE:
		pr.order = binary.BigEndian
	case 0x4d3cb2a1:
		pr.order = binary.BigEndian
		pr.Nanosecond = true
	default:
		return nil, fmt.Errorf("netpkt: bad pcap magic 0x%08x", magic)
	}
	linkType := pr.order.Uint32(hdr[20:24])
	if linkType != pcapLinkTypeEth {
		return nil, fmt.Errorf("netpkt: unsupported link type %d", linkType)
	}
	return pr, nil
}

// Next returns the next packet, or io.EOF at end of stream. Frames that
// fail to parse (non-IPv4 etc.) are returned as errors distinct from
// io.EOF so callers can skip them.
func (pr *PcapReader) Next() (Packet, error) {
	var rec [16]byte
	if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Packet{}, io.EOF
		}
		return Packet{}, err
	}
	sec := pr.order.Uint32(rec[0:4])
	frac := pr.order.Uint32(rec[4:8])
	capLen := pr.order.Uint32(rec[8:12])
	origLen := pr.order.Uint32(rec[12:16])
	if capLen > pcapSnapLen {
		return Packet{}, fmt.Errorf("netpkt: capture length %d exceeds snaplen", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return Packet{}, fmt.Errorf("netpkt: truncated record: %w", err)
	}
	nanos := int64(frac) * 1000
	if pr.Nanosecond {
		nanos = int64(frac)
	}
	ts := time.Unix(int64(sec), nanos).UTC()
	return Unmarshal(data, ts, int(origLen))
}

// NextValid returns the next parseable IPv4 packet, silently skipping
// the frames ReadAll would skip (non-IPv4, malformed). It is the
// streaming equivalent of ReadAll for consumers that must not buffer
// the whole trace — e.g. the serve runtime ingesting a capture file.
// io.EOF marks a clean end of stream; I/O errors propagate.
func (pr *PcapReader) NextValid() (Packet, error) {
	for {
		p, err := pr.Next()
		if err == nil {
			return p, nil
		}
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		if isParseErr(err) {
			continue
		}
		return Packet{}, err
	}
}

// NextValidBatch fills buf with up to len(buf) parseable IPv4 packets,
// skipping the frames NextValid skips, and returns how many it wrote.
// It is the batch face of NextValid — one call per batch instead of
// one per packet, which is what lets a replaying producer amortise the
// read loop. buf[:n] is valid even when err is non-nil (a partial
// batch is delivered together with io.EOF or the stream error that cut
// it short).
func (pr *PcapReader) NextValidBatch(buf []Packet) (n int, err error) {
	for n < len(buf) {
		p, err := pr.NextValid()
		if err != nil {
			return n, err
		}
		buf[n] = p
		n++
	}
	return n, nil
}

// ReadAll drains the reader, silently skipping unparseable frames, and
// returns every IPv4 packet.
func (pr *PcapReader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := pr.NextValid()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// isParseErr distinguishes frame-level parse failures (skippable) from
// stream-level failures by message origin.
func isParseErr(err error) bool {
	msg := err.Error()
	return len(msg) >= 7 && msg[:7] == "netpkt:" &&
		msg != "netpkt: truncated record: unexpected EOF"
}
